#include "vmx/vecops.hh"

#include <algorithm>
#include <cstring>

namespace uasim::vmx {

using trace::InstrClass;

namespace {

inline std::uint64_t
ea(const std::uint8_t *p, std::int64_t off)
{
    return reinterpret_cast<std::uint64_t>(p) +
           static_cast<std::uint64_t>(off);
}

inline std::uint8_t
satU8(int x)
{
    return static_cast<std::uint8_t>(std::clamp(x, 0, 255));
}

inline std::int8_t
satS8(int x)
{
    return static_cast<std::int8_t>(std::clamp(x, -128, 127));
}

inline std::int16_t
satS16(int x)
{
    return static_cast<std::int16_t>(std::clamp(x, -32768, 32767));
}

inline std::int32_t
satS32(std::int64_t x)
{
    return static_cast<std::int32_t>(
        std::clamp<std::int64_t>(x, INT32_MIN, INT32_MAX));
}

} // namespace

Vec
VecOps::lvx(CPtr p, std::int64_t off, SL loc)
{
    std::uint64_t addr = ea(p.p, off) & ~std::uint64_t{15};
    Vec v;
    std::memcpy(v.b.data(), reinterpret_cast<const void *>(addr), 16);
    v.dep = em_->emitMem(InstrClass::VecLoad, addr, 16, loc, p.dep);
    return v;
}

Vec
VecOps::lvxu(CPtr p, std::int64_t off, SL loc)
{
    std::uint64_t addr = ea(p.p, off);
    Vec v;
    std::memcpy(v.b.data(), reinterpret_cast<const void *>(addr), 16);
    v.dep = em_->emitMem(InstrClass::VecLoadU, addr, 16, loc, p.dep);
    return v;
}

void
VecOps::stvx(Vec v, Ptr p, std::int64_t off, SL loc)
{
    std::uint64_t addr = ea(p.p, off) & ~std::uint64_t{15};
    std::memcpy(reinterpret_cast<void *>(addr), v.b.data(), 16);
    em_->emitMem(InstrClass::VecStore, addr, 16, loc, p.dep, v.dep);
}

void
VecOps::stvxu(Vec v, Ptr p, std::int64_t off, SL loc)
{
    std::uint64_t addr = ea(p.p, off);
    std::memcpy(reinterpret_cast<void *>(addr), v.b.data(), 16);
    em_->emitMem(InstrClass::VecStoreU, addr, 16, loc, p.dep, v.dep);
}

Vec
VecOps::lvlx(CPtr p, std::int64_t off, SL loc)
{
    std::uint64_t addr = ea(p.p, off);
    unsigned o = addr & 15;
    Vec v;
    std::memcpy(v.b.data(), reinterpret_cast<const void *>(addr), 16 - o);
    v.dep = em_->emitMem(InstrClass::VecLoad, addr & ~std::uint64_t{15},
                         16, loc, p.dep);
    return v;
}

Vec
VecOps::lvrx(CPtr p, std::int64_t off, SL loc)
{
    std::uint64_t addr = ea(p.p, off);
    unsigned o = addr & 15;
    Vec v;
    if (o) {
        std::memcpy(v.b.data() + (16 - o),
                    reinterpret_cast<const void *>(addr - o), o);
    }
    v.dep = em_->emitMem(InstrClass::VecLoad, addr & ~std::uint64_t{15},
                         16, loc, p.dep);
    return v;
}

void
VecOps::stvewx(Vec v, Ptr p, std::int64_t off, SL loc)
{
    std::uint64_t addr = ea(p.p, off) & ~std::uint64_t{3};
    unsigned elem = (addr >> 2) & 3;
    std::uint32_t word = v.u32(elem);
    std::memcpy(reinterpret_cast<void *>(addr), &word, 4);
    em_->emitMem(InstrClass::VecStore, addr, 4, loc, p.dep, v.dep);
}

Vec
VecOps::lvsl(CPtr p, std::int64_t off, SL loc)
{
    unsigned o = ea(p.p, off) & 15;
    Vec v;
    for (int i = 0; i < 16; ++i)
        v.b[i] = static_cast<std::uint8_t>(o + i);
    v.dep = em_->emit(InstrClass::VecPerm, loc, p.dep);
    return v;
}

Vec
VecOps::lvsr(CPtr p, std::int64_t off, SL loc)
{
    unsigned o = ea(p.p, off) & 15;
    Vec v;
    for (int i = 0; i < 16; ++i)
        v.b[i] = static_cast<std::uint8_t>(16 - o + i);
    v.dep = em_->emit(InstrClass::VecPerm, loc, p.dep);
    return v;
}

Vec
VecOps::vperm(Vec a, Vec b, Vec c, SL loc)
{
    Vec v;
    for (int i = 0; i < 16; ++i) {
        unsigned sel = c.b[i] & 0x1f;
        v.b[i] = sel < 16 ? a.b[sel] : b.b[sel - 16];
    }
    v.dep = em_->emit(InstrClass::VecPerm, loc, a.dep, b.dep, c.dep);
    return v;
}

Vec
VecOps::sld(Vec a, Vec b, unsigned sh, SL loc)
{
    Vec v;
    for (int i = 0; i < 16; ++i) {
        unsigned j = i + sh;
        v.b[i] = j < 16 ? a.b[j] : b.b[j - 16];
    }
    v.dep = em_->emit(InstrClass::VecPerm, loc, a.dep, b.dep);
    return v;
}

Vec
VecOps::mergeh8(Vec a, Vec b, SL loc)
{
    Vec v;
    for (int i = 0; i < 8; ++i) {
        v.b[2 * i] = a.b[i];
        v.b[2 * i + 1] = b.b[i];
    }
    v.dep = em_->emit(InstrClass::VecPerm, loc, a.dep, b.dep);
    return v;
}

Vec
VecOps::mergel8(Vec a, Vec b, SL loc)
{
    Vec v;
    for (int i = 0; i < 8; ++i) {
        v.b[2 * i] = a.b[8 + i];
        v.b[2 * i + 1] = b.b[8 + i];
    }
    v.dep = em_->emit(InstrClass::VecPerm, loc, a.dep, b.dep);
    return v;
}

Vec
VecOps::mergeh16(Vec a, Vec b, SL loc)
{
    Vec v;
    for (int i = 0; i < 4; ++i) {
        v.setU16(2 * i, a.u16(i));
        v.setU16(2 * i + 1, b.u16(i));
    }
    v.dep = em_->emit(InstrClass::VecPerm, loc, a.dep, b.dep);
    return v;
}

Vec
VecOps::mergel16(Vec a, Vec b, SL loc)
{
    Vec v;
    for (int i = 0; i < 4; ++i) {
        v.setU16(2 * i, a.u16(4 + i));
        v.setU16(2 * i + 1, b.u16(4 + i));
    }
    v.dep = em_->emit(InstrClass::VecPerm, loc, a.dep, b.dep);
    return v;
}

Vec
VecOps::mergeh32(Vec a, Vec b, SL loc)
{
    Vec v;
    v.setU32(0, a.u32(0));
    v.setU32(1, b.u32(0));
    v.setU32(2, a.u32(1));
    v.setU32(3, b.u32(1));
    v.dep = em_->emit(InstrClass::VecPerm, loc, a.dep, b.dep);
    return v;
}

Vec
VecOps::mergel32(Vec a, Vec b, SL loc)
{
    Vec v;
    v.setU32(0, a.u32(2));
    v.setU32(1, b.u32(2));
    v.setU32(2, a.u32(3));
    v.setU32(3, b.u32(3));
    v.dep = em_->emit(InstrClass::VecPerm, loc, a.dep, b.dep);
    return v;
}

Vec
VecOps::packum16(Vec a, Vec b, SL loc)
{
    Vec v;
    for (int i = 0; i < 8; ++i) {
        v.b[i] = static_cast<std::uint8_t>(a.u16(i));
        v.b[8 + i] = static_cast<std::uint8_t>(b.u16(i));
    }
    v.dep = em_->emit(InstrClass::VecPerm, loc, a.dep, b.dep);
    return v;
}

Vec
VecOps::packsu16(Vec a, Vec b, SL loc)
{
    Vec v;
    for (int i = 0; i < 8; ++i) {
        v.b[i] = satU8(a.s16(i));
        v.b[8 + i] = satU8(b.s16(i));
    }
    v.dep = em_->emit(InstrClass::VecPerm, loc, a.dep, b.dep);
    return v;
}

Vec
VecOps::packs16(Vec a, Vec b, SL loc)
{
    Vec v;
    for (int i = 0; i < 8; ++i) {
        v.b[i] = static_cast<std::uint8_t>(satS8(a.s16(i)));
        v.b[8 + i] = static_cast<std::uint8_t>(satS8(b.s16(i)));
    }
    v.dep = em_->emit(InstrClass::VecPerm, loc, a.dep, b.dep);
    return v;
}

Vec
VecOps::packs32(Vec a, Vec b, SL loc)
{
    Vec v;
    for (int i = 0; i < 4; ++i) {
        v.setS16(i, satS16(static_cast<int>(
            std::clamp<std::int64_t>(a.s32(i), -32768, 32767))));
        v.setS16(4 + i, satS16(static_cast<int>(
            std::clamp<std::int64_t>(b.s32(i), -32768, 32767))));
    }
    v.dep = em_->emit(InstrClass::VecPerm, loc, a.dep, b.dep);
    return v;
}

Vec
VecOps::unpackh8(Vec a, SL loc)
{
    Vec v;
    for (int i = 0; i < 8; ++i)
        v.setS16(i, a.s8(i));
    v.dep = em_->emit(InstrClass::VecPerm, loc, a.dep);
    return v;
}

Vec
VecOps::unpackl8(Vec a, SL loc)
{
    Vec v;
    for (int i = 0; i < 8; ++i)
        v.setS16(i, a.s8(8 + i));
    v.dep = em_->emit(InstrClass::VecPerm, loc, a.dep);
    return v;
}

Vec
VecOps::unpackh16(Vec a, SL loc)
{
    Vec v;
    for (int i = 0; i < 4; ++i)
        v.setS32(i, a.s16(i));
    v.dep = em_->emit(InstrClass::VecPerm, loc, a.dep);
    return v;
}

Vec
VecOps::unpackl16(Vec a, SL loc)
{
    Vec v;
    for (int i = 0; i < 4; ++i)
        v.setS32(i, a.s16(4 + i));
    v.dep = em_->emit(InstrClass::VecPerm, loc, a.dep);
    return v;
}

Vec
VecOps::splat8(Vec a, unsigned idx, SL loc)
{
    Vec v;
    v.b.fill(a.b[idx & 15]);
    v.dep = em_->emit(InstrClass::VecPerm, loc, a.dep);
    return v;
}

Vec
VecOps::splat16(Vec a, unsigned idx, SL loc)
{
    Vec v;
    for (int i = 0; i < 8; ++i)
        v.setU16(i, a.u16(idx & 7));
    v.dep = em_->emit(InstrClass::VecPerm, loc, a.dep);
    return v;
}

Vec
VecOps::splat32(Vec a, unsigned idx, SL loc)
{
    Vec v;
    for (int i = 0; i < 4; ++i)
        v.setU32(i, a.u32(idx & 3));
    v.dep = em_->emit(InstrClass::VecPerm, loc, a.dep);
    return v;
}

Vec
VecOps::zero(SL loc)
{
    Vec v;
    v.dep = em_->emit(InstrClass::VecSimple, loc);
    return v;
}

Vec
VecOps::splatis8(int imm, SL loc)
{
    Vec v;
    v.b.fill(static_cast<std::uint8_t>(imm));
    v.dep = em_->emit(InstrClass::VecSimple, loc);
    return v;
}

Vec
VecOps::splatis16(int imm, SL loc)
{
    Vec v;
    for (int i = 0; i < 8; ++i)
        v.setS16(i, static_cast<std::int16_t>(imm));
    v.dep = em_->emit(InstrClass::VecSimple, loc);
    return v;
}

Vec
VecOps::splatis32(int imm, SL loc)
{
    Vec v;
    for (int i = 0; i < 4; ++i)
        v.setS32(i, imm);
    v.dep = em_->emit(InstrClass::VecSimple, loc);
    return v;
}

#define UASIM_LANE_OP_U8(name, expr)                                     \
    Vec                                                                  \
    VecOps::name(Vec a, Vec b, SL loc)                                   \
    {                                                                    \
        Vec v;                                                           \
        for (int i = 0; i < 16; ++i) {                                   \
            int x = a.b[i], y = b.b[i];                                  \
            (void)y;                                                     \
            v.b[i] = static_cast<std::uint8_t>(expr);                    \
        }                                                                \
        v.dep = em_->emit(InstrClass::VecSimple, loc, a.dep, b.dep);     \
        return v;                                                        \
    }

UASIM_LANE_OP_U8(addu8, x + y)
UASIM_LANE_OP_U8(addsu8, std::min(x + y, 255))
UASIM_LANE_OP_U8(subu8, x - y)
UASIM_LANE_OP_U8(subsu8, std::max(x - y, 0))
UASIM_LANE_OP_U8(avgu8, (x + y + 1) >> 1)
UASIM_LANE_OP_U8(minu8, std::min(x, y))
UASIM_LANE_OP_U8(maxu8, std::max(x, y))
UASIM_LANE_OP_U8(cmpgtu8, x > y ? 0xff : 0)
UASIM_LANE_OP_U8(cmpeq8, x == y ? 0xff : 0)

#undef UASIM_LANE_OP_U8

#define UASIM_LANE_OP_16(name, expr)                                     \
    Vec                                                                  \
    VecOps::name(Vec a, Vec b, SL loc)                                   \
    {                                                                    \
        Vec v;                                                           \
        for (int i = 0; i < 8; ++i) {                                    \
            int x = a.s16(i), y = b.s16(i);                              \
            (void)y;                                                     \
            v.setS16(i, static_cast<std::int16_t>(expr));                \
        }                                                                \
        v.dep = em_->emit(InstrClass::VecSimple, loc, a.dep, b.dep);     \
        return v;                                                        \
    }

UASIM_LANE_OP_16(add16, x + y)
UASIM_LANE_OP_16(adds16, satS16(x + y))
UASIM_LANE_OP_16(sub16, x - y)
UASIM_LANE_OP_16(subs16, satS16(x - y))
UASIM_LANE_OP_16(mins16, std::min(x, y))
UASIM_LANE_OP_16(maxs16, std::max(x, y))
UASIM_LANE_OP_16(cmpgts16, x > y ? -1 : 0)

#undef UASIM_LANE_OP_16

Vec
VecOps::add32(Vec a, Vec b, SL loc)
{
    Vec v;
    for (int i = 0; i < 4; ++i)
        v.setU32(i, a.u32(i) + b.u32(i));
    v.dep = em_->emit(InstrClass::VecSimple, loc, a.dep, b.dep);
    return v;
}

Vec
VecOps::sub32(Vec a, Vec b, SL loc)
{
    Vec v;
    for (int i = 0; i < 4; ++i)
        v.setU32(i, a.u32(i) - b.u32(i));
    v.dep = em_->emit(InstrClass::VecSimple, loc, a.dep, b.dep);
    return v;
}

#define UASIM_BIT_OP(name, expr)                                         \
    Vec                                                                  \
    VecOps::name(Vec a, Vec b, SL loc)                                   \
    {                                                                    \
        Vec v;                                                           \
        for (int i = 0; i < 16; ++i) {                                   \
            std::uint8_t x = a.b[i], y = b.b[i];                         \
            v.b[i] = static_cast<std::uint8_t>(expr);                    \
        }                                                                \
        v.dep = em_->emit(InstrClass::VecSimple, loc, a.dep, b.dep);     \
        return v;                                                        \
    }

UASIM_BIT_OP(and_, x & y)
UASIM_BIT_OP(andc, x & ~y)
UASIM_BIT_OP(or_, x | y)
UASIM_BIT_OP(xor_, x ^ y)
UASIM_BIT_OP(nor, ~(x | y))

#undef UASIM_BIT_OP

Vec
VecOps::sel(Vec a, Vec b, Vec m, SL loc)
{
    Vec v;
    for (int i = 0; i < 16; ++i)
        v.b[i] = static_cast<std::uint8_t>(
            (a.b[i] & ~m.b[i]) | (b.b[i] & m.b[i]));
    v.dep = em_->emit(InstrClass::VecSimple, loc, a.dep, b.dep, m.dep);
    return v;
}

Vec
VecOps::sl16(Vec a, Vec b, SL loc)
{
    Vec v;
    for (int i = 0; i < 8; ++i)
        v.setU16(i, static_cast<std::uint16_t>(
            a.u16(i) << (b.u16(i) & 15)));
    v.dep = em_->emit(InstrClass::VecSimple, loc, a.dep, b.dep);
    return v;
}

Vec
VecOps::sr16(Vec a, Vec b, SL loc)
{
    Vec v;
    for (int i = 0; i < 8; ++i)
        v.setU16(i, static_cast<std::uint16_t>(
            a.u16(i) >> (b.u16(i) & 15)));
    v.dep = em_->emit(InstrClass::VecSimple, loc, a.dep, b.dep);
    return v;
}

Vec
VecOps::sra16(Vec a, Vec b, SL loc)
{
    Vec v;
    for (int i = 0; i < 8; ++i)
        v.setS16(i, static_cast<std::int16_t>(
            a.s16(i) >> (b.u16(i) & 15)));
    v.dep = em_->emit(InstrClass::VecSimple, loc, a.dep, b.dep);
    return v;
}

Vec
VecOps::sl32(Vec a, Vec b, SL loc)
{
    Vec v;
    for (int i = 0; i < 4; ++i)
        v.setU32(i, a.u32(i) << (b.u32(i) & 31));
    v.dep = em_->emit(InstrClass::VecSimple, loc, a.dep, b.dep);
    return v;
}

Vec
VecOps::sra32(Vec a, Vec b, SL loc)
{
    Vec v;
    for (int i = 0; i < 4; ++i)
        v.setS32(i, a.s32(i) >> (b.u32(i) & 31));
    v.dep = em_->emit(InstrClass::VecSimple, loc, a.dep, b.dep);
    return v;
}

Vec
VecOps::mladd16(Vec a, Vec b, Vec c, SL loc)
{
    Vec v;
    for (int i = 0; i < 8; ++i)
        v.setU16(i, static_cast<std::uint16_t>(
            a.u16(i) * b.u16(i) + c.u16(i)));
    v.dep = em_->emit(InstrClass::VecComplex, loc, a.dep, b.dep, c.dep);
    return v;
}

Vec
VecOps::mradds16(Vec a, Vec b, Vec c, SL loc)
{
    Vec v;
    for (int i = 0; i < 8; ++i) {
        int prod = (a.s16(i) * b.s16(i) + 0x4000) >> 15;
        v.setS16(i, satS16(prod + c.s16(i)));
    }
    v.dep = em_->emit(InstrClass::VecComplex, loc, a.dep, b.dep, c.dep);
    return v;
}

Vec
VecOps::msumu8(Vec a, Vec b, Vec c, SL loc)
{
    Vec v;
    for (int i = 0; i < 4; ++i) {
        std::uint32_t acc = c.u32(i);
        for (int j = 0; j < 4; ++j)
            acc += std::uint32_t{a.b[4 * i + j]} * b.b[4 * i + j];
        v.setU32(i, acc);
    }
    v.dep = em_->emit(InstrClass::VecComplex, loc, a.dep, b.dep, c.dep);
    return v;
}

Vec
VecOps::msums16(Vec a, Vec b, Vec c, SL loc)
{
    Vec v;
    for (int i = 0; i < 4; ++i) {
        std::int64_t acc = c.s32(i);
        acc += std::int32_t{a.s16(2 * i)} * b.s16(2 * i);
        acc += std::int32_t{a.s16(2 * i + 1)} * b.s16(2 * i + 1);
        v.setS32(i, static_cast<std::int32_t>(acc));
    }
    v.dep = em_->emit(InstrClass::VecComplex, loc, a.dep, b.dep, c.dep);
    return v;
}

Vec
VecOps::sum4su8(Vec a, Vec b, SL loc)
{
    Vec v;
    for (int i = 0; i < 4; ++i) {
        std::int64_t acc = b.s32(i);
        for (int j = 0; j < 4; ++j)
            acc += a.b[4 * i + j];
        v.setS32(i, satS32(acc));
    }
    v.dep = em_->emit(InstrClass::VecComplex, loc, a.dep, b.dep);
    return v;
}

Vec
VecOps::sums32(Vec a, Vec b, SL loc)
{
    std::int64_t acc = b.s32(3);
    for (int i = 0; i < 4; ++i)
        acc += a.s32(i);
    Vec v;
    v.setS32(3, satS32(acc));
    v.dep = em_->emit(InstrClass::VecComplex, loc, a.dep, b.dep);
    return v;
}

Vec
VecOps::muleu8(Vec a, Vec b, SL loc)
{
    Vec v;
    for (int i = 0; i < 8; ++i)
        v.setU16(i, std::uint16_t(a.b[2 * i]) * b.b[2 * i]);
    v.dep = em_->emit(InstrClass::VecComplex, loc, a.dep, b.dep);
    return v;
}

Vec
VecOps::mulou8(Vec a, Vec b, SL loc)
{
    Vec v;
    for (int i = 0; i < 8; ++i)
        v.setU16(i, std::uint16_t(a.b[2 * i + 1]) * b.b[2 * i + 1]);
    v.dep = em_->emit(InstrClass::VecComplex, loc, a.dep, b.dep);
    return v;
}

} // namespace uasim::vmx
