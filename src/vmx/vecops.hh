/**
 * @file
 * VecOps: the traced Altivec/VMX facade, extended with the paper's
 * unaligned memory instructions.
 *
 * Each method executes one Altivec instruction functionally on the host
 * and emits one InstrRecord of the matching class:
 *  - lvx/stvx force the effective address down to 16B, exactly like
 *    hardware Altivec; software realignment (lvsl + vperm, Fig 2 of the
 *    paper) is written in kernel code on top of these;
 *  - lvxu/stvxu are the paper's proposed LVXU/STVXU: single-instruction
 *    unaligned accesses, traced with their own classes so the timing
 *    model can charge the realignment-network latency;
 *  - lvsl/lvsr are accounted in the permute class, the only accounting
 *    consistent with the paper's Table III (see DESIGN.md);
 *  - lvlx/lvrx implement the Cell PPE partial-load pair, used by the
 *    Table I strategy comparison.
 *
 * Lane semantics are memory order (element 0 at the lowest address,
 * host-endian within an element); see vmx/value.hh.
 */

#ifndef UASIM_VMX_VECOPS_HH
#define UASIM_VMX_VECOPS_HH

#include <cstdint>
#include <source_location>

#include "trace/emitter.hh"
#include "vmx/value.hh"

namespace uasim::vmx {

class VecOps
{
  public:
    using SL = std::source_location;

    explicit VecOps(trace::Emitter &em) : em_(&em) {}

    trace::Emitter &emitter() const { return *em_; }

    /// @name Memory access
    /// @{
    /// Aligned load: EA = (p + off) & ~15 (lvx).
    Vec lvx(CPtr p, std::int64_t off = 0, SL loc = SL::current());
    /// Unaligned load: EA = p + off (the paper's lvxu).
    Vec lvxu(CPtr p, std::int64_t off = 0, SL loc = SL::current());
    /// Aligned store: EA = (p + off) & ~15 (stvx).
    void stvx(Vec v, Ptr p, std::int64_t off = 0, SL loc = SL::current());
    /// Unaligned store: EA = p + off (the paper's stvxu).
    void stvxu(Vec v, Ptr p, std::int64_t off = 0, SL loc = SL::current());
    /// Cell PPE lvlx: bytes from EA to the end of its 16B block, rest 0.
    Vec lvlx(CPtr p, std::int64_t off = 0, SL loc = SL::current());
    /// Cell PPE lvrx: bytes before EA in its 16B block, placed at the
    /// tail of the register, rest 0 (returns zero vector if EA aligned).
    Vec lvrx(CPtr p, std::int64_t off = 0, SL loc = SL::current());
    /**
     * stvewx: store the word element addressed by EA & ~3 - the element
     * at index ((EA >> 2) & 3). Requires data pre-rotated into that
     * word slot (the standard 4B-aligned partial-store idiom).
     */
    void stvewx(Vec v, Ptr p, std::int64_t off = 0,
                SL loc = SL::current());
    /// @}

    /// @name Realignment-token generation (permute class)
    /// @{
    /// lvsl: mask {o, o+1, ..., o+15} with o = EA & 15.
    Vec lvsl(CPtr p, std::int64_t off = 0, SL loc = SL::current());
    /// lvsr: mask {16-o, ..., 31-o}.
    Vec lvsr(CPtr p, std::int64_t off = 0, SL loc = SL::current());
    /// @}

    /// @name Permute class
    /// @{
    Vec vperm(Vec a, Vec b, Vec c, SL loc = SL::current());
    /// vsldoi: concatenate a|b, take 16 bytes starting at byte sh.
    Vec sld(Vec a, Vec b, unsigned sh, SL loc = SL::current());
    Vec mergeh8(Vec a, Vec b, SL loc = SL::current());
    Vec mergel8(Vec a, Vec b, SL loc = SL::current());
    Vec mergeh16(Vec a, Vec b, SL loc = SL::current());
    Vec mergel16(Vec a, Vec b, SL loc = SL::current());
    Vec mergeh32(Vec a, Vec b, SL loc = SL::current());
    Vec mergel32(Vec a, Vec b, SL loc = SL::current());
    /// vpkuhum: modulo-pack u16 lanes of a,b into 16 u8.
    Vec packum16(Vec a, Vec b, SL loc = SL::current());
    /// vpkshus: saturate s16 lanes to u8 (the pixel-clip pack).
    Vec packsu16(Vec a, Vec b, SL loc = SL::current());
    /// vpkshss: saturate s16 lanes to s8.
    Vec packs16(Vec a, Vec b, SL loc = SL::current());
    /// vpkswss: saturate s32 lanes to s16.
    Vec packs32(Vec a, Vec b, SL loc = SL::current());
    /// vupkhsb: sign-extend s8 elements 0..7 to s16.
    Vec unpackh8(Vec a, SL loc = SL::current());
    /// vupklsb: sign-extend s8 elements 8..15 to s16.
    Vec unpackl8(Vec a, SL loc = SL::current());
    /// vupkhsh: sign-extend s16 elements 0..3 to s32.
    Vec unpackh16(Vec a, SL loc = SL::current());
    /// vupklsh: sign-extend s16 elements 4..7 to s32.
    Vec unpackl16(Vec a, SL loc = SL::current());
    Vec splat8(Vec a, unsigned idx, SL loc = SL::current());
    Vec splat16(Vec a, unsigned idx, SL loc = SL::current());
    Vec splat32(Vec a, unsigned idx, SL loc = SL::current());
    /// @}

    /// @name Simple VX class
    /// @{
    /// vxor v,v,v idiom.
    Vec zero(SL loc = SL::current());
    /// vspltisb: splat 5-bit signed immediate into u8 lanes.
    Vec splatis8(int imm, SL loc = SL::current());
    /// vspltish: splat into s16 lanes.
    Vec splatis16(int imm, SL loc = SL::current());
    /// vspltisw: splat into s32 lanes.
    Vec splatis32(int imm, SL loc = SL::current());
    Vec addu8(Vec a, Vec b, SL loc = SL::current());   //!< vaddubm
    Vec addsu8(Vec a, Vec b, SL loc = SL::current());  //!< vaddubs
    Vec add16(Vec a, Vec b, SL loc = SL::current());   //!< vadduhm
    Vec adds16(Vec a, Vec b, SL loc = SL::current());  //!< vaddshs
    Vec add32(Vec a, Vec b, SL loc = SL::current());   //!< vadduwm
    Vec subu8(Vec a, Vec b, SL loc = SL::current());   //!< vsububm
    Vec subsu8(Vec a, Vec b, SL loc = SL::current());  //!< vsububs
    Vec sub16(Vec a, Vec b, SL loc = SL::current());   //!< vsubuhm
    Vec subs16(Vec a, Vec b, SL loc = SL::current());  //!< vsubshs
    Vec sub32(Vec a, Vec b, SL loc = SL::current());   //!< vsubuwm
    Vec avgu8(Vec a, Vec b, SL loc = SL::current());   //!< vavgub
    Vec minu8(Vec a, Vec b, SL loc = SL::current());
    Vec maxu8(Vec a, Vec b, SL loc = SL::current());
    Vec mins16(Vec a, Vec b, SL loc = SL::current());
    Vec maxs16(Vec a, Vec b, SL loc = SL::current());
    Vec and_(Vec a, Vec b, SL loc = SL::current());
    Vec andc(Vec a, Vec b, SL loc = SL::current());    //!< a & ~b
    Vec or_(Vec a, Vec b, SL loc = SL::current());
    Vec xor_(Vec a, Vec b, SL loc = SL::current());
    Vec nor(Vec a, Vec b, SL loc = SL::current());
    /// vsel: bitwise (a & ~m) | (b & m).
    Vec sel(Vec a, Vec b, Vec m, SL loc = SL::current());
    Vec cmpgtu8(Vec a, Vec b, SL loc = SL::current());
    Vec cmpgts16(Vec a, Vec b, SL loc = SL::current());
    Vec cmpeq8(Vec a, Vec b, SL loc = SL::current());
    /// per-element shifts; shift amounts from low bits of b's lanes
    Vec sl16(Vec a, Vec b, SL loc = SL::current());    //!< vslh
    Vec sr16(Vec a, Vec b, SL loc = SL::current());    //!< vsrh
    Vec sra16(Vec a, Vec b, SL loc = SL::current());   //!< vsrah
    Vec sl32(Vec a, Vec b, SL loc = SL::current());    //!< vslw
    Vec sra32(Vec a, Vec b, SL loc = SL::current());   //!< vsraw
    /// @}

    /// @name Complex VX class (multiply / sum-across)
    /// @{
    /// vmladduhm: (a*b + c) mod 2^16, u16/s16 lanes.
    Vec mladd16(Vec a, Vec b, Vec c, SL loc = SL::current());
    /// vmhraddshs: ((a*b + 0x4000) >> 15) + c, saturated s16.
    Vec mradds16(Vec a, Vec b, Vec c, SL loc = SL::current());
    /// vmsumubm: per word, sum of 4 u8(a)*u8(b) products + u32 c lane.
    Vec msumu8(Vec a, Vec b, Vec c, SL loc = SL::current());
    /// vmsumshm: per word, sum of 2 s16*s16 products + s32 c lane.
    Vec msums16(Vec a, Vec b, Vec c, SL loc = SL::current());
    /// vsum4ubs: per word, sum of its 4 u8 lanes of a + s32 b lane.
    Vec sum4su8(Vec a, Vec b, SL loc = SL::current());
    /// vsumsws: total of a's s32 lanes + b lane 3, into lane 3.
    Vec sums32(Vec a, Vec b, SL loc = SL::current());
    /// vmuleub/vmuloub: even/odd u8 lanes of a,b multiplied into u16.
    Vec muleu8(Vec a, Vec b, SL loc = SL::current());
    Vec mulou8(Vec a, Vec b, SL loc = SL::current());
    /// @}

  private:
    trace::Emitter *em_;
};

} // namespace uasim::vmx

#endif // UASIM_VMX_VECOPS_HH
