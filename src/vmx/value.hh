/**
 * @file
 * Traced value types used by the emulation facades.
 *
 * Every value produced by a traced instruction carries a trace::Dep
 * naming its producer, so consumers record true data dependences.
 */

#ifndef UASIM_VMX_VALUE_HH
#define UASIM_VMX_VALUE_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <initializer_list>

#include "trace/instr.hh"

namespace uasim::vmx {

/**
 * Traced 64-bit scalar integer (a GPR value).
 */
struct SInt {
    std::int64_t v = 0;
    trace::Dep dep{};
};

/**
 * Traced mutable pointer (a GPR holding an address).
 */
struct Ptr {
    std::uint8_t *p = nullptr;
    trace::Dep dep{};
};

/**
 * Traced read-only pointer.
 */
struct CPtr {
    const std::uint8_t *p = nullptr;
    trace::Dep dep{};

    CPtr() = default;
    CPtr(const std::uint8_t *ptr, trace::Dep d = {}) : p(ptr), dep(d) {}
    /// A Ptr converts freely to a CPtr (non-traced register copy).
    CPtr(const Ptr &w) : p(w.p), dep(w.dep) {}
};

/**
 * Traced 128-bit vector register value.
 *
 * Lane convention: element 0 lives at the lowest byte address; multi-byte
 * lanes are host-endian. This is "memory order" lane numbering: a vector
 * loaded from memory and read back lane-by-lane matches the bytes in
 * memory. Big-endian Altivec idioms that rely on byte placement inside a
 * lane (e.g. vmrghb(zero, v) for zero-extension) are mirrored
 * (mergeh8(v, zero) here); instruction counts and classes are identical.
 */
struct Vec {
    std::array<std::uint8_t, 16> b{};
    trace::Dep dep{};

    /// @name Lane accessors (i is the element index, memory order)
    /// @{
    std::uint8_t u8(int i) const { return b[i]; }
    std::int8_t s8(int i) const { return static_cast<std::int8_t>(b[i]); }
    void setU8(int i, std::uint8_t x) { b[i] = x; }

    std::uint16_t
    u16(int i) const
    {
        std::uint16_t x;
        std::memcpy(&x, &b[2 * i], 2);
        return x;
    }
    std::int16_t
    s16(int i) const
    {
        return static_cast<std::int16_t>(u16(i));
    }
    void setU16(int i, std::uint16_t x) { std::memcpy(&b[2 * i], &x, 2); }
    void
    setS16(int i, std::int16_t x)
    {
        setU16(i, static_cast<std::uint16_t>(x));
    }

    std::uint32_t
    u32(int i) const
    {
        std::uint32_t x;
        std::memcpy(&x, &b[4 * i], 4);
        return x;
    }
    std::int32_t
    s32(int i) const
    {
        return static_cast<std::int32_t>(u32(i));
    }
    void setU32(int i, std::uint32_t x) { std::memcpy(&b[4 * i], &x, 4); }
    void
    setS32(int i, std::int32_t x)
    {
        setU32(i, static_cast<std::uint32_t>(x));
    }
    /// @}
};

/// Build an untraced vector from explicit bytes (test helper).
inline Vec
makeVecU8(std::initializer_list<std::uint8_t> bytes)
{
    Vec v;
    int i = 0;
    for (auto x : bytes) {
        if (i >= 16)
            break;
        v.b[i++] = x;
    }
    return v;
}

/// Build an untraced vector from 8 s16 lanes (test helper).
inline Vec
makeVecS16(std::initializer_list<std::int16_t> lanes)
{
    Vec v;
    int i = 0;
    for (auto x : lanes) {
        if (i >= 8)
            break;
        v.setS16(i++, x);
    }
    return v;
}

/// Build an untraced vector from 4 s32 lanes (test helper).
inline Vec
makeVecS32(std::initializer_list<std::int32_t> lanes)
{
    Vec v;
    int i = 0;
    for (auto x : lanes) {
        if (i >= 4)
            break;
        v.setS32(i++, x);
    }
    return v;
}

} // namespace uasim::vmx

#endif // UASIM_VMX_VALUE_HH
