#include "vmx/strategies.hh"

namespace uasim::vmx {

std::string_view
strategyName(RealignStrategy s)
{
    switch (s) {
      case RealignStrategy::HwUnaligned:    return "lvxu/stvxu (proposed)";
      case RealignStrategy::AltivecSw:      return "lvsl+lvx+lvx+vperm";
      case RealignStrategy::CellLvlxLvrx:   return "lvlx+lvrx+vor";
      case RealignStrategy::SseMovdquUcode: return "movdqu (microcoded)";
      case RealignStrategy::SseLddqu:       return "lddqu (wide+shift)";
      case RealignStrategy::MipsAlnv:       return "luxc1+luxc1+alnv";
      case RealignStrategy::TiLdnw:         return "ldndw pair";
      default:                              return "invalid";
    }
}

std::string_view
strategyIsa(RealignStrategy s)
{
    switch (s) {
      case RealignStrategy::HwUnaligned:    return "Altivec+ (this paper)";
      case RealignStrategy::AltivecSw:      return "PowerPC Altivec";
      case RealignStrategy::CellLvlxLvrx:   return "Cell PPE";
      case RealignStrategy::SseMovdquUcode: return "IA32 SSE2";
      case RealignStrategy::SseLddqu:       return "IA32 SSE3";
      case RealignStrategy::MipsAlnv:       return "MIPS MDMX";
      case RealignStrategy::TiLdnw:         return "TI TMS320C64x";
      default:                              return "invalid";
    }
}

int
strategyLoadInstrs(RealignStrategy s)
{
    switch (s) {
      case RealignStrategy::HwUnaligned:    return 1;
      case RealignStrategy::AltivecSw:      return 4;
      case RealignStrategy::CellLvlxLvrx:   return 3;
      case RealignStrategy::SseMovdquUcode: return 3;
      case RealignStrategy::SseLddqu:       return 2;
      case RealignStrategy::MipsAlnv:       return 3;
      case RealignStrategy::TiLdnw:         return 2;
      default:                              return 0;
    }
}

int
strategyStoreInstrs(RealignStrategy s)
{
    switch (s) {
      case RealignStrategy::HwUnaligned:    return 1;
      // Everything else falls back to the Fig 5 load-merge-store.
      default:                              return 9;
    }
}

Vec
strategyLoadU(VecOps &vo, RealignStrategy s, CPtr p, std::int64_t off)
{
    switch (s) {
      case RealignStrategy::HwUnaligned:
        return vo.lvxu(p, off);

      case RealignStrategy::AltivecSw:
        return swLoadU(vo, p, off);

      case RealignStrategy::CellLvlxLvrx: {
        Vec left = vo.lvlx(p, off);
        Vec right = vo.lvrx(p, off + 16);
        return vo.or_(left, right);
      }

      case RealignStrategy::SseMovdquUcode: {
        // Microcode expansion: two 8B halves through the load pipe,
        // merged internally. Traced as 2 loads + 1 permute.
        std::uint64_t addr =
            reinterpret_cast<std::uint64_t>(p.p) + off;
        Vec v;
        std::memcpy(v.b.data(),
                    reinterpret_cast<const void *>(addr), 16);
        trace::Dep lo = vo.emitter().emitMem(
            trace::InstrClass::VecLoadU, addr, 8,
            std::source_location::current(), p.dep);
        trace::Dep hi = vo.emitter().emitMem(
            trace::InstrClass::VecLoadU, addr + 8, 8,
            std::source_location::current(), p.dep);
        v.dep = vo.emitter().emit(trace::InstrClass::VecPerm,
                                  std::source_location::current(),
                                  lo, hi);
        return v;
      }

      case RealignStrategy::SseLddqu: {
        // 32B-wide aligned read plus an internal extract shift.
        std::uint64_t addr =
            reinterpret_cast<std::uint64_t>(p.p) + off;
        std::uint64_t base = addr & ~std::uint64_t{15};
        Vec v;
        std::memcpy(v.b.data(),
                    reinterpret_cast<const void *>(addr), 16);
        trace::Dep wide = vo.emitter().emitMem(
            trace::InstrClass::VecLoad, base, 32,
            std::source_location::current(), p.dep);
        v.dep = vo.emitter().emit(trace::InstrClass::VecPerm,
                                  std::source_location::current(), wide);
        return v;
      }

      case RealignStrategy::MipsAlnv: {
        // alnv realigns using the low address bits directly; no
        // separate mask-generation instruction is executed. The
        // permute operand is synthesized from the address here
        // (untraced) and the alnv itself is the one traced permute.
        Vec lo = vo.lvx(p, off);
        Vec hi = vo.lvx(p, off + 15);
        unsigned o = (reinterpret_cast<std::uintptr_t>(p.p) + off) & 15;
        Vec mask;
        for (int i = 0; i < 16; ++i)
            mask.b[i] = static_cast<std::uint8_t>(o + i);
        return vo.vperm(lo, hi, mask);
      }

      case RealignStrategy::TiLdnw: {
        // Two non-aligned 8B halves (ldndw); each blocks the second
        // memory port on real hardware -- the timing model charges that.
        std::uint64_t addr =
            reinterpret_cast<std::uint64_t>(p.p) + off;
        Vec v;
        std::memcpy(v.b.data(),
                    reinterpret_cast<const void *>(addr), 16);
        trace::Dep lo = vo.emitter().emitMem(
            trace::InstrClass::VecLoadU, addr, 8,
            std::source_location::current(), p.dep);
        trace::Dep hi = vo.emitter().emitMem(
            trace::InstrClass::VecLoadU, addr + 8, 8,
            std::source_location::current(), p.dep);
        v.dep = hi;
        (void)lo;
        return v;
      }

      default:
        return vo.lvxu(p, off);
    }
}

void
strategyStoreU(VecOps &vo, RealignStrategy s, const SwStoreCtx &ctx,
               Vec data, Ptr p, std::int64_t off)
{
    switch (s) {
      case RealignStrategy::HwUnaligned:
        vo.stvxu(data, p, off);
        return;
      default:
        swStoreU(vo, ctx, data, p, off);
        return;
    }
}

} // namespace uasim::vmx
