#include "vmx/scalarops.hh"

#include <cstring>

namespace uasim::vmx {

using trace::InstrClass;

SInt
ScalarOps::li(std::int64_t v, SL loc)
{
    return {v, em_->emit(InstrClass::IntAlu, loc)};
}

Ptr
ScalarOps::lip(std::uint8_t *p, SL loc)
{
    return {p, em_->emit(InstrClass::IntAlu, loc)};
}

CPtr
ScalarOps::lip(const std::uint8_t *p, SL loc)
{
    return {p, em_->emit(InstrClass::IntAlu, loc)};
}

namespace {

/// The emulated machine's integer ops wrap on overflow (two's
/// complement), so compute in unsigned and cast back - plain signed
/// expressions would be undefined behaviour under UBSan for the
/// extreme operands the property tests throw at them.
constexpr std::int64_t
wrapAdd(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                     static_cast<std::uint64_t>(b));
}

constexpr std::int64_t
wrapSub(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                     static_cast<std::uint64_t>(b));
}

constexpr std::int64_t
wrapMul(std::int64_t a, std::int64_t b)
{
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                     static_cast<std::uint64_t>(b));
}

} // namespace

SInt
ScalarOps::add(SInt a, SInt b, SL loc)
{
    return {wrapAdd(a.v, b.v),
            em_->emit(InstrClass::IntAlu, loc, a.dep, b.dep)};
}

SInt
ScalarOps::addi(SInt a, std::int64_t imm, SL loc)
{
    return {wrapAdd(a.v, imm), em_->emit(InstrClass::IntAlu, loc, a.dep)};
}

SInt
ScalarOps::sub(SInt a, SInt b, SL loc)
{
    return {wrapSub(a.v, b.v),
            em_->emit(InstrClass::IntAlu, loc, a.dep, b.dep)};
}

SInt
ScalarOps::subfi(std::int64_t imm, SInt a, SL loc)
{
    return {wrapSub(imm, a.v), em_->emit(InstrClass::IntAlu, loc, a.dep)};
}

SInt
ScalarOps::neg(SInt a, SL loc)
{
    return {wrapSub(0, a.v), em_->emit(InstrClass::IntAlu, loc, a.dep)};
}

SInt
ScalarOps::slli(SInt a, unsigned sh, SL loc)
{
    return {a.v << sh, em_->emit(InstrClass::IntAlu, loc, a.dep)};
}

SInt
ScalarOps::srli(SInt a, unsigned sh, SL loc)
{
    auto u = static_cast<std::uint64_t>(a.v) >> sh;
    return {static_cast<std::int64_t>(u),
            em_->emit(InstrClass::IntAlu, loc, a.dep)};
}

SInt
ScalarOps::srai(SInt a, unsigned sh, SL loc)
{
    return {a.v >> sh, em_->emit(InstrClass::IntAlu, loc, a.dep)};
}

SInt
ScalarOps::sllv(SInt a, SInt b, SL loc)
{
    return {static_cast<std::int64_t>(
                static_cast<std::uint64_t>(a.v) << (b.v & 63)),
            em_->emit(InstrClass::IntAlu, loc, a.dep, b.dep)};
}

SInt
ScalarOps::srlv(SInt a, SInt b, SL loc)
{
    return {static_cast<std::int64_t>(
                static_cast<std::uint64_t>(a.v) >> (b.v & 63)),
            em_->emit(InstrClass::IntAlu, loc, a.dep, b.dep)};
}

SInt
ScalarOps::andi(SInt a, std::uint64_t imm, SL loc)
{
    return {static_cast<std::int64_t>(
                static_cast<std::uint64_t>(a.v) & imm),
            em_->emit(InstrClass::IntAlu, loc, a.dep)};
}

SInt
ScalarOps::and_(SInt a, SInt b, SL loc)
{
    return {a.v & b.v, em_->emit(InstrClass::IntAlu, loc, a.dep, b.dep)};
}

SInt
ScalarOps::or_(SInt a, SInt b, SL loc)
{
    return {a.v | b.v, em_->emit(InstrClass::IntAlu, loc, a.dep, b.dep)};
}

SInt
ScalarOps::xor_(SInt a, SInt b, SL loc)
{
    return {a.v ^ b.v, em_->emit(InstrClass::IntAlu, loc, a.dep, b.dep)};
}

SInt
ScalarOps::cmplt(SInt a, SInt b, SL loc)
{
    return {a.v < b.v ? 1 : 0,
            em_->emit(InstrClass::IntAlu, loc, a.dep, b.dep)};
}

SInt
ScalarOps::cmplti(SInt a, std::int64_t imm, SL loc)
{
    return {a.v < imm ? 1 : 0, em_->emit(InstrClass::IntAlu, loc, a.dep)};
}

SInt
ScalarOps::cmpgti(SInt a, std::int64_t imm, SL loc)
{
    return {a.v > imm ? 1 : 0, em_->emit(InstrClass::IntAlu, loc, a.dep)};
}

SInt
ScalarOps::cmpeq(SInt a, SInt b, SL loc)
{
    return {a.v == b.v ? 1 : 0,
            em_->emit(InstrClass::IntAlu, loc, a.dep, b.dep)};
}

SInt
ScalarOps::isel(SInt cond, SInt a, SInt b, SL loc)
{
    return {cond.v ? a.v : b.v,
            em_->emit(InstrClass::IntAlu, loc, cond.dep, a.dep, b.dep)};
}

SInt
ScalarOps::mul(SInt a, SInt b, SL loc)
{
    return {wrapMul(a.v, b.v),
            em_->emit(InstrClass::IntMul, loc, a.dep, b.dep)};
}

SInt
ScalarOps::muli(SInt a, std::int64_t imm, SL loc)
{
    return {wrapMul(a.v, imm), em_->emit(InstrClass::IntMul, loc, a.dep)};
}

Ptr
ScalarOps::padd(Ptr p, SInt idx, SL loc)
{
    return {p.p + idx.v,
            em_->emit(InstrClass::IntAlu, loc, p.dep, idx.dep)};
}

CPtr
ScalarOps::padd(CPtr p, SInt idx, SL loc)
{
    return {p.p + idx.v,
            em_->emit(InstrClass::IntAlu, loc, p.dep, idx.dep)};
}

Ptr
ScalarOps::paddi(Ptr p, std::int64_t imm, SL loc)
{
    return {p.p + imm, em_->emit(InstrClass::IntAlu, loc, p.dep)};
}

CPtr
ScalarOps::paddi(CPtr p, std::int64_t imm, SL loc)
{
    return {p.p + imm, em_->emit(InstrClass::IntAlu, loc, p.dep)};
}

namespace {

inline std::uint64_t
ea(const std::uint8_t *p, std::int64_t off)
{
    return reinterpret_cast<std::uint64_t>(p) +
           static_cast<std::uint64_t>(off);
}

} // namespace

SInt
ScalarOps::loadU8(CPtr p, std::int64_t off, SL loc)
{
    return {p.p[off],
            em_->emitMem(InstrClass::Load, ea(p.p, off), 1, loc, p.dep)};
}

SInt
ScalarOps::loadS16(CPtr p, std::int64_t off, SL loc)
{
    std::int16_t x;
    std::memcpy(&x, p.p + off, 2);
    return {x, em_->emitMem(InstrClass::Load, ea(p.p, off), 2, loc, p.dep)};
}

SInt
ScalarOps::loadU16(CPtr p, std::int64_t off, SL loc)
{
    std::uint16_t x;
    std::memcpy(&x, p.p + off, 2);
    return {x, em_->emitMem(InstrClass::Load, ea(p.p, off), 2, loc, p.dep)};
}

SInt
ScalarOps::loadS32(CPtr p, std::int64_t off, SL loc)
{
    std::int32_t x;
    std::memcpy(&x, p.p + off, 4);
    return {x, em_->emitMem(InstrClass::Load, ea(p.p, off), 4, loc, p.dep)};
}

SInt
ScalarOps::loadU32(CPtr p, std::int64_t off, SL loc)
{
    std::uint32_t x;
    std::memcpy(&x, p.p + off, 4);
    return {x, em_->emitMem(InstrClass::Load, ea(p.p, off), 4, loc, p.dep)};
}

SInt
ScalarOps::loadS64(CPtr p, std::int64_t off, SL loc)
{
    std::int64_t x;
    std::memcpy(&x, p.p + off, 8);
    return {x, em_->emitMem(InstrClass::Load, ea(p.p, off), 8, loc, p.dep)};
}

SInt
ScalarOps::loadU8x(CPtr p, SInt idx, SL loc)
{
    return {p.p[idx.v],
            em_->emitMem(InstrClass::Load, ea(p.p, idx.v), 1, loc,
                         p.dep, idx.dep)};
}

void
ScalarOps::storeU8(Ptr p, std::int64_t off, SInt v, SL loc)
{
    p.p[off] = static_cast<std::uint8_t>(v.v);
    em_->emitMem(InstrClass::Store, ea(p.p, off), 1, loc, p.dep, v.dep);
}

void
ScalarOps::storeU16(Ptr p, std::int64_t off, SInt v, SL loc)
{
    auto x = static_cast<std::uint16_t>(v.v);
    std::memcpy(p.p + off, &x, 2);
    em_->emitMem(InstrClass::Store, ea(p.p, off), 2, loc, p.dep, v.dep);
}

void
ScalarOps::storeU32(Ptr p, std::int64_t off, SInt v, SL loc)
{
    auto x = static_cast<std::uint32_t>(v.v);
    std::memcpy(p.p + off, &x, 4);
    em_->emitMem(InstrClass::Store, ea(p.p, off), 4, loc, p.dep, v.dep);
}

void
ScalarOps::storeU64(Ptr p, std::int64_t off, SInt v, SL loc)
{
    auto x = static_cast<std::uint64_t>(v.v);
    std::memcpy(p.p + off, &x, 8);
    em_->emitMem(InstrClass::Store, ea(p.p, off), 8, loc, p.dep, v.dep);
}

bool
ScalarOps::branch(SInt cond, SL loc)
{
    bool taken = cond.v != 0;
    em_->emitBranch(taken, loc, cond.dep);
    return taken;
}

void
ScalarOps::loopBranch(bool taken, SL loc)
{
    em_->emitBranch(taken, loc);
}

} // namespace uasim::vmx
