/**
 * @file
 * ScalarOps: the traced scalar (PowerPC integer-unit style) facade.
 *
 * Kernels written against this facade execute functionally on the host
 * while emitting one InstrRecord per architectural instruction a
 * PowerPC-class compiler would have produced. Design choices that affect
 * accounting:
 *  - loads/stores with a constant displacement are single instructions
 *    (D-form addressing), no separate address add is emitted;
 *  - pointer increments (p += stride) are one IntAlu;
 *  - loopBranch() models a CTR-style decrement-and-branch (one Branch
 *    record, no register dependence), the common compiled loop idiom;
 *  - immediates materialize via li() (one IntAlu) and should be hoisted
 *    out of loops by the kernel writer exactly as a compiler would.
 */

#ifndef UASIM_VMX_SCALAROPS_HH
#define UASIM_VMX_SCALAROPS_HH

#include <cstdint>
#include <source_location>

#include "trace/emitter.hh"
#include "vmx/value.hh"

namespace uasim::vmx {

class ScalarOps
{
  public:
    using SL = std::source_location;

    explicit ScalarOps(trace::Emitter &em) : em_(&em) {}

    trace::Emitter &emitter() const { return *em_; }

    /// @name Register materialization
    /// @{
    SInt li(std::int64_t v, SL loc = SL::current());
    Ptr lip(std::uint8_t *p, SL loc = SL::current());
    CPtr lip(const std::uint8_t *p, SL loc = SL::current());
    /// @}

    /// @name Integer ALU (one IntAlu each)
    /// @{
    SInt add(SInt a, SInt b, SL loc = SL::current());
    SInt addi(SInt a, std::int64_t imm, SL loc = SL::current());
    SInt sub(SInt a, SInt b, SL loc = SL::current());
    SInt subfi(std::int64_t imm, SInt a, SL loc = SL::current());
    SInt neg(SInt a, SL loc = SL::current());
    SInt slli(SInt a, unsigned sh, SL loc = SL::current());
    SInt srli(SInt a, unsigned sh, SL loc = SL::current());
    SInt srai(SInt a, unsigned sh, SL loc = SL::current());
    /// register-count shifts (slw/srw)
    SInt sllv(SInt a, SInt b, SL loc = SL::current());
    SInt srlv(SInt a, SInt b, SL loc = SL::current());
    SInt andi(SInt a, std::uint64_t imm, SL loc = SL::current());
    SInt and_(SInt a, SInt b, SL loc = SL::current());
    SInt or_(SInt a, SInt b, SL loc = SL::current());
    SInt xor_(SInt a, SInt b, SL loc = SL::current());
    /// compare producing 0/1
    SInt cmplt(SInt a, SInt b, SL loc = SL::current());
    SInt cmplti(SInt a, std::int64_t imm, SL loc = SL::current());
    SInt cmpgti(SInt a, std::int64_t imm, SL loc = SL::current());
    SInt cmpeq(SInt a, SInt b, SL loc = SL::current());
    /// conditional select (isel-style, one IntAlu)
    SInt isel(SInt cond, SInt a, SInt b, SL loc = SL::current());
    /// @}

    /// @name Integer multiply (IntMul)
    /// @{
    SInt mul(SInt a, SInt b, SL loc = SL::current());
    SInt muli(SInt a, std::int64_t imm, SL loc = SL::current());
    /// @}

    /// @name Pointer arithmetic (IntAlu)
    /// @{
    Ptr padd(Ptr p, SInt idx, SL loc = SL::current());
    CPtr padd(CPtr p, SInt idx, SL loc = SL::current());
    Ptr paddi(Ptr p, std::int64_t imm, SL loc = SL::current());
    CPtr paddi(CPtr p, std::int64_t imm, SL loc = SL::current());
    /// @}

    /// @name Loads (one Load each; constant displacement is free)
    /// @{
    SInt loadU8(CPtr p, std::int64_t off = 0, SL loc = SL::current());
    SInt loadS16(CPtr p, std::int64_t off = 0, SL loc = SL::current());
    SInt loadU16(CPtr p, std::int64_t off = 0, SL loc = SL::current());
    SInt loadS32(CPtr p, std::int64_t off = 0, SL loc = SL::current());
    SInt loadU32(CPtr p, std::int64_t off = 0, SL loc = SL::current());
    SInt loadS64(CPtr p, std::int64_t off = 0, SL loc = SL::current());
    /// indexed-form load (register offset folds into the load)
    SInt loadU8x(CPtr p, SInt idx, SL loc = SL::current());
    /// @}

    /// @name Stores (one Store each)
    /// @{
    void storeU8(Ptr p, std::int64_t off, SInt v, SL loc = SL::current());
    void storeU16(Ptr p, std::int64_t off, SInt v, SL loc = SL::current());
    void storeU32(Ptr p, std::int64_t off, SInt v, SL loc = SL::current());
    void storeU64(Ptr p, std::int64_t off, SInt v, SL loc = SL::current());
    /// @}

    /// @name Control flow
    /// @{
    /**
     * Conditional branch on a register value.
     * @return the direction (cond.v != 0) so kernels can steer host
     * control flow with the same decision.
     */
    bool branch(SInt cond, SL loc = SL::current());
    /// CTR-style loop-closing branch: no register dependence.
    void loopBranch(bool taken, SL loc = SL::current());
    /// @}

  private:
    trace::Emitter *em_;
};

} // namespace uasim::vmx

#endif // UASIM_VMX_SCALAROPS_HH
