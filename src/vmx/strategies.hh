/**
 * @file
 * Executable version of the paper's Table I: per-ISA idioms for loading
 * and storing one unaligned 128-bit word.
 *
 * Each strategy emits the instruction sequence that ISA needs, against
 * the same VecOps facade, so instruction counts and (via the timing
 * model) latencies can be compared head to head.
 */

#ifndef UASIM_VMX_STRATEGIES_HH
#define UASIM_VMX_STRATEGIES_HH

#include <string_view>

#include "vmx/realign.hh"
#include "vmx/vecops.hh"

namespace uasim::vmx {

/// Unaligned-access strategies from Table I of the paper.
enum class RealignStrategy {
    HwUnaligned,    //!< this paper: lvxu / stvxu, 1 instruction
    AltivecSw,      //!< PowerPC Altivec: lvsl + 2x lvx + vperm
    CellLvlxLvrx,   //!< Cell PPE: lvlx + lvrx + vor
    SseMovdquUcode, //!< SSE2 movdqu as microcoded 2x64b load + merge
    SseLddqu,       //!< SSE3 lddqu: wide load + extract shift
    MipsAlnv,       //!< MIPS MDMX: 2 loads + alnv
    TiLdnw,         //!< TI C64x ldnw/ldndw: paired unaligned halves
    NumStrategies
};

/// Human-readable strategy name (Table I row label).
std::string_view strategyName(RealignStrategy s);

/// ISA / extension the strategy comes from (Table I column).
std::string_view strategyIsa(RealignStrategy s);

/// Architectural instructions one unaligned load costs (steady state).
int strategyLoadInstrs(RealignStrategy s);

/// Architectural instructions one unaligned 16B store costs
/// (steady state; 0 means the ISA has no unaligned-store idiom and
/// must fall back to the Altivec Fig 5 sequence).
int strategyStoreInstrs(RealignStrategy s);

/**
 * Emit one unaligned 16B load using @p s; functional result always
 * equals the 16 bytes at p+off.
 */
Vec strategyLoadU(VecOps &vo, RealignStrategy s, CPtr p,
                  std::int64_t off = 0);

/**
 * Emit one unaligned 16B store using @p s (falls back to the software
 * Fig 5 sequence where the ISA has no unaligned store).
 */
void strategyStoreU(VecOps &vo, RealignStrategy s, const SwStoreCtx &ctx,
                    Vec data, Ptr p, std::int64_t off = 0);

} // namespace uasim::vmx

#endif // UASIM_VMX_STRATEGIES_HH
