/**
 * @file
 * Constant pool for vector literals.
 *
 * Real compilers materialize vector constants as aligned loads from
 * .rodata; loadConst() reproduces that: the value is interned into an
 * aligned pool and fetched with a single lvx, so constant setup costs
 * exactly what it costs on hardware (one aligned vector load, typically
 * hoisted out of loops by the kernel writer).
 */

#ifndef UASIM_VMX_CONSTPOOL_HH
#define UASIM_VMX_CONSTPOOL_HH

#include <cstring>
#include <deque>
#include <mutex>

#include "vmx/vecops.hh"

namespace uasim::vmx {

/**
 * Process-wide interning pool of 16B-aligned vector constants.
 *
 * Thread-safe: sweep workers record traces concurrently and every
 * kernel interns its tap constants. Interning is serialized by a
 * mutex; the deque never invalidates slot addresses, so returned
 * pointers stay valid without holding the lock. Slot *order* can
 * vary with thread interleaving, which is fine - trace addresses are
 * normalized per trace before any simulated counter sees them.
 */
class VecConstPool
{
  public:
    static VecConstPool &instance();

    /// Intern @p bytes and return the aligned address holding them.
    const std::uint8_t *intern(const std::uint8_t *bytes);

  private:
    struct Slot {
        alignas(16) std::uint8_t b[16];
    };

    std::mutex mutex_;
    std::deque<Slot> slots_;
};

/// Load a vector literal: one aligned vector load from the pool.
inline Vec
loadConst(VecOps &vo, const Vec &value,
          std::source_location loc = std::source_location::current())
{
    const std::uint8_t *addr =
        VecConstPool::instance().intern(value.b.data());
    return vo.lvx(CPtr{addr}, 0, loc);
}

} // namespace uasim::vmx

#endif // UASIM_VMX_CONSTPOOL_HH
