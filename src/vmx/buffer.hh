/**
 * @file
 * Guard-banded, alignment-controlled byte buffers.
 *
 * Aligned vector loads force the effective address down to a 16-byte
 * boundary (exactly like Altivec lvx), and the software realignment idiom
 * reads up to 15 bytes past the last referenced element. All memory given
 * to traced kernels must therefore carry guard bands; AlignedBuffer
 * provides that, plus precise control of the base address's alignment
 * offset so experiments can place data at any (addr % 16).
 */

#ifndef UASIM_VMX_BUFFER_HH
#define UASIM_VMX_BUFFER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace uasim::vmx {

/**
 * A byte buffer with 64-byte guard bands and a controllable base offset.
 */
class AlignedBuffer
{
  public:
    static constexpr std::size_t guardBytes = 64;

    /**
     * @param size usable payload bytes.
     * @param offset desired (base address % 16) of the payload, 0..15.
     */
    explicit AlignedBuffer(std::size_t size, unsigned offset = 0)
        : storage_(size + 2 * guardBytes + 16, 0), size_(size)
    {
        auto raw = reinterpret_cast<std::uintptr_t>(storage_.data());
        std::uintptr_t aligned = (raw + guardBytes + 15) & ~std::uintptr_t{15};
        base_ = reinterpret_cast<std::uint8_t *>(aligned) + (offset & 15);
    }

    /// Payload base pointer (alignment offset as requested).
    std::uint8_t *data() { return base_; }
    const std::uint8_t *data() const { return base_; }

    std::size_t size() const { return size_; }

    std::uint8_t &operator[](std::size_t i) { return base_[i]; }
    std::uint8_t operator[](std::size_t i) const { return base_[i]; }

    /// Fill the payload (not the guards) with a byte value.
    void
    fill(std::uint8_t value)
    {
        for (std::size_t i = 0; i < size_; ++i)
            base_[i] = value;
    }

  private:
    std::vector<std::uint8_t> storage_;
    std::size_t size_;
    std::uint8_t *base_;
};

} // namespace uasim::vmx

#endif // UASIM_VMX_BUFFER_HH
