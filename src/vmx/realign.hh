/**
 * @file
 * The software realignment idioms from the paper, as reusable helpers.
 *
 * These emit exactly the instruction sequences of the paper's Figure 2
 * (loads) and Figure 5 (stores); kernels that call them are accounted as
 * if the sequences were written inline.
 */

#ifndef UASIM_VMX_REALIGN_HH
#define UASIM_VMX_REALIGN_HH

#include "vmx/constpool.hh"
#include "vmx/vecops.hh"

namespace uasim::vmx {

/**
 * Software-realigned unaligned load (paper Fig 2(a)).
 *
 * lvsl + lvx + lvx(+15) + vperm = 4 instructions.
 */
inline Vec
swLoadU(VecOps &vo, CPtr p, std::int64_t off = 0,
        std::source_location loc = std::source_location::current())
{
    Vec mask = vo.lvsl(p, off, loc);
    Vec lo = vo.lvx(p, off, loc);
    Vec hi = vo.lvx(p, off + 15, loc);
    return vo.vperm(lo, hi, mask, loc);
}

/**
 * Streaming software realignment for stride-one access (paper Fig 2(b)
 * and Fig 3): the mask and the first aligned word are hoisted; each
 * next() costs one aligned load and one permute.
 */
class SwStreamLoader
{
  public:
    /// Hoisted prologue: lvsl + first lvx (2 instructions).
    SwStreamLoader(VecOps &vo, CPtr p,
                   std::source_location loc =
                       std::source_location::current())
        : vo_(&vo), p_(p), off_(0)
    {
        mask_ = vo_->lvsl(p_, 0, loc);
        prev_ = vo_->lvx(p_, 0, loc);
    }

    /// Next 16 unaligned bytes: lvx + vperm (2 instructions).
    Vec
    next(std::source_location loc = std::source_location::current())
    {
        Vec cur = vo_->lvx(p_, off_ + 16, loc);
        Vec out = vo_->vperm(prev_, cur, mask_, loc);
        prev_ = cur;
        off_ += 16;
        return out;
    }

  private:
    VecOps *vo_;
    CPtr p_;
    std::int64_t off_;
    Vec mask_;
    Vec prev_;
};

/**
 * Hoisted operands for the software store sequences (paper Fig 5):
 * the all-zero and all-ones vectors (2 VecSimple instructions).
 */
struct SwStoreCtx {
    Vec vzero;  //!< all-zero vector
    Vec vones;  //!< all-ones vector
};

/// Build the hoisted store prologue.
inline SwStoreCtx
swStoreUPrologue(VecOps &vo,
                 std::source_location loc =
                     std::source_location::current())
{
    SwStoreCtx ctx;
    ctx.vzero = vo.zero(loc);
    ctx.vones = vo.nor(ctx.vzero, ctx.vzero, loc);
    return ctx;
}

/**
 * Software unaligned 16B store, exactly the paper's Fig 5 body:
 * 2 lvx + lvsr + 2 vperm + 2 vsel + 2 stvx = 9 instructions.
 *
 * Not atomic: a racing reader can observe the intermediate state, which
 * is one of the paper's arguments for hardware stvxu.
 */
inline void
swStoreU(VecOps &vo, const SwStoreCtx &ctx, Vec data, Ptr p,
         std::int64_t off = 0,
         std::source_location loc = std::source_location::current())
{
    Vec dst1 = vo.lvx(CPtr{p}, off, loc);
    Vec dst2 = vo.lvx(CPtr{p}, off + 16, loc);
    Vec dstperm = vo.lvsr(CPtr{p}, off, loc);
    Vec dstmask = vo.vperm(ctx.vzero, ctx.vones, dstperm, loc);
    Vec rdata = vo.vperm(data, data, dstperm, loc);
    Vec fdst1 = vo.sel(dst1, rdata, dstmask, loc);
    Vec fdst2 = vo.sel(rdata, dst2, dstmask, loc);
    vo.stvx(fdst1, p, off, loc);
    vo.stvx(fdst2, p, off + 16, loc);
}

/**
 * Materialize the "first @p width bytes" byte mask as a vector literal
 * (one aligned load from the constant pool, hoisted by callers).
 */
inline Vec
makeWidthMask(VecOps &vo, int width,
              std::source_location loc = std::source_location::current())
{
    Vec m;
    for (int i = 0; i < 16; ++i)
        m.b[i] = i < width ? 0xff : 0x00;
    return loadConst(vo, m, loc);
}

/**
 * Software partial store: first w bytes of @p data to an arbitrarily
 * aligned address (paper section II-B: variable block sizes force
 * partial stores of 4 or 8 bytes). Fig 5 sequence plus width masking:
 * 12 instructions per store ("more than 10" in the paper's words).
 *
 * Correctness: with o = addr & 15, the rotated width mask covers window
 * positions [o, o+w); AND with the lvsr-derived boundary mask splits it
 * into the word-1 and word-2 parts, wrapping across the boundary when
 * o + w > 16.
 */
inline void
swStorePartial(VecOps &vo, const SwStoreCtx &ctx, Vec widthMask, Vec data,
               Ptr p, std::int64_t off = 0,
               std::source_location loc = std::source_location::current())
{
    Vec dst1 = vo.lvx(CPtr{p}, off, loc);
    Vec dst2 = vo.lvx(CPtr{p}, off + 16, loc);
    Vec dstperm = vo.lvsr(CPtr{p}, off, loc);
    Vec dstmask = vo.vperm(ctx.vzero, ctx.vones, dstperm, loc);
    Vec rwidth = vo.vperm(widthMask, widthMask, dstperm, loc);
    Vec mask1 = vo.and_(rwidth, dstmask, loc);
    Vec mask2 = vo.andc(rwidth, dstmask, loc);
    Vec rdata = vo.vperm(data, data, dstperm, loc);
    Vec fdst1 = vo.sel(dst1, rdata, mask1, loc);
    Vec fdst2 = vo.sel(dst2, rdata, mask2, loc);
    vo.stvx(fdst1, p, off, loc);
    vo.stvx(fdst2, p, off + 16, loc);
}

/**
 * Hardware partial store using the paper's stvxu: read-modify-write of
 * one unaligned word. lvxu + vsel + stvxu = 3 instructions (width mask
 * hoisted).
 */
inline void
hwStorePartial(VecOps &vo, Vec widthMask, Vec data, Ptr p,
               std::int64_t off = 0,
               std::source_location loc = std::source_location::current())
{
    Vec dst = vo.lvxu(CPtr{p}, off, loc);
    Vec merged = vo.sel(dst, data, widthMask, loc);
    vo.stvxu(merged, p, off, loc);
}

} // namespace uasim::vmx

#endif // UASIM_VMX_REALIGN_HH
