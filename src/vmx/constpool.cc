#include "vmx/constpool.hh"

namespace uasim::vmx {

VecConstPool &
VecConstPool::instance()
{
    static VecConstPool pool;
    return pool;
}

const std::uint8_t *
VecConstPool::intern(const std::uint8_t *bytes)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &slot : slots_) {
        if (std::memcmp(slot.b, bytes, 16) == 0)
            return slot.b;
    }
    slots_.emplace_back();
    std::memcpy(slots_.back().b, bytes, 16);
    return slots_.back().b;
}

} // namespace uasim::vmx
