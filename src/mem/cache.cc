#include "mem/cache.hh"

#include <bit>
#include <cassert>

namespace uasim::mem {

Cache::Cache(const CacheConfig &cfg) : cfg_(cfg)
{
    assert(cfg_.lineSize > 0 &&
           std::has_single_bit(std::uint64_t{cfg_.lineSize}));
    assert(cfg_.assoc > 0);
    numSets_ = static_cast<unsigned>(
        cfg_.size / (std::uint64_t{cfg_.lineSize} * cfg_.assoc));
    assert(numSets_ > 0 && std::has_single_bit(std::uint64_t{numSets_}));
    setShift_ = std::countr_zero(std::uint64_t{cfg_.lineSize});
    lines_.resize(std::size_t{numSets_} * cfg_.assoc);
}

Cache::Line *
Cache::set(std::uint64_t addr)
{
    std::uint64_t idx = (addr >> setShift_) & (numSets_ - 1);
    return &lines_[idx * cfg_.assoc];
}

const Cache::Line *
Cache::set(std::uint64_t addr) const
{
    std::uint64_t idx = (addr >> setShift_) & (numSets_ - 1);
    return &lines_[idx * cfg_.assoc];
}

bool
Cache::access(std::uint64_t addr, bool is_write)
{
    std::uint64_t tag = addr >> setShift_;
    Line *ways = set(addr);
    ++stats_.accesses;
    ++lruClock_;

    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        if (ways[w].valid && ways[w].tag == tag) {
            ways[w].lru = lruClock_;
            ways[w].dirty |= is_write;
            ++stats_.hits;
            return true;
        }
    }

    ++stats_.misses;

    // Choose victim: first invalid way, else LRU.
    Line *victim = &ways[0];
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        if (!ways[w].valid) {
            victim = &ways[w];
            break;
        }
        if (ways[w].lru < victim->lru)
            victim = &ways[w];
    }
    if (victim->valid && victim->dirty)
        ++stats_.writebacks;

    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->lru = lruClock_;
    return false;
}

bool
Cache::probe(std::uint64_t addr) const
{
    std::uint64_t tag = addr >> setShift_;
    const Line *ways = set(addr);
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        if (ways[w].valid && ways[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line = Line{};
}

} // namespace uasim::mem
