/**
 * @file
 * Two-level memory hierarchy with the paper's alignment-network model.
 *
 * Geometry follows Table II: split 32KB L1-I / L1-D, unified 1MB L2
 * (12-cycle latency), 250-cycle main memory. A data access that spans
 * two cache lines probes both; with the two-bank interleaved alignment
 * network of Fig 7 the probes proceed in parallel (latency = max),
 * without it they serialize (latency = sum) - that switch is the
 * "short bus / sequential miss handling" restriction of older designs.
 */

#ifndef UASIM_MEM_HIERARCHY_HH
#define UASIM_MEM_HIERARCHY_HH

#include "mem/cache.hh"

namespace uasim::mem {

/// Full hierarchy configuration (Table II defaults).
struct HierarchyConfig {
    CacheConfig l1i{"L1-I", 32 * 1024, 128, 1};
    CacheConfig l1d{"L1-D", 32 * 1024, 128, 2};
    CacheConfig l2{"L2", 1024 * 1024, 128, 8};
    int l2Latency = 12;     //!< extra cycles for an L1 miss / L2 hit
    int memLatency = 250;   //!< extra cycles for an L2 miss
    /// Fig 7 two-bank interleaved L1-D: line-crossing accesses probe
    /// both lines in parallel.
    bool parallelBanks = true;
};

/// Outcome of one data-side access.
struct AccessResult {
    int extraLatency = 0;   //!< cycles beyond the L1-hit latency
    bool l1Miss = false;
    bool l2Miss = false;
    bool crossedLine = false;
};

/**
 * The hierarchy model: owns the three caches and computes the extra
 * latency of each access. Bandwidth (ports, MSHRs) is arbitrated by the
 * pipeline model, not here.
 */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const HierarchyConfig &cfg);

    /**
     * Data access covering [addr, addr+size).
     * Accesses the L1-D (both lines if the range crosses a boundary)
     * and the L2 on miss.
     */
    AccessResult dataAccess(std::uint64_t addr, unsigned size,
                            bool is_write);

    /// Instruction fetch of the line containing @p pc.
    AccessResult fetchAccess(std::uint64_t pc);

    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    const HierarchyConfig &config() const { return cfg_; }

    /// Invalidate all levels (stats preserved).
    void flush();
    void clearStats();

  private:
    /// One line's latency through L1-D -> L2 -> memory.
    int lineLatency(std::uint64_t line_addr, bool is_write,
                    AccessResult &res);

    HierarchyConfig cfg_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
};

} // namespace uasim::mem

#endif // UASIM_MEM_HIERARCHY_HH
