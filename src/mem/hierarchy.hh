/**
 * @file
 * Two-level memory hierarchy with the paper's alignment-network model.
 *
 * Geometry follows Table II: split 32KB L1-I / L1-D, unified 1MB L2
 * (12-cycle latency), 250-cycle main memory. A data access that spans
 * two cache lines probes both; with the two-bank interleaved alignment
 * network of Fig 7 the probes proceed in parallel (latency = max),
 * without it they serialize (latency = sum) - that switch is the
 * "short bus / sequential miss handling" restriction of older designs.
 */

#ifndef UASIM_MEM_HIERARCHY_HH
#define UASIM_MEM_HIERARCHY_HH

#include "mem/cache.hh"

namespace uasim::mem {

/// Full hierarchy configuration (Table II defaults).
struct HierarchyConfig {
    CacheConfig l1i{"L1-I", 32 * 1024, 128, 1};
    CacheConfig l1d{"L1-D", 32 * 1024, 128, 2};
    CacheConfig l2{"L2", 1024 * 1024, 128, 8};
    int l2Latency = 12;     //!< extra cycles for an L1 miss / L2 hit
    int memLatency = 250;   //!< extra cycles for an L2 miss
    /// Fig 7 two-bank interleaved L1-D: line-crossing accesses probe
    /// both lines in parallel.
    bool parallelBanks = true;
    /**
     * Memory-bus bandwidth in bytes per cycle; 0 (the default)
     * disables the throttle. When enabled, each L2-miss line fill
     * occupies the bus for ceil(lineSize / memBWBytesPerCycle)
     * cycles, and a fill arriving while the bus is busy pays the
     * queuing delay on top of memLatency. Isolated misses see
     * unchanged latency either way - only concurrent miss traffic
     * beyond the configured bandwidth is penalized (the esesc memBW
     * model; SCOORE derives ~11 B/cycle from DDR2-800 at 4.5 GHz).
     */
    int memBWBytesPerCycle = 0;
};

/// Outcome of one data-side access.
struct AccessResult {
    int extraLatency = 0;   //!< cycles beyond the L1-hit latency
    bool l1Miss = false;
    bool l2Miss = false;
    bool crossedLine = false;
};

/**
 * The hierarchy model: owns the three caches and computes the extra
 * latency of each access. Bandwidth (ports, MSHRs) is arbitrated by the
 * pipeline model, not here.
 */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const HierarchyConfig &cfg);

    /**
     * Data access covering [addr, addr+size).
     * Accesses the L1-D (both lines if the range crosses a boundary)
     * and the L2 on miss. @p now is the requesting core's current
     * cycle, used only by the memBWBytesPerCycle throttle (callers
     * that never enable it may leave the default).
     */
    AccessResult dataAccess(std::uint64_t addr, unsigned size,
                            bool is_write, std::uint64_t now = 0);

    /// Instruction fetch of the line containing @p pc.
    AccessResult fetchAccess(std::uint64_t pc, std::uint64_t now = 0);

    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    const HierarchyConfig &config() const { return cfg_; }

    /// Invalidate all levels (stats preserved).
    void flush();
    void clearStats();

  private:
    /// One line's latency through L1-D -> L2 -> memory.
    int lineLatency(std::uint64_t line_addr, bool is_write,
                    AccessResult &res, std::uint64_t now);

    /// Bandwidth throttle: queuing delay of an L2-miss fill issued at
    /// @p now, advancing the bus-busy horizon by the line's transfer
    /// time. 0 when the throttle is disabled.
    int busDelay(std::uint64_t now, unsigned line_bytes);

    HierarchyConfig cfg_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    std::uint64_t busFree_ = 0;  //!< first cycle the memory bus is idle
};

} // namespace uasim::mem

#endif // UASIM_MEM_HIERARCHY_HH
