#include "mem/hierarchy.hh"

#include <algorithm>

namespace uasim::mem {

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig &cfg)
    : cfg_(cfg), l1i_(cfg.l1i), l1d_(cfg.l1d), l2_(cfg.l2)
{
}

int
MemoryHierarchy::busDelay(std::uint64_t now, unsigned line_bytes)
{
    if (cfg_.memBWBytesPerCycle <= 0)
        return 0;
    const auto bw = static_cast<std::uint64_t>(cfg_.memBWBytesPerCycle);
    const std::uint64_t start = std::max(busFree_, now);
    busFree_ = start + (line_bytes + bw - 1) / bw;
    return int(start - now);
}

int
MemoryHierarchy::lineLatency(std::uint64_t line_addr, bool is_write,
                             AccessResult &res, std::uint64_t now)
{
    if (l1d_.access(line_addr, is_write))
        return 0;
    res.l1Miss = true;
    if (l2_.access(line_addr, false))
        return cfg_.l2Latency;
    res.l2Miss = true;
    return cfg_.l2Latency + cfg_.memLatency +
        busDelay(now, cfg_.l2.lineSize);
}

AccessResult
MemoryHierarchy::dataAccess(std::uint64_t addr, unsigned size,
                            bool is_write, std::uint64_t now)
{
    AccessResult res;
    std::uint64_t first = l1d_.lineAddr(addr);
    std::uint64_t last = l1d_.lineAddr(addr + size - 1);

    int lat = lineLatency(first, is_write, res, now);
    if (last != first) {
        res.crossedLine = true;
        int lat2 = lineLatency(last, is_write, res, now);
        lat = cfg_.parallelBanks ? std::max(lat, lat2) : lat + lat2;
    }
    res.extraLatency = lat;
    return res;
}

AccessResult
MemoryHierarchy::fetchAccess(std::uint64_t pc, std::uint64_t now)
{
    AccessResult res;
    std::uint64_t line = l1i_.lineAddr(pc);
    if (l1i_.access(line, false))
        return res;
    res.l1Miss = true;
    if (l2_.access(line, false)) {
        res.extraLatency = cfg_.l2Latency;
        return res;
    }
    res.l2Miss = true;
    res.extraLatency = cfg_.l2Latency + cfg_.memLatency +
        busDelay(now, cfg_.l2.lineSize);
    return res;
}

void
MemoryHierarchy::flush()
{
    l1i_.flush();
    l1d_.flush();
    l2_.flush();
}

void
MemoryHierarchy::clearStats()
{
    l1i_.clearStats();
    l1d_.clearStats();
    l2_.clearStats();
}

} // namespace uasim::mem
