/**
 * @file
 * Set-associative cache model with LRU replacement.
 */

#ifndef UASIM_MEM_CACHE_HH
#define UASIM_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace uasim::mem {

/// Geometry of one cache level.
struct CacheConfig {
    std::string name = "cache";
    std::uint64_t size = 32 * 1024;   //!< total bytes
    unsigned lineSize = 128;          //!< bytes per line (power of two)
    unsigned assoc = 2;               //!< ways per set
};

/// Hit/miss/writeback counters.
struct CacheStats {
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;

    double
    missRate() const
    {
        return accesses ? double(misses) / double(accesses) : 0.0;
    }
};

/**
 * Write-back, write-allocate, true-LRU set-associative cache.
 *
 * Timing is owned by the hierarchy / pipeline; this class tracks
 * contents and statistics only.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Access the line containing @p addr; allocates on miss.
     * @return true on hit.
     */
    bool access(std::uint64_t addr, bool is_write);

    /// Lookup without state change. @return true if resident.
    bool probe(std::uint64_t addr) const;

    /// Invalidate everything (keeps stats).
    void flush();

    const CacheConfig &config() const { return cfg_; }
    const CacheStats &stats() const { return stats_; }
    void clearStats() { stats_ = CacheStats{}; }

    unsigned numSets() const { return numSets_; }

    /// Line-aligned address of @p addr.
    std::uint64_t
    lineAddr(std::uint64_t addr) const
    {
        return addr & ~std::uint64_t{cfg_.lineSize - 1};
    }

  private:
    struct Line {
        std::uint64_t tag = 0;
        std::uint64_t lru = 0;
        bool valid = false;
        bool dirty = false;
    };

    CacheConfig cfg_;
    CacheStats stats_;
    unsigned numSets_;
    unsigned setShift_;
    std::uint64_t lruClock_ = 0;
    std::vector<Line> lines_;  //!< numSets_ x assoc, row-major

    Line *set(std::uint64_t addr);
    const Line *set(std::uint64_t addr) const;
};

} // namespace uasim::mem

#endif // UASIM_MEM_CACHE_HH
