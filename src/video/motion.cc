#include "video/motion.hh"

namespace uasim::video {

void
MotionModel::emitPartition(std::vector<Partition> &out, Rng &rng, int x,
                           int y, int size, int base_mvx,
                           int base_mvy) const
{
    Partition p;
    p.x = static_cast<std::int16_t>(x);
    p.y = static_cast<std::int16_t>(y);
    p.w = p.h = static_cast<std::uint8_t>(size);
    p.inter = true;
    // Small per-partition refinement around the MB-level vector keeps
    // sub-partition motion coherent, like a real encoder's search.
    int jitter = size < 16 ? 2 : 0;
    p.mvxQ = static_cast<std::int16_t>(
        base_mvx + (jitter ? rng.range(-jitter, jitter) : 0));
    p.mvyQ = static_cast<std::int16_t>(
        base_mvy + (jitter ? rng.range(-jitter, jitter) : 0));
    out.push_back(p);
}

std::vector<Partition>
MotionModel::framePartitions(int frame_idx) const
{
    std::vector<Partition> out;
    const int mbw = (params_.width + 15) / 16;
    const int mbh = (params_.height + 15) / 16;
    out.reserve(std::size_t(mbw) * mbh);

    Rng rng(params_.seed * 0x9e3779b97f4a7c15ull +
            std::uint64_t(frame_idx) * 0x2545f4914f6cdd1dull + 1);

    for (int my = 0; my < mbh; ++my) {
        for (int mx = 0; mx < mbw; ++mx) {
            int x = mx * 16, y = my * 16;
            if (!rng.chance(params_.interRatio)) {
                Partition p;
                p.x = static_cast<std::int16_t>(x);
                p.y = static_cast<std::int16_t>(y);
                p.w = p.h = 16;
                p.inter = false;
                out.push_back(p);
                continue;
            }
            // MB-level motion vector.
            int mvx, mvy;
            if (rng.chance(params_.zeroMvRatio)) {
                mvx = mvy = 0;
            } else {
                mvx = static_cast<int>(params_.panXQpel) +
                      static_cast<int>(
                          rng.twoSidedGeometric(params_.mvScaleQpel));
                mvy = static_cast<int>(params_.panYQpel) +
                      static_cast<int>(
                          rng.twoSidedGeometric(params_.mvScaleQpel / 2));
            }
            double u = rng.uniform();
            if (u < params_.p16) {
                emitPartition(out, rng, x, y, 16, mvx, mvy);
            } else if (u < params_.p16 + params_.p8) {
                for (int sy = 0; sy < 2; ++sy)
                    for (int sx = 0; sx < 2; ++sx)
                        emitPartition(out, rng, x + 8 * sx, y + 8 * sy,
                                      8, mvx, mvy);
            } else {
                for (int sy = 0; sy < 4; ++sy)
                    for (int sx = 0; sx < 4; ++sx)
                        emitPartition(out, rng, x + 4 * sx, y + 4 * sy,
                                      4, mvx, mvy);
            }
        }
    }
    return out;
}

McAlignmentStats
collectMcAlignment(const SequenceParams &params, int frames)
{
    McAlignmentStats stats;
    MotionModel model(params);

    // Real plane geometry, synthetic base address 0 (16B aligned).
    Plane luma_geom(params.width, params.height);
    Plane chroma_geom(params.width / 2, params.height / 2);
    const std::int64_t ls = luma_geom.stride();
    const std::int64_t cs = chroma_geom.stride();

    for (int f = 0; f < frames; ++f) {
        for (const auto &p : model.framePartitions(f)) {
            if (!p.inter)
                continue;
            // Luma interpolation runs for fractional vectors.
            if (p.fracX() || p.fracY()) {
                std::int64_t src = p.intY() * ls + p.intX();
                stats.lumaLoad.add(static_cast<std::uint64_t>(src));
                stats.lumaStore.add(
                    static_cast<std::uint64_t>(p.y * ls + p.x));
            }
            // Chroma: half resolution, eighth-pel fractions.
            int cfx = p.mvxQ & 7, cfy = p.mvyQ & 7;
            if (cfx || cfy) {
                int cx = p.x / 2, cy = p.y / 2;
                std::int64_t src =
                    (cy + (p.mvyQ >> 3)) * cs + (cx + (p.mvxQ >> 3));
                stats.chromaLoad.add(static_cast<std::uint64_t>(src));
                stats.chromaStore.add(
                    static_cast<std::uint64_t>(cy * cs + cx));
            }
        }
    }
    return stats;
}

} // namespace uasim::video
