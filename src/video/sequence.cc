#include "video/sequence.hh"

#include <cmath>

namespace uasim::video {

std::string_view
contentName(Content c)
{
    switch (c) {
      case Content::RushHour:   return "rush_hour";
      case Content::BlueSky:    return "blue_sky";
      case Content::Pedestrian: return "pedestrian";
      case Content::Riverbed:   return "riverbed";
      default:                  return "invalid";
    }
}

std::string
SequenceParams::label() const
{
    for (const auto &r : resolutions) {
        if (r.width == width && r.height == height) {
            return std::string(r.label) + "_" +
                   std::string(contentName(content));
        }
    }
    return std::to_string(height) + "_" +
           std::string(contentName(content));
}

SequenceParams
makeParams(Content c, const Resolution &res)
{
    SequenceParams p;
    p.content = c;
    p.width = res.width;
    p.height = res.height;
    // Per-content statistics chosen to mimic the paper's description:
    // rush_hour = slow traffic (many zero vectors), blue_sky = smooth
    // pan (coherent non-zero motion), pedestrian = medium local
    // motion, riverbed = chaotic fluids where inter prediction fails.
    switch (c) {
      case Content::RushHour:
        p.interRatio = 0.90;
        p.zeroMvRatio = 0.55;
        p.mvScaleQpel = 4.0;
        p.p16 = 0.72;
        p.p8 = 0.22;
        p.residualEnergy = 5.0;
        break;
      case Content::BlueSky:
        p.interRatio = 0.92;
        p.zeroMvRatio = 0.15;
        p.mvScaleQpel = 5.0;
        p.panXQpel = 9.0;
        p.panYQpel = 2.0;
        p.p16 = 0.78;
        p.p8 = 0.17;
        p.residualEnergy = 4.0;
        break;
      case Content::Pedestrian:
        p.interRatio = 0.84;
        p.zeroMvRatio = 0.30;
        p.mvScaleQpel = 10.0;
        p.p16 = 0.60;
        p.p8 = 0.28;
        p.residualEnergy = 8.0;
        break;
      case Content::Riverbed:
        p.interRatio = 0.35;
        p.zeroMvRatio = 0.08;
        p.mvScaleQpel = 14.0;
        p.p16 = 0.38;
        p.p8 = 0.36;
        p.residualEnergy = 16.0;
        break;
    }
    // Scale motion with resolution (same content, more pixels).
    double scale = res.width / 720.0;
    p.mvScaleQpel *= scale;
    p.panXQpel *= scale;
    p.panYQpel *= scale;
    p.seed = static_cast<std::uint64_t>(c) * 1000003ull +
             static_cast<std::uint64_t>(res.width);
    return p;
}

std::vector<SequenceParams>
allSequenceParams()
{
    std::vector<SequenceParams> all;
    for (const auto &res : resolutions) {
        for (int c = 0; c < numContents; ++c)
            all.push_back(makeParams(static_cast<Content>(c), res));
    }
    return all;
}

SyntheticSequence::SyntheticSequence(const SequenceParams &params)
    : params_(params)
{
}

std::uint8_t
SyntheticSequence::lumaSample(int frameIdx, int x, int y) const
{
    // Structure: two moving gradients plus hash noise, shifted by the
    // global pan so inter prediction has something real to track.
    int px = x - static_cast<int>(frameIdx * params_.panXQpel / 4.0);
    int py = y - static_cast<int>(frameIdx * params_.panYQpel / 4.0);
    double s =
        96.0 + 48.0 * std::sin(px * 0.031) * std::cos(py * 0.017) +
        32.0 * std::sin((px + py) * 0.011);
    int noise_amp =
        params_.content == Content::Riverbed ? 48 : 12;
    int noise_seed = params_.content == Content::Riverbed
        ? frameIdx  // fluids decorrelate frame to frame
        : 0;
    int n = hashNoise(params_.seed + noise_seed, px, py) % 256;
    int v = static_cast<int>(s) + (n - 128) * noise_amp / 128;
    return static_cast<std::uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
}

void
SyntheticSequence::render(int index, Frame &frame) const
{
    Plane &yp = frame.luma();
    for (int y = 0; y < yp.height(); ++y) {
        for (int x = 0; x < yp.width(); ++x)
            yp.at(x, y) = lumaSample(index, x, y);
    }
    Plane &cb = frame.cb();
    Plane &cr = frame.cr();
    for (int y = 0; y < cb.height(); ++y) {
        for (int x = 0; x < cb.width(); ++x) {
            std::uint8_t l = yp.at(2 * x, 2 * y);
            cb.at(x, y) = static_cast<std::uint8_t>(128 + (l - 128) / 4);
            cr.at(x, y) = static_cast<std::uint8_t>(
                128 - (l - 128) / 8 +
                (hashNoise(params_.seed ^ 0x5a5a, x, y) & 7));
        }
    }
    frame.extendEdges();
}

} // namespace uasim::video
