/**
 * @file
 * Deterministic PRNG with explicit distributions.
 *
 * std::random distributions are implementation-defined; experiments
 * must be bit-reproducible across toolchains, so we own the mapping
 * from bits to variates.
 */

#ifndef UASIM_VIDEO_RNG_HH
#define UASIM_VIDEO_RNG_HH

#include <cmath>
#include <cstdint>

namespace uasim::video {

/// splitmix64: tiny, fast, well-distributed, fully deterministic.
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state_(seed ? seed : 0x9e3779b9)
    {
    }

    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /// Uniform in [0, n).
    std::uint64_t
    below(std::uint64_t n)
    {
        return n ? next() % n : 0;
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /// Uniform double in [0, 1).
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /// Bernoulli with probability p.
    bool chance(double p) { return uniform() < p; }

    /**
     * Two-sided geometric variate with scale @p s (mean magnitude ~ s):
     * a fat-ish symmetric integer distribution for motion components.
     */
    std::int64_t
    twoSidedGeometric(double s)
    {
        if (s <= 0.0)
            return 0;
        double u = uniform();
        if (u <= 0.0)
            u = 1e-12;
        double mag = -s * std::log(u);
        std::int64_t m = static_cast<std::int64_t>(mag);
        return chance(0.5) ? m : -m;
    }

  private:
    std::uint64_t state_;
};

/// Stateless 2D hash to [0,255] (texture noise).
inline std::uint8_t
hashNoise(std::uint64_t seed, int x, int y)
{
    std::uint64_t h = seed;
    h ^= static_cast<std::uint64_t>(x) * 0x8da6b343u;
    h ^= static_cast<std::uint64_t>(y) * 0xd8163841u;
    h = (h ^ (h >> 13)) * 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    return static_cast<std::uint8_t>(h & 0xff);
}

} // namespace uasim::video

#endif // UASIM_VIDEO_RNG_HH
