/**
 * @file
 * Padded, alignment-safe YUV 4:2:0 frame buffers.
 *
 * Planes carry an edge-extension border (like FFmpeg's padded frames)
 * so motion compensation may read outside the picture, and so the
 * force-aligning lvx / software realignment idioms never touch
 * unowned memory. Plane base addresses are 16B-aligned and strides are
 * multiples of 16, which makes (pixel address % 16) depend only on the
 * x coordinate and the motion vector - the property Fig 4 measures.
 */

#ifndef UASIM_VIDEO_FRAME_HH
#define UASIM_VIDEO_FRAME_HH

#include <cstdint>
#include <vector>

namespace uasim::video {

/// One padded 8-bit plane.
class Plane
{
  public:
    /// Border pixels on every side (>= MC overreach + vector guard).
    static constexpr int border = 32;

    Plane(int width, int height);

    int width() const { return width_; }
    int height() const { return height_; }
    int stride() const { return stride_; }

    /// Pointer to pixel (x, y); negative / beyond-edge coordinates
    /// reach into the border.
    std::uint8_t *
    pixel(int x, int y)
    {
        return base_ + std::ptrdiff_t{y} * stride_ + x;
    }
    const std::uint8_t *
    pixel(int x, int y) const
    {
        return base_ + std::ptrdiff_t{y} * stride_ + x;
    }

    std::uint8_t &
    at(int x, int y)
    {
        return *pixel(x, y);
    }
    std::uint8_t at(int x, int y) const { return *pixel(x, y); }

    /// Replicate edge pixels into the border (call after writing).
    void extendEdges();

    /// Fill the payload with a constant.
    void fill(std::uint8_t value);

    /// @name Full padded extent (for trace address registration)
    /// @{
    const std::uint8_t *
    paddedBase() const
    {
        return pixel(-border, -border);
    }
    std::size_t
    paddedSize() const
    {
        return std::size_t(stride_) * (height_ + 2 * border);
    }
    /// @}

  private:
    int width_;
    int height_;
    int stride_;
    std::vector<std::uint8_t> storage_;
    std::uint8_t *base_;
};

/// A YUV 4:2:0 frame: full-res luma, half-res chroma.
class Frame
{
  public:
    Frame(int width, int height)
        : width_(width), height_(height), y_(width, height),
          cb_(width / 2, height / 2), cr_(width / 2, height / 2)
    {
    }

    int width() const { return width_; }
    int height() const { return height_; }

    Plane &luma() { return y_; }
    const Plane &luma() const { return y_; }
    Plane &cb() { return cb_; }
    const Plane &cb() const { return cb_; }
    Plane &cr() { return cr_; }
    const Plane &cr() const { return cr_; }

    void
    extendEdges()
    {
        y_.extendEdges();
        cb_.extendEdges();
        cr_.extendEdges();
    }

  private:
    int width_;
    int height_;
    Plane y_;
    Plane cb_;
    Plane cr_;
};

} // namespace uasim::video

#endif // UASIM_VIDEO_FRAME_HH
