/**
 * @file
 * Synthetic video sequences standing in for the paper's test content.
 *
 * The paper uses four HD sequences (rush_hour, blue_sky, pedestrian,
 * riverbed) at 720x576, 1280x720 and 1920x1088. We reproduce their
 * *statistics* - the knobs that matter for alignment behaviour and for
 * how much work each decoder stage does:
 *   - inter-coded macroblock ratio (riverbed's fluid motion defeats
 *     motion estimation, so most of its blocks are intra);
 *   - motion magnitude and coherence (rush_hour is slow traffic,
 *     blue_sky a smooth pan, pedestrian has medium local motion);
 *   - partition-size mix (chaotic content splits into smaller blocks);
 *   - residual energy (drives coded-coefficient counts, hence CABAC
 *     and IDCT work).
 */

#ifndef UASIM_VIDEO_SEQUENCE_HH
#define UASIM_VIDEO_SEQUENCE_HH

#include <string>
#include <vector>

#include "video/frame.hh"
#include "video/rng.hh"

namespace uasim::video {

/// The four content classes named by the paper.
enum class Content { RushHour, BlueSky, Pedestrian, Riverbed };

constexpr int numContents = 4;

/// Content name as the paper spells it.
std::string_view contentName(Content c);

/// The paper's three picture sizes.
struct Resolution {
    int width;
    int height;
    std::string_view label;  //!< "576", "720", "1088"
};

constexpr Resolution resolutions[3] = {
    {720, 576, "576"},
    {1280, 720, "720"},
    {1920, 1088, "1088"},
};

/// Statistical profile of a sequence.
struct SequenceParams {
    Content content = Content::RushHour;
    int width = 720;
    int height = 576;
    double interRatio = 0.8;    //!< fraction of inter-coded MBs
    double zeroMvRatio = 0.3;   //!< inter MBs with a (0,0) vector
    double mvScaleQpel = 6.0;   //!< two-sided-geometric scale, 1/4-pel
    double panXQpel = 0.0;      //!< global pan per frame, 1/4-pel
    double panYQpel = 0.0;
    double p16 = 0.6;           //!< 16x16 partition probability
    double p8 = 0.3;            //!< 8x8 (else 4x4)
    double residualEnergy = 8.0;//!< mean abs residual amplitude
    std::uint64_t seed = 1;

    /// Sequence id string, e.g. "576_rush_hour" (Fig 4 legend).
    std::string label() const;
};

/// The paper's 4 contents x 3 resolutions = 12 input profiles.
SequenceParams makeParams(Content c, const Resolution &res);

/// All 12 profiles in Fig 4 legend order.
std::vector<SequenceParams> allSequenceParams();

/**
 * Procedural texture video: value noise plus moving structure so
 * frames are non-trivial and temporally coherent.
 */
class SyntheticSequence
{
  public:
    explicit SyntheticSequence(const SequenceParams &params);

    const SequenceParams &params() const { return params_; }

    /// Render frame @p index into @p frame (sized per params).
    void render(int index, Frame &frame) const;

  private:
    std::uint8_t lumaSample(int frameIdx, int x, int y) const;

    SequenceParams params_;
};

} // namespace uasim::video

#endif // UASIM_VIDEO_SEQUENCE_HH
