#include "video/frame.hh"

#include <cstring>

namespace uasim::video {

Plane::Plane(int width, int height) : width_(width), height_(height)
{
    stride_ = (width_ + 2 * border + 15) & ~15;
    // One border row above and below, plus 16B so vector stores to the
    // last pixels stay in bounds, plus 16B for base alignment.
    std::size_t bytes =
        std::size_t(stride_) * (height_ + 2 * border) + 32;
    storage_.assign(bytes, 0);
    auto raw = reinterpret_cast<std::uintptr_t>(storage_.data());
    std::uintptr_t aligned = (raw + 15) & ~std::uintptr_t{15};
    base_ = reinterpret_cast<std::uint8_t *>(aligned) +
            std::ptrdiff_t{border} * stride_ + border;
}

void
Plane::extendEdges()
{
    // Left/right columns.
    for (int y = 0; y < height_; ++y) {
        std::memset(pixel(-border, y), at(0, y), border);
        std::memset(pixel(width_, y), at(width_ - 1, y), border);
    }
    // Top/bottom rows (including the extended corners).
    for (int y = 1; y <= border; ++y) {
        std::memcpy(pixel(-border, -y), pixel(-border, 0),
                    std::size_t(width_) + 2 * border);
        std::memcpy(pixel(-border, height_ - 1 + y),
                    pixel(-border, height_ - 1),
                    std::size_t(width_) + 2 * border);
    }
}

void
Plane::fill(std::uint8_t value)
{
    for (int y = 0; y < height_; ++y)
        std::memset(pixel(0, y), value, width_);
}

} // namespace uasim::video
