/**
 * @file
 * Motion-compensation workload model: per-macroblock partitioning and
 * quarter-pel motion vectors with content-dependent statistics.
 *
 * This is what drives the paper's Fig 4: block load addresses are
 * base + (y + mv_int_y) * stride + (x + mv_int_x), so the distribution
 * of (address % 16) is fully determined by partition geometry and the
 * MV statistics. Store addresses ignore the MV, so their offsets are
 * the partition x positions only - predictable, exactly as the paper
 * observes.
 */

#ifndef UASIM_VIDEO_MOTION_HH
#define UASIM_VIDEO_MOTION_HH

#include <array>
#include <cstdint>
#include <vector>

#include "video/sequence.hh"

namespace uasim::video {

/// One motion-compensated partition (luma coordinates).
struct Partition {
    std::int16_t x = 0;      //!< luma x within the frame
    std::int16_t y = 0;
    std::uint8_t w = 16;     //!< 16, 8 or 4
    std::uint8_t h = 16;
    std::int16_t mvxQ = 0;   //!< quarter-pel motion vector
    std::int16_t mvyQ = 0;
    bool inter = false;      //!< intra partitions do no MC

    int fracX() const { return mvxQ & 3; }
    int fracY() const { return mvyQ & 3; }
    int intX() const { return x + (mvxQ >> 2); }
    int intY() const { return y + (mvyQ >> 2); }
};

/**
 * Deterministic partition/MV generator for a sequence profile.
 */
class MotionModel
{
  public:
    explicit MotionModel(const SequenceParams &params)
        : params_(params)
    {
    }

    /// All partitions of one frame, raster MB order.
    std::vector<Partition> framePartitions(int frame_idx) const;

    const SequenceParams &params() const { return params_; }

  private:
    void
    emitPartition(std::vector<Partition> &out, Rng &rng, int x, int y,
                  int size, int base_mvx, int base_mvy) const;

    SequenceParams params_;
};

/// Histogram of (address % 16), the paper's Fig 4 y-axis.
struct AlignmentHistogram {
    std::array<std::uint64_t, 16> counts{};
    std::uint64_t total = 0;

    void
    add(std::uint64_t addr)
    {
        ++counts[addr & 15];
        ++total;
    }

    double
    percent(int offset) const
    {
        return total ? 100.0 * double(counts[offset & 15]) / double(total)
                     : 0.0;
    }
};

/// The four Fig 4 panels for one sequence.
struct McAlignmentStats {
    AlignmentHistogram lumaLoad;    //!< Fig 4(a)
    AlignmentHistogram chromaLoad;  //!< Fig 4(b)
    AlignmentHistogram lumaStore;   //!< Fig 4(c)
    AlignmentHistogram chromaStore; //!< Fig 4(d)
};

/**
 * Walk @p frames frames of MC partitions and collect the Fig 4
 * histograms. Uses real plane strides (16B-multiple) with a base-0
 * frame address, which is exactly the residue arithmetic of a real
 * aligned frame allocation.
 */
McAlignmentStats collectMcAlignment(const SequenceParams &params,
                                    int frames);

} // namespace uasim::video

#endif // UASIM_VIDEO_MOTION_HH
