#include "h264/luma_ref.hh"

#include <vector>

#include "h264/tables.hh"

namespace uasim::h264 {

void
lumaCopyRef(const std::uint8_t *src, int src_stride, std::uint8_t *dst,
            int dst_stride, int w, int h)
{
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x)
            dst[x] = src[x];
        src += src_stride;
        dst += dst_stride;
    }
}

void
lumaHalfHRef(const std::uint8_t *src, int src_stride, std::uint8_t *dst,
             int dst_stride, int w, int h)
{
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            int v = filter6(src[x - 2], src[x - 1], src[x], src[x + 1],
                            src[x + 2], src[x + 3]);
            dst[x] = clipU8((v + 16) >> 5);
        }
        src += src_stride;
        dst += dst_stride;
    }
}

void
lumaHalfVRef(const std::uint8_t *src, int src_stride, std::uint8_t *dst,
             int dst_stride, int w, int h)
{
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            int v = filter6(src[x - 2 * src_stride],
                            src[x - src_stride], src[x],
                            src[x + src_stride], src[x + 2 * src_stride],
                            src[x + 3 * src_stride]);
            dst[x] = clipU8((v + 16) >> 5);
        }
        src += src_stride;
        dst += dst_stride;
    }
}

void
lumaHalfHVRef(const std::uint8_t *src, int src_stride, std::uint8_t *dst,
              int dst_stride, int w, int h)
{
    // Horizontal filter over h+5 rows into 32-bit intermediates, then
    // the vertical filter with the 10-bit shift.
    std::vector<int> tmp(std::size_t(w) * (h + 5));
    const std::uint8_t *s = src - 2 * src_stride;
    for (int y = 0; y < h + 5; ++y) {
        for (int x = 0; x < w; ++x) {
            tmp[std::size_t(y) * w + x] =
                filter6(s[x - 2], s[x - 1], s[x], s[x + 1], s[x + 2],
                        s[x + 3]);
        }
        s += src_stride;
    }
    for (int y = 0; y < h; ++y) {
        const int *t = &tmp[std::size_t(y + 2) * w];
        for (int x = 0; x < w; ++x) {
            int v = filter6(t[x - 2 * w], t[x - w], t[x], t[x + w],
                            t[x + 2 * w], t[x + 3 * w]);
            dst[x] = clipU8((v + 512) >> 10);
        }
        dst += dst_stride;
    }
}

namespace {

void
avgBlocks(const std::uint8_t *a, int a_stride, const std::uint8_t *b,
          int b_stride, std::uint8_t *dst, int dst_stride, int w, int h)
{
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x)
            dst[x] = static_cast<std::uint8_t>((a[x] + b[x] + 1) >> 1);
        a += a_stride;
        b += b_stride;
        dst += dst_stride;
    }
}

} // namespace

void
lumaMcRef(const std::uint8_t *src, int src_stride, std::uint8_t *dst,
          int dst_stride, int w, int h, int fx, int fy)
{
    // Scratch planes for the half-pel intermediates.
    std::vector<std::uint8_t> ba(std::size_t(w) * h);
    std::vector<std::uint8_t> bb(std::size_t(w) * h);

    auto half_h = [&](std::uint8_t *out, int row_off) {
        lumaHalfHRef(src + row_off * src_stride, src_stride, out, w, w,
                     h);
    };
    auto half_v = [&](std::uint8_t *out, int col_off) {
        lumaHalfVRef(src + col_off, src_stride, out, w, w, h);
    };
    auto copy = [&](std::uint8_t *out, int col_off, int row_off) {
        lumaCopyRef(src + row_off * src_stride + col_off, src_stride,
                    out, w, w, h);
    };

    switch (fy * 4 + fx) {
      case 0:  // G
        lumaCopyRef(src, src_stride, dst, dst_stride, w, h);
        return;
      case 1:  // a = avg(G, b)
        copy(ba.data(), 0, 0);
        half_h(bb.data(), 0);
        break;
      case 2:  // b
        lumaHalfHRef(src, src_stride, dst, dst_stride, w, h);
        return;
      case 3:  // c = avg(b, H)
        half_h(ba.data(), 0);
        copy(bb.data(), 1, 0);
        break;
      case 4:  // d = avg(G, h)
        copy(ba.data(), 0, 0);
        half_v(bb.data(), 0);
        break;
      case 5:  // e = avg(b, h)
        half_h(ba.data(), 0);
        half_v(bb.data(), 0);
        break;
      case 6:  // f = avg(b, j)
        half_h(ba.data(), 0);
        lumaHalfHVRef(src, src_stride, bb.data(), w, w, h);
        break;
      case 7:  // g = avg(b, m)
        half_h(ba.data(), 0);
        half_v(bb.data(), 1);
        break;
      case 8:  // h
        lumaHalfVRef(src, src_stride, dst, dst_stride, w, h);
        return;
      case 9:  // i = avg(h, j)
        half_v(ba.data(), 0);
        lumaHalfHVRef(src, src_stride, bb.data(), w, w, h);
        break;
      case 10: // j
        lumaHalfHVRef(src, src_stride, dst, dst_stride, w, h);
        return;
      case 11: // k = avg(j, m)
        lumaHalfHVRef(src, src_stride, ba.data(), w, w, h);
        half_v(bb.data(), 1);
        break;
      case 12: // n = avg(M, h)
        copy(ba.data(), 0, 1);
        half_v(bb.data(), 0);
        break;
      case 13: // p = avg(h, s)
        half_v(ba.data(), 0);
        half_h(bb.data(), 1);
        break;
      case 14: // q = avg(j, s)
        lumaHalfHVRef(src, src_stride, ba.data(), w, w, h);
        half_h(bb.data(), 1);
        break;
      case 15: // r = avg(m, s)
        half_v(ba.data(), 1);
        half_h(bb.data(), 1);
        break;
      default:
        return;
    }
    avgBlocks(ba.data(), w, bb.data(), w, dst, dst_stride, w, h);
}

} // namespace uasim::h264
