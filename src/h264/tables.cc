#include "h264/tables.hh"

namespace uasim::h264 {

namespace {

struct ClipTableHolder {
    std::uint8_t table[clipTableSize];

    ClipTableHolder()
    {
        for (int i = 0; i < clipTableSize; ++i)
            table[i] = clipU8(i - clipTableOffset);
    }
};

} // namespace

const std::uint8_t *
clipTable()
{
    static ClipTableHolder holder;
    return holder.table;
}

} // namespace uasim::h264
