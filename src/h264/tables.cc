#include "h264/tables.hh"

namespace uasim::h264 {

namespace {

struct ClipTableHolder {
    // 16B alignment keeps the table's 16B-granule partitioning
    // host-independent under trace::AddrNormalizer's fallback mapping
    // (see addrmap.hh): traced byte loads hit data-dependent offsets,
    // and a build-dependent (base & 15) would shift which loads share
    // a granule.
    alignas(16) std::uint8_t table[clipTableSize];

    ClipTableHolder()
    {
        for (int i = 0; i < clipTableSize; ++i)
            table[i] = clipU8(i - clipTableOffset);
    }
};

} // namespace

const std::uint8_t *
clipTable()
{
    static ClipTableHolder holder;
    return holder.table;
}

} // namespace uasim::h264
