#include "h264/cabac.hh"

#include <cmath>

namespace uasim::h264 {

const CabacTables &
CabacTables::get()
{
    static CabacTables tables = [] {
        CabacTables t;
        // Geometric probability ladder: p_0 = 0.5 down to p_63 ~ 0.018,
        // the same model the standard's tables were derived from.
        const double p_max = 0.5;
        const double p_min = 0.01875;
        const double alpha = std::pow(p_min / p_max, 1.0 / 63.0);
        for (int s = 0; s < 64; ++s) {
            double p = p_max * std::pow(alpha, s);
            for (int q = 0; q < 4; ++q) {
                // Quartile representative of range in [256, 511].
                double range_rep = 256.0 + 64.0 * q + 32.0;
                int lps = static_cast<int>(p * range_rep + 0.5);
                if (lps < 2)
                    lps = 2;
                t.lpsRange[s][q] = static_cast<std::uint16_t>(lps);
            }
            // MPS observation: probability of LPS shrinks one step.
            t.transMps[s] = static_cast<std::uint8_t>(s < 62 ? s + 1 : 62);
            // LPS observation: probability rises; step size grows with
            // skew, mirroring the standard's transition shape.
            int back = 1 + s / 4;
            t.transLps[s] = static_cast<std::uint8_t>(
                s - back < 0 ? 0 : s - back);
        }
        return t;
    }();
    return tables;
}

CabacEncoder::CabacEncoder()
{
    bytes_.reserve(4096);
}

void
CabacEncoder::putBit(int bit)
{
    auto emit = [this](int b) {
        cur_ = static_cast<std::uint8_t>((cur_ << 1) | b);
        if (++bitPos_ == 8) {
            bytes_.push_back(cur_);
            cur_ = 0;
            bitPos_ = 0;
        }
    };
    if (firstBit_) {
        // The very first carry-resolving bit is not emitted (mirrors
        // the standard's initialization).
        firstBit_ = false;
    } else {
        emit(bit);
    }
    while (outstanding_ > 0) {
        emit(1 - bit);
        --outstanding_;
    }
}

void
CabacEncoder::renorm()
{
    while (range_ < 256) {
        if (low_ >= 512) {
            putBit(1);
            low_ -= 512;
        } else if (low_ < 256) {
            putBit(0);
        } else {
            ++outstanding_;
            low_ -= 256;
        }
        low_ <<= 1;
        range_ <<= 1;
    }
}

void
CabacEncoder::encodeBin(CabacContext &ctx, int bin)
{
    const CabacTables &t = CabacTables::get();
    ++bins_;
    std::uint32_t lps = t.lpsRange[ctx.state][(range_ >> 6) & 3];
    range_ -= lps;
    if (bin == ctx.mps) {
        ctx.state = t.transMps[ctx.state];
    } else {
        low_ += range_;
        range_ = lps;
        if (ctx.state == 0)
            ctx.mps ^= 1;
        else
            ctx.state = t.transLps[ctx.state];
    }
    renorm();
}

void
CabacEncoder::encodeBypass(int bin)
{
    ++bins_;
    low_ <<= 1;
    if (bin)
        low_ += range_;
    if (low_ >= 1024) {
        putBit(1);
        low_ -= 1024;
    } else if (low_ < 512) {
        putBit(0);
    } else {
        ++outstanding_;
        low_ -= 512;
    }
}

void
CabacEncoder::encodeUEG(CabacContext *ctxs, int num_ctxs, unsigned value)
{
    // Unary prefix under adaptive contexts, capped at num_ctxs bins.
    unsigned prefix = value;
    int i = 0;
    while (prefix > 0 && i < num_ctxs) {
        encodeBin(ctxs[i], 1);
        --prefix;
        ++i;
    }
    if (i < num_ctxs) {
        encodeBin(ctxs[i], 0);
        return;
    }
    // Exp-Golomb order-0 suffix in bypass mode for the remainder.
    unsigned rem = prefix + 1;
    int bits = 0;
    while ((rem >> bits) > 1)
        ++bits;
    for (int b = 0; b < bits; ++b)
        encodeBypass(1);
    encodeBypass(0);
    for (int b = bits - 1; b >= 0; --b)
        encodeBypass((rem >> b) & 1);
}

std::vector<std::uint8_t>
CabacEncoder::finish()
{
    // Flush the full low register so the decoder can resolve the last
    // symbols unambiguously, then pad to a byte boundary.
    for (int b = 9; b >= 0; --b)
        putBit((low_ >> b) & 1);
    while (bitPos_ != 0)
        putBit(0);
    // Trailing guard bytes so the decoder can overread freely.
    bytes_.push_back(0);
    bytes_.push_back(0);
    bytes_.push_back(0);
    return std::move(bytes_);
}

CabacDecoder::CabacDecoder(const std::uint8_t *data, std::size_t size)
    : data_(data), size_(size)
{
    // 9-bit initialization, matching the 9-bit range register.
    for (int i = 0; i < 9; ++i)
        value_ = (value_ << 1) | readBit();
}

int
CabacDecoder::readBit()
{
    if (pos_ >= size_)
        return 0;
    int bit = (data_[pos_] >> (7 - bitPos_)) & 1;
    if (++bitPos_ == 8) {
        bitPos_ = 0;
        ++pos_;
    }
    return bit;
}

int
CabacDecoder::decodeBin(CabacContext &ctx)
{
    const CabacTables &t = CabacTables::get();
    ++bins_;
    std::uint32_t lps = t.lpsRange[ctx.state][(range_ >> 6) & 3];
    range_ -= lps;
    int bin;
    if (value_ >= range_) {
        value_ -= range_;
        range_ = lps;
        bin = ctx.mps ^ 1;
        if (ctx.state == 0)
            ctx.mps ^= 1;
        else
            ctx.state = t.transLps[ctx.state];
    } else {
        bin = ctx.mps;
        ctx.state = t.transMps[ctx.state];
    }
    while (range_ < 256) {
        range_ <<= 1;
        value_ = (value_ << 1) | readBit();
    }
    return bin;
}

int
CabacDecoder::decodeBypass()
{
    ++bins_;
    value_ = (value_ << 1) | readBit();
    if (value_ >= range_) {
        value_ -= range_;
        return 1;
    }
    return 0;
}

unsigned
CabacDecoder::decodeUEG(CabacContext *ctxs, int num_ctxs)
{
    unsigned prefix = 0;
    int i = 0;
    while (i < num_ctxs) {
        if (!decodeBin(ctxs[i]))
            return prefix;
        ++prefix;
        ++i;
    }
    // Bypass exp-golomb suffix.
    int bits = 0;
    while (decodeBypass())
        ++bits;
    unsigned rem = 1;
    for (int b = 0; b < bits; ++b)
        rem = (rem << 1) | decodeBypass();
    return prefix + rem - 1;
}

} // namespace uasim::h264
