/**
 * @file
 * Reference H.264 chroma motion compensation (eighth-pel bilinear).
 */

#ifndef UASIM_H264_CHROMA_REF_HH
#define UASIM_H264_CHROMA_REF_HH

#include <cstdint>

namespace uasim::h264 {

/**
 * Standard chroma interpolation:
 *   dst = ((8-dx)(8-dy) A + dx (8-dy) B + (8-dx) dy C + dx dy D + 32) >> 6
 * with dx, dy in 0..7 (the chroma fraction of a quarter-pel MV).
 */
void chromaMcRef(const std::uint8_t *src, int src_stride,
                 std::uint8_t *dst, int dst_stride, int w, int h,
                 int dx, int dy);

} // namespace uasim::h264

#endif // UASIM_H264_CHROMA_REF_HH
