#include "h264/sad_kernels.hh"

#include "vmx/realign.hh"

namespace uasim::h264 {

using vmx::CPtr;
using vmx::Ptr;
using vmx::SInt;
using vmx::Vec;

int
sadScalar(KernelCtx &ctx, const std::uint8_t *cur, int cur_stride,
          const std::uint8_t *ref, int ref_stride, int size)
{
    auto &s = ctx.so;
    CPtr c = s.lip(cur);
    CPtr r = s.lip(ref);
    SInt acc = s.li(0);
    for (int y = 0; y < size; ++y) {
        for (int x = 0; x < size; ++x) {
            SInt a = s.loadU8(c, x);
            SInt b = s.loadU8(r, x);
            SInt d = s.sub(a, b);
            // Branchy abs, as in the reference C code the paper's
            // scalar counts imply (one branch per pixel).
            SInt neg = s.cmplti(d, 0);
            if (s.branch(neg))
                d = s.neg(d);
            acc = s.add(acc, d);
            // Per-pixel loop-closing branch (inner loop not unrolled).
            s.loopBranch(x + 1 < size);
        }
        c = s.paddi(c, cur_stride);
        r = s.paddi(r, ref_stride);
        s.loopBranch(y + 1 < size);
    }
    return static_cast<int>(acc.v);
}

namespace {

/// Common vector body; @p load is the per-row unaligned-load idiom.
template <typename LoadFn>
int
sadVectorBody(KernelCtx &ctx, const std::uint8_t *cur, int cur_stride,
              const std::uint8_t *ref, int ref_stride, int size,
              LoadFn &&load)
{
    auto &s = ctx.so;
    auto &v = ctx.vo;

    CPtr c = s.lip(cur);
    CPtr r = s.lip(ref);
    Vec vzero = v.zero();
    Vec acc = vzero;
    // Narrow blocks mask the lanes beyond the block width.
    Vec wmask;
    if (size < 16)
        wmask = vmx::makeWidthMask(v, size);

    for (int y = 0; y < size; ++y) {
        Vec a = load(c);
        Vec b = load(r);
        Vec mx = v.maxu8(a, b);
        Vec mn = v.minu8(a, b);
        Vec d = v.subu8(mx, mn);
        if (size < 16)
            d = v.and_(d, wmask);
        acc = v.sum4su8(d, acc);
        c = s.paddi(c, cur_stride);
        r = s.paddi(r, ref_stride);
        s.loopBranch(y + 1 < size);
    }

    Vec total = v.sums32(acc, vzero);
    // Extract: spill the vector and reload the low word, the classic
    // Altivec reduction epilogue.
    alignas(16) static thread_local std::uint8_t spill[16];
    Ptr sp = s.lip(spill);
    v.stvx(total, sp, 0);
    SInt out = s.loadS32(CPtr{sp}, 12);
    return static_cast<int>(out.v);
}

} // namespace

int
sadAltivec(KernelCtx &ctx, const std::uint8_t *cur, int cur_stride,
           const std::uint8_t *ref, int ref_stride, int size)
{
    return sadVectorBody(ctx, cur, cur_stride, ref, ref_stride, size,
                         [&](CPtr p) { return vmx::swLoadU(ctx.vo, p); });
}

int
sadUnaligned(KernelCtx &ctx, const std::uint8_t *cur, int cur_stride,
             const std::uint8_t *ref, int ref_stride, int size)
{
    return sadVectorBody(ctx, cur, cur_stride, ref, ref_stride, size,
                         [&](CPtr p) { return ctx.vo.lvxu(p); });
}

int
sadKernel(KernelCtx &ctx, Variant v, const std::uint8_t *cur,
          int cur_stride, const std::uint8_t *ref, int ref_stride,
          int size)
{
    switch (v) {
      case Variant::Scalar:
        return sadScalar(ctx, cur, cur_stride, ref, ref_stride, size);
      case Variant::Altivec:
        return sadAltivec(ctx, cur, cur_stride, ref, ref_stride, size);
      default:
        return sadUnaligned(ctx, cur, cur_stride, ref, ref_stride, size);
    }
}

} // namespace uasim::h264
