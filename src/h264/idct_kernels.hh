/**
 * @file
 * Traced H.264 inverse-transform kernels.
 *
 * Coefficient blocks are 16B-aligned (the paper notes IDCT inputs "can
 * be properly aligned by rearrangements in the source code"), so the
 * unaligned instructions only matter in the final load-add-store
 * sequence - which is why the paper's IDCT speedups are the smallest
 * (1.06-1.09x).
 *
 * Three algorithms:
 *  - idct4x4Add: factorized butterfly (shift/add, VecSimple-heavy);
 *  - idct4x4AddMatrix: the multiply-accumulate form of [Zhou03]
 *    (vmladduhm chains, VecComplex-heavy, shorter dependence chains);
 *  - idct8x8Add: the high-profile 8x8 butterfly.
 */

#ifndef UASIM_H264_IDCT_KERNELS_HH
#define UASIM_H264_IDCT_KERNELS_HH

#include "h264/kernels.hh"

namespace uasim::h264 {

/// dst += idct(block), clipped. @p block must be 16B-aligned scratch
/// (consumed). dst must be 4B-aligned (true for all H.264 block
/// positions).
void idct4x4Add(KernelCtx &ctx, Variant v, std::uint8_t *dst,
                int dst_stride, std::int16_t *block);

/// Matrix-product formulation; bit-exact with idct4x4Add.
void idct4x4AddMatrix(KernelCtx &ctx, Variant v, std::uint8_t *dst,
                      int dst_stride, std::int16_t *block);

/// 8x8 high-profile transform. dst must be 8B-aligned.
void idct8x8Add(KernelCtx &ctx, Variant v, std::uint8_t *dst,
                int dst_stride, std::int16_t *block);

} // namespace uasim::h264

#endif // UASIM_H264_IDCT_KERNELS_HH
