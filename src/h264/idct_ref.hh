/**
 * @file
 * Reference H.264 inverse transforms (4x4 and 8x8) with the standard
 * add-to-prediction, clip, and store ("load-add-store") output stage.
 */

#ifndef UASIM_H264_IDCT_REF_HH
#define UASIM_H264_IDCT_REF_HH

#include <cstdint>

namespace uasim::h264 {

/**
 * 4x4 integer inverse transform; adds the residual to @p dst in place:
 * dst = clip(dst + ((idct(block) + 32) >> 6)).
 * @p block is row-major, already dequantized. The block is consumed
 * (left in post-row-pass state is NOT guaranteed; treat as scratch).
 */
void idct4x4AddRef(std::uint8_t *dst, int dst_stride,
                   std::int16_t block[16]);

/// 8x8 high-profile inverse transform, same output convention.
void idct8x8AddRef(std::uint8_t *dst, int dst_stride,
                   std::int16_t block[64]);

} // namespace uasim::h264

#endif // UASIM_H264_IDCT_REF_HH
