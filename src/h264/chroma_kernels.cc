#include "h264/chroma_kernels.hh"

#include "vmx/constpool.hh"
#include "vmx/realign.hh"

namespace uasim::h264 {

using vmx::CPtr;
using vmx::Ptr;
using vmx::SInt;
using vmx::Vec;

void
chromaMcScalar(KernelCtx &ctx, const std::uint8_t *src, int src_stride,
               std::uint8_t *dst, int dst_stride, int size, int dx,
               int dy)
{
    auto &s = ctx.so;
    // Weight computation, as the compiled prologue would do it.
    SInt rdx = s.li(dx);
    SInt rdy = s.li(dy);
    SInt e8x = s.subfi(8, rdx);
    SInt e8y = s.subfi(8, rdy);
    SInt wa = s.mul(e8x, e8y);
    SInt wb = s.mul(rdx, e8y);
    SInt wc = s.mul(e8x, rdy);
    SInt wd = s.mul(rdx, rdy);

    CPtr sp = s.lip(src);
    Ptr dp = s.lip(dst);
    for (int y = 0; y < size; ++y) {
        for (int x = 0; x < size; ++x) {
            SInt a = s.loadU8(sp, x);
            SInt b = s.loadU8(sp, x + 1);
            SInt c = s.loadU8(sp, x + src_stride);
            SInt d = s.loadU8(sp, x + src_stride + 1);
            SInt acc = s.mul(a, wa);
            acc = s.add(acc, s.mul(b, wb));
            acc = s.add(acc, s.mul(c, wc));
            acc = s.add(acc, s.mul(d, wd));
            acc = s.addi(acc, 32);
            acc = s.srai(acc, 6);
            s.storeU8(dp, x, acc);
        }
        sp = s.paddi(sp, src_stride);
        dp = s.paddi(dp, dst_stride);
        s.loopBranch(y + 1 < size);
    }
}

namespace {

/// Hoisted vector state shared by the two vector variants.
struct ChromaVecCtx {
    Vec vzero, va, vb, vc, vd, v32, vshift6, dstperm;
};

ChromaVecCtx
chromaProlog(KernelCtx &ctx, std::uint8_t *dst, int dx, int dy)
{
    auto &s = ctx.so;
    auto &v = ctx.vo;
    ChromaVecCtx c;

    // Scalar weight computation, spilled and splatted into u16 lanes:
    // the standard way to get run-time scalars into vector registers.
    SInt rdx = s.li(dx);
    SInt rdy = s.li(dy);
    SInt e8x = s.subfi(8, rdx);
    SInt e8y = s.subfi(8, rdy);
    SInt wa = s.mul(e8x, e8y);
    SInt wb = s.mul(rdx, e8y);
    SInt wc = s.mul(e8x, rdy);
    SInt wd = s.mul(rdx, rdy);

    alignas(16) static thread_local std::uint16_t spill[8];
    Ptr sp = s.lip(reinterpret_cast<std::uint8_t *>(spill));
    s.storeU16(sp, 0, wa);
    s.storeU16(sp, 2, wb);
    s.storeU16(sp, 4, wc);
    s.storeU16(sp, 6, wd);
    Vec packed = v.lvx(CPtr{sp});
    c.va = v.splat16(packed, 0);
    c.vb = v.splat16(packed, 1);
    c.vc = v.splat16(packed, 2);
    c.vd = v.splat16(packed, 3);

    c.vzero = v.zero();
    c.v32 = vmx::loadConst(
        v, vmx::makeVecS16({32, 32, 32, 32, 32, 32, 32, 32}));
    c.vshift6 = v.splatis16(6);
    c.dstperm = v.lvsr(CPtr{dst});
    return c;
}

/// Shared per-row math + the 4B-aligned stvewx store path.
void
chromaRowBody(KernelCtx &ctx, const ChromaVecCtx &c, Vec top, Vec bot,
              Ptr dp, int size)
{
    auto &v = ctx.vo;
    Vec t0 = v.mergeh8(top, c.vzero);
    Vec t1 = v.mergeh8(v.sld(top, top, 1), c.vzero);
    Vec b0 = v.mergeh8(bot, c.vzero);
    Vec b1 = v.mergeh8(v.sld(bot, bot, 1), c.vzero);

    Vec acc = v.mladd16(t0, c.va, c.v32);
    acc = v.mladd16(t1, c.vb, acc);
    acc = v.mladd16(b0, c.vc, acc);
    acc = v.mladd16(b1, c.vd, acc);
    Vec res = v.sr16(acc, c.vshift6);
    Vec bytes = v.packum16(res, res);

    // Chroma destinations are 4B-aligned: rotate into store position
    // and write with one stvewx per word.
    Vec rot = v.vperm(bytes, bytes, c.dstperm);
    v.stvewx(rot, dp, 0);
    if (size == 8)
        v.stvewx(rot, dp, 4);
}

} // namespace

void
chromaMcAltivec(KernelCtx &ctx, const std::uint8_t *src, int src_stride,
                std::uint8_t *dst, int dst_stride, int size, int dx,
                int dy)
{
    auto &s = ctx.so;
    auto &v = ctx.vo;
    ChromaVecCtx c = chromaProlog(ctx, dst, dx, dy);

    CPtr sp = s.lip(src);
    Ptr dp = s.lip(dst);
    Vec mask = v.lvsl(sp);  // source offset is row-invariant

    // Software-realigned load of size+1 bytes: one aligned load when
    // they fit in the word, two otherwise. The offset check is the
    // paper's "branch that depends on the unalignment offset".
    auto load_row = [&](CPtr p, std::int64_t off) {
        SInt addr = s.li(reinterpret_cast<std::int64_t>(p.p) + off);
        SInt lowbits = s.andi(addr, 15);
        SInt fits = s.cmplti(lowbits, 16 - size);
        if (s.branch(fits)) {
            Vec lo = v.lvx(p, off);
            return v.vperm(lo, lo, mask);
        }
        Vec lo = v.lvx(p, off);
        Vec hi = v.lvx(p, off + 15);
        return v.vperm(lo, hi, mask);
    };

    for (int y = 0; y < size; ++y) {
        Vec top = load_row(sp, 0);
        Vec bot = load_row(sp, src_stride);
        chromaRowBody(ctx, c, top, bot, dp, size);
        sp = s.paddi(sp, src_stride);
        dp = s.paddi(dp, dst_stride);
        s.loopBranch(y + 1 < size);
    }
}

void
chromaMcUnaligned(KernelCtx &ctx, const std::uint8_t *src,
                  int src_stride, std::uint8_t *dst, int dst_stride,
                  int size, int dx, int dy)
{
    auto &s = ctx.so;
    auto &v = ctx.vo;
    ChromaVecCtx c = chromaProlog(ctx, dst, dx, dy);

    CPtr sp = s.lip(src);
    Ptr dp = s.lip(dst);

    for (int y = 0; y < size; ++y) {
        Vec top = v.lvxu(sp, 0);
        Vec bot = v.lvxu(sp, src_stride);
        chromaRowBody(ctx, c, top, bot, dp, size);
        sp = s.paddi(sp, src_stride);
        dp = s.paddi(dp, dst_stride);
        s.loopBranch(y + 1 < size);
    }
}

void
chromaMcKernel(KernelCtx &ctx, Variant v, const std::uint8_t *src,
               int src_stride, std::uint8_t *dst, int dst_stride,
               int size, int dx, int dy)
{
    switch (v) {
      case Variant::Scalar:
        chromaMcScalar(ctx, src, src_stride, dst, dst_stride, size, dx,
                       dy);
        return;
      case Variant::Altivec:
        chromaMcAltivec(ctx, src, src_stride, dst, dst_stride, size, dx,
                        dy);
        return;
      default:
        chromaMcUnaligned(ctx, src, src_stride, dst, dst_stride, size,
                          dx, dy);
        return;
    }
}

} // namespace uasim::h264
