/**
 * @file
 * Reference sum-of-absolute-differences (the motion-estimation metric).
 */

#ifndef UASIM_H264_SAD_REF_HH
#define UASIM_H264_SAD_REF_HH

#include <cstdint>

namespace uasim::h264 {

/// SAD over a w x h block.
int sadRef(const std::uint8_t *cur, int cur_stride,
           const std::uint8_t *ref, int ref_stride, int w, int h);

} // namespace uasim::h264

#endif // UASIM_H264_SAD_REF_HH
