#include "h264/idct_ref.hh"

#include "h264/tables.hh"

namespace uasim::h264 {

void
idct4x4AddRef(std::uint8_t *dst, int dst_stride, std::int16_t block[16])
{
    int tmp[16];

    // Row pass.
    for (int i = 0; i < 4; ++i) {
        const std::int16_t *b = &block[4 * i];
        int z0 = b[0] + b[2];
        int z1 = b[0] - b[2];
        int z2 = (b[1] >> 1) - b[3];
        int z3 = b[1] + (b[3] >> 1);
        tmp[4 * i + 0] = z0 + z3;
        tmp[4 * i + 1] = z1 + z2;
        tmp[4 * i + 2] = z1 - z2;
        tmp[4 * i + 3] = z0 - z3;
    }

    // Column pass + output.
    for (int i = 0; i < 4; ++i) {
        int z0 = tmp[i] + tmp[8 + i];
        int z1 = tmp[i] - tmp[8 + i];
        int z2 = (tmp[4 + i] >> 1) - tmp[12 + i];
        int z3 = tmp[4 + i] + (tmp[12 + i] >> 1);
        int r0 = z0 + z3;
        int r1 = z1 + z2;
        int r2 = z1 - z2;
        int r3 = z0 - z3;
        dst[0 * dst_stride + i] =
            clipU8(dst[0 * dst_stride + i] + ((r0 + 32) >> 6));
        dst[1 * dst_stride + i] =
            clipU8(dst[1 * dst_stride + i] + ((r1 + 32) >> 6));
        dst[2 * dst_stride + i] =
            clipU8(dst[2 * dst_stride + i] + ((r2 + 32) >> 6));
        dst[3 * dst_stride + i] =
            clipU8(dst[3 * dst_stride + i] + ((r3 + 32) >> 6));
    }
}

namespace {

void
idct8x8Pass(int b[8])
{
    int a0 = b[0] + b[4];
    int a4 = b[0] - b[4];
    int a2 = (b[2] >> 1) - b[6];
    int a6 = b[2] + (b[6] >> 1);

    int e0 = a0 + a6;
    int e2 = a4 + a2;
    int e4 = a4 - a2;
    int e6 = a0 - a6;

    int a1 = -b[3] + b[5] - b[7] - (b[7] >> 1);
    int a3 = b[1] + b[7] - b[3] - (b[3] >> 1);
    int a5 = -b[1] + b[7] + b[5] + (b[5] >> 1);
    int a7 = b[3] + b[5] + b[1] + (b[1] >> 1);

    int e1 = a1 + (a7 >> 2);
    int e7 = a7 - (a1 >> 2);
    int e3 = a3 + (a5 >> 2);
    int e5 = a5 - (a3 >> 2);

    b[0] = e0 + e7;
    b[1] = e2 + e5;
    b[2] = e4 + e3;
    b[3] = e6 + e1;
    b[4] = e6 - e1;
    b[5] = e4 - e3;
    b[6] = e2 - e5;
    b[7] = e0 - e7;
}

} // namespace

void
idct8x8AddRef(std::uint8_t *dst, int dst_stride, std::int16_t block[64])
{
    int tmp[64];

    for (int i = 0; i < 8; ++i) {
        int row[8];
        for (int j = 0; j < 8; ++j)
            row[j] = block[8 * i + j];
        idct8x8Pass(row);
        for (int j = 0; j < 8; ++j)
            tmp[8 * i + j] = row[j];
    }

    for (int i = 0; i < 8; ++i) {
        int col[8];
        for (int j = 0; j < 8; ++j)
            col[j] = tmp[8 * j + i];
        idct8x8Pass(col);
        for (int j = 0; j < 8; ++j) {
            dst[j * dst_stride + i] = clipU8(
                dst[j * dst_stride + i] + ((col[j] + 32) >> 6));
        }
    }
}

} // namespace uasim::h264
