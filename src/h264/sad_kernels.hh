/**
 * @file
 * Traced SAD kernels (scalar / Altivec / unaligned), sizes 16/8/4.
 *
 * The Altivec structure mirrors the paper's Table III SAD row exactly:
 * per row, two software-realigned loads (lvsl + 2x lvx + vperm each),
 * the max/min/sub absolute-difference idiom, and a vsum4ubs
 * accumulation; a final vsumsws + store + scalar reload extracts the
 * result. The unaligned variant replaces each 4-instruction realigned
 * load with a single lvxu, removing ~95% of the permute instructions.
 */

#ifndef UASIM_H264_SAD_KERNELS_HH
#define UASIM_H264_SAD_KERNELS_HH

#include "h264/kernels.hh"

namespace uasim::h264 {

/// SAD over a size x size block; @p size in {16, 8, 4}.
int sadScalar(KernelCtx &ctx, const std::uint8_t *cur, int cur_stride,
              const std::uint8_t *ref, int ref_stride, int size);

int sadAltivec(KernelCtx &ctx, const std::uint8_t *cur, int cur_stride,
               const std::uint8_t *ref, int ref_stride, int size);

int sadUnaligned(KernelCtx &ctx, const std::uint8_t *cur, int cur_stride,
                 const std::uint8_t *ref, int ref_stride, int size);

/// Dispatch by variant.
int sadKernel(KernelCtx &ctx, Variant v, const std::uint8_t *cur,
              int cur_stride, const std::uint8_t *ref, int ref_stride,
              int size);

} // namespace uasim::h264

#endif // UASIM_H264_SAD_KERNELS_HH
