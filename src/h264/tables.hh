/**
 * @file
 * Shared H.264 kernel constants and the FFmpeg-style clip table.
 */

#ifndef UASIM_H264_TABLES_HH
#define UASIM_H264_TABLES_HH

#include <cstdint>

namespace uasim::h264 {

/// Clip to [0, 255].
inline std::uint8_t
clipU8(int x)
{
    return static_cast<std::uint8_t>(x < 0 ? 0 : (x > 255 ? 255 : x));
}

/**
 * FFmpeg-style crop table: clipTable()[clipTableOffset + x] == clipU8(x)
 * for x in [-clipTableOffset, 255 + clipTableOffset). Scalar kernels
 * clip through this table (one load per clip), exactly like the
 * reference C code the paper's scalar numbers come from.
 */
constexpr int clipTableOffset = 512;
constexpr int clipTableSize = 512 + 256 + 512;

const std::uint8_t *clipTable();

/// 6-tap half-pel filter: (1, -5, 20, 20, -5, 1).
inline int
filter6(int a, int b, int c, int d, int e, int f)
{
    return a - 5 * b + 20 * c + 20 * d - 5 * e + f;
}

} // namespace uasim::h264

#endif // UASIM_H264_TABLES_HH
