/**
 * @file
 * Traced luma quarter-pel MC kernels (6-tap), widths 16/8/4.
 *
 * Primitives (copy, half-H, half-V, half-HV, pairwise average) compose
 * into the full 16-position quarter-pel interpolator exactly like the
 * reference implementation, so every variant is bit-exact against
 * lumaMcRef. The paper's "luma NxN" kernel is the centre half-pel
 * position (2,2): the horizontal pass over h+5 rows into an aligned
 * 16-bit intermediate, then the vertical pass with 32-bit arithmetic.
 *
 * Realignment structure per variant:
 *  - Altivec: six hoisted lvsl masks; per row two aligned loads plus a
 *    third behind an offset-dependent branch, six vperms for the
 *    shifted tap vectors; unaligned stores via the Fig 5 sequences.
 *  - Unaligned: two lvxu per row and five constant-shift vsldoi;
 *    stores via stvxu / masked stvxu.
 */

#ifndef UASIM_H264_LUMA_KERNELS_HH
#define UASIM_H264_LUMA_KERNELS_HH

#include "h264/kernels.hh"

namespace uasim::h264 {

/**
 * dst = src (full-pel copy). @p dst_aligned marks a 16B-aligned
 * scratch destination (intermediates of composite positions), letting
 * both vector variants use plain stvx for it like compiled code would.
 */
void lumaCopy(KernelCtx &ctx, Variant v, const std::uint8_t *src,
              int src_stride, std::uint8_t *dst, int dst_stride, int w,
              int h, bool dst_aligned = false);

/// Horizontal half-pel.
void lumaHalfH(KernelCtx &ctx, Variant v, const std::uint8_t *src,
               int src_stride, std::uint8_t *dst, int dst_stride, int w,
               int h, bool dst_aligned = false);

/// Vertical half-pel.
void lumaHalfV(KernelCtx &ctx, Variant v, const std::uint8_t *src,
               int src_stride, std::uint8_t *dst, int dst_stride, int w,
               int h, bool dst_aligned = false);

/// Centre half-pel (H filter, then V filter over 16-bit intermediates).
void lumaHalfHV(KernelCtx &ctx, Variant v, const std::uint8_t *src,
                int src_stride, std::uint8_t *dst, int dst_stride,
                int w, int h, bool dst_aligned = false);

/// dst = rounded average of two w x h blocks.
void lumaAvg(KernelCtx &ctx, Variant v, const std::uint8_t *a,
             int a_stride, const std::uint8_t *b, int b_stride,
             std::uint8_t *dst, int dst_stride, int w, int h,
             bool dst_aligned = false);

/// Full quarter-pel MC for fractional position (fx, fy), 0..3 each.
void lumaMc(KernelCtx &ctx, Variant v, const std::uint8_t *src,
            int src_stride, std::uint8_t *dst, int dst_stride, int w,
            int h, int fx, int fy);

} // namespace uasim::h264

#endif // UASIM_H264_LUMA_KERNELS_HH
