#include "h264/luma_kernels.hh"

#include <cassert>

#include "h264/tables.hh"
#include "vmx/constpool.hh"
#include "vmx/realign.hh"

namespace uasim::h264 {

using vmx::CPtr;
using vmx::Ptr;
using vmx::SInt;
using vmx::Vec;

namespace {

// ---------------------------------------------------------------------
// Scalar variants (reference-C shape: 6 loads per output, shift/add
// multiplies, clip through the crop table, row loops with a branch
// every 4 pixels to model partial unrolling).
// ---------------------------------------------------------------------

/// Traced filter6 on six loaded values: shift/add form of *5 and *20.
SInt
filterScalar(vmx::ScalarOps &s, SInt m2, SInt m1, SInt p0, SInt p1,
             SInt p2, SInt p3)
{
    SInt c = s.add(p0, p1);
    SInt c20 = s.add(s.slli(c, 4), s.slli(c, 2));  // 20c = 16c + 4c
    SInt b = s.add(m1, p2);
    SInt b5 = s.add(s.slli(b, 2), b);              // 5b = 4b + b
    SInt a = s.add(m2, p3);
    return s.sub(s.add(c20, a), b5);
}

/// Clip through the crop table: one indexed load.
SInt
clipScalar(vmx::ScalarOps &s, CPtr clip_base, SInt v)
{
    return s.loadU8x(clip_base, v);
}

void
lumaCopyScalar(KernelCtx &ctx, const std::uint8_t *src, int src_stride,
               std::uint8_t *dst, int dst_stride, int w, int h)
{
    auto &s = ctx.so;
    CPtr sp = s.lip(src);
    Ptr dp = s.lip(dst);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; x += 4) {
            SInt v = s.loadU32(sp, x);
            s.storeU32(dp, x, v);
        }
        sp = s.paddi(sp, src_stride);
        dp = s.paddi(dp, dst_stride);
        s.loopBranch(y + 1 < h);
    }
}

void
lumaHalfHScalar(KernelCtx &ctx, const std::uint8_t *src, int src_stride,
                std::uint8_t *dst, int dst_stride, int w, int h)
{
    auto &s = ctx.so;
    CPtr sp = s.lip(src);
    Ptr dp = s.lip(dst);
    CPtr clip = s.lip(clipTable() + clipTableOffset);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            SInt m2 = s.loadU8(sp, x - 2);
            SInt m1 = s.loadU8(sp, x - 1);
            SInt p0 = s.loadU8(sp, x);
            SInt p1 = s.loadU8(sp, x + 1);
            SInt p2 = s.loadU8(sp, x + 2);
            SInt p3 = s.loadU8(sp, x + 3);
            SInt v = filterScalar(s, m2, m1, p0, p1, p2, p3);
            v = s.srai(s.addi(v, 16), 5);
            s.storeU8(dp, x, clipScalar(s, clip, v));
            if ((x & 3) == 3)
                s.loopBranch(x + 1 < w);
        }
        sp = s.paddi(sp, src_stride);
        dp = s.paddi(dp, dst_stride);
        s.loopBranch(y + 1 < h);
    }
}

void
lumaHalfVScalar(KernelCtx &ctx, const std::uint8_t *src, int src_stride,
                std::uint8_t *dst, int dst_stride, int w, int h)
{
    auto &s = ctx.so;
    CPtr sp = s.lip(src);
    Ptr dp = s.lip(dst);
    CPtr clip = s.lip(clipTable() + clipTableOffset);
    const int st = src_stride;
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            SInt m2 = s.loadU8(sp, x - 2 * st);
            SInt m1 = s.loadU8(sp, x - st);
            SInt p0 = s.loadU8(sp, x);
            SInt p1 = s.loadU8(sp, x + st);
            SInt p2 = s.loadU8(sp, x + 2 * st);
            SInt p3 = s.loadU8(sp, x + 3 * st);
            SInt v = filterScalar(s, m2, m1, p0, p1, p2, p3);
            v = s.srai(s.addi(v, 16), 5);
            s.storeU8(dp, x, clipScalar(s, clip, v));
            if ((x & 3) == 3)
                s.loopBranch(x + 1 < w);
        }
        sp = s.paddi(sp, src_stride);
        dp = s.paddi(dp, dst_stride);
        s.loopBranch(y + 1 < h);
    }
}

/// 16-bit intermediate buffer for the HV passes (max 16 wide, 21 rows).
struct HvScratch {
    alignas(16) std::int16_t tmp[16 * 21];
    static constexpr int stride = 16;  // elements per row
};

HvScratch &
hvScratch()
{
    static thread_local HvScratch scratch;
    return scratch;
}

void
lumaHalfHVScalar(KernelCtx &ctx, const std::uint8_t *src, int src_stride,
                 std::uint8_t *dst, int dst_stride, int w, int h)
{
    auto &s = ctx.so;
    auto &scratch = hvScratch();
    auto *tmp_raw = reinterpret_cast<std::uint8_t *>(scratch.tmp);
    const int tst = HvScratch::stride;  // int16 elements per row

    CPtr sp = s.lip(src - 2 * src_stride);
    Ptr tp = s.lip(tmp_raw);
    // Horizontal pass, h+5 rows of raw 6-tap sums into int16.
    for (int y = 0; y < h + 5; ++y) {
        for (int x = 0; x < w; ++x) {
            SInt m2 = s.loadU8(sp, x - 2);
            SInt m1 = s.loadU8(sp, x - 1);
            SInt p0 = s.loadU8(sp, x);
            SInt p1 = s.loadU8(sp, x + 1);
            SInt p2 = s.loadU8(sp, x + 2);
            SInt p3 = s.loadU8(sp, x + 3);
            SInt v = filterScalar(s, m2, m1, p0, p1, p2, p3);
            s.storeU16(tp, 2 * x, v);
            if ((x & 3) == 3)
                s.loopBranch(x + 1 < w);
        }
        sp = s.paddi(sp, src_stride);
        tp = s.paddi(tp, 2 * tst);
        s.loopBranch(y + 1 < h + 5);
    }

    CPtr tq = s.lip(tmp_raw + 2 * 2 * tst);
    Ptr dp = s.lip(dst);
    CPtr clip = s.lip(clipTable() + clipTableOffset);
    // Vertical pass over the intermediates.
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            SInt m2 = s.loadS16(tq, 2 * (x - 2 * tst));
            SInt m1 = s.loadS16(tq, 2 * (x - tst));
            SInt p0 = s.loadS16(tq, 2 * x);
            SInt p1 = s.loadS16(tq, 2 * (x + tst));
            SInt p2 = s.loadS16(tq, 2 * (x + 2 * tst));
            SInt p3 = s.loadS16(tq, 2 * (x + 3 * tst));
            SInt v = filterScalar(s, m2, m1, p0, p1, p2, p3);
            v = s.srai(s.addi(v, 512), 10);
            s.storeU8(dp, x, clipScalar(s, clip, v));
            if ((x & 3) == 3)
                s.loopBranch(x + 1 < w);
        }
        tq = s.paddi(tq, 2 * tst);
        dp = s.paddi(dp, dst_stride);
        s.loopBranch(y + 1 < h);
    }
}

void
lumaAvgScalar(KernelCtx &ctx, const std::uint8_t *a, int a_stride,
              const std::uint8_t *b, int b_stride, std::uint8_t *dst,
              int dst_stride, int w, int h)
{
    auto &s = ctx.so;
    CPtr ap = s.lip(a);
    CPtr bp = s.lip(b);
    Ptr dp = s.lip(dst);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            SInt va = s.loadU8(ap, x);
            SInt vb = s.loadU8(bp, x);
            SInt v = s.srai(s.addi(s.add(va, vb), 1), 1);
            s.storeU8(dp, x, v);
            if ((x & 3) == 3)
                s.loopBranch(x + 1 < w);
        }
        ap = s.paddi(ap, a_stride);
        bp = s.paddi(bp, b_stride);
        dp = s.paddi(dp, dst_stride);
        s.loopBranch(y + 1 < h);
    }
}

// ---------------------------------------------------------------------
// Vector variants.
// ---------------------------------------------------------------------

/// Hoisted constants for the 6-tap arithmetic.
struct TapConsts {
    Vec vzero, v20, v5, v16, vshift5;
};

TapConsts
tapConsts(KernelCtx &ctx, bool rounding)
{
    auto &v = ctx.vo;
    TapConsts c;
    c.vzero = v.zero();
    c.v20 = vmx::loadConst(
        v, vmx::makeVecS16({20, 20, 20, 20, 20, 20, 20, 20}));
    c.v5 = v.splatis16(5);
    if (rounding) {
        c.v16 = vmx::loadConst(
            v, vmx::makeVecS16({16, 16, 16, 16, 16, 16, 16, 16}));
        c.vshift5 = c.v5;  // shift count 5 reuses the splat
    }
    return c;
}

/**
 * The six shifted tap vectors for one row, per variant.
 *
 * This follows the structure the paper's Table III luma row implies
 * (244 loads over 21 rows in the Altivec version, 135 in the
 * unaligned one): each shifted tap vector is fetched independently -
 * a full software-realigned load (two lvx + vperm, lvsl masks
 * hoisted) in plain Altivec versus a single lvxu with unaligned
 * support. The halved load-port traffic is precisely where the
 * unaligned instructions buy their luma speedup.
 */
struct RowTaps {
    Vec t[6];  //!< src-2 .. src+3
};

RowTaps
loadTapsAltivec(KernelCtx &ctx, CPtr sp, const Vec masks[6])
{
    auto &v = ctx.vo;
    RowTaps r;
    for (int k = 0; k < 6; ++k) {
        Vec lo = v.lvx(sp, k - 2);
        Vec hi = v.lvx(sp, k + 13);
        r.t[k] = v.vperm(lo, hi, masks[k]);
    }
    return r;
}

RowTaps
loadTapsUnaligned(KernelCtx &ctx, CPtr sp)
{
    auto &v = ctx.vo;
    RowTaps r;
    for (int k = 0; k < 6; ++k)
        r.t[k] = v.lvxu(sp, k - 2);
    return r;
}

/// Hoist the six lvsl masks for the Altivec tap loads.
void
tapMasks(KernelCtx &ctx, CPtr sp, Vec masks[6])
{
    for (int k = 0; k < 6; ++k)
        masks[k] = ctx.vo.lvsl(sp, k - 2);
}

/**
 * One half (8 lanes) of the 16-bit 6-tap: t are zero-extended u16 tap
 * vectors. With rounding: res = (20(p0+p1) - 5(m1+p2) + (m2+p3) + 16)
 * >> 5; without: the raw sum (HV horizontal pass).
 */
Vec
filter16Half(KernelCtx &ctx, const TapConsts &c, const Vec t[6],
             bool rounding)
{
    auto &v = ctx.vo;
    Vec add_p = v.add16(t[2], t[3]);
    Vec add_m = v.add16(t[1], t[4]);
    Vec add_e = v.add16(t[0], t[5]);
    Vec t20 = v.mladd16(add_p, c.v20, rounding ? c.v16 : add_e);
    Vec t5 = v.mladd16(add_m, c.v5, c.vzero);
    Vec sum;
    if (rounding) {
        sum = v.add16(t20, add_e);
        sum = v.sub16(sum, t5);
        return v.sra16(sum, c.vshift5);
    }
    return v.sub16(t20, t5);
}

/// Store one row of w result bytes (lanes 0..w-1 of @p bytes).
struct StoreCtx {
    vmx::SwStoreCtx sw;   //!< altivec zero/ones
    Vec wmask;            //!< width mask for partial stores
    bool haveSw = false;
    bool haveMask = false;
};

void
storeRow(KernelCtx &ctx, Variant var, StoreCtx &sc, Vec bytes, Ptr dp,
         int w, bool dst_aligned)
{
    auto &v = ctx.vo;
    if (dst_aligned) {
        // Aligned scratch: plain stvx (padding may be overwritten).
        v.stvx(bytes, dp, 0);
        return;
    }
    if (var == Variant::Unaligned) {
        if (w == 16) {
            v.stvxu(bytes, dp, 0);
        } else {
            if (!sc.haveMask) {
                sc.wmask = vmx::makeWidthMask(v, w);
                sc.haveMask = true;
            }
            vmx::hwStorePartial(v, sc.wmask, bytes, dp, 0);
        }
        return;
    }
    if (!sc.haveSw) {
        sc.sw = vmx::swStoreUPrologue(v);
        sc.haveSw = true;
    }
    if (w == 16) {
        vmx::swStoreU(v, sc.sw, bytes, dp, 0);
    } else {
        if (!sc.haveMask) {
            sc.wmask = vmx::makeWidthMask(v, w);
            sc.haveMask = true;
        }
        vmx::swStorePartial(v, sc.sw, sc.wmask, bytes, dp, 0);
    }
}

void
lumaCopyVector(KernelCtx &ctx, Variant var, const std::uint8_t *src,
               int src_stride, std::uint8_t *dst, int dst_stride, int w,
               int h, bool dst_aligned)
{
    auto &s = ctx.so;
    auto &v = ctx.vo;
    CPtr sp = s.lip(src);
    Ptr dp = s.lip(dst);
    StoreCtx sc;
    Vec mask;
    if (var == Variant::Altivec)
        mask = v.lvsl(sp);  // row-invariant
    for (int y = 0; y < h; ++y) {
        Vec row;
        if (var == Variant::Altivec) {
            Vec lo = v.lvx(sp, 0);
            Vec hi = v.lvx(sp, 15);
            row = v.vperm(lo, hi, mask);
        } else {
            row = v.lvxu(sp, 0);
        }
        storeRow(ctx, var, sc, row, dp, w, dst_aligned);
        sp = s.paddi(sp, src_stride);
        dp = s.paddi(dp, dst_stride);
        s.loopBranch(y + 1 < h);
    }
}

void
lumaHalfHVector(KernelCtx &ctx, Variant var, const std::uint8_t *src,
                int src_stride, std::uint8_t *dst, int dst_stride,
                int w, int h, bool dst_aligned)
{
    auto &s = ctx.so;
    auto &v = ctx.vo;
    TapConsts c = tapConsts(ctx, true);
    StoreCtx sc;
    CPtr sp = s.lip(src);
    Ptr dp = s.lip(dst);
    Vec masks[6];
    if (var == Variant::Altivec)
        tapMasks(ctx, sp, masks);

    for (int y = 0; y < h; ++y) {
        RowTaps taps = var == Variant::Altivec
            ? loadTapsAltivec(ctx, sp, masks)
            : loadTapsUnaligned(ctx, sp);
        Vec hi_taps[6], lo_taps[6];
        for (int k = 0; k < 6; ++k)
            hi_taps[k] = v.mergeh8(taps.t[k], c.vzero);
        Vec res_h = filter16Half(ctx, c, hi_taps, true);
        Vec bytes;
        if (w == 16) {
            for (int k = 0; k < 6; ++k)
                lo_taps[k] = v.mergel8(taps.t[k], c.vzero);
            Vec res_l = filter16Half(ctx, c, lo_taps, true);
            bytes = v.packsu16(res_h, res_l);
        } else {
            bytes = v.packsu16(res_h, res_h);
        }
        storeRow(ctx, var, sc, bytes, dp, w, dst_aligned);
        sp = s.paddi(sp, src_stride);
        dp = s.paddi(dp, dst_stride);
        s.loopBranch(y + 1 < h);
    }
}

/// Load one 16-byte row (variant-specific realignment), for half-V.
Vec
loadRow(KernelCtx &ctx, Variant var, CPtr sp, std::int64_t off,
        const Vec &mask)
{
    auto &v = ctx.vo;
    if (var == Variant::Altivec) {
        Vec lo = v.lvx(sp, off);
        Vec hi = v.lvx(sp, off + 15);
        return v.vperm(lo, hi, mask);
    }
    return v.lvxu(sp, off);
}

void
lumaHalfVVector(KernelCtx &ctx, Variant var, const std::uint8_t *src,
                int src_stride, std::uint8_t *dst, int dst_stride,
                int w, int h, bool dst_aligned)
{
    auto &s = ctx.so;
    auto &v = ctx.vo;
    TapConsts c = tapConsts(ctx, true);
    StoreCtx sc;
    const int st = src_stride;
    CPtr sp = s.lip(src - 2 * st);
    Ptr dp = s.lip(dst);
    Vec mask;
    if (var == Variant::Altivec)
        mask = v.lvsl(sp);  // row-invariant offset

    // Rolling window of 6 rows, unpacked to 16-bit halves.
    Vec win_h[6], win_l[6];
    for (int k = 0; k < 5; ++k) {
        Vec row = loadRow(ctx, var, sp, k * st, mask);
        win_h[k] = v.mergeh8(row, c.vzero);
        if (w == 16)
            win_l[k] = v.mergel8(row, c.vzero);
    }
    sp = s.paddi(sp, 5 * st);

    for (int y = 0; y < h; ++y) {
        Vec row = loadRow(ctx, var, sp, 0, mask);
        win_h[5] = v.mergeh8(row, c.vzero);
        Vec res_h = filter16Half(ctx, c, win_h, true);
        Vec bytes;
        if (w == 16) {
            win_l[5] = v.mergel8(row, c.vzero);
            Vec res_l = filter16Half(ctx, c, win_l, true);
            bytes = v.packsu16(res_h, res_l);
        } else {
            bytes = v.packsu16(res_h, res_h);
        }
        storeRow(ctx, var, sc, bytes, dp, w, dst_aligned);
        for (int k = 0; k < 5; ++k) {
            win_h[k] = win_h[k + 1];
            if (w == 16)
                win_l[k] = win_l[k + 1];
        }
        sp = s.paddi(sp, st);
        dp = s.paddi(dp, dst_stride);
        s.loopBranch(y + 1 < h);
    }
}

/**
 * Vertical 6-tap over 16-bit intermediates with 32-bit accumulation:
 * one half (8 outputs) per call. Pair sums stay in 16 bits; the
 * 20/-5 weighting goes through vmsumshm on interleaved operands.
 */
Vec
filterV32Half(KernelCtx &ctx, const Vec rows[6], const Vec &vc20m5,
              const Vec &v512, const Vec &vshift10)
{
    auto &v = ctx.vo;
    Vec add_p = v.adds16(rows[2], rows[3]);
    Vec add_m = v.adds16(rows[1], rows[4]);
    Vec add_e = v.adds16(rows[0], rows[5]);
    Vec ia_h = v.mergeh16(add_p, add_m);
    Vec ia_l = v.mergel16(add_p, add_m);
    Vec acc_h = v.msums16(ia_h, vc20m5, v512);
    Vec acc_l = v.msums16(ia_l, vc20m5, v512);
    Vec e_h = v.unpackh16(add_e);
    Vec e_l = v.unpackl16(add_e);
    acc_h = v.add32(acc_h, e_h);
    acc_l = v.add32(acc_l, e_l);
    acc_h = v.sra32(acc_h, vshift10);
    acc_l = v.sra32(acc_l, vshift10);
    return v.packs32(acc_h, acc_l);
}

void
lumaHalfHVVector(KernelCtx &ctx, Variant var, const std::uint8_t *src,
                 int src_stride, std::uint8_t *dst, int dst_stride,
                 int w, int h, bool dst_aligned)
{
    auto &s = ctx.so;
    auto &v = ctx.vo;
    auto &scratch = hvScratch();
    auto *tmp_raw = reinterpret_cast<std::uint8_t *>(scratch.tmp);
    const int tst_bytes = 2 * HvScratch::stride;

    // ---- Horizontal pass into the aligned 16-bit intermediate ----
    TapConsts c = tapConsts(ctx, false);
    CPtr sp = s.lip(src - 2 * src_stride);
    Ptr tp = s.lip(tmp_raw);
    Vec masks[6];
    if (var == Variant::Altivec)
        tapMasks(ctx, sp, masks);

    for (int y = 0; y < h + 5; ++y) {
        RowTaps taps = var == Variant::Altivec
            ? loadTapsAltivec(ctx, sp, masks)
            : loadTapsUnaligned(ctx, sp);
        Vec hi_taps[6], lo_taps[6];
        for (int k = 0; k < 6; ++k)
            hi_taps[k] = v.mergeh8(taps.t[k], c.vzero);
        Vec raw_h = filter16Half(ctx, c, hi_taps, false);
        v.stvx(raw_h, tp, 0);
        if (w == 16) {
            for (int k = 0; k < 6; ++k)
                lo_taps[k] = v.mergel8(taps.t[k], c.vzero);
            Vec raw_l = filter16Half(ctx, c, lo_taps, false);
            v.stvx(raw_l, tp, 16);
        }
        sp = s.paddi(sp, src_stride);
        tp = s.paddi(tp, tst_bytes);
        s.loopBranch(y + 1 < h + 5);
    }

    // ---- Vertical pass with 32-bit accumulation ----
    Vec vc20m5 = vmx::loadConst(
        v, vmx::makeVecS16({20, -5, 20, -5, 20, -5, 20, -5}));
    Vec v512 = vmx::loadConst(
        v, vmx::makeVecS32({512, 512, 512, 512}));
    Vec vshift10 = v.splatis32(10);
    StoreCtx sc;

    CPtr tq = s.lip(tmp_raw);
    Ptr dp = s.lip(dst);
    // Rolling window of six intermediate rows (two vectors per row).
    Vec win_h[6], win_l[6];
    for (int k = 0; k < 5; ++k) {
        win_h[k] = v.lvx(tq, 0);
        if (w == 16)
            win_l[k] = v.lvx(tq, 16);
        tq = s.paddi(tq, tst_bytes);
    }

    for (int y = 0; y < h; ++y) {
        win_h[5] = v.lvx(tq, 0);
        Vec res_h = filterV32Half(ctx, win_h, vc20m5, v512, vshift10);
        Vec bytes;
        if (w == 16) {
            win_l[5] = v.lvx(tq, 16);
            Vec res_l =
                filterV32Half(ctx, win_l, vc20m5, v512, vshift10);
            bytes = v.packsu16(res_h, res_l);
        } else {
            bytes = v.packsu16(res_h, res_h);
        }
        storeRow(ctx, var, sc, bytes, dp, w, dst_aligned);
        for (int k = 0; k < 5; ++k) {
            win_h[k] = win_h[k + 1];
            if (w == 16)
                win_l[k] = win_l[k + 1];
        }
        tq = s.paddi(tq, tst_bytes);
        dp = s.paddi(dp, dst_stride);
        s.loopBranch(y + 1 < h);
    }
}

void
lumaAvgVector(KernelCtx &ctx, Variant var, const std::uint8_t *a,
              int a_stride, const std::uint8_t *b, int b_stride,
              std::uint8_t *dst, int dst_stride, int w, int h,
              bool dst_aligned)
{
    auto &s = ctx.so;
    auto &v = ctx.vo;
    CPtr ap = s.lip(a);
    CPtr bp = s.lip(b);
    Ptr dp = s.lip(dst);
    StoreCtx sc;
    // Averaging inputs are the aligned intermediates of the composite
    // positions, so loads are plain lvx in both variants.
    for (int y = 0; y < h; ++y) {
        Vec va = v.lvx(ap, 0);
        Vec vb = v.lvx(bp, 0);
        Vec r = v.avgu8(va, vb);
        storeRow(ctx, var, sc, r, dp, w, dst_aligned);
        ap = s.paddi(ap, a_stride);
        bp = s.paddi(bp, b_stride);
        dp = s.paddi(dp, dst_stride);
        s.loopBranch(y + 1 < h);
    }
}

/// Aligned scratch for composite quarter-pel positions.
struct QpelScratch {
    alignas(16) std::uint8_t a[16 * 16 + 16];
    alignas(16) std::uint8_t b[16 * 16 + 16];
    static constexpr int stride = 16;
};

QpelScratch &
qpelScratch()
{
    static thread_local QpelScratch scratch;
    return scratch;
}

} // namespace

void
lumaCopy(KernelCtx &ctx, Variant v, const std::uint8_t *src,
         int src_stride, std::uint8_t *dst, int dst_stride, int w,
         int h, bool dst_aligned)
{
    if (v == Variant::Scalar)
        lumaCopyScalar(ctx, src, src_stride, dst, dst_stride, w, h);
    else
        lumaCopyVector(ctx, v, src, src_stride, dst, dst_stride, w, h,
                       dst_aligned);
}

void
lumaHalfH(KernelCtx &ctx, Variant v, const std::uint8_t *src,
          int src_stride, std::uint8_t *dst, int dst_stride, int w,
          int h, bool dst_aligned)
{
    if (v == Variant::Scalar)
        lumaHalfHScalar(ctx, src, src_stride, dst, dst_stride, w, h);
    else
        lumaHalfHVector(ctx, v, src, src_stride, dst, dst_stride, w, h,
                        dst_aligned);
}

void
lumaHalfV(KernelCtx &ctx, Variant v, const std::uint8_t *src,
          int src_stride, std::uint8_t *dst, int dst_stride, int w,
          int h, bool dst_aligned)
{
    if (v == Variant::Scalar)
        lumaHalfVScalar(ctx, src, src_stride, dst, dst_stride, w, h);
    else
        lumaHalfVVector(ctx, v, src, src_stride, dst, dst_stride, w, h,
                        dst_aligned);
}

void
lumaHalfHV(KernelCtx &ctx, Variant v, const std::uint8_t *src,
           int src_stride, std::uint8_t *dst, int dst_stride, int w,
           int h, bool dst_aligned)
{
    if (v == Variant::Scalar)
        lumaHalfHVScalar(ctx, src, src_stride, dst, dst_stride, w, h);
    else
        lumaHalfHVVector(ctx, v, src, src_stride, dst, dst_stride, w, h,
                         dst_aligned);
}

void
lumaAvg(KernelCtx &ctx, Variant v, const std::uint8_t *a, int a_stride,
        const std::uint8_t *b, int b_stride, std::uint8_t *dst,
        int dst_stride, int w, int h, bool dst_aligned)
{
    if (v == Variant::Scalar)
        lumaAvgScalar(ctx, a, a_stride, b, b_stride, dst, dst_stride, w,
                      h);
    else
        lumaAvgVector(ctx, v, a, a_stride, b, b_stride, dst, dst_stride,
                      w, h, dst_aligned);
}

void
lumaMc(KernelCtx &ctx, Variant v, const std::uint8_t *src,
       int src_stride, std::uint8_t *dst, int dst_stride, int w, int h,
       int fx, int fy)
{
    assert(w <= 16 && h <= 16);
    auto &scratch = qpelScratch();
    const int ts = QpelScratch::stride;
    std::uint8_t *ta = scratch.a;
    std::uint8_t *tb = scratch.b;

    auto half_h = [&](std::uint8_t *out, int row_off) {
        lumaHalfH(ctx, v, src + row_off * src_stride, src_stride, out,
                  ts, w, h, true);
    };
    auto half_v = [&](std::uint8_t *out, int col_off) {
        lumaHalfV(ctx, v, src + col_off, src_stride, out, ts, w, h,
                  true);
    };
    auto half_hv = [&](std::uint8_t *out) {
        lumaHalfHV(ctx, v, src, src_stride, out, ts, w, h, true);
    };
    auto copy = [&](std::uint8_t *out, int col_off, int row_off) {
        lumaCopy(ctx, v, src + row_off * src_stride + col_off,
                 src_stride, out, ts, w, h, true);
    };

    switch (fy * 4 + fx) {
      case 0:
        lumaCopy(ctx, v, src, src_stride, dst, dst_stride, w, h);
        return;
      case 2:
        lumaHalfH(ctx, v, src, src_stride, dst, dst_stride, w, h);
        return;
      case 8:
        lumaHalfV(ctx, v, src, src_stride, dst, dst_stride, w, h);
        return;
      case 10:
        lumaHalfHV(ctx, v, src, src_stride, dst, dst_stride, w, h);
        return;
      case 1:
        copy(ta, 0, 0);
        half_h(tb, 0);
        break;
      case 3:
        half_h(ta, 0);
        copy(tb, 1, 0);
        break;
      case 4:
        copy(ta, 0, 0);
        half_v(tb, 0);
        break;
      case 5:
        half_h(ta, 0);
        half_v(tb, 0);
        break;
      case 6:
        half_h(ta, 0);
        half_hv(tb);
        break;
      case 7:
        half_h(ta, 0);
        half_v(tb, 1);
        break;
      case 9:
        half_v(ta, 0);
        half_hv(tb);
        break;
      case 11:
        half_hv(ta);
        half_v(tb, 1);
        break;
      case 12:
        copy(ta, 0, 1);
        half_v(tb, 0);
        break;
      case 13:
        half_v(ta, 0);
        half_h(tb, 1);
        break;
      case 14:
        half_hv(ta);
        half_h(tb, 1);
        break;
      case 15:
        half_v(ta, 1);
        half_h(tb, 1);
        break;
      default:
        return;
    }
    lumaAvg(ctx, v, ta, ts, tb, ts, dst, dst_stride, w, h);
}

} // namespace uasim::h264
