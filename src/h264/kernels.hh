/**
 * @file
 * Common definitions for the traced H.264 kernels.
 *
 * Every kernel of the paper's Table III exists in three variants:
 *  - Scalar: integer-unit code, clip tables, branchy abs - the shape
 *    of the reference C implementations the paper compiled;
 *  - Altivec: plain Altivec with software realignment (lvsl/vperm for
 *    loads, load-merge-store or stvewx idioms for stores);
 *  - Unaligned: Altivec extended with lvxu/stvxu.
 */

#ifndef UASIM_H264_KERNELS_HH
#define UASIM_H264_KERNELS_HH

#include <string_view>

#include "trace/emitter.hh"
#include "vmx/scalarops.hh"
#include "vmx/vecops.hh"

namespace uasim::h264 {

/// Implementation variant, the paper's three rows per kernel.
enum class Variant { Scalar, Altivec, Unaligned };

constexpr int numVariants = 3;

std::string_view variantName(Variant v);

/// Facades a traced kernel executes against (shared Emitter).
class KernelCtx
{
  public:
    explicit KernelCtx(trace::Emitter &em) : so(em), vo(em) {}

    vmx::ScalarOps so;
    vmx::VecOps vo;
};

/// The paper's kernel families.
enum class KernelId { LumaMc, ChromaMc, Idct, Sad };

std::string_view kernelName(KernelId k);

} // namespace uasim::h264

#endif // UASIM_H264_KERNELS_HH
