/**
 * @file
 * H.264-style in-loop deblocking filter (normal filter, bS 1..3).
 *
 * The paper profiles the deblocking filter as a scalar stage (its SIMD
 * version was "under development"), so only the scalar traced variant
 * exists here, plus the native reference that defines correctness.
 * Alpha/beta/tc thresholds follow the standard's exponential shape,
 * derived analytically rather than copied verbatim.
 */

#ifndef UASIM_H264_DEBLOCK_HH
#define UASIM_H264_DEBLOCK_HH

#include "h264/kernels.hh"

namespace uasim::h264 {

/// Threshold tables indexed by QP (0..51).
struct DeblockTables {
    std::uint8_t alpha[52];
    std::uint8_t beta[52];
    std::uint8_t tc0[52][3];  //!< indexed by bS-1

    static const DeblockTables &get();
};

/**
 * Filter one 4-sample edge: samples at pix[i*ystride + k*xstride] for
 * i in 0..3, k in -2..1 (p1 p0 | q0 q1, with p2/q2 consulted for the
 * tc bump). @p bs in 1..3.
 */
void deblockEdgeRef(std::uint8_t *pix, int xstride, int ystride, int bs,
                    int qp);

/// Traced scalar version of deblockEdgeRef (bit-exact with it).
void deblockEdgeScalar(KernelCtx &ctx, std::uint8_t *pix, int xstride,
                       int ystride, int bs, int qp);

/**
 * Deblock a full 16x16 luma macroblock: the three internal vertical
 * edges plus the left MB edge, then the same horizontally (the
 * standard's edge order). @return number of 4-sample edge segments
 * processed (the Fig 10 work unit).
 */
int deblockMacroblockRef(std::uint8_t *mb, int stride, int qp,
                         bool intra);

/// Traced counterpart of deblockMacroblockRef.
int deblockMacroblockScalar(KernelCtx &ctx, std::uint8_t *mb, int stride,
                            int qp, bool intra);

} // namespace uasim::h264

#endif // UASIM_H264_DEBLOCK_HH
