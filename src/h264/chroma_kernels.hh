/**
 * @file
 * Traced chroma MC kernels (eighth-pel bilinear), sizes 8 and 4.
 *
 * The Altivec variant reproduces the two properties the paper calls
 * out for chroma: a per-row branch that depends on the source
 * unalignment offset (one aligned load suffices iff offset+w+1 <= 16),
 * and stores through the rotate + stvewx idiom (chroma destinations
 * are always 4B-aligned, so both variants share the store path and the
 * unaligned instructions only help the load side - exactly the
 * Table III chroma row).
 */

#ifndef UASIM_H264_CHROMA_KERNELS_HH
#define UASIM_H264_CHROMA_KERNELS_HH

#include "h264/kernels.hh"

namespace uasim::h264 {

/// Bilinear chroma MC; @p size in {8, 4} for the vector variants
/// (any size for scalar). dx, dy in 0..7.
void chromaMcScalar(KernelCtx &ctx, const std::uint8_t *src,
                    int src_stride, std::uint8_t *dst, int dst_stride,
                    int size, int dx, int dy);

void chromaMcAltivec(KernelCtx &ctx, const std::uint8_t *src,
                     int src_stride, std::uint8_t *dst, int dst_stride,
                     int size, int dx, int dy);

void chromaMcUnaligned(KernelCtx &ctx, const std::uint8_t *src,
                       int src_stride, std::uint8_t *dst, int dst_stride,
                       int size, int dx, int dy);

void chromaMcKernel(KernelCtx &ctx, Variant v, const std::uint8_t *src,
                    int src_stride, std::uint8_t *dst, int dst_stride,
                    int size, int dx, int dy);

} // namespace uasim::h264

#endif // UASIM_H264_CHROMA_KERNELS_HH
