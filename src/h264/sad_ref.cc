#include "h264/sad_ref.hh"

namespace uasim::h264 {

int
sadRef(const std::uint8_t *cur, int cur_stride, const std::uint8_t *ref,
       int ref_stride, int w, int h)
{
    int sad = 0;
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            int d = cur[x] - ref[x];
            sad += d < 0 ? -d : d;
        }
        cur += cur_stride;
        ref += ref_stride;
    }
    return sad;
}

} // namespace uasim::h264
