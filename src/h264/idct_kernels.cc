#include "h264/idct_kernels.hh"

#include "h264/tables.hh"
#include "vmx/constpool.hh"
#include "vmx/realign.hh"

namespace uasim::h264 {

using vmx::CPtr;
using vmx::Ptr;
using vmx::SInt;
using vmx::Vec;

namespace {

// ---------------------------------------------------------------------
// Scalar variants: loads into registers, butterfly in registers, a
// 16-bit spill between passes, clip via the crop table.
// ---------------------------------------------------------------------

void
butterfly4Scalar(vmx::ScalarOps &s, SInt b[4])
{
    SInt z0 = s.add(b[0], b[2]);
    SInt z1 = s.sub(b[0], b[2]);
    SInt z2 = s.sub(s.srai(b[1], 1), b[3]);
    SInt z3 = s.add(b[1], s.srai(b[3], 1));
    b[0] = s.add(z0, z3);
    b[1] = s.add(z1, z2);
    b[2] = s.sub(z1, z2);
    b[3] = s.sub(z0, z3);
}

void
idct4x4AddScalar(KernelCtx &ctx, std::uint8_t *dst, int dst_stride,
                 std::int16_t *block)
{
    auto &s = ctx.so;
    alignas(16) static thread_local std::int16_t tmp_store[16];
    auto *tmp_raw = reinterpret_cast<std::uint8_t *>(tmp_store);

    CPtr bp = s.lip(reinterpret_cast<const std::uint8_t *>(block));
    Ptr tp = s.lip(tmp_raw);
    // Row pass.
    for (int i = 0; i < 4; ++i) {
        SInt b[4];
        for (int j = 0; j < 4; ++j)
            b[j] = s.loadS16(bp, 2 * (4 * i + j));
        butterfly4Scalar(s, b);
        for (int j = 0; j < 4; ++j)
            s.storeU16(tp, 2 * (4 * i + j), b[j]);
        s.loopBranch(i + 1 < 4);
    }
    // Column pass + load-add-store.
    CPtr tq = s.lip(tmp_raw);
    Ptr dp = s.lip(dst);
    CPtr clip = s.lip(clipTable() + clipTableOffset);
    for (int i = 0; i < 4; ++i) {
        SInt b[4];
        for (int j = 0; j < 4; ++j)
            b[j] = s.loadS16(tq, 2 * (4 * j + i));
        butterfly4Scalar(s, b);
        for (int j = 0; j < 4; ++j) {
            SInt r = s.srai(s.addi(b[j], 32), 6);
            SInt d = s.loadU8(CPtr{dp}, j * dst_stride + i);
            SInt v = s.add(d, r);
            s.storeU8(dp, j * dst_stride + i, s.loadU8x(clip, v));
        }
        s.loopBranch(i + 1 < 4);
    }
}

void
idct8x8PassScalar(vmx::ScalarOps &s, SInt b[8])
{
    SInt a0 = s.add(b[0], b[4]);
    SInt a4 = s.sub(b[0], b[4]);
    SInt a2 = s.sub(s.srai(b[2], 1), b[6]);
    SInt a6 = s.add(b[2], s.srai(b[6], 1));

    SInt e0 = s.add(a0, a6);
    SInt e2 = s.add(a4, a2);
    SInt e4 = s.sub(a4, a2);
    SInt e6 = s.sub(a0, a6);

    SInt a1 = s.sub(s.sub(s.sub(b[5], b[3]), b[7]), s.srai(b[7], 1));
    SInt a3 = s.sub(s.add(b[1], b[7]), s.add(b[3], s.srai(b[3], 1)));
    SInt a5 = s.add(s.sub(b[7], b[1]), s.add(b[5], s.srai(b[5], 1)));
    SInt a7 = s.add(s.add(b[3], b[5]), s.add(b[1], s.srai(b[1], 1)));

    SInt e1 = s.add(a1, s.srai(a7, 2));
    SInt e7 = s.sub(a7, s.srai(a1, 2));
    SInt e3 = s.add(a3, s.srai(a5, 2));
    SInt e5 = s.sub(a5, s.srai(a3, 2));

    b[0] = s.add(e0, e7);
    b[1] = s.add(e2, e5);
    b[2] = s.add(e4, e3);
    b[3] = s.add(e6, e1);
    b[4] = s.sub(e6, e1);
    b[5] = s.sub(e4, e3);
    b[6] = s.sub(e2, e5);
    b[7] = s.sub(e0, e7);
}

void
idct8x8AddScalar(KernelCtx &ctx, std::uint8_t *dst, int dst_stride,
                 std::int16_t *block)
{
    auto &s = ctx.so;
    alignas(16) static thread_local std::int32_t tmp_store[64];
    auto *tmp_raw = reinterpret_cast<std::uint8_t *>(tmp_store);

    CPtr bp = s.lip(reinterpret_cast<const std::uint8_t *>(block));
    Ptr tp = s.lip(tmp_raw);
    for (int i = 0; i < 8; ++i) {
        SInt b[8];
        for (int j = 0; j < 8; ++j)
            b[j] = s.loadS16(bp, 2 * (8 * i + j));
        idct8x8PassScalar(s, b);
        for (int j = 0; j < 8; ++j)
            s.storeU32(tp, 4 * (8 * i + j), b[j]);
        s.loopBranch(i + 1 < 8);
    }
    CPtr tq = s.lip(tmp_raw);
    Ptr dp = s.lip(dst);
    CPtr clip = s.lip(clipTable() + clipTableOffset);
    for (int i = 0; i < 8; ++i) {
        SInt b[8];
        for (int j = 0; j < 8; ++j)
            b[j] = s.loadS32(tq, 4 * (8 * j + i));
        idct8x8PassScalar(s, b);
        for (int j = 0; j < 8; ++j) {
            SInt r = s.srai(s.addi(b[j], 32), 6);
            SInt d = s.loadU8(CPtr{dp}, j * dst_stride + i);
            SInt v = s.add(d, r);
            s.storeU8(dp, j * dst_stride + i, s.loadU8x(clip, v));
        }
        s.loopBranch(i + 1 < 8);
    }
}

// ---------------------------------------------------------------------
// Vector variants.
// ---------------------------------------------------------------------

/**
 * Transpose a 4x4 s16 tile held in the low halves of four vectors.
 * 6 permutes; high lanes of the outputs are don't-care.
 */
void
transpose4(vmx::VecOps &v, Vec x[4])
{
    Vec t0 = v.mergeh16(x[0], x[2]);
    Vec t1 = v.mergeh16(x[1], x[3]);
    Vec y0 = v.mergeh16(t0, t1);
    Vec y2 = v.mergel16(t0, t1);
    x[0] = y0;
    x[1] = v.sld(y0, y0, 8);
    x[2] = y2;
    x[3] = v.sld(y2, y2, 8);
}

/// Factorized butterfly on four lane-parallel vectors (10 VecSimple).
void
butterfly4Vec(vmx::VecOps &v, Vec a[4], const Vec &vone)
{
    Vec z0 = v.add16(a[0], a[2]);
    Vec z1 = v.sub16(a[0], a[2]);
    Vec z2 = v.sub16(v.sra16(a[1], vone), a[3]);
    Vec z3 = v.add16(a[1], v.sra16(a[3], vone));
    a[0] = v.add16(z0, z3);
    a[1] = v.add16(z1, z2);
    a[2] = v.sub16(z1, z2);
    a[3] = v.sub16(z0, z3);
}

/// Matrix (multiply-accumulate) form: 4 VecSimple + 8 VecComplex,
/// bit-exact with the butterfly.
void
matrix4Vec(vmx::VecOps &v, Vec a[4], const Vec &vone, const Vec &vmone)
{
    Vec a1h = v.sra16(a[1], vone);
    Vec a3h = v.sra16(a[3], vone);
    Vec s_even = v.add16(a[0], a[2]);
    Vec d_even = v.sub16(a[0], a[2]);
    // b0 = (a0 + a2) + a1 + (a3 >> 1)
    Vec b0 = v.mladd16(a3h, vone, v.mladd16(a[1], vone, s_even));
    // b1 = (a0 - a2) + (a1 >> 1) - a3
    Vec b1 = v.mladd16(a[3], vmone, v.mladd16(a1h, vone, d_even));
    // b2 = (a0 - a2) - (a1 >> 1) + a3
    Vec b2 = v.mladd16(a[3], vone, v.mladd16(a1h, vmone, d_even));
    // b3 = (a0 + a2) - a1 - (a3 >> 1)
    Vec b3 = v.mladd16(a3h, vmone, v.mladd16(a[1], vmone, s_even));
    a[0] = b0;
    a[1] = b1;
    a[2] = b2;
    a[3] = b3;
}

/// Hoisted output-stage state for 4B-row add-and-store.
struct IdctStoreCtx {
    Vec vzero, v32, vshift6;
    Vec extract;   //!< lvsl-based: dst row bytes -> lanes 0..3 (altivec)
    Vec rot;       //!< lvsr-based: lanes 0..3 -> dst word slot (altivec)
    Vec wmask;     //!< width mask (unaligned variant)
};

IdctStoreCtx
idctStoreProlog(KernelCtx &ctx, Variant var, std::uint8_t *dst,
                int width)
{
    auto &v = ctx.vo;
    IdctStoreCtx c;
    c.vzero = v.zero();
    c.v32 = vmx::loadConst(
        v, vmx::makeVecS16({32, 32, 32, 32, 32, 32, 32, 32}));
    c.vshift6 = v.splatis16(6);
    if (var == Variant::Altivec) {
        c.extract = v.lvsl(CPtr{dst});
        c.rot = v.lvsr(CPtr{dst});
    } else {
        c.wmask = vmx::makeWidthMask(v, width);
    }
    return c;
}

/**
 * Add one residual row (s16 lanes 0..width-1 of @p res, already
 * rounded+shifted) to @p width dst pixels and store.
 *
 * Altivec path: aligned load + extract permute + merge + add + pack +
 * rotate + stvewx per word (dst is 4B-aligned in H.264).
 * Unaligned path: lvxu + merge + add + pack + select + stvxu.
 */
void
idctStoreRow(KernelCtx &ctx, Variant var, const IdctStoreCtx &c,
             Vec res, Ptr dp, int width)
{
    auto &v = ctx.vo;
    if (var == Variant::Altivec) {
        Vec dv = v.lvx(CPtr{dp}, 0);
        Vec da = v.vperm(dv, dv, c.extract);
        Vec d16 = v.mergeh8(da, c.vzero);
        Vec sum = v.add16(d16, res);
        Vec bytes = v.packsu16(sum, sum);
        Vec rot = v.vperm(bytes, bytes, c.rot);
        for (int w = 0; w < width; w += 4)
            v.stvewx(rot, dp, w);
    } else {
        Vec dv = v.lvxu(CPtr{dp}, 0);
        Vec d16 = v.mergeh8(dv, c.vzero);
        Vec sum = v.add16(d16, res);
        Vec bytes = v.packsu16(sum, sum);
        Vec merged = v.sel(dv, bytes, c.wmask);
        v.stvxu(merged, dp, 0);
    }
}

void
idct4x4AddVector(KernelCtx &ctx, Variant var, std::uint8_t *dst,
                 int dst_stride, std::int16_t *block, bool matrix)
{
    auto &s = ctx.so;
    auto &v = ctx.vo;
    Vec vone = v.splatis16(1);
    Vec vmone;
    if (matrix)
        vmone = v.splatis16(-1);
    IdctStoreCtx c = idctStoreProlog(ctx, var, dst, 4);

    CPtr bp = s.lip(reinterpret_cast<const std::uint8_t *>(block));
    Vec v01 = v.lvx(bp, 0);   // rows 0,1
    Vec v23 = v.lvx(bp, 16);  // rows 2,3

    // First transpose: columns into lanes (6 permutes).
    Vec a[4];
    Vec t0 = v.mergeh16(v01, v23);
    Vec t1 = v.mergel16(v01, v23);
    a[0] = v.mergeh16(t0, t1);
    a[2] = v.mergel16(t0, t1);
    a[1] = v.sld(a[0], a[0], 8);
    a[3] = v.sld(a[2], a[2], 8);

    if (matrix)
        matrix4Vec(v, a, vone, vmone);
    else
        butterfly4Vec(v, a, vone);

    // a[j] lane r = row-transformed value at (row r, column j);
    // transpose again so lane c = value at (row j, column c)...
    transpose4(v, a);
    // ...now a[r] lanes 0..3 hold the 4 columns of output row r: the
    // column pass mixes across the vectors, lane-parallel per column.
    if (matrix)
        matrix4Vec(v, a, vone, vmone);
    else
        butterfly4Vec(v, a, vone);

    // The paper's Altivec code peels the output sequence on the dst
    // offset (a 4-way dispatch, ~3 data-dependent branches); the
    // unaligned version replaces the whole peel with stvxu.
    if (var == Variant::Altivec) {
        SInt addr = s.li(reinterpret_cast<std::int64_t>(dst));
        SInt off = s.andi(addr, 15);
        SInt half = s.cmplti(off, 8);
        if (s.branch(half)) {
            s.branch(s.cmplti(off, 4));
        } else {
            s.branch(s.cmplti(off, 12));
        }
        s.branch(s.cmpeq(off, s.li(0)));
    }

    Ptr dp = s.lip(dst);
    for (int r = 0; r < 4; ++r) {
        Vec res = v.sra16(v.add16(a[r], c.v32), c.vshift6);
        idctStoreRow(ctx, var, c, res, dp, 4);
        dp = s.paddi(dp, dst_stride);
        s.loopBranch(r + 1 < 4);
    }
}

/// 8x8 s16 transpose: 24 permutes (merge16, merge32, then vperm with
/// two constant masks).
void
transpose8(vmx::VecOps &v, Vec x[8], const Vec &mhi, const Vec &mlo)
{
    // Stage 1: 16-bit interleave of adjacent row pairs.
    Vec s1[8];
    for (int i = 0; i < 4; ++i) {
        s1[2 * i] = v.mergeh16(x[2 * i], x[2 * i + 1]);
        s1[2 * i + 1] = v.mergel16(x[2 * i], x[2 * i + 1]);
    }
    // Stage 2: 32-bit interleave pairing (01,23) and (45,67).
    Vec s2[8];
    s2[0] = v.mergeh32(s1[0], s1[2]);
    s2[1] = v.mergel32(s1[0], s1[2]);
    s2[2] = v.mergeh32(s1[1], s1[3]);
    s2[3] = v.mergel32(s1[1], s1[3]);
    s2[4] = v.mergeh32(s1[4], s1[6]);
    s2[5] = v.mergel32(s1[4], s1[6]);
    s2[6] = v.mergeh32(s1[5], s1[7]);
    s2[7] = v.mergel32(s1[5], s1[7]);
    // Stage 3: 64-bit interleave via two constant permute masks.
    x[0] = v.vperm(s2[0], s2[4], mhi);
    x[1] = v.vperm(s2[0], s2[4], mlo);
    x[2] = v.vperm(s2[1], s2[5], mhi);
    x[3] = v.vperm(s2[1], s2[5], mlo);
    x[4] = v.vperm(s2[2], s2[6], mhi);
    x[5] = v.vperm(s2[2], s2[6], mlo);
    x[6] = v.vperm(s2[3], s2[7], mhi);
    x[7] = v.vperm(s2[3], s2[7], mlo);
}

void
butterfly8Vec(vmx::VecOps &v, Vec b[8], const Vec &vone, const Vec &vtwo)
{
    Vec a0 = v.add16(b[0], b[4]);
    Vec a4 = v.sub16(b[0], b[4]);
    Vec a2 = v.sub16(v.sra16(b[2], vone), b[6]);
    Vec a6 = v.add16(b[2], v.sra16(b[6], vone));

    Vec e0 = v.add16(a0, a6);
    Vec e2 = v.add16(a4, a2);
    Vec e4 = v.sub16(a4, a2);
    Vec e6 = v.sub16(a0, a6);

    Vec a1 = v.sub16(v.sub16(v.sub16(b[5], b[3]), b[7]),
                     v.sra16(b[7], vone));
    Vec a3 = v.sub16(v.add16(b[1], b[7]),
                     v.add16(b[3], v.sra16(b[3], vone)));
    Vec a5 = v.add16(v.sub16(b[7], b[1]),
                     v.add16(b[5], v.sra16(b[5], vone)));
    Vec a7 = v.add16(v.add16(b[3], b[5]),
                     v.add16(b[1], v.sra16(b[1], vone)));

    Vec e1 = v.add16(a1, v.sra16(a7, vtwo));
    Vec e7 = v.sub16(a7, v.sra16(a1, vtwo));
    Vec e3 = v.add16(a3, v.sra16(a5, vtwo));
    Vec e5 = v.sub16(a5, v.sra16(a3, vtwo));

    b[0] = v.add16(e0, e7);
    b[1] = v.add16(e2, e5);
    b[2] = v.add16(e4, e3);
    b[3] = v.add16(e6, e1);
    b[4] = v.sub16(e6, e1);
    b[5] = v.sub16(e4, e3);
    b[6] = v.sub16(e2, e5);
    b[7] = v.sub16(e0, e7);
}

void
idct8x8AddVector(KernelCtx &ctx, Variant var, std::uint8_t *dst,
                 int dst_stride, std::int16_t *block)
{
    auto &s = ctx.so;
    auto &v = ctx.vo;
    Vec vone = v.splatis16(1);
    Vec vtwo = v.splatis16(2);
    // Stage-3 transpose masks (64-bit interleaves).
    Vec mhi = vmx::loadConst(v, vmx::makeVecU8(
        {0, 1, 2, 3, 4, 5, 6, 7, 16, 17, 18, 19, 20, 21, 22, 23}));
    Vec mlo = vmx::loadConst(v, vmx::makeVecU8(
        {8, 9, 10, 11, 12, 13, 14, 15, 24, 25, 26, 27, 28, 29, 30, 31}));
    IdctStoreCtx c = idctStoreProlog(ctx, var, dst, 8);

    CPtr bp = s.lip(reinterpret_cast<const std::uint8_t *>(block));
    Vec b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = v.lvx(bp, 16 * i);

    transpose8(v, b, mhi, mlo);
    butterfly8Vec(v, b, vone, vtwo);
    transpose8(v, b, mhi, mlo);
    butterfly8Vec(v, b, vone, vtwo);

    if (var == Variant::Altivec) {
        SInt addr = s.li(reinterpret_cast<std::int64_t>(dst));
        SInt off = s.andi(addr, 15);
        SInt half = s.cmplti(off, 8);
        s.branch(half);
        s.branch(s.cmpeq(off, s.li(0)));
    }

    Ptr dp = s.lip(dst);
    for (int r = 0; r < 8; ++r) {
        Vec res = v.sra16(v.add16(b[r], c.v32), c.vshift6);
        idctStoreRow(ctx, var, c, res, dp, 8);
        dp = s.paddi(dp, dst_stride);
        s.loopBranch(r + 1 < 8);
    }
}

} // namespace

void
idct4x4Add(KernelCtx &ctx, Variant v, std::uint8_t *dst, int dst_stride,
           std::int16_t *block)
{
    if (v == Variant::Scalar)
        idct4x4AddScalar(ctx, dst, dst_stride, block);
    else
        idct4x4AddVector(ctx, v, dst, dst_stride, block, false);
}

void
idct4x4AddMatrix(KernelCtx &ctx, Variant v, std::uint8_t *dst,
                 int dst_stride, std::int16_t *block)
{
    if (v == Variant::Scalar)
        idct4x4AddScalar(ctx, dst, dst_stride, block);
    else
        idct4x4AddVector(ctx, v, dst, dst_stride, block, true);
}

void
idct8x8Add(KernelCtx &ctx, Variant v, std::uint8_t *dst, int dst_stride,
           std::int16_t *block)
{
    if (v == Variant::Scalar)
        idct8x8AddScalar(ctx, dst, dst_stride, block);
    else
        idct8x8AddVector(ctx, v, dst, dst_stride, block);
}

} // namespace uasim::h264
