/**
 * @file
 * Context-adaptive binary arithmetic coder (the CABAC substrate).
 *
 * Structure follows H.264's M-coder: 9-bit range, 64 probability
 * states per context with MPS/LPS transitions, a 64x4 quantized
 * LPS-range table, bypass mode for near-random bins, and
 * renormalization with outstanding-bit carry resolution on the encoder
 * side. The state-transition and LPS-range tables are derived
 * analytically from the same geometric-progression model the standard
 * used (alpha = (p_min/p_max)^(1/63)); the exact standard constants
 * are not copied, which changes compression mildly but nothing about
 * the coder's structure, determinism, or serial data dependences - the
 * properties that matter here (CABAC is the paper's example of a
 * strongly serial, non-vectorizable kernel).
 */

#ifndef UASIM_H264_CABAC_HH
#define UASIM_H264_CABAC_HH

#include <cstdint>
#include <vector>

namespace uasim::h264 {

/// One adaptive binary context: 6-bit state + MPS value.
struct CabacContext {
    std::uint8_t state = 0;  //!< 0..63, higher = more skewed
    std::uint8_t mps = 0;    //!< current most-probable symbol
};

/// Shared probability tables (computed once, process-wide).
struct CabacTables {
    std::uint16_t lpsRange[64][4];
    std::uint8_t transMps[64];
    std::uint8_t transLps[64];

    static const CabacTables &get();
};

/**
 * Arithmetic encoder producing a byte vector.
 */
class CabacEncoder
{
  public:
    CabacEncoder();

    /// Encode one bin under an adaptive context.
    void encodeBin(CabacContext &ctx, int bin);

    /// Encode one equiprobable bin (bypass).
    void encodeBypass(int bin);

    /// Encode an unsigned value as unary-truncated + exp-golomb
    /// bypass suffix (UEG0-style), capped adaptive prefix length.
    void encodeUEG(CabacContext *ctxs, int num_ctxs, unsigned value);

    /// Flush and return the bitstream.
    std::vector<std::uint8_t> finish();

    std::uint64_t binsEncoded() const { return bins_; }

  private:
    void putBit(int bit);
    void renorm();

    std::uint32_t low_ = 0;
    std::uint32_t range_ = 510;
    int outstanding_ = 0;
    bool firstBit_ = true;
    int bitPos_ = 0;
    std::uint8_t cur_ = 0;
    std::vector<std::uint8_t> bytes_;
    std::uint64_t bins_ = 0;
};

/**
 * Matching arithmetic decoder.
 */
class CabacDecoder
{
  public:
    CabacDecoder(const std::uint8_t *data, std::size_t size);

    /// Decode one adaptive bin.
    int decodeBin(CabacContext &ctx);

    /// Decode one bypass bin.
    int decodeBypass();

    /// Inverse of CabacEncoder::encodeUEG.
    unsigned decodeUEG(CabacContext *ctxs, int num_ctxs);

    std::uint64_t binsDecoded() const { return bins_; }

  private:
    int readBit();

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    int bitPos_ = 0;
    std::uint32_t range_ = 510;
    std::uint32_t value_ = 0;
    std::uint64_t bins_ = 0;
};

} // namespace uasim::h264

#endif // UASIM_H264_CABAC_HH
