#include "h264/kernels.hh"

namespace uasim::h264 {

std::string_view
variantName(Variant v)
{
    switch (v) {
      case Variant::Scalar:    return "scalar";
      case Variant::Altivec:   return "altivec";
      case Variant::Unaligned: return "unaligned";
      default:                 return "invalid";
    }
}

std::string_view
kernelName(KernelId k)
{
    switch (k) {
      case KernelId::LumaMc:   return "luma";
      case KernelId::ChromaMc: return "chroma";
      case KernelId::Idct:     return "idct";
      case KernelId::Sad:      return "sad";
      default:                 return "invalid";
    }
}

} // namespace uasim::h264
