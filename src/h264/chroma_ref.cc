#include "h264/chroma_ref.hh"

namespace uasim::h264 {

void
chromaMcRef(const std::uint8_t *src, int src_stride, std::uint8_t *dst,
            int dst_stride, int w, int h, int dx, int dy)
{
    const int a = (8 - dx) * (8 - dy);
    const int b = dx * (8 - dy);
    const int c = (8 - dx) * dy;
    const int d = dx * dy;
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            int v = a * src[x] + b * src[x + 1] +
                    c * src[x + src_stride] +
                    d * src[x + src_stride + 1];
            dst[x] = static_cast<std::uint8_t>((v + 32) >> 6);
        }
        src += src_stride;
        dst += dst_stride;
    }
}

} // namespace uasim::h264
