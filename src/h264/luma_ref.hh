/**
 * @file
 * Reference (untraced) H.264 luma quarter-pel motion compensation.
 *
 * Semantics follow the H.264 standard: half-pel samples through the
 * 6-tap (1,-5,20,20,-5,1) filter, quarter-pel samples by averaging the
 * neighbouring full/half-pel samples. These functions define functional
 * correctness for every traced kernel variant.
 */

#ifndef UASIM_H264_LUMA_REF_HH
#define UASIM_H264_LUMA_REF_HH

#include <cstdint>

namespace uasim::h264 {

/// Full-pel copy.
void lumaCopyRef(const std::uint8_t *src, int src_stride,
                 std::uint8_t *dst, int dst_stride, int w, int h);

/// Horizontal half-pel ('b' samples): clip((filter6 + 16) >> 5).
void lumaHalfHRef(const std::uint8_t *src, int src_stride,
                  std::uint8_t *dst, int dst_stride, int w, int h);

/// Vertical half-pel ('h' samples).
void lumaHalfVRef(const std::uint8_t *src, int src_stride,
                  std::uint8_t *dst, int dst_stride, int w, int h);

/// Centre half-pel ('j' samples): horizontal filter first, then the
/// vertical filter over 20-bit intermediates, clip((x + 512) >> 10).
void lumaHalfHVRef(const std::uint8_t *src, int src_stride,
                   std::uint8_t *dst, int dst_stride, int w, int h);

/**
 * Full quarter-pel MC for fractional position (@p fx, @p fy), each in
 * 0..3, composed from the primitives above per the standard's sample
 * derivation (Table 8-12 of the spec).
 */
void lumaMcRef(const std::uint8_t *src, int src_stride,
               std::uint8_t *dst, int dst_stride, int w, int h,
               int fx, int fy);

} // namespace uasim::h264

#endif // UASIM_H264_LUMA_REF_HH
