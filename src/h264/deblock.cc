#include "h264/deblock.hh"

#include <cmath>

#include "h264/tables.hh"

namespace uasim::h264 {

using vmx::CPtr;
using vmx::Ptr;
using vmx::SInt;

const DeblockTables &
DeblockTables::get()
{
    static DeblockTables t = [] {
        DeblockTables dt{};
        for (int qp = 0; qp < 52; ++qp) {
            // Exponential growth with QP, zero below the standard's
            // activation point (QP 16), saturating at 255.
            double a = 0.8 * (std::pow(2.0, qp / 6.0) - 1.0);
            double b = 0.5 * qp - 7.0;
            dt.alpha[qp] = static_cast<std::uint8_t>(
                qp < 16 ? 0 : std::min(255.0, a));
            dt.beta[qp] = static_cast<std::uint8_t>(
                qp < 16 ? 0 : std::clamp(b, 0.0, 18.0));
            for (int s = 0; s < 3; ++s) {
                double tc = (s + 1) * 0.33 * std::pow(2.0, qp / 9.0) - 1;
                dt.tc0[qp][s] = static_cast<std::uint8_t>(
                    qp < 16 ? 0 : std::clamp(tc, 0.0, 25.0));
            }
        }
        return dt;
    }();
    return t;
}

namespace {

inline int
clip3(int lo, int hi, int x)
{
    return x < lo ? lo : (x > hi ? hi : x);
}

inline int
absInt(int x)
{
    return x < 0 ? -x : x;
}

} // namespace

void
deblockEdgeRef(std::uint8_t *pix, int xstride, int ystride, int bs,
               int qp)
{
    const DeblockTables &t = DeblockTables::get();
    const int alpha = t.alpha[qp];
    const int beta = t.beta[qp];
    const int tc0 = t.tc0[qp][bs - 1];
    if (!alpha || !beta)
        return;

    for (int i = 0; i < 4; ++i) {
        std::uint8_t *p = pix + i * ystride;
        int p2 = p[-3 * xstride];
        int p1 = p[-2 * xstride];
        int p0 = p[-1 * xstride];
        int q0 = p[0];
        int q1 = p[1 * xstride];
        int q2 = p[2 * xstride];

        if (absInt(p0 - q0) >= alpha || absInt(p1 - p0) >= beta ||
            absInt(q1 - q0) >= beta) {
            continue;
        }

        int tc = tc0;
        if (absInt(p2 - p0) < beta)
            ++tc;
        if (absInt(q2 - q0) < beta)
            ++tc;
        if (!tc)
            continue;

        int delta =
            clip3(-tc, tc, (((q0 - p0) * 4) + (p1 - q1) + 4) >> 3);
        p[-1 * xstride] = clipU8(p0 + delta);
        p[0] = clipU8(q0 - delta);

        if (absInt(p2 - p0) < beta && tc0) {
            int dp = clip3(-tc0, tc0,
                           (p2 + ((p0 + q0 + 1) >> 1) - 2 * p1) >> 1);
            p[-2 * xstride] = static_cast<std::uint8_t>(p1 + dp);
        }
        if (absInt(q2 - q0) < beta && tc0) {
            int dq = clip3(-tc0, tc0,
                           (q2 + ((p0 + q0 + 1) >> 1) - 2 * q1) >> 1);
            p[1 * xstride] = static_cast<std::uint8_t>(q1 + dq);
        }
    }
}

void
deblockEdgeScalar(KernelCtx &ctx, std::uint8_t *pix, int xstride,
                  int ystride, int bs, int qp)
{
    auto &s = ctx.so;
    const DeblockTables &t = DeblockTables::get();
    const int alpha = t.alpha[qp];
    const int beta = t.beta[qp];
    const int tc0v = t.tc0[qp][bs - 1];

    // Threshold loads (table lookups in compiled code).
    SInt valpha = s.li(alpha);
    SInt vbeta = s.li(beta);
    SInt vtc0 = s.li(tc0v);
    SInt zero = s.li(0);
    if (!s.branch(s.and_(s.cmpgti(valpha, 0), s.cmpgti(vbeta, 0))))
        return;

    vmx::Ptr pp = s.lip(pix);
    for (int i = 0; i < 4; ++i) {
        SInt p2 = s.loadU8(vmx::CPtr{pp}, -3 * xstride);
        SInt p1 = s.loadU8(vmx::CPtr{pp}, -2 * xstride);
        SInt p0 = s.loadU8(vmx::CPtr{pp}, -1 * xstride);
        SInt q0 = s.loadU8(vmx::CPtr{pp}, 0);
        SInt q1 = s.loadU8(vmx::CPtr{pp}, 1 * xstride);
        SInt q2 = s.loadU8(vmx::CPtr{pp}, 2 * xstride);

        // |p0-q0| < alpha etc.: sub, abs (branchless isel here), cmp.
        auto abs_diff = [&](SInt a, SInt b) {
            SInt d = s.sub(a, b);
            SInt n = s.neg(d);
            return s.isel(s.cmplti(d, 0), n, d);
        };
        SInt c0 = s.cmplt(abs_diff(p0, q0), valpha);
        SInt c1 = s.cmplt(abs_diff(p1, p0), vbeta);
        SInt c2 = s.cmplt(abs_diff(q1, q0), vbeta);
        SInt go = s.and_(c0, s.and_(c1, c2));
        if (!s.branch(go)) {
            pp = s.paddi(pp, ystride);
            s.loopBranch(i + 1 < 4);
            continue;
        }

        SInt ap = abs_diff(p2, p0);
        SInt aq = abs_diff(q2, q0);
        SInt tc = vtc0;
        SInt bump_p = s.cmplt(ap, vbeta);
        SInt bump_q = s.cmplt(aq, vbeta);
        tc = s.add(tc, bump_p);
        tc = s.add(tc, bump_q);
        if (!s.branch(s.cmpgti(tc, 0))) {
            pp = s.paddi(pp, ystride);
            s.loopBranch(i + 1 < 4);
            continue;
        }

        SInt diff = s.sub(q0, p0);
        SInt delta = s.srai(
            s.addi(s.add(s.slli(diff, 2), s.sub(p1, q1)), 4), 3);
        SInt ntc = s.neg(tc);
        delta = s.isel(s.cmplt(delta, ntc), ntc, delta);
        delta = s.isel(s.cmplt(tc, delta), tc, delta);

        // Clipped writes of p0/q0.
        CPtr clip = s.lip(clipTable() + clipTableOffset);
        s.storeU8(pp, -1 * xstride,
                  s.loadU8x(clip, s.add(p0, delta)));
        s.storeU8(pp, 0, s.loadU8x(clip, s.sub(q0, delta)));

        if (s.branch(s.and_(bump_p, s.cmpgti(vtc0, 0)))) {
            SInt avg = s.srai(s.addi(s.add(p0, q0), 1), 1);
            SInt dp = s.srai(
                s.sub(s.add(p2, avg), s.slli(p1, 1)), 1);
            SInt nt = s.neg(vtc0);
            dp = s.isel(s.cmplt(dp, nt), nt, dp);
            dp = s.isel(s.cmplt(vtc0, dp), vtc0, dp);
            s.storeU8(pp, -2 * xstride, s.add(p1, dp));
        }
        if (s.branch(s.and_(bump_q, s.cmpgti(vtc0, 0)))) {
            SInt avg = s.srai(s.addi(s.add(p0, q0), 1), 1);
            SInt dq = s.srai(
                s.sub(s.add(q2, avg), s.slli(q1, 1)), 1);
            SInt nt = s.neg(vtc0);
            dq = s.isel(s.cmplt(dq, nt), nt, dq);
            dq = s.isel(s.cmplt(vtc0, dq), vtc0, dq);
            s.storeU8(pp, 1 * xstride, s.add(q1, dq));
        }
        pp = s.paddi(pp, ystride);
        s.loopBranch(i + 1 < 4);
    }
    (void)zero;
}

namespace {

template <typename EdgeFn>
int
deblockMacroblockImpl(std::uint8_t *mb, int stride, int qp, bool intra,
                      EdgeFn &&edge)
{
    int bs = intra ? 3 : 1;
    int count = 0;
    // Vertical edges (filtering across columns x = 0, 4, 8, 12).
    for (int x = 0; x < 16; x += 4) {
        for (int y = 0; y < 16; y += 4) {
            edge(mb + y * stride + x, 1, stride, bs, qp);
            ++count;
        }
    }
    // Horizontal edges.
    for (int y = 0; y < 16; y += 4) {
        for (int x = 0; x < 16; x += 4) {
            edge(mb + y * stride + x, stride, 1, bs, qp);
            ++count;
        }
    }
    return count;
}

} // namespace

int
deblockMacroblockRef(std::uint8_t *mb, int stride, int qp, bool intra)
{
    return deblockMacroblockImpl(
        mb, stride, qp, intra,
        [](std::uint8_t *p, int xs, int ys, int bs, int q) {
            deblockEdgeRef(p, xs, ys, bs, q);
        });
}

int
deblockMacroblockScalar(KernelCtx &ctx, std::uint8_t *mb, int stride,
                        int qp, bool intra)
{
    return deblockMacroblockImpl(
        mb, stride, qp, intra,
        [&](std::uint8_t *p, int xs, int ys, int bs, int q) {
            deblockEdgeScalar(ctx, p, xs, ys, bs, q);
        });
}

} // namespace uasim::h264
