/**
 * @file
 * Forward 4x4 transform and quantization (encoder side of the closed
 * loop). Quant/dequant use the standard's MF/V multiplier tables, so
 * the decoder's dequant + idct4x4AddRef reconstructs exactly what the
 * encoder's local loop reconstructs.
 */

#ifndef UASIM_DECODER_TRANSFORM_HH
#define UASIM_DECODER_TRANSFORM_HH

#include <cstdint>

namespace uasim::dec {

/// Forward H.264 core transform: coeff = T . residual . T^t.
void forward4x4(const std::int16_t in[16], std::int16_t out[16]);

/// Quantize transform coefficients at @p qp (0..51).
void quant4x4(const std::int16_t coeff[16], std::int16_t level[16],
              int qp);

/// Dequantize levels back to IDCT input scale.
void dequant4x4(const std::int16_t level[16], std::int16_t out[16],
                int qp);

} // namespace uasim::dec

#endif // UASIM_DECODER_TRANSFORM_HH
