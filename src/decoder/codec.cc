#include "decoder/codec.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "decoder/transform.hh"
#include "h264/chroma_ref.hh"
#include "h264/deblock.hh"
#include "h264/idct_ref.hh"
#include "h264/luma_ref.hh"

namespace uasim::dec {

StageCounts &
StageCounts::operator+=(const StageCounts &o)
{
    for (int s = 0; s < 3; ++s) {
        for (int f = 0; f < 16; ++f)
            lumaMc[s][f] += o.lumaMc[s][f];
        chromaMc[s] += o.chromaMc[s];
    }
    chromaCopy += o.chromaCopy;
    idct4x4 += o.idct4x4;
    deblockMbs += o.deblockMbs;
    cabacBins += o.cabacBins;
    videoOutBytes += o.videoOutBytes;
    mbs += o.mbs;
    frames += o.frames;
    return *this;
}

namespace {

int
sizeIndex(int w)
{
    return w == 16 ? 0 : (w == 8 ? 1 : 2);
}

/// Clamp the integer part of a motion vector so every filter tap stays
/// inside the padded plane. Identical on both codec sides.
int
clampInt(int v, int limit_lo, int limit_hi)
{
    return std::clamp(v, limit_lo, limit_hi);
}

/// Luma MC of one partition from @p ref into @p dst (both padded).
void
mcLuma(const video::Plane &ref, video::Plane &dst, int x, int y, int w,
       int h, int mvx_q, int mvy_q)
{
    int fx = mvx_q & 3, fy = mvy_q & 3;
    int ix = clampInt(x + (mvx_q >> 2), -24, ref.width() + 24 - w);
    int iy = clampInt(y + (mvy_q >> 2), -24, ref.height() + 24 - h);
    h264::lumaMcRef(ref.pixel(ix, iy), ref.stride(), dst.pixel(x, y),
                    dst.stride(), w, h, fx, fy);
}

/// Chroma MC (eighth-pel) of one partition's chroma block.
void
mcChroma(const video::Plane &ref, video::Plane &dst, int cx, int cy,
         int cw, int ch, int mvx_q, int mvy_q)
{
    int dx = mvx_q & 7, dy = mvy_q & 7;
    int ix = clampInt(cx + (mvx_q >> 3), -16, ref.width() + 16 - cw);
    int iy = clampInt(cy + (mvy_q >> 3), -16, ref.height() + 16 - ch);
    h264::chromaMcRef(ref.pixel(ix, iy), ref.stride(),
                      dst.pixel(cx, cy), dst.stride(), cw, ch, dx, dy);
}

/// Flat intra prediction (DC 128) over a rectangle.
void
predFlat(video::Plane &p, int x, int y, int w, int h)
{
    for (int yy = 0; yy < h; ++yy)
        std::memset(p.pixel(x, y + yy), 128, w);
}

struct ParsedPartition {
    int x, y, w;
    int mvx, mvy;
};

} // namespace

// ----------------------------------------------------------------------
// Encoder
// ----------------------------------------------------------------------

struct MiniEncoder::Impl {
    explicit Impl(const CodecConfig &cfg)
        : cfg(cfg), seq(cfg.seq), model(cfg.seq),
          source(cfg.seq.width, cfg.seq.height),
          recon(cfg.seq.width, cfg.seq.height),
          ref(cfg.seq.width, cfg.seq.height)
    {
    }

    /// Transform-code one 4x4 residual block of (src - pred) and
    /// reconstruct into @p plane. @return true if any level coded.
    bool
    codeBlock(h264::CabacEncoder &enc, ContextSet &ctx,
              const video::Plane &src_plane, video::Plane &plane,
              int x, int y)
    {
        std::int16_t res[16], coeff[16], lev[16], deq[16];
        for (int j = 0; j < 4; ++j) {
            for (int i = 0; i < 4; ++i) {
                res[4 * j + i] = static_cast<std::int16_t>(
                    src_plane.at(x + i, y + j) - plane.at(x + i, y + j));
            }
        }
        forward4x4(res, coeff);
        quant4x4(coeff, lev, cfg.qp);
        bool coded = false;
        for (int i = 0; i < 16; ++i)
            coded |= lev[i] != 0;
        enc.encodeBin(ctx.coded, coded ? 1 : 0);
        if (!coded)
            return false;
        for (int i = 0; i < 16; ++i) {
            int sig = lev[i] != 0;
            enc.encodeBin(ctx.sig[std::min(i, 7)], sig);
            if (sig) {
                enc.encodeUEG(ctx.level, 6,
                              static_cast<unsigned>(
                                  std::abs(lev[i]) - 1));
                enc.encodeBypass(lev[i] < 0);
            }
        }
        dequant4x4(lev, deq, cfg.qp);
        h264::idct4x4AddRef(plane.pixel(x, y), plane.stride(), deq);
        return true;
    }

    CodecConfig cfg;
    video::SyntheticSequence seq;
    video::MotionModel model;
    video::Frame source;
    video::Frame recon;
    video::Frame ref;
    std::vector<bool> mbIntra;
};

MiniEncoder::MiniEncoder(const CodecConfig &cfg)
    : impl_(std::make_unique<Impl>(cfg))
{
}

MiniEncoder::~MiniEncoder() = default;

const video::Frame &
MiniEncoder::recon() const
{
    return impl_->recon;
}

const video::Frame &
MiniEncoder::source() const
{
    return impl_->source;
}

EncodedFrame
MiniEncoder::encodeFrame(int idx)
{
    Impl &im = *impl_;
    const int mbw = (im.cfg.seq.width + 15) / 16;
    const int mbh = (im.cfg.seq.height + 15) / 16;

    im.seq.render(idx, im.source);
    auto parts = im.model.framePartitions(idx);

    h264::CabacEncoder enc;
    ContextSet ctx;
    EncodedFrame out;
    out.intraOnly = idx == 0;
    im.mbIntra.assign(std::size_t(mbw) * mbh, false);

    int pmx = 0, pmy = 0;  // MV predictor, raster running
    std::size_t pi = 0;
    for (int my = 0; my < mbh; ++my) {
        for (int mx = 0; mx < mbw; ++mx) {
            const int x0 = mx * 16, y0 = my * 16;
            // Collect this MB's partitions from the model.
            const video::Partition &head = parts[pi];
            bool inter = head.inter && !out.intraOnly;
            int nparts = 1;
            if (head.inter)
                nparts = head.w == 16 ? 1 : (head.w == 8 ? 4 : 16);

            if (!out.intraOnly)
                enc.encodeBin(ctx.mbInter, inter ? 1 : 0);

            if (!inter) {
                im.mbIntra[std::size_t(my) * mbw + mx] = true;
                predFlat(im.recon.luma(), x0, y0, 16, 16);
                predFlat(im.recon.cb(), x0 / 2, y0 / 2, 8, 8);
                predFlat(im.recon.cr(), x0 / 2, y0 / 2, 8, 8);
            } else {
                int w = head.w;
                enc.encodeBin(ctx.part[0], w == 16 ? 0 : 1);
                if (w != 16)
                    enc.encodeBin(ctx.part[1], w == 8 ? 0 : 1);
                for (int k = 0; k < nparts; ++k) {
                    const video::Partition &p = parts[pi + k];
                    int dx = p.mvxQ - pmx, dy = p.mvyQ - pmy;
                    enc.encodeUEG(ctx.mvd, 6,
                                  static_cast<unsigned>(std::abs(dx)));
                    if (dx)
                        enc.encodeBypass(dx < 0);
                    enc.encodeUEG(ctx.mvd, 6,
                                  static_cast<unsigned>(std::abs(dy)));
                    if (dy)
                        enc.encodeBypass(dy < 0);
                    pmx = p.mvxQ;
                    pmy = p.mvyQ;
                    mcLuma(im.ref.luma(), im.recon.luma(), p.x, p.y,
                           p.w, p.h, p.mvxQ, p.mvyQ);
                    mcChroma(im.ref.cb(), im.recon.cb(), p.x / 2,
                             p.y / 2, p.w / 2, p.h / 2, p.mvxQ, p.mvyQ);
                    mcChroma(im.ref.cr(), im.recon.cr(), p.x / 2,
                             p.y / 2, p.w / 2, p.h / 2, p.mvxQ, p.mvyQ);
                }
            }
            pi += nparts;

            // Residuals: 16 luma 4x4 blocks + 2x4 chroma blocks.
            for (int b = 0; b < 16; ++b) {
                im.codeBlock(enc, ctx, im.source.luma(),
                             im.recon.luma(), x0 + 4 * (b & 3),
                             y0 + 4 * (b >> 2));
            }
            for (int b = 0; b < 4; ++b) {
                im.codeBlock(enc, ctx, im.source.cb(), im.recon.cb(),
                             x0 / 2 + 4 * (b & 1), y0 / 2 + 4 * (b >> 1));
            }
            for (int b = 0; b < 4; ++b) {
                im.codeBlock(enc, ctx, im.source.cr(), im.recon.cr(),
                             x0 / 2 + 4 * (b & 1), y0 / 2 + 4 * (b >> 1));
            }
        }
    }

    // In-loop deblock + reference update.
    for (int my = 0; my < mbh; ++my) {
        for (int mx = 0; mx < mbw; ++mx) {
            h264::deblockMacroblockRef(
                im.recon.luma().pixel(mx * 16, my * 16),
                im.recon.luma().stride(), im.cfg.qp,
                im.mbIntra[std::size_t(my) * mbw + mx]);
        }
    }
    im.recon.extendEdges();
    // recon becomes the reference for the next frame.
    for (int y = 0; y < im.recon.luma().height(); ++y) {
        std::memcpy(im.ref.luma().pixel(0, y),
                    im.recon.luma().pixel(0, y),
                    std::size_t(im.recon.luma().width()));
    }
    for (int y = 0; y < im.recon.cb().height(); ++y) {
        std::memcpy(im.ref.cb().pixel(0, y), im.recon.cb().pixel(0, y),
                    std::size_t(im.recon.cb().width()));
        std::memcpy(im.ref.cr().pixel(0, y), im.recon.cr().pixel(0, y),
                    std::size_t(im.recon.cr().width()));
    }
    im.ref.extendEdges();

    out.bins = enc.binsEncoded();
    out.bits = enc.finish();
    return out;
}

// ----------------------------------------------------------------------
// Decoder
// ----------------------------------------------------------------------

struct MiniDecoder::Impl {
    explicit Impl(const CodecConfig &cfg)
        : cfg(cfg), picture(cfg.seq.width, cfg.seq.height),
          ref(cfg.seq.width, cfg.seq.height)
    {
    }

    bool
    decodeBlock(h264::CabacDecoder &d, ContextSet &ctx,
                video::Plane &plane, int x, int y)
    {
        if (!d.decodeBin(ctx.coded))
            return false;
        std::int16_t lev[16], deq[16];
        for (int i = 0; i < 16; ++i) {
            if (d.decodeBin(ctx.sig[std::min(i, 7)])) {
                int mag = static_cast<int>(d.decodeUEG(ctx.level, 6)) + 1;
                lev[i] = static_cast<std::int16_t>(
                    d.decodeBypass() ? -mag : mag);
            } else {
                lev[i] = 0;
            }
        }
        dequant4x4(lev, deq, cfg.qp);
        h264::idct4x4AddRef(plane.pixel(x, y), plane.stride(), deq);
        return true;
    }

    CodecConfig cfg;
    video::Frame picture;
    video::Frame ref;
    std::vector<bool> mbIntra;
};

MiniDecoder::MiniDecoder(const CodecConfig &cfg)
    : impl_(std::make_unique<Impl>(cfg))
{
}

MiniDecoder::~MiniDecoder() = default;

const video::Frame &
MiniDecoder::picture() const
{
    return impl_->picture;
}

void
MiniDecoder::decodeFrame(const EncodedFrame &frame, StageCounts &counts)
{
    Impl &im = *impl_;
    const int mbw = (im.cfg.seq.width + 15) / 16;
    const int mbh = (im.cfg.seq.height + 15) / 16;

    h264::CabacDecoder d(frame.bits.data(), frame.bits.size());
    ContextSet ctx;
    im.mbIntra.assign(std::size_t(mbw) * mbh, false);

    int pmx = 0, pmy = 0;
    for (int my = 0; my < mbh; ++my) {
        for (int mx = 0; mx < mbw; ++mx) {
            const int x0 = mx * 16, y0 = my * 16;
            bool inter = false;
            if (!frame.intraOnly)
                inter = d.decodeBin(ctx.mbInter) != 0;

            if (!inter) {
                im.mbIntra[std::size_t(my) * mbw + mx] = true;
                predFlat(im.picture.luma(), x0, y0, 16, 16);
                predFlat(im.picture.cb(), x0 / 2, y0 / 2, 8, 8);
                predFlat(im.picture.cr(), x0 / 2, y0 / 2, 8, 8);
            } else {
                int w = 16;
                if (d.decodeBin(ctx.part[0]))
                    w = d.decodeBin(ctx.part[1]) ? 4 : 8;
                int nparts = w == 16 ? 1 : (w == 8 ? 4 : 16);
                int per_row = 16 / w;
                for (int k = 0; k < nparts; ++k) {
                    int px = x0 + w * (k % per_row);
                    int py = y0 + w * (k / per_row);
                    int adx = static_cast<int>(d.decodeUEG(ctx.mvd, 6));
                    int dx = adx && d.decodeBypass() ? -adx : adx;
                    int ady = static_cast<int>(d.decodeUEG(ctx.mvd, 6));
                    int dy = ady && d.decodeBypass() ? -ady : ady;
                    int mvx = pmx + dx, mvy = pmy + dy;
                    pmx = mvx;
                    pmy = mvy;

                    mcLuma(im.ref.luma(), im.picture.luma(), px, py, w,
                           w, mvx, mvy);
                    mcChroma(im.ref.cb(), im.picture.cb(), px / 2,
                             py / 2, w / 2, w / 2, mvx, mvy);
                    mcChroma(im.ref.cr(), im.picture.cr(), px / 2,
                             py / 2, w / 2, w / 2, mvx, mvy);

                    ++counts.lumaMc[sizeIndex(w)]
                                   [(mvy & 3) * 4 + (mvx & 3)];
                    int csize = sizeIndex(w);  // 8->0? map below
                    if ((mvx & 7) || (mvy & 7))
                        counts.chromaMc[csize] += 2;  // cb + cr
                    else
                        counts.chromaCopy += 2;
                }
            }

            for (int b = 0; b < 16; ++b) {
                counts.idct4x4 +=
                    im.decodeBlock(d, ctx, im.picture.luma(),
                                   x0 + 4 * (b & 3), y0 + 4 * (b >> 2));
            }
            for (int b = 0; b < 4; ++b) {
                counts.idct4x4 += im.decodeBlock(
                    d, ctx, im.picture.cb(), x0 / 2 + 4 * (b & 1),
                    y0 / 2 + 4 * (b >> 1));
            }
            for (int b = 0; b < 4; ++b) {
                counts.idct4x4 += im.decodeBlock(
                    d, ctx, im.picture.cr(), x0 / 2 + 4 * (b & 1),
                    y0 / 2 + 4 * (b >> 1));
            }
            ++counts.mbs;
        }
    }

    for (int my = 0; my < mbh; ++my) {
        for (int mx = 0; mx < mbw; ++mx) {
            h264::deblockMacroblockRef(
                im.picture.luma().pixel(mx * 16, my * 16),
                im.picture.luma().stride(), im.cfg.qp,
                im.mbIntra[std::size_t(my) * mbw + mx]);
        }
    }
    im.picture.extendEdges();
    counts.deblockMbs += std::uint64_t(mbw) * mbh;
    counts.cabacBins += d.binsDecoded();
    counts.videoOutBytes +=
        std::uint64_t(im.cfg.seq.width) * im.cfg.seq.height * 3 / 2;
    ++counts.frames;

    // picture -> reference for the next frame.
    for (int y = 0; y < im.picture.luma().height(); ++y) {
        std::memcpy(im.ref.luma().pixel(0, y),
                    im.picture.luma().pixel(0, y),
                    std::size_t(im.picture.luma().width()));
    }
    for (int y = 0; y < im.picture.cb().height(); ++y) {
        std::memcpy(im.ref.cb().pixel(0, y),
                    im.picture.cb().pixel(0, y),
                    std::size_t(im.picture.cb().width()));
        std::memcpy(im.ref.cr().pixel(0, y),
                    im.picture.cr().pixel(0, y),
                    std::size_t(im.picture.cr().width()));
    }
    im.ref.extendEdges();
}

double
lumaPsnr(const video::Frame &a, const video::Frame &b)
{
    const video::Plane &pa = a.luma();
    const video::Plane &pb = b.luma();
    double mse = 0;
    for (int y = 0; y < pa.height(); ++y) {
        for (int x = 0; x < pa.width(); ++x) {
            double d = double(pa.at(x, y)) - double(pb.at(x, y));
            mse += d * d;
        }
    }
    mse /= double(pa.width()) * pa.height();
    if (mse <= 0)
        return 99.0;
    return 10.0 * std::log10(255.0 * 255.0 / mse);
}

} // namespace uasim::dec
