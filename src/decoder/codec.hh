/**
 * @file
 * The mini H.264-style codec: a closed-loop encoder that produces a
 * CABAC bitstream from synthetic content, and the matching decoder.
 *
 * Syntax per macroblock: inter flag, partition mode (16x16 / 8x8 /
 * 4x4), per-partition MV deltas (UEG-binarized), per-4x4-block coded
 * flags, significance flags and levels. Prediction is quarter-pel MC
 * against the previous reconstructed frame (intra blocks predict flat
 * 128), residuals go through the standard forward transform +
 * quantization, and reconstruction + deblocking runs identically on
 * both sides, so encoder reconstruction and decoder output are
 * bit-identical.
 *
 * The decoder collects StageCounts - the per-stage work totals that
 * the Fig 10 profile estimate multiplies by simulated per-invocation
 * kernel costs (the same profiling-based estimation the paper uses).
 */

#ifndef UASIM_DECODER_CODEC_HH
#define UASIM_DECODER_CODEC_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "h264/cabac.hh"
#include "video/frame.hh"
#include "video/motion.hh"
#include "video/sequence.hh"

namespace uasim::dec {

/// Codec run configuration.
struct CodecConfig {
    video::SequenceParams seq;
    int qp = 28;
    int frames = 3;
};

/// One coded frame.
struct EncodedFrame {
    std::vector<std::uint8_t> bits;
    bool intraOnly = false;
    std::uint64_t bins = 0;  //!< CABAC bins in this frame
};

/// Adaptive context set shared by encoder and decoder.
struct ContextSet {
    h264::CabacContext mbInter;
    h264::CabacContext part[2];
    h264::CabacContext mvd[6];
    h264::CabacContext coded;
    h264::CabacContext sig[8];
    h264::CabacContext level[6];
};

/// Per-stage decoder work totals (the Fig 10 drivers).
struct StageCounts {
    /// Luma MC invocations: [size index 0=16,1=8,2=4][fy*4+fx].
    std::array<std::array<std::uint64_t, 16>, 3> lumaMc{};
    /// Chroma MC interpolations: [size index 0=8,1=4,2=2].
    std::array<std::uint64_t, 3> chromaMc{};
    std::uint64_t chromaCopy = 0;  //!< zero-fraction chroma blocks
    std::uint64_t idct4x4 = 0;
    std::uint64_t deblockMbs = 0;
    std::uint64_t cabacBins = 0;
    std::uint64_t videoOutBytes = 0;
    std::uint64_t mbs = 0;
    std::uint64_t frames = 0;

    StageCounts &operator+=(const StageCounts &o);
};

/**
 * Closed-loop encoder. Feed it frame indices in order; it renders the
 * synthetic source, encodes, and keeps its reconstruction as the next
 * reference.
 */
class MiniEncoder
{
  public:
    explicit MiniEncoder(const CodecConfig &cfg);
    ~MiniEncoder();

    /// Encode frame @p idx (must be called with 0, 1, 2, ...).
    EncodedFrame encodeFrame(int idx);

    /// Reconstructed (reference) frame after the last encode.
    const video::Frame &recon() const;

    /// Source frame used for the last encode (PSNR checks).
    const video::Frame &source() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * The matching decoder. Functional (native-reference kernels); work
 * totals land in StageCounts for the profile model.
 */
class MiniDecoder
{
  public:
    explicit MiniDecoder(const CodecConfig &cfg);
    ~MiniDecoder();

    /// Decode the next frame in stream order.
    void decodeFrame(const EncodedFrame &frame, StageCounts &counts);

    /// Last decoded picture.
    const video::Frame &picture() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// Mean PSNR (luma) between two frames, for codec sanity checks.
double lumaPsnr(const video::Frame &a, const video::Frame &b);

} // namespace uasim::dec

#endif // UASIM_DECODER_CODEC_HH
