#include "decoder/cabac_traced.hh"

namespace uasim::dec {

using vmx::CPtr;
using vmx::Ptr;
using vmx::SInt;

namespace {

// Table memory layout: lpsRange as u16[64][4], then transMps[64],
// then transLps[64].
constexpr int lpsBytes = 64 * 4 * 2;
constexpr int transMpsOff = lpsBytes;
constexpr int transLpsOff = lpsBytes + 64;

} // namespace

TracedCabacDecoder::TracedCabacDecoder(h264::KernelCtx &ctx,
                                       const std::uint8_t *data,
                                       std::size_t size, int num_ctxs)
    : kctx_(&ctx), size_(size)
{
    auto &s = kctx_->so;
    const auto &t = h264::CabacTables::get();

    tableMem_.resize(transLpsOff + 64);
    for (int st = 0; st < 64; ++st) {
        for (int q = 0; q < 4; ++q) {
            std::uint16_t v = t.lpsRange[st][q];
            tableMem_[2 * (4 * st + q)] = std::uint8_t(v & 0xff);
            tableMem_[2 * (4 * st + q) + 1] = std::uint8_t(v >> 8);
        }
        tableMem_[transMpsOff + st] = t.transMps[st];
        tableMem_[transLpsOff + st] = t.transLps[st];
    }
    ctxMem_.assign(std::size_t(num_ctxs) * 2, 0);

    data_ = s.lip(data);
    tablePtr_ = s.lip(tableMem_.data());
    ctxPtr_ = s.lip(ctxMem_.data());
    range_ = s.li(510);
    value_ = s.li(0);
    bytePos_ = s.li(0);
    bitPos_ = s.li(0);
    for (int i = 0; i < 9; ++i) {
        SInt bit = readBitTraced();
        value_ = s.add(s.slli(value_, 1), bit);
    }
}

SInt
TracedCabacDecoder::readBitTraced()
{
    auto &s = kctx_->so;
    // bit = (data[bytePos] >> (7 - bitPos)) & 1
    SInt byte = s.loadU8x(data_, bytePos_);
    SInt shift = s.subfi(7, bitPos_);
    SInt bit = s.andi(s.srlv(byte, shift), 1);
    // Advance the bit cursor: bitPos = (bitPos + 1) & 7, carry to
    // bytePos when it wraps.
    SInt next = s.addi(bitPos_, 1);
    SInt wrapped = s.andi(next, 7);
    SInt carry = s.srli(next, 3);
    bitPos_ = wrapped;
    bytePos_ = s.add(bytePos_, carry);
    return bit;
}

int
TracedCabacDecoder::decodeBin(int ctx_idx)
{
    auto &s = kctx_->so;
    ++bins_;

    // Load context state and MPS.
    SInt idx2 = s.li(2 * ctx_idx);
    SInt state = s.loadU8x(CPtr{ctxPtr_}, idx2);
    SInt mps = s.loadU8x(CPtr{ctxPtr_}, s.addi(idx2, 1));

    // lps = lpsRange[state][(range >> 6) & 3]
    SInt q = s.andi(s.srli(range_, 6), 3);
    SInt toff = s.slli(s.add(s.slli(state, 2), q), 1);
    SInt lps_lo = s.loadU8x(tablePtr_, toff);
    SInt lps_hi = s.loadU8x(tablePtr_, s.addi(toff, 1));
    SInt lps = s.add(lps_lo, s.slli(lps_hi, 8));

    range_ = s.sub(range_, lps);

    int bin;
    SInt is_lps = s.cmplt(range_, s.addi(value_, 1));  // value >= range
    if (s.branch(is_lps)) {
        value_ = s.sub(value_, range_);
        range_ = lps;
        bin = static_cast<int>(mps.v ^ 1);
        SInt at_zero = s.cmpeq(state, s.li(0));
        if (s.branch(at_zero)) {
            s.storeU8(ctxPtr_, 2 * ctx_idx + 1, s.xor_(mps, s.li(1)));
        } else {
            SInt ns = s.loadU8x(tablePtr_,
                                s.add(s.li(transLpsOff), state));
            s.storeU8(ctxPtr_, 2 * ctx_idx, ns);
        }
    } else {
        bin = static_cast<int>(mps.v);
        SInt ns =
            s.loadU8x(tablePtr_, s.add(s.li(transMpsOff), state));
        s.storeU8(ctxPtr_, 2 * ctx_idx, ns);
    }

    // Renormalization loop: data-dependent trip count.
    while (true) {
        SInt small = s.cmplti(range_, 256);
        if (!s.branch(small))
            break;
        SInt bit = readBitTraced();
        range_ = s.slli(range_, 1);
        value_ = s.add(s.slli(value_, 1), bit);
    }
    return bin;
}

} // namespace uasim::dec
