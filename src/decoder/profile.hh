/**
 * @file
 * Fig 10 cost model: full-decoder per-stage time estimates.
 *
 * The paper estimates whole-application impact from profiling; we do
 * the same composition explicitly: the functional decoder yields per-
 * stage work totals (StageCounts), microbenchmarks of each traced
 * kernel through the pipeline simulator yield per-invocation cycle
 * costs (StageCosts), and the profile estimate is their product.
 * CABAC and the deblocking filter are priced with the scalar traced
 * implementations in every variant, matching the paper's decoder
 * (serial CABAC; SIMD deblocking "under development").
 */

#ifndef UASIM_DECODER_PROFILE_HH
#define UASIM_DECODER_PROFILE_HH

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "decoder/codec.hh"
#include "h264/kernels.hh"
#include "timing/config.hh"
#include "trace/sink.hh"

namespace uasim::dec {

/// Simulated cycles per invocation unit, per variant/core.
struct StageCosts {
    /// Luma MC block: [size 0=16,1=8,2=4][fy*4+fx].
    std::array<std::array<double, 16>, 3> lumaMc{};
    /// Chroma MC block: [size 0=8,1=4,2=2]; 2x2 always scalar.
    std::array<double, 3> chromaMc{};
    double chromaCopy = 0;   //!< per zero-fraction chroma block
    double idct4x4 = 0;      //!< per coded 4x4 block
    double deblockMb = 0;    //!< per macroblock (scalar)
    double cabacBin = 0;     //!< per bin (scalar)
    double videoOutByte = 0; //!< per output byte
};

/**
 * One independently recordable stage microbenchmark.
 *
 * @p record is self-contained and deterministic: it builds its own
 * fixture (planes, AddrNormalizer, emitter) and streams the stage's
 * normalized trace into the sink, so it can run from any sweep worker
 * thread. The stage cost is `simulated cycles / divisor`, stored into
 * a StageCosts by @p assign.
 */
struct StageCostJob {
    std::string key;  //!< unique per stage within one variant
    int divisor = 1;
    std::function<void(trace::TraceSink &)> record;
    std::function<void(StageCosts &, double)> assign;
};

/// All stage microbenchmarks for @p variant, in StageCosts order.
std::vector<StageCostJob> stageCostJobs(h264::Variant variant);

/// Measure all stage costs for @p variant on @p cfg.
StageCosts measureStageCosts(h264::Variant variant,
                             const timing::CoreConfig &cfg);

/// Estimated per-stage cycles for a decode run.
struct ProfileEstimate {
    double mc = 0;        //!< luma + chroma motion compensation
    double idct = 0;
    double deblock = 0;
    double cabac = 0;
    double videoOut = 0;
    double others = 0;

    double
    totalCycles() const
    {
        return mc + idct + deblock + cabac + videoOut + others;
    }

    double seconds(double hz) const { return totalCycles() / hz; }
};

/**
 * Combine counts and costs. @p others_cycles is the variant-invariant
 * glue/OS share (callers typically derive it from the scalar total).
 */
ProfileEstimate estimateProfile(const StageCounts &counts,
                                const StageCosts &costs,
                                double others_cycles);

} // namespace uasim::dec

#endif // UASIM_DECODER_PROFILE_HH
