#include "decoder/transform.hh"

#include <cstdlib>

namespace uasim::dec {

namespace {

/// Position class: 0 for (even,even), 1 for (odd,odd), 2 mixed.
inline int
posClass(int i)
{
    int r = (i >> 2) & 1, c = i & 1;
    if (!r && !c)
        return 0;
    if (r && c)
        return 1;
    return 2;
}

// Standard quantization multipliers (qp % 6 rows).
constexpr int mf[6][3] = {
    {13107, 5243, 8066}, {11916, 4660, 7490}, {10082, 4194, 6554},
    {9362, 3647, 5825},  {8192, 3355, 5243},  {7282, 2893, 4559},
};

// Standard dequantization scales.
constexpr int vs[6][3] = {
    {10, 16, 13}, {11, 18, 14}, {13, 20, 16},
    {14, 23, 18}, {16, 25, 20}, {18, 29, 23},
};

} // namespace

void
forward4x4(const std::int16_t in[16], std::int16_t out[16])
{
    int tmp[16];
    // Rows: T = [1 1 1 1; 2 1 -1 -2; 1 -1 -1 1; 1 -2 2 -1].
    for (int i = 0; i < 4; ++i) {
        const std::int16_t *b = &in[4 * i];
        int s03 = b[0] + b[3], d03 = b[0] - b[3];
        int s12 = b[1] + b[2], d12 = b[1] - b[2];
        tmp[4 * i + 0] = s03 + s12;
        tmp[4 * i + 1] = 2 * d03 + d12;
        tmp[4 * i + 2] = s03 - s12;
        tmp[4 * i + 3] = d03 - 2 * d12;
    }
    for (int i = 0; i < 4; ++i) {
        int s03 = tmp[i] + tmp[12 + i], d03 = tmp[i] - tmp[12 + i];
        int s12 = tmp[4 + i] + tmp[8 + i], d12 = tmp[4 + i] - tmp[8 + i];
        out[i] = static_cast<std::int16_t>(s03 + s12);
        out[4 + i] = static_cast<std::int16_t>(2 * d03 + d12);
        out[8 + i] = static_cast<std::int16_t>(s03 - s12);
        out[12 + i] = static_cast<std::int16_t>(d03 - 2 * d12);
    }
}

void
quant4x4(const std::int16_t coeff[16], std::int16_t level[16], int qp)
{
    const int qbits = 15 + qp / 6;
    const int f = (1 << qbits) / 3;  // intra-style rounding offset
    const int rem = qp % 6;
    for (int i = 0; i < 16; ++i) {
        int c = coeff[i];
        int m = mf[rem][posClass(i)];
        int mag = (std::abs(c) * m + f) >> qbits;
        level[i] = static_cast<std::int16_t>(c < 0 ? -mag : mag);
    }
}

void
dequant4x4(const std::int16_t level[16], std::int16_t out[16], int qp)
{
    const int shift = qp / 6;
    const int rem = qp % 6;
    for (int i = 0; i < 16; ++i) {
        out[i] = static_cast<std::int16_t>(
            level[i] * vs[rem][posClass(i)] << shift);
    }
}

} // namespace uasim::dec
