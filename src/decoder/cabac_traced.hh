/**
 * @file
 * Traced scalar CABAC bin decoder.
 *
 * A faithful port of h264::CabacDecoder::decodeBin to the ScalarOps
 * facade: table loads, context-state loads/stores, the data-dependent
 * MPS/LPS branch and the renormalization loop all become trace
 * records. This is how the Fig 10 model prices the entropy-decoding
 * stage (CABAC is serial and stays scalar in all variants).
 */

#ifndef UASIM_DECODER_CABAC_TRACED_HH
#define UASIM_DECODER_CABAC_TRACED_HH

#include <vector>

#include "h264/cabac.hh"
#include "h264/kernels.hh"

namespace uasim::dec {

/**
 * Traced arithmetic decoder over a real bitstream.
 *
 * Context states live in a small memory array (loads/stores traced);
 * coder registers (range/value/position) are traced register values.
 */
class TracedCabacDecoder
{
  public:
    /// @param num_ctxs number of adaptive contexts (state bytes).
    TracedCabacDecoder(h264::KernelCtx &ctx, const std::uint8_t *data,
                       std::size_t size, int num_ctxs);

    /// Decode one bin under context @p ctx_idx; returns the bin.
    int decodeBin(int ctx_idx);

    /// Total bins decoded.
    std::uint64_t bins() const { return bins_; }

    /// @name Internal buffers (for trace address registration)
    /// @{
    const std::uint8_t *tableData() const { return tableMem_.data(); }
    std::size_t tableSize() const { return tableMem_.size(); }
    const std::uint8_t *ctxData() const { return ctxMem_.data(); }
    std::size_t ctxSize() const { return ctxMem_.size(); }
    /// @}

  private:
    vmx::SInt readBitTraced();

    h264::KernelCtx *kctx_;
    // Traced coder registers.
    vmx::SInt range_, value_, bytePos_, bitPos_;
    vmx::CPtr data_;
    std::size_t size_;
    // Context memory: [state, mps] byte pairs.
    std::vector<std::uint8_t> ctxMem_;
    vmx::Ptr ctxPtr_;
    // Flattened probability tables in traced-readable memory.
    std::vector<std::uint8_t> tableMem_;
    vmx::CPtr tablePtr_;
    std::uint64_t bins_ = 0;
};

} // namespace uasim::dec

#endif // UASIM_DECODER_CABAC_TRACED_HH
