#include "decoder/profile.hh"

#include <optional>

#include "decoder/cabac_traced.hh"
#include "h264/chroma_kernels.hh"
#include "h264/deblock.hh"
#include "h264/idct_kernels.hh"
#include "h264/luma_kernels.hh"
#include "timing/model.hh"
#include "trace/addrmap.hh"
#include "trace/emitter.hh"
#include "video/rng.hh"

namespace uasim::dec {

using h264::KernelCtx;
using h264::Variant;

namespace {

constexpr int planeDim = 192;
constexpr int reps = 24;

/// Measurement fixture: padded planes streaming into any trace sink.
struct Fixture {
    explicit Fixture(trace::TraceSink &sink, std::uint64_t seed)
        : norm(sink), src(planeDim, planeDim), dst(planeDim, planeDim),
          rng(seed)
    {
        norm.addRegion(src.paddedBase(), src.paddedSize(), 0x10000000);
        norm.addRegion(dst.paddedBase(), dst.paddedSize(), 0x12000000);
        em.emplace(norm);
        ctx.emplace(*em);
        for (int y = 0; y < planeDim; ++y) {
            for (int x = 0; x < planeDim; ++x) {
                src.at(x, y) = video::hashNoise(seed, x, y);
                dst.at(x, y) = video::hashNoise(seed ^ 1, x, y);
            }
        }
        src.extendEdges();
    }

    trace::AddrNormalizer norm;
    std::optional<trace::Emitter> em;
    std::optional<KernelCtx> ctx;
    video::Plane src;
    video::Plane dst;
    video::Rng rng;
};

/// Random MC-like source pointer with arbitrary (addr % 16).
const std::uint8_t *
randomSrc(Fixture &f, int size)
{
    int x = int(f.rng.range(24, planeDim - size - 24));
    int y = int(f.rng.range(24, planeDim - size - 24));
    return f.src.pixel(x, y);
}

/// Destination at a partition-aligned position.
std::uint8_t *
alignedDst(Fixture &f, int size)
{
    int cells = (planeDim - 32) / size;
    int x = size * int(f.rng.below(cells / 2)) + 16;
    int y = size * int(f.rng.below(cells / 2)) + 16;
    return f.dst.pixel(x, y);
}

} // namespace

std::vector<StageCostJob>
stageCostJobs(Variant variant)
{
    std::vector<StageCostJob> jobs;
    const int sizes[3] = {16, 8, 4};

    // ---- Luma MC, per size and fractional position ----
    for (int si = 0; si < 3; ++si) {
        for (int frac = 0; frac < 16; ++frac) {
            const int size = sizes[si];
            jobs.push_back(
                {"luma" + std::to_string(size) + "_f" +
                     std::to_string(frac),
                 reps,
                 [variant, si, frac, size](trace::TraceSink &sink) {
                     Fixture f(sink, 0x1000 + si * 16 + frac);
                     for (int r = 0; r < reps; ++r) {
                         h264::lumaMc(*f.ctx, variant,
                                      randomSrc(f, size + 8),
                                      f.src.stride(),
                                      alignedDst(f, size),
                                      f.dst.stride(), size, size,
                                      frac & 3, frac >> 2);
                     }
                 },
                 [si, frac](StageCosts &c, double v) {
                     c.lumaMc[si][frac] = v;
                 }});
        }
    }

    // ---- Chroma MC: 8x8, 4x4 (vectorized), 2x2 (always scalar) ----
    const int csizes[3] = {8, 4, 2};
    for (int si = 0; si < 3; ++si) {
        const int csize = csizes[si];
        jobs.push_back(
            {"chroma" + std::to_string(csize), reps,
             [variant, si, csize](trace::TraceSink &sink) {
                 Fixture f(sink, 0x2000 + si);
                 for (int r = 0; r < reps; ++r) {
                     int dx = 1 + int(f.rng.below(7));
                     int dy = int(f.rng.below(8));
                     if (csize == 2) {
                         h264::chromaMcScalar(*f.ctx, randomSrc(f, 16),
                                              f.src.stride(),
                                              alignedDst(f, csize),
                                              f.dst.stride(), csize,
                                              dx, dy);
                     } else {
                         h264::chromaMcKernel(*f.ctx, variant,
                                              randomSrc(f, 16),
                                              f.src.stride(),
                                              alignedDst(f, csize),
                                              f.dst.stride(), csize,
                                              dx, dy);
                     }
                 }
             },
             [si](StageCosts &c, double v) { c.chromaMc[si] = v; }});
    }
    jobs.push_back(
        {"chroma_copy", reps,
         [variant](trace::TraceSink &sink) {
             // Zero-fraction chroma: plain copy through the luma
             // copy path.
             Fixture f(sink, 0x2100);
             for (int r = 0; r < reps; ++r) {
                 h264::lumaCopy(*f.ctx, variant, randomSrc(f, 16),
                                f.src.stride(), alignedDst(f, 8),
                                f.dst.stride(), 8, 8);
             }
         },
         [](StageCosts &c, double v) { c.chromaCopy = v; }});

    // ---- IDCT 4x4 (per coded block) ----
    jobs.push_back(
        {"idct4x4", reps * 4,
         [variant](trace::TraceSink &sink) {
             Fixture f(sink, 0x3000);
             alignas(16) std::int16_t block[16];
             for (int r = 0; r < reps * 4; ++r) {
                 for (auto &c : block)
                     c = std::int16_t(f.rng.range(-64, 64));
                 h264::idct4x4Add(*f.ctx, variant, alignedDst(f, 4),
                                  f.dst.stride(), block);
             }
         },
         [](StageCosts &c, double v) { c.idct4x4 = v; }});

    // ---- Deblocking (scalar in every variant) ----
    jobs.push_back(
        {"deblock", reps,
         [](trace::TraceSink &sink) {
             Fixture f(sink, 0x4000);
             for (int r = 0; r < reps; ++r) {
                 h264::deblockMacroblockScalar(*f.ctx,
                                               alignedDst(f, 16),
                                               f.dst.stride(), 30,
                                               (r & 3) == 0);
             }
         },
         [](StageCosts &c, double v) { c.deblockMb = v; }});

    // ---- CABAC bin decode (scalar in every variant) ----
    const int nbins = 2000;
    jobs.push_back(
        {"cabac", nbins,
         [](trace::TraceSink &sink) {
             // Encode a synthetic bin stream, then decode it traced.
             h264::CabacEncoder enc;
             h264::CabacContext ectx[8];
             video::Rng rng(0x5000);
             std::vector<int> ref_bins;
             for (int i = 0; i < nbins; ++i) {
                 int c = int(rng.below(8));
                 int bin = rng.chance(0.3 + 0.05 * c) ? 1 : 0;
                 enc.encodeBin(ectx[c], bin);
                 ref_bins.push_back(c);
             }
             auto bits = enc.finish();

             Fixture f(sink, 0x5001);
             // Register every buffer the traced decoder touches so
             // the measured cost is identical across variants and
             // runs.
             f.norm.addRegion(bits.data(), bits.size(), 0x18000000);
             TracedCabacDecoder dec(*f.ctx, bits.data(), bits.size(),
                                    8);
             f.norm.addRegion(dec.tableData(), dec.tableSize(),
                              0x18100000);
             f.norm.addRegion(dec.ctxData(), dec.ctxSize(),
                              0x18200000);
             for (int i = 0; i < nbins; ++i)
                 dec.decodeBin(ref_bins[i]);
         },
         [](StageCosts &c, double v) { c.cabacBin = v; }});

    // ---- Video out (aligned frame copy) ----
    const int bytes = 128 * 64;
    jobs.push_back(
        {"video_out", bytes,
         [variant](trace::TraceSink &sink) {
             Fixture f(sink, 0x6000);
             auto &s = f.ctx->so;
             auto &v = f.ctx->vo;
             if (variant == Variant::Scalar) {
                 vmx::CPtr sp = s.lip(f.src.pixel(0, 0));
                 vmx::Ptr dp = s.lip(f.dst.pixel(0, 0));
                 for (int off = 0; off < bytes; off += 8) {
                     vmx::SInt w = s.loadS64(sp, off);
                     s.storeU64(dp, off, w);
                     if ((off & 63) == 56)
                         s.loopBranch(off + 8 < bytes);
                 }
             } else {
                 vmx::CPtr sp = s.lip(f.src.pixel(0, 0));
                 vmx::Ptr dp = s.lip(f.dst.pixel(0, 0));
                 for (int off = 0; off < bytes; off += 16) {
                     vmx::Vec w = v.lvx(sp, off);
                     v.stvx(w, dp, off);
                     if ((off & 63) == 48)
                         s.loopBranch(off + 16 < bytes);
                 }
             }
         },
         [](StageCosts &c, double v) { c.videoOutByte = v; }});

    return jobs;
}

StageCosts
measureStageCosts(Variant variant, const timing::CoreConfig &cfg)
{
    StageCosts costs;
    for (const auto &job : stageCostJobs(variant)) {
        auto sim = timing::makeTimingModel(cfg);
        job.record(*sim);
        job.assign(costs,
                   double(sim->finalize().cycles) / job.divisor);
    }
    return costs;
}

ProfileEstimate
estimateProfile(const StageCounts &counts, const StageCosts &costs,
                double others_cycles)
{
    ProfileEstimate e;
    for (int si = 0; si < 3; ++si) {
        for (int frac = 0; frac < 16; ++frac)
            e.mc += double(counts.lumaMc[si][frac]) *
                    costs.lumaMc[si][frac];
        e.mc += double(counts.chromaMc[si]) * costs.chromaMc[si];
    }
    e.mc += double(counts.chromaCopy) * costs.chromaCopy;
    e.idct = double(counts.idct4x4) * costs.idct4x4;
    e.deblock = double(counts.deblockMbs) * costs.deblockMb;
    e.cabac = double(counts.cabacBins) * costs.cabacBin;
    e.videoOut = double(counts.videoOutBytes) * costs.videoOutByte;
    e.others = others_cycles;
    return e;
}

} // namespace uasim::dec
