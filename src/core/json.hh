/**
 * @file
 * Minimal spec-correct JSON layer for the BENCH_*.json result
 * artifacts (core/result.hh) and the uasim-report differ.
 *
 * Deliberately small but exact:
 *  - Objects preserve insertion order, so a value dumps to the same
 *    bytes every time (serialize -> parse -> serialize is
 *    bit-identical; tests/json_test.cc locks this).
 *  - Numbers keep their integer/floating identity: integers are
 *    written as exact decimal (full uint64/int64 range, no double
 *    detour), doubles via "%.17g" so strtod() recovers the exact
 *    same IEEE-754 bits.
 *  - The writer escapes everything RFC 8259 requires (quote,
 *    backslash, control characters); non-ASCII bytes are assumed to
 *    be UTF-8 and passed through.
 *  - The parser is strict: it rejects trailing garbage, raw control
 *    characters in strings, malformed escapes/surrogate pairs,
 *    leading zeros, duplicate object keys, and unreasonable nesting
 *    depth, instead of guessing.
 */

#ifndef UASIM_CORE_JSON_HH
#define UASIM_CORE_JSON_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace uasim::json {

/// Error thrown by parse() on malformed input.
class ParseError : public std::runtime_error
{
  public:
    explicit ParseError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/// Error thrown by the as*() accessors on a type mismatch.
class TypeError : public std::runtime_error
{
  public:
    explicit TypeError(const std::string &what)
        : std::runtime_error(what)
    {}
};

class Value;

/// Insertion-ordered string -> Value map (JSON object).
class Object
{
  public:
    /// Set @p key (replacing an existing value, keeping its slot).
    void set(std::string key, Value v);

    /// Member lookup; nullptr when absent.
    const Value *find(std::string_view key) const;

    bool contains(std::string_view key) const { return find(key); }

    const std::vector<std::pair<std::string, Value>> &
    members() const
    {
        return members_;
    }

    bool empty() const { return members_.empty(); }
    std::size_t size() const { return members_.size(); }

  private:
    std::vector<std::pair<std::string, Value>> members_;
};

using Array = std::vector<Value>;

/**
 * One JSON value. Signed and unsigned integers are distinct from
 * doubles so 64-bit simulator counters survive a round trip exactly.
 */
class Value
{
  public:
    enum class Type { Null, Bool, Int, Uint, Double, String, Array, Object };

    Value() : type_(Type::Null) {}
    Value(std::nullptr_t) : type_(Type::Null) {}
    Value(bool b) : type_(Type::Bool), bool_(b) {}
    Value(int v) : type_(Type::Int), int_(v) {}
    Value(long v) : type_(Type::Int), int_(v) {}
    Value(long long v) : type_(Type::Int), int_(v) {}
    Value(unsigned v) : type_(Type::Uint), uint_(v) {}
    Value(unsigned long v) : type_(Type::Uint), uint_(v) {}
    Value(unsigned long long v) : type_(Type::Uint), uint_(v) {}
    Value(double v) : type_(Type::Double), double_(v) {}
    Value(const char *s) : type_(Type::String), string_(s) {}
    Value(std::string s) : type_(Type::String), string_(std::move(s)) {}
    Value(std::string_view s) : type_(Type::String), string_(s) {}
    Value(Array a)
        : type_(Type::Array), array_(std::make_shared<Array>(std::move(a)))
    {}
    Value(Object o)
        : type_(Type::Object),
          object_(std::make_shared<Object>(std::move(o)))
    {}

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isNumber() const
    {
        return type_ == Type::Int || type_ == Type::Uint ||
               type_ == Type::Double;
    }

    /// @name Checked accessors (throw TypeError on mismatch).
    /// @{
    bool asBool() const;
    /// Any number representable as int64 without loss.
    std::int64_t asInt() const;
    /// Any non-negative integer number.
    std::uint64_t asUint() const;
    /// Any number, converted to double (ints convert exactly up to
    /// 2^53; larger counters should be read with asUint()).
    double asDouble() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;
    /// @}

    /**
     * Serialize. @p indent > 0 pretty-prints with that many spaces
     * per level (the artifact style); 0 emits the compact form.
     */
    std::string dump(int indent = 0) const;

  private:
    friend class Object;
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double double_ = 0;
    std::string string_;
    std::shared_ptr<Array> array_;
    std::shared_ptr<Object> object_;
};

/// Append the JSON string literal for @p s (quotes + escapes) to @p out.
void escapeString(std::string &out, std::string_view s);

/// Format @p v the way the writer does ("%.17g", round-trippable).
/// @throws std::invalid_argument for NaN/Infinity (not JSON values).
std::string formatDouble(double v);

/**
 * Parse one JSON document. Strict: the whole input must be consumed
 * (trailing whitespace allowed).
 * @throws ParseError on malformed input.
 */
Value parse(std::string_view text);

} // namespace uasim::json

#endif // UASIM_CORE_JSON_HH
