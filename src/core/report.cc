#include "core/report.hh"

#include <iomanip>
#include <sstream>

namespace uasim::core {

void
TextTable::header(std::vector<std::string> cells)
{
    rows_.insert(rows_.begin(), std::move(cells));
    hasHeader_ = true;
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::str() const
{
    std::vector<std::size_t> width;
    for (const auto &r : rows_) {
        if (width.size() < r.size())
            width.resize(r.size(), 0);
        for (std::size_t i = 0; i < r.size(); ++i)
            width[i] = std::max(width[i], r[i].size());
    }
    std::ostringstream os;
    for (std::size_t ri = 0; ri < rows_.size(); ++ri) {
        const auto &r = rows_[ri];
        for (std::size_t i = 0; i < r.size(); ++i) {
            if (i)
                os << "  ";
            if (i == 0)
                os << std::left << std::setw(int(width[i])) << r[i];
            else
                os << std::right << std::setw(int(width[i])) << r[i];
        }
        os << '\n';
        if (ri == 0 && hasHeader_) {
            std::size_t total = 0;
            for (std::size_t i = 0; i < width.size(); ++i)
                total += width[i] + (i ? 2 : 0);
            os << std::string(total, '-') << '\n';
        }
    }
    return os.str();
}

namespace {

/// RFC 4180: cells containing the separator, a quote, or a line
/// break must be quoted, with embedded quotes doubled.
std::string
csvCell(const std::string &cell)
{
    if (cell.find_first_of(",\"\r\n") == std::string::npos)
        return cell;
    std::string out;
    out.reserve(cell.size() + 2);
    out += '"';
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
TextTable::csv() const
{
    std::ostringstream os;
    for (const auto &r : rows_) {
        for (std::size_t i = 0; i < r.size(); ++i) {
            if (i)
                os << ',';
            os << csvCell(r[i]);
        }
        os << '\n';
    }
    return os.str();
}

std::string
fmt(double v, int prec)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
}

std::string
fmtCount(std::uint64_t v)
{
    std::string raw = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
        if (count && count % 3 == 0)
            out.insert(out.begin(), ',');
        out.insert(out.begin(), *it);
        ++count;
    }
    return out;
}

} // namespace uasim::core
