/**
 * @file
 * Campaign-file parsing, deterministic grid expansion, content-hash
 * identity, resumable shard execution, and shard-artifact merging.
 * See campaign.hh for the format and the execution model.
 *
 * Everything here is deliberately wall-clock-, randomness-, and
 * iteration-order-free (std::map/std::set only): expansion order,
 * chunk addressing, and merged artifacts are pure functions of the
 * campaign text, which is what the sim-determinism lint rule enforces
 * for this file.
 */

#include "core/campaign.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "timing/model.hh"
#include "trace/trace_io.hh"

namespace uasim::core {

namespace {

// ---------------------------------------------------------------------------
// small text helpers
// ---------------------------------------------------------------------------

std::string
trimmed(std::string_view s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// [values] names and [campaign] name: identifier, '-' allowed inside.
bool
isCampaignIdent(const std::string &s)
{
    if (s.empty() || !isIdentStart(s[0]))
        return false;
    for (char c : s)
        if (!isIdentChar(c) && c != '-')
            return false;
    return true;
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t at = 0;
    while (at <= s.size()) {
        std::size_t comma = s.find(',', at);
        if (comma == std::string::npos)
            comma = s.size();
        out.push_back(trimmed(std::string_view(s).substr(at, comma - at)));
        at = comma + 1;
    }
    return out;
}

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return std::string(buf);
}

// ---------------------------------------------------------------------------
// expression evaluator
// ---------------------------------------------------------------------------

struct ExprParser {
    std::string_view text;
    std::size_t pos = 0;
    const std::map<std::string, long long> &values;

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        throw CampaignError("bad expression '" + std::string(text) +
                            "': " + msg);
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    eat(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    long long
    parseFactor()
    {
        skipWs();
        if (pos >= text.size())
            fail("expected a value");
        char c = text[pos];
        if (c == '-') {
            ++pos;
            return -parseFactor();
        }
        if (c == '(') {
            ++pos;
            long long v = parseExpr();
            if (!eat(')'))
                fail("missing ')'");
            return v;
        }
        if (c == '$') {
            ++pos;
            if (!eat('('))
                fail("expected '(' after '$'");
            skipWs();
            std::size_t b = pos;
            while (pos < text.size() &&
                   (isIdentChar(text[pos]) || text[pos] == '-'))
                ++pos;
            if (pos == b)
                fail("empty $() reference");
            std::string name(text.substr(b, pos - b));
            if (!eat(')'))
                fail("missing ')' after $(" + name);
            auto it = values.find(name);
            if (it == values.end())
                fail("undefined value '" + name + "'");
            return it->second;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t b = pos;
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                ++pos;
            errno = 0;
            long long v =
                std::strtoll(std::string(text.substr(b, pos - b)).c_str(),
                             nullptr, 10);
            if (errno != 0)
                fail("integer literal out of range");
            return v;
        }
        fail(std::string("unexpected character '") + c + "'");
    }

    long long
    parseTerm()
    {
        long long v = parseFactor();
        for (;;) {
            skipWs();
            if (pos >= text.size())
                return v;
            char op = text[pos];
            if (op != '*' && op != '/')
                return v;
            ++pos;
            long long rhs = parseFactor();
            if (op == '*') {
                v *= rhs;
            } else {
                if (rhs == 0)
                    fail("division by zero");
                v /= rhs;
            }
        }
    }

    long long
    parseExpr()
    {
        long long v = parseTerm();
        for (;;) {
            skipWs();
            if (pos >= text.size())
                return v;
            char op = text[pos];
            if (op != '+' && op != '-')
                return v;
            ++pos;
            long long rhs = parseTerm();
            v = op == '+' ? v + rhs : v - rhs;
        }
    }
};

// ---------------------------------------------------------------------------
// CoreConfig field table
// ---------------------------------------------------------------------------

struct CoreField {
    const char *name;
    void (*set)(timing::CoreConfig &, long long);
};

/// Sorted by name; campaignCoreFields() and the docs mirror this list.
const CoreField coreFieldTable[] = {
    {"branchQ", [](timing::CoreConfig &c, long long v) { c.branchQ = int(v); }},
    {"bpredLog2Entries",
     [](timing::CoreConfig &c, long long v) { c.bpredLog2Entries = int(v); }},
    {"dReadPorts",
     [](timing::CoreConfig &c, long long v) { c.dReadPorts = int(v); }},
    {"dWritePorts",
     [](timing::CoreConfig &c, long long v) { c.dWritePorts = int(v); }},
    {"fetchWidth",
     [](timing::CoreConfig &c, long long v) { c.fetchWidth = int(v); }},
    {"fprPhys", [](timing::CoreConfig &c, long long v) { c.fprPhys = int(v); }},
    {"gprPhys", [](timing::CoreConfig &c, long long v) { c.gprPhys = int(v); }},
    {"ibuffer", [](timing::CoreConfig &c, long long v) { c.ibuffer = int(v); }},
    {"inflight",
     [](timing::CoreConfig &c, long long v) { c.inflight = int(v); }},
    {"inorderLookahead",
     [](timing::CoreConfig &c, long long v) { c.inorderLookahead = int(v); }},
    {"issueQ", [](timing::CoreConfig &c, long long v) { c.issueQ = int(v); }},
    {"issueWidth",
     [](timing::CoreConfig &c, long long v) { c.issueWidth = int(v); }},
    {"lat.branchResolve",
     [](timing::CoreConfig &c, long long v) { c.lat.branchResolve = int(v); }},
    {"lat.fpAlu",
     [](timing::CoreConfig &c, long long v) { c.lat.fpAlu = int(v); }},
    {"lat.intAlu",
     [](timing::CoreConfig &c, long long v) { c.lat.intAlu = int(v); }},
    {"lat.intMul",
     [](timing::CoreConfig &c, long long v) { c.lat.intMul = int(v); }},
    {"lat.load",
     [](timing::CoreConfig &c, long long v) { c.lat.load = int(v); }},
    {"lat.mispredictPenalty",
     [](timing::CoreConfig &c, long long v) {
         c.lat.mispredictPenalty = int(v);
     }},
    {"lat.unalignedLoadExtra",
     [](timing::CoreConfig &c, long long v) {
         c.lat.unalignedLoadExtra = int(v);
     }},
    {"lat.unalignedStoreExtra",
     [](timing::CoreConfig &c, long long v) {
         c.lat.unalignedStoreExtra = int(v);
     }},
    {"lat.vecComplex",
     [](timing::CoreConfig &c, long long v) { c.lat.vecComplex = int(v); }},
    {"lat.vecPerm",
     [](timing::CoreConfig &c, long long v) { c.lat.vecPerm = int(v); }},
    {"lat.vecSimple",
     [](timing::CoreConfig &c, long long v) { c.lat.vecSimple = int(v); }},
    {"mem.l2Latency",
     [](timing::CoreConfig &c, long long v) { c.mem.l2Latency = int(v); }},
    {"mem.memBWBytesPerCycle",
     [](timing::CoreConfig &c, long long v) {
         c.mem.memBWBytesPerCycle = int(v);
     }},
    {"mem.memLatency",
     [](timing::CoreConfig &c, long long v) { c.mem.memLatency = int(v); }},
    {"mem.parallelBanks",
     [](timing::CoreConfig &c, long long v) { c.mem.parallelBanks = v != 0; }},
    {"memReplayPenalty",
     [](timing::CoreConfig &c, long long v) { c.memReplayPenalty = int(v); }},
    {"missMax", [](timing::CoreConfig &c, long long v) { c.missMax = int(v); }},
    {"retireWidth",
     [](timing::CoreConfig &c, long long v) { c.retireWidth = int(v); }},
    {"storeQ", [](timing::CoreConfig &c, long long v) { c.storeQ = int(v); }},
    {"storeSetLog2",
     [](timing::CoreConfig &c, long long v) { c.storeSetLog2 = int(v); }},
    {"units.br", [](timing::CoreConfig &c, long long v) { c.units.br = int(v); }},
    {"units.fp", [](timing::CoreConfig &c, long long v) { c.units.fp = int(v); }},
    {"units.fx", [](timing::CoreConfig &c, long long v) { c.units.fx = int(v); }},
    {"units.ls", [](timing::CoreConfig &c, long long v) { c.units.ls = int(v); }},
    {"units.vcmplx",
     [](timing::CoreConfig &c, long long v) { c.units.vcmplx = int(v); }},
    {"units.vi", [](timing::CoreConfig &c, long long v) { c.units.vi = int(v); }},
    {"units.vperm",
     [](timing::CoreConfig &c, long long v) { c.units.vperm = int(v); }},
};

// ---------------------------------------------------------------------------
// parse scaffolding
// ---------------------------------------------------------------------------

struct Entry {
    int line = 0;
    std::string key;
    std::string value;
};

[[noreturn]] void
parseFail(int line, const std::string &msg)
{
    throw CampaignError("campaign line " + std::to_string(line) + ": " + msg);
}

const std::vector<KernelSpec> &
kernelGrid()
{
    static const std::vector<KernelSpec> grid = paperKernelGrid();
    return grid;
}

bool
lookupKernel(const std::string &name, KernelSpec &out)
{
    for (const KernelSpec &s : kernelGrid()) {
        if (s.name() == name) {
            out = s;
            return true;
        }
    }
    return false;
}

bool
lookupVariant(const std::string &name, h264::Variant &out)
{
    static const h264::Variant all[] = {h264::Variant::Scalar,
                                        h264::Variant::Altivec,
                                        h264::Variant::Unaligned};
    for (h264::Variant v : all) {
        if (h264::variantName(v) == name) {
            out = v;
            return true;
        }
    }
    return false;
}

bool
lookupPreset(const std::string &name, timing::CoreConfig &out)
{
    for (int i = 0; i < 3; ++i) {
        if (name == timing::CoreConfig::presetNames[i]) {
            out = timing::CoreConfig::preset(i);
            return true;
        }
    }
    return false;
}

} // namespace

// ---------------------------------------------------------------------------
// public expression / field-table API
// ---------------------------------------------------------------------------

long long
evalCampaignExpr(std::string_view expr,
                 const std::map<std::string, long long> &values)
{
    ExprParser p{expr, 0, values};
    p.skipWs();
    if (p.pos == expr.size())
        p.fail("empty expression");
    long long v = p.parseExpr();
    p.skipWs();
    if (p.pos != expr.size())
        p.fail("trailing garbage at '" +
               std::string(expr.substr(p.pos)) + "'");
    return v;
}

const std::vector<std::string> &
campaignCoreFields()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const CoreField &f : coreFieldTable)
            out.push_back(f.name);
        std::sort(out.begin(), out.end());
        return out;
    }();
    return names;
}

bool
setCampaignCoreField(timing::CoreConfig &cfg, const std::string &field,
                     long long value)
{
    for (const CoreField &f : coreFieldTable) {
        if (field == f.name) {
            f.set(cfg, value);
            return true;
        }
    }
    return false;
}

// ---------------------------------------------------------------------------
// Campaign::parse
// ---------------------------------------------------------------------------

Campaign
Campaign::parse(std::string_view text)
{
    // Pass 1: split into sections (any file order), reject unknown or
    // duplicate sections and junk lines.
    static const char *const sectionNames[] = {"campaign", "values",
                                               "workload", "core", "axes"};
    std::map<std::string, std::vector<Entry>> sections;
    std::string current;
    int lineNo = 0;
    std::size_t at = 0;
    while (at <= text.size()) {
        std::size_t eol = text.find('\n', at);
        if (eol == std::string_view::npos)
            eol = text.size();
        std::string line(text.substr(at, eol - at));
        at = eol + 1;
        ++lineNo;
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        line = trimmed(line);
        if (line.empty())
            continue;
        if (line.front() == '[') {
            if (line.back() != ']')
                parseFail(lineNo, "malformed section header '" + line + "'");
            std::string name = trimmed(
                std::string_view(line).substr(1, line.size() - 2));
            bool known = false;
            for (const char *s : sectionNames)
                known = known || name == s;
            if (!known)
                parseFail(lineNo, "unknown section [" + name + "]");
            if (sections.count(name))
                parseFail(lineNo, "duplicate section [" + name + "]");
            sections[name];  // mark present even if empty
            current = name;
            continue;
        }
        std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            parseFail(lineNo, "expected 'key = value', got '" + line + "'");
        if (current.empty())
            parseFail(lineNo, "entry before any [section]");
        Entry e;
        e.line = lineNo;
        e.key = trimmed(std::string_view(line).substr(0, eq));
        e.value = trimmed(std::string_view(line).substr(eq + 1));
        if (e.key.empty())
            parseFail(lineNo, "empty key");
        if (e.value.empty())
            parseFail(lineNo, "empty value for '" + e.key + "'");
        sections[current].push_back(std::move(e));
    }

    Campaign c;
    std::map<std::string, long long> values;

    // [campaign]
    if (!sections.count("campaign"))
        throw CampaignError("campaign: missing [campaign] section");
    {
        std::set<std::string> seen;
        for (const Entry &e : sections["campaign"]) {
            if (!seen.insert(e.key).second)
                parseFail(e.line, "duplicate key '" + e.key + "'");
            if (e.key == "name") {
                if (!isCampaignIdent(e.value))
                    parseFail(e.line, "invalid campaign name '" + e.value +
                                          "' (want [A-Za-z_][A-Za-z0-9_-]*)");
                c.name_ = e.value;
            } else if (e.key == "execs") {
                long long v = evalCampaignExpr(e.value, values);
                if (v < 1 || v > 1000000000)
                    parseFail(e.line, "execs out of range: " +
                                          std::to_string(v));
                c.execs_ = int(v);
            } else if (e.key == "seed") {
                long long v = evalCampaignExpr(e.value, values);
                if (v < 0)
                    parseFail(e.line, "seed must be non-negative");
                c.seed_ = std::uint64_t(v);
            } else {
                parseFail(e.line, "unknown [campaign] key '" + e.key + "'");
            }
        }
        if (c.name_.empty())
            throw CampaignError("campaign: [campaign] requires 'name'");
        if (c.execs_ == 0)
            throw CampaignError("campaign '" + c.name_ +
                                "': [campaign] requires 'execs'");
    }

    // [values] - derived parameters; each may reference earlier ones.
    if (sections.count("values")) {
        for (const Entry &e : sections["values"]) {
            if (!isCampaignIdent(e.key))
                parseFail(e.line, "invalid value name '" + e.key + "'");
            if (values.count(e.key))
                parseFail(e.line, "duplicate value '" + e.key + "'");
            try {
                values[e.key] = evalCampaignExpr(e.value, values);
            } catch (const CampaignError &err) {
                parseFail(e.line, err.what());
            }
        }
    }

    // [workload]
    if (!sections.count("workload"))
        throw CampaignError("campaign '" + c.name_ +
                            "': missing [workload] section");
    {
        std::set<std::string> seen;
        for (const Entry &e : sections["workload"]) {
            if (!seen.insert(e.key).second)
                parseFail(e.line, "duplicate key '" + e.key + "'");
            if (e.key == "kernels") {
                if (e.value == "paper") {
                    c.kernels_ = kernelGrid();
                    continue;
                }
                std::set<std::string> dup;
                for (const std::string &k : splitList(e.value)) {
                    KernelSpec spec;
                    if (!lookupKernel(k, spec))
                        parseFail(e.line, "unknown kernel '" + k + "'");
                    if (!dup.insert(k).second)
                        parseFail(e.line, "duplicate kernel '" + k + "'");
                    c.kernels_.push_back(spec);
                }
            } else if (e.key == "variants") {
                std::set<std::string> dup;
                for (const std::string &v : splitList(e.value)) {
                    h264::Variant var;
                    if (!lookupVariant(v, var))
                        parseFail(e.line, "unknown variant '" + v + "'");
                    if (!dup.insert(v).second)
                        parseFail(e.line, "duplicate variant '" + v + "'");
                    c.variants_.push_back(var);
                }
            } else {
                parseFail(e.line, "unknown [workload] key '" + e.key + "'");
            }
        }
        if (c.kernels_.empty())
            throw CampaignError("campaign '" + c.name_ +
                                "': [workload] requires 'kernels'");
        if (c.variants_.empty())
            throw CampaignError("campaign '" + c.name_ +
                                "': [workload] requires 'variants'");
    }

    // [core]
    std::set<std::string> fixedFields;
    if (sections.count("core")) {
        std::set<std::string> seen;
        for (const Entry &e : sections["core"]) {
            if (!seen.insert(e.key).second)
                parseFail(e.line, "duplicate key '" + e.key + "'");
            if (e.key == "base") {
                timing::CoreConfig probe;
                if (!lookupPreset(e.value, probe))
                    parseFail(e.line, "unknown base preset '" + e.value +
                                          "' (want 2w, 4w, or 8w)");
                c.base_ = e.value;
            } else if (e.key == "model") {
                if (!timing::isTimingModel(e.value))
                    parseFail(e.line,
                              "unknown timing model '" + e.value + "'");
                c.fixedModel_ = e.value;
            } else {
                timing::CoreConfig probe;
                if (!setCampaignCoreField(probe, e.key, 0))
                    parseFail(e.line,
                              "unknown core field '" + e.key + "'");
                long long v;
                try {
                    v = evalCampaignExpr(e.value, values);
                } catch (const CampaignError &err) {
                    parseFail(e.line, err.what());
                }
                c.overrides_.emplace_back(e.key, v);
                fixedFields.insert(e.key);
            }
        }
    }

    // [axes]
    if (sections.count("axes")) {
        std::set<std::string> seen;
        for (const Entry &e : sections["axes"]) {
            if (!seen.insert(e.key).second)
                parseFail(e.line, "duplicate axis '" + e.key + "'");
            CampaignAxis axis;
            axis.field = e.key;
            if (e.key == "model") {
                if (!c.fixedModel_.empty())
                    parseFail(e.line,
                              "'model' is both a [core] override and an axis");
                std::set<std::string> dup;
                for (const std::string &m : splitList(e.value)) {
                    if (!timing::isTimingModel(m))
                        parseFail(e.line,
                                  "unknown timing model '" + m + "'");
                    if (!dup.insert(m).second)
                        parseFail(e.line,
                                  "duplicate axis value '" + m + "'");
                    axis.names.push_back(m);
                }
            } else {
                timing::CoreConfig probe;
                if (!setCampaignCoreField(probe, e.key, 0))
                    parseFail(e.line, "unknown core field '" + e.key + "'");
                if (fixedFields.count(e.key))
                    parseFail(e.line, "'" + e.key +
                                          "' is both a [core] override "
                                          "and an axis");
                std::set<long long> dup;
                for (const std::string &t : splitList(e.value)) {
                    long long v;
                    try {
                        v = evalCampaignExpr(t, values);
                    } catch (const CampaignError &err) {
                        parseFail(e.line, err.what());
                    }
                    if (!dup.insert(v).second)
                        parseFail(e.line, "duplicate axis value " +
                                              std::to_string(v));
                    axis.values.push_back(v);
                }
            }
            if (axis.values.empty() && axis.names.empty())
                parseFail(e.line, "axis '" + e.key + "' has no values");
            c.axes_.push_back(std::move(axis));
        }
    }

    // Expand and validate the config grid.
    timing::CoreConfig base;
    lookupPreset(c.base_, base);
    if (!c.fixedModel_.empty())
        base.model = c.fixedModel_;
    for (const auto &[field, value] : c.overrides_)
        setCampaignCoreField(base, field, value);

    long long total = 1;
    for (const CampaignAxis &a : c.axes_) {
        total *= static_cast<long long>(a.values.size() + a.names.size());
        if (total > 1000000)
            throw CampaignError("campaign '" + c.name_ +
                                "': axes expand to more than 1000000 "
                                "configurations");
    }
    for (long long i = 0; i < total; ++i) {
        timing::CoreConfig cfg = base;
        std::string label;
        long long rem = i;
        // First axis slowest: the declaration-order odometer.
        long long stride = total;
        for (const CampaignAxis &a : c.axes_) {
            long long n =
                static_cast<long long>(a.values.size() + a.names.size());
            stride /= n;
            long long pick = (rem / stride) % n;
            if (!label.empty())
                label += ',';
            if (!a.names.empty()) {
                cfg.model = a.names[std::size_t(pick)];
                label += a.field + "=" + a.names[std::size_t(pick)];
            } else {
                long long v = a.values[std::size_t(pick)];
                setCampaignCoreField(cfg, a.field, v);
                label += a.field + "=" + std::to_string(v);
            }
        }
        if (label.empty())
            label = c.base_;  // axis-free campaign: the base core alone
        cfg.name = label;
        try {
            cfg.validate();
        } catch (const std::invalid_argument &err) {
            throw CampaignError("campaign '" + c.name_ +
                                "': invalid configuration '" + label +
                                "': " + err.what());
        }
        c.configs_.push_back(ConfigJob{label, cfg});
    }
    return c;
}

Campaign
Campaign::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw CampaignError("cannot open campaign file: " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad())
        throw CampaignError("error reading campaign file: " + path);
    return parse(ss.str());
}

// ---------------------------------------------------------------------------
// canonical form + identity
// ---------------------------------------------------------------------------

std::string
Campaign::canonical() const
{
    std::string out;
    out += "[campaign]\n";
    out += "name = " + name_ + "\n";
    out += "execs = " + std::to_string(execs_) + "\n";
    out += "seed = " + std::to_string(seed_) + "\n";
    out += "\n[workload]\n";
    out += "kernels = ";
    for (std::size_t i = 0; i < kernels_.size(); ++i)
        out += (i ? ", " : "") + kernels_[i].name();
    out += "\nvariants = ";
    for (std::size_t i = 0; i < variants_.size(); ++i) {
        if (i)
            out += ", ";
        out += std::string(h264::variantName(variants_[i]));
    }
    out += "\n\n[core]\n";
    out += "base = " + base_ + "\n";
    if (!fixedModel_.empty())
        out += "model = " + fixedModel_ + "\n";
    for (const auto &[field, value] : overrides_)
        out += field + " = " + std::to_string(value) + "\n";
    if (!axes_.empty()) {
        out += "\n[axes]\n";
        for (const CampaignAxis &a : axes_) {
            out += a.field + " = ";
            if (!a.names.empty()) {
                for (std::size_t i = 0; i < a.names.size(); ++i)
                    out += (i ? ", " : "") + a.names[i];
            } else {
                for (std::size_t i = 0; i < a.values.size(); ++i) {
                    if (i)
                        out += ", ";
                    out += std::to_string(a.values[i]);
                }
            }
            out += "\n";
        }
    }
    return out;
}

std::uint64_t
Campaign::contentHash() const
{
    const std::string text = canonical();
    return trace::wire::fnv1a(text.data(), text.size());
}

std::string
Campaign::contentHashHex() const
{
    return hex16(contentHash());
}

std::string
Campaign::id() const
{
    return name_ + "-" + contentHashHex();
}

// ---------------------------------------------------------------------------
// grid / chunk / shard model
// ---------------------------------------------------------------------------

std::string
Campaign::chunkTraceKey(int chunk) const
{
    const int v = int(variants_.size());
    const KernelSpec &spec = kernels_[std::size_t(chunk / v)];
    return kernelTraceJob(spec, variants_[std::size_t(chunk % v)], execs_,
                          seed_)
        .key;
}

std::uint64_t
Campaign::chunkHash(int chunk) const
{
    std::string tail = "/chunk/" + std::to_string(chunk) + "/" +
                       chunkTraceKey(chunk);
    return trace::wire::fnv1a(tail.data(), tail.size(), contentHash());
}

std::string
Campaign::chunkFileName(int chunk) const
{
    return "chunk-" + hex16(chunkHash(chunk)) + ".json";
}

std::vector<int>
Campaign::shardChunks(int chunkCount, int shard, int shardCount)
{
    if (shardCount < 1)
        throw CampaignError("shard count must be >= 1");
    if (shard < 0 || shard >= shardCount)
        throw CampaignError("shard index " + std::to_string(shard) +
                            " out of range for " +
                            std::to_string(shardCount) + " shard(s)");
    std::vector<int> out;
    for (int j = shard; j < chunkCount; j += shardCount)
        out.push_back(j);
    return out;
}

SweepPlan
Campaign::buildPlan(const std::vector<int> &chunks) const
{
    SweepPlan plan;
    for (const ConfigJob &c : configs_)
        plan.addConfig(c.label, c.cfg);
    const int v = int(variants_.size());
    for (int j : chunks) {
        const KernelSpec &spec = kernels_[std::size_t(j / v)];
        int ti = plan.addTrace(
            kernelTraceJob(spec, variants_[std::size_t(j % v)], execs_,
                           seed_));
        for (int c = 0; c < configCount(); ++c)
            plan.addCell(ti, c);
    }
    return plan;
}

// ---------------------------------------------------------------------------
// shard execution + resume
// ---------------------------------------------------------------------------

namespace {

using Params = std::vector<std::pair<std::string, json::Value>>;

bool
sameParams(const Params &a, const Params &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].first != b[i].first ||
            a[i].second.dump(0) != b[i].second.dump(0))
            return false;
    }
    return true;
}

/// The identity params every campaign artifact carries, in order.
void
addCommonParams(const Campaign &c, BenchResult &r)
{
    r.addParam("campaign", json::Value(c.name()));
    r.addParam("campaign_hash", json::Value(c.contentHashHex()));
    r.addParam("execs", json::Value(c.execs()));
    r.addParam("seed",
               json::Value(static_cast<unsigned long long>(c.seed())));
    r.addParam("chunk_count", json::Value(c.chunkCount()));
    r.addParam("config_count", json::Value(c.configCount()));
}

Params
expectedChunkParams(const Campaign &c, int chunk)
{
    BenchResult tmp;
    addCommonParams(c, tmp);
    tmp.addParam("chunk", json::Value(chunk));
    tmp.addParam("chunk_hash", json::Value(hex16(c.chunkHash(chunk))));
    return tmp.params;
}

/**
 * A published chunk artifact is resumable only if it provably is this
 * chunk of this campaign: identity params, cell layout, and the
 * deterministic stats subset must all match what a fresh execution
 * would publish. Anything else - partial write, stale campaign,
 * hand-edited file - re-executes the chunk instead of failing.
 */
bool
chunkArtifactValid(const Campaign &c, int chunk, const BenchResult &r)
{
    if (r.bench != c.name() || !r.metrics.empty() || !r.hasStats)
        return false;
    if (!sameParams(r.params, expectedChunkParams(c, chunk)))
        return false;
    if (int(r.cells.size()) != c.configCount())
        return false;
    const std::string traceKey = c.chunkTraceKey(chunk);
    std::uint64_t instrs = 0;
    for (int i = 0; i < c.configCount(); ++i) {
        const ResultCell &cell = r.cells[std::size_t(i)];
        if (cell.trace != traceKey ||
            cell.config != c.configs()[std::size_t(i)].label)
            return false;
        instrs += cell.traceInstrs;
    }
    return r.stats.cellsRun == std::uint64_t(c.configCount()) &&
           r.stats.instrsReplayed == instrs;
}

} // namespace

CampaignRunOutcome
runCampaignShard(const Campaign &campaign, const CampaignRunOptions &opt)
{
    namespace fs = std::filesystem;
    if (opt.jsonDir.empty())
        throw CampaignError("campaign run requires an artifact directory");
    const std::vector<int> chunks =
        opt.sharded
            ? Campaign::shardChunks(campaign.chunkCount(), opt.shard,
                                    opt.shardCount)
            : Campaign::shardChunks(campaign.chunkCount(), 0, 1);

    fs::create_directories(fs::path(opt.jsonDir));
    // Chunk artifacts live under a campaign-id subdirectory, outside
    // the BENCH_*.json namespace uasim-report directory scans use.
    const fs::path chunkDir =
        fs::path(opt.jsonDir) / (campaign.id() + ".chunks");
    fs::create_directories(chunkDir);

    CampaignRunOutcome out;
    out.chunkDir = chunkDir.string();

    const int C = campaign.configCount();
    std::vector<BenchResult> chunkResults(chunks.size());
    std::vector<std::size_t> toRun;
    for (std::size_t k = 0; k < chunks.size(); ++k) {
        const int j = chunks[k];
        const std::string file = campaign.chunkFileName(j);
        bool published = false;
        const fs::path path = chunkDir / file;
        if (fs::exists(path)) {
            try {
                BenchResult r = loadResultFile(path.string());
                if (chunkArtifactValid(campaign, j, r)) {
                    chunkResults[k] = std::move(r);
                    published = true;
                }
            } catch (const std::exception &) {
                published = false;  // unreadable/corrupt: re-execute
            }
        }
        out.chunks.push_back(CampaignChunkStatus{j, file, published});
        if (!published)
            toRun.push_back(k);
    }

    SweepStats runStats{};
    bool ran = false;
    if (!toRun.empty()) {
        std::vector<int> runChunks;
        for (std::size_t k : toRun)
            runChunks.push_back(chunks[k]);
        SweepPlan plan = campaign.buildPlan(runChunks);
        SweepRunner runner(opt.threads);
        if (!opt.traceCache.empty())
            runner.attachStore(opt.traceCache);
        runner.setReplayMode(opt.replayMode);
        const std::vector<SweepCellResult> results = runner.run(plan);
        runStats = runner.stats();
        ran = true;
        for (std::size_t r = 0; r < toRun.size(); ++r) {
            const std::size_t k = toRun[r];
            const int j = chunks[k];
            BenchResult cr;
            cr.bench = campaign.name();
            for (auto &p : expectedChunkParams(campaign, j))
                cr.addParam(p.first, p.second);
            SweepStats s{};
            for (int i = 0; i < C; ++i) {
                const SweepCellResult &cell = results[r * std::size_t(C) +
                                                      std::size_t(i)];
                cr.cells.push_back(ResultCell{cell.traceKey,
                                              cell.configLabel,
                                              cell.traceInstrs, cell.sim,
                                              cell.mix});
                s.instrsReplayed += cell.traceInstrs;
            }
            s.cellsRun = std::uint64_t(C);
            cr.stats = s;
            cr.hasStats = true;
            cr.hasInformational = false;
            // Baseline form (no informational block): re-publishing the
            // same chunk always writes the same bytes.
            saveResultFile(cr, (chunkDir / campaign.chunkFileName(j)).string(),
                           false);
            chunkResults[k] = std::move(cr);
        }
    }

    BenchResult art;
    art.bench = campaign.name();
    addCommonParams(campaign, art);
    if (opt.sharded) {
        art.addParam("shard", json::Value(opt.shard));
        art.addParam("shard_count", json::Value(opt.shardCount));
    }
    SweepStats total{};
    for (const BenchResult &cr : chunkResults) {
        for (const ResultCell &cell : cr.cells)
            art.cells.push_back(cell);
        total.cellsRun += cr.stats.cellsRun;
        total.instrsReplayed += cr.stats.instrsReplayed;
    }
    if (ran) {
        // Carry the informational block of the actual pass, but keep
        // the simulated subset resume-invariant: it covers every chunk
        // of the shard, executed or skipped.
        SweepStats info = runStats;
        info.cellsRun = total.cellsRun;
        info.instrsReplayed = total.instrsReplayed;
        art.stats = info;
        art.hasInformational = true;
    } else {
        art.stats = total;
        art.hasInformational = false;
    }
    art.hasStats = true;

    std::string artName;
    if (opt.sharded) {
        artName = "BENCH_" + campaign.name() + ".shard" +
                  std::to_string(opt.shard) + "of" +
                  std::to_string(opt.shardCount) + ".json";
    } else {
        artName = "BENCH_" + campaign.name() + ".json";
    }
    const fs::path artPath = fs::path(opt.jsonDir) / artName;
    saveResultFile(art, artPath.string(), art.hasInformational);

    out.artifact = std::move(art);
    out.artifactPath = artPath.string();
    out.executed = int(toRun.size());
    out.skipped = int(chunks.size() - toRun.size());
    return out;
}

// ---------------------------------------------------------------------------
// shard-artifact merge
// ---------------------------------------------------------------------------

BenchResult
mergeShardResults(const std::vector<BenchResult> &shards)
{
    if (shards.empty())
        throw CampaignError("merge: no shard artifacts given");

    static const char *const commonNames[] = {
        "campaign", "chunk_count", "config_count", "execs", "seed"};

    // Validate each shard's shape and index it by shard number.
    std::map<int, const BenchResult *> byShard;
    int shardCount = -1;
    for (const BenchResult &r : shards) {
        auto find = [&r](const char *name) -> const json::Value * {
            for (const auto &[k, v] : r.params)
                if (k == name)
                    return &v;
            return nullptr;
        };
        const json::Value *shard = find("shard");
        const json::Value *count = find("shard_count");
        if (!shard || !count)
            throw CampaignError(
                "merge: '" + r.bench +
                "' artifact is not a campaign shard (no shard/shard_count "
                "params)");
        for (const char *name : commonNames)
            if (!find(name))
                throw CampaignError("merge: shard artifact for '" + r.bench +
                                    "' is missing param '" + name + "'");
        if (!r.metrics.empty())
            throw CampaignError(
                "merge: shard artifact carries derived metrics");
        if (!r.hasStats)
            throw CampaignError("merge: shard artifact has no stats block");
        int s = int(shard->asInt());
        int n = int(count->asInt());
        if (n < 1 || s < 0 || s >= n)
            throw CampaignError("merge: invalid shard " + std::to_string(s) +
                                "/" + std::to_string(n));
        if (shardCount == -1)
            shardCount = n;
        else if (shardCount != n)
            throw CampaignError("merge: shard_count mismatch (" +
                                std::to_string(shardCount) + " vs " +
                                std::to_string(n) + ")");
        if (!byShard.emplace(s, &r).second)
            throw CampaignError("merge: overlapping shards (shard " +
                                std::to_string(s) + " appears twice)");
    }
    for (int s = 0; s < shardCount; ++s)
        if (!byShard.count(s))
            throw CampaignError("merge: missing shard " + std::to_string(s) +
                                " of " + std::to_string(shardCount));

    // Common identity params (everything but shard/shard_count) must
    // agree bit-exactly across shards, as must the bench name.
    const BenchResult &first = *byShard.at(0);
    Params common;
    for (const auto &p : first.params)
        if (p.first != "shard" && p.first != "shard_count")
            common.push_back(p);
    for (const auto &[s, r] : byShard) {
        Params mine;
        for (const auto &p : r->params)
            if (p.first != "shard" && p.first != "shard_count")
                mine.push_back(p);
        if (r->bench != first.bench || !sameParams(mine, common))
            throw CampaignError(
                "merge: shard " + std::to_string(s) +
                " belongs to a different campaign than shard 0");
    }

    auto intParam = [&common](const char *name) -> long long {
        for (const auto &[k, v] : common)
            if (k == name)
                return v.asInt();
        return -1;
    };
    const long long chunkCount = intParam("chunk_count");
    const long long configCount = intParam("config_count");
    if (chunkCount < 1 || configCount < 1)
        throw CampaignError("merge: invalid chunk_count/config_count");

    // Per-shard cell count must cover exactly its round-robin chunks.
    for (const auto &[s, r] : byShard) {
        long long myChunks = 0;
        for (long long j = s; j < chunkCount; j += shardCount)
            ++myChunks;
        if (static_cast<long long>(r->cells.size()) !=
            myChunks * configCount)
            throw CampaignError(
                "merge: shard " + std::to_string(s) + " has " +
                std::to_string(r->cells.size()) + " cells, expected " +
                std::to_string(myChunks * configCount));
    }

    // Reassemble chunk-major: chunk j lives at rank j/N within shard
    // j%N, so merged cell order equals the unsharded run's cell order.
    BenchResult out;
    out.bench = first.bench;
    for (const auto &p : common)
        out.addParam(p.first, p.second);
    std::set<std::string> chunkTraces;
    for (long long j = 0; j < chunkCount; ++j) {
        const BenchResult &r = *byShard.at(int(j % shardCount));
        const long long rank = j / shardCount;
        const std::size_t begin = std::size_t(rank * configCount);
        const std::string &traceKey = r.cells[begin].trace;
        if (!chunkTraces.insert(traceKey).second)
            throw CampaignError("merge: overlapping cells (trace '" +
                                traceKey + "' appears in two chunks)");
        for (long long i = 0; i < configCount; ++i) {
            const ResultCell &cell = r.cells[begin + std::size_t(i)];
            if (cell.trace != traceKey)
                throw CampaignError(
                    "merge: shard " + std::to_string(int(j % shardCount)) +
                    " chunk block " + std::to_string(rank) +
                    " mixes traces ('" + traceKey + "' vs '" + cell.trace +
                    "')");
            out.cells.push_back(cell);
        }
    }

    SweepStats total{};
    for (const auto &[s, r] : byShard) {
        total.cellsRun += r->stats.cellsRun;
        total.instrsReplayed += r->stats.instrsReplayed;
    }
    out.stats = total;
    out.hasStats = true;
    out.hasInformational = false;
    return out;
}

} // namespace uasim::core
