/**
 * @file
 * Experiment layer: the public API tying kernels, trace collection and
 * the timing simulator together.
 *
 * A KernelBench reproduces the paper's measurement unit: "one
 * execution" is one kernel invocation on MC-realistic inputs (for the
 * IDCT, one macroblock's worth of transforms, which is what makes the
 * paper's per-execution counts thousands of instructions). Inputs are
 * drawn deterministically: source pointers get the unpredictable
 * (addr % 16) distribution of real motion compensation; destination
 * pointers are partition-aligned like a real reconstruction buffer.
 */

#ifndef UASIM_CORE_EXPERIMENT_HH
#define UASIM_CORE_EXPERIMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "h264/kernels.hh"
#include "timing/config.hh"
#include "timing/results.hh"
#include "trace/mix.hh"
#include "trace/sink.hh"
#include "video/frame.hh"
#include "video/rng.hh"

namespace uasim::core {

struct TraceJob;  // core/sweep.hh

/// One benchmarked kernel configuration (a Table III / Fig 8 row).
struct KernelSpec {
    h264::KernelId kernel = h264::KernelId::Sad;
    int size = 16;        //!< block edge in pixels
    bool matrix = false;  //!< IDCT 4x4 matrix-product algorithm

    /// Display name, e.g. "luma16x16", "idct4x4_matrix".
    std::string name() const;

    /**
     * True when the dynamic trace of @p variant on this spec is
     * independent of the bench's accumulated plane state, i.e. a
     * recording on a fresh bench is bit-identical to one taken after
     * any number of prior executions on the same bench. Only the
     * scalar IDCT is state-sensitive: it reads the reconstruction
     * plane back and clips through a value-indexed table, so its
     * load addresses depend on what earlier calls wrote. Every other
     * kernel/variant reads only never-written planes (MC/SAD
     * sources) or runs value-independent vector code.
     */
    bool traceStateInvariant(h264::Variant variant) const;
};

/// The kernel/size grid of the paper's evaluation (Fig 8 order).
std::vector<KernelSpec> paperKernelGrid();

/// The Table III subset (one block size per kernel family).
std::vector<KernelSpec> tableThreeSpecs();

/**
 * Deterministic workload generator + runner for one KernelSpec.
 *
 * Working-set geometry: 256x256 padded planes (bigger than the 32KB
 * L1-D) so repeated executions produce realistic cache behaviour.
 */
class KernelBench
{
  public:
    KernelBench(const KernelSpec &spec, std::uint64_t seed = 12345);
    ~KernelBench();

    KernelBench(const KernelBench &) = delete;
    KernelBench &operator=(const KernelBench &) = delete;

    const KernelSpec &spec() const { return spec_; }
    std::uint64_t seed() const;

    /// Run execution @p iter (deterministic per iter) under @p variant.
    void runOnce(h264::KernelCtx &ctx, h264::Variant variant, int iter);

    /// Dynamic instruction mix over @p execs executions.
    trace::InstrMix countInstrs(h264::Variant variant, int execs);

    /**
     * Advance the bench state by @p execs executions of @p variant
     * without tracing. Kernel outputs are bit-exact across variants
     * (verifyVariants / kernel_equivalence_test lock this), so
     * advancing with any variant reproduces the plane state a
     * shared-bench measurement sequence left behind, call for call.
     */
    void advanceState(h264::Variant variant, int execs);

    /**
     * Stream the address-normalized trace of @p execs executions of
     * @p variant into @p sink. This is the capture half of simulate():
     * replaying the recorded stream into a timing model yields exactly
     * the result simulate() returns for the same bench state.
     */
    void recordTrace(h264::Variant variant, int execs,
                     trace::TraceSink &sink);

    /// Simulated execution of @p execs executions on @p cfg (the
    /// backend selected by cfg.model via timing::makeTimingModel).
    timing::SimResult simulate(h264::Variant variant,
                               const timing::CoreConfig &cfg, int execs);

    /**
     * Sweep adapter: a self-contained TraceJob that records @p execs
     * executions of @p variant on a fresh bench with this bench's
     * spec and seed (equivalent to kernelTraceJob in core/sweep.hh).
     */
    TraceJob traceJob(h264::Variant variant, int execs) const;

    /**
     * Functional check: run one execution per variant on identical
     * inputs and compare all outputs against the reference
     * implementation. @return true if every variant is bit-exact.
     */
    bool verifyVariants(int iters = 8);

  private:
    struct Impl;
    KernelSpec spec_;
    std::unique_ptr<Impl> impl_;
};

} // namespace uasim::core

#endif // UASIM_CORE_EXPERIMENT_HH
