/**
 * @file
 * Experiment layer: the public API tying kernels, trace collection and
 * the timing simulator together.
 *
 * A KernelBench reproduces the paper's measurement unit: "one
 * execution" is one kernel invocation on MC-realistic inputs (for the
 * IDCT, one macroblock's worth of transforms, which is what makes the
 * paper's per-execution counts thousands of instructions). Inputs are
 * drawn deterministically: source pointers get the unpredictable
 * (addr % 16) distribution of real motion compensation; destination
 * pointers are partition-aligned like a real reconstruction buffer.
 */

#ifndef UASIM_CORE_EXPERIMENT_HH
#define UASIM_CORE_EXPERIMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "h264/kernels.hh"
#include "timing/pipeline.hh"
#include "trace/mix.hh"
#include "video/frame.hh"
#include "video/rng.hh"

namespace uasim::core {

/// One benchmarked kernel configuration (a Table III / Fig 8 row).
struct KernelSpec {
    h264::KernelId kernel = h264::KernelId::Sad;
    int size = 16;        //!< block edge in pixels
    bool matrix = false;  //!< IDCT 4x4 matrix-product algorithm

    /// Display name, e.g. "luma16x16", "idct4x4_matrix".
    std::string name() const;
};

/// The kernel/size grid of the paper's evaluation (Fig 8 order).
std::vector<KernelSpec> paperKernelGrid();

/// The Table III subset (one block size per kernel family).
std::vector<KernelSpec> tableThreeSpecs();

/**
 * Deterministic workload generator + runner for one KernelSpec.
 *
 * Working-set geometry: 256x256 padded planes (bigger than the 32KB
 * L1-D) so repeated executions produce realistic cache behaviour.
 */
class KernelBench
{
  public:
    KernelBench(const KernelSpec &spec, std::uint64_t seed = 12345);
    ~KernelBench();

    KernelBench(const KernelBench &) = delete;
    KernelBench &operator=(const KernelBench &) = delete;

    const KernelSpec &spec() const { return spec_; }

    /// Run execution @p iter (deterministic per iter) under @p variant.
    void runOnce(h264::KernelCtx &ctx, h264::Variant variant, int iter);

    /// Dynamic instruction mix over @p execs executions.
    trace::InstrMix countInstrs(h264::Variant variant, int execs);

    /// Simulated execution of @p execs executions on @p cfg.
    timing::SimResult simulate(h264::Variant variant,
                               const timing::CoreConfig &cfg, int execs);

    /**
     * Functional check: run one execution per variant on identical
     * inputs and compare all outputs against the reference
     * implementation. @return true if every variant is bit-exact.
     */
    bool verifyVariants(int iters = 8);

  private:
    struct Impl;
    KernelSpec spec_;
    std::unique_ptr<Impl> impl_;
};

} // namespace uasim::core

#endif // UASIM_CORE_EXPERIMENT_HH
