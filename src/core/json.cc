#include "core/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace uasim::json {

namespace {

/// Nesting depth cap for both dump() and parse(): the artifacts are a
/// few levels deep, so anything near this is malformed or hostile.
constexpr int maxDepth = 128;

[[noreturn]] void
typeFail(const char *want, Value::Type got)
{
    static const char *const names[] = {"null",   "bool",  "int",
                                        "uint",   "double", "string",
                                        "array",  "object"};
    throw TypeError(std::string("expected ") + want + ", have " +
                    names[static_cast<int>(got)]);
}

} // namespace

void
Object::set(std::string key, Value v)
{
    for (auto &m : members_) {
        if (m.first == key) {
            m.second = std::move(v);
            return;
        }
    }
    members_.emplace_back(std::move(key), std::move(v));
}

const Value *
Object::find(std::string_view key) const
{
    for (const auto &m : members_) {
        if (m.first == key)
            return &m.second;
    }
    return nullptr;
}

bool
Value::asBool() const
{
    if (type_ != Type::Bool)
        typeFail("bool", type_);
    return bool_;
}

std::int64_t
Value::asInt() const
{
    if (type_ == Type::Int)
        return int_;
    if (type_ == Type::Uint) {
        if (uint_ > std::uint64_t(INT64_MAX))
            throw TypeError("unsigned value exceeds int64 range");
        return std::int64_t(uint_);
    }
    typeFail("integer", type_);
}

std::uint64_t
Value::asUint() const
{
    if (type_ == Type::Uint)
        return uint_;
    if (type_ == Type::Int) {
        if (int_ < 0)
            throw TypeError("negative value for unsigned field");
        return std::uint64_t(int_);
    }
    typeFail("unsigned integer", type_);
}

double
Value::asDouble() const
{
    switch (type_) {
      case Type::Double: return double_;
      case Type::Int:    return double(int_);
      case Type::Uint:   return double(uint_);
      default:           typeFail("number", type_);
    }
}

const std::string &
Value::asString() const
{
    if (type_ != Type::String)
        typeFail("string", type_);
    return string_;
}

const Array &
Value::asArray() const
{
    if (type_ != Type::Array)
        typeFail("array", type_);
    return *array_;
}

const Object &
Value::asObject() const
{
    if (type_ != Type::Object)
        typeFail("object", type_);
    return *object_;
}

void
escapeString(std::string &out, std::string_view s)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                // UTF-8 payload bytes pass through verbatim.
                out += char(c);
            }
        }
    }
    out += '"';
}

std::string
formatDouble(double v)
{
    // JSON has no NaN/Infinity; emitting printf's "nan"/"inf" would
    // produce a document our own parser rejects.
    if (!std::isfinite(v))
        throw std::invalid_argument(
            "json: cannot serialize non-finite double");
    // %.17g is the shortest precision guaranteed to round-trip any
    // IEEE-754 double through a correct strtod().
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

void
Value::dumpTo(std::string &out, int indent, int depth) const
{
    if (depth > maxDepth)
        throw std::runtime_error("json: dump depth limit exceeded");
    auto newline = [&](int d) {
        if (indent <= 0)
            return;
        out += '\n';
        out.append(std::size_t(indent) * std::size_t(d), ' ');
    };
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Int:
        out += std::to_string(int_);
        break;
      case Type::Uint:
        out += std::to_string(uint_);
        break;
      case Type::Double:
        out += formatDouble(double_);
        break;
      case Type::String:
        escapeString(out, string_);
        break;
      case Type::Array:
        if (array_->empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < array_->size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            (*array_)[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      case Type::Object:
        if (object_->empty()) {
            out += "{}";
            break;
        }
        out += '{';
        {
            bool first = true;
            for (const auto &[k, v] : object_->members()) {
                if (!first)
                    out += ',';
                first = false;
                newline(depth + 1);
                escapeString(out, k);
                out += indent > 0 ? ": " : ":";
                v.dumpTo(out, indent, depth + 1);
            }
        }
        newline(depth);
        out += '}';
        break;
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Value
    run()
    {
        skipWs();
        Value v = parseValue(0);
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &msg) const
    {
        throw ParseError("json: " + msg + " at offset " +
                         std::to_string(pos_));
    }

    bool atEnd() const { return pos_ >= text_.size(); }

    char
    peek() const
    {
        if (atEnd())
            fail("unexpected end of input");
        return text_[pos_];
    }

    char get() { char c = peek(); ++pos_; return c; }

    void
    skipWs()
    {
        while (!atEnd()) {
            char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    void
    expect(std::string_view lit)
    {
        if (text_.substr(pos_, lit.size()) != lit)
            fail("invalid literal");
        pos_ += lit.size();
    }

    Value
    parseValue(int depth)
    {
        if (depth > maxDepth)
            fail("nesting depth limit exceeded");
        switch (peek()) {
          case 'n': expect("null");  return Value(nullptr);
          case 't': expect("true");  return Value(true);
          case 'f': expect("false"); return Value(false);
          case '"': return Value(parseString());
          case '[': return parseArray(depth);
          case '{': return parseObject(depth);
          default:  return parseNumber();
        }
    }

    Value
    parseArray(int depth)
    {
        get(); // '['
        Array a;
        skipWs();
        if (peek() == ']') {
            get();
            return Value(std::move(a));
        }
        for (;;) {
            skipWs();
            a.push_back(parseValue(depth + 1));
            skipWs();
            char c = get();
            if (c == ']')
                return Value(std::move(a));
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    Value
    parseObject(int depth)
    {
        get(); // '{'
        Object o;
        skipWs();
        if (peek() == '}') {
            get();
            return Value(std::move(o));
        }
        for (;;) {
            skipWs();
            if (peek() != '"')
                fail("expected string key in object");
            std::string key = parseString();
            // Object::set replaces in place, so a duplicate would
            // silently collapse to the last value — guess-free
            // strictness says reject it instead.
            if (o.contains(key))
                fail("duplicate object key \"" + key + "\"");
            skipWs();
            if (get() != ':')
                fail("expected ':' after object key");
            skipWs();
            o.set(std::move(key), parseValue(depth + 1));
            skipWs();
            char c = get();
            if (c == '}')
                return Value(std::move(o));
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    unsigned
    parseHex4()
    {
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
            char c = get();
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= unsigned(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= unsigned(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= unsigned(c - 'A' + 10);
            else
                fail("invalid \\u escape digit");
        }
        return v;
    }

    void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += char(cp);
        } else if (cp < 0x800) {
            out += char(0xc0 | (cp >> 6));
            out += char(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += char(0xe0 | (cp >> 12));
            out += char(0x80 | ((cp >> 6) & 0x3f));
            out += char(0x80 | (cp & 0x3f));
        } else {
            out += char(0xf0 | (cp >> 18));
            out += char(0x80 | ((cp >> 12) & 0x3f));
            out += char(0x80 | ((cp >> 6) & 0x3f));
            out += char(0x80 | (cp & 0x3f));
        }
    }

    std::string
    parseString()
    {
        get(); // '"'
        std::string out;
        for (;;) {
            char c = get();
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            char e = get();
            switch (e) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                unsigned cp = parseHex4();
                if (cp >= 0xd800 && cp <= 0xdbff) {
                    // High surrogate: a low surrogate must follow.
                    if (get() != '\\' || get() != 'u')
                        fail("unpaired high surrogate");
                    unsigned lo = parseHex4();
                    if (lo < 0xdc00 || lo > 0xdfff)
                        fail("invalid low surrogate");
                    cp = 0x10000 + ((cp - 0xd800) << 10) +
                         (lo - 0xdc00);
                } else if (cp >= 0xdc00 && cp <= 0xdfff) {
                    fail("unpaired low surrogate");
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                fail("invalid escape character");
            }
        }
    }

    Value
    parseNumber()
    {
        const std::size_t start = pos_;
        bool negative = false;
        if (peek() == '-') {
            negative = true;
            get();
        }
        if (atEnd() || !isDigit(peek()))
            fail("invalid number");
        // Leading zero may not be followed by another digit.
        if (get() == '0' && !atEnd() && isDigit(text_[pos_]))
            fail("leading zero in number");
        while (!atEnd() && isDigit(text_[pos_]))
            ++pos_;
        bool isDouble = false;
        if (!atEnd() && text_[pos_] == '.') {
            isDouble = true;
            ++pos_;
            if (atEnd() || !isDigit(text_[pos_]))
                fail("expected digit after decimal point");
            while (!atEnd() && isDigit(text_[pos_]))
                ++pos_;
        }
        if (!atEnd() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            isDouble = true;
            ++pos_;
            if (!atEnd() && (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (atEnd() || !isDigit(text_[pos_]))
                fail("expected digit in exponent");
            while (!atEnd() && isDigit(text_[pos_]))
                ++pos_;
        }
        const std::string token(text_.substr(start, pos_ - start));
        if (!isDouble) {
            errno = 0;
            char *end = nullptr;
            if (!negative) {
                std::uint64_t u = std::strtoull(token.c_str(), &end, 10);
                if (errno == 0 && end && *end == '\0')
                    return Value(u);
            } else if (token == "-0") {
                // Keep the sign bit: "-0" is what %.17g writes for
                // negative zero, and strtoll would flatten it.
                return Value(-0.0);
            } else {
                std::int64_t i = std::strtoll(token.c_str(), &end, 10);
                if (errno == 0 && end && *end == '\0')
                    return Value(i);
            }
            // Integer wider than 64 bits: fall through to double.
        }
        errno = 0;
        char *end = nullptr;
        double d = std::strtod(token.c_str(), &end);
        if (!end || *end != '\0')
            fail("invalid number");
        // Overflow to infinity is rejected (no JSON value maps to
        // it); underflow to a denormal/zero is a valid nearest value.
        if (!std::isfinite(d))
            fail("number out of double range");
        return Value(d);
    }

    static bool isDigit(char c) { return c >= '0' && c <= '9'; }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

Value
parse(std::string_view text)
{
    return Parser(text).run();
}

} // namespace uasim::json
