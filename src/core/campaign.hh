/**
 * @file
 * Declarative sweep campaigns: the data front door to the sweep
 * engine (ROADMAP item 2).
 *
 * A campaign file describes a whole figure-style experiment grid as
 * data instead of a hardcoded bench loop: an INI-style sectioned
 * format (the esesc simu.conf / graphite carbon_sim.cfg family) with
 * axis value lists and `$(name)`-style derived integer expressions
 * (`mw = $(iw)/4`). Parsing expands it deterministically into the
 * same record-once/replay-many grid the benches build by hand:
 *
 *     [campaign]              identity + workload scale
 *     name = fig9_ci
 *     execs = 8
 *     seed = 12345
 *
 *     [values]                derived parameters ($(ref), + - * /)
 *     iw = 4
 *     mw = $(iw)/4
 *
 *     [workload]              trace axis: kernels x variants
 *     kernels = luma16x16, sad16x16      (or "paper" for the grid)
 *     variants = unaligned
 *
 *     [core]                  base preset + fixed field overrides
 *     base = 4w
 *     lat.unalignedStoreExtra = 2*$(mw)
 *
 *     [axes]                  swept CoreConfig fields (cross product)
 *     model = pipeline, ooo
 *     lat.unalignedLoadExtra = 0, 1, 2
 *
 * Every expanded configuration is checked through
 * timing::CoreConfig::validate() and the timing-model registry at
 * parse time, so a malformed campaign fails before any simulation.
 *
 * Identity is content-addressed: canonical() renders the campaign in
 * a normalized form (fixed section order, expressions resolved, the
 * [values] scaffolding dropped - comments and derivation spelling do
 * not change identity) and contentHash() is the FNV-1a of those
 * bytes. The hash names the campaign (id()) and addresses its chunks.
 *
 * Execution model: the grid partitions into *chunks* - one chunk per
 * trace, covering that trace's full config row - and chunks partition
 * round-robin across shards (chunk j belongs to shard j % N), so any
 * shard's work is a pure function of (campaign, i, N). Each executed
 * chunk publishes a content-hash-addressed chunk artifact; a
 * re-invocation skips published chunks, which is what makes an
 * interrupted campaign resume instead of restart. Shard artifacts
 * merge (mergeShardResults / `uasim-report merge`) into one canonical
 * BENCH_<name>.json whose simulated fields are bit-identical to an
 * unsharded single-process run - the load-bearing property, enforced
 * by tests/campaign_test.cc and the campaign_merge_parity ctest
 * entry.
 */

#ifndef UASIM_CORE_CAMPAIGN_HH
#define UASIM_CORE_CAMPAIGN_HH

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.hh"
#include "core/result.hh"
#include "core/sweep.hh"
#include "h264/kernels.hh"
#include "timing/config.hh"

namespace uasim::core {

/// Malformed campaign file, invalid expansion, or a merge rejection.
class CampaignError : public std::runtime_error
{
  public:
    explicit CampaignError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/**
 * Evaluate one integer campaign expression: decimal literals,
 * `$(name)` references into @p values, `+ - * /` with the usual
 * precedence, parentheses, and unary minus. Division truncates
 * toward zero like C.
 * @throws CampaignError on syntax errors, undefined references, or
 *         division by zero.
 */
long long evalCampaignExpr(std::string_view expr,
                           const std::map<std::string, long long> &values);

/// The CoreConfig fields a campaign [core] override or [axes] entry
/// may set, by dotted name ("fetchWidth", "lat.unalignedLoadExtra",
/// "mem.memBWBytesPerCycle", ...). Sorted for stable docs/tests.
const std::vector<std::string> &campaignCoreFields();

/// Set @p field on @p cfg. @return false for an unknown field name.
bool setCampaignCoreField(timing::CoreConfig &cfg,
                          const std::string &field, long long value);

/// One swept axis: a CoreConfig field (integer values) or the special
/// "model" axis (timing-backend names).
struct CampaignAxis {
    std::string field;
    std::vector<long long> values;   //!< numeric axes (empty for model)
    std::vector<std::string> names;  //!< "model" axis backend names
};

/// One parsed, validated, expanded campaign.
class Campaign
{
  public:
    /// Parse campaign text. @throws CampaignError with a line-number
    /// diagnostic on any malformed input or invalid expansion.
    static Campaign parse(std::string_view text);

    /// Read and parse one campaign file. @throws CampaignError.
    static Campaign load(const std::string &path);

    const std::string &name() const { return name_; }
    int execs() const { return execs_; }
    std::uint64_t seed() const { return seed_; }

    /// The kernel/variant trace axis, in declaration order.
    const std::vector<KernelSpec> &kernels() const { return kernels_; }
    const std::vector<h264::Variant> &variants() const
    {
        return variants_;
    }
    const std::vector<CampaignAxis> &axes() const { return axes_; }

    /**
     * The normalized campaign text: fixed section order, expressions
     * resolved, comments and the [values] section dropped. Two files
     * that expand to the same grid canonicalize to the same bytes;
     * parse(canonical()) round-trips.
     */
    std::string canonical() const;

    /// FNV-1a 64 over canonical() - the campaign's content identity.
    std::uint64_t contentHash() const;

    /// contentHash() as 16 lowercase hex digits.
    std::string contentHashHex() const;

    /// "<name>-<hash16>": the content-addressed campaign id.
    std::string id() const;

    /// @name Expanded grid
    /// @{
    /// Chunks == traces: one per kernel x variant, declaration order.
    int chunkCount() const
    {
        return int(kernels_.size() * variants_.size());
    }
    /// Configurations: cross product of the axes over the base core.
    int configCount() const { return int(configs_.size()); }
    const std::vector<ConfigJob> &configs() const { return configs_; }

    /// Trace-cache key of chunk @p chunk (the kernelTraceJob key).
    std::string chunkTraceKey(int chunk) const;

    /// Content hash addressing chunk @p chunk: a function of the
    /// campaign hash, the chunk index, and its trace key, so any
    /// campaign edit retires every published chunk artifact.
    std::uint64_t chunkHash(int chunk) const;

    /// "chunk-<hash16>.json": the published chunk artifact name.
    std::string chunkFileName(int chunk) const;

    /**
     * The chunk indices of shard @p shard of @p shardCount, ascending
     * (chunk j belongs to shard j % shardCount). Together the shards
     * cover every chunk exactly once (tests/campaign_test.cc locks
     * completeness and disjointness).
     * @throws CampaignError on an invalid shard spec.
     */
    static std::vector<int> shardChunks(int chunkCount, int shard,
                                        int shardCount);

    /**
     * SweepPlan over @p chunks (ascending chunk indices): every
     * listed trace crossed with the full config row, cells
     * chunk-major in the given order - the exact cell layout the
     * whole-grid plan has for those chunks.
     */
    SweepPlan buildPlan(const std::vector<int> &chunks) const;
    /// @}

  private:
    Campaign() = default;

    std::string name_;
    int execs_ = 0;
    std::uint64_t seed_ = 12345;
    std::string base_ = "4w";
    std::string fixedModel_;  //!< [core] model override; empty = default
    /// [core] field overrides in declaration order (resolved values).
    std::vector<std::pair<std::string, long long>> overrides_;
    std::vector<KernelSpec> kernels_;
    std::vector<h264::Variant> variants_;
    std::vector<CampaignAxis> axes_;
    std::vector<ConfigJob> configs_;  //!< expanded at parse time
};

/// How one invocation of the campaign driver executes.
struct CampaignRunOptions {
    /// When false, the run is the unsharded single-process form and
    /// writes the canonical BENCH_<name>.json directly; when true it
    /// runs shard/shardCount and writes
    /// BENCH_<name>.shard<i>of<N>.json for `uasim-report merge`.
    bool sharded = false;
    int shard = 0;
    int shardCount = 1;
    std::string jsonDir;  //!< artifact directory (required)
    int threads = 0;      //!< SweepRunner worker count (0 = hardware)
    std::string traceCache;  //!< persistent trace store dir; empty = none
    ReplayMode replayMode = ReplayMode::Batched;
};

/// Per-chunk outcome of one driver invocation.
struct CampaignChunkStatus {
    int chunk = 0;
    std::string file;     //!< chunk artifact file name
    bool skipped = false; //!< served from a published chunk artifact
};

struct CampaignRunOutcome {
    BenchResult artifact;      //!< the shard (or final) artifact
    std::string artifactPath;  //!< where it was written
    std::string chunkDir;      //!< the chunk artifact directory
    std::vector<CampaignChunkStatus> chunks;  //!< ascending chunk order
    int executed = 0;
    int skipped = 0;
};

/**
 * Execute one shard of @p campaign: probe the chunk directory under
 * @p opt.jsonDir for published chunk artifacts (skipping every chunk
 * whose content-hash-named artifact validates), run the remaining
 * chunks through one SweepRunner pass, publish their chunk artifacts,
 * and write the shard (or, unsharded, the canonical) BENCH artifact.
 * Simulated fields of the assembled artifact are independent of which
 * chunks were resumed vs executed.
 * @throws CampaignError / std::runtime_error on unusable options or
 *         I/O failure.
 */
CampaignRunOutcome runCampaignShard(const Campaign &campaign,
                                    const CampaignRunOptions &opt);

/**
 * Combine the partial shard artifacts of one campaign into the
 * canonical merged BenchResult - bit-identical in every simulated
 * field to the unsharded single-process run. Rejects (CampaignError)
 * duplicate/missing shards, mismatched campaign identity or grid
 * shape, wrong per-shard cell counts, and inputs that are not shard
 * artifacts.
 */
BenchResult mergeShardResults(const std::vector<BenchResult> &shards);

} // namespace uasim::core

#endif // UASIM_CORE_CAMPAIGN_HH
