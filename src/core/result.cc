#include "core/result.hh"

#include <atomic>
#include <bit>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>

#include "trace/instr.hh"

namespace uasim::core {

namespace {

/// Keys of the artifact's informational (never gating) stats block,
/// in serialization order.
constexpr const char *informationalKey = "informational";

json::Value
mixToJson(const trace::InstrMix &mix)
{
    json::Object o;
    for (int i = 0; i < trace::numInstrClasses; ++i) {
        auto cls = static_cast<trace::InstrClass>(i);
        o.set(std::string(trace::instrClassName(cls)), mix.count(cls));
    }
    return json::Value(std::move(o));
}

const json::Value &
require(const json::Object &o, const char *key, const char *where)
{
    const json::Value *v = o.find(key);
    if (!v)
        throw SchemaError(std::string(where) + ": missing field \"" +
                          key + "\"");
    return *v;
}

std::uint64_t
requireUint(const json::Object &o, const char *key, const char *where)
{
    try {
        return require(o, key, where).asUint();
    } catch (const json::TypeError &e) {
        throw SchemaError(std::string(where) + "." + key + ": " +
                          e.what());
    }
}

double
requireDouble(const json::Object &o, const char *key, const char *where)
{
    try {
        return require(o, key, where).asDouble();
    } catch (const json::TypeError &e) {
        throw SchemaError(std::string(where) + "." + key + ": " +
                          e.what());
    }
}

std::string
requireString(const json::Object &o, const char *key, const char *where)
{
    try {
        return require(o, key, where).asString();
    } catch (const json::TypeError &e) {
        throw SchemaError(std::string(where) + "." + key + ": " +
                          e.what());
    }
}

trace::InstrMix
mixFromJson(const json::Value &v, const char *where)
{
    trace::InstrMix mix;
    const json::Object &o = v.asObject();
    for (int i = 0; i < trace::numInstrClasses; ++i) {
        auto cls = static_cast<trace::InstrClass>(i);
        mix.add(cls, requireUint(
                         o, std::string(trace::instrClassName(cls)).c_str(),
                         where));
    }
    if (o.size() != std::size_t(trace::numInstrClasses))
        throw SchemaError(std::string(where) +
                          ": unknown instruction class in mix");
    return mix;
}

constexpr SimResultField simFields[] = {
    {"cycles", &timing::SimResult::cycles},
    {"instrs", &timing::SimResult::instrs},
    {"branches", &timing::SimResult::branches},
    {"mispredicts", &timing::SimResult::mispredicts},
    {"l1dAccesses", &timing::SimResult::l1dAccesses},
    {"l1dMisses", &timing::SimResult::l1dMisses},
    {"l2Misses", &timing::SimResult::l2Misses},
    {"l1iMisses", &timing::SimResult::l1iMisses},
    {"storeForwards", &timing::SimResult::storeForwards},
    {"unalignedVecOps", &timing::SimResult::unalignedVecOps},
    {"lineCrossings", &timing::SimResult::lineCrossings},
    {"fetchStallCycles", &timing::SimResult::fetchStallCycles},
};

json::Value
simToJson(const timing::SimResult &s)
{
    json::Object o;
    o.set("core", s.core);
    for (const SimResultField &f : simResultFields())
        o.set(f.name, s.*f.member);
    return json::Value(std::move(o));
}

timing::SimResult
simFromJson(const json::Value &v, const char *where)
{
    const json::Object &o = v.asObject();
    timing::SimResult s;
    s.core = requireString(o, "core", where);
    for (const SimResultField &f : simResultFields())
        s.*f.member = requireUint(o, f.name, where);
    return s;
}

/// Bit-exact double comparison (the gating rule for metric values).
bool
sameBits(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a) ==
           std::bit_cast<std::uint64_t>(b);
}

/// Diff message collector with a cap so a wholesale change stays
/// readable.
class Lines
{
  public:
    explicit Lines(std::vector<std::string> &out) : out_(out) {}

    void
    add(std::string line)
    {
        ++total_;
        if (out_.size() < cap_)
            out_.push_back(std::move(line));
        else if (out_.size() == cap_)
            out_.push_back("... (further differences elided)");
    }

    bool any() const { return total_ > 0; }

  private:
    static constexpr std::size_t cap_ = 40;
    std::vector<std::string> &out_;
    std::size_t total_ = 0;
};

template <typename T>
void
checkEq(Lines &lines, const std::string &what, const T &base,
        const T &cur)
{
    if (base != cur) {
        std::ostringstream os;
        os << what << ": baseline " << base << " != current " << cur;
        lines.add(os.str());
    }
}

} // namespace

std::span<const SimResultField>
simResultFields()
{
    return simFields;
}

void
BenchResult::addParam(const std::string &name, json::Value v)
{
    params.emplace_back(name, std::move(v));
}

void
BenchResult::addMetric(const std::string &name, double v)
{
    metrics.emplace_back(name, v);
}

void
BenchResult::addCells(const std::vector<SweepCellResult> &results)
{
    for (const auto &r : results) {
        ResultCell c;
        c.trace = r.traceKey;
        c.config = r.configLabel;
        c.traceInstrs = r.traceInstrs;
        c.sim = r.sim;
        c.mix = r.mix;
        cells.push_back(std::move(c));
    }
}

void
BenchResult::setStats(const SweepStats &s)
{
    stats = s;
    hasStats = true;
    hasInformational = true;
}

json::Value
BenchResult::toJson(bool includeInformational) const
{
    json::Object root;
    root.set("schema", schemaName);
    root.set("schemaVersion", schemaVersion);
    root.set("bench", bench);

    // Duplicate names would silently collapse to one JSON key in
    // Object::set, losing a data point — a bench bug, so fail loudly.
    json::Object p;
    for (const auto &[k, v] : params) {
        if (p.contains(k))
            throw std::logic_error("BenchResult: duplicate param \"" +
                                   k + "\"");
        p.set(k, v);
    }
    root.set("params", std::move(p));

    json::Object m;
    for (const auto &[k, v] : metrics) {
        if (m.contains(k))
            throw std::logic_error("BenchResult: duplicate metric \"" +
                                   k + "\"");
        m.set(k, json::Value(v));
    }
    root.set("metrics", std::move(m));

    json::Array cs;
    cs.reserve(cells.size());
    for (const auto &c : cells) {
        json::Object o;
        o.set("trace", c.trace);
        o.set("config", c.config);
        o.set("traceInstrs", c.traceInstrs);
        o.set("sim", simToJson(c.sim));
        o.set("mix", mixToJson(c.mix));
        cs.push_back(json::Value(std::move(o)));
    }
    root.set("cells", std::move(cs));

    if (hasStats) {
        json::Object sweep;
        json::Object simulated;
        simulated.set("cellsRun", stats.cellsRun);
        simulated.set("instrsReplayed", stats.instrsReplayed);
        sweep.set("simulated", std::move(simulated));
        if (includeInformational && hasInformational) {
            json::Object info;
            info.set("threads", stats.threads);
            info.set("tracesRecorded", stats.tracesRecorded);
            info.set("tracesLoaded", stats.tracesLoaded);
            info.set("tracesStored", stats.tracesStored);
            info.set("instrsRecorded", stats.instrsRecorded);
            info.set("instrsLoaded", stats.instrsLoaded);
            info.set("replayPasses", stats.replayPasses);
            info.set("decodeBytes", stats.decodeBytes);
            info.set("bytesMapped", stats.bytesMapped);
            info.set("recordSeconds", stats.recordSeconds);
            info.set("replaySeconds", stats.replaySeconds);
            info.set("streamSeconds", stats.streamSeconds);
            info.set("loadSeconds", stats.loadSeconds);
            info.set("decodeSeconds", stats.decodeSeconds);
            info.set("wallSeconds", stats.wallSeconds);
            sweep.set(informationalKey, std::move(info));
        }
        root.set("sweep", std::move(sweep));
    }
    return json::Value(std::move(root));
}

BenchResult
BenchResult::fromJson(const json::Value &v)
{
    BenchResult r;
    try {
        const json::Object &root = v.asObject();
        if (requireString(root, "schema", "artifact") != schemaName)
            throw SchemaError("artifact: unknown schema name");
        const auto version =
            requireUint(root, "schemaVersion", "artifact");
        if (version != std::uint64_t(schemaVersion))
            throw SchemaError(
                "artifact: unsupported schemaVersion " +
                std::to_string(version) + " (this build understands " +
                std::to_string(schemaVersion) + ")");
        r.bench = requireString(root, "bench", "artifact");

        for (const auto &[k, pv] :
             require(root, "params", "artifact").asObject().members())
            r.params.emplace_back(k, pv);

        for (const auto &[k, mv] :
             require(root, "metrics", "artifact").asObject().members()) {
            if (!mv.isNumber())
                throw SchemaError("artifact.metrics." + k +
                                  ": not a number");
            r.metrics.emplace_back(k, mv.asDouble());
        }

        for (const json::Value &cv :
             require(root, "cells", "artifact").asArray()) {
            const json::Object &co = cv.asObject();
            ResultCell c;
            c.trace = requireString(co, "trace", "cell");
            c.config = requireString(co, "config", "cell");
            c.traceInstrs = requireUint(co, "traceInstrs", "cell");
            c.sim = simFromJson(require(co, "sim", "cell"), "cell.sim");
            c.mix = mixFromJson(require(co, "mix", "cell"), "cell.mix");
            r.cells.push_back(std::move(c));
        }

        if (const json::Value *sweep = root.find("sweep")) {
            r.hasStats = true;
            const json::Object &so = sweep->asObject();
            const json::Object &sim =
                require(so, "simulated", "sweep").asObject();
            r.stats.cellsRun = requireUint(sim, "cellsRun", "simulated");
            r.stats.instrsReplayed =
                requireUint(sim, "instrsReplayed", "simulated");
            if (const json::Value *info = so.find(informationalKey)) {
                r.hasInformational = true;
                const json::Object &io = info->asObject();
                r.stats.threads =
                    int(requireUint(io, "threads", "informational"));
                r.stats.tracesRecorded =
                    requireUint(io, "tracesRecorded", "informational");
                r.stats.tracesLoaded =
                    requireUint(io, "tracesLoaded", "informational");
                r.stats.tracesStored =
                    requireUint(io, "tracesStored", "informational");
                r.stats.instrsRecorded =
                    requireUint(io, "instrsRecorded", "informational");
                r.stats.instrsLoaded =
                    requireUint(io, "instrsLoaded", "informational");
                // Added after schemaVersion 1 artifacts already
                // existed; optional so old informational blocks
                // (informational additions don't bump the schema)
                // still parse.
                if (const json::Value *rp = io.find("replayPasses"))
                    r.stats.replayPasses = rp->asUint();
                if (const json::Value *db = io.find("decodeBytes"))
                    r.stats.decodeBytes = db->asUint();
                if (const json::Value *bm = io.find("bytesMapped"))
                    r.stats.bytesMapped = bm->asUint();
                if (const json::Value *ds = io.find("decodeSeconds"))
                    r.stats.decodeSeconds = ds->asDouble();
                r.stats.recordSeconds =
                    requireDouble(io, "recordSeconds", "informational");
                r.stats.replaySeconds =
                    requireDouble(io, "replaySeconds", "informational");
                r.stats.streamSeconds =
                    requireDouble(io, "streamSeconds", "informational");
                r.stats.loadSeconds =
                    requireDouble(io, "loadSeconds", "informational");
                r.stats.wallSeconds =
                    requireDouble(io, "wallSeconds", "informational");
            }
        }
    } catch (const json::TypeError &e) {
        throw SchemaError(std::string("artifact: ") + e.what());
    }
    return r;
}

BenchResult
BenchResult::parse(std::string_view text)
{
    json::Value v;
    try {
        v = json::parse(text);
    } catch (const json::ParseError &e) {
        throw SchemaError(e.what());
    }
    return fromJson(v);
}

BenchResult
loadResultFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SchemaError("cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad())
        throw SchemaError("cannot read " + path);
    try {
        return BenchResult::parse(buf.str());
    } catch (const SchemaError &e) {
        throw SchemaError(path + ": " + e.what());
    }
}

void
saveResultFile(const BenchResult &result, const std::string &path,
               bool includeInformational)
{
    const std::string text = result.serialize(includeInformational);
    // Per-process/per-call tmp name (same scheme as the trace store):
    // concurrent writers of the same artifact must not interleave into
    // one tmp file, or the rename would publish corrupt bytes.
    static const std::uint64_t processTag = [] {
        std::random_device rd;
        return (std::uint64_t{rd()} << 32) ^ rd();
    }();
    static std::atomic<std::uint64_t> counter{0};
    char suffix[48];
    std::snprintf(suffix, sizeof(suffix), ".tmp-%016llx-%llu",
                  static_cast<unsigned long long>(processTag),
                  static_cast<unsigned long long>(
                      counter.fetch_add(1, std::memory_order_relaxed)));
    const std::string tmp = path + suffix;
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw std::runtime_error("cannot open " + tmp +
                                     " for writing");
        out.write(text.data(), std::streamsize(text.size()));
        out.flush();
        if (!out) {
            out.close();
            std::remove(tmp.c_str());
            throw std::runtime_error("cannot write " + tmp);
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error("cannot rename " + tmp + " to " + path);
    }
}

DiffReport
diffResults(const BenchResult &base, const BenchResult &cur)
{
    DiffReport report;
    Lines gate(report.regressions);

    checkEq(gate, "bench", base.bench, cur.bench);

    // Parameters: a changed workload makes the comparison
    // meaningless, which is itself a gating difference.
    checkEq(gate, "param count", base.params.size(),
            cur.params.size());
    for (std::size_t i = 0;
         i < std::min(base.params.size(), cur.params.size()); ++i) {
        const auto &[bk, bv] = base.params[i];
        const auto &[ck, cv] = cur.params[i];
        checkEq(gate, "param name[" + std::to_string(i) + "]", bk, ck);
        if (bk == ck)
            checkEq(gate, "param " + bk, bv.dump(), cv.dump());
    }

    checkEq(gate, "metric count", base.metrics.size(),
            cur.metrics.size());
    for (std::size_t i = 0;
         i < std::min(base.metrics.size(), cur.metrics.size()); ++i) {
        const auto &[bk, bv] = base.metrics[i];
        const auto &[ck, cv] = cur.metrics[i];
        checkEq(gate, "metric name[" + std::to_string(i) + "]", bk, ck);
        if (bk == ck && !sameBits(bv, cv))
            gate.add("metric " + bk + ": baseline " +
                     json::formatDouble(bv) + " != current " +
                     json::formatDouble(cv));
    }

    checkEq(gate, "cell count", base.cells.size(), cur.cells.size());
    for (std::size_t i = 0;
         i < std::min(base.cells.size(), cur.cells.size()); ++i) {
        const ResultCell &b = base.cells[i];
        const ResultCell &c = cur.cells[i];
        const std::string id = "cell[" + std::to_string(i) + " " +
                               b.trace +
                               (b.config.empty() ? "" : "@" + b.config) +
                               "]";
        checkEq(gate, id + ".trace", b.trace, c.trace);
        checkEq(gate, id + ".config", b.config, c.config);
        checkEq(gate, id + ".traceInstrs", b.traceInstrs,
                c.traceInstrs);
        checkEq(gate, id + ".sim.core", b.sim.core, c.sim.core);
        for (const SimResultField &f : simResultFields())
            checkEq(gate, id + ".sim." + f.name, b.sim.*f.member,
                    c.sim.*f.member);
        for (int k = 0; k < trace::numInstrClasses; ++k) {
            auto cls = static_cast<trace::InstrClass>(k);
            checkEq(gate,
                    id + ".mix." +
                        std::string(trace::instrClassName(cls)),
                    b.mix.count(cls), c.mix.count(cls));
        }
    }

    checkEq(gate, "has sweep stats", base.hasStats, cur.hasStats);
    if (base.hasStats && cur.hasStats) {
        checkEq(gate, "sweep.cellsRun", base.stats.cellsRun,
                cur.stats.cellsRun);
        checkEq(gate, "sweep.instrsReplayed",
                base.stats.instrsReplayed, cur.stats.instrsReplayed);

        // Informational: reported, never gating.
        if (base.hasInformational && cur.hasInformational) {
            std::ostringstream os;
            os << "wall time (informational): baseline "
               << json::formatDouble(base.stats.wallSeconds)
               << "s (threads " << base.stats.threads
               << ", recorded " << base.stats.tracesRecorded
               << ", loaded " << base.stats.tracesLoaded
               << ") -> current "
               << json::formatDouble(cur.stats.wallSeconds)
               << "s (threads " << cur.stats.threads << ", recorded "
               << cur.stats.tracesRecorded << ", loaded "
               << cur.stats.tracesLoaded << ", replay passes "
               << cur.stats.replayPasses << ", decoded "
               << cur.stats.decodeBytes << " B ("
               << cur.stats.bytesMapped << " B mmap'd)"
               << ")";
            report.notes.push_back(os.str());
        }
    }

    report.status =
        gate.any() ? DiffStatus::Regression : DiffStatus::Match;
    return report;
}

} // namespace uasim::core
