#include "core/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "timing/batched_pipeline.hh"
#include "timing/pipeline.hh"
#include "trace/trace_buffer.hh"

namespace uasim::core {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Cells of one trace, prepartitioned (the runner's work unit).
struct TraceGroup {
    int trace = 0;
    std::vector<int> cellIndices;
};

} // namespace

int
SweepPlan::addTrace(TraceJob job)
{
    auto [it, inserted] =
        traceIndex_.try_emplace(job.key, int(traces_.size()));
    if (inserted)
        traces_.push_back(std::move(job));
    return it->second;
}

int
SweepPlan::addConfig(std::string label, timing::CoreConfig cfg)
{
    configs_.push_back({std::move(label), std::move(cfg)});
    return int(configs_.size()) - 1;
}

void
SweepPlan::addCell(int trace, int config)
{
    cells_.push_back({trace, config});
}

bool
parseReplayMode(const std::string &name, ReplayMode &mode)
{
    if (name == "batched") {
        mode = ReplayMode::Batched;
        return true;
    }
    if (name == "percell") {
        mode = ReplayMode::PerCell;
        return true;
    }
    return false;
}

const char *
replayModeName(ReplayMode mode)
{
    return mode == ReplayMode::Batched ? "batched" : "percell";
}

void
SweepPlan::crossProduct()
{
    for (int t = 0; t < int(traces_.size()); ++t) {
        for (int c = 0; c < int(configs_.size()); ++c)
            addCell(t, c);
    }
}

SweepRunner::SweepRunner(int threads)
{
    if (threads <= 0) {
        threads = int(std::thread::hardware_concurrency());
        if (threads <= 0)
            threads = 1;
    }
    threads_ = threads;
}

void
SweepRunner::attachStore(const std::string &dir)
{
    store_ = std::make_unique<trace::TraceStore>(dir);
}

std::vector<SweepCellResult>
SweepRunner::run(const SweepPlan &plan)
{
    const auto wallStart = Clock::now();
    stats_ = SweepStats{};

    // Partition cells into per-trace groups, preserving plan order
    // within each group.
    std::vector<TraceGroup> groups(plan.traces().size());
    for (int t = 0; t < int(groups.size()); ++t)
        groups[t].trace = t;
    for (int i = 0; i < int(plan.cells().size()); ++i)
        groups[plan.cells()[i].trace].cellIndices.push_back(i);
    std::erase_if(groups, [](const TraceGroup &g) {
        return g.cellIndices.empty();
    });

    std::vector<SweepCellResult> results(plan.cells().size());

    struct WorkerTotals {
        std::uint64_t recorded = 0, loaded = 0, replayed = 0,
                      traces = 0, tracesLoaded = 0, tracesStored = 0,
                      cells = 0, replayPasses = 0;
        double recordSec = 0, replaySec = 0, streamSec = 0,
               loadSec = 0;
    };

    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> abortRun{false};
    std::mutex totalsMutex;
    WorkerTotals totals;
    std::exception_ptr firstError;
    std::mutex errorMutex;

    auto worker = [&]() {
        WorkerTotals local;
        try {
            for (;;) {
                // Stop the whole pool at the first failure instead of
                // draining (and then discarding) the remaining groups.
                if (abortRun.load(std::memory_order_relaxed))
                    break;
                std::size_t gi =
                    cursor.fetch_add(1, std::memory_order_relaxed);
                if (gi >= groups.size())
                    break;
                const TraceGroup &group = groups[gi];
                const TraceJob &job = plan.traces()[group.trace];

                int timingCells = 0;
                for (int ci : group.cellIndices) {
                    if (plan.cells()[ci].config != SweepCell::mixOnly)
                        ++timingCells;
                }

                trace::TraceStore *store =
                    (store_ && job.cacheable) ? store_.get() : nullptr;

                // The single timing cell of a fused group.
                int simCi = -1;
                if (timingCells == 1) {
                    for (int ci : group.cellIndices) {
                        if (plan.cells()[ci].config !=
                            SweepCell::mixOnly) {
                            simCi = ci;
                            break;
                        }
                    }
                }

                // Replay a captured record stream into every timing
                // cell of the group: one BatchedPipelineSim pass over
                // the buffer in Batched mode, or one PipelineSim walk
                // per cell in the PerCell reference mode. The two fill
                // identical results (tests/batched_replay_test.cc);
                // only pass count and wall time differ.
                auto replayCells = [&](const trace::TraceBuffer &buf) {
                    if (replayMode_ == ReplayMode::Batched) {
                        std::vector<int> cis;
                        std::vector<timing::CoreConfig> cfgs;
                        for (int ci : group.cellIndices) {
                            const SweepCell &cell = plan.cells()[ci];
                            if (cell.config == SweepCell::mixOnly)
                                continue;
                            cis.push_back(ci);
                            cfgs.push_back(
                                plan.configs()[cell.config].cfg);
                        }
                        timing::BatchedPipelineSim batch(cfgs);
                        buf.replayInto(batch);
                        auto sims = batch.finalizeAll();
                        for (std::size_t i = 0; i < cis.size(); ++i)
                            results[cis[i]].sim = std::move(sims[i]);
                        local.replayed += buf.size() * cis.size();
                        ++local.replayPasses;
                    } else {
                        for (int ci : group.cellIndices) {
                            const SweepCell &cell = plan.cells()[ci];
                            if (cell.config == SweepCell::mixOnly)
                                continue;
                            timing::PipelineSim sim(
                                plan.configs()[cell.config].cfg);
                            buf.replayInto(sim);
                            results[ci].sim = sim.finalize();
                            local.replayed += buf.size();
                            ++local.replayPasses;
                        }
                    }
                };

                trace::InstrMix mix;
                bool fromStore = false;

                // Store probe, shaped per group kind so a hit never
                // materializes state the cells don't need: a mix-only
                // group reads just the header's validated mix section
                // (no payload decode at all), a single timing cell
                // streams the decoded records straight into its
                // simulator, and a multi-cell group buffers once and
                // replays per cell. Replay equivalence keeps every
                // hit bit-identical to recording in-process.
                if (store && timingCells == 0) {
                    auto t0 = Clock::now();
                    if (auto sum = store->loadSummary(job.key)) {
                        mix = sum->mix;
                        local.loadSec += secondsSince(t0);
                        local.loaded += sum->count;
                        ++local.tracesLoaded;
                        fromStore = true;
                    }
                } else if (store && timingCells == 1) {
                    auto t0 = Clock::now();
                    timing::PipelineSim sim(
                        plan.configs()[plan.cells()[simCi].config]
                            .cfg);
                    trace::CountingSink counter;
                    trace::TeeSink tee(counter, sim);
                    if (store->load(job.key, tee)) {
                        results[simCi].sim = sim.finalize();
                        mix = counter.mix();
                        local.replaySec += secondsSince(t0);
                        local.loaded += mix.total();
                        local.replayed += mix.total();
                        ++local.replayPasses;
                        ++local.tracesLoaded;
                        fromStore = true;
                    }
                    // On a miss (or a corrupt entry detected mid-
                    // drain) the partially fed sim and counter fall
                    // out of scope; the record path starts fresh.
                } else if (store) {
                    trace::TraceBuffer storedBuf;
                    auto t0 = Clock::now();
                    if (store->load(job.key, storedBuf)) {
                        local.loadSec += secondsSince(t0);
                        local.loaded += storedBuf.size();
                        ++local.tracesLoaded;
                        fromStore = true;
                        mix = storedBuf.mix();
                        auto t1 = Clock::now();
                        replayCells(storedBuf);
                        local.replaySec += secondsSince(t1);
                    }
                }

                // Write-through recorder for a store miss; a failed
                // store write degrades to an uncached run, never a
                // failed sweep.
                std::unique_ptr<trace::TraceStore::Recorder> recorder;
                if (store && !fromStore)
                    recorder = store->startRecord(job.key);
                auto commitRecorder = [&]() {
                    if (!recorder)
                        return;
                    try {
                        recorder->commit();
                        ++local.tracesStored;
                    } catch (const std::exception &e) {
                        std::fprintf(stderr,
                                     "trace-store: cannot persist "
                                     "\"%s\": %s; continuing\n",
                                     job.key.c_str(), e.what());
                    }
                    recorder.reset();
                };

                if (fromStore) {
                    // All cells already filled by the probe above.
                } else if (timingCells == 1) {
                    // Single consumer: stream the emulation straight
                    // into its simulator (replay equivalence makes
                    // this bit-identical to the buffered path, minus
                    // the buffer). The fused pass interleaves record
                    // and replay work, so its time is accounted as
                    // streamSeconds - not recordSeconds - and its
                    // instructions count as both recorded and
                    // replayed, keeping the instruction totals
                    // identical to the buffered path's.
                    const auto &cfgJob =
                        plan.configs()[plan.cells()[simCi].config];
                    auto t0 = Clock::now();
                    timing::PipelineSim sim(cfgJob.cfg);
                    trace::CountingSink counter;
                    trace::TeeSink tee(counter, sim);
                    if (recorder) {
                        trace::TeeSink teeStore(tee, *recorder);
                        job.record(teeStore);
                    } else {
                        job.record(tee);
                    }
                    auto &res = results[simCi];
                    res.sim = sim.finalize();
                    mix = counter.mix();
                    local.streamSec += secondsSince(t0);
                    local.recorded += mix.total();
                    local.replayed += mix.total();
                    ++local.replayPasses;
                    commitRecorder();
                } else if (timingCells == 0) {
                    auto t0 = Clock::now();
                    trace::CountingSink counter;
                    if (recorder) {
                        trace::TeeSink tee(counter, *recorder);
                        job.record(tee);
                    } else {
                        job.record(counter);
                    }
                    mix = counter.mix();
                    local.recordSec += secondsSince(t0);
                    local.recorded += mix.total();
                    commitRecorder();
                } else {
                    trace::TraceBuffer buffer;
                    auto t0 = Clock::now();
                    if (recorder) {
                        trace::TeeSink tee(buffer, *recorder);
                        job.record(tee);
                    } else {
                        job.record(buffer);
                    }
                    mix = buffer.mix();
                    local.recordSec += secondsSince(t0);
                    local.recorded += buffer.size();
                    commitRecorder();
                    auto t1 = Clock::now();
                    replayCells(buffer);
                    local.replaySec += secondsSince(t1);
                }

                for (int ci : group.cellIndices) {
                    const SweepCell &cell = plan.cells()[ci];
                    auto &res = results[ci];
                    res.traceKey = job.key;
                    if (cell.config != SweepCell::mixOnly) {
                        res.configLabel =
                            plan.configs()[cell.config].label;
                    }
                    res.mix = mix;
                    res.traceInstrs = mix.total();
                    ++local.cells;
                }
                if (!fromStore)
                    ++local.traces;
            }
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!firstError)
                    firstError = std::current_exception();
            }
            abortRun.store(true, std::memory_order_relaxed);
        }
        std::lock_guard<std::mutex> lock(totalsMutex);
        totals.recorded += local.recorded;
        totals.loaded += local.loaded;
        totals.replayed += local.replayed;
        totals.traces += local.traces;
        totals.tracesLoaded += local.tracesLoaded;
        totals.tracesStored += local.tracesStored;
        totals.cells += local.cells;
        totals.replayPasses += local.replayPasses;
        totals.recordSec += local.recordSec;
        totals.replaySec += local.replaySec;
        totals.streamSec += local.streamSec;
        totals.loadSec += local.loadSec;
    };

    int poolSize = std::min<int>(threads_, int(groups.size()));
    if (poolSize <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(poolSize);
        for (int i = 0; i < poolSize; ++i)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    if (firstError)
        std::rethrow_exception(firstError);

    stats_.threads = std::max(1, poolSize);
    stats_.tracesRecorded = totals.traces;
    stats_.tracesLoaded = totals.tracesLoaded;
    stats_.tracesStored = totals.tracesStored;
    stats_.cellsRun = totals.cells;
    stats_.instrsRecorded = totals.recorded;
    stats_.instrsLoaded = totals.loaded;
    stats_.instrsReplayed = totals.replayed;
    stats_.replayPasses = totals.replayPasses;
    stats_.recordSeconds = totals.recordSec;
    stats_.replaySeconds = totals.replaySec;
    stats_.streamSeconds = totals.streamSec;
    stats_.loadSeconds = totals.loadSec;
    stats_.wallSeconds = secondsSince(wallStart);
    return results;
}

TraceJob
kernelTraceJob(const KernelSpec &spec, h264::Variant variant,
               int execs, std::uint64_t seed, int warmupCalls)
{
    std::string key = spec.name();
    key += '/';
    key += h264::variantName(variant);
    key += '/';
    key += std::to_string(execs);
    key += '/';
    key += std::to_string(seed);
    if (warmupCalls > 0) {
        key += "/w";
        key += std::to_string(warmupCalls);
    }
    return {std::move(key), [spec, variant, execs, seed, warmupCalls](
                                trace::TraceSink &sink) {
                KernelBench bench(spec, seed);
                for (int k = 0; k < warmupCalls; ++k)
                    bench.advanceState(variant, execs);
                bench.recordTrace(variant, execs, sink);
            }};
}

} // namespace uasim::core
