#include "core/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>  // uasim-lint: allow(sim-determinism)
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "timing/model.hh"
#include "trace/trace_buffer.hh"

namespace uasim::core {

namespace {

// Wall-clock feeds only the *Seconds informational stats, never a
// simulated counter: the artifact differ ignores these fields.
using Clock = std::chrono::steady_clock;  // uasim-lint: allow(sim-determinism)

double
secondsSince(Clock::time_point start)
{
    // uasim-lint: allow(sim-determinism)
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Cells of one trace, prepartitioned (the runner's work unit).
struct TraceGroup {
    int trace = 0;
    std::vector<int> cellIndices;
};

} // namespace

int
SweepPlan::addTrace(TraceJob job)
{
    auto [it, inserted] =
        traceIndex_.try_emplace(job.key, int(traces_.size()));
    if (inserted)
        traces_.push_back(std::move(job));
    return it->second;
}

int
SweepPlan::addConfig(std::string label, timing::CoreConfig cfg)
{
    configs_.push_back({std::move(label), std::move(cfg)});
    return int(configs_.size()) - 1;
}

void
SweepPlan::addCell(int trace, int config)
{
    cells_.push_back({trace, config});
}

bool
parseReplayMode(const std::string &name, ReplayMode &mode)
{
    if (name == "batched") {
        mode = ReplayMode::Batched;
        return true;
    }
    if (name == "percell") {
        mode = ReplayMode::PerCell;
        return true;
    }
    return false;
}

const char *
replayModeName(ReplayMode mode)
{
    return mode == ReplayMode::Batched ? "batched" : "percell";
}

void
SweepPlan::crossProduct()
{
    for (int t = 0; t < int(traces_.size()); ++t) {
        for (int c = 0; c < int(configs_.size()); ++c)
            addCell(t, c);
    }
}

SweepRunner::SweepRunner(int threads)
{
    if (threads <= 0) {
        threads = int(std::thread::hardware_concurrency());
        if (threads <= 0)
            threads = 1;
    }
    threads_ = threads;
}

void
SweepRunner::attachStore(const std::string &dir)
{
    store_ = std::make_unique<trace::TraceStore>(dir);
}

std::vector<SweepCellResult>
SweepRunner::run(const SweepPlan &plan)
{
    const auto wallStart = Clock::now();
    stats_ = SweepStats{};

    // Partition cells into per-trace groups, preserving plan order
    // within each group.
    std::vector<TraceGroup> groups(plan.traces().size());
    for (int t = 0; t < int(groups.size()); ++t)
        groups[t].trace = t;
    for (int i = 0; i < int(plan.cells().size()); ++i)
        groups[plan.cells()[i].trace].cellIndices.push_back(i);
    std::erase_if(groups, [](const TraceGroup &g) {
        return g.cellIndices.empty();
    });

    std::vector<SweepCellResult> results(plan.cells().size());

    struct WorkerTotals {
        std::uint64_t recorded = 0, loaded = 0, replayed = 0,
                      traces = 0, tracesLoaded = 0, tracesStored = 0,
                      cells = 0, replayPasses = 0, decodeBytes = 0,
                      bytesMapped = 0;
        double recordSec = 0, replaySec = 0, streamSec = 0,
               loadSec = 0, decodeSec = 0;
        int maxShards = 1;  //!< widest intra-group shard fan-out used

        void
        merge(const WorkerTotals &o)
        {
            recorded += o.recorded;
            loaded += o.loaded;
            replayed += o.replayed;
            traces += o.traces;
            tracesLoaded += o.tracesLoaded;
            tracesStored += o.tracesStored;
            cells += o.cells;
            replayPasses += o.replayPasses;
            decodeBytes += o.decodeBytes;
            bytesMapped += o.bytesMapped;
            recordSec += o.recordSec;
            replaySec += o.replaySec;
            streamSec += o.streamSec;
            loadSec += o.loadSec;
            decodeSec += o.decodeSec;
            maxShards = std::max(maxShards, o.maxShards);
        }
    };

    // Group workers: one per trace group, capped by the group count.
    // Thread budget the group level cannot use (fewer groups than
    // threads - the single-big-group shape) is spent *inside* the
    // groups as replay shards, so --threads N engages N workers
    // either way.
    const int poolSize =
        std::max(1, std::min<int>(threads_, int(groups.size())));
    const int shardBudget = std::max(1, threads_ / poolSize);

    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> abortRun{false};
    std::mutex totalsMutex;
    WorkerTotals totals;
    std::exception_ptr firstError;
    std::mutex errorMutex;

    auto worker = [&]() {
        WorkerTotals local;

        // Run fn(shard, shardTotals) on nShards shards: shard 0 on
        // this thread, the rest on short-lived threads. Shard totals
        // merge into the worker's only when every shard succeeded;
        // the first shard exception rethrows here with no partial
        // accounting, so a caller that falls back to re-recording
        // starts from a clean slate.
        auto runShards = [&local](int nShards, auto &&fn) {
            if (nShards <= 1) {
                fn(0, local);
                return;
            }
            std::vector<WorkerTotals> shardTotals(nShards);
            std::vector<std::exception_ptr> shardErrors(nShards);
            std::vector<std::thread> shardPool;
            shardPool.reserve(nShards - 1);
            for (int k = 1; k < nShards; ++k) {
                shardPool.emplace_back([&, k] {
                    try {
                        fn(k, shardTotals[k]);
                    } catch (...) {
                        shardErrors[k] = std::current_exception();
                    }
                });
            }
            try {
                fn(0, shardTotals[0]);
            } catch (...) {
                shardErrors[0] = std::current_exception();
            }
            for (auto &t : shardPool)
                t.join();
            for (auto &e : shardErrors) {
                if (e)
                    std::rethrow_exception(e);
            }
            for (const auto &st : shardTotals)
                local.merge(st);
            local.maxShards = std::max(local.maxShards, nShards);
        };

        try {
            for (;;) {
                // Stop the whole pool at the first failure instead of
                // draining (and then discarding) the remaining groups.
                if (abortRun.load(std::memory_order_relaxed))
                    break;
                std::size_t gi =
                    cursor.fetch_add(1, std::memory_order_relaxed);
                if (gi >= groups.size())
                    break;
                const TraceGroup &group = groups[gi];
                const TraceJob &job = plan.traces()[group.trace];

                // The group's timing cells, in plan order (the shard
                // split below partitions these contiguously, so the
                // result layout never depends on shard count).
                std::vector<int> timingCis;
                std::vector<timing::CoreConfig> timingCfgs;
                for (int ci : group.cellIndices) {
                    const SweepCell &cell = plan.cells()[ci];
                    if (cell.config == SweepCell::mixOnly)
                        continue;
                    timingCis.push_back(ci);
                    timing::CoreConfig cfg =
                        plan.configs()[cell.config].cfg;
                    // The backend override is applied on the runner's
                    // private copy: the plan keeps describing the grid,
                    // the runner decides which model simulates it.
                    if (!timingModel_.empty())
                        cfg.model = timingModel_;
                    timingCfgs.push_back(std::move(cfg));
                }
                const int timingCells = int(timingCis.size());

                trace::TraceStore *store =
                    (store_ && job.cacheable) ? store_.get() : nullptr;

                // The single timing cell of a fused group.
                const int simCi = timingCells == 1 ? timingCis[0] : -1;

                // Replay a captured record stream into every timing
                // cell of the group: one batched model pass in
                // Batched mode, one per-cell model walk per cell in
                // the PerCell reference mode. Spare thread budget splits
                // the cells across shards, each replaying its slice
                // from its own pass over the buffer - cells are
                // mutually independent, so any split fills identical
                // results (tests/batched_replay_test.cc and the
                // sharding cases in tests/sweep_test.cc); only pass
                // count and wall time differ.
                auto replayCells = [&](const trace::TraceBuffer &buf) {
                    const int nShards =
                        std::min<int>(shardBudget, timingCells);
                    const std::size_t cellsN = timingCis.size();
                    if (replayMode_ == ReplayMode::Batched) {
                        runShards(nShards, [&](int k,
                                               WorkerTotals &lt) {
                            const std::size_t lo =
                                cellsN * std::size_t(k) / nShards;
                            const std::size_t hi =
                                cellsN * std::size_t(k + 1) / nShards;
                            std::vector<timing::CoreConfig> cfgs(
                                timingCfgs.begin() + lo,
                                timingCfgs.begin() + hi);
                            auto batch =
                                timing::makeBatchedTimingModel(cfgs);
                            buf.replayInto(*batch);
                            auto sims = batch->finalizeAll();
                            for (std::size_t i = lo; i < hi; ++i) {
                                results[timingCis[i]].sim =
                                    std::move(sims[i - lo]);
                            }
                            lt.replayed += buf.size() * (hi - lo);
                            ++lt.replayPasses;
                        });
                    } else {
                        runShards(nShards, [&](int k,
                                               WorkerTotals &lt) {
                            const std::size_t lo =
                                cellsN * std::size_t(k) / nShards;
                            const std::size_t hi =
                                cellsN * std::size_t(k + 1) / nShards;
                            for (std::size_t i = lo; i < hi; ++i) {
                                auto sim = timing::makeTimingModel(
                                    timingCfgs[i]);
                                buf.replayInto(*sim);
                                results[timingCis[i]].sim =
                                    sim->finalize();
                                lt.replayed += buf.size();
                                ++lt.replayPasses;
                            }
                        });
                    }
                };

                // Store-hit analogue of replayCells: the record
                // stream is never materialized - every shard decodes
                // the (usually mmap'd) payload itself through an
                // independent TraceCursor. Throws if the payload does
                // not decode; the caller discards the entry and falls
                // back to recording.
                auto replayFromReader =
                    [&](const trace::TraceReader &reader) {
                    const int nShards =
                        std::min<int>(shardBudget, timingCells);
                    const std::size_t cellsN = timingCis.size();
                    auto decodePassInto = [&](trace::TraceSink &sink,
                                              WorkerTotals &lt) {
                        trace::TraceCursor cur = reader.cursor();
                        trace::InstrRecord block[1024];
                        for (;;) {
                            auto d0 = Clock::now();
                            const std::size_t got =
                                cur.nextBlock(block, std::size(block));
                            lt.decodeSec += secondsSince(d0);
                            if (got == 0)
                                break;
                            sink.appendBlock(block, got);
                        }
                        lt.decodeBytes += reader.payloadBytes();
                    };
                    if (replayMode_ == ReplayMode::Batched) {
                        runShards(nShards, [&](int k,
                                               WorkerTotals &lt) {
                            const std::size_t lo =
                                cellsN * std::size_t(k) / nShards;
                            const std::size_t hi =
                                cellsN * std::size_t(k + 1) / nShards;
                            std::vector<timing::CoreConfig> cfgs(
                                timingCfgs.begin() + lo,
                                timingCfgs.begin() + hi);
                            auto t0 = Clock::now();
                            auto batch =
                                timing::makeBatchedTimingModel(cfgs);
                            decodePassInto(*batch, lt);
                            auto sims = batch->finalizeAll();
                            for (std::size_t i = lo; i < hi; ++i) {
                                results[timingCis[i]].sim =
                                    std::move(sims[i - lo]);
                            }
                            lt.replaySec += secondsSince(t0);
                            lt.replayed += reader.count() * (hi - lo);
                            ++lt.replayPasses;
                        });
                    } else {
                        runShards(nShards, [&](int k,
                                               WorkerTotals &lt) {
                            const std::size_t lo =
                                cellsN * std::size_t(k) / nShards;
                            const std::size_t hi =
                                cellsN * std::size_t(k + 1) / nShards;
                            for (std::size_t i = lo; i < hi; ++i) {
                                auto t0 = Clock::now();
                                auto sim = timing::makeTimingModel(
                                    timingCfgs[i]);
                                decodePassInto(*sim, lt);
                                results[timingCis[i]].sim =
                                    sim->finalize();
                                lt.replaySec += secondsSince(t0);
                                lt.replayed += reader.count();
                                ++lt.replayPasses;
                            }
                        });
                    }
                };

                trace::InstrMix mix;
                bool fromStore = false;

                // Store probe, shaped per group kind so a hit never
                // materializes state the cells don't need: a mix-only
                // group reads just the header's validated mix section
                // (no payload decode at all); timing groups open the
                // entry zero-copy (mmap where available) and decode
                // it straight into their simulators - a single cell
                // as one streamed pass, a multi-cell group as sharded
                // cursor passes over the shared mapping. Replay
                // equivalence keeps every hit bit-identical to
                // recording in-process. A payload that fails
                // mid-decode (valid checksum, corrupt stream) is
                // discarded like any corrupt entry and the group
                // falls through to re-recording.
                if (store && timingCells == 0) {
                    auto t0 = Clock::now();
                    if (auto sum = store->loadSummary(job.key)) {
                        mix = sum->mix;
                        local.loadSec += secondsSince(t0);
                        local.loaded += sum->count;
                        ++local.tracesLoaded;
                        fromStore = true;
                    }
                } else if (store && timingCells == 1) {
                    if (auto reader = store->openReader(job.key)) {
                        try {
                            auto t0 = Clock::now();
                            auto sim = timing::makeTimingModel(
                                timingCfgs[0]);
                            trace::TraceCursor cur = reader->cursor();
                            trace::InstrRecord block[1024];
                            for (;;) {
                                auto d0 = Clock::now();
                                const std::size_t got = cur.nextBlock(
                                    block, std::size(block));
                                local.decodeSec += secondsSince(d0);
                                if (got == 0)
                                    break;
                                sim->appendBlock(block, got);
                            }
                            results[simCi].sim = sim->finalize();
                            mix = reader->mix();
                            local.replaySec += secondsSince(t0);
                            local.decodeBytes +=
                                reader->payloadBytes();
                            if (reader->mapped()) {
                                local.bytesMapped +=
                                    reader->payloadBytes();
                            }
                            local.loaded += reader->count();
                            local.replayed += reader->count();
                            ++local.replayPasses;
                            ++local.tracesLoaded;
                            fromStore = true;
                        } catch (const std::exception &e) {
                            // The partially fed sim is discarded; the
                            // record path below starts fresh.
                            store->discardEntry(job.key, e.what());
                        }
                    }
                } else if (store) {
                    if (auto reader = store->openReader(job.key)) {
                        try {
                            replayFromReader(*reader);
                            mix = reader->mix();
                            if (reader->mapped()) {
                                local.bytesMapped +=
                                    reader->payloadBytes();
                            }
                            local.loaded += reader->count();
                            ++local.tracesLoaded;
                            fromStore = true;
                        } catch (const std::exception &e) {
                            // Any partially filled result slots are
                            // overwritten by the record path below.
                            store->discardEntry(job.key, e.what());
                        }
                    }
                }

                // Write-through recorder for a store miss; a failed
                // store write degrades to an uncached run, never a
                // failed sweep.
                std::unique_ptr<trace::TraceStore::Recorder> recorder;
                if (store && !fromStore)
                    recorder = store->startRecord(job.key);
                auto commitRecorder = [&]() {
                    if (!recorder)
                        return;
                    try {
                        recorder->commit();
                        ++local.tracesStored;
                    } catch (const std::exception &e) {
                        std::fprintf(stderr,
                                     "trace-store: cannot persist "
                                     "\"%s\": %s; continuing\n",
                                     job.key.c_str(), e.what());
                    }
                    recorder.reset();
                };

                if (fromStore) {
                    // All cells already filled by the probe above.
                } else if (timingCells == 1) {
                    // Single consumer: stream the emulation straight
                    // into its simulator (replay equivalence makes
                    // this bit-identical to the buffered path, minus
                    // the buffer). The fused pass interleaves record
                    // and replay work, so its time is accounted as
                    // streamSeconds - not recordSeconds - and its
                    // instructions count as both recorded and
                    // replayed, keeping the instruction totals
                    // identical to the buffered path's.
                    auto t0 = Clock::now();
                    auto sim = timing::makeTimingModel(timingCfgs[0]);
                    trace::CountingSink counter;
                    trace::TeeSink tee(counter, *sim);
                    if (recorder) {
                        trace::TeeSink teeStore(tee, *recorder);
                        job.record(teeStore);
                    } else {
                        job.record(tee);
                    }
                    auto &res = results[simCi];
                    res.sim = sim->finalize();
                    mix = counter.mix();
                    local.streamSec += secondsSince(t0);
                    local.recorded += mix.total();
                    local.replayed += mix.total();
                    ++local.replayPasses;
                    commitRecorder();
                } else if (timingCells == 0) {
                    auto t0 = Clock::now();
                    trace::CountingSink counter;
                    if (recorder) {
                        trace::TeeSink tee(counter, *recorder);
                        job.record(tee);
                    } else {
                        job.record(counter);
                    }
                    mix = counter.mix();
                    local.recordSec += secondsSince(t0);
                    local.recorded += mix.total();
                    commitRecorder();
                } else {
                    trace::TraceBuffer buffer;
                    auto t0 = Clock::now();
                    if (recorder) {
                        trace::TeeSink tee(buffer, *recorder);
                        job.record(tee);
                    } else {
                        job.record(buffer);
                    }
                    mix = buffer.mix();
                    local.recordSec += secondsSince(t0);
                    local.recorded += buffer.size();
                    commitRecorder();
                    auto t1 = Clock::now();
                    replayCells(buffer);
                    local.replaySec += secondsSince(t1);
                }

                for (int ci : group.cellIndices) {
                    const SweepCell &cell = plan.cells()[ci];
                    auto &res = results[ci];
                    res.traceKey = job.key;
                    if (cell.config != SweepCell::mixOnly) {
                        res.configLabel =
                            plan.configs()[cell.config].label;
                    }
                    res.mix = mix;
                    res.traceInstrs = mix.total();
                    ++local.cells;
                }
                if (!fromStore)
                    ++local.traces;
            }
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!firstError)
                    firstError = std::current_exception();
            }
            abortRun.store(true, std::memory_order_relaxed);
        }
        std::lock_guard<std::mutex> lock(totalsMutex);
        totals.merge(local);
    };

    if (poolSize <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(poolSize);
        for (int i = 0; i < poolSize; ++i)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    if (firstError)
        std::rethrow_exception(firstError);

    stats_.threads = poolSize * std::max(1, totals.maxShards);
    stats_.tracesRecorded = totals.traces;
    stats_.tracesLoaded = totals.tracesLoaded;
    stats_.tracesStored = totals.tracesStored;
    stats_.cellsRun = totals.cells;
    stats_.instrsRecorded = totals.recorded;
    stats_.instrsLoaded = totals.loaded;
    stats_.instrsReplayed = totals.replayed;
    stats_.replayPasses = totals.replayPasses;
    stats_.decodeBytes = totals.decodeBytes;
    stats_.bytesMapped = totals.bytesMapped;
    stats_.recordSeconds = totals.recordSec;
    stats_.replaySeconds = totals.replaySec;
    stats_.streamSeconds = totals.streamSec;
    stats_.loadSeconds = totals.loadSec;
    stats_.decodeSeconds = totals.decodeSec;
    stats_.wallSeconds = secondsSince(wallStart);
    return results;
}

TraceJob
kernelTraceJob(const KernelSpec &spec, h264::Variant variant,
               int execs, std::uint64_t seed, int warmupCalls)
{
    std::string key = spec.name();
    key += '/';
    key += h264::variantName(variant);
    key += '/';
    key += std::to_string(execs);
    key += '/';
    key += std::to_string(seed);
    if (warmupCalls > 0) {
        key += "/w";
        key += std::to_string(warmupCalls);
    }
    return {std::move(key), [spec, variant, execs, seed, warmupCalls](
                                trace::TraceSink &sink) {
                KernelBench bench(spec, seed);
                for (int k = 0; k < warmupCalls; ++k)
                    bench.advanceState(variant, execs);
                bench.recordTrace(variant, execs, sink);
            }};
}

} // namespace uasim::core
