/**
 * @file
 * Plain-text / CSV table formatting for the benchmark binaries.
 */

#ifndef UASIM_CORE_REPORT_HH
#define UASIM_CORE_REPORT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace uasim::core {

/**
 * Minimal fixed-width table builder: add a header row, then data
 * rows; print() pads columns to fit.
 */
class TextTable
{
  public:
    /// Set the header row.
    void header(std::vector<std::string> cells);

    /// Append one data row.
    void row(std::vector<std::string> cells);

    /// Render with aligned columns (first column left, rest right).
    std::string str() const;

    /// Render as CSV.
    std::string csv() const;

  private:
    std::vector<std::vector<std::string>> rows_;
    bool hasHeader_ = false;
};

/// Format @p v with @p prec decimals.
std::string fmt(double v, int prec = 2);

/// Format an integer with thousands separators (Table III style).
std::string fmtCount(std::uint64_t v);

} // namespace uasim::core

#endif // UASIM_CORE_REPORT_HH
