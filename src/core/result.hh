/**
 * @file
 * Versioned machine-readable bench results (the BENCH_*.json
 * artifacts) and the regression differ behind the uasim-report tool.
 *
 * A BenchResult captures everything a figure/table bench measured:
 * the workload parameters, every sweep cell (trace key, config label,
 * the full SimResult counter block, and the per-class instruction
 * mix), the derived headline metrics exactly as printed in the text
 * table, and the SweepStats of the run.
 *
 * Fields are split into two strictly separated groups:
 *
 *  - **simulated** fields (params, metrics, cells, and the
 *    deterministic SweepStats subset cellsRun/instrsReplayed) are
 *    products of the deterministic simulator. They must be
 *    bit-identical across hosts, thread counts, and cold/warm trace
 *    caches, and uasim-report gates on them bit-exactly.
 *  - **informational** fields (thread count, store hit/record
 *    counters, all wall-clock seconds) describe how the run executed.
 *    They are reported in diffs but never gate.
 *
 * Schema versioning: `schemaVersion` starts at 1 and must be bumped
 * whenever a simulated field is added, removed, renamed, or changes
 * meaning (informational additions do not require a bump). The differ
 * refuses to compare artifacts of different versions (SchemaError)
 * instead of producing a bogus regression verdict.
 */

#ifndef UASIM_CORE_RESULT_HH
#define UASIM_CORE_RESULT_HH

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/json.hh"
#include "core/sweep.hh"
#include "timing/results.hh"
#include "trace/mix.hh"

namespace uasim::core {

/// Artifact is syntactically JSON but not a valid BenchResult.
class SchemaError : public std::runtime_error
{
  public:
    explicit SchemaError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/// One row of the SimResult counter table (see simResultFields()).
struct SimResultField {
    const char *name;
    std::uint64_t timing::SimResult::*member;
};

/**
 * The one SimResult counter table: artifact serialization, parsing,
 * diff gating, and the batched-vs-percell differential tests all
 * iterate this list, so a future counter added here is automatically
 * carried by the artifact, gated by uasim-report, AND compared across
 * both replay engines — it cannot serialize yet silently never gate,
 * nor be modeled in PipelineSim but forgotten in BatchedPipelineSim.
 * (Adding one is a simulated-schema change: bump
 * BenchResult::schemaVersion.)
 */
std::span<const SimResultField> simResultFields();

/// One sweep cell of the artifact (== one SweepCellResult).
struct ResultCell {
    std::string trace;        //!< trace job key
    std::string config;       //!< config label; empty for mix-only
    std::uint64_t traceInstrs = 0;
    timing::SimResult sim;    //!< zeroed for mix-only cells
    trace::InstrMix mix;
};

/**
 * The in-memory model of one BENCH_*.json artifact.
 */
class BenchResult
{
  public:
    static constexpr const char *schemaName = "uasim-bench-result";
    static constexpr int schemaVersion = 1;

    std::string bench;  //!< bench binary name, e.g. "fig8_kernel_speedup"

    /// Workload parameters (ordered; values are typed JSON scalars).
    std::vector<std::pair<std::string, json::Value>> params;

    /**
     * Derived headline metrics: the numbers the text table prints,
     * one entry per table value, keyed "row/column" style. Doubles
     * are compared bit-exactly by the differ, which is sound because
     * they are pure functions of simulated counters.
     */
    std::vector<std::pair<std::string, double>> metrics;

    std::vector<ResultCell> cells;

    SweepStats stats;        //!< most recent SweepRunner stats
    bool hasStats = false;   //!< false for benches without a sweep
    /// False when the artifact was written in baseline form (the
    /// informational stats block stripped).
    bool hasInformational = false;

    /// @name Builders
    /// @{
    void addParam(const std::string &name, json::Value v);
    void addMetric(const std::string &name, double v);

    /// Append every sweep cell result verbatim.
    void addCells(const std::vector<SweepCellResult> &results);

    /// Record the runner statistics block.
    void setStats(const SweepStats &s);
    /// @}

    /**
     * Serialize to the artifact JSON.
     * @param includeInformational when false (baseline form) the
     *        informational SweepStats block is omitted entirely, so
     *        committed baselines never churn on wall-clock noise.
     */
    json::Value toJson(bool includeInformational = true) const;

    /// Serialized artifact text (pretty-printed, trailing newline).
    std::string
    serialize(bool includeInformational = true) const
    {
        return toJson(includeInformational).dump(2);
    }

    /**
     * Parse an artifact.
     * @throws SchemaError on missing/mistyped fields or an
     *         unsupported schema name/version.
     */
    static BenchResult fromJson(const json::Value &v);

    /// Parse artifact text. @throws SchemaError (also for bad JSON).
    static BenchResult parse(std::string_view text);
};

/// Read and parse one artifact file. @throws SchemaError.
BenchResult loadResultFile(const std::string &path);

/// Write @p result to @p path (atomically via tmp+rename).
/// @throws std::runtime_error on I/O failure.
void saveResultFile(const BenchResult &result, const std::string &path,
                    bool includeInformational = true);

/// Outcome of one artifact comparison, ordered by severity.
enum class DiffStatus { Match = 0, Regression = 1, SchemaError = 2 };

/// Process exit code for a status (uasim-report's contract).
constexpr int
exitCode(DiffStatus s)
{
    return static_cast<int>(s);
}

/// The worse of two statuses (SchemaError > Regression > Match).
constexpr DiffStatus
worse(DiffStatus a, DiffStatus b)
{
    return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

/// One artifact-pair comparison: verdict plus human-readable detail.
struct DiffReport {
    DiffStatus status = DiffStatus::Match;
    /// Gating differences (simulated fields), one line each.
    std::vector<std::string> regressions;
    /// Non-gating observations (wall-time deltas etc.), one line each.
    std::vector<std::string> notes;
};

/**
 * Compare two artifacts: @p base (the committed baseline) against
 * @p cur (the fresh run). Simulated fields are compared bit-exactly;
 * informational fields only produce notes. Artifacts for different
 * benches or parameters are a Regression (the run no longer measures
 * what the baseline recorded).
 */
DiffReport diffResults(const BenchResult &base, const BenchResult &cur);

} // namespace uasim::core

#endif // UASIM_CORE_RESULT_HH
