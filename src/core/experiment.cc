#include "core/experiment.hh"

#include <cstring>

#include "core/sweep.hh"
#include "h264/chroma_kernels.hh"
#include "h264/chroma_ref.hh"
#include "h264/idct_kernels.hh"
#include "h264/idct_ref.hh"
#include "h264/luma_kernels.hh"
#include "h264/luma_ref.hh"
#include "h264/sad_kernels.hh"
#include "h264/sad_ref.hh"
#include "timing/model.hh"
#include "trace/addrmap.hh"
#include "vmx/buffer.hh"

namespace uasim::core {

using h264::KernelCtx;
using h264::KernelId;
using h264::Variant;

std::string
KernelSpec::name() const
{
    std::string n{h264::kernelName(kernel)};
    n += std::to_string(size) + "x" + std::to_string(size);
    if (matrix)
        n += "_matrix";
    return n;
}

bool
KernelSpec::traceStateInvariant(Variant variant) const
{
    return !(kernel == KernelId::Idct && variant == Variant::Scalar);
}

std::vector<KernelSpec>
paperKernelGrid()
{
    return {
        {KernelId::LumaMc, 16, false},
        {KernelId::LumaMc, 8, false},
        {KernelId::LumaMc, 4, false},
        {KernelId::ChromaMc, 8, false},
        {KernelId::ChromaMc, 4, false},
        {KernelId::Idct, 8, false},
        {KernelId::Idct, 4, false},
        {KernelId::Idct, 4, true},
        {KernelId::Sad, 16, false},
        {KernelId::Sad, 8, false},
        {KernelId::Sad, 4, false},
    };
}

std::vector<KernelSpec>
tableThreeSpecs()
{
    return {
        {KernelId::LumaMc, 16, false},
        {KernelId::ChromaMc, 8, false},
        {KernelId::Idct, 4, false},
        {KernelId::Idct, 4, true},
        {KernelId::Sad, 16, false},
    };
}

namespace {

/// Per-iteration input parameters, identical across variants.
struct IterParams {
    int bx = 0, by = 0;    //!< destination block position
    int dx = 0, dy = 0;    //!< integer source displacement (MC / SAD)
    int cfx = 2, cfy = 2;  //!< fractional part (chroma dx/dy)
};

constexpr int planeDim = 256;
constexpr int mcRange = 24;  //!< integer MV / search range in pixels

} // namespace

struct KernelBench::Impl {
    explicit Impl(const KernelSpec &spec, std::uint64_t seed)
        : spec(spec), seed(seed), src(planeDim, planeDim),
          dst(planeDim, planeDim), cur(planeDim, planeDim),
          coeffs(16 * 16 * 2, 0)
    {
        // Textured, deterministic content.
        for (int y = 0; y < planeDim; ++y) {
            for (int x = 0; x < planeDim; ++x) {
                src.at(x, y) = video::hashNoise(seed, x, y);
                cur.at(x, y) = video::hashNoise(seed ^ 0x77, x, y);
                dst.at(x, y) = video::hashNoise(seed ^ 0xfe, x, y);
            }
        }
        src.extendEdges();
        cur.extendEdges();
    }

    IterParams
    params(int iter) const
    {
        video::Rng rng(seed * 0x9e3779b97f4a7c15ull + iter + 1);
        IterParams p;
        int grid = spec.kernel == KernelId::Idct ? 16 : spec.size;
        int cells = (planeDim - 2 * mcRange) / grid - 1;
        p.bx = mcRange + grid * static_cast<int>(rng.below(cells));
        p.by = mcRange + grid * static_cast<int>(rng.below(cells));
        p.dx = static_cast<int>(rng.range(-mcRange, mcRange));
        p.dy = static_cast<int>(rng.range(-mcRange, mcRange));
        // Chroma fraction: not both zero (interpolation kernel).
        p.cfx = static_cast<int>(rng.below(8));
        p.cfy = static_cast<int>(rng.below(8));
        if (!p.cfx && !p.cfy)
            p.cfx = 4;
        return p;
    }

    /// Fill the coefficient macroblock for an IDCT iteration.
    void
    fillCoeffs(int iter)
    {
        video::Rng rng(seed * 0x2545f4914f6cdd1dull + iter + 7);
        auto *blk = reinterpret_cast<std::int16_t *>(coeffs.data());
        for (int i = 0; i < 256; ++i)
            blk[i] = static_cast<std::int16_t>(rng.range(-64, 64));
    }

    KernelSpec spec;
    std::uint64_t seed;
    video::Plane src;
    video::Plane dst;
    video::Plane cur;
    vmx::AlignedBuffer coeffs;
};

KernelBench::KernelBench(const KernelSpec &spec, std::uint64_t seed)
    : spec_(spec), impl_(std::make_unique<Impl>(spec, seed))
{
}

KernelBench::~KernelBench() = default;

std::uint64_t
KernelBench::seed() const
{
    return impl_->seed;
}

TraceJob
KernelBench::traceJob(Variant variant, int execs) const
{
    return kernelTraceJob(spec_, variant, execs, impl_->seed);
}

void
KernelBench::runOnce(KernelCtx &ctx, Variant variant, int iter)
{
    Impl &im = *impl_;
    IterParams p = im.params(iter);
    const int stride = im.src.stride();

    switch (spec_.kernel) {
      case KernelId::LumaMc: {
        const std::uint8_t *sp =
            im.src.pixel(p.bx + p.dx, p.by + p.dy);
        std::uint8_t *dp = im.dst.pixel(p.bx, p.by);
        // The benchmarked position is the centre half-pel (2,2), the
        // interpolation case the paper evaluates.
        h264::lumaMc(ctx, variant, sp, stride, dp, im.dst.stride(),
                     spec_.size, spec_.size, 2, 2);
        return;
      }
      case KernelId::ChromaMc: {
        const std::uint8_t *sp =
            im.src.pixel(p.bx + p.dx, p.by + p.dy);
        std::uint8_t *dp = im.dst.pixel(p.bx, p.by);
        h264::chromaMcKernel(ctx, variant, sp, stride, dp,
                             im.dst.stride(), spec_.size, p.cfx, p.cfy);
        return;
      }
      case KernelId::Sad: {
        const std::uint8_t *cp = im.cur.pixel(p.bx, p.by);
        const std::uint8_t *rp =
            im.src.pixel(p.bx + p.dx, p.by + p.dy);
        h264::sadKernel(ctx, variant, cp, im.cur.stride(), rp, stride,
                        spec_.size);
        return;
      }
      case KernelId::Idct: {
        im.fillCoeffs(iter);
        auto *blk = reinterpret_cast<std::int16_t *>(im.coeffs.data());
        if (spec_.size == 8) {
            // One macroblock = four 8x8 transforms.
            for (int i = 0; i < 4; ++i) {
                std::uint8_t *dp = im.dst.pixel(
                    p.bx + 8 * (i & 1), p.by + 8 * (i >> 1));
                h264::idct8x8Add(ctx, variant, dp, im.dst.stride(),
                                 blk + 64 * i);
            }
        } else {
            // One macroblock = sixteen 4x4 transforms.
            for (int i = 0; i < 16; ++i) {
                std::uint8_t *dp = im.dst.pixel(
                    p.bx + 4 * (i & 3), p.by + 4 * (i >> 2));
                if (spec_.matrix) {
                    h264::idct4x4AddMatrix(ctx, variant, dp,
                                           im.dst.stride(),
                                           blk + 16 * i);
                } else {
                    h264::idct4x4Add(ctx, variant, dp, im.dst.stride(),
                                     blk + 16 * i);
                }
            }
        }
        return;
      }
    }
}

trace::InstrMix
KernelBench::countInstrs(Variant variant, int execs)
{
    trace::CountingSink sink;
    trace::Emitter em(sink);
    KernelCtx ctx(em);
    for (int i = 0; i < execs; ++i)
        runOnce(ctx, variant, i);
    return sink.mix();
}

void
KernelBench::advanceState(Variant variant, int execs)
{
    trace::NullSink sink;
    trace::Emitter em(sink);
    KernelCtx ctx(em);
    for (int i = 0; i < execs; ++i)
        runOnce(ctx, variant, i);
}

void
KernelBench::recordTrace(Variant variant, int execs,
                         trace::TraceSink &sink)
{
    Impl &im = *impl_;
    // Rebase buffer addresses onto fixed virtual bases so cache
    // behaviour (and therefore cycle counts) cannot depend on host
    // allocator placement.
    trace::AddrNormalizer norm(sink);
    norm.addRegion(im.src.paddedBase(), im.src.paddedSize(),
                   0x10000000);
    norm.addRegion(im.dst.paddedBase(), im.dst.paddedSize(),
                   0x12000000);
    norm.addRegion(im.cur.paddedBase(), im.cur.paddedSize(),
                   0x14000000);
    norm.addRegion(im.coeffs.data(), im.coeffs.size() + 16,
                   0x16000000);
    trace::Emitter em(norm);
    KernelCtx ctx(em);
    for (int i = 0; i < execs; ++i)
        runOnce(ctx, variant, i);
}

timing::SimResult
KernelBench::simulate(Variant variant, const timing::CoreConfig &cfg,
                      int execs)
{
    auto sim = timing::makeTimingModel(cfg);
    recordTrace(variant, execs, *sim);
    return sim->finalize();
}

bool
KernelBench::verifyVariants(int iters)
{
    Impl &im = *impl_;
    trace::NullSink sink;
    trace::Emitter em(sink);
    KernelCtx ctx(em);

    for (int iter = 0; iter < iters; ++iter) {
        IterParams p = im.params(iter);
        const int stride = im.src.stride();
        const int dstride = im.dst.stride();

        // Reference output region.
        video::Plane golden(planeDim, planeDim);
        auto reset_dst = [&]() {
            for (int y = 0; y < planeDim; ++y) {
                std::memcpy(im.dst.pixel(0, y), golden.pixel(0, y),
                            planeDim);
            }
        };
        for (int y = 0; y < planeDim; ++y) {
            for (int x = 0; x < planeDim; ++x)
                golden.at(x, y) = video::hashNoise(im.seed ^ 0xfe, x, y);
        }

        // Compute golden region in a copy.
        video::Plane want(planeDim, planeDim);
        for (int y = 0; y < planeDim; ++y)
            std::memcpy(want.pixel(0, y), golden.pixel(0, y), planeDim);

        int want_sad = 0;
        switch (spec_.kernel) {
          case KernelId::LumaMc:
            h264::lumaMcRef(im.src.pixel(p.bx + p.dx, p.by + p.dy),
                            stride, want.pixel(p.bx, p.by),
                            want.stride(), spec_.size, spec_.size, 2, 2);
            break;
          case KernelId::ChromaMc:
            h264::chromaMcRef(im.src.pixel(p.bx + p.dx, p.by + p.dy),
                              stride, want.pixel(p.bx, p.by),
                              want.stride(), spec_.size, spec_.size,
                              p.cfx, p.cfy);
            break;
          case KernelId::Sad:
            want_sad = h264::sadRef(im.cur.pixel(p.bx, p.by),
                                    im.cur.stride(),
                                    im.src.pixel(p.bx + p.dx,
                                                 p.by + p.dy),
                                    stride, spec_.size, spec_.size);
            break;
          case KernelId::Idct: {
            im.fillCoeffs(iter);
            auto *blk =
                reinterpret_cast<std::int16_t *>(im.coeffs.data());
            if (spec_.size == 8) {
                for (int i = 0; i < 4; ++i) {
                    std::int16_t copy[64];
                    std::memcpy(copy, blk + 64 * i, sizeof(copy));
                    h264::idct8x8AddRef(
                        want.pixel(p.bx + 8 * (i & 1),
                                   p.by + 8 * (i >> 1)),
                        want.stride(), copy);
                }
            } else {
                for (int i = 0; i < 16; ++i) {
                    std::int16_t copy[16];
                    std::memcpy(copy, blk + 16 * i, sizeof(copy));
                    h264::idct4x4AddRef(
                        want.pixel(p.bx + 4 * (i & 3),
                                   p.by + 4 * (i >> 2)),
                        want.stride(), copy);
                }
            }
            break;
          }
        }

        for (int v = 0; v < h264::numVariants; ++v) {
            auto variant = static_cast<Variant>(v);
            reset_dst();
            if (spec_.kernel == KernelId::Sad) {
                IterParams q = im.params(iter);
                int got = h264::sadKernel(
                    ctx, variant, im.cur.pixel(q.bx, q.by),
                    im.cur.stride(),
                    im.src.pixel(q.bx + q.dx, q.by + q.dy), stride,
                    spec_.size);
                if (got != want_sad)
                    return false;
                continue;
            }
            runOnce(ctx, variant, iter);
            for (int y = 0; y < planeDim; ++y) {
                if (std::memcmp(im.dst.pixel(0, y), want.pixel(0, y),
                                planeDim) != 0) {
                    return false;
                }
            }
        }
        (void)dstride;
    }
    return true;
}

} // namespace uasim::core
