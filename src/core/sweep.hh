/**
 * @file
 * SweepPlan / SweepRunner: the declarative record-once/replay-many
 * experiment grid.
 *
 * A plan names a set of trace jobs (anything that can emit an
 * address-normalized record stream: a KernelBench variant, a custom
 * strategy loop, a decoder-stage microbenchmark) and a set of core
 * configurations, plus the cells of the grid to evaluate. The runner
 * records each referenced trace exactly once (keyed cache), replays
 * it into a fresh timing model per cell (built through the
 * timing::TimingModel factory, so the runner never names a concrete
 * backend), and shards the work across a thread pool. Results land in
 * cell order regardless of scheduling, so reports are byte-identical
 * from 1 thread to N.
 *
 * With a persistent store attached (attachStore), "once" extends
 * across processes: each cacheable trace job probes the store first,
 * replays from disk on a hit, and records through to disk on a miss,
 * so repeated grid invocations warm-start instead of re-emulating.
 *
 * Exactness: replaying a recorded trace into a timing model is
 * bit-identical to streaming the emulation straight into the model
 * (tests/sweep_test.cc locks this), so a sweep produces exactly the
 * simulated cycles the hand-rolled per-cell loops did - it just
 * emulates each unique trace once instead of once per cell.
 */

#ifndef UASIM_CORE_SWEEP_HH
#define UASIM_CORE_SWEEP_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>  // uasim-lint: allow(sim-determinism)
#include <vector>

#include "core/experiment.hh"
#include "timing/config.hh"
#include "timing/results.hh"
#include "trace/mix.hh"
#include "trace/sink.hh"
#include "trace/trace_store.hh"

namespace uasim::core {

/**
 * One recordable workload. @p record must be self-contained and
 * deterministic: it builds its own emulation state (planes, emitter,
 * AddrNormalizer) and streams the normalized records into the sink,
 * so the runner can invoke it from any worker thread.
 */
struct TraceJob {
    std::string key;  //!< unique identity; the trace-cache key
    std::function<void(trace::TraceSink &)> record;
    /**
     * Whether the persistent trace store may serve this job. Must be
     * false for jobs whose value is a side effect of running @p
     * record (e.g. filling a captured stats slot) rather than the
     * emitted record stream - a store hit replays the stream from
     * disk and never invokes @p record. The key of a cacheable job
     * must encode everything the stream depends on (workload sizes,
     * seeds, warmup history), because entries outlive the process.
     */
    bool cacheable = true;
};

/// One timing configuration of the grid.
struct ConfigJob {
    std::string label;
    timing::CoreConfig cfg;
};

/**
 * One grid point: simulate trace @p trace on configuration
 * @p config, or - with config == mixOnly - just record the trace's
 * instruction mix (a Table III style cell).
 */
struct SweepCell {
    static constexpr int mixOnly = -1;

    int trace = 0;
    int config = mixOnly;
};

/**
 * How a multi-timing-cell trace group is replayed.
 *
 * Batched (the default) advances every cell of the group from one
 * pass over the record stream (timing::makeBatchedTimingModel);
 * PerCell re-walks the buffer once per cell with a standalone
 * per-cell model (timing::makeTimingModel).
 * The two are bit-identical in every simulated field
 * (tests/batched_replay_test.cc is the differential harness), so
 * PerCell exists as the reference oracle and for debugging, not as a
 * different model.
 */
enum class ReplayMode { Batched, PerCell };

/// Parse a --replay-mode value. @return false on an unknown name.
bool parseReplayMode(const std::string &name, ReplayMode &mode);

/// "batched" or "percell".
const char *replayModeName(ReplayMode mode);

/// Declarative sweep description.
class SweepPlan
{
  public:
    /**
     * Register a trace job; jobs with a key already in the plan are
     * deduplicated (the trace cache key), so callers can mechanically
     * re-add the same workload per grid axis.
     * @return the trace index for addCell().
     */
    int addTrace(TraceJob job);

    /// Register a core configuration. @return its index.
    int addConfig(std::string label, timing::CoreConfig cfg);

    /// Add one grid point (config index, or SweepCell::mixOnly).
    void addCell(int trace, int config);

    /// Add the full traces x configs cross product.
    void crossProduct();

    const std::vector<TraceJob> &traces() const { return traces_; }
    const std::vector<ConfigJob> &configs() const { return configs_; }
    const std::vector<SweepCell> &cells() const { return cells_; }

  private:
    std::vector<TraceJob> traces_;
    std::vector<ConfigJob> configs_;
    std::vector<SweepCell> cells_;
    // Key lookup only, never iterated: order cannot leak into results.
    std::unordered_map<std::string, int> traceIndex_;  // uasim-lint: allow(sim-determinism)
};

/// Outcome of one grid point, in plan cell order.
struct SweepCellResult {
    std::string traceKey;
    std::string configLabel;  //!< empty for mix-only cells
    timing::SimResult sim;    //!< zeroed for mix-only cells
    trace::InstrMix mix;      //!< mix of the recorded trace
    std::uint64_t traceInstrs = 0;
};

/**
 * Aggregate runner statistics (for BENCH_*.json artifacts).
 *
 * Invariants, independent of thread count and of which execution path
 * a group took: every unique trace is obtained exactly once - by
 * emulation (counted in tracesRecorded/instrsRecorded) or from the
 * persistent store (tracesLoaded/instrsLoaded) - and instrsReplayed
 * is the summed trace length over all timing cells (a group whose
 * single timing cell is streamed directly still accounts its
 * instructions as replayed). Without a store, tracesLoaded and
 * tracesStored are zero and tracesRecorded covers every trace. Time
 * is split by pass kind: pure record passes (recordSeconds), pure
 * buffer-replay passes (replaySeconds), fused single-consumer
 * record+simulate passes (streamSeconds), and pure store reads -
 * summary probes and buffer loads (loadSeconds). A store hit on a
 * single-timing-cell group streams the decoded records straight into
 * the simulator; that fused disk-read+simulate pass is accounted as
 * replaySeconds, like the in-memory replay it replaces.
 */
struct SweepStats {
    /// Maximum worker concurrency of the run: group workers times the
    /// widest intra-group replay-shard fan-out used (informational).
    int threads = 0;
    std::uint64_t tracesRecorded = 0;  //!< traces obtained by emulation
    std::uint64_t tracesLoaded = 0;    //!< traces replayed from the store
    std::uint64_t tracesStored = 0;    //!< entries written to the store
    std::uint64_t cellsRun = 0;
    std::uint64_t instrsRecorded = 0;  //!< emulated records, all traces
    std::uint64_t instrsLoaded = 0;    //!< records read from the store
    std::uint64_t instrsReplayed = 0;  //!< records fed to timing sims
    /**
     * Decode/replay passes over trace record streams that fed timing
     * simulators: a fused or streamed single-cell group is 1 pass, a
     * batched multi-cell group is 1 pass per replay shard (spare
     * thread budget splits a group's cells across up to
     * min(threads, cells) shards, each running its own pass - 1 when
     * the sweep has at least as many groups as threads), a per-cell
     * multi-cell group is 1 pass per timing cell, and mix-only groups
     * contribute none. Informational (it describes how the run
     * executed, not what was simulated): instrsReplayed stays the
     * summed trace length over all timing cells in every mode.
     */
    std::uint64_t replayPasses = 0;
    /**
     * Encoded UATRACE2 payload bytes run through the block decoder,
     * summed over every decode pass (a trace decoded by S shards
     * counts S times - the honest amount of decode work done).
     * Informational; zero without a store (in-memory replay feeds
     * already-decoded records).
     */
    std::uint64_t decodeBytes = 0;
    /// Payload bytes served zero-copy from an mmap'd store entry,
    /// counted once per opened trace. Informational.
    std::uint64_t bytesMapped = 0;
    double recordSeconds = 0;  //!< pure record passes, summed across workers
    double replaySeconds = 0;  //!< buffer-replay passes, summed across workers
    double streamSeconds = 0;  //!< fused record+simulate fast-path passes
    double loadSeconds = 0;    //!< store-read passes, summed across workers
    /// Time inside TraceCursor::nextBlock during store-hit replay,
    /// summed across all shards (a subset of replaySeconds).
    double decodeSeconds = 0;
    double wallSeconds = 0;
};

/**
 * Executes a SweepPlan.
 *
 * Work unit = one trace group (a trace plus all cells that reference
 * it): the worker records the trace once, replays it into every
 * cell's simulator, frees the buffer, and moves on. Groups are
 * sharded over the pool with an atomic cursor; results are written
 * into preallocated cell slots, so output order is deterministic and
 * thread-count independent.
 *
 * When the plan has fewer groups than threads, the spare budget is
 * spent *inside* multi-cell groups: a group's timing cells split
 * across up to min(threads, cells) replay shards, each running its
 * own decode/replay pass (cells are mutually independent, so the
 * split is bit-identical to one pass - tests/sweep_test.cc locks it).
 * A single-big-group sweep therefore uses the full --threads
 * allowance instead of one thread.
 */
class SweepRunner
{
  public:
    /// @param threads worker count; 0 = hardware concurrency.
    explicit SweepRunner(int threads = 0);

    /**
     * Attach a persistent trace store under @p dir (creating it if
     * needed). Cacheable trace jobs then probe the store before
     * recording: a hit replays the stored stream into every cell of
     * the group with zero re-emulation, a miss records through to
     * disk for the next run. Replayed results are bit-identical to
     * in-memory recording (tests/sweep_test.cc locks the disk path
     * too).
     * @throws std::runtime_error if the directory cannot be created.
     */
    void attachStore(const std::string &dir);

    /// The attached store, or nullptr.
    trace::TraceStore *store() const { return store_.get(); }

    /// Select how multi-cell groups replay (default Batched).
    void setReplayMode(ReplayMode mode) { replayMode_ = mode; }
    ReplayMode replayMode() const { return replayMode_; }

    /**
     * Force every timing cell onto one TimingModel backend ("pipeline",
     * "ooo", ...; see timing::timingModelNames). Applied as an override
     * of CoreConfig::model when the runner copies each cell's config,
     * so plans keep encoding the paper grid and the backend stays a
     * run-time axis. Empty (the default) leaves each config's own
     * model field in charge. An unknown name surfaces as
     * std::invalid_argument from the factory when run() reaches the
     * first timing cell.
     */
    void setTimingModel(std::string model)
    {
        timingModel_ = std::move(model);
    }
    const std::string &timingModel() const { return timingModel_; }

    /// Run the plan. @return per-cell results in plan cell order.
    std::vector<SweepCellResult> run(const SweepPlan &plan);

    /// Statistics of the most recent run().
    const SweepStats &stats() const { return stats_; }

    int threads() const { return threads_; }

  private:
    int threads_;
    SweepStats stats_;
    std::unique_ptr<trace::TraceStore> store_;
    ReplayMode replayMode_ = ReplayMode::Batched;
    std::string timingModel_;  //!< backend override; empty = per-config
};

/**
 * TraceJob for @p execs executions of a paper kernel variant
 * (KernelBench::recordTrace on a freshly seeded bench; the key
 * encodes spec/variant/execs/seed and, when nonzero, warmupCalls).
 *
 * @p warmupCalls reproduces shared-bench measurement history: the
 * bench is first advanced by that many untraced calls of @p execs
 * executions each, so the recording matches the trace a hand-rolled
 * grid loop would have produced at that call position. Kernel outputs
 * are bit-exact across variants, so warming up with the job's own
 * variant reproduces the state of any interleaved-variant history of
 * the same call count. Only needed when
 * KernelSpec::traceStateInvariant(variant) is false.
 */
TraceJob kernelTraceJob(const KernelSpec &spec, h264::Variant variant,
                        int execs, std::uint64_t seed = 12345,
                        int warmupCalls = 0);

} // namespace uasim::core

#endif // UASIM_CORE_SWEEP_HH
