/**
 * @file
 * Umbrella header: the public API of the uasim library.
 *
 * Include this to get everything a downstream user needs:
 *
 *  - trace layer (records, sinks, emitter, trace files)
 *  - Altivec emulation facade with the paper's lvxu/stvxu
 *  - realignment idioms and the Table I strategy set
 *  - memory hierarchy + superscalar timing model (Table II presets)
 *  - video substrate (frames, synthetic sequences, motion model)
 *  - H.264 kernels in all three variants + references
 *  - mini codec and the Fig 10 profile model
 *  - experiment runner and report formatting
 */

#ifndef UASIM_CORE_API_HH
#define UASIM_CORE_API_HH

#include "core/experiment.hh"
#include "core/report.hh"
#include "core/sweep.hh"
#include "decoder/codec.hh"
#include "decoder/profile.hh"
#include "decoder/transform.hh"
#include "h264/cabac.hh"
#include "h264/chroma_kernels.hh"
#include "h264/chroma_ref.hh"
#include "h264/deblock.hh"
#include "h264/idct_kernels.hh"
#include "h264/idct_ref.hh"
#include "h264/kernels.hh"
#include "h264/luma_kernels.hh"
#include "h264/luma_ref.hh"
#include "h264/sad_kernels.hh"
#include "h264/sad_ref.hh"
#include "h264/tables.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "timing/branch_pred.hh"
#include "timing/config.hh"
#include "timing/model.hh"
#include "timing/ooo_pipeline.hh"
#include "timing/pipeline.hh"
#include "timing/results.hh"
#include "trace/addrmap.hh"
#include "trace/emitter.hh"
#include "trace/instr.hh"
#include "trace/mix.hh"
#include "trace/sink.hh"
#include "trace/trace_buffer.hh"
#include "trace/trace_io.hh"
#include "trace/trace_store.hh"
#include "video/frame.hh"
#include "video/motion.hh"
#include "video/rng.hh"
#include "video/sequence.hh"
#include "vmx/buffer.hh"
#include "vmx/constpool.hh"
#include "vmx/realign.hh"
#include "vmx/scalarops.hh"
#include "vmx/strategies.hh"
#include "vmx/value.hh"
#include "vmx/vecops.hh"

#endif // UASIM_CORE_API_HH
