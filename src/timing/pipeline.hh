/**
 * @file
 * Trace-driven superscalar pipeline model (the Turandot-like simulator).
 *
 * The model consumes InstrRecords in program order (it is itself a
 * TraceSink, so emulated kernels can stream straight into it) and
 * advances a cycle-level machine:
 *
 *   fetch -> dispatch(rename) -> issue -> execute -> retire
 *
 * Modeled mechanisms, per Table II of the paper: fetch/dispatch/issue
 * width, in-order vs out-of-order issue, per-class functional-unit
 * pools (FX/FP/LS/BR/VI/VPERM/VCMPLX), issue-queue and branch-queue
 * capacities, ROB (in-flight) limit, physical-register rename limits,
 * D-cache read/write ports, MSHR (outstanding-miss) limit, a store
 * queue with store-to-load forwarding, a gshare branch predictor with
 * front-end redirect penalty, the L1/L2 hierarchy, and the alignment
 * network's extra latency for dynamically unaligned lvxu/stvxu.
 *
 * Wrong-path execution is approximated the standard trace-driven way:
 * fetch halts at a mispredicted branch and resumes a redirect penalty
 * after the branch resolves.
 */

#ifndef UASIM_TIMING_PIPELINE_HH
#define UASIM_TIMING_PIPELINE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "mem/hierarchy.hh"
#include "timing/branch_pred.hh"
#include "timing/config.hh"
#include "timing/model.hh"
#include "timing/results.hh"
#include "trace/sink.hh"

namespace uasim::timing {

class PipelineSim : public TimingModel
{
  public:
    explicit PipelineSim(const CoreConfig &cfg);

    /// TraceSink hook: stream one instruction into the machine.
    void append(const trace::InstrRecord &rec) override { feed(rec); }

    /// Feed one instruction (program order).
    void feed(const trace::InstrRecord &rec);

    /// Drain the machine and return the final statistics.
    SimResult finalize() override;

    /// Cycles elapsed so far (monotonic during feeding).
    std::uint64_t now() const { return now_; }

    const CoreConfig &config() const override { return cfg_; }
    mem::MemoryHierarchy &memory() { return mem_; }

  private:
    enum class State : std::uint8_t { Waiting, Issued };

    struct Slot {
        trace::InstrRecord rec;
        std::uint64_t readyCycle = 0;
        State state = State::Waiting;
        bool mispredict = false;
    };

    struct StoreEntry {
        std::uint64_t id = 0;
        std::uint64_t addr = 0;
        std::uint64_t fwdReady = 0;  //!< cycle data becomes forwardable
        unsigned size = 0;
        bool issued = false;
    };

    // -- pipeline stages (called once per cycle, youngest stage last) --
    void cycle();
    void retireStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();

    /// Attempt to issue one slot; @return true if it issued.
    bool tryIssue(Slot &slot);

    /// Ready cycle of a producer (0 if long retired, MAX if not issued).
    std::uint64_t
    readyCycleOf(std::uint64_t id) const
    {
        if (!id)
            return 0;
        const auto &e = readyRing_[id & ringMask_];
        return e.id == id ? e.cycle : 0;
    }

    void
    setReady(std::uint64_t id, std::uint64_t cycle)
    {
        auto &e = readyRing_[id & ringMask_];
        e.id = id;
        e.cycle = cycle;
    }

    bool depsReady(const trace::InstrRecord &rec) const;

    static constexpr std::uint64_t notReady = ~std::uint64_t{0};

    /**
     * Floor for the producer-ready ring. The ring is sized at
     * construction to a power of two with at least 2x headroom over
     * cfg.inflight: live ids span at most the in-flight window, so
     * doubling it guarantees two live instructions can never alias a
     * slot (aliasing would silently corrupt dependency timing).
     */
    static constexpr std::size_t minRingSize = 1024;

    struct ReadyEntry {
        std::uint64_t id = 0;
        std::uint64_t cycle = 0;
    };

    CoreConfig cfg_;
    mem::MemoryHierarchy mem_;
    BranchPredictor bpred_;

    std::uint64_t now_ = 0;

    std::deque<trace::InstrRecord> pending_;  //!< staged by feed()
    std::deque<Slot> fetchBuf_;               //!< fetched, not dispatched
    std::deque<Slot> rob_;                    //!< dispatched, not retired
    std::vector<ReadyEntry> readyRing_;       //!< sized from cfg.inflight
    std::size_t ringMask_ = 0;
    std::vector<StoreEntry> storeQ_;
    std::vector<std::uint64_t> mshr_;         //!< miss completion cycles

    // Fetch redirection state.
    std::uint64_t fetchStallUntil_ = 0;
    std::uint64_t haltBranchId_ = 0;  //!< fetch halted behind this branch
    std::uint64_t lastFetchLine_ = ~std::uint64_t{0};

    // Rename occupancy.
    int gprInflight_ = 0;
    int fprInflight_ = 0;
    int vprInflight_ = 0;

    // Issue-queue occupancy (waiting entries only).
    int waitingNonBranch_ = 0;
    int waitingBranch_ = 0;

    // Per-cycle resource tokens.
    int unitTokens_[numUnits] = {};
    int readPorts_ = 0;
    int writePorts_ = 0;
    int issueTokens_ = 0;

    SimResult res_;
    bool finalized_ = false;

    int renameLimit(RegFile rf) const;
    int *renameCounter(RegFile rf);

    /// Execution latency for a non-memory class.
    int classLatency(trace::InstrClass cls) const;
};

} // namespace uasim::timing

#endif // UASIM_TIMING_PIPELINE_HH
