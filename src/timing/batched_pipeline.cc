#include "timing/batched_pipeline.hh"

#include <algorithm>
#include <bit>
#include <cassert>

namespace uasim::timing {

using trace::InstrClass;
using trace::InstrRecord;

BatchedPipelineSim::Cell::Cell(const CoreConfig &config)
    // Same rule as PipelineSim: reject a bad config before sizing
    // anything from it.
    : cfg((config.validate(), config)), mem(config.mem)
{
    res.core = cfg.name;
    storeQ.reserve(cfg.storeQ);
    mshr.reserve(cfg.missMax);
    waiting.reserve(std::size_t(std::max(1, cfg.issueQ)) +
                    std::size_t(std::max(1, cfg.branchQ)));
    const auto inflight = std::size_t(std::max(1, cfg.inflight));
    readyRing.resize(
        std::bit_ceil(std::max(minRingSize, 2 * inflight)));
    ringMask = readyRing.size() - 1;
    ringWatch.resize(readyRing.size());
    // Live slots span pending-overflow + fetch buffer + ROB.
    const auto ibuffer = std::size_t(std::max(1, cfg.ibuffer));
    slots.resize(std::bit_ceil(ibuffer + inflight + 2));
    slotMask = slots.size() - 1;
    pendingCap = std::size_t(2 * cfg.ibuffer);
}

BatchedPipelineSim::BatchedPipelineSim(const std::vector<CoreConfig> &cfgs)
    // All cells share one predictor geometry (constructor
    // precondition); the shared stream-pure predictor uses it.
    : bpred_(cfgs.empty() ? 12u : unsigned(cfgs.front().bpredLog2Entries))
{
    cells_.reserve(cfgs.size());
    std::size_t maxSpan = 1;
    for (const auto &cfg : cfgs) {
        cells_.emplace_back(cfg);
        // pending (cap 2*ibuffer, +1 transient) + fetch buffer + ROB.
        const auto span = 3 * std::size_t(std::max(1, cfg.ibuffer)) +
            std::size_t(std::max(1, cfg.inflight)) + 2;
        maxSpan = std::max(maxSpan, span);
    }
    // A whole appendBlock chunk is staged before the laggiest cell
    // advances, so the window needs chunk headroom past every span.
    window_.resize(std::bit_ceil(maxSpan + chunkRecords + 8));
    windowMispred_.resize(window_.size());
    winMask_ = window_.size() - 1;
}

int
BatchedPipelineSim::Cell::renameLimit(RegFile rf) const
{
    // 32 architected registers are always allocated; the rest rename.
    switch (rf) {
      case RegFile::GPR: return std::max(1, cfg.gprPhys - 32);
      case RegFile::FPR: return std::max(1, cfg.fprPhys - 32);
      case RegFile::VPR: return std::max(1, cfg.vprPhys - 32);
      default: return 1 << 30;
    }
}

int *
BatchedPipelineSim::Cell::renameCounter(RegFile rf)
{
    switch (rf) {
      case RegFile::GPR: return &gprInflight;
      case RegFile::FPR: return &fprInflight;
      case RegFile::VPR: return &vprInflight;
      default: return nullptr;
    }
}

int
BatchedPipelineSim::Cell::classLatency(InstrClass cls) const
{
    switch (cls) {
      case InstrClass::IntAlu:     return cfg.lat.intAlu;
      case InstrClass::IntMul:     return cfg.lat.intMul;
      case InstrClass::FpAlu:      return cfg.lat.fpAlu;
      case InstrClass::Branch:     return cfg.lat.branchResolve;
      case InstrClass::VecSimple:  return cfg.lat.vecSimple;
      case InstrClass::VecComplex: return cfg.lat.vecComplex;
      case InstrClass::VecPerm:    return cfg.lat.vecPerm;
      default:                     return 1;
    }
}

void
BatchedPipelineSim::stageRecord(const InstrRecord &rec)
{
    window_[feedSeq_ & winMask_] = rec;
    // Branch outcomes are stream-pure: predict and train once, in
    // program order, exactly as every per-cell fetch stage would.
    bool mispred = false;
    if (rec.cls == InstrClass::Branch) {
        mispred = bpred_.predict(rec.pc) != rec.taken;
        bpred_.update(rec.pc, rec.taken);
    }
    windowMispred_[feedSeq_ & winMask_] = mispred ? 1 : 0;
    ++feedSeq_;
}

void
BatchedPipelineSim::advanceCell(Cell &cell, std::uint64_t fedEnd)
{
    // Same backpressure rule as PipelineSim::feed(), one record at a
    // time: stage, then pump cycles while pending exceeds the cap.
    while (cell.fed < fedEnd) {
        ++cell.fed;
        while (cell.fed - cell.fetchPos > cell.pendingCap)
            cycleCell(cell);
    }
}

void
BatchedPipelineSim::append(const InstrRecord &rec)
{
    appendBlock(&rec, 1);
}

void
BatchedPipelineSim::appendBlock(const InstrRecord *recs, std::size_t n)
{
    assert(!finalized_);
    while (n > 0) {
        const std::size_t chunk = std::min(n, chunkRecords);
        for (std::size_t i = 0; i < chunk; ++i)
            stageRecord(recs[i]);
        // Cell-major: each cell consumes the whole staged chunk while
        // its machine state is cache-hot.
        for (auto &cell : cells_)
            advanceCell(cell, feedSeq_);
        recs += chunk;
        n -= chunk;
    }
}

std::vector<SimResult>
BatchedPipelineSim::finalizeAll()
{
    std::vector<SimResult> out;
    out.reserve(cells_.size());
    if (!finalized_) {
        for (auto &cell : cells_) {
            assert(cell.fed == feedSeq_);
            // Guard against pathological deadlock, as
            // PipelineSim::finalize() does.
            std::uint64_t limit = cell.now + 1000000 +
                1000 * (cell.fed - cell.retirePos);
            while (cell.retirePos < cell.fed) {
                cycleCell(cell);
                if (cell.now > limit)
                    break;  // report what we have rather than hang
            }
            cell.res.cycles = cell.now;
            const auto &l1d = cell.mem.l1d().stats();
            cell.res.l1dAccesses = l1d.accesses;
            cell.res.l1dMisses = l1d.misses;
            cell.res.l2Misses = cell.mem.l2().stats().misses;
            cell.res.l1iMisses = cell.mem.l1i().stats().misses;
        }
        finalized_ = true;
    }
    for (const auto &cell : cells_)
        out.push_back(cell.res);
    return out;
}

void
BatchedPipelineSim::cycleCell(Cell &cell)
{
    ++cell.now;
    for (int u = 0; u < numUnits; ++u)
        cell.unitTokens[u] = 0;
    cell.unitTokens[int(Unit::FX)] = cell.cfg.units.fx;
    cell.unitTokens[int(Unit::FP)] = cell.cfg.units.fp;
    cell.unitTokens[int(Unit::LS)] = cell.cfg.units.ls;
    cell.unitTokens[int(Unit::BR)] = cell.cfg.units.br;
    cell.unitTokens[int(Unit::VI)] = cell.cfg.units.vi;
    cell.unitTokens[int(Unit::VPERM)] = cell.cfg.units.vperm;
    cell.unitTokens[int(Unit::VCMPLX)] = cell.cfg.units.vcmplx;
    cell.readPorts = cell.cfg.dReadPorts;
    cell.writePorts = cell.cfg.dWritePorts;
    cell.issueTokens = cell.cfg.fetchWidth;

    // Release completed misses.
    if (!cell.mshr.empty()) {
        std::erase_if(cell.mshr, [&cell](std::uint64_t c) {
            return c <= cell.now;
        });
    }

    const std::uint64_t preRetire = cell.retirePos;
    const std::uint64_t preDispatch = cell.dispatchPos;
    const std::uint64_t preFetch = cell.fetchPos;
    const std::uint64_t preStall = cell.fetchStallUntil;

    retireStage(cell);
    issueStage(cell);
    dispatchStage(cell);
    fetchStage(cell);

    // issueTokens only decrements on a successful issue, so a full
    // budget after all four stages means nothing issued this cycle.
    if (preRetire == cell.retirePos && preDispatch == cell.dispatchPos &&
        preFetch == cell.fetchPos && preStall == cell.fetchStallUntil &&
        cell.issueTokens == cell.cfg.fetchWidth) {
        idleJump(cell);
    }
}

void
BatchedPipelineSim::idleJump(Cell &cell)
{
    // The cycle that just ran was provably idle: no stage moved a
    // cursor, nothing issued, and the fetch stall horizon did not
    // move. Every remaining blocker is purely time-driven, so the
    // earliest cycle at which anything can change is the minimum of:
    //
    //  - the ROB head's completion cycle (an un-issued head is
    //    covered by its waiting-list wake bound instead);
    //  - the head store's forward-ready cycle (realignment pipe);
    //  - the earliest MSHR release (frees miss capacity for both the
    //    issue and the store-drain path);
    //  - the fetch stall horizon (icache fill / mispredict redirect);
    //  - every cached wake bound on the waiting list (sound lower
    //    bounds on the next possible issue; wake == 0 entries sit
    //    beyond the in-order lookahead and cannot issue before the
    //    list front moves, which is itself an event above, and
    //    wake == notReady entries wait on a producer issuing, also
    //    an event above).
    //
    // Jumping now to just before that minimum is unobservable except
    // for fetchStallCycles, which the oracle increments once per
    // halted cycle - replicated arithmetically below. Blockers that
    // can clear without a timestamp (port or token shortage, store
    // aliasing, MSHR-full issue retries) always leave a wake bound of
    // now + 1, which forbids the jump.
    std::uint64_t t = notReady;
    if (cell.retirePos < cell.dispatchPos) {
        const Slot &head = cell.slots[cell.retirePos & cell.slotMask];
        if (head.state == State::Issued) {
            if (head.readyCycle > cell.now) {
                t = head.readyCycle;
            } else if (!cell.storeQ.empty() &&
                       cell.storeQ.front().fwdReady > cell.now &&
                       cell.storeQ.front().id == winRec(cell.retirePos).id) {
                t = cell.storeQ.front().fwdReady;
            }
        }
    }
    for (auto c : cell.mshr)
        t = std::min(t, c);  // post-erase entries are all > now
    if (cell.fetchStallUntil > cell.now)
        t = std::min(t, cell.fetchStallUntil);
    for (const auto seq : cell.waiting) {
        const std::uint64_t wake = cell.slots[seq & cell.slotMask].wake;
        if (wake == 0 || wake >= wakeMshrFull)
            continue;
        if (wake <= cell.now)
            return;  // stale bound; take the next cycle normally
        t = std::min(t, wake);
    }
    if (t == notReady || t <= cell.now + 1)
        return;

    const std::uint64_t delta = t - cell.now - 1;
    if (cell.haltBranchId)
        cell.res.fetchStallCycles += delta;
    else if (cell.fetchStallUntil > cell.now + 1)
        cell.res.fetchStallCycles += std::min(
            delta, cell.fetchStallUntil - (cell.now + 1));
    cell.now = t - 1;
}

void
BatchedPipelineSim::retireStage(Cell &cell)
{
    int retired = 0;
    while (cell.retirePos < cell.dispatchPos &&
           retired < cell.cfg.retireWidth) {
        Slot &head = cell.slots[cell.retirePos & cell.slotMask];
        const InstrRecord &rec = winRec(cell.retirePos);
        if (head.state != State::Issued || head.readyCycle > cell.now)
            break;

        if (rec.isStore()) {
            // Drain the store: needs a write port and, on a miss, an
            // MSHR. The store buffer hides the fill latency.
            if (cell.writePorts <= 0)
                break;
            // Find the SQ entry (always the oldest).
            assert(!cell.storeQ.empty() &&
                   cell.storeQ.front().id == rec.id);
            if (cell.storeQ.front().fwdReady > cell.now)
                break;  // store pipeline (realignment) still busy
            bool would_miss =
                !cell.mem.l1d().probe(cell.mem.l1d().lineAddr(rec.addr));
            if (would_miss &&
                cell.mshr.size() >=
                    static_cast<std::size_t>(cell.cfg.missMax)) {
                break;
            }
            auto acc = cell.mem.dataAccess(rec.addr, rec.size, true,
                                           cell.now);
            if (acc.l1Miss)
                cell.mshr.push_back(cell.now + acc.extraLatency);
            if (acc.crossedLine) {
                ++cell.res.lineCrossings;
                if (!cell.cfg.mem.parallelBanks && cell.writePorts >= 2)
                    --cell.writePorts;
            }
            --cell.writePorts;
            cell.storeQ.erase(cell.storeQ.begin());
        }

        if (auto *ctr = cell.renameCounter(destRegFile(rec.cls)))
            --*ctr;
        ++cell.res.instrs;
        ++cell.retirePos;
        ++retired;
    }
}

bool
BatchedPipelineSim::tryIssue(Cell &cell, std::uint64_t seq)
{
    Slot &slot = cell.slots[seq & cell.slotMask];
    const InstrRecord &rec = winRec(seq);
    // Default retry bound: transient resource shortage, recheck next
    // cycle (tokens and ports refresh, queues can drain).
    slot.wake = cell.now + 1;
    // Producer check first (the oracle checks unit tokens first, but
    // every failure path up to the issue commit is side-effect-free,
    // so the order is unobservable): a producer-blocked slot yields a
    // cacheable wake bound, a token-blocked one does not.
    std::uint64_t depWake = 0;
    for (auto d : rec.deps) {
        if (d)
            depWake = std::max(depWake, cell.readyCycleOf(d));
    }
    if (depWake > cell.now) {
        // Sound until any dep's ring entry is rewritten; register
        // this slot as a watcher on every index read so setReady
        // zeroes the bound when that happens.
        for (auto d : rec.deps) {
            if (d)
                cell.watchDep(d, seq);
        }
        slot.wake = depWake;
        return false;
    }
    int unit = int(unitFor(rec.cls));
    if (cell.unitTokens[unit] <= 0)
        return false;

    if (rec.isLoad()) {
        if (cell.readPorts <= 0)
            return false;
        // Store-to-load aliasing against older, undrained stores.
        const StoreEntry *blocker = nullptr;
        const StoreEntry *forwarder = nullptr;
        for (const auto &se : cell.storeQ) {
            if (se.id >= rec.id)
                break;
            std::uint64_t s_end = se.addr + se.size;
            std::uint64_t l_end = rec.addr + rec.size;
            bool overlap = se.addr < l_end && rec.addr < s_end;
            if (!overlap)
                continue;
            bool contains = se.addr <= rec.addr && l_end <= s_end;
            if (contains && se.issued && se.fwdReady <= cell.now) {
                forwarder = &se;     // youngest containing store wins
                blocker = nullptr;
            } else {
                blocker = &se;
                forwarder = nullptr;
            }
        }
        if (blocker) {
            // The classification of this load is decided by the last
            // overlapping older store, and drains (front-first) never
            // remove it before it issues - so the earliest the
            // verdict can change is a computable event. An unissued
            // blocker flips at its own issue (a setReady on its id,
            // so the watch fires); an issued containing blocker
            // becomes a forwarder exactly at fwdReady. A partial
            // overlap persists until the store drains, which has no
            // timestamp - retry next cycle as before.
            if (!blocker->issued) {
                cell.watchDep(blocker->id, seq);
                slot.wake = notReady;
            } else if (blocker->addr <= rec.addr &&
                       rec.addr + rec.size <=
                           blocker->addr + blocker->size &&
                       blocker->fwdReady > cell.now) {
                slot.wake = blocker->fwdReady;
            }
            return false;
        }

        bool runtime_unaligned = (rec.addr & 15) != 0 &&
            trace::isUnalignedVecMem(rec.cls);
        int extra = 0;
        if (forwarder) {
            ++cell.res.storeForwards;
        } else {
            auto &l1d = cell.mem.l1d();
            // Mirrors PipelineSim via the shared
            // CoreConfig::crossingLoadNeedsSecondPort() rule, run
            // before the cache access so a port-starved retry cannot
            // touch cache state.
            bool crosses =
                l1d.lineAddr(rec.addr) !=
                l1d.lineAddr(rec.addr + rec.size - 1);
            if (crosses && cell.cfg.crossingLoadNeedsSecondPort() &&
                cell.readPorts < 2) {
                return false;
            }
            bool would_miss =
                !l1d.probe(l1d.lineAddr(rec.addr)) ||
                (crosses &&
                 !l1d.probe(l1d.lineAddr(rec.addr + rec.size - 1)));
            if (would_miss &&
                cell.mshr.size() >=
                    static_cast<std::size_t>(cell.cfg.missMax)) {
                // Only a full MSHR file blocks this load (no older
                // overlapping store reached this far): idle-stable,
                // so it does not veto an idle jump.
                slot.wake = wakeMshrFull;
                return false;
            }
            auto acc = cell.mem.dataAccess(rec.addr, rec.size, false,
                                           cell.now);
            extra = acc.extraLatency;
            if (acc.crossedLine) {
                ++cell.res.lineCrossings;
                if (cell.cfg.crossingLoadNeedsSecondPort())
                    --cell.readPorts;
            }
            if (acc.l1Miss)
                cell.mshr.push_back(cell.now + cell.cfg.lat.load + extra);
        }
        if (runtime_unaligned) {
            ++cell.res.unalignedVecOps;
            extra += cell.cfg.lat.unalignedLoadExtra;
        }
        --cell.readPorts;
        slot.readyCycle = cell.now + cell.cfg.lat.load + extra;
    } else if (rec.isStore()) {
        // Address generation / data hand-off to the store queue.
        bool runtime_unaligned = (rec.addr & 15) != 0 &&
            trace::isUnalignedVecMem(rec.cls);
        int extra = 0;
        if (runtime_unaligned) {
            ++cell.res.unalignedVecOps;
            extra = cell.cfg.lat.unalignedStoreExtra;
        }
        slot.readyCycle = cell.now + 1;
        for (auto &se : cell.storeQ) {
            if (se.id == rec.id) {
                se.issued = true;
                se.fwdReady = cell.now + 1 + extra;
                break;
            }
        }
    } else if (rec.cls == InstrClass::Branch) {
        std::uint64_t resolve = cell.now + cell.cfg.lat.branchResolve;
        slot.readyCycle = resolve;
        ++cell.res.branches;
        if (mispredAt(seq)) {
            ++cell.res.mispredicts;
            cell.fetchStallUntil = std::max(
                cell.fetchStallUntil,
                resolve + cell.cfg.lat.mispredictPenalty);
            if (cell.haltBranchId == rec.id)
                cell.haltBranchId = 0;
        }
    } else {
        slot.readyCycle = cell.now + cell.classLatency(rec.cls);
    }

    --cell.unitTokens[unit];
    --cell.issueTokens;
    slot.state = State::Issued;
    cell.setReady(rec.id, slot.readyCycle);
    if (rec.cls == InstrClass::Branch)
        --cell.waitingBranch;
    else
        --cell.waitingNonBranch;
    return true;
}

void
BatchedPipelineSim::issueStage(Cell &cell)
{
    // Scan only the Waiting slots (in ROB order): tryIssue is
    // side-effect-free for slots it is never called on, so skipping
    // Issued slots reproduces PipelineSim's full-ROB walk exactly.
    auto &waiting = cell.waiting;
    const std::size_t n = waiting.size();
    std::size_t keep = 0;
    std::size_t i = 0;
    if (cell.cfg.outOfOrder) {
        for (; i < n; ++i) {
            if (cell.issueTokens <= 0)
                break;
            const std::uint64_t seq = waiting[i];
            const std::uint64_t wake =
                cell.slots[seq & cell.slotMask].wake;
            if ((wake > cell.now && wake != wakeMshrFull) ||
                !tryIssue(cell, seq))
                waiting[keep++] = seq;
        }
    } else {
        // Near-program-order issue with a bounded static-scheduling
        // window (see CoreConfig::inorderLookahead); the lookahead
        // counts Waiting slots examined, as PipelineSim's walk does -
        // a wake-skipped slot was still examined by the oracle's walk,
        // so it consumes lookahead all the same.
        int seen = 0;
        for (; i < n; ++i) {
            if (cell.issueTokens <= 0)
                break;
            const std::uint64_t seq = waiting[i];
            const std::uint64_t wake =
                cell.slots[seq & cell.slotMask].wake;
            if ((wake > cell.now && wake != wakeMshrFull) ||
                !tryIssue(cell, seq))
                waiting[keep++] = seq;
            if (++seen >= cell.cfg.inorderLookahead) {
                ++i;
                break;
            }
        }
    }
    if (keep != i) {
        for (; i < n; ++i)
            waiting[keep++] = waiting[i];
        waiting.resize(keep);
    }
}

void
BatchedPipelineSim::dispatchStage(Cell &cell)
{
    int dispatched = 0;
    while (cell.dispatchPos < cell.fetchPos &&
           dispatched < cell.cfg.fetchWidth) {
        const InstrRecord &rec = winRec(cell.dispatchPos);
        if (cell.dispatchPos - cell.retirePos >=
            static_cast<std::uint64_t>(cell.cfg.inflight)) {
            break;
        }
        bool is_branch = rec.cls == InstrClass::Branch;
        if (is_branch && cell.waitingBranch >= cell.cfg.branchQ)
            break;
        if (!is_branch && cell.waitingNonBranch >= cell.cfg.issueQ)
            break;
        RegFile rf = destRegFile(rec.cls);
        int *ctr = cell.renameCounter(rf);
        if (ctr && *ctr >= cell.renameLimit(rf))
            break;
        if (rec.isStore()) {
            if (cell.storeQ.size() >=
                static_cast<std::size_t>(cell.cfg.storeQ)) {
                break;
            }
            StoreEntry se;
            se.id = rec.id;
            se.addr = rec.addr;
            se.size = rec.size;
            cell.storeQ.push_back(se);
        }
        if (ctr)
            ++*ctr;
        if (is_branch)
            ++cell.waitingBranch;
        else
            ++cell.waitingNonBranch;
        cell.setReady(rec.id, notReady);
        cell.waiting.push_back(cell.dispatchPos);
        ++cell.dispatchPos;
        ++dispatched;
    }
}

void
BatchedPipelineSim::fetchStage(Cell &cell)
{
    if (cell.now < cell.fetchStallUntil || cell.haltBranchId) {
        ++cell.res.fetchStallCycles;
        return;
    }
    int fetched = 0;
    while (cell.fetchPos < cell.fed && fetched < cell.cfg.fetchWidth &&
           cell.fetchPos - cell.dispatchPos <
               static_cast<std::uint64_t>(cell.cfg.ibuffer)) {
        const InstrRecord &rec = winRec(cell.fetchPos);

        // Instruction-cache access per new line.
        std::uint64_t line = cell.mem.l1i().lineAddr(rec.pc);
        if (line != cell.lastFetchLine) {
            auto acc = cell.mem.fetchAccess(rec.pc, cell.now);
            cell.lastFetchLine = line;
            if (acc.extraLatency > 0) {
                cell.fetchStallUntil = cell.now + acc.extraLatency;
                return;
            }
        }

        Slot &slot = cell.slots[cell.fetchPos & cell.slotMask];
        slot.state = State::Waiting;
        slot.readyCycle = 0;
        slot.wake = 0;

        if (rec.cls == InstrClass::Branch && mispredAt(cell.fetchPos)) {
            cell.haltBranchId = rec.id;
            ++cell.fetchPos;
            return;  // fetch halts behind the mispredict
        }
        ++cell.fetchPos;
        ++fetched;
    }
}

} // namespace uasim::timing
