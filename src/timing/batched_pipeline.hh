/**
 * @file
 * Batched multi-configuration replay: one decoded trace record
 * advances N independent timing-cell states in a single pass.
 *
 * A BatchedPipelineSim holds one machine state per CoreConfig of a
 * sweep group and consumes the instruction stream exactly once,
 * instead of the per-cell path's one full replay per configuration.
 * Every cell's simulated counters are bit-identical to feeding the
 * same stream into a standalone PipelineSim with the same config
 * (tests/batched_replay_test.cc is the differential harness that
 * locks this cell for cell; the per-cell path stays available as the
 * reference oracle behind SweepRunner's ReplayMode::PerCell).
 *
 * Why it is faster than N PipelineSims, while staying bit-identical:
 *
 *  - **Shared record window.** All cells consume the same records in
 *    the same order, and each cell's pending/fetch-buffer/ROB windows
 *    are contiguous ranges of that one sequence (fetch, dispatch and
 *    retire all pop from the front). So the stream is materialized
 *    once in a power-of-two window ring and each cell keeps three
 *    cursors into it, instead of copying every record through three
 *    std::deques per cell.
 *  - **Stream-pure branch prediction.** PipelineSim queries and
 *    trains the gshare predictor exactly once per record, in fetch
 *    (= program) order, regardless of cycle timing - so the predicted
 *    direction of every branch is a pure function of the stream. The
 *    batch precomputes one mispredict bit per record with a single
 *    shared predictor instead of running one table per cell. (The
 *    I-cache and data hierarchy are NOT shareable - they couple
 *    through the unified L2, whose contents depend on per-cell issue
 *    timing - so each cell owns a full MemoryHierarchy.)
 *  - **Waiting-list issue scan.** PipelineSim's issue stage walks the
 *    whole ROB (up to cfg.inflight entries) every cycle even when
 *    almost all slots are already issued. Only Waiting slots can
 *    issue, tryIssue is side-effect-free for slots it is never called
 *    on, and dispatch bounds the waiting population by issueQ +
 *    branchQ - so the batch scans a compact ordered list of waiting
 *    slots (same slots, same order, same per-cycle token state:
 *    bit-identical decisions at a fraction of the memory traffic).
 *  - **Wakeup-cached issue attempts.** A failed tryIssue is pure, so
 *    skipping a retry that is certain to fail again is unobservable.
 *    When a slot is blocked on producers, the max producer ready
 *    cycle is a sound earliest-retry bound - sound *until* any of
 *    the dep's ready-ring entries is rewritten (a producer issuing,
 *    or an aliasing id overwriting the tagged slot, which makes the
 *    dep read as ready immediately). Every rewrite goes through
 *    setReady, so each cached bound registers its ROB slot as a
 *    watcher on the ring indices it read, and setReady zeroes the
 *    wake of exactly those watchers (push invalidation: one producer
 *    issuing wakes just its own consumers; a watcher-list overflow
 *    degrades to flushing every cached bound, which is always safe).
 *    Resource-blocked slots (tokens, ports, store queue) retry next
 *    cycle as before. Net effect: the oracle's ~16 failed issue
 *    attempts per cycle collapse to one integer compare each.
 *  - **Idle-cycle event jump.** Under long-latency stalls (an L2 or
 *    memory miss pins the ROB head for hundreds of cycles) most
 *    cycles move no cursor and issue nothing. After such a provably
 *    idle cycle every remaining blocker is time-driven, so the clock
 *    jumps to the earliest of head completion, store forward-ready,
 *    MSHR release, fetch-stall horizon and cached wake bounds,
 *    accruing the skipped fetch-stall cycles arithmetically. Any
 *    blocker that can clear without a timestamp leaves a wake bound
 *    of now + 1, which forbids the jump (see idleJump()).
 *
 * Field-table rule (core/result.hh): a counter added to SimResult
 * must be accumulated here as well as in PipelineSim, and
 * batched_replay_test compares the two engines over the full
 * simResultFields() table - a counter wired into only one engine
 * fails the harness instead of silently diverging.
 */

#ifndef UASIM_TIMING_BATCHED_PIPELINE_HH
#define UASIM_TIMING_BATCHED_PIPELINE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "mem/hierarchy.hh"
#include "timing/branch_pred.hh"
#include "timing/config.hh"
#include "timing/model.hh"
#include "timing/results.hh"
#include "trace/sink.hh"

namespace uasim::timing {

class BatchedPipelineSim : public BatchedTimingModel
{
  public:
    /**
     * One machine state per entry of @p cfgs (duplicates allowed;
     * every cell is simulated independently). Precondition: every
     * entry is a "pipeline" cell and all share one bpredLog2Entries
     * (the shared mispredict precompute runs a single predictor) -
     * makeBatchedTimingModel() routes any other group to the generic
     * multiplexer instead of here.
     */
    explicit BatchedPipelineSim(const std::vector<CoreConfig> &cfgs);

    /// TraceSink hook: feed one record to every cell.
    void append(const trace::InstrRecord &rec) override;

    /// Feed a decoded block to every cell, cell-major per chunk so a
    /// cell's working state stays cache-hot across the whole chunk.
    void appendBlock(const trace::InstrRecord *recs,
                     std::size_t n) override;

    /**
     * Drain every cell and return per-cell results, in constructor
     * config order. Idempotent.
     */
    std::vector<SimResult> finalizeAll() override;

    int cellCount() const override { return int(cells_.size()); }

  private:
    enum class State : std::uint8_t { Waiting, Issued };

    /// Per-cell view of one in-flight record (the record itself lives
    /// once in the shared window).
    struct Slot {
        std::uint64_t readyCycle = 0;
        /// Cached earliest-retry cycle while Waiting. 0 = no cached
        /// bound, run the real checks; notReady = blocked until a
        /// watched ready-ring index is rewritten (setReady zeroes
        /// this through the watcher list); wakeMshrFull = see below.
        std::uint64_t wake = 0;
        State state = State::Waiting;
    };

    struct StoreEntry {
        std::uint64_t id = 0;
        std::uint64_t addr = 0;
        std::uint64_t fwdReady = 0;
        unsigned size = 0;
        bool issued = false;
    };

    struct ReadyEntry {
        std::uint64_t id = 0;
        std::uint64_t cycle = 0;
    };

    /// Watcher list of one ready-ring index: the ROB seqs whose
    /// cached wake bound must be dropped when the index is rewritten.
    /// Sized for an in-flight fan-out of 3 consumers; beyond that the
    /// overflow flag makes the next rewrite flush every cached bound
    /// of the cell (always safe, just slower).
    struct RingWatch {
        std::array<std::uint64_t, 3> seq{};
        std::uint8_t n = 0;
        bool overflow = false;
    };

    /**
     * One independent machine. Its pending / fetch-buffer / ROB
     * contents are the contiguous record ranges [fetchPos, fed),
     * [dispatchPos, fetchPos) and [retirePos, dispatchPos) of the
     * shared sequence.
     */
    struct Cell {
        explicit Cell(const CoreConfig &config);

        CoreConfig cfg;
        mem::MemoryHierarchy mem;

        std::uint64_t now = 0;
        std::uint64_t fed = 0;        //!< records fed to this cell
        std::uint64_t fetchPos = 0;   //!< first un-fetched record
        std::uint64_t dispatchPos = 0;
        std::uint64_t retirePos = 0;
        std::size_t pendingCap = 0;   //!< 2 * cfg.ibuffer (feed rule)

        std::vector<Slot> slots;      //!< ring over [retirePos, fetchPos)
        std::size_t slotMask = 0;
        std::vector<ReadyEntry> readyRing;
        std::size_t ringMask = 0;
        std::vector<StoreEntry> storeQ;
        std::vector<std::uint64_t> mshr;
        /// Seqs of Waiting ROB slots, in ROB (= program) order.
        std::vector<std::uint64_t> waiting;
        /// Per-ready-ring-index watcher lists for push invalidation
        /// of cached wake bounds.
        std::vector<RingWatch> ringWatch;

        std::uint64_t fetchStallUntil = 0;
        std::uint64_t haltBranchId = 0;
        std::uint64_t lastFetchLine = ~std::uint64_t{0};

        int gprInflight = 0;
        int fprInflight = 0;
        int vprInflight = 0;
        int waitingNonBranch = 0;
        int waitingBranch = 0;

        int unitTokens[numUnits] = {};
        int readPorts = 0;
        int writePorts = 0;
        int issueTokens = 0;

        SimResult res;

        int renameLimit(RegFile rf) const;
        int *renameCounter(RegFile rf);
        int classLatency(trace::InstrClass cls) const;

        std::uint64_t
        readyCycleOf(std::uint64_t id) const
        {
            if (!id)
                return 0;
            const auto &e = readyRing[id & ringMask];
            return e.id == id ? e.cycle : 0;
        }

        void
        setReady(std::uint64_t id, std::uint64_t cycle)
        {
            const auto idx = id & ringMask;
            auto &e = readyRing[idx];
            e.id = id;
            e.cycle = cycle;
            RingWatch &wt = ringWatch[idx];
            if (wt.overflow) {
                // A past registration did not fit: conservatively
                // drop every cached bound (a zero wake only forces a
                // re-run of the real checks, never a wrong skip).
                for (auto s : waiting)
                    slots[s & slotMask].wake = 0;
                wt.overflow = false;
                wt.n = 0;
            } else if (wt.n) {
                // A stale watcher (its slot issued, retired or was
                // reused since) at worst re-zeroes a reused slot's
                // wake - also just a forced recheck.
                for (std::uint8_t k = 0; k < wt.n; ++k)
                    slots[wt.seq[k] & slotMask].wake = 0;
                wt.n = 0;
            }
        }

        /// Register @p seq's cached wake bound as depending on
        /// producer id @p d's ready-ring index.
        void
        watchDep(std::uint64_t d, std::uint64_t seq)
        {
            RingWatch &wt = ringWatch[d & ringMask];
            for (std::uint8_t k = 0; k < wt.n; ++k) {
                if (wt.seq[k] == seq)
                    return;
            }
            if (wt.n < wt.seq.size())
                wt.seq[wt.n++] = seq;
            else
                wt.overflow = true;
        }
    };

    static constexpr std::uint64_t notReady = ~std::uint64_t{0};

    /// Wake sentinel for a load blocked only by a full MSHR file: it
    /// must re-run the real checks every executed cycle (another
    /// access can bring its line in, removing the miss), but during a
    /// provably idle window the cache cannot change, so the block
    /// provably holds until the earliest MSHR release - which is
    /// already an idleJump candidate, so the sentinel simply does not
    /// veto the jump the way a now + 1 bound does.
    static constexpr std::uint64_t wakeMshrFull = ~std::uint64_t{0} - 1;

    /// Same floor as PipelineSim::minRingSize: the producer-ready ring
    /// is bit_ceil(max(1024, 2 * inflight)) so id aliasing behaviour -
    /// part of the simulated semantics - matches the oracle exactly.
    static constexpr std::size_t minRingSize = 1024;

    /// appendBlock chunk size; the shared window is sized so a whole
    /// chunk can be staged past the laggiest cell's retire cursor.
    static constexpr std::size_t chunkRecords = 256;

    const trace::InstrRecord &
    winRec(std::uint64_t seq) const
    {
        return window_[seq & winMask_];
    }

    bool
    mispredAt(std::uint64_t seq) const
    {
        return windowMispred_[seq & winMask_] != 0;
    }

    void stageRecord(const trace::InstrRecord &rec);
    void advanceCell(Cell &cell, std::uint64_t fedEnd);

    void cycleCell(Cell &cell);
    void idleJump(Cell &cell);
    void retireStage(Cell &cell);
    void issueStage(Cell &cell);
    void dispatchStage(Cell &cell);
    void fetchStage(Cell &cell);
    bool tryIssue(Cell &cell, std::uint64_t seq);

    std::vector<trace::InstrRecord> window_;  //!< shared record ring
    std::vector<std::uint8_t> windowMispred_; //!< per-record mispredict
    std::size_t winMask_ = 0;
    std::uint64_t feedSeq_ = 0;  //!< total records appended

    BranchPredictor bpred_;  //!< shared: outcomes are stream-pure

    std::vector<Cell> cells_;
    bool finalized_ = false;
};

} // namespace uasim::timing

#endif // UASIM_TIMING_BATCHED_PIPELINE_HH
