/**
 * @file
 * Out-of-order timing backend (the "ooo" TimingModel): a ROB /
 * issue-queue split with store-set memory-dependence prediction.
 *
 * Where PipelineSim models the paper's Table II machines with a
 * single in-flight window walked by every stage, this backend keeps
 * the reorder buffer (program-order retirement) and the issue queue
 * (the pool of not-yet-issued instructions) as separate structures:
 * issue scans only the waiting pool, fully out of order, under its
 * own issue width (CoreConfig::issueWidth; 0 couples it to
 * fetchWidth). The model is always out of order - it ignores
 * CoreConfig::outOfOrder/inorderLookahead, which belong to the
 * "pipeline" backend's static-scheduling approximation.
 *
 * Memory dependences use a store-set predictor (Chrysos & Emer,
 * simplified): an untrained load speculates past older overlapping
 * stores it cannot forward from, paying a deterministic
 * memReplayPenalty for the ordering violation and training the SSIT
 * so later instances of the load/store pair wait instead. The
 * "pipeline" backend's behavior corresponds to an always-predicted
 * dependence (every aliasing load waits).
 *
 * Stream-pure discipline shared with every backend: the fetch stage
 * predicts and trains the gshare predictor exactly once per branch,
 * in program order, and halts behind mispredicts - so instruction,
 * branch, mispredict and unaligned-op counts are identical to the
 * "pipeline" backend on the same stream while cycle timing differs
 * (tests/timing_model_test.cc locks this).
 */

#ifndef UASIM_TIMING_OOO_PIPELINE_HH
#define UASIM_TIMING_OOO_PIPELINE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "mem/hierarchy.hh"
#include "timing/branch_pred.hh"
#include "timing/config.hh"
#include "timing/model.hh"
#include "timing/results.hh"

namespace uasim::timing {

class OoOPipelineSim : public TimingModel
{
  public:
    explicit OoOPipelineSim(const CoreConfig &cfg);

    /// TraceSink hook: stream one instruction into the machine.
    void append(const trace::InstrRecord &rec) override { feed(rec); }

    /// Feed one instruction (program order).
    void feed(const trace::InstrRecord &rec);

    /// Drain the machine and return the final statistics.
    SimResult finalize() override;

    const CoreConfig &config() const override { return cfg_; }

    /// Cycles elapsed so far (monotonic during feeding).
    std::uint64_t now() const { return now_; }

    /// Memory-order violations taken (loads that speculated past an
    /// older overlapping store and paid memReplayPenalty). Not part
    /// of SimResult: it is a backend-internal diagnostic, observable
    /// in cycles either way.
    std::uint64_t memOrderReplays() const { return memOrderReplays_; }

  private:
    enum class State : std::uint8_t { Waiting, Issued };

    struct Slot {
        trace::InstrRecord rec;
        std::uint64_t readyCycle = 0;
        State state = State::Waiting;
        bool mispredict = false;
    };

    struct StoreEntry {
        std::uint64_t id = 0;
        std::uint64_t pc = 0;
        std::uint64_t addr = 0;
        std::uint64_t fwdReady = 0;  //!< cycle data becomes forwardable
        unsigned size = 0;
        bool issued = false;
    };

    void cycle();
    void retireStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();

    bool tryIssue(Slot &slot);

    std::uint64_t
    readyCycleOf(std::uint64_t id) const
    {
        if (!id)
            return 0;
        const auto &e = readyRing_[id & ringMask_];
        return e.id == id ? e.cycle : 0;
    }

    void
    setReady(std::uint64_t id, std::uint64_t cycle)
    {
        auto &e = readyRing_[id & ringMask_];
        e.id = id;
        e.cycle = cycle;
    }

    bool depsReady(const trace::InstrRecord &rec) const;

    std::size_t
    ssitIndex(std::uint64_t pc) const
    {
        return std::size_t(pc >> 2) & (ssit_.size() - 1);
    }

    /// Allocate a store-set id (cycling through [1, tableSize)).
    std::uint32_t allocSet();

    /// Record a load/store ordering violation: merge both PCs into
    /// one store set so the next instance of the pair waits.
    void trainStoreSet(std::uint64_t load_pc, std::uint64_t store_pc);

    static constexpr std::uint64_t notReady = ~std::uint64_t{0};

    /// Same producer-ready-ring floor as PipelineSim::minRingSize.
    static constexpr std::size_t minRingSize = 1024;

    struct ReadyEntry {
        std::uint64_t id = 0;
        std::uint64_t cycle = 0;
    };

    CoreConfig cfg_;
    mem::MemoryHierarchy mem_;
    BranchPredictor bpred_;
    int issueWidth_ = 1;  //!< resolved cfg.issueWidth (0 -> fetchWidth)

    std::uint64_t now_ = 0;

    std::deque<trace::InstrRecord> pending_;  //!< staged by feed()
    std::deque<Slot> fetchBuf_;               //!< fetched, not dispatched
    std::deque<Slot> rob_;                    //!< dispatched, not retired
    std::uint64_t retiredCount_ = 0;  //!< rob_[seq - retiredCount_]
    std::uint64_t dispatchedCount_ = 0;
    /// The issue queue: dispatch seqs of Waiting ROB entries, program
    /// order. Entries leave at issue; retire never scans this.
    std::vector<std::uint64_t> iq_;
    std::vector<ReadyEntry> readyRing_;
    std::size_t ringMask_ = 0;
    std::vector<StoreEntry> storeQ_;
    std::vector<std::uint64_t> mshr_;         //!< miss completion cycles

    // Store-set predictor state: the SSIT maps pc -> set id (0 =
    // untrained). A load whose set matches an older undrained
    // store's set waits; the store queue itself plays the LFST role
    // (the blocker scan already names the precise in-flight store).
    std::vector<std::uint32_t> ssit_;
    std::uint32_t nextSet_ = 0;
    std::uint64_t memOrderReplays_ = 0;

    // Fetch redirection state.
    std::uint64_t fetchStallUntil_ = 0;
    std::uint64_t haltBranchId_ = 0;
    std::uint64_t lastFetchLine_ = ~std::uint64_t{0};

    // Rename occupancy.
    int gprInflight_ = 0;
    int fprInflight_ = 0;
    int vprInflight_ = 0;

    // Issue-queue occupancy (waiting entries only).
    int waitingNonBranch_ = 0;
    int waitingBranch_ = 0;

    // Per-cycle resource tokens.
    int unitTokens_[numUnits] = {};
    int readPorts_ = 0;
    int writePorts_ = 0;
    int issueTokens_ = 0;

    SimResult res_;
    bool finalized_ = false;

    int renameLimit(RegFile rf) const;
    int *renameCounter(RegFile rf);
    int classLatency(trace::InstrClass cls) const;
};

} // namespace uasim::timing

#endif // UASIM_TIMING_OOO_PIPELINE_HH
