/**
 * @file
 * TimingModel: the trace-replay contract every timing backend
 * implements, and the factory that selects a backend by name.
 *
 * A timing backend consumes an address-normalized InstrRecord stream
 * (it is a TraceSink, so emulation, trace buffers and the persistent
 * store all feed it the same way) and produces one SimResult - the
 * simResultFields() counter table of core/result.hh. Everything above
 * this interface (SweepRunner, the benches, bench_util's shared
 * flags) is model-agnostic: it selects a backend through
 * CoreConfig::model and the makeTimingModel()/makeBatchedTimingModel()
 * factories, never by naming a concrete simulator class.
 *
 * Backends:
 *   "pipeline"  PipelineSim (timing/pipeline.hh) - the Turandot-like
 *               in-flight-window model of the paper's Table II runs,
 *               with BatchedPipelineSim as its one-pass multi-cell
 *               engine.
 *   "ooo"       OoOPipelineSim (timing/ooo_pipeline.hh) - an
 *               out-of-order core with a ROB/issue-queue split, a
 *               store-set memory-dependence predictor, and a
 *               decoupled issue width.
 *
 * Stream-pure invariants shared by every backend: the fetch stage
 * predicts and trains the branch predictor exactly once per branch,
 * in program order, so instruction counts, branch counts, mispredict
 * bits and unaligned-op counts are pure functions of the stream -
 * identical across backends while cycle timing differs
 * (tests/timing_model_test.cc is the cross-model differential
 * harness).
 */

#ifndef UASIM_TIMING_MODEL_HH
#define UASIM_TIMING_MODEL_HH

#include <memory>
#include <string>
#include <vector>

#include "timing/config.hh"
#include "timing/results.hh"
#include "trace/sink.hh"

namespace uasim::timing {

/**
 * One timing backend instance simulating one core configuration.
 * Feed the record stream through the TraceSink interface (append /
 * appendBlock), then finalize() exactly once to drain the machine and
 * read the counter table.
 */
class TimingModel : public trace::TraceSink
{
  public:
    ~TimingModel() override = default;

    /// Drain the machine and return the final statistics. Idempotent.
    virtual SimResult finalize() = 0;

    /// The configuration this model simulates.
    virtual const CoreConfig &config() const = 0;
};

/**
 * One batched replay engine advancing N independent timing cells from
 * a single pass over the record stream. Per-cell results are
 * bit-identical to feeding the same stream into N standalone
 * TimingModels of the same configs.
 */
class BatchedTimingModel : public trace::TraceSink
{
  public:
    ~BatchedTimingModel() override = default;

    /// Drain every cell and return per-cell results, in constructor
    /// config order. Idempotent.
    virtual std::vector<SimResult> finalizeAll() = 0;

    virtual int cellCount() const = 0;
};

/// Registered backend names, in presentation order.
const std::vector<std::string> &timingModelNames();

/// True when @p name names a registered backend.
bool isTimingModel(const std::string &name);

/**
 * Construct the backend selected by @p cfg.model.
 * @throws std::invalid_argument on an unknown model name (callers
 * with a command line validate through isTimingModel first and exit 2).
 */
std::unique_ptr<TimingModel> makeTimingModel(const CoreConfig &cfg);

/**
 * Construct a batched engine for @p cfgs (one cell per entry;
 * duplicates allowed). A uniform all-"pipeline" group gets the
 * optimized one-pass BatchedPipelineSim; any other group falls back
 * to a generic multiplexer that feeds one TimingModel per cell
 * cell-major - trivially bit-identical to the per-cell path, just
 * without the shared-window speedups.
 * @throws std::invalid_argument if any entry names an unknown model.
 */
std::unique_ptr<BatchedTimingModel>
makeBatchedTimingModel(const std::vector<CoreConfig> &cfgs);

} // namespace uasim::timing

#endif // UASIM_TIMING_MODEL_HH
