/**
 * @file
 * Processor configurations (the paper's Table II) and per-class
 * latencies.
 */

#ifndef UASIM_TIMING_CONFIG_HH
#define UASIM_TIMING_CONFIG_HH

#include <string>

#include "mem/hierarchy.hh"
#include "trace/instr.hh"

namespace uasim::timing {

/// Execution-latency knobs (cycles).
struct LatencyConfig {
    int intAlu = 1;
    int intMul = 3;
    int fpAlu = 6;
    int branchResolve = 1;
    int vecSimple = 2;
    int vecComplex = 4;
    int vecPerm = 2;
    /// Load-to-use latency on an L1-D hit; the paper fixes this at 4
    /// for both aligned and unaligned accesses in the upper-bound runs.
    int load = 4;
    /**
     * Extra cycles charged to a dynamically unaligned lvxu (Fig 9
     * sweeps this over 0/1/2/4/6). The paper's proposed realignment
     * network costs +1.
     */
    int unalignedLoadExtra = 0;
    /// Same for stvxu; the proposed network costs +2.
    int unalignedStoreExtra = 0;
    /// Front-end refill after a mispredicted branch.
    int mispredictPenalty = 12;
};

/// Functional-unit pools (Table II "Units" rows).
struct UnitConfig {
    int fx = 2;      //!< scalar integer
    int fp = 1;      //!< scalar float
    int ls = 1;      //!< load/store
    int br = 1;      //!< branch
    int vi = 1;      //!< vector simple integer
    int vperm = 1;   //!< vector permute
    int vcmplx = 1;  //!< vector complex
};

/// One simulated core (one column of Table II).
struct CoreConfig {
    std::string name = "2w";
    /**
     * Timing backend simulating this core (the makeTimingModel()
     * factory key, see timing/model.hh): "pipeline" is the paper's
     * Turandot-like in-flight-window model, "ooo" the ROB/issue-queue
     * out-of-order core with store-set dependence prediction.
     */
    std::string model = "pipeline";
    bool outOfOrder = false;
    /**
     * In-order static-scheduling window: an in-order core may issue a
     * ready younger instruction from the next N waiting entries. This
     * approximates the compile-time scheduling real in-order targets
     * rely on (the trace is in naive emission order); 1 = strict
     * head-blocking issue.
     */
    int inorderLookahead = 4;
    int fetchWidth = 2;    //!< fetch = rename = dispatch = issue width
    int retireWidth = 4;
    int inflight = 80;     //!< ROB / max in-flight instructions
    int issueQ = 10;       //!< non-branch issue-queue capacity
    int branchQ = 5;       //!< branch issue-queue capacity
    int ibuffer = 12;      //!< fetch-buffer capacity
    UnitConfig units;
    int gprPhys = 60;
    int fprPhys = 60;
    int vprPhys = 60;
    int dReadPorts = 1;
    int dWritePorts = 1;
    int missMax = 2;       //!< outstanding D-cache misses (MSHRs)
    int storeQ = 16;
    /**
     * Branch-predictor table size (log2 of 2-bit-counter entries).
     * The Table II machines all use the 4K-entry gshare default;
     * sweepable per cell like every other knob.
     */
    int bpredLog2Entries = 12;
    /**
     * Issue width of the "ooo" backend; 0 (the default) couples it to
     * fetchWidth, as the "pipeline" backend always does.
     */
    int issueWidth = 0;
    /// Store-set SSIT size (log2 of entries) of the "ooo" backend's
    /// memory-dependence predictor.
    int storeSetLog2 = 10;
    /**
     * Deterministic extra load latency charged by the "ooo" backend
     * when a load speculates past an older overlapping store (a
     * memory-order violation that would squash and replay the load on
     * real hardware; the violation also trains the store-set table so
     * later instances of the pair wait instead).
     */
    int memReplayPenalty = 7;
    LatencyConfig lat;
    mem::HierarchyConfig mem;

    /**
     * Reject impossible configurations (non-positive widths, queue or
     * port counts, out-of-range predictor sizes) with
     * std::invalid_argument naming the offending field. Every timing
     * backend calls this at construction, so a malformed sweep cell
     * fails loudly in any model instead of deadlocking or silently
     * misbehaving in one of them.
     */
    void validate() const;

    /**
     * The PR 5 deadlock rule, shared by every backend's load-issue
     * path: under serialized banks (mem.parallelBanks == false) a
     * line-crossing load occupies a second D-cache read port in the
     * same cycle - but only on a machine that has one. A single-ported
     * core serializes the second bank access in the load pipe instead;
     * demanding two ports of a one-port machine would make the load
     * permanently unissuable and deadlock the ROB.
     */
    bool
    crossingLoadNeedsSecondPort() const
    {
        return !mem.parallelBanks && dReadPorts >= 2;
    }

    /// Table II, 2-way in-order column.
    static CoreConfig twoWayInOrder();
    /// Table II, 4-way out-of-order column.
    static CoreConfig fourWayOoO();
    /// Table II, 8-way out-of-order column.
    static CoreConfig eightWayOoO();

    /// The paper's three configurations in presentation order.
    static const char *const presetNames[3];
    static CoreConfig preset(int idx);
};

/// Functional-unit index for an instruction class.
enum class Unit { FX, FP, LS, BR, VI, VPERM, VCMPLX, NumUnits };

constexpr int numUnits = static_cast<int>(Unit::NumUnits);

/// Map an instruction class to the unit that executes it.
Unit unitFor(trace::InstrClass cls);

/// Register file an instruction's destination lives in.
enum class RegFile { GPR, FPR, VPR, None };

/// Map an instruction class to its destination register file.
RegFile destRegFile(trace::InstrClass cls);

} // namespace uasim::timing

#endif // UASIM_TIMING_CONFIG_HH
