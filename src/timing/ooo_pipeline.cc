#include "timing/ooo_pipeline.hh"

#include <algorithm>
#include <bit>
#include <cassert>

namespace uasim::timing {

using trace::InstrClass;
using trace::InstrRecord;

OoOPipelineSim::OoOPipelineSim(const CoreConfig &cfg)
    // Validate before any member sizes anything from the config (the
    // predictor table, the rings, the SSIT): a bad config must throw,
    // not OOM.
    : cfg_((cfg.validate(), cfg)), mem_(cfg.mem),
      bpred_(unsigned(cfg.bpredLog2Entries)),
      issueWidth_(cfg.issueWidth > 0 ? cfg.issueWidth : cfg.fetchWidth)
{
    res_.core = cfg_.name;
    storeQ_.reserve(cfg_.storeQ);
    mshr_.reserve(cfg_.missMax);
    // 2x the in-flight window (see minRingSize) rounded up to a
    // power of two, so any legal CoreConfig scaling is safe.
    const auto inflight =
        std::size_t(std::max(1, cfg_.inflight));
    readyRing_.resize(
        std::bit_ceil(std::max(minRingSize, 2 * inflight)));
    ringMask_ = readyRing_.size() - 1;
    ssit_.assign(std::size_t(1) << cfg_.storeSetLog2, 0);
    iq_.reserve(inflight);
}

int
OoOPipelineSim::renameLimit(RegFile rf) const
{
    // 32 architected registers are always allocated; the rest rename.
    switch (rf) {
      case RegFile::GPR: return std::max(1, cfg_.gprPhys - 32);
      case RegFile::FPR: return std::max(1, cfg_.fprPhys - 32);
      case RegFile::VPR: return std::max(1, cfg_.vprPhys - 32);
      default: return 1 << 30;
    }
}

int *
OoOPipelineSim::renameCounter(RegFile rf)
{
    switch (rf) {
      case RegFile::GPR: return &gprInflight_;
      case RegFile::FPR: return &fprInflight_;
      case RegFile::VPR: return &vprInflight_;
      default: return nullptr;
    }
}

int
OoOPipelineSim::classLatency(InstrClass cls) const
{
    switch (cls) {
      case InstrClass::IntAlu:     return cfg_.lat.intAlu;
      case InstrClass::IntMul:     return cfg_.lat.intMul;
      case InstrClass::FpAlu:      return cfg_.lat.fpAlu;
      case InstrClass::Branch:     return cfg_.lat.branchResolve;
      case InstrClass::VecSimple:  return cfg_.lat.vecSimple;
      case InstrClass::VecComplex: return cfg_.lat.vecComplex;
      case InstrClass::VecPerm:    return cfg_.lat.vecPerm;
      default:                     return 1;
    }
}

std::uint32_t
OoOPipelineSim::allocSet()
{
    const auto sets = std::uint32_t(ssit_.size());
    nextSet_ = nextSet_ + 1 < sets ? nextSet_ + 1 : 1;
    return nextSet_;
}

void
OoOPipelineSim::trainStoreSet(std::uint64_t load_pc,
                              std::uint64_t store_pc)
{
    std::uint32_t set = ssit_[ssitIndex(store_pc)];
    if (!set) {
        set = allocSet();
        ssit_[ssitIndex(store_pc)] = set;
    }
    ssit_[ssitIndex(load_pc)] = set;
}

void
OoOPipelineSim::feed(const InstrRecord &rec)
{
    assert(!finalized_);
    pending_.push_back(rec);
    // Apply backpressure: keep the staging buffer near the front-end
    // size so feed() advances the machine instead of buffering the
    // whole trace.
    while (pending_.size() >
           static_cast<std::size_t>(2 * cfg_.ibuffer)) {
        cycle();
    }
}

SimResult
OoOPipelineSim::finalize()
{
    if (finalized_)
        return res_;
    // Guard against pathological deadlock with a generous bound.
    std::uint64_t limit = now_ + 1000000 +
        1000 * (pending_.size() + fetchBuf_.size() + rob_.size());
    while (!pending_.empty() || !fetchBuf_.empty() || !rob_.empty()) {
        cycle();
        if (now_ > limit)
            break;  // report what we have rather than hang
    }
    res_.cycles = now_;
    const auto &l1d = mem_.l1d().stats();
    res_.l1dAccesses = l1d.accesses;
    res_.l1dMisses = l1d.misses;
    res_.l2Misses = mem_.l2().stats().misses;
    res_.l1iMisses = mem_.l1i().stats().misses;
    finalized_ = true;
    return res_;
}

void
OoOPipelineSim::cycle()
{
    ++now_;
    for (int u = 0; u < numUnits; ++u)
        unitTokens_[u] = 0;
    unitTokens_[int(Unit::FX)] = cfg_.units.fx;
    unitTokens_[int(Unit::FP)] = cfg_.units.fp;
    unitTokens_[int(Unit::LS)] = cfg_.units.ls;
    unitTokens_[int(Unit::BR)] = cfg_.units.br;
    unitTokens_[int(Unit::VI)] = cfg_.units.vi;
    unitTokens_[int(Unit::VPERM)] = cfg_.units.vperm;
    unitTokens_[int(Unit::VCMPLX)] = cfg_.units.vcmplx;
    readPorts_ = cfg_.dReadPorts;
    writePorts_ = cfg_.dWritePorts;
    issueTokens_ = issueWidth_;

    // Release completed misses.
    std::erase_if(mshr_, [this](std::uint64_t c) { return c <= now_; });

    retireStage();
    issueStage();
    dispatchStage();
    fetchStage();
}

void
OoOPipelineSim::retireStage()
{
    int retired = 0;
    while (!rob_.empty() && retired < cfg_.retireWidth) {
        Slot &head = rob_.front();
        if (head.state != State::Issued || head.readyCycle > now_)
            break;

        if (head.rec.isStore()) {
            // Drain the store: needs a write port and, on a miss, an
            // MSHR. The store buffer hides the fill latency.
            if (writePorts_ <= 0)
                break;
            // Find the SQ entry (always the oldest).
            assert(!storeQ_.empty() && storeQ_.front().id == head.rec.id);
            if (storeQ_.front().fwdReady > now_)
                break;  // store pipeline (realignment) still busy
            bool would_miss =
                !mem_.l1d().probe(mem_.l1d().lineAddr(head.rec.addr));
            if (would_miss &&
                mshr_.size() >= static_cast<std::size_t>(cfg_.missMax)) {
                break;
            }
            auto acc = mem_.dataAccess(head.rec.addr, head.rec.size,
                                       true, now_);
            if (acc.l1Miss)
                mshr_.push_back(now_ + acc.extraLatency);
            if (acc.crossedLine) {
                ++res_.lineCrossings;
                if (!cfg_.mem.parallelBanks && writePorts_ >= 2)
                    --writePorts_;
            }
            --writePorts_;
            storeQ_.erase(storeQ_.begin());
        }

        if (auto *ctr = renameCounter(destRegFile(head.rec.cls)))
            --*ctr;
        ++res_.instrs;
        rob_.pop_front();
        ++retiredCount_;
        ++retired;
    }
}

bool
OoOPipelineSim::tryIssue(Slot &slot)
{
    const InstrRecord &rec = slot.rec;
    int unit = int(unitFor(rec.cls));
    if (unitTokens_[unit] <= 0)
        return false;
    if (!depsReady(rec))
        return false;

    if (rec.isLoad()) {
        if (readPorts_ <= 0)
            return false;
        // Store-to-load aliasing against older, undrained stores.
        StoreEntry *blocker = nullptr;
        const StoreEntry *forwarder = nullptr;
        for (auto &se : storeQ_) {
            if (se.id >= rec.id)
                break;
            std::uint64_t s_end = se.addr + se.size;
            std::uint64_t l_end = rec.addr + rec.size;
            bool overlap = se.addr < l_end && rec.addr < s_end;
            if (!overlap)
                continue;
            bool contains = se.addr <= rec.addr && l_end <= s_end;
            if (contains && se.issued && se.fwdReady <= now_) {
                forwarder = &se;     // youngest containing store wins
                blocker = nullptr;
            } else {
                blocker = &se;
                forwarder = nullptr;
            }
        }
        if (blocker) {
            // Store-set prediction instead of the in-order backend's
            // unconditional wait: a trained load (the undrained
            // aliasing store's pc maps to the load's own set) waits
            // for the drain; an untrained load speculates past the
            // store and pays the replay penalty below, once the
            // access is known to go ahead this cycle. Deadlock-free:
            // the blocker is older and retires independently.
            const std::uint32_t lset = ssit_[ssitIndex(rec.pc)];
            if (lset && ssit_[ssitIndex(blocker->pc)] == lset)
                return false;  // predicted dependent: wait for drain
        }

        bool runtime_unaligned = (rec.addr & 15) != 0 &&
            trace::isUnalignedVecMem(rec.cls);
        int extra = 0;
        if (forwarder) {
            ++res_.storeForwards;
        } else {
            // The shared line-crossing rule (see
            // CoreConfig::crossingLoadNeedsSecondPort): runs before
            // the cache access so a port-starved retry cannot touch
            // cache state or counters.
            bool crosses =
                mem_.l1d().lineAddr(rec.addr) !=
                mem_.l1d().lineAddr(rec.addr + rec.size - 1);
            if (crosses && cfg_.crossingLoadNeedsSecondPort() &&
                readPorts_ < 2) {
                return false;
            }
            bool would_miss =
                !mem_.l1d().probe(mem_.l1d().lineAddr(rec.addr)) ||
                (crosses &&
                 !mem_.l1d().probe(
                     mem_.l1d().lineAddr(rec.addr + rec.size - 1)));
            if (would_miss &&
                mshr_.size() >= static_cast<std::size_t>(cfg_.missMax)) {
                return false;
            }
            auto acc = mem_.dataAccess(rec.addr, rec.size, false, now_);
            extra = acc.extraLatency;
            if (acc.crossedLine) {
                ++res_.lineCrossings;
                if (cfg_.crossingLoadNeedsSecondPort())
                    --readPorts_;
            }
            if (acc.l1Miss)
                mshr_.push_back(now_ + cfg_.lat.load + extra);
            if (blocker) {
                // Ordering violation taken: train the pair into one
                // store set and charge the deterministic replay cost.
                trainStoreSet(rec.pc, blocker->pc);
                extra += cfg_.memReplayPenalty;
                ++memOrderReplays_;
            }
        }
        if (runtime_unaligned) {
            ++res_.unalignedVecOps;
            extra += cfg_.lat.unalignedLoadExtra;
        }
        --readPorts_;
        slot.readyCycle = now_ + cfg_.lat.load + extra;
    } else if (rec.isStore()) {
        // Address generation / data hand-off to the store queue.
        bool runtime_unaligned = (rec.addr & 15) != 0 &&
            trace::isUnalignedVecMem(rec.cls);
        int extra = 0;
        if (runtime_unaligned) {
            ++res_.unalignedVecOps;
            extra = cfg_.lat.unalignedStoreExtra;
        }
        slot.readyCycle = now_ + 1;
        for (auto &se : storeQ_) {
            if (se.id == rec.id) {
                se.issued = true;
                se.fwdReady = now_ + 1 + extra;
                break;
            }
        }
    } else if (rec.cls == InstrClass::Branch) {
        std::uint64_t resolve = now_ + cfg_.lat.branchResolve;
        slot.readyCycle = resolve;
        ++res_.branches;
        if (slot.mispredict) {
            ++res_.mispredicts;
            fetchStallUntil_ = std::max(
                fetchStallUntil_,
                resolve + cfg_.lat.mispredictPenalty);
            if (haltBranchId_ == rec.id)
                haltBranchId_ = 0;
        }
    } else {
        slot.readyCycle = now_ + classLatency(rec.cls);
    }

    --unitTokens_[unit];
    --issueTokens_;
    slot.state = State::Issued;
    setReady(rec.id, slot.readyCycle);
    if (rec.cls == InstrClass::Branch)
        --waitingBranch_;
    else
        --waitingNonBranch_;
    return true;
}

bool
OoOPipelineSim::depsReady(const InstrRecord &rec) const
{
    for (auto d : rec.deps) {
        if (d && readyCycleOf(d) > now_)
            return false;
    }
    return true;
}

void
OoOPipelineSim::issueStage()
{
    // Scan only the waiting pool, oldest first, compacting issued
    // entries out in place. Unlike the "pipeline" backend there is no
    // lookahead bound: any ready instruction may issue.
    const std::size_t n = iq_.size();
    std::size_t keep = 0;
    std::size_t i = 0;
    for (; i < n; ++i) {
        if (issueTokens_ <= 0)
            break;
        const std::uint64_t seq = iq_[i];
        Slot &slot = rob_[std::size_t(seq - retiredCount_)];
        assert(slot.state == State::Waiting);
        if (!tryIssue(slot))
            iq_[keep++] = seq;
    }
    if (keep != i) {
        for (; i < n; ++i)
            iq_[keep++] = iq_[i];
        iq_.resize(keep);
    }
}

void
OoOPipelineSim::dispatchStage()
{
    int dispatched = 0;
    while (!fetchBuf_.empty() && dispatched < cfg_.fetchWidth) {
        Slot &slot = fetchBuf_.front();
        if (rob_.size() >= static_cast<std::size_t>(cfg_.inflight))
            break;
        bool is_branch = slot.rec.cls == InstrClass::Branch;
        if (is_branch && waitingBranch_ >= cfg_.branchQ)
            break;
        if (!is_branch && waitingNonBranch_ >= cfg_.issueQ)
            break;
        RegFile rf = destRegFile(slot.rec.cls);
        int *ctr = renameCounter(rf);
        if (ctr && *ctr >= renameLimit(rf))
            break;
        if (slot.rec.isStore()) {
            if (storeQ_.size() >= static_cast<std::size_t>(cfg_.storeQ))
                break;
            StoreEntry se;
            se.id = slot.rec.id;
            se.pc = slot.rec.pc;
            se.addr = slot.rec.addr;
            se.size = slot.rec.size;
            storeQ_.push_back(se);
        }
        if (ctr)
            ++*ctr;
        if (is_branch)
            ++waitingBranch_;
        else
            ++waitingNonBranch_;
        setReady(slot.rec.id, notReady);
        rob_.push_back(slot);
        iq_.push_back(dispatchedCount_++);
        fetchBuf_.pop_front();
        ++dispatched;
    }
}

void
OoOPipelineSim::fetchStage()
{
    if (now_ < fetchStallUntil_ || haltBranchId_) {
        ++res_.fetchStallCycles;
        return;
    }
    int fetched = 0;
    while (!pending_.empty() && fetched < cfg_.fetchWidth &&
           fetchBuf_.size() < static_cast<std::size_t>(cfg_.ibuffer)) {
        InstrRecord rec = pending_.front();

        // Instruction-cache access per new line.
        std::uint64_t line = mem_.l1i().lineAddr(rec.pc);
        if (line != lastFetchLine_) {
            auto acc = mem_.fetchAccess(rec.pc, now_);
            lastFetchLine_ = line;
            if (acc.extraLatency > 0) {
                fetchStallUntil_ = now_ + acc.extraLatency;
                return;
            }
        }

        Slot slot;
        slot.rec = rec;
        pending_.pop_front();

        if (rec.cls == InstrClass::Branch) {
            bool pred = bpred_.predict(rec.pc);
            bpred_.update(rec.pc, rec.taken);
            if (pred != rec.taken) {
                slot.mispredict = true;
                haltBranchId_ = rec.id;
                fetchBuf_.push_back(slot);
                return;  // fetch halts behind the mispredict
            }
        }
        fetchBuf_.push_back(slot);
        ++fetched;
    }
}

} // namespace uasim::timing
