#include "timing/config.hh"

#include <stdexcept>

namespace uasim::timing {

namespace {

void
requirePositive(const char *field, int v)
{
    if (v < 1) {
        throw std::invalid_argument(
            std::string("CoreConfig: ") + field + " must be >= 1");
    }
}

} // namespace

void
CoreConfig::validate() const
{
    requirePositive("fetchWidth", fetchWidth);
    requirePositive("retireWidth", retireWidth);
    requirePositive("inflight", inflight);
    requirePositive("issueQ", issueQ);
    requirePositive("branchQ", branchQ);
    requirePositive("ibuffer", ibuffer);
    requirePositive("storeQ", storeQ);
    requirePositive("dReadPorts", dReadPorts);
    requirePositive("dWritePorts", dWritePorts);
    requirePositive("missMax", missMax);
    requirePositive("inorderLookahead", inorderLookahead);
    if (bpredLog2Entries < 1 || bpredLog2Entries > 28) {
        throw std::invalid_argument(
            "CoreConfig: bpredLog2Entries out of range [1, 28]");
    }
    if (storeSetLog2 < 1 || storeSetLog2 > 28) {
        throw std::invalid_argument(
            "CoreConfig: storeSetLog2 out of range [1, 28]");
    }
    if (issueWidth < 0) {
        throw std::invalid_argument(
            "CoreConfig: issueWidth must be >= 0 (0 = fetchWidth)");
    }
    if (memReplayPenalty < 0) {
        throw std::invalid_argument(
            "CoreConfig: memReplayPenalty must be >= 0");
    }
    if (model.empty())
        throw std::invalid_argument("CoreConfig: empty model name");
    if (mem.memBWBytesPerCycle < 0) {
        throw std::invalid_argument(
            "CoreConfig: mem.memBWBytesPerCycle must be >= 0 "
            "(0 = unthrottled)");
    }
}

CoreConfig
CoreConfig::twoWayInOrder()
{
    CoreConfig c;
    c.name = "2w";
    c.outOfOrder = false;
    // Narrow dual-issue embedded-style core: little room for static
    // scheduling around the strict pair-issue constraints.
    c.inorderLookahead = 2;
    c.fetchWidth = 2;
    c.retireWidth = 4;
    c.inflight = 80;
    c.issueQ = 10;
    c.branchQ = 5;
    c.ibuffer = 12;
    c.units = {2, 1, 1, 1, 1, 1, 1};
    c.gprPhys = c.fprPhys = c.vprPhys = 60;
    c.dReadPorts = 1;
    c.dWritePorts = 1;
    c.missMax = 2;
    c.storeQ = 16;
    return c;
}

CoreConfig
CoreConfig::fourWayOoO()
{
    CoreConfig c;
    c.name = "4w";
    c.outOfOrder = true;
    c.fetchWidth = 4;
    c.retireWidth = 6;
    c.inflight = 160;
    c.issueQ = 20;
    c.branchQ = 12;
    c.ibuffer = 24;
    c.units = {3, 2, 2, 2, 2, 1, 1};
    c.gprPhys = c.fprPhys = c.vprPhys = 80;
    c.dReadPorts = 2;
    c.dWritePorts = 1;
    c.missMax = 4;
    c.storeQ = 24;
    return c;
}

CoreConfig
CoreConfig::eightWayOoO()
{
    CoreConfig c;
    c.name = "8w";
    c.outOfOrder = true;
    c.fetchWidth = 8;
    c.retireWidth = 12;
    c.inflight = 255;
    c.issueQ = 40;
    c.branchQ = 40;
    c.ibuffer = 48;
    c.units = {6, 4, 4, 4, 4, 2, 2};
    c.gprPhys = c.fprPhys = c.vprPhys = 128;
    c.dReadPorts = 4;
    c.dWritePorts = 2;
    c.missMax = 8;
    c.storeQ = 32;
    return c;
}

const char *const CoreConfig::presetNames[3] = {"2w", "4w", "8w"};

CoreConfig
CoreConfig::preset(int idx)
{
    switch (idx) {
      case 0: return twoWayInOrder();
      case 1: return fourWayOoO();
      default: return eightWayOoO();
    }
}

Unit
unitFor(trace::InstrClass cls)
{
    using IC = trace::InstrClass;
    switch (cls) {
      case IC::IntAlu:
      case IC::IntMul:
        return Unit::FX;
      case IC::FpAlu:
        return Unit::FP;
      case IC::Load:
      case IC::Store:
      case IC::VecLoad:
      case IC::VecStore:
      case IC::VecLoadU:
      case IC::VecStoreU:
        return Unit::LS;
      case IC::Branch:
        return Unit::BR;
      case IC::VecSimple:
        return Unit::VI;
      case IC::VecComplex:
        return Unit::VCMPLX;
      case IC::VecPerm:
      default:
        return Unit::VPERM;
    }
}

RegFile
destRegFile(trace::InstrClass cls)
{
    using IC = trace::InstrClass;
    switch (cls) {
      case IC::IntAlu:
      case IC::IntMul:
      case IC::Load:
        return RegFile::GPR;
      case IC::FpAlu:
        return RegFile::FPR;
      case IC::VecLoad:
      case IC::VecLoadU:
      case IC::VecSimple:
      case IC::VecComplex:
      case IC::VecPerm:
        return RegFile::VPR;
      default:
        return RegFile::None;
    }
}

} // namespace uasim::timing
