#include "timing/model.hh"

#include <stdexcept>
#include <utility>

#include "timing/batched_pipeline.hh"
#include "timing/ooo_pipeline.hh"
#include "timing/pipeline.hh"

namespace uasim::timing {

namespace {

/**
 * Fallback batched engine: one TimingModel per cell, fed cell-major
 * per block so each cell's machine state stays cache-hot across the
 * block. No cross-cell sharing, so it works for any model mix and is
 * bit-identical to the per-cell path by construction.
 */
class MuxBatchedModel : public BatchedTimingModel
{
  public:
    explicit MuxBatchedModel(const std::vector<CoreConfig> &cfgs)
    {
        cells_.reserve(cfgs.size());
        for (const auto &cfg : cfgs)
            cells_.push_back(makeTimingModel(cfg));
    }

    void
    append(const trace::InstrRecord &rec) override
    {
        appendBlock(&rec, 1);
    }

    void
    appendBlock(const trace::InstrRecord *recs, std::size_t n) override
    {
        for (auto &cell : cells_)
            cell->appendBlock(recs, n);
    }

    std::vector<SimResult>
    finalizeAll() override
    {
        std::vector<SimResult> out;
        out.reserve(cells_.size());
        for (auto &cell : cells_)
            out.push_back(cell->finalize());
        return out;
    }

    int cellCount() const override { return int(cells_.size()); }

  private:
    std::vector<std::unique_ptr<TimingModel>> cells_;
};

} // namespace

const std::vector<std::string> &
timingModelNames()
{
    static const std::vector<std::string> names = {"pipeline", "ooo"};
    return names;
}

bool
isTimingModel(const std::string &name)
{
    for (const auto &n : timingModelNames()) {
        if (n == name)
            return true;
    }
    return false;
}

std::unique_ptr<TimingModel>
makeTimingModel(const CoreConfig &cfg)
{
    if (cfg.model == "pipeline")
        return std::make_unique<PipelineSim>(cfg);
    if (cfg.model == "ooo")
        return std::make_unique<OoOPipelineSim>(cfg);
    throw std::invalid_argument("unknown timing model \"" + cfg.model +
                                "\"");
}

std::unique_ptr<BatchedTimingModel>
makeBatchedTimingModel(const std::vector<CoreConfig> &cfgs)
{
    // The shared-window engine requires a uniform "pipeline" group
    // with one predictor geometry (its mispredict precompute runs a
    // single shared predictor - see BatchedPipelineSim).
    bool uniformPipeline = true;
    for (const auto &cfg : cfgs) {
        if (!isTimingModel(cfg.model)) {
            throw std::invalid_argument("unknown timing model \"" +
                                        cfg.model + "\"");
        }
        if (cfg.model != "pipeline" ||
            cfg.bpredLog2Entries != cfgs.front().bpredLog2Entries)
            uniformPipeline = false;
    }
    if (uniformPipeline && !cfgs.empty())
        return std::make_unique<BatchedPipelineSim>(cfgs);
    return std::make_unique<MuxBatchedModel>(cfgs);
}

} // namespace uasim::timing
