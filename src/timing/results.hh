/**
 * @file
 * Timing-simulation results.
 */

#ifndef UASIM_TIMING_RESULTS_HH
#define UASIM_TIMING_RESULTS_HH

#include <cstdint>
#include <string>

namespace uasim::timing {

/// Aggregate outcome of one simulated instruction stream.
struct SimResult {
    std::string core;
    std::uint64_t cycles = 0;
    std::uint64_t instrs = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t l1dAccesses = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t l1iMisses = 0;
    std::uint64_t storeForwards = 0;
    std::uint64_t unalignedVecOps = 0;  //!< dynamically unaligned lvxu/stvxu
    std::uint64_t lineCrossings = 0;
    std::uint64_t fetchStallCycles = 0;

    double
    ipc() const
    {
        return cycles ? double(instrs) / double(cycles) : 0.0;
    }

    double
    mispredictRate() const
    {
        return branches ? double(mispredicts) / double(branches) : 0.0;
    }
};

} // namespace uasim::timing

#endif // UASIM_TIMING_RESULTS_HH
