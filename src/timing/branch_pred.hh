/**
 * @file
 * Gshare branch direction predictor.
 */

#ifndef UASIM_TIMING_BRANCH_PRED_HH
#define UASIM_TIMING_BRANCH_PRED_HH

#include <cstdint>
#include <vector>

namespace uasim::timing {

/**
 * Classic gshare: global history XOR PC indexes a table of 2-bit
 * saturating counters. All three Table II configurations share one
 * predictor configuration, as the paper specifies.
 */
class BranchPredictor
{
  public:
    /// @param log2_entries table size, default 4K counters.
    explicit BranchPredictor(unsigned log2_entries = 12)
        : mask_((1u << log2_entries) - 1), table_(mask_ + 1, 2)
    {
    }

    /// Predict the direction of the branch at @p pc.
    bool
    predict(std::uint64_t pc) const
    {
        return table_[index(pc)] >= 2;
    }

    /// Train with the resolved direction and update global history.
    void
    update(std::uint64_t pc, bool taken)
    {
        std::uint8_t &ctr = table_[index(pc)];
        if (taken) {
            if (ctr < 3)
                ++ctr;
        } else {
            if (ctr > 0)
                --ctr;
        }
        history_ = (history_ << 1) | (taken ? 1 : 0);
    }

  private:
    std::size_t
    index(std::uint64_t pc) const
    {
        return ((pc >> 2) ^ history_) & mask_;
    }

    std::uint64_t history_ = 0;
    std::uint64_t mask_;
    std::vector<std::uint8_t> table_;
};

} // namespace uasim::timing

#endif // UASIM_TIMING_BRANCH_PRED_HH
