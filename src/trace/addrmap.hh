/**
 * @file
 * Address normalization filter for deterministic simulation.
 *
 * Trace records carry host addresses; cache behaviour must not depend
 * on where the host allocator happened to place buffers. This sink
 * filter rebases each registered buffer onto a fixed virtual base
 * (preserving internal layout exactly) and folds unregistered
 * addresses (constant pool, spill slots) into a dedicated region
 * keeping their low 20 bits, which preserves L1/L2 set indexing.
 */

#ifndef UASIM_TRACE_ADDRMAP_HH
#define UASIM_TRACE_ADDRMAP_HH

#include <vector>

#include "trace/sink.hh"

namespace uasim::trace {

class AddrNormalizer : public TraceSink
{
  public:
    explicit AddrNormalizer(TraceSink &down) : down_(&down) {}

    /// Rebase [base, base+size) onto @p vbase.
    void
    addRegion(const void *base, std::size_t size, std::uint64_t vbase)
    {
        regions_.push_back({reinterpret_cast<std::uint64_t>(base),
                            size, vbase});
    }

    /// Region of unregistered (fallback) addresses.
    static constexpr std::uint64_t fallbackBase = 0x7f000000;

    void
    append(const InstrRecord &rec) override
    {
        InstrRecord out = rec;
        if (out.isMem())
            out.addr = translate(out.addr);
        down_->append(out);
    }

    std::uint64_t
    translate(std::uint64_t addr) const
    {
        for (const auto &r : regions_) {
            if (addr >= r.base && addr < r.base + r.size)
                return r.vbase + (addr - r.base);
        }
        return fallbackBase | (addr & 0xfffff);
    }

  private:
    struct Region {
        std::uint64_t base;
        std::size_t size;
        std::uint64_t vbase;
    };

    TraceSink *down_;
    std::vector<Region> regions_;
};

} // namespace uasim::trace

#endif // UASIM_TRACE_ADDRMAP_HH
