/**
 * @file
 * Address normalization filter for deterministic simulation.
 *
 * Trace records carry host addresses; cache behaviour must not depend
 * on where the host allocator happened to place buffers. This sink
 * filter rebases each registered buffer onto a fixed virtual base
 * (preserving internal layout exactly) and maps each unregistered
 * 16-byte granule (constant pool, clip tables, spill slots) onto a
 * stable virtual granule in order of first appearance, preserving
 * the in-granule offset. Fallback traffic is at most 16 bytes wide
 * and at least naturally aligned (vector slots are alignas(16)), so
 * (addr & 15) is host-independent, no access straddles a granule,
 * and the whole translated stream - and with it the simulated cycle
 * count - is identical across hosts, allocators and sanitizer
 * builds. The cost is that side-table walks lose host spatial
 * adjacency across granules: the fallback region models working-set
 * size, not the tables' exact line packing.
 */

#ifndef UASIM_TRACE_ADDRMAP_HH
#define UASIM_TRACE_ADDRMAP_HH

#include <cassert>
#include <unordered_map>
#include <vector>

#include "trace/sink.hh"

namespace uasim::trace {

class AddrNormalizer : public TraceSink
{
  public:
    explicit AddrNormalizer(TraceSink &down) : down_(&down) {}

    /**
     * Rebase [base, base+size) onto @p vbase. The timing model reads
     * (addr & 15) and line crossings off translated addresses, so the
     * virtual base keeps the host base's 16B alignment phase: the low
     * 4 bits of @p vbase are replaced with those of @p base.
     */
    void
    addRegion(const void *base, std::size_t size, std::uint64_t vbase)
    {
        auto b = reinterpret_cast<std::uint64_t>(base);
        vbase = (vbase & ~std::uint64_t{0xf}) | (b & 0xf);
        regions_.push_back({b, size, vbase});
    }

    /// Region of unregistered (fallback) addresses.
    static constexpr std::uint64_t fallbackBase = 0x7f000000;

    void
    append(const InstrRecord &rec) override
    {
        InstrRecord out = rec;
        if (out.isMem())
            out.addr = translate(out.addr, out.size);
        down_->append(out);
    }

    std::uint64_t
    translate(std::uint64_t addr, [[maybe_unused]] unsigned size = 0)
    {
        for (const auto &r : regions_) {
            if (addr >= r.base && addr < r.base + r.size)
                return r.vbase + (addr - r.base);
        }
        // The host-independence guarantee requires fallback accesses
        // to stay inside one granule; wide or unaligned traffic
        // belongs in a registered region (addRegion).
        assert((addr & granuleMask) + size <= (1u << granuleShift) &&
               "fallback access straddles a 16B granule; register the "
               "buffer with addRegion()");
        std::uint64_t granule = addr >> granuleShift;
        auto [it, inserted] =
            fallbackGranules_.try_emplace(granule, nextFallbackGranule_);
        if (inserted)
            ++nextFallbackGranule_;
        return (it->second << granuleShift) | (addr & granuleMask);
    }

  private:
    static constexpr unsigned granuleShift = 4;
    static constexpr std::uint64_t granuleMask =
        (1ull << granuleShift) - 1;

    struct Region {
        std::uint64_t base;
        std::size_t size;
        std::uint64_t vbase;
    };

    TraceSink *down_;
    std::vector<Region> regions_;
    std::unordered_map<std::uint64_t, std::uint64_t> fallbackGranules_;
    std::uint64_t nextFallbackGranule_ = fallbackBase >> granuleShift;
};

} // namespace uasim::trace

#endif // UASIM_TRACE_ADDRMAP_HH
