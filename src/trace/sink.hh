/**
 * @file
 * Trace sinks: consumers of the dynamic instruction stream.
 */

#ifndef UASIM_TRACE_SINK_HH
#define UASIM_TRACE_SINK_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "trace/instr.hh"
#include "trace/mix.hh"

namespace uasim::trace {

/**
 * Abstract consumer of instruction records.
 *
 * The emulation facades push every executed instruction into a sink;
 * implementations count them, buffer them, serialize them, or stream
 * them straight into the timing model.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /// Consume one record. Called once per dynamic instruction, in order.
    virtual void append(const InstrRecord &rec) = 0;

    /**
     * Consume a contiguous block of records, in order. Semantically
     * identical to append()ing each record; sinks that can exploit
     * batching (block decoders upstream, the batched replay engine
     * downstream) override this to skip the per-record virtual call.
     */
    virtual void
    appendBlock(const InstrRecord *recs, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            append(recs[i]);
    }
};

/// Sink that discards everything (pure functional execution).
class NullSink : public TraceSink
{
  public:
    void append(const InstrRecord &) override {}
};

/// Sink that accumulates an InstrMix.
class CountingSink : public TraceSink
{
  public:
    void append(const InstrRecord &rec) override { mix_.add(rec); }

    const InstrMix &mix() const { return mix_; }
    void clear() { mix_.clear(); }

  private:
    InstrMix mix_;
};

/// Sink that stores all records in memory.
class BufferSink : public TraceSink
{
  public:
    void
    append(const InstrRecord &rec) override
    {
        records_.push_back(rec);
    }

    void
    appendBlock(const InstrRecord *recs, std::size_t n) override
    {
        records_.insert(records_.end(), recs, recs + n);
    }

    const std::vector<InstrRecord> &records() const { return records_; }
    void clear() { records_.clear(); }

  private:
    std::vector<InstrRecord> records_;
};

/// Sink that forwards each record to a callable.
class CallbackSink : public TraceSink
{
  public:
    using Fn = std::function<void(const InstrRecord &)>;

    explicit CallbackSink(Fn fn) : fn_(std::move(fn)) {}

    void append(const InstrRecord &rec) override { fn_(rec); }

  private:
    Fn fn_;
};

/// Sink that duplicates the stream into two downstream sinks.
class TeeSink : public TraceSink
{
  public:
    TeeSink(TraceSink &first, TraceSink &second)
        : first_(&first), second_(&second)
    {}

    void
    append(const InstrRecord &rec) override
    {
        first_->append(rec);
        second_->append(rec);
    }

    void
    appendBlock(const InstrRecord *recs, std::size_t n) override
    {
        first_->appendBlock(recs, n);
        second_->appendBlock(recs, n);
    }

  private:
    TraceSink *first_;
    TraceSink *second_;
};

} // namespace uasim::trace

#endif // UASIM_TRACE_SINK_HH
