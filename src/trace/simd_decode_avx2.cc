/**
 * @file
 * AVX2+BMI2 decode kernel: one 32-byte VPMOVMSKB covers even a record
 * full of long varints in a single continuation mask, and each value
 * is extracted with one PEXT over the masked 8-byte load. Compiled
 * with -mavx2 -mbmi2 (this file only); callers reach it through the
 * runtime dispatch in simd_decode.cc, which requires both CPU flags.
 */

#include "trace/decode_detail.hh"

#include <immintrin.h>

namespace uasim::trace::simd::detail {

namespace {

struct Avx2Traits {
    static constexpr unsigned width = 32;
    static constexpr unsigned scale = 1;  // mask bits per byte

    /// Bit i set = byte i terminates a varint (continuation bit 0x80
    /// clear). Only the low 32 bits are live.
    static std::uint64_t
    termMask(const std::uint8_t *p)
    {
        const __m256i w = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(p));
        return ~std::uint64_t(std::uint32_t(
                   _mm256_movemask_epi8(w))) &
               0xffffffffull;
    }

    /// Byte index of the lowest set mask bit; >= width when empty.
    static unsigned
    pos(std::uint64_t m)
    {
        return unsigned(std::countr_zero(m));
    }

    /// Value of a varint of t+1 bytes starting at raw's byte 0: PEXT
    /// gathers bits 0-6 of all 8 bytes in payload order, then BZHI
    /// keeps the 7*(t+1) bits belonging to the field.
    static std::uint64_t
    extract(std::uint64_t raw, unsigned t)
    {
        return _bzhi_u64(_pext_u64(raw, 0x7f7f7f7f7f7f7f7full),
                         7 * (t + 1));
    }
};

} // namespace

std::size_t
decodeRunAvx2(const std::uint8_t *&p, const std::uint8_t *end,
              InstrRecord *out, std::size_t maxRecords,
              wire::DecodeState &st)
{
    return decodeRunSimd<Avx2Traits>(p, end, out, maxRecords, st);
}

} // namespace uasim::trace::simd::detail
