#include "trace/instr.hh"

namespace uasim::trace {

std::string_view
instrClassName(InstrClass cls)
{
    switch (cls) {
      case InstrClass::IntAlu:     return "int_alu";
      case InstrClass::IntMul:     return "int_mul";
      case InstrClass::Load:       return "load";
      case InstrClass::Store:      return "store";
      case InstrClass::Branch:     return "branch";
      case InstrClass::FpAlu:      return "fp_alu";
      case InstrClass::VecLoad:    return "vec_load";
      case InstrClass::VecStore:   return "vec_store";
      case InstrClass::VecLoadU:   return "vec_load_u";
      case InstrClass::VecStoreU:  return "vec_store_u";
      case InstrClass::VecSimple:  return "vec_simple";
      case InstrClass::VecComplex: return "vec_complex";
      case InstrClass::VecPerm:    return "vec_perm";
      default:                     return "invalid";
    }
}

} // namespace uasim::trace
