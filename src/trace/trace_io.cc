#include "trace/trace_io.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <memory>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#define UASIM_HAVE_MMAP 1
#include <sys/mman.h>
#endif

#include "trace/simd_decode.hh"

namespace uasim::trace {

namespace wire {

namespace {

void
putLe32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out += static_cast<char>((v >> (8 * i)) & 0xff);
}

void
putLe64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out += static_cast<char>((v >> (8 * i)) & 0xff);
}

std::uint32_t
getLe32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= std::uint32_t{p[i]} << (8 * i);
    return v;
}

std::uint64_t
getLe64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t{p[i]} << (8 * i);
    return v;
}

} // namespace

std::uint64_t
fnv1a(const void *data, std::size_t n, std::uint64_t state)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        state ^= p[i];
        state *= 0x100000001b3ull;
    }
    return state;
}

void
putVarint(std::string &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out += static_cast<char>((v & 0x7f) | 0x80);
        v >>= 7;
    }
    out += static_cast<char>(v);
}

bool
getVarint(const std::uint8_t *&p, const std::uint8_t *end,
          std::uint64_t &v)
{
    v = 0;
    for (int shift = 0; shift < 70; shift += 7) {
        if (p == end)
            return false;
        std::uint8_t byte = *p++;
        v |= std::uint64_t(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return true;
    }
    return false;  // over-long encoding
}

std::string
Header::serialize() const
{
    std::string out;
    out.reserve(headerBytes);
    out.append(magic, sizeof(magic));
    putLe32(out, version);
    putLe32(out, keyBytes);
    putLe64(out, recordCount);
    putLe64(out, payloadBytes);
    putLe64(out, payloadHash);
    putLe64(out, keyHash);
    putLe64(out, mixHash);
    return out;
}

std::string
serializeMix(const InstrMix &mix)
{
    std::string out;
    out.reserve(mixBytes);
    for (int c = 0; c < numInstrClasses; ++c)
        putLe64(out, mix.count(static_cast<InstrClass>(c)));
    return out;
}

void
RecordEncoder::encode(const InstrRecord &rec, std::string &out)
{
    const bool is_mem = rec.isMem();
    const bool taken = rec.cls == InstrClass::Branch && rec.taken;
    out += static_cast<char>(static_cast<std::uint8_t>(rec.cls) |
                             (taken ? 0x80 : 0));
    putVarint(out, zigzag(std::int64_t(rec.id - prevId_)));
    prevId_ = rec.id;
    putVarint(out, zigzag(std::int64_t(rec.pc - prevPc_)));
    prevPc_ = rec.pc;
    if (is_mem) {
        putVarint(out, zigzag(std::int64_t(rec.addr - prevAddr_)));
        prevAddr_ = rec.addr;
        out += static_cast<char>(rec.size);
    }
    for (auto dep : rec.deps) {
        // 0 = no dependence; otherwise bias the producer delta by one
        // so it cannot collide with the no-dependence encoding.
        putVarint(out, dep ? zigzag(std::int64_t(rec.id - dep)) + 1
                           : 0);
    }
}

void
RecordDecoder::decode(const std::uint8_t *&p, const std::uint8_t *end,
                      InstrRecord &rec)
{
    auto truncated = [] {
        throw std::runtime_error(
            "trace payload truncated mid-record");
    };
    if (p == end)
        truncated();
    const std::uint8_t tag = *p++;
    const std::uint8_t cls = tag & 0x7f;
    if (cls >= static_cast<std::uint8_t>(InstrClass::NumClasses))
        throw std::runtime_error(
            "invalid instruction class byte " + std::to_string(cls) +
            " in trace payload");
    rec.cls = static_cast<InstrClass>(cls);
    if ((tag & 0x80) && rec.cls != InstrClass::Branch)
        throw std::runtime_error(
            "taken flag set on non-branch record in trace payload");
    rec.taken = (tag & 0x80) != 0;

    std::uint64_t v;
    if (!getVarint(p, end, v))
        truncated();
    rec.id = st_.prevId + std::uint64_t(unzigzag(v));
    st_.prevId = rec.id;
    if (!getVarint(p, end, v))
        truncated();
    rec.pc = st_.prevPc + std::uint64_t(unzigzag(v));
    st_.prevPc = rec.pc;
    if (isMemClass(rec.cls)) {
        if (!getVarint(p, end, v))
            truncated();
        rec.addr = st_.prevAddr + std::uint64_t(unzigzag(v));
        st_.prevAddr = rec.addr;
        if (p == end)
            truncated();
        rec.size = *p++;
    } else {
        rec.addr = 0;
        rec.size = 0;
    }
    for (auto &dep : rec.deps) {
        if (!getVarint(p, end, v))
            truncated();
        dep = v ? rec.id - std::uint64_t(unzigzag(v - 1)) : 0;
    }
}

std::size_t
RecordDecoder::decodeBlock(const std::uint8_t *&p,
                           const std::uint8_t *end, InstrRecord *out,
                           std::size_t maxRecords)
{
    // Fast region: while at least maxRecordBytes remain every field
    // of a record is readable without bounds checks, so the run is
    // delegated to the runtime-dispatched kernel (scalar fallback
    // included - see trace/simd_decode.hh).
    std::size_t n = simd::decodeRun(p, end, out, maxRecords, st_);
    // Checked scalar path once a record could cross the end.
    while (n < maxRecords && p != end) {
        decode(p, end, out[n]);
        ++n;
    }
    return n;
}

} // namespace wire

namespace {

constexpr std::size_t writeBufferBytes = 1 << 20;

std::string
errnoText()
{
    return std::strerror(errno);
}

} // namespace

FileSink::FileSink(const std::string &path, std::string key)
    : path_(path), key_(std::move(key))
{
    if (key_.size() > wire::maxKeyBytes)
        throw std::runtime_error("FileSink: key too long for " + path);
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        throw std::runtime_error("FileSink: cannot open " + path +
                                 ": " + errnoText());
    // Header + mix placeholders (patched by close()) and the key; a
    // reader of an unfinalized file sees payloadBytes 0 != actual
    // size and rejects it.
    wire::Header hdr;
    hdr.keyBytes = std::uint32_t(key_.size());
    hdr.keyHash = wire::fnv1a(key_.data(), key_.size());
    std::string head =
        hdr.serialize() + key_ + std::string(wire::mixBytes, '\0');
    if (std::fwrite(head.data(), 1, head.size(), file_) != head.size())
        fail("header write failed");
    buffer_.reserve(writeBufferBytes);
}

FileSink::~FileSink()
{
    if (!file_)
        return;
    try {
        close();
    } catch (const std::exception &e) {
        // Destructors must not throw; surface the failure instead of
        // silently leaving a corrupt trace behind.
        std::fprintf(stderr, "FileSink: %s\n", e.what());
    }
}

void
FileSink::fail(const std::string &what)
{
    failed_ = true;
    if (file_) {
        // Already failing; a close error cannot add information.
        (void)std::fclose(file_);
        file_ = nullptr;
    }
    throw std::runtime_error("FileSink: " + what + " for " + path_);
}

void
FileSink::append(const InstrRecord &rec)
{
    if (!file_) {
        throw std::runtime_error(
            "FileSink: append on a closed or failed sink for " +
            path_);
    }
    encoder_.encode(rec, buffer_);
    mix_.add(rec);
    ++written_;
    if (buffer_.size() >= writeBufferBytes)
        flushBuffer();
}

void
FileSink::flushBuffer()
{
    if (buffer_.empty())
        return;
    payloadHash_ =
        wire::fnv1a(buffer_.data(), buffer_.size(), payloadHash_);
    if (std::fwrite(buffer_.data(), 1, buffer_.size(), file_) !=
        buffer_.size()) {
        fail("payload write failed: " + errnoText());
    }
    payloadBytes_ += buffer_.size();
    buffer_.clear();
}

void
FileSink::close()
{
    if (!file_)
        return;
    flushBuffer();
    // Flush data before patching the header so a failure cannot leave
    // a valid-looking header over a truncated payload.
    if (std::fflush(file_) != 0)
        fail("payload flush failed: " + errnoText());
    const std::string mix_section = wire::serializeMix(mix_);
    wire::Header hdr;
    hdr.keyBytes = std::uint32_t(key_.size());
    hdr.recordCount = written_;
    hdr.payloadBytes = payloadBytes_;
    hdr.payloadHash = payloadHash_;
    hdr.keyHash = wire::fnv1a(key_.data(), key_.size());
    hdr.mixHash = wire::fnv1a(mix_section.data(), mix_section.size());
    // Header, key and mix section are contiguous from offset 0, so
    // one seek patches them all.
    std::string head = hdr.serialize() + key_ + mix_section;
    if (std::fseek(file_, 0, SEEK_SET) != 0)
        fail("header seek failed: " + errnoText());
    if (std::fwrite(head.data(), 1, head.size(), file_) != head.size())
        fail("header patch failed: " + errnoText());
    if (std::fflush(file_) != 0)
        fail("header flush failed: " + errnoText());
    std::FILE *f = file_;
    file_ = nullptr;
    if (std::fclose(f) != 0) {
        failed_ = true;
        throw std::runtime_error("FileSink: close failed for " + path_ +
                                 ": " + errnoText());
    }
}

namespace {

using FileHandle = std::unique_ptr<std::FILE, int (*)(std::FILE *)>;

/// Validated front matter of a trace file, positioned at the payload.
struct OpenedTrace {
    FileHandle file{nullptr, &std::fclose};
    std::string key;
    InstrMix mix;
    std::uint64_t count = 0;
    std::uint64_t payloadBytes = 0;
    std::uint64_t payloadHash = 0;
    long payloadAt = 0;  //!< payload's file offset (for mmap views)
};

[[noreturn]] void
badTrace(const std::string &path, const std::string &what)
{
    throw std::runtime_error("TraceReader: " + what + " in " + path);
}

/**
 * Open @p path and validate everything up to (but excluding) the
 * payload bytes: magic, version, key hash and match, mix-section
 * hash, count-vs-mix and count-vs-payload-length consistency, and
 * the total file size against the header.
 */
OpenedTrace
openTrace(const std::string &path, const std::string &expectKey)
{
    auto bad = [&path](const std::string &what) {
        badTrace(path, what);
    };

    OpenedTrace ot;
    ot.file = FileHandle(std::fopen(path.c_str(), "rb"), &std::fclose);
    if (!ot.file)
        throw std::runtime_error("TraceReader: cannot open " + path +
                                 ": " + errnoText());

    std::uint8_t head[wire::headerBytes];
    if (std::fread(head, 1, sizeof(head), ot.file.get()) !=
        sizeof(head))
        bad("truncated header");
    if (std::memcmp(head, wire::magic, sizeof(wire::magic)) != 0) {
        if (std::memcmp(head, wire::magic, sizeof(wire::magic) - 1) ==
            0) {
            bad("unsupported trace format revision '" +
                std::string(1, char(head[7])) + "'");
        }
        bad("bad magic");
    }
    const std::uint32_t version = wire::getLe32(head + 8);
    if (version != wire::formatVersion)
        bad("unsupported format version " + std::to_string(version));
    const std::uint32_t key_bytes = wire::getLe32(head + 12);
    if (key_bytes > wire::maxKeyBytes)
        bad("implausible key length " + std::to_string(key_bytes));
    ot.count = wire::getLe64(head + 16);
    ot.payloadBytes = wire::getLe64(head + 24);
    ot.payloadHash = wire::getLe64(head + 32);
    const std::uint64_t key_hash = wire::getLe64(head + 40);
    const std::uint64_t mix_hash = wire::getLe64(head + 48);

    ot.key.resize(key_bytes);
    if (key_bytes && std::fread(ot.key.data(), 1, key_bytes,
                                ot.file.get()) != key_bytes)
        bad("truncated key");
    if (wire::fnv1a(ot.key.data(), ot.key.size()) != key_hash)
        bad("key hash mismatch");
    if (!expectKey.empty() && ot.key != expectKey) {
        throw TraceKeyMismatch(
            "TraceReader: trace key mismatch (stored \"" + ot.key +
            "\", expected \"" + expectKey + "\") in " + path);
    }

    std::uint8_t mix_raw[wire::mixBytes];
    if (std::fread(mix_raw, 1, sizeof(mix_raw), ot.file.get()) !=
        sizeof(mix_raw))
        bad("truncated mix section");
    if (wire::fnv1a(mix_raw, sizeof(mix_raw)) != mix_hash)
        bad("mix-section hash mismatch");
    for (int c = 0; c < numInstrClasses; ++c) {
        ot.mix.add(static_cast<InstrClass>(c),
                   wire::getLe64(mix_raw + 8 * c));
    }
    if (ot.mix.total() != ot.count) {
        bad("mix total " + std::to_string(ot.mix.total()) +
            " disagrees with record count " + std::to_string(ot.count));
    }

    // A record needs at least minRecordBytes, so a count the payload
    // cannot possibly hold is rejected before any decoding.
    if (ot.count > ot.payloadBytes / wire::minRecordBytes) {
        bad("record count " + std::to_string(ot.count) +
            " inconsistent with payload length " +
            std::to_string(ot.payloadBytes));
    }

    // Validate the physical size against the header without touching
    // the payload bytes, then reposition at the payload.
    const long payload_at = std::ftell(ot.file.get());
    if (payload_at < 0 ||
        std::fseek(ot.file.get(), 0, SEEK_END) != 0) {
        bad("size check seek failed: " + errnoText());
    }
    const long end_at = std::ftell(ot.file.get());
    if (end_at < 0)
        bad("size check tell failed: " + errnoText());
    const std::uint64_t actual =
        std::uint64_t(end_at) - std::uint64_t(payload_at);
    if (actual != ot.payloadBytes) {
        bad("payload is " + std::to_string(actual) +
            " bytes but the header claims " +
            std::to_string(ot.payloadBytes));
    }
    if (std::fseek(ot.file.get(), payload_at, SEEK_SET) != 0)
        bad("payload seek failed: " + errnoText());
    ot.payloadAt = payload_at;
    return ot;
}

/// Checked per reader open (not cached) so tests can toggle the
/// environment between opens.
bool
mmapDisabled()
{
    const char *e = std::getenv("UASIM_NO_MMAP");
    return e && *e != '\0';
}

} // namespace

TraceReader::TraceReader(const std::string &path,
                         const std::string &expectKey)
    : path_(path)
{
    OpenedTrace ot = openTrace(path, expectKey);
    key_ = std::move(ot.key);
    mix_ = ot.mix;
    count_ = ot.count;
    payloadSize_ = ot.payloadBytes;

#if UASIM_HAVE_MMAP
    // Zero-copy path: map the whole file (the payload offset is not
    // page-aligned, so mapping from 0 keeps the arithmetic trivial)
    // and decode straight out of the page cache. The mapping outlives
    // the FILE handle; checksum verification below runs over the
    // mapped bytes themselves, so a torn or corrupted file is caught
    // exactly like on the buffered path.
    if (ot.payloadBytes && !mmapDisabled()) {
        const std::size_t len =
            std::size_t(ot.payloadAt) + std::size_t(ot.payloadBytes);
        void *base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE,
                            ::fileno(ot.file.get()), 0);
        if (base != MAP_FAILED) {
            mapBase_ = base;
            mapLen_ = len;
            data_ = static_cast<const std::uint8_t *>(base) +
                    ot.payloadAt;
            // Streaming hint only; failure changes nothing.
            (void)::madvise(base, len, MADV_SEQUENTIAL);
        }
    }
#endif
    if (!mapBase_) {
        // Buffered fallback: mmap unavailable, disabled via
        // UASIM_NO_MMAP, or an empty payload.
        payload_.resize(ot.payloadBytes);
        if (ot.payloadBytes &&
            std::fread(payload_.data(), 1, ot.payloadBytes,
                       ot.file.get()) != ot.payloadBytes) {
            badTrace(path, "payload read failed");
        }
        data_ = payload_.data();
    }
    if (wire::fnv1a(data_, std::size_t(payloadSize_)) !=
        ot.payloadHash) {
#if UASIM_HAVE_MMAP
        if (mapBase_) {
            (void)::munmap(mapBase_, mapLen_);
            mapBase_ = nullptr;
        }
#endif
        badTrace(path, "payload checksum mismatch");
    }
    cur_ = TraceCursor(this);
}

TraceReader::~TraceReader()
{
#if UASIM_HAVE_MMAP
    if (mapBase_)
        (void)::munmap(mapBase_, mapLen_);
#endif
}

TraceSummary
readTraceSummary(const std::string &path, const std::string &expectKey)
{
    OpenedTrace ot = openTrace(path, expectKey);
    TraceSummary s;
    s.key = std::move(ot.key);
    s.count = ot.count;
    s.mix = ot.mix;
    return s;
}

TraceCursor::TraceCursor(const TraceReader *reader)
    : reader_(reader), pos_(reader->data_)
{
}

bool
TraceCursor::next(InstrRecord &rec)
{
    if (!reader_)
        return false;
    const std::uint8_t *end =
        reader_->data_ + reader_->payloadSize_;
    if (read_ >= reader_->count_) {
        if (pos_ != end)
            throw std::runtime_error(
                "TraceReader: payload continues past the " +
                std::to_string(reader_->count_) +
                " records promised by the "
                "header in " + reader_->path_);
        return false;
    }
    decoder_.decode(pos_, end, rec);
    ++read_;
    return true;
}

std::size_t
TraceCursor::nextBlock(InstrRecord *out, std::size_t maxRecords)
{
    if (!reader_)
        return 0;
    const std::uint8_t *end =
        reader_->data_ + reader_->payloadSize_;
    if (read_ >= reader_->count_) {
        if (pos_ != end)
            throw std::runtime_error(
                "TraceReader: payload continues past the " +
                std::to_string(reader_->count_) +
                " records promised by the "
                "header in " + reader_->path_);
        return 0;
    }
    const std::size_t want = std::size_t(std::min<std::uint64_t>(
        reader_->count_ - read_, maxRecords));
    const std::size_t got = decoder_.decodeBlock(pos_, end, out, want);
    read_ += got;
    if (got < want) {
        // The payload ended on a record boundary before the count
        // promised by the header - the same truncation next() would
        // hit one record later.
        throw std::runtime_error(
            "trace payload truncated mid-record");
    }
    return got;
}

std::uint64_t
TraceReader::drainTo(TraceSink &sink)
{
    InstrRecord block[256];
    std::uint64_t n = 0;
    for (;;) {
        const std::size_t got = nextBlock(block, std::size(block));
        if (got == 0)
            break;
        sink.appendBlock(block, got);
        n += got;
    }
    return n;
}

} // namespace uasim::trace
