#include "trace/trace_io.hh"

#include <cstring>
#include <stdexcept>

namespace uasim::trace {

namespace {

constexpr char traceMagic[8] = {'U', 'A', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr std::size_t writeBufferRecords = 4096;

PackedRecord
pack(const InstrRecord &rec)
{
    PackedRecord p{};
    p.id = rec.id;
    p.pc = rec.pc;
    p.addr = rec.addr;
    p.deps[0] = rec.deps[0];
    p.deps[1] = rec.deps[1];
    p.deps[2] = rec.deps[2];
    p.cls = static_cast<std::uint8_t>(rec.cls);
    p.size = rec.size;
    p.taken = rec.taken ? 1 : 0;
    return p;
}

InstrRecord
unpack(const PackedRecord &p)
{
    InstrRecord rec;
    rec.id = p.id;
    rec.pc = p.pc;
    rec.addr = p.addr;
    rec.deps = {p.deps[0], p.deps[1], p.deps[2]};
    rec.cls = static_cast<InstrClass>(p.cls);
    rec.size = p.size;
    rec.taken = p.taken != 0;
    return rec;
}

} // namespace

FileSink::FileSink(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        throw std::runtime_error("FileSink: cannot open " + path);
    std::uint64_t zero = 0;
    std::fwrite(traceMagic, 1, sizeof(traceMagic), file_);
    std::fwrite(&zero, sizeof(zero), 1, file_);
    buffer_.reserve(writeBufferRecords);
}

FileSink::~FileSink()
{
    close();
}

void
FileSink::append(const InstrRecord &rec)
{
    buffer_.push_back(pack(rec));
    if (buffer_.size() >= writeBufferRecords)
        flushBuffer();
}

void
FileSink::flushBuffer()
{
    if (!buffer_.empty()) {
        std::fwrite(buffer_.data(), sizeof(PackedRecord), buffer_.size(),
                    file_);
        written_ += buffer_.size();
        buffer_.clear();
    }
}

void
FileSink::close()
{
    if (!file_)
        return;
    flushBuffer();
    std::fseek(file_, sizeof(traceMagic), SEEK_SET);
    std::fwrite(&written_, sizeof(written_), 1, file_);
    std::fclose(file_);
    file_ = nullptr;
}

TraceReader::TraceReader(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        throw std::runtime_error("TraceReader: cannot open " + path);
    char magic[8];
    if (std::fread(magic, 1, sizeof(magic), file_) != sizeof(magic) ||
        std::memcmp(magic, traceMagic, sizeof(magic)) != 0) {
        std::fclose(file_);
        file_ = nullptr;
        throw std::runtime_error("TraceReader: bad magic in " + path);
    }
    if (std::fread(&count_, sizeof(count_), 1, file_) != 1) {
        std::fclose(file_);
        file_ = nullptr;
        throw std::runtime_error("TraceReader: truncated header");
    }
}

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceReader::next(InstrRecord &rec)
{
    if (read_ >= count_)
        return false;
    PackedRecord p;
    if (std::fread(&p, sizeof(p), 1, file_) != 1)
        return false;
    rec = unpack(p);
    ++read_;
    return true;
}

std::uint64_t
TraceReader::drainTo(TraceSink &sink)
{
    InstrRecord rec;
    std::uint64_t n = 0;
    while (next(rec)) {
        sink.append(rec);
        ++n;
    }
    return n;
}

} // namespace uasim::trace
