/**
 * @file
 * Persistent, content-addressed store of recorded kernel traces.
 *
 * The store maps a TraceJob key (core/sweep.hh) to a UATRACE2 file
 * under a cache directory, so sweep grids can warm-start across
 * processes: a job whose trace is already on disk replays it instead
 * of re-emulating the kernel. Entries are addressed by
 *
 *     tr-<fnv1a64(key) in hex>-v<formatVersion>.uatrace
 *
 * which makes the invalidation rule purely mechanical: a new key is a
 * new entry, and bumping wire::formatVersion orphans every old file
 * (they are never matched, only ignored). Each file also stores the
 * full key string, verified on load, so a 64-bit hash collision reads
 * as a miss rather than as the wrong trace.
 *
 * Robustness policy: the store must never corrupt a sweep. Writes go
 * to a temporary file that is atomically renamed into place on
 * commit, concurrent writers of the same key both produce identical
 * bytes and the later rename wins, and a corrupt or truncated entry
 * is reported, deleted, and treated as a miss (the job simply records
 * again). Only TraceStore construction throws; load()/startRecord()
 * degrade gracefully because a broken cache must not fail the run.
 */

#ifndef UASIM_TRACE_TRACE_STORE_HH
#define UASIM_TRACE_TRACE_STORE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "trace/sink.hh"
#include "trace/trace_io.hh"

namespace uasim::trace {

class TraceStore
{
  public:
    /**
     * Open (creating if needed) the cache directory.
     * @throws std::runtime_error if the directory cannot be created
     * or is not writable.
     */
    explicit TraceStore(std::string dir);

    const std::string &dir() const { return dir_; }

    /// Entry file path for @p key (exists or not).
    std::string entryPath(const std::string &key) const;

    /**
     * Probe the store and stream a stored trace into @p sink.
     *
     * @return the record count on a hit; std::nullopt on a miss. A
     * corrupt entry is reported to stderr, deleted, and returned as a
     * miss - note that @p sink may then have received a partial
     * record stream, so callers should drain into a discardable
     * buffer (the SweepRunner does).
     */
    std::optional<std::uint64_t> load(const std::string &key,
                                      TraceSink &sink) const;

    /**
     * Probe for the header-only summary (count + hash-validated mix)
     * of a stored trace without reading the payload - the mix-only
     * warm-start path. Corruption policy as load().
     */
    std::optional<TraceSummary> loadSummary(const std::string &key) const;

    /**
     * Probe the store and open the entry for direct (zero-copy where
     * mmap is available) decoding: the caller drains the reader - or
     * any number of TraceCursor passes over it - itself. This is the
     * multi-shard replay path; unlike load() nothing is streamed
     * eagerly, so a hit costs one checksum pass and no payload copy.
     *
     * @return nullptr on a miss; corruption policy as load() (report,
     * delete, miss). The reader's payload decodes lazily, so a
     * corrupt record stream with a valid checksum surfaces later as a
     * decode throw - see discardEntry() for healing that case.
     */
    std::unique_ptr<TraceReader> openReader(const std::string &key) const;

    /**
     * Report and delete the entry for @p key (mid-decode corruption
     * healing: callers that hit a decode error on an openReader()
     * stream discard the entry and re-record, matching load()'s
     * corrupt-entry policy). Best-effort; never throws.
     */
    void discardEntry(const std::string &key,
                      const std::string &why) const;

    /**
     * Write-through sink for one entry: records appended to it are
     * serialized to a temporary file that commit() atomically renames
     * to entryPath(key). Destroying an uncommitted recorder removes
     * the temporary file.
     *
     * append() never throws into the record stream: a write failure
     * (e.g. a full disk) latches the recorder as failed, later
     * appends become no-ops, and commit() reports the original error
     * instead of publishing - the caller's recording pass completes
     * uncached rather than aborting mid-trace.
     */
    class Recorder : public TraceSink
    {
      public:
        Recorder(const std::string &tmpPath, std::string finalPath,
                 const std::string &key);
        ~Recorder() override;

        void append(const InstrRecord &rec) override;

        /**
         * Finalize the file and publish it under the entry path.
         * @throws std::runtime_error on any I/O failure, including a
         * latched append() failure (the temporary file is removed
         * first).
         */
        void commit();

        std::uint64_t written() const { return sink_.written(); }

      private:
        FileSink sink_;
        std::string tmpPath_;
        std::string finalPath_;
        std::string appendError_;
        bool committed_ = false;
    };

    /**
     * Start recording an entry for @p key.
     * @return nullptr (with a stderr report) if the temporary file
     * cannot be created - the caller just records uncached.
     */
    std::unique_ptr<Recorder> startRecord(const std::string &key) const;

  private:
    std::string dir_;
};

} // namespace uasim::trace

#endif // UASIM_TRACE_TRACE_STORE_HH
