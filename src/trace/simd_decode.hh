/**
 * @file
 * Runtime-dispatched SIMD block decode of the UATRACE2 record stream.
 *
 * The decoder's fast region (at least wire::maxRecordBytes readable,
 * see RecordDecoder::decodeBlock) is delegated to a per-host kernel:
 *
 *   scalar  the portable byte-at-a-time LEB128 loop (always built,
 *           the mandatory fallback and the reference implementation)
 *   sse42   x86: 16-byte PMOVMSKB continuation-mask classification +
 *           SWAR 7-bit-group compaction
 *   avx2    x86: 32-byte VPMOVMSKB classification + one PEXT (BMI2)
 *           extraction per varint
 *   neon    aarch64: 16-byte bit-narrowing classification + the same
 *           SWAR compaction as sse42
 *
 * Every kernel classifies varint lengths from one continuation-bit
 * mask per record (a single vector load + movemask covers all of a
 * typical record's fields) and extracts each value branch-free; any
 * varint longer than 8 bytes - or extending past the classification
 * window - falls back to the scalar read for that one field, so the
 * decoded values, the decode state, and every error (including the
 * over-long-varint rule) are bit-identical to the scalar loop.
 * tests/simd_decode_test.cc is the differential harness that locks
 * scalar/SIMD equivalence on adversarial streams for every tier the
 * host can run.
 *
 * Dispatch: activeTier() picks the best supported tier once, unless
 * overridden by the UASIM_DECODE environment variable
 * ("scalar"/"sse42"/"avx2"/"neon"; an unknown or unsupported name is
 * fatal) or its blunt cousin UASIM_FORCE_SCALAR=1. forceTier() - used
 * by tests and the trace_decode bench - overrides both at runtime.
 */

#ifndef UASIM_TRACE_SIMD_DECODE_HH
#define UASIM_TRACE_SIMD_DECODE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/trace_io.hh"

namespace uasim::trace::simd {

/// Decoder implementation tiers, portable fallback first.
enum class Tier : std::uint8_t { Scalar = 0, SSE42, AVX2, NEON };

/// Lower-case tier name as accepted by UASIM_DECODE.
const char *tierName(Tier tier);

/// Parse a UASIM_DECODE-style tier name. @return false when unknown.
bool parseTierName(const char *name, Tier &tier);

/// Whether this build can run @p tier on this host (compiled in and
/// the CPU reports the required features). Scalar is always true.
bool tierSupported(Tier tier);

/// Every tier supported on this host, scalar first.
std::vector<Tier> supportedTiers();

/**
 * The tier decodeRun() dispatches to: a forceTier() override if one
 * is set, else the UASIM_DECODE / UASIM_FORCE_SCALAR environment
 * override (parsed once; unknown or unsupported names exit(2)), else
 * the best tier the host supports.
 */
Tier activeTier();

/**
 * Force the dispatch tier at runtime (wins over the environment).
 * @return false - and leave the dispatch unchanged - if @p tier is
 * not supported on this host.
 */
bool forceTier(Tier tier);

/// Drop a forceTier() override; dispatch reverts to env/auto.
void clearForcedTier();

/**
 * Decode records from [@p p, @p end) into @p out, advancing @p p,
 * until @p maxRecords are decoded or fewer than wire::maxRecordBytes
 * remain (the caller finishes the tail with the checked scalar
 * decoder). Threads the shared delta state @p st exactly like the
 * scalar loop and throws exactly where RecordDecoder::decode() would.
 * @return the number of records decoded.
 */
std::size_t decodeRun(const std::uint8_t *&p, const std::uint8_t *end,
                      InstrRecord *out, std::size_t maxRecords,
                      wire::DecodeState &st);

/// decodeRun() pinned to one tier, which must be supported on this
/// host (differential tests and the trace_decode bench).
std::size_t decodeRunWith(Tier tier, const std::uint8_t *&p,
                          const std::uint8_t *end, InstrRecord *out,
                          std::size_t maxRecords,
                          wire::DecodeState &st);

} // namespace uasim::trace::simd

#endif // UASIM_TRACE_SIMD_DECODE_HH
