/**
 * @file
 * NEON (aarch64) decode kernel. AArch64 has no PMOVMSKB; the
 * terminator mask is built with the standard shrn-by-4 narrowing
 * trick instead: a byte-wise 0x80 test yields 0xff/0x00 lanes, and
 * narrowing each 16-bit pair right by 4 packs them into one nibble
 * per payload byte. The nibble mask is then thinned to one bit per
 * byte (bit 4*i for byte i) so the shared mask walk - clear lowest
 * set bit per field - works unchanged; positions just shift right by
 * 2. Value extraction shares the SWAR compaction with the SSE4.2
 * tier. NEON is baseline on aarch64, so this file needs no special
 * flags - it is simply only compiled there.
 */

#include "trace/decode_detail.hh"

#include <arm_neon.h>

namespace uasim::trace::simd::detail {

namespace {

struct NeonTraits {
    static constexpr unsigned width = 16;
    static constexpr unsigned scale = 4;  // mask bits per byte

    /// One bit per byte at position 4*i: byte i terminates a varint.
    static std::uint64_t
    termMask(const std::uint8_t *p)
    {
        const uint8x16_t w = vld1q_u8(p);
        const uint8x16_t top = vtstq_u8(w, vdupq_n_u8(0x80));
        const uint8x8_t nib =
            vshrn_n_u16(vreinterpretq_u16_u8(top), 4);
        const std::uint64_t cont =
            vget_lane_u64(vreinterpret_u64_u8(nib), 0);
        return ~cont & 0x1111111111111111ull;
    }

    /// Byte index of the lowest set mask bit; >= width when empty
    /// (countr_zero(0) == 64 maps to exactly 16).
    static unsigned
    pos(std::uint64_t m)
    {
        return unsigned(std::countr_zero(m)) >> 2;
    }

    /// Value of a varint of t+1 bytes starting at raw's byte 0.
    static std::uint64_t
    extract(std::uint64_t raw, unsigned t)
    {
        return swarExtract(raw &
                           (~std::uint64_t{0} >> ((7 - t) * 8)));
    }
};

} // namespace

std::size_t
decodeRunNeon(const std::uint8_t *&p, const std::uint8_t *end,
              InstrRecord *out, std::size_t maxRecords,
              wire::DecodeState &st)
{
    return decodeRunSimd<NeonTraits>(p, end, out, maxRecords, st);
}

} // namespace uasim::trace::simd::detail
