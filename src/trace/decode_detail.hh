/**
 * @file
 * Internals shared by the per-tier UATRACE2 block-decode kernels
 * (trace/simd_decode.hh). Not part of the public trace API.
 *
 * The three vector tiers differ only in how they (a) build one
 * byte-granular varint-terminator mask over a window of payload
 * bytes, (b) read a bit position out of that mask, and (c) compact an
 * 8-byte load into the varint's value, so the whole record loop lives
 * here once as decodeRunSimd<Traits> and each kernel translation
 * unit - compiled with its own ISA flags - instantiates it with a
 * tiny Traits struct. Everything else
 * (tag validation, delta application, the over-long-varint rule, the
 * exact error messages) is shared, which is what makes the
 * bit-identical-to-scalar guarantee cheap to keep.
 */

#ifndef UASIM_TRACE_DECODE_DETAIL_HH
#define UASIM_TRACE_DECODE_DETAIL_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

#include "trace/instr.hh"
#include "trace/trace_io.hh"

namespace uasim::trace::simd::detail {

[[noreturn]] inline void
throwTruncated()
{
    throw std::runtime_error("trace payload truncated mid-record");
}

/**
 * Varint read without end-of-buffer checks: the caller guarantees at
 * least 10 readable bytes. Consumes exactly the bytes wire::getVarint
 * would and applies the same over-long (> 10 byte) rule, so the two
 * are interchangeable wherever the guarantee holds.
 */
inline bool
getVarintUnchecked(const std::uint8_t *&p, std::uint64_t &v)
{
    std::uint64_t byte = *p++;
    v = byte & 0x7f;
    int shift = 7;
    while (byte & 0x80) {
        if (shift >= 70)
            return false;  // over-long encoding
        byte = *p++;
        v |= (byte & 0x7f) << shift;
        shift += 7;
    }
    return true;
}

/// Validate a record's tag byte and set cls/taken, with the exact
/// error text of RecordDecoder::decode().
inline void
applyTag(std::uint8_t tag, InstrRecord &rec)
{
    const std::uint8_t cls = tag & 0x7f;
    if (cls >= static_cast<std::uint8_t>(InstrClass::NumClasses))
        throw std::runtime_error(
            "invalid instruction class byte " + std::to_string(cls) +
            " in trace payload");
    rec.cls = static_cast<InstrClass>(cls);
    if ((tag & 0x80) && rec.cls != InstrClass::Branch)
        throw std::runtime_error(
            "taken flag set on non-branch record in trace payload");
    rec.taken = (tag & 0x80) != 0;
}

/// Decode one record with no end-of-buffer checks (the caller
/// guarantees wire::maxRecordBytes readable). The scalar tier's body,
/// and the reference the vector tiers are proven against.
inline void
decodeOneUnchecked(const std::uint8_t *&p, InstrRecord &rec,
                   wire::DecodeState &st)
{
    const std::uint8_t tag = *p++;
    applyTag(tag, rec);
    std::uint64_t v;
    if (!getVarintUnchecked(p, v))
        throwTruncated();
    rec.id = st.prevId + std::uint64_t(wire::unzigzag(v));
    st.prevId = rec.id;
    if (!getVarintUnchecked(p, v))
        throwTruncated();
    rec.pc = st.prevPc + std::uint64_t(wire::unzigzag(v));
    st.prevPc = rec.pc;
    if (isMemClass(rec.cls)) {
        if (!getVarintUnchecked(p, v))
            throwTruncated();
        rec.addr = st.prevAddr + std::uint64_t(wire::unzigzag(v));
        st.prevAddr = rec.addr;
        rec.size = *p++;
    } else {
        rec.addr = 0;
        rec.size = 0;
    }
    for (auto &dep : rec.deps) {
        if (!getVarintUnchecked(p, v))
            throwTruncated();
        dep = v ? rec.id - std::uint64_t(wire::unzigzag(v - 1)) : 0;
    }
}

inline std::uint64_t
load64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

/**
 * Compact the 7 payload bits of up to 8 little-endian varint bytes
 * (already masked down to the varint's length) into one value: drop
 * every byte's continuation bit, then close the gaps in three
 * shift-or steps (7-bit groups -> 14 -> 28 -> 56). Bytes above the
 * varint's length must be zero in @p raw; they then contribute zero
 * high groups and leave the value unchanged.
 */
inline std::uint64_t
swarExtract(std::uint64_t raw)
{
    std::uint64_t x = raw & 0x7f7f7f7f7f7f7f7full;
    x = ((x & 0x7f007f007f007f00ull) >> 1) |
        (x & 0x007f007f007f007full);
    x = ((x & 0x3fff00003fff0000ull) >> 2) |
        (x & 0x00003fff00003fffull);
    x = ((x & 0x0fffffff00000000ull) >> 4) |
        (x & 0x000000000fffffffull);
    return x;
}

/// Expand the low 8 bits of @p bits so bit i lands at position
/// i * scale - the shape of a terminator mask whose tiers spend
/// `scale` mask bits per payload byte (1 on x86, 4 on NEON).
constexpr std::uint64_t
spreadBits(std::uint64_t bits, unsigned scale)
{
    std::uint64_t r = 0;
    for (unsigned i = 0; i < 8; ++i)
        if (bits >> i & 1)
            r |= std::uint64_t{1} << (i * scale);
    return r;
}

/// How a record-decode attempt against the current window ended.
enum class FieldStatus : std::uint8_t {
    Ok,         ///< every field classified inside the window
    Exhausted,  ///< a field ran past the window's last byte
    Irregular,  ///< a varint of more than 8 bytes (rare; scalar path)
};

/**
 * The shared record loop of every vector tier: decode records until
 * @p maxRecords are done or fewer than wire::maxRecordBytes remain.
 *
 * One vector load builds a byte-granular *terminator* mask
 * (Traits::termMask: bit set where a byte ends a varint) over a
 * Traits::width-byte window, and *several* records decode out of that
 * one mask before it is rebuilt - the load + movemask latency
 * amortizes across the window instead of re-entering the carried
 * chain every record. Within the window, field lengths come from
 * walking the mask - pos = count-trailing-zeros, consume =
 * clear-lowest-set-bit - so the only dependence carried from field to
 * field (and record to record) is a single-cycle blsr, and every
 * value extraction (8-byte load + Traits::extract) runs off the chain
 * in parallel. The earlier formulations serialized either a
 * shift+ctz chain through every field or a movemask through every
 * record; both showed up whole on the critical path.
 *
 * Each attempt works on copies of the window cursor; nothing (decode
 * state, output record, stream position, window) commits until every
 * field of the record classified cleanly. A record that runs past the
 * window retries once against a fresh window starting at the record;
 * if it still does not fit, or any varint exceeds 8 bytes, it
 * re-decodes wholesale on the scalar reference path with pristine
 * state - so values, state, and every error (texts included) are
 * bit-identical to the scalar loop by construction.
 *
 * The tag and mem-class size bytes are raw, not varints: when such a
 * byte's high bit is clear it looks like a terminator in the mask and
 * its bit - then the lowest set, since every earlier byte's bit has
 * been consumed - is dropped with one blsr; when the high bit is set
 * it contributed no bit. Either way the walk stays aligned with the
 * field sequence.
 */
template <class Traits>
inline std::size_t
decodeRunSimd(const std::uint8_t *&p, const std::uint8_t *end,
              InstrRecord *out, std::size_t maxRecords,
              wire::DecodeState &st)
{
    // Terminator-mask shapes of the dominant every-field-one-byte
    // record: field bytes that must all be terminators (the mem
    // record's raw size byte is a don't-care hole), and the full
    // span to retire from the mask once taken.
    constexpr unsigned S = Traits::scale;
    constexpr std::uint64_t onesNonMem = spreadBits(0x1f, S);
    constexpr std::uint64_t onesMem = spreadBits(0x77, S);
    constexpr std::uint64_t spanNonMem = spreadBits(0x3f, S);
    constexpr std::uint64_t spanMem = spreadBits(0xff, S);

    // Refill the window once fewer than `slack` bytes remain: large
    // enough that the records this wire format actually produces
    // (6-13 bytes; see bench/trace_decode.cc) almost never run past
    // the window and pay the retry, small enough to keep most of the
    // window's bytes useful per vector load.
    constexpr unsigned slack =
        Traits::width >= 32 ? 14 : wire::minRecordBytes + 2;

    std::size_t n = 0;
    const std::uint8_t *base = p;  // window start
    std::uint64_t mask = 0;        // live terminator bits in window
    unsigned next = Traits::width; // next unread byte; >= width-slack
                                   // at a record top forces a refill

    while (n < maxRecords &&
           std::size_t(end - p) >= wire::maxRecordBytes) {
        // Invariant at every attempt: base + next == p.
        if (Traits::width - next < slack) {
            base = p;
            mask = Traits::termMask(p);
            next = 0;
        }
        InstrRecord &rec = out[n];
        std::uint64_t m = 0, vId = 0, vPc = 0, vAddr = 0;
        std::uint64_t d0 = 0, d1 = 0, d2 = 0;
        unsigned start = 0;
        std::uint8_t size = 0;
        FieldStatus fs = FieldStatus::Ok;

        // One varint field: its terminator is the lowest live mask
        // bit. After a failure the remaining calls run on frozen
        // state and reproduce the same status; start only ever holds
        // a value a successful field produced, so with width <= 32
        // every base + start + 8 access stays inside the
        // wire::maxRecordBytes guarantee at p.
        auto field = [&](std::uint64_t &v) {
            const unsigned pos = Traits::pos(m);
            if (pos >= Traits::width) {
                fs = FieldStatus::Exhausted;
                return;
            }
            const unsigned t = pos - start;
            if (t > 7) {
                fs = FieldStatus::Irregular;  // 9/10-byte or over-long
                return;
            }
            v = Traits::extract(load64(base + start), t);
            m &= m - 1;
            start = pos + 1;
        };

        for (;;) {
            m = mask;
            start = next;
            fs = FieldStatus::Ok;
            const std::uint8_t tag = base[start];
            applyTag(tag, rec);  // same byte as *p on every attempt
            const bool mem = isMemClass(rec.cls);

            // Fast path for the dominant record shape: every field a
            // single byte. One mask compare classifies the whole
            // record (bits past the window are zero, so a straddling
            // span can never match), every field byte is its own
            // value, and the span retires with one AND. The mem /
            // non-mem difference is select arithmetic, not control
            // flow: the one unpredictable branch left per record is
            // this fast-vs-general split. (The speculative b[2..6]
            // reads stay in bounds: b + 7 < p + wire::maxRecordBytes;
            // non-mem commits ignore vAddr/size.)
            const std::uint64_t need = mem ? onesMem : onesNonMem;
            if (((mask >> (S * (next + 1))) & need) == need) {
                const std::uint8_t *b = base + next + 1;
                const unsigned depOff = mem ? 4u : 2u;
                vId = b[0];
                vPc = b[1];
                vAddr = b[2];
                size = b[3];
                d0 = b[depOff];
                d1 = b[depOff + 1];
                d2 = b[depOff + 2];
                m = mask &
                    ~((mem ? spanMem : spanNonMem) << (S * next));
                start = next + depOff + 4u;
            } else {
                if (!(tag & 0x80))
                    m &= m - 1;  // the tag's terminator-look-alike bit
                ++start;

                field(vId);
                field(vPc);
                if (mem) {
                    field(vAddr);
                    if (fs == FieldStatus::Ok) {
                        size = base[start];
                        if (!(size & 0x80))
                            m &= m - 1;
                        ++start;
                    }
                }
                field(d0);
                field(d1);
                field(d2);
            }

            if (fs == FieldStatus::Ok) {
                mask = m;
                next = start;
                const std::uint64_t id =
                    st.prevId + std::uint64_t(wire::unzigzag(vId));
                rec.id = id;
                st.prevId = id;
                rec.pc =
                    st.prevPc + std::uint64_t(wire::unzigzag(vPc));
                st.prevPc = rec.pc;
                // Branchless mem commit: the addr sum is computed
                // either way (vAddr is 0 or a dead speculative read
                // for non-mem) and selects decide what sticks.
                const std::uint64_t addr =
                    st.prevAddr + std::uint64_t(wire::unzigzag(vAddr));
                st.prevAddr = mem ? addr : st.prevAddr;
                rec.addr = mem ? addr : 0;
                rec.size = mem ? size : 0;
                rec.deps[0] =
                    d0 ? id - std::uint64_t(wire::unzigzag(d0 - 1))
                       : 0;
                rec.deps[1] =
                    d1 ? id - std::uint64_t(wire::unzigzag(d1 - 1))
                       : 0;
                rec.deps[2] =
                    d2 ? id - std::uint64_t(wire::unzigzag(d2 - 1))
                       : 0;
                p = base + start;
                break;
            }
            if (fs == FieldStatus::Exhausted && base != p) {
                // Stale window ran out mid-record: one retry against
                // a fresh window starting at this record.
                base = p;
                mask = Traits::termMask(p);
                next = 0;
                continue;
            }
            // Irregular varint, or a record longer than a whole
            // window: the scalar reference decodes it and the window
            // no longer tracks p, so poison next to force a refill.
            decodeOneUnchecked(p, rec, st);
            next = Traits::width;
            break;
        }
        ++n;
    }
    return n;
}

// Per-tier kernels, each defined in its own translation unit compiled
// with the matching ISA flags (see the UASIM_DECODE_* source lists in
// CMakeLists.txt); declared unconditionally, referenced only behind
// the corresponding UASIM_DECODE_* macro.
std::size_t decodeRunScalar(const std::uint8_t *&p,
                            const std::uint8_t *end, InstrRecord *out,
                            std::size_t maxRecords,
                            wire::DecodeState &st);
std::size_t decodeRunSse42(const std::uint8_t *&p,
                           const std::uint8_t *end, InstrRecord *out,
                           std::size_t maxRecords,
                           wire::DecodeState &st);
std::size_t decodeRunAvx2(const std::uint8_t *&p,
                          const std::uint8_t *end, InstrRecord *out,
                          std::size_t maxRecords,
                          wire::DecodeState &st);
std::size_t decodeRunNeon(const std::uint8_t *&p,
                          const std::uint8_t *end, InstrRecord *out,
                          std::size_t maxRecords,
                          wire::DecodeState &st);

} // namespace uasim::trace::simd::detail

#endif // UASIM_TRACE_DECODE_DETAIL_HH
