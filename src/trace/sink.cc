#include "trace/sink.hh"

// All sink implementations are currently header-only; this translation
// unit anchors the vtables.

namespace uasim::trace {
} // namespace uasim::trace
