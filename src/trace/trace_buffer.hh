/**
 * @file
 * In-memory recorded trace for record-once/replay-many experiments.
 *
 * A TraceBuffer is the capture side of the sweep engine
 * (core/sweep.hh): a worker records a workload's normalized record
 * stream once, then replays the buffer into any number of timing
 * simulators. Replay feeds the exact records that were appended, in
 * order, so a replayed PipelineSim is bit-identical to one that
 * consumed the emulation stream directly (tests/sweep_test.cc locks
 * this equivalence).
 */

#ifndef UASIM_TRACE_TRACE_BUFFER_HH
#define UASIM_TRACE_TRACE_BUFFER_HH

#include <cstddef>
#include <vector>

#include "trace/instr.hh"
#include "trace/mix.hh"
#include "trace/sink.hh"

namespace uasim::trace {

/// Sink that stores the full record stream and its running mix.
class TraceBuffer : public TraceSink
{
  public:
    void
    append(const InstrRecord &rec) override
    {
        records_.push_back(rec);
        mix_.add(rec);
    }

    void
    appendBlock(const InstrRecord *recs, std::size_t n) override
    {
        records_.insert(records_.end(), recs, recs + n);
        for (std::size_t i = 0; i < n; ++i)
            mix_.add(recs[i]);
    }

    /// Number of buffered records.
    std::size_t size() const { return records_.size(); }

    /// Instruction mix of the buffered stream.
    const InstrMix &mix() const { return mix_; }

    const std::vector<InstrRecord> &records() const { return records_; }

    /// Feed every buffered record, in order, into @p down.
    void
    replayInto(TraceSink &down) const
    {
        down.appendBlock(records_.data(), records_.size());
    }

    /// Drop the buffered stream (keeps capacity).
    void
    clear()
    {
        records_.clear();
        mix_.clear();
    }

  private:
    std::vector<InstrRecord> records_;
    InstrMix mix_;
};

} // namespace uasim::trace

#endif // UASIM_TRACE_TRACE_BUFFER_HH
