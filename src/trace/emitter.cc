#include "trace/emitter.hh"

// Emitter is header-only for speed; this TU exists for symmetry and
// future out-of-line growth.

namespace uasim::trace {
} // namespace uasim::trace
