/**
 * @file
 * Binary trace serialization (the MET-style offline flow).
 *
 * Format: 8-byte magic "UATRACE1", u64 record count (patched on close),
 * then packed little-endian records.
 */

#ifndef UASIM_TRACE_TRACE_IO_HH
#define UASIM_TRACE_TRACE_IO_HH

#include <cstdio>
#include <string>
#include <vector>

#include "trace/instr.hh"
#include "trace/sink.hh"

namespace uasim::trace {

/// On-disk record layout (fixed width, packed).
struct PackedRecord {
    std::uint64_t id;
    std::uint64_t pc;
    std::uint64_t addr;
    std::uint64_t deps[3];
    std::uint8_t cls;
    std::uint8_t size;
    std::uint8_t taken;
    std::uint8_t pad[5];
};

static_assert(sizeof(PackedRecord) == 56, "packed record must be 56B");

/**
 * Sink that writes records to a binary trace file.
 *
 * The file is finalized (count patched) by close() or the destructor.
 */
class FileSink : public TraceSink
{
  public:
    /// @param path destination file; truncated if it exists.
    explicit FileSink(const std::string &path);
    ~FileSink() override;

    FileSink(const FileSink &) = delete;
    FileSink &operator=(const FileSink &) = delete;

    void append(const InstrRecord &rec) override;

    /// Flush buffered records and patch the header. Idempotent.
    void close();

    std::uint64_t written() const { return written_; }

  private:
    void flushBuffer();

    std::FILE *file_ = nullptr;
    std::vector<PackedRecord> buffer_;
    std::uint64_t written_ = 0;
};

/**
 * Reader for trace files produced by FileSink.
 */
class TraceReader
{
  public:
    /// @throws std::runtime_error on missing file or bad magic.
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /// Total records in the file.
    std::uint64_t count() const { return count_; }

    /// Read the next record. @return false at end of trace.
    bool next(InstrRecord &rec);

    /// Stream the remaining records into a sink. @return records read.
    std::uint64_t drainTo(TraceSink &sink);

  private:
    std::FILE *file_ = nullptr;
    std::uint64_t count_ = 0;
    std::uint64_t read_ = 0;
};

} // namespace uasim::trace

#endif // UASIM_TRACE_TRACE_IO_HH
