/**
 * @file
 * Binary trace serialization: the UATRACE2 on-disk format.
 *
 * Layout:
 *
 *   header (56 bytes, little-endian):
 *     [ 0..7 ]  magic "UATRACE2"
 *     [ 8..11]  u32 format version (wire::formatVersion)
 *     [12..15]  u32 key length in bytes
 *     [16..23]  u64 record count          (patched on close)
 *     [24..31]  u64 payload length        (patched on close)
 *     [32..39]  u64 payload FNV-1a hash   (patched on close)
 *     [40..47]  u64 key FNV-1a hash
 *     [48..55]  u64 mix-section FNV-1a hash (patched on close)
 *   key bytes (the trace job's cache key, for exact-match validation)
 *   mix section: per-class record counts, numInstrClasses x u64
 *     (patched on close; lets mix-only consumers skip the payload)
 *   payload   (delta/varint-compacted record stream)
 *
 * Each record is encoded as: a tag byte (instruction class, plus the
 * branch-taken flag in bit 7), a zigzag-varint id delta, a zigzag-
 * varint pc delta, then - for memory classes only - a zigzag-varint
 * address delta and a raw size byte, then three dep fields encoded
 * relative to the record's own id. Fields that are meaningless for a
 * class (addr/size on non-memory records, taken on non-branches) are
 * canonicalized to zero, which every consumer (PipelineSim, InstrMix)
 * already treats as "absent".
 *
 * Every error path is checked: FileSink::close() throws on any failed
 * write/flush/seek/close (the destructor reports to stderr instead),
 * and TraceReader validates magic, version, file size against the
 * header, the payload checksum, and per-record class/flag sanity, so a
 * truncated or corrupted file is rejected instead of silently read as
 * data.
 */

#ifndef UASIM_TRACE_TRACE_IO_HH
#define UASIM_TRACE_TRACE_IO_HH

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/instr.hh"
#include "trace/mix.hh"
#include "trace/sink.hh"

namespace uasim::trace {

/**
 * Wire-format primitives, public so tests can craft valid and
 * deliberately corrupt trace files byte by byte.
 */
namespace wire {

/// Current on-disk format version; bumping it invalidates every
/// stored trace (the TraceStore embeds it in entry file names).
constexpr std::uint32_t formatVersion = 2;

/// File magic; the trailing character tracks the major format.
constexpr char magic[8] = {'U', 'A', 'T', 'R', 'A', 'C', 'E', '2'};

/// Serialized header size in bytes.
constexpr std::size_t headerBytes = 56;

/// Serialized mix-section size in bytes (one u64 per class).
constexpr std::size_t mixBytes = std::size_t(numInstrClasses) * 8;

/// Smallest possible encoded record (tag + 5 single-byte varints).
constexpr std::size_t minRecordBytes = 6;

/// Largest possible encoded record: tag byte + 10-byte id and pc
/// varints + 10-byte addr varint + size byte + three 10-byte dep
/// varints. The block decoder's unchecked fast path relies on this
/// bound: with maxRecordBytes readable it can skip every per-field
/// end-of-buffer check.
constexpr std::size_t maxRecordBytes = 62;

/// Upper bound on a plausible key length (headers claiming more are
/// rejected as corrupt before any allocation).
constexpr std::uint32_t maxKeyBytes = 4096;

/// 64-bit FNV-1a over @p n bytes, continuing from @p state.
std::uint64_t fnv1a(const void *data, std::size_t n,
                    std::uint64_t state = 0xcbf29ce484222325ull);

/// Append @p v to @p out as a LEB128 varint (at most 10 bytes).
void putVarint(std::string &out, std::uint64_t v);

/**
 * Decode one varint from [@p p, @p end), advancing @p p.
 * @return false on truncated or over-long (> 10 byte) encodings.
 */
bool getVarint(const std::uint8_t *&p, const std::uint8_t *end,
               std::uint64_t &v);

/// Zigzag-map a signed delta into an unsigned varint payload.
constexpr std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

/// Inverse of zigzag().
constexpr std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Parsed/serializable UATRACE2 header.
struct Header {
    std::uint32_t version = formatVersion;
    std::uint32_t keyBytes = 0;
    std::uint64_t recordCount = 0;
    std::uint64_t payloadBytes = 0;
    std::uint64_t payloadHash = 0;
    std::uint64_t keyHash = 0;
    std::uint64_t mixHash = 0;

    /// Serialize to the fixed little-endian layout.
    std::string serialize() const;
};

/// Serialize an InstrMix to the fixed little-endian mix section.
std::string serializeMix(const InstrMix &mix);

/**
 * Stateful delta encoder for the record stream. Encoder and decoder
 * must see the same record sequence from the start of the payload.
 */
class RecordEncoder
{
  public:
    /// Append the encoding of @p rec to @p out.
    void encode(const InstrRecord &rec, std::string &out);

  private:
    std::uint64_t prevId_ = 0;
    std::uint64_t prevPc_ = 0;
    std::uint64_t prevAddr_ = 0;
};

/**
 * Cross-record delta state of the decoder: the running previous value
 * of each delta-encoded lane. Split out of RecordDecoder so the
 * runtime-dispatched block decoders (trace/simd_decode.hh) can thread
 * the exact same state through their fast paths.
 */
struct DecodeState {
    std::uint64_t prevId = 0;
    std::uint64_t prevPc = 0;
    std::uint64_t prevAddr = 0;
};

/// Stateful decoder matching RecordEncoder.
class RecordDecoder
{
  public:
    /**
     * Decode one record from [@p p, @p end), advancing @p p.
     * @throws std::runtime_error on truncated bytes, an out-of-range
     * instruction class, or a taken flag on a non-branch.
     */
    void decode(const std::uint8_t *&p, const std::uint8_t *end,
                InstrRecord &rec);

    /**
     * Decode up to @p maxRecords records from [@p p, @p end) into
     * @p out, advancing @p p. Records are decoded on an unchecked
     * fast path while at least maxRecordBytes remain (no per-field
     * bounds checks; the path is SIMD-accelerated when the host
     * supports it, see trace/simd_decode.hh), falling back to the
     * checked scalar path near the end of the buffer, so the result
     * is byte-for-byte identical to @p maxRecords decode() calls -
     * including every error case (trace_io_test and simd_decode_test
     * lock the equivalence property across every dispatch tier).
     *
     * @return the number of records decoded; less than @p maxRecords
     * only when the buffer ended cleanly on a record boundary.
     * @throws std::runtime_error exactly where decode() would.
     */
    std::size_t decodeBlock(const std::uint8_t *&p,
                            const std::uint8_t *end, InstrRecord *out,
                            std::size_t maxRecords);

  private:
    DecodeState st_;
};

} // namespace wire

/**
 * Sink that writes records to a UATRACE2 trace file.
 *
 * The file is finalized (count/length/checksum patched) by close(),
 * which throws on any I/O failure - a full disk can no longer yield a
 * truncated trace with a valid-looking header. The destructor closes
 * as a fallback but reports failures to stderr instead of throwing.
 */
class FileSink : public TraceSink
{
  public:
    /**
     * @param path destination file; truncated if it exists.
     * @param key trace-job identity stored in the file (may be empty).
     * @throws std::runtime_error if the file cannot be created.
     */
    explicit FileSink(const std::string &path, std::string key = {});
    ~FileSink() override;

    FileSink(const FileSink &) = delete;
    FileSink &operator=(const FileSink &) = delete;

    void append(const InstrRecord &rec) override;

    /**
     * Flush buffered records and patch the header. Idempotent.
     * @throws std::runtime_error on any write/flush/seek/close
     * failure (the file is closed and left invalid on disk).
     */
    void close();

    std::uint64_t written() const { return written_; }

    /// False once any I/O on the file has failed.
    bool ok() const { return !failed_; }

  private:
    void flushBuffer();
    void fail(const std::string &what);

    std::FILE *file_ = nullptr;
    std::string path_;
    std::string key_;
    std::string buffer_;
    wire::RecordEncoder encoder_;
    InstrMix mix_;
    std::uint64_t written_ = 0;
    std::uint64_t payloadBytes_ = 0;
    std::uint64_t payloadHash_ = 0xcbf29ce484222325ull;  //!< FNV basis
    bool failed_ = false;
};

/**
 * Thrown when a trace file is valid but stores a different key than
 * the caller expected (a content-address hash collision). Kept
 * distinct from plain corruption so the TraceStore can treat it as a
 * miss without deleting the other job's valid entry.
 */
struct TraceKeyMismatch : std::runtime_error {
    using std::runtime_error::runtime_error;
};

class TraceReader;

/**
 * One independent decode pass over a TraceReader's validated payload.
 *
 * A cursor owns its own decoder state and position, so any number of
 * cursors (e.g. one per replay shard) can walk the same reader - and
 * the same mmap'd bytes - concurrently without re-opening or copying
 * the file. Decoding is read-only on the shared payload; the only
 * mutable state is inside the cursor itself. The reader must outlive
 * every cursor obtained from it.
 */
class TraceCursor
{
  public:
    /// An empty cursor; next()/nextBlock() report end of trace.
    TraceCursor() = default;

    /**
     * Read the next record. @return false at end of trace.
     * @throws std::runtime_error if the payload is malformed or does
     * not contain exactly the record count promised by the header.
     */
    bool next(InstrRecord &rec);

    /**
     * Read up to @p maxRecords records into @p out via the block
     * decoder. @return the number read; 0 only at end of trace.
     * Interleaves freely with next() (one decode stream) and applies
     * the same malformed-payload and record-count checks.
     */
    std::size_t nextBlock(InstrRecord *out, std::size_t maxRecords);

    /// Records decoded by this cursor so far.
    std::uint64_t read() const { return read_; }

  private:
    friend class TraceReader;
    explicit TraceCursor(const TraceReader *reader);

    const TraceReader *reader_ = nullptr;
    const std::uint8_t *pos_ = nullptr;
    wire::RecordDecoder decoder_;
    std::uint64_t read_ = 0;
};

/**
 * Reader for UATRACE2 files produced by FileSink.
 *
 * The payload is checksum-verified at construction and then served
 * zero-copy: on POSIX hosts the file is mmap'd (with
 * madvise(MADV_SEQUENTIAL) as a streaming hint) and decoding walks
 * the mapping directly; when mmap is unavailable - or disabled via
 * the UASIM_NO_MMAP environment variable - the payload is read into a
 * heap buffer instead, with identical behaviour (mapped() tells which
 * path was taken). Header, key and mix reads never touch the payload
 * mapping. next() decodes incrementally and throws on any malformed
 * record, so a short read can never be mistaken for end-of-trace;
 * cursor() hands out additional independent decode passes over the
 * same validated bytes.
 */
class TraceReader
{
  public:
    /**
     * @param path trace file to open.
     * @param expectKey when non-empty, the stored key must match it
     * exactly (the TraceStore's hash-collision guard).
     * @throws std::runtime_error on a missing file, bad magic,
     * unsupported version, size/header mismatch, checksum mismatch,
     * or key mismatch.
     */
    explicit TraceReader(const std::string &path,
                         const std::string &expectKey = {});
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /// Total records in the file.
    std::uint64_t count() const { return count_; }

    /// The trace-job key stored in the file.
    const std::string &key() const { return key_; }

    /// The instruction mix stored in the file's mix section
    /// (hash-validated; equals the mix of the decoded stream).
    const InstrMix &mix() const { return mix_; }

    /// Payload length in bytes (the compressed record stream).
    std::uint64_t payloadBytes() const { return payloadSize_; }

    /// True when the payload is served zero-copy from an mmap'd view
    /// of the file; false on the buffered fallback path.
    bool mapped() const { return mapBase_ != nullptr; }

    /**
     * A fresh, independent decode pass positioned at the first
     * record. Cursors share the reader's validated payload bytes and
     * nothing else, so passes may run on different threads
     * concurrently (and concurrently with the reader's own
     * next()/nextBlock() stream).
     */
    TraceCursor cursor() const { return TraceCursor(this); }

    /**
     * Read the next record. @return false at end of trace.
     * @throws std::runtime_error if the payload is malformed or does
     * not contain exactly count() records.
     */
    bool next(InstrRecord &rec) { return cur_.next(rec); }

    /**
     * Read up to @p maxRecords records into @p out via the block
     * decoder. @return the number read; 0 only at end of trace.
     * Interleaves freely with next() (one decode stream) and applies
     * the same malformed-payload and record-count checks.
     */
    std::size_t
    nextBlock(InstrRecord *out, std::size_t maxRecords)
    {
        return cur_.nextBlock(out, maxRecords);
    }

    /// Stream the remaining records into a sink in block-decoded
    /// batches (TraceSink::appendBlock). @return records read.
    std::uint64_t drainTo(TraceSink &sink);

  private:
    friend class TraceCursor;

    std::string path_;
    std::string key_;
    InstrMix mix_;
    std::vector<std::uint8_t> payload_;  //!< buffered fallback storage
    void *mapBase_ = nullptr;            //!< whole-file mapping base
    std::size_t mapLen_ = 0;
    const std::uint8_t *data_ = nullptr; //!< payload start (either path)
    std::uint64_t payloadSize_ = 0;
    std::uint64_t count_ = 0;
    TraceCursor cur_;  //!< backs the reader's own next()/nextBlock()
};

/**
 * Cheap summary view of a trace file: header, key and mix section,
 * all hash-validated, without reading (or checksumming) the payload -
 * the file size is still verified against the header, so truncation
 * is caught. Mix-only consumers (Table III style cells) use this to
 * warm-start without decoding a single record.
 */
struct TraceSummary {
    std::string key;
    std::uint64_t count = 0;
    InstrMix mix;
};

/// Read and validate a TraceSummary. @throws like TraceReader.
TraceSummary readTraceSummary(const std::string &path,
                              const std::string &expectKey = {});

} // namespace uasim::trace

#endif // UASIM_TRACE_TRACE_IO_HH
