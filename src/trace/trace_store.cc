#include "trace/trace_store.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <random>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace uasim::trace {

namespace fs = std::filesystem;

namespace {

/// Process-unique suffix so concurrent writers (threads or separate
/// processes) never share a temporary file.
std::string
uniqueSuffix()
{
    static const std::uint64_t processTag = [] {
        std::random_device rd;
        return (std::uint64_t{rd()} << 32) ^ rd();
    }();
    static std::atomic<std::uint64_t> counter{0};
    char buf[48];
    std::snprintf(buf, sizeof(buf), ".tmp-%016llx-%llu",
                  static_cast<unsigned long long>(processTag),
                  static_cast<unsigned long long>(
                      counter.fetch_add(1, std::memory_order_relaxed)));
    return buf;
}

void
reportAndRemove(const std::string &path, const char *what,
                const std::string &detail)
{
    std::fprintf(stderr, "trace-store: %s %s (%s); discarding\n", what,
                 path.c_str(), detail.c_str());
    std::error_code ec;
    fs::remove(path, ec);  // best effort; a re-record overwrites it
}

} // namespace

TraceStore::TraceStore(std::string dir) : dir_(std::move(dir))
{
    if (dir_.empty())
        throw std::runtime_error("TraceStore: empty cache directory");
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec) {
        throw std::runtime_error("TraceStore: cannot create " + dir_ +
                                 ": " + ec.message());
    }
    if (!fs::is_directory(dir_, ec)) {
        throw std::runtime_error("TraceStore: " + dir_ +
                                 " is not a directory");
    }
    // Garbage-collect temporaries orphaned by killed writers. Only
    // old ones: a live writer in another process may legitimately
    // have an in-flight .tmp-* here right now.
    const auto cutoff =
        fs::file_time_type::clock::now() - std::chrono::hours(1);
    for (const auto &entry : fs::directory_iterator(dir_, ec)) {
        if (entry.path().filename().string().find(".tmp-") ==
            std::string::npos)
            continue;
        std::error_code tec;
        if (fs::last_write_time(entry.path(), tec) < cutoff && !tec)
            fs::remove(entry.path(), tec);
    }
}

std::string
TraceStore::entryPath(const std::string &key) const
{
    char name[64];
    std::snprintf(name, sizeof(name), "tr-%016llx-v%u.uatrace",
                  static_cast<unsigned long long>(
                      wire::fnv1a(key.data(), key.size())),
                  wire::formatVersion);
    return (fs::path(dir_) / name).string();
}

std::optional<std::uint64_t>
TraceStore::load(const std::string &key, TraceSink &sink) const
{
    const std::string path = entryPath(key);
    std::error_code ec;
    if (!fs::exists(path, ec))
        return std::nullopt;
    try {
        TraceReader reader(path, key);
        return reader.drainTo(sink);
    } catch (const TraceKeyMismatch &e) {
        // Hash collision: the entry belongs to another job and is
        // valid - treat as a miss, never delete the victim.
        std::fprintf(stderr, "trace-store: %s; treating as miss\n",
                     e.what());
        return std::nullopt;
    } catch (const std::exception &e) {
        reportAndRemove(path, "corrupt entry", e.what());
        return std::nullopt;
    }
}

std::optional<TraceSummary>
TraceStore::loadSummary(const std::string &key) const
{
    const std::string path = entryPath(key);
    std::error_code ec;
    if (!fs::exists(path, ec))
        return std::nullopt;
    try {
        return readTraceSummary(path, key);
    } catch (const TraceKeyMismatch &e) {
        std::fprintf(stderr, "trace-store: %s; treating as miss\n",
                     e.what());
        return std::nullopt;
    } catch (const std::exception &e) {
        reportAndRemove(path, "corrupt entry", e.what());
        return std::nullopt;
    }
}

std::unique_ptr<TraceReader>
TraceStore::openReader(const std::string &key) const
{
    const std::string path = entryPath(key);
    std::error_code ec;
    if (!fs::exists(path, ec))
        return nullptr;
    try {
        return std::make_unique<TraceReader>(path, key);
    } catch (const TraceKeyMismatch &e) {
        std::fprintf(stderr, "trace-store: %s; treating as miss\n",
                     e.what());
        return nullptr;
    } catch (const std::exception &e) {
        reportAndRemove(path, "corrupt entry", e.what());
        return nullptr;
    }
}

void
TraceStore::discardEntry(const std::string &key,
                         const std::string &why) const
{
    reportAndRemove(entryPath(key), "corrupt entry", why);
}

std::unique_ptr<TraceStore::Recorder>
TraceStore::startRecord(const std::string &key) const
{
    std::string final_path = entryPath(key);
    std::string tmp_path = final_path + uniqueSuffix();
    try {
        return std::make_unique<Recorder>(tmp_path,
                                          std::move(final_path), key);
    } catch (const std::exception &e) {
        std::fprintf(stderr,
                     "trace-store: cannot record entry for \"%s\": "
                     "%s; continuing uncached\n",
                     key.c_str(), e.what());
        return nullptr;
    }
}

TraceStore::Recorder::Recorder(const std::string &tmpPath,
                               std::string finalPath,
                               const std::string &key)
    : sink_(tmpPath, key), tmpPath_(tmpPath),
      finalPath_(std::move(finalPath))
{
}

TraceStore::Recorder::~Recorder()
{
    if (committed_)
        return;
    try {
        sink_.close();
    } catch (const std::exception &) {
        // close() already reports via its own failure text when the
        // destructor path swallows it; the file is removed below.
    }
    std::error_code ec;
    fs::remove(tmpPath_, ec);
}

void
TraceStore::Recorder::append(const InstrRecord &rec)
{
    if (!appendError_.empty())
        return;  // already failed; keep the record stream flowing
    try {
        sink_.append(rec);
    } catch (const std::exception &e) {
        // Do not throw into the caller's recording pass - the sweep
        // must finish uncached, not abort. commit() surfaces this.
        appendError_ = e.what();
    }
}

void
TraceStore::Recorder::commit()
{
    if (committed_)
        return;
    try {
        if (!appendError_.empty())
            throw std::runtime_error(appendError_);
        sink_.close();
        fs::rename(tmpPath_, finalPath_);  // atomic publish
    } catch (const std::exception &) {
        std::error_code ec;
        fs::remove(tmpPath_, ec);
        committed_ = true;  // nothing left to clean up in the dtor
        throw;
    }
    committed_ = true;
}

} // namespace uasim::trace
