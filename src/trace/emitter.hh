/**
 * @file
 * The Emitter: assigns dynamic ids and synthetic PCs to instructions.
 */

#ifndef UASIM_TRACE_EMITTER_HH
#define UASIM_TRACE_EMITTER_HH

#include <cstdint>
#include <source_location>
#include <unordered_map>

#include "trace/instr.hh"
#include "trace/sink.hh"

namespace uasim::trace {

/**
 * Assigns dynamic instruction ids and stable synthetic PCs.
 *
 * Each distinct facade call site (file/line/column captured via
 * std::source_location) maps to one synthetic PC, allocated 4 bytes
 * apart from a fixed code base. This gives the branch predictor and the
 * I-cache a realistic static-instruction view without a real binary.
 */
class Emitter
{
  public:
    /// Base address of the synthetic code segment.
    static constexpr std::uint64_t codeBase = 0x10000000;

    explicit Emitter(TraceSink &sink) : sink_(&sink) {}

    /// Redirect the stream to a different sink.
    void setSink(TraceSink &sink) { sink_ = &sink; }
    TraceSink &sink() const { return *sink_; }

    /**
     * Emit a non-memory, non-branch instruction.
     *
     * @return Dep naming this instruction as producer of its result.
     */
    Dep
    emit(InstrClass cls, const std::source_location &loc,
         Dep d0 = {}, Dep d1 = {}, Dep d2 = {})
    {
        InstrRecord rec;
        rec.id = nextId_++;
        rec.pc = pcFor(loc);
        rec.cls = cls;
        rec.deps = {d0.id, d1.id, d2.id};
        sink_->append(rec);
        return Dep{rec.id};
    }

    /// Emit a memory instruction with effective address and width.
    Dep
    emitMem(InstrClass cls, std::uint64_t addr, std::uint8_t size,
            const std::source_location &loc,
            Dep d0 = {}, Dep d1 = {}, Dep d2 = {})
    {
        InstrRecord rec;
        rec.id = nextId_++;
        rec.pc = pcFor(loc);
        rec.cls = cls;
        rec.addr = addr;
        rec.size = size;
        rec.deps = {d0.id, d1.id, d2.id};
        sink_->append(rec);
        return Dep{rec.id};
    }

    /// Emit a branch with its resolved direction.
    Dep
    emitBranch(bool taken, const std::source_location &loc,
               Dep d0 = {}, Dep d1 = {})
    {
        InstrRecord rec;
        rec.id = nextId_++;
        rec.pc = pcFor(loc);
        rec.cls = InstrClass::Branch;
        rec.taken = taken;
        rec.deps = {d0.id, d1.id, 0};
        sink_->append(rec);
        return Dep{rec.id};
    }

    /// Dynamic instructions emitted so far.
    std::uint64_t count() const { return nextId_ - 1; }

    /// Distinct static call sites seen so far.
    std::size_t staticSites() const { return pcMap_.size(); }

  private:
    /// Map a source location to its synthetic PC.
    std::uint64_t
    pcFor(const std::source_location &loc)
    {
        // file_name() returns a stable pointer per call site, so hashing
        // the pointer value is both cheap and collision-safe in practice.
        std::uint64_t key =
            reinterpret_cast<std::uint64_t>(loc.file_name()) ^
            (std::uint64_t{loc.line()} << 20) ^
            (std::uint64_t{loc.column()} << 44);
        auto [it, inserted] = pcMap_.try_emplace(key, 0);
        if (inserted)
            it->second = codeBase + 4 * (pcMap_.size() - 1);
        return it->second;
    }

    TraceSink *sink_;
    std::uint64_t nextId_ = 1;
    std::unordered_map<std::uint64_t, std::uint64_t> pcMap_;
};

} // namespace uasim::trace

#endif // UASIM_TRACE_EMITTER_HH
