/**
 * @file
 * Dynamic instruction records produced by the emulation facades.
 *
 * Every architectural instruction executed by a traced kernel becomes one
 * InstrRecord. Records carry a synthetic PC (stable per static call site),
 * the effective address for memory operations, the taken direction for
 * branches, and up to three data-dependence ids pointing at producer
 * instructions, so the stream is a true dataflow graph.
 */

#ifndef UASIM_TRACE_INSTR_HH
#define UASIM_TRACE_INSTR_HH

#include <array>
#include <cstdint>
#include <string_view>

namespace uasim::trace {

/**
 * Architectural instruction classes.
 *
 * The vector classes mirror the unit/accounting split the paper uses in
 * Table III: loads, stores, simple (VX integer ALU), complex (multiply /
 * multiply-add / sum-across), and permute. The unaligned vector memory
 * classes are the paper's proposed LVXU/STVXU instructions; they are kept
 * distinct from the aligned ones so the timing model can charge the
 * realignment-network latency and the mix statistics can fold them into
 * the same Table III columns.
 */
enum class InstrClass : std::uint8_t {
    IntAlu,      //!< scalar integer ALU (add, logic, shift, compare)
    IntMul,      //!< scalar integer multiply
    Load,        //!< scalar load
    Store,       //!< scalar store
    Branch,      //!< conditional/unconditional branch
    FpAlu,       //!< scalar floating point (decoder glue only)
    VecLoad,     //!< aligned vector load (lvx; effective address forced)
    VecStore,    //!< aligned vector store (stvx)
    VecLoadU,    //!< unaligned vector load (lvxu, this paper's proposal)
    VecStoreU,   //!< unaligned vector store (stvxu)
    VecSimple,   //!< VX simple integer (add/sub/min/max/sel/logic/shift)
    VecComplex,  //!< VX complex (mladd/mradds/msum/sum4s/sums)
    VecPerm,     //!< permute class (vperm/merge/pack/unpack/splat/lvsl)
    NumClasses
};

/// Number of distinct instruction classes.
constexpr int numInstrClasses =
    static_cast<int>(InstrClass::NumClasses);

/// Short mnemonic-style name for an instruction class.
std::string_view instrClassName(InstrClass cls);

/// True for any class that references memory.
constexpr bool
isMemClass(InstrClass cls)
{
    return cls == InstrClass::Load || cls == InstrClass::Store ||
           cls == InstrClass::VecLoad || cls == InstrClass::VecStore ||
           cls == InstrClass::VecLoadU || cls == InstrClass::VecStoreU;
}

/// True for loads of any width.
constexpr bool
isLoadClass(InstrClass cls)
{
    return cls == InstrClass::Load || cls == InstrClass::VecLoad ||
           cls == InstrClass::VecLoadU;
}

/// True for stores of any width.
constexpr bool
isStoreClass(InstrClass cls)
{
    return cls == InstrClass::Store || cls == InstrClass::VecStore ||
           cls == InstrClass::VecStoreU;
}

/// True for the vector (Altivec) classes.
constexpr bool
isVectorClass(InstrClass cls)
{
    return cls >= InstrClass::VecLoad && cls <= InstrClass::VecPerm;
}

/// True for the unaligned vector memory classes (lvxu/stvxu).
constexpr bool
isUnalignedVecMem(InstrClass cls)
{
    return cls == InstrClass::VecLoadU || cls == InstrClass::VecStoreU;
}

/**
 * Data-dependence handle: the dynamic id of a producer instruction.
 *
 * Id 0 means "no dependence" (immediate operand or architected state that
 * was live before tracing started). Ids are assigned from 1 by the
 * Emitter.
 */
struct Dep {
    std::uint64_t id = 0;

    constexpr bool valid() const { return id != 0; }
};

/**
 * One dynamic instruction.
 *
 * @note `addr`/`size` are only meaningful when isMemClass(cls); `taken`
 * only when cls == Branch.
 */
struct InstrRecord {
    std::uint64_t id = 0;     //!< dynamic id, 1-based, strictly increasing
    std::uint64_t pc = 0;     //!< synthetic static PC of the call site
    std::uint64_t addr = 0;   //!< effective address (memory ops)
    std::array<std::uint64_t, 3> deps{};  //!< producer ids (0 = none)
    InstrClass cls = InstrClass::IntAlu;
    std::uint8_t size = 0;    //!< access width in bytes (memory ops)
    bool taken = false;       //!< branch direction (branches)

    /// True if this record references memory.
    bool isMem() const { return isMemClass(cls); }
    /// True if this record is a load.
    bool isLoad() const { return isLoadClass(cls); }
    /// True if this record is a store.
    bool isStore() const { return isStoreClass(cls); }
    /// True if this record's address is 16B-aligned.
    bool alignedTo16() const { return (addr & 0xf) == 0; }
};

} // namespace uasim::trace

#endif // UASIM_TRACE_INSTR_HH
