/**
 * @file
 * Instruction-mix statistics in the shape of the paper's Table III.
 */

#ifndef UASIM_TRACE_MIX_HH
#define UASIM_TRACE_MIX_HH

#include <array>
#include <cstdint>
#include <string>

#include "trace/instr.hh"

namespace uasim::trace {

/**
 * Per-class dynamic instruction counts.
 *
 * Provides both raw per-class counters and the column grouping used by
 * Table III of the paper: Total / Int / Loads / Stores / Branches /
 * Altivec {Load, Store, Simple, Complex, Perm}. The unaligned vector
 * memory classes fold into the Altivec Load / Store columns.
 */
class InstrMix
{
  public:
    InstrMix() { counts_.fill(0); }

    /// Account one record.
    void
    add(const InstrRecord &rec)
    {
        ++counts_[static_cast<int>(rec.cls)];
    }

    /// Account @p n instructions of class @p cls.
    void
    add(InstrClass cls, std::uint64_t n = 1)
    {
        counts_[static_cast<int>(cls)] += n;
    }

    /// Merge another mix into this one.
    InstrMix &operator+=(const InstrMix &other);

    /// Raw count for one class.
    std::uint64_t
    count(InstrClass cls) const
    {
        return counts_[static_cast<int>(cls)];
    }

    /// Total dynamic instructions.
    std::uint64_t total() const;

    /// @name Table III column groups
    /// @{
    std::uint64_t intOps() const;       //!< IntAlu + IntMul
    std::uint64_t scalarLoads() const { return count(InstrClass::Load); }
    std::uint64_t scalarStores() const { return count(InstrClass::Store); }
    std::uint64_t branches() const { return count(InstrClass::Branch); }
    std::uint64_t vecLoads() const;     //!< VecLoad + VecLoadU
    std::uint64_t vecStores() const;    //!< VecStore + VecStoreU
    std::uint64_t vecSimple() const { return count(InstrClass::VecSimple); }
    std::uint64_t vecComplex() const
    {
        return count(InstrClass::VecComplex);
    }
    std::uint64_t vecPerm() const { return count(InstrClass::VecPerm); }
    std::uint64_t vecTotal() const;     //!< all vector classes
    /// @}

    /// Reset all counters.
    void clear() { counts_.fill(0); }

    /// One CSV row: class counts in enum order.
    std::string toCsv() const;

    /// Human-readable multi-line dump.
    std::string format() const;

  private:
    std::array<std::uint64_t, numInstrClasses> counts_;
};

} // namespace uasim::trace

#endif // UASIM_TRACE_MIX_HH
