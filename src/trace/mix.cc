#include "trace/mix.hh"

#include <sstream>

namespace uasim::trace {

InstrMix &
InstrMix::operator+=(const InstrMix &other)
{
    for (int i = 0; i < numInstrClasses; ++i)
        counts_[i] += other.counts_[i];
    return *this;
}

std::uint64_t
InstrMix::total() const
{
    std::uint64_t sum = 0;
    for (auto c : counts_)
        sum += c;
    return sum;
}

std::uint64_t
InstrMix::intOps() const
{
    return count(InstrClass::IntAlu) + count(InstrClass::IntMul);
}

std::uint64_t
InstrMix::vecLoads() const
{
    return count(InstrClass::VecLoad) + count(InstrClass::VecLoadU);
}

std::uint64_t
InstrMix::vecStores() const
{
    return count(InstrClass::VecStore) + count(InstrClass::VecStoreU);
}

std::uint64_t
InstrMix::vecTotal() const
{
    return vecLoads() + vecStores() + vecSimple() + vecComplex() +
           vecPerm();
}

std::string
InstrMix::toCsv() const
{
    std::ostringstream os;
    for (int i = 0; i < numInstrClasses; ++i) {
        if (i)
            os << ',';
        os << counts_[i];
    }
    return os.str();
}

std::string
InstrMix::format() const
{
    std::ostringstream os;
    os << "total=" << total();
    for (int i = 0; i < numInstrClasses; ++i) {
        if (!counts_[i])
            continue;
        os << ' ' << instrClassName(static_cast<InstrClass>(i)) << '='
           << counts_[i];
    }
    return os.str();
}

} // namespace uasim::trace
