/**
 * @file
 * Tier registry and runtime dispatch for the SIMD block decoder, plus
 * the scalar reference kernel. The vector kernels live in their own
 * translation units (simd_decode_{sse42,avx2,neon}.cc) compiled with
 * the matching ISA flags; this file is always built portable.
 */

#include "trace/simd_decode.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "trace/decode_detail.hh"

namespace uasim::trace::simd {

namespace detail {

std::size_t
decodeRunScalar(const std::uint8_t *&p, const std::uint8_t *end,
                InstrRecord *out, std::size_t maxRecords,
                wire::DecodeState &st)
{
    std::size_t n = 0;
    while (n < maxRecords &&
           std::size_t(end - p) >= wire::maxRecordBytes) {
        decodeOneUnchecked(p, out[n], st);
        ++n;
    }
    return n;
}

} // namespace detail

namespace {

/// Compiled in *and* runnable on this CPU. The UASIM_DECODE_* macros
/// mirror the per-arch kernel source lists in CMakeLists.txt.
bool
haveTier(Tier tier)
{
    switch (tier) {
      case Tier::Scalar:
        return true;
      case Tier::SSE42:
#if defined(UASIM_DECODE_SSE42)
        return __builtin_cpu_supports("sse4.2");
#else
        return false;
#endif
      case Tier::AVX2:
#if defined(UASIM_DECODE_AVX2)
        return __builtin_cpu_supports("avx2") &&
               __builtin_cpu_supports("bmi2");
#else
        return false;
#endif
      case Tier::NEON:
#if defined(UASIM_DECODE_NEON)
        return true;  // NEON is architecturally baseline on aarch64
#else
        return false;
#endif
    }
    return false;
}

Tier
bestTier()
{
    if (haveTier(Tier::AVX2))
        return Tier::AVX2;
    if (haveTier(Tier::SSE42))
        return Tier::SSE42;
    if (haveTier(Tier::NEON))
        return Tier::NEON;
    return Tier::Scalar;
}

/// A malformed UASIM_DECODE must not silently run a different decoder
/// than the benchmark/CI leg asked for, so it is fatal, not a warning.
Tier
parseEnvTier()
{
    if (const char *name = std::getenv("UASIM_DECODE")) {
        Tier t;
        if (!parseTierName(name, t)) {
            std::fprintf(stderr,
                         "uasim: UASIM_DECODE=%s: unknown decode tier "
                         "(expected scalar, sse42, avx2, or neon)\n",
                         name);
            std::exit(2);
        }
        if (!haveTier(t)) {
            std::fprintf(stderr,
                         "uasim: UASIM_DECODE=%s: decode tier not "
                         "supported on this host\n",
                         name);
            std::exit(2);
        }
        return t;
    }
    if (const char *f = std::getenv("UASIM_FORCE_SCALAR");
        f && *f && std::strcmp(f, "0") != 0) {
        return Tier::Scalar;
    }
    return bestTier();
}

Tier
envTier()
{
    static const Tier tier = parseEnvTier();
    return tier;
}

/// forceTier() override; -1 = none. Relaxed is enough: tests and the
/// bench set it before spawning decode work, never concurrently.
std::atomic<int> forcedTier{-1};

} // namespace

const char *
tierName(Tier tier)
{
    switch (tier) {
      case Tier::Scalar:
        return "scalar";
      case Tier::SSE42:
        return "sse42";
      case Tier::AVX2:
        return "avx2";
      case Tier::NEON:
        return "neon";
    }
    return "?";
}

bool
parseTierName(const char *name, Tier &tier)
{
    for (Tier t :
         {Tier::Scalar, Tier::SSE42, Tier::AVX2, Tier::NEON}) {
        if (std::strcmp(name, tierName(t)) == 0) {
            tier = t;
            return true;
        }
    }
    return false;
}

bool
tierSupported(Tier tier)
{
    return haveTier(tier);
}

std::vector<Tier>
supportedTiers()
{
    std::vector<Tier> out;
    for (Tier t :
         {Tier::Scalar, Tier::SSE42, Tier::AVX2, Tier::NEON}) {
        if (haveTier(t))
            out.push_back(t);
    }
    return out;
}

Tier
activeTier()
{
    const int forced = forcedTier.load(std::memory_order_relaxed);
    if (forced >= 0)
        return static_cast<Tier>(forced);
    return envTier();
}

bool
forceTier(Tier tier)
{
    if (!haveTier(tier))
        return false;
    forcedTier.store(int(tier), std::memory_order_relaxed);
    return true;
}

void
clearForcedTier()
{
    forcedTier.store(-1, std::memory_order_relaxed);
}

std::size_t
decodeRunWith(Tier tier, const std::uint8_t *&p,
              const std::uint8_t *end, InstrRecord *out,
              std::size_t maxRecords, wire::DecodeState &st)
{
    switch (tier) {
#if defined(UASIM_DECODE_SSE42)
      case Tier::SSE42:
        return detail::decodeRunSse42(p, end, out, maxRecords, st);
#endif
#if defined(UASIM_DECODE_AVX2)
      case Tier::AVX2:
        return detail::decodeRunAvx2(p, end, out, maxRecords, st);
#endif
#if defined(UASIM_DECODE_NEON)
      case Tier::NEON:
        return detail::decodeRunNeon(p, end, out, maxRecords, st);
#endif
      default:
        return detail::decodeRunScalar(p, end, out, maxRecords, st);
    }
}

std::size_t
decodeRun(const std::uint8_t *&p, const std::uint8_t *end,
          InstrRecord *out, std::size_t maxRecords,
          wire::DecodeState &st)
{
    return decodeRunWith(activeTier(), p, end, out, maxRecords, st);
}

} // namespace uasim::trace::simd
