/**
 * @file
 * SSE4.2 decode kernel: one 16-byte PMOVMSKB builds the record's
 * varint-terminator mask (1 bit per payload byte); varint values are
 * compacted with the shared SWAR 7-bit-group routine. Compiled with
 * -msse4.2 (this file only); callers reach it through the runtime
 * dispatch in simd_decode.cc.
 */

#include "trace/decode_detail.hh"

#include <immintrin.h>

namespace uasim::trace::simd::detail {

namespace {

struct Sse42Traits {
    static constexpr unsigned width = 16;
    static constexpr unsigned scale = 1;  // mask bits per byte

    /// Bit i set = byte i terminates a varint (continuation bit 0x80
    /// clear). Only the low 16 bits are live.
    static std::uint64_t
    termMask(const std::uint8_t *p)
    {
        const __m128i w =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
        return ~std::uint64_t(
                   std::uint32_t(_mm_movemask_epi8(w))) &
               0xffffull;
    }

    /// Byte index of the lowest set mask bit; >= width when empty.
    static unsigned
    pos(std::uint64_t m)
    {
        return unsigned(std::countr_zero(m));
    }

    /// Value of a varint of t+1 bytes starting at raw's byte 0.
    static std::uint64_t
    extract(std::uint64_t raw, unsigned t)
    {
        return swarExtract(raw &
                           (~std::uint64_t{0} >> ((7 - t) * 8)));
    }
};

} // namespace

std::size_t
decodeRunSse42(const std::uint8_t *&p, const std::uint8_t *end,
               InstrRecord *out, std::size_t maxRecords,
               wire::DecodeState &st)
{
    return decodeRunSimd<Sse42Traits>(p, end, out, maxRecords, st);
}

} // namespace uasim::trace::simd::detail
