/**
 * @file
 * uasim-lint: the repo-specific invariant checker (the rules generic
 * tools cannot express; see docs/INVARIANTS.md for each rule's why).
 *
 * Driven by the build's compile_commands.json: every translation unit
 * under the repo root is scanned (plus the headers under src/, tools/
 * and bench/, which have no compile-db entry of their own), and each
 * rule applies to the repo paths it governs:
 *
 *   field-table      every counter member of timing::SimResult must
 *                    appear in the one simResultFields() table, and
 *                    every counter member of core::SweepStats must
 *                    appear as a serialized field name. A counter
 *                    that exists but is absent from the table would
 *                    serialize (or not) without ever gating - the
 *                    silent-corruption bug the PR 4 field-table
 *                    design rule exists to prevent.
 *   sim-determinism  no wall-clock, randomness, or unordered-
 *                    container use inside simulated paths
 *                    (src/timing, src/core/sweep.*,
 *                    src/core/experiment.*, src/core/campaign.*,
 *                    tools/uasim_sweep*). The only legitimate
 *                    exceptions - wall-clock feeding the *Seconds
 *                    informational stats - carry a visible
 *                    suppression comment.
 *   isa-flags        vector intrinsics and -m ISA compile flags only
 *                    in the designated per-tier decode TUs
 *                    (src/trace/simd_decode_*.cc), so no other TU
 *                    can silently require a wider ISA than the
 *                    runtime dispatcher promises.
 *   checked-io       no discarded fwrite/fread/fseek/fflush/fclose/
 *                    mmap/munmap/madvise return values in src/trace
 *                    (the PR 3 checked-I/O-only rule). An explicit
 *                    `(void)` cast is accepted: it is a visible,
 *                    reviewable decision, not a silent one.
 *
 * Suppression syntax: a comment containing
 *
 *     uasim-lint: allow(<rule>[,<rule>...])
 *
 * on the same line as the finding, or on the line directly above it,
 * suppresses that rule there - and only that rule, so exceptions stay
 * visible (and greppable) in diffs.
 *
 * Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/json.hh"

namespace fs = std::filesystem;

namespace {

constexpr const char *lintVersion = "1.0";

const std::vector<std::string> &
ruleNames()
{
    static const std::vector<std::string> rules = {
        "checked-io", "field-table", "isa-flags", "sim-determinism"};
    return rules;
}

int
usage(bool requested)
{
    std::fprintf(
        requested ? stdout : stderr,
        "usage: uasim-lint --compdb FILE [--root DIR] [--check RULE]...\n"
        "       uasim-lint [--check RULE]... [--flags STR] --as VPATH "
        "FILE [--as ...]\n"
        "\n"
        "  --compdb FILE   scan every repo TU of a "
        "compile_commands.json\n"
        "                  (plus src//tools//bench/ headers)\n"
        "  --root DIR      repo root the compile-db paths are "
        "relative to\n"
        "                  (default: the compile-db's parent "
        "directory's parent)\n"
        "  --as VPATH FILE scan FILE as if it were repo path VPATH\n"
        "                  (fixture mode; rules scope by VPATH)\n"
        "  --flags STR     compile flags attributed to subsequent "
        "--as files\n"
        "  --check RULE    run only RULE (repeatable; default: all)\n"
        "  --list-rules    print the rule ids and exit 0\n"
        "  --version       print version + rule ids and exit 0\n"
        "\n"
        "exit codes: 0 clean, 1 findings, 2 usage/IO error\n");
    return requested ? 0 : 2;
}

struct Finding {
    std::string vpath;
    int line = 0;
    std::string rule;
    std::string message;

    bool
    operator<(const Finding &o) const
    {
        if (vpath != o.vpath)
            return vpath < o.vpath;
        if (line != o.line)
            return line < o.line;
        if (rule != o.rule)
            return rule < o.rule;
        return message < o.message;
    }
};

/// One scanned source file: raw text, a same-length "stripped" copy
/// with comments and string/char literals blanked (so patterns never
/// match inside them), the per-line suppression sets parsed from the
/// comments, and the collected string-literal contents.
struct Source {
    std::string vpath;       //!< repo-relative path (rule scoping key)
    std::string flags;       //!< compile command (compile-db mode)
    std::string raw;
    std::string stripped;
    std::vector<std::size_t> lineStart;  //!< offset of each line
    /// line -> rules suppressed on that line (self or line-above).
    std::map<int, std::set<std::string>> allow;
    std::vector<std::string> literals;   //!< string-literal contents

    int
    lineOf(std::size_t off) const
    {
        auto it = std::upper_bound(lineStart.begin(), lineStart.end(),
                                   off);
        return int(it - lineStart.begin());
    }

    bool
    allowed(int line, const std::string &rule) const
    {
        for (int l : {line, line - 1}) {
            auto it = allow.find(l);
            if (it != allow.end() && it->second.count(rule))
                return true;
        }
        return false;
    }
};

/// Parse "uasim-lint: allow(a,b)" occurrences out of a comment.
void
parseAllows(const std::string &comment, int firstLine, int lastLine,
            std::map<int, std::set<std::string>> &allow)
{
    static const std::string marker = "uasim-lint: allow(";
    std::size_t at = 0;
    while ((at = comment.find(marker, at)) != std::string::npos) {
        const std::size_t open = at + marker.size();
        const std::size_t close = comment.find(')', open);
        if (close == std::string::npos)
            break;
        std::string inside = comment.substr(open, close - open);
        std::string rule;
        std::stringstream ss(inside);
        while (std::getline(ss, rule, ',')) {
            rule.erase(0, rule.find_first_not_of(" \t"));
            rule.erase(rule.find_last_not_of(" \t") + 1);
            if (rule.empty())
                continue;
            // The suppression covers every line the comment touches
            // plus the next line (the comment-above form).
            for (int l = firstLine; l <= lastLine + 1; ++l)
                allow[l].insert(rule);
        }
        at = close;
    }
}

/// Build .stripped/.allow/.literals from .raw.
void
stripSource(Source &src)
{
    const std::string &in = src.raw;
    std::string out(in.size(), ' ');
    src.lineStart.push_back(0);
    for (std::size_t i = 0; i < in.size(); ++i) {
        if (in[i] == '\n')
            src.lineStart.push_back(i + 1);
    }

    enum class St { Code, Line, Block, Str, Chr };
    St st = St::Code;
    std::size_t tokStart = 0;  //!< start of current comment/literal
    std::string tok;
    for (std::size_t i = 0; i < in.size(); ++i) {
        const char c = in[i];
        const char n = i + 1 < in.size() ? in[i + 1] : '\0';
        switch (st) {
        case St::Code:
            if (c == '/' && n == '/') {
                st = St::Line;
                tokStart = i;
                tok.clear();
                ++i;
            } else if (c == '/' && n == '*') {
                st = St::Block;
                tokStart = i;
                tok.clear();
                ++i;
            } else if (c == '"') {
                st = St::Str;
                tok.clear();
                out[i] = '"';
            } else if (c == '\'') {
                st = St::Chr;
                out[i] = '\'';
            } else {
                out[i] = c;
            }
            break;
        case St::Line:
            if (c == '\n') {
                out[i] = '\n';
                parseAllows(tok, src.lineOf(tokStart),
                            src.lineOf(tokStart), src.allow);
                st = St::Code;
            } else {
                tok += c;
            }
            break;
        case St::Block:
            if (c == '*' && n == '/') {
                parseAllows(tok, src.lineOf(tokStart), src.lineOf(i),
                            src.allow);
                ++i;
                st = St::Code;
            } else {
                if (c == '\n')
                    out[i] = '\n';
                tok += c;
            }
            break;
        case St::Str:
            if (c == '\\' && n != '\0') {
                tok += c;
                tok += n;
                ++i;
            } else if (c == '"') {
                out[i] = '"';
                src.literals.push_back(tok);
                st = St::Code;
            } else {
                if (c == '\n')
                    out[i] = '\n';
                tok += c;
            }
            break;
        case St::Chr:
            if (c == '\\' && n != '\0') {
                ++i;
            } else if (c == '\'') {
                out[i] = '\'';
                st = St::Code;
            } else if (c == '\n') {
                out[i] = '\n';
                st = St::Code;  // unterminated; resync
            }
            break;
        }
    }
    if (st == St::Line)
        parseAllows(tok, src.lineOf(tokStart), src.lineOf(tokStart),
                    src.allow);
    src.stripped = std::move(out);
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Offsets where identifier @p name occurs with word boundaries.
std::vector<std::size_t>
findIdent(const std::string &text, const std::string &name)
{
    std::vector<std::size_t> hits;
    std::size_t at = 0;
    while ((at = text.find(name, at)) != std::string::npos) {
        const bool lb = at == 0 || !identChar(text[at - 1]);
        const std::size_t end = at + name.size();
        const bool rb = end >= text.size() || !identChar(text[end]);
        if (lb && rb)
            hits.push_back(at);
        at = end;
    }
    return hits;
}

/// Is the identifier at @p at followed (past whitespace) by '('?
bool
isCall(const std::string &text, std::size_t at, std::size_t len)
{
    std::size_t i = at + len;
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])))
        ++i;
    return i < text.size() && text[i] == '(';
}

class Linter
{
  public:
    std::set<std::string> checks;  //!< empty = all rules

    void
    addFinding(const Source &src, int line, const std::string &rule,
               const std::string &msg)
    {
        if (!checks.empty() && !checks.count(rule))
            return;
        if (src.allowed(line, rule))
            return;
        findings_.insert({src.vpath, line, rule, msg});
    }

    bool
    ruleEnabled(const std::string &rule) const
    {
        return checks.empty() || checks.count(rule);
    }

    void checkSimDeterminism(const Source &src);
    void checkIsaFlags(const Source &src);
    void checkCheckedIo(const Source &src);
    void checkFieldTable(const std::vector<Source> &sources);

    void
    run(std::vector<Source> &sources)
    {
        for (Source &src : sources) {
            stripSource(src);
            checkSimDeterminism(src);
            checkIsaFlags(src);
            checkCheckedIo(src);
        }
        checkFieldTable(sources);
    }

    int
    report() const
    {
        for (const Finding &f : findings_) {
            std::printf("%s:%d: [%s] %s\n", f.vpath.c_str(), f.line,
                        f.rule.c_str(), f.message.c_str());
        }
        return findings_.empty() ? 0 : 1;
    }

    std::size_t count() const { return findings_.size(); }

  private:
    std::set<Finding> findings_;
};

// ---------------------------------------------------------------------------
// sim-determinism
// ---------------------------------------------------------------------------

bool
inSimScope(const std::string &vpath)
{
    return vpath.rfind("src/timing/", 0) == 0 ||
           vpath.rfind("src/core/sweep.", 0) == 0 ||
           vpath.rfind("src/core/experiment.", 0) == 0 ||
           // The campaign layer expands grids and addresses chunks by
           // content hash: expansion order, shard assignment, and
           // artifact identity must be pure functions of the campaign
           // text, so the whole layer (library + driver) stays inside
           // the determinism rule.
           vpath.rfind("src/core/campaign.", 0) == 0 ||
           vpath.rfind("tools/uasim_sweep", 0) == 0;
}

void
Linter::checkSimDeterminism(const Source &src)
{
    if (!ruleEnabled("sim-determinism") || !inSimScope(src.vpath))
        return;

    static const char *substrings[][2] = {
        {"std::chrono", "wall-clock (std::chrono)"},
        {"steady_clock", "wall-clock (steady_clock)"},
        {"system_clock", "wall-clock (system_clock)"},
        {"high_resolution_clock", "wall-clock (high_resolution_clock)"},
        {"random_device", "nondeterministic seed (random_device)"},
        {"mt19937", "RNG engine (mt19937)"},
        {"default_random_engine", "RNG engine (default_random_engine)"},
        {"std::unordered_",
         "unordered container (iteration order is host-dependent)"},
    };
    static const char *includes[] = {"<chrono>", "<ctime>", "<random>",
                                     "<unordered_map>",
                                     "<unordered_set>"};
    static const char *calls[] = {"time",       "clock",
                                  "rand",       "srand",
                                  "rand_r",     "drand48",
                                  "random",     "clock_gettime",
                                  "gettimeofday"};

    std::set<int> flagged;  // one finding per line keeps output stable
    auto flag = [&](std::size_t off, const std::string &what) {
        const int line = src.lineOf(off);
        if (!flagged.insert(line).second)
            return;
        addFinding(src, line, "sim-determinism",
                   what + " in a simulated path; only the *Seconds "
                          "informational stats may touch wall-clock "
                          "(suppress with // uasim-lint: "
                          "allow(sim-determinism))");
    };

    const std::string &text = src.stripped;
    for (const auto &[pat, what] : substrings) {
        std::size_t at = 0;
        const std::string p = pat;
        while ((at = text.find(p, at)) != std::string::npos) {
            // Word boundary on the left so e.g. "Xsteady_clock" or a
            // comment-stripped blank never splits oddly.
            if (at == 0 || !identChar(text[at - 1]))
                flag(at, what);
            at += p.size();
        }
    }
    for (const char *inc : includes) {
        std::size_t at = 0;
        const std::string p = inc;
        while ((at = text.find(p, at)) != std::string::npos) {
            // Only as an #include target.
            const int line = src.lineOf(at);
            const std::size_t ls = src.lineStart[line - 1];
            const std::string_view lv(text.data() + ls, at - ls);
            if (lv.find('#') != std::string_view::npos &&
                lv.find("include") != std::string_view::npos)
                flag(at, "#include " + p);
            at += p.size();
        }
    }
    for (const char *fn : calls) {
        for (std::size_t at : findIdent(text, fn)) {
            if (isCall(text, at, std::strlen(fn)))
                flag(at, std::string(fn) + "() call");
        }
    }
}

// ---------------------------------------------------------------------------
// isa-flags
// ---------------------------------------------------------------------------

bool
isDesignatedSimdTU(const std::string &vpath)
{
    return vpath.rfind("src/trace/simd_decode_", 0) == 0;
}

void
Linter::checkIsaFlags(const Source &src)
{
    if (!ruleEnabled("isa-flags") || isDesignatedSimdTU(src.vpath))
        return;

    // Per-TU compile flags (compile-db or --flags): any -m ISA flag
    // outside the designated tier TUs makes the whole binary require
    // that ISA, defeating the runtime dispatcher.
    if (!src.flags.empty()) {
        std::stringstream ss(src.flags);
        std::string tok;
        while (ss >> tok) {
            if (tok.size() > 2 && tok[0] == '-' && tok[1] == 'm') {
                addFinding(src, 1, "isa-flags",
                           "ISA compile flag " + tok +
                               " outside the designated "
                               "src/trace/simd_decode_* tier TUs");
            }
        }
    }

    const std::string &text = src.stripped;
    static const char *incpats[] = {"intrin.h>", "arm_neon.h>"};
    for (const char *inc : incpats) {
        std::size_t at = 0;
        while ((at = text.find(inc, at)) != std::string::npos) {
            addFinding(src, src.lineOf(at), "isa-flags",
                       "vector-intrinsics header include outside the "
                       "designated src/trace/simd_decode_* tier TUs");
            at += std::strlen(inc);
        }
    }
    static const char *prefixes[] = {"_mm_",   "_mm256_", "_mm512_",
                                     "vld1",   "vst1",    "_pext_",
                                     "_pdep_", "_bzhi_",  "_tzcnt_"};
    std::set<int> flagged;
    for (const char *pre : prefixes) {
        std::size_t at = 0;
        const std::string p = pre;
        while ((at = text.find(p, at)) != std::string::npos) {
            if (at == 0 || !identChar(text[at - 1])) {
                const int line = src.lineOf(at);
                if (flagged.insert(line).second) {
                    addFinding(src, line, "isa-flags",
                               "vector intrinsic (" + p +
                                   "...) outside the designated "
                                   "src/trace/simd_decode_* tier TUs");
                }
            }
            at += p.size();
        }
    }
}

// ---------------------------------------------------------------------------
// checked-io
// ---------------------------------------------------------------------------

void
Linter::checkCheckedIo(const Source &src)
{
    if (!ruleEnabled("checked-io") ||
        src.vpath.rfind("src/trace/", 0) != 0)
        return;

    static const char *fns[] = {"fwrite", "fread",  "fseek",
                                "fflush", "fclose", "mmap",
                                "munmap", "madvise"};
    const std::string &text = src.stripped;
    for (const char *fn : fns) {
        for (std::size_t at : findIdent(text, fn)) {
            if (!isCall(text, at, std::strlen(fn)))
                continue;
            // Walk back over a std:: / :: qualifier.
            std::size_t s = at;
            if (s >= 2 && text[s - 1] == ':' && text[s - 2] == ':') {
                s -= 2;
                if (s >= 3 && text.compare(s - 3, 3, "std") == 0)
                    s -= 3;
            }
            // Previous significant character decides whether the
            // return value is consumed.
            std::size_t p = s;
            while (p > 0 &&
                   std::isspace(static_cast<unsigned char>(text[p - 1])))
                --p;
            const char prev = p == 0 ? ';' : text[p - 1];
            bool discarded = prev == ';' || prev == '{' || prev == '}';
            if (!discarded && identChar(prev)) {
                // An unbraced `else fclose(f);` / `do fclose(f);`
                // body is still a discarded statement.
                std::size_t e = p;
                std::size_t b = e;
                while (b > 0 && identChar(text[b - 1]))
                    --b;
                const std::string word = text.substr(b, e - b);
                discarded = word == "else" || word == "do";
            }
            if (!discarded && prev == ')') {
                // Walk back over the paren group: the unbraced body
                // of `if (...) fclose(f);` is discarded too, while a
                // call argument or a `(void)` cast consumes it.
                std::size_t q = p - 1;  // at ')'
                int depth = 1;
                while (q > 0 && depth > 0) {
                    --q;
                    if (text[q] == ')')
                        ++depth;
                    else if (text[q] == '(')
                        --depth;
                }
                if (depth == 0) {
                    std::size_t e = q;
                    while (e > 0 &&
                           std::isspace(static_cast<unsigned char>(
                               text[e - 1])))
                        --e;
                    std::size_t b = e;
                    while (b > 0 && identChar(text[b - 1]))
                        --b;
                    const std::string word = text.substr(b, e - b);
                    discarded = word == "if" || word == "while" ||
                                word == "for";
                }
            }
            if (!discarded)
                continue;  // value is consumed (=/!=/return/(void)/...)
            addFinding(src, src.lineOf(at), "checked-io",
                       std::string(fn) +
                           "() return value discarded in src/trace "
                           "(check it, or make the discard explicit "
                           "with (void))");
        }
    }

    // `(void)` casts never reach here: the significant char before
    // the call is then ')' whose paren group is preceded by no
    // keyword, which the consume test above accepts.
}

// ---------------------------------------------------------------------------
// field-table
// ---------------------------------------------------------------------------

struct Member {
    std::string name;
    std::string vpath;
    int line = 0;
};

/// Counter members (integral/double, non-function) declared at depth
/// 1 of `struct <structName> { ... }` in @p src.
std::vector<Member>
structCounters(const Source &src, const std::string &structName)
{
    std::vector<Member> members;
    const std::string &text = src.stripped;
    const std::string key = "struct " + structName;
    for (std::size_t at : findIdent(text, key)) {
        std::size_t open = text.find('{', at + key.size());
        // Reject forward declarations and pointers-to-member like
        // `&SimResult::x` (no brace before the next ';').
        const std::size_t semi = text.find(';', at + key.size());
        if (open == std::string::npos ||
            (semi != std::string::npos && semi < open))
            continue;
        int depth = 1;
        std::size_t stmt = open + 1;
        for (std::size_t i = open + 1; i < text.size() && depth > 0;
             ++i) {
            const char c = text[i];
            if (c == '{') {
                ++depth;
            } else if (c == '}') {
                --depth;
                stmt = i + 1;
            } else if (c == ';' && depth == 1) {
                const std::string decl =
                    text.substr(stmt, i - stmt);
                const std::size_t declOff = stmt;
                stmt = i + 1;
                if (decl.find('(') != std::string::npos)
                    continue;  // method or function pointer
                const bool counter =
                    decl.find("int") != std::string::npos ||
                    decl.find("double") != std::string::npos;
                if (!counter)
                    continue;
                // Member name: the identifier before '=' (or the
                // trailing identifier when there is no initializer).
                std::string d = decl;
                const std::size_t eq = d.find('=');
                if (eq != std::string::npos)
                    d = d.substr(0, eq);
                std::size_t e = d.find_last_not_of(" \t\n");
                if (e == std::string::npos)
                    continue;
                std::size_t b = e;
                while (b > 0 && identChar(d[b - 1]))
                    --b;
                if (!identChar(d[e]))
                    continue;
                std::string name = d.substr(b, e - b + 1);
                if (name.empty() ||
                    std::isdigit(static_cast<unsigned char>(name[0])))
                    continue;
                members.push_back(
                    {std::move(name), src.vpath,
                     src.lineOf(declOff + decl.find_first_not_of(
                                              " \t\n"))});
            }
        }
    }
    return members;
}

void
Linter::checkFieldTable(const std::vector<Source> &sources)
{
    if (!ruleEnabled("field-table"))
        return;

    // SimResult: every counter must be listed as
    // &[timing::]SimResult::<name> (the simResultFields() table).
    std::vector<Member> simMembers;
    std::set<std::string> tabled;
    std::vector<Member> statMembers;
    std::set<std::string> literals;
    for (const Source &src : sources) {
        for (Member &m : structCounters(src, "SimResult"))
            simMembers.push_back(std::move(m));
        for (Member &m : structCounters(src, "SweepStats"))
            statMembers.push_back(std::move(m));
        const std::string &text = src.stripped;
        static const std::string ptr = "SimResult::";
        std::size_t at = 0;
        while ((at = text.find(ptr, at)) != std::string::npos) {
            // Must be a pointer-to-member expression: an '&' starts
            // the qualified name ("&timing::SimResult::x" or
            // "&SimResult::x").
            std::size_t b = at;
            while (b > 0 && (identChar(text[b - 1]) ||
                             text[b - 1] == ':'))
                --b;
            while (b > 0 && std::isspace(
                                static_cast<unsigned char>(text[b - 1])))
                --b;
            if (b > 0 && text[b - 1] == '&') {
                std::size_t e = at + ptr.size();
                std::size_t i = e;
                while (i < text.size() && identChar(text[i]))
                    ++i;
                if (i > e)
                    tabled.insert(text.substr(e, i - e));
            }
            at += ptr.size();
        }
        for (const std::string &lit : src.literals)
            literals.insert(lit);
    }

    if (!simMembers.empty()) {
        if (tabled.empty()) {
            addFinding(*std::find_if(sources.begin(), sources.end(),
                                     [&](const Source &s) {
                                         return s.vpath ==
                                                simMembers[0].vpath;
                                     }),
                       simMembers[0].line, "field-table",
                       "struct SimResult found but no "
                       "simResultFields() table entries "
                       "(&SimResult::<member>) in the scanned set");
        } else {
            for (const Member &m : simMembers) {
                if (tabled.count(m.name))
                    continue;
                auto it = std::find_if(sources.begin(), sources.end(),
                                       [&](const Source &s) {
                                           return s.vpath == m.vpath;
                                       });
                addFinding(*it, m.line, "field-table",
                           "SimResult counter '" + m.name +
                               "' missing from the simResultFields() "
                               "table: it would never gate in "
                               "uasim-report or the cross-engine "
                               "differential tests");
            }
        }
    }

    // SweepStats: every counter must appear as a serialized field
    // name (a string literal) somewhere in the scanned set - a stat
    // that never reaches the artifact is invisible to the baselines.
    for (const Member &m : statMembers) {
        if (literals.count(m.name))
            continue;
        auto it = std::find_if(sources.begin(), sources.end(),
                               [&](const Source &s) {
                                   return s.vpath == m.vpath;
                               });
        addFinding(*it, m.line, "field-table",
                   "SweepStats counter '" + m.name +
                       "' is never serialized (no \"" + m.name +
                       "\" field name in the scanned set): add it to "
                       "the BenchResult stats block");
    }
}

// ---------------------------------------------------------------------------
// Input assembly
// ---------------------------------------------------------------------------

bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/// Repo-relative forward-slash path, or "" when @p f is outside root.
std::string
relativeTo(const fs::path &root, const fs::path &f)
{
    std::error_code ec;
    const fs::path rel = fs::relative(f, root, ec);
    if (ec || rel.empty())
        return "";
    const std::string s = rel.generic_string();
    if (s.rfind("..", 0) == 0)
        return "";
    return s;
}

/// Load the compile-db TUs under @p root plus the headers of the
/// linted layers. @return false on a parse/read error.
bool
loadCompdb(const fs::path &compdb, const fs::path &root,
           std::vector<Source> &sources)
{
    std::string text;
    if (!readFile(compdb, text)) {
        std::fprintf(stderr, "uasim-lint: cannot read %s\n",
                     compdb.string().c_str());
        return false;
    }
    std::map<std::string, std::string> tus;  // vpath -> flags
    try {
        const uasim::json::Value db = uasim::json::parse(text);
        for (const uasim::json::Value &e : db.asArray()) {
            const uasim::json::Object &o = e.asObject();
            const uasim::json::Value *fileV = o.find("file");
            const uasim::json::Value *dirV = o.find("directory");
            if (!fileV)
                continue;
            fs::path f = fileV->asString();
            if (f.is_relative() && dirV)
                f = fs::path(dirV->asString()) / f;
            f = f.lexically_normal();
            const std::string vpath = relativeTo(root, f);
            if (vpath.empty() || vpath.rfind("build", 0) == 0 ||
                vpath.find("/_deps/") != std::string::npos)
                continue;
            std::string flags;
            if (const uasim::json::Value *cmd = o.find("command")) {
                flags = cmd->asString();
            } else if (const uasim::json::Value *args =
                           o.find("arguments")) {
                for (const uasim::json::Value &a : args->asArray()) {
                    flags += a.asString();
                    flags += ' ';
                }
            }
            tus.emplace(vpath, std::move(flags));
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "uasim-lint: %s: %s\n",
                     compdb.string().c_str(), e.what());
        return false;
    }

    // Headers have no compile-db entry; walk the linted layers.
    for (const char *dir : {"src", "tools", "bench"}) {
        const fs::path base = root / dir;
        if (!fs::is_directory(base))
            continue;
        for (auto it = fs::recursive_directory_iterator(base);
             it != fs::recursive_directory_iterator(); ++it) {
            if (!it->is_regular_file())
                continue;
            const std::string ext = it->path().extension().string();
            if (ext != ".hh" && ext != ".h" && ext != ".hpp")
                continue;
            const std::string vpath = relativeTo(root, it->path());
            if (!vpath.empty())
                tus.emplace(vpath, "");
        }
    }

    for (const auto &[vpath, flags] : tus) {
        Source src;
        src.vpath = vpath;
        src.flags = flags;
        if (!readFile(root / vpath, src.raw)) {
            std::fprintf(stderr, "uasim-lint: cannot read %s\n",
                         (root / vpath).string().c_str());
            return false;
        }
        sources.push_back(std::move(src));
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string compdb;
    std::string rootArg;
    std::string flags;
    Linter linter;
    std::vector<Source> sources;
    bool fixtureMode = false;

    if (argc < 2)
        return usage(/*requested=*/false);

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto operand = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "uasim-lint: %s: missing operand\n", what);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help") {
            return usage(/*requested=*/true);
        } else if (arg == "--version") {
            std::string rules;
            for (const std::string &r : ruleNames()) {
                if (!rules.empty())
                    rules += ", ";
                rules += r;
            }
            std::printf("uasim-lint %s (rules: %s)\n", lintVersion,
                        rules.c_str());
            return 0;
        } else if (arg == "--list-rules") {
            for (const std::string &r : ruleNames())
                std::printf("%s\n", r.c_str());
            return 0;
        } else if (arg == "--compdb") {
            compdb = operand("--compdb");
        } else if (arg == "--root") {
            rootArg = operand("--root");
        } else if (arg == "--flags") {
            flags = operand("--flags");
        } else if (arg == "--check") {
            const std::string rule = operand("--check");
            if (std::find(ruleNames().begin(), ruleNames().end(),
                          rule) == ruleNames().end()) {
                std::fprintf(stderr,
                             "uasim-lint: unknown rule \"%s\" (see "
                             "--list-rules)\n",
                             rule.c_str());
                return 2;
            }
            linter.checks.insert(rule);
        } else if (arg == "--as") {
            const std::string vpath = operand("--as");
            const char *file = operand("--as");
            Source src;
            src.vpath = vpath;
            src.flags = flags;
            if (!readFile(file, src.raw)) {
                std::fprintf(stderr,
                             "uasim-lint: cannot read %s\n", file);
                return 2;
            }
            sources.push_back(std::move(src));
            fixtureMode = true;
        } else {
            std::fprintf(stderr,
                         "uasim-lint: unknown argument \"%s\"\n",
                         arg.c_str());
            return usage(/*requested=*/false);
        }
    }

    if (!fixtureMode) {
        if (compdb.empty())
            return usage(/*requested=*/false);
        const fs::path db = fs::path(compdb).lexically_normal();
        fs::path root;
        if (!rootArg.empty()) {
            root = fs::path(rootArg);
        } else {
            // build/compile_commands.json -> the repo root is the
            // build dir's parent.
            root = db.parent_path().parent_path();
        }
        std::error_code ec;
        root = fs::canonical(root, ec);
        if (ec) {
            std::fprintf(stderr, "uasim-lint: bad root %s\n",
                         rootArg.c_str());
            return 2;
        }
        if (!loadCompdb(db, root, sources))
            return 2;
    } else if (!compdb.empty()) {
        std::fprintf(stderr,
                     "uasim-lint: --compdb and --as are exclusive\n");
        return 2;
    }

    linter.run(sources);
    const int rc = linter.report();
    if (rc == 0) {
        std::printf("uasim-lint: clean (%zu files scanned)\n",
                    sources.size());
    } else {
        std::printf("uasim-lint: %zu finding(s)\n", linter.count());
    }
    return rc;
}
