/**
 * @file
 * uasim-report: the BENCH_*.json regression differ.
 *
 * Compares a baseline result set (the committed baselines/ directory)
 * against a freshly generated one. Simulated fields - params, derived
 * metrics, every sweep cell's cycles / instruction counts / mix, and
 * the deterministic SweepStats subset - are compared bit-exactly;
 * wall-clock / store-traffic fields are printed but never gate.
 *
 * Exit codes (the CI contract, core::exitCode):
 *   0  every artifact pair matches
 *   1  at least one simulated-metric regression (or a missing /
 *      extra artifact on either side)
 *   2  at least one artifact could not be parsed against the schema
 *
 * With --update-baselines the current artifacts are rewritten into
 * the baseline directory in canonical baseline form (informational
 * block stripped), so refreshed baselines diff cleanly in review.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "core/campaign.hh"
#include "core/result.hh"

namespace fs = std::filesystem;
using uasim::core::BenchResult;
using uasim::core::DiffStatus;

namespace {

int
usage(const char *argv0, bool requested)
{
    // An explicit --help is a successful run on stdout; reaching here
    // on bad arguments is the schema-error exit on stderr.
    std::fprintf(
        requested ? stdout : stderr,
        "usage: %s [--update-baselines] BASELINE CURRENT\n"
        "       %s merge OUT SHARD...\n"
        "\n"
        "  BASELINE / CURRENT are BENCH_*.json files, or directories\n"
        "  of them (compared pairwise by file name, union of both\n"
        "  sides; an artifact missing on either side is a\n"
        "  regression).\n"
        "\n"
        "  merge combines the partial BENCH_<c>.shard<i>of<N>.json\n"
        "  artifacts of one uasim-sweep campaign (files, or\n"
        "  directories globbed for them) into the canonical merged\n"
        "  artifact at OUT (a directory gets BENCH_<campaign>.json),\n"
        "  bit-identical in simulated fields to an unsharded run.\n"
        "  Overlapping, missing, or mismatched shards exit 1;\n"
        "  unparsable artifacts exit 2.\n"
        "\n"
        "  --update-baselines  instead of diffing, rewrite CURRENT's\n"
        "                      artifacts into BASELINE in canonical\n"
        "                      baseline form (wall-time block\n"
        "                      stripped)\n"
        "  --prune             with --update-baselines: also remove\n"
        "                      baselines absent from CURRENT (full-set\n"
        "                      refresh; without it a partial CURRENT\n"
        "                      only touches its own artifacts)\n"
        "  --version           print the tool version and the\n"
        "                      artifact schema it gates, then exit 0\n"
        "\n"
        "exit codes: 0 match, 1 regression, 2 schema error\n",
        argv0, argv0);
    return requested ? 0
                     : uasim::core::exitCode(DiffStatus::SchemaError);
}

/// BENCH_*.json names under @p dir, sorted (or the single file name).
std::vector<std::string>
artifactNames(const fs::path &path)
{
    std::vector<std::string> names;
    if (!fs::is_directory(path)) {
        names.push_back(path.filename().string());
        return names;
    }
    for (const auto &entry : fs::directory_iterator(path)) {
        if (!entry.is_regular_file())
            continue;
        const std::string name = entry.path().filename().string();
        if (name.starts_with("BENCH_") && name.ends_with(".json"))
            names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    return names;
}

/// Resolve @p name inside @p root (which may itself be the file).
fs::path
resolve(const fs::path &root, const std::string &name)
{
    return fs::is_directory(root) ? root / name : root;
}

/**
 * " [model=NAME]" when the artifact at @p path parses and carries a
 * "timing_model" param; empty otherwise. Cosmetic context for the
 * mismatch lines (per-model artifacts of one bench differ only in
 * this param and a filename suffix) - it never affects the diff
 * status, so an unreadable artifact stays a plain MISSING/SCHEMA
 * verdict from the usual paths.
 */
std::string
modelTag(const fs::path &path)
{
    try {
        const BenchResult r =
            uasim::core::loadResultFile(path.string());
        for (const auto &[key, value] : r.params) {
            if (key == "timing_model" &&
                value.type() == uasim::json::Value::Type::String)
                return " [model=" + value.asString() + "]";
        }
    } catch (const std::exception &) {
    }
    return "";
}

std::optional<BenchResult>
load(const fs::path &path, DiffStatus &status)
{
    try {
        return uasim::core::loadResultFile(path.string());
    } catch (const uasim::core::SchemaError &e) {
        std::printf("SCHEMA ERROR  %s\n", e.what());
        status = uasim::core::worse(status, DiffStatus::SchemaError);
        return std::nullopt;
    }
}

int
updateBaselines(const fs::path &baseDir, const fs::path &curPath,
                bool prune)
{
    if (prune && !fs::is_directory(curPath)) {
        // A lone file would "prune" every other baseline.
        std::fprintf(stderr,
                     "--prune requires CURRENT to be a full artifact "
                     "directory, not a single file\n");
        return uasim::core::exitCode(DiffStatus::SchemaError);
    }
    std::error_code ec;
    fs::create_directories(baseDir, ec);
    if (ec) {
        std::fprintf(stderr, "cannot create %s: %s\n",
                     baseDir.string().c_str(), ec.message().c_str());
        return uasim::core::exitCode(DiffStatus::SchemaError);
    }
    const std::vector<std::string> names = artifactNames(curPath);
    if (names.empty()) {
        // Same contract as diff mode: an empty current set is a
        // broken invocation, not a successful no-op refresh.
        std::fprintf(stderr,
                     "%s: no BENCH_*.json artifacts to update from\n",
                     curPath.string().c_str());
        return uasim::core::exitCode(DiffStatus::SchemaError);
    }
    DiffStatus status = DiffStatus::Match;
    for (const std::string &name : names) {
        auto cur = load(resolve(curPath, name), status);
        if (!cur)
            continue;
        const fs::path out = baseDir / name;
        try {
            uasim::core::saveResultFile(
                *cur, out.string(), /*includeInformational=*/false);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "cannot write %s: %s\n",
                         out.string().c_str(), e.what());
            return uasim::core::exitCode(DiffStatus::SchemaError);
        }
        std::printf("UPDATED       %s\n", out.string().c_str());
    }
    // A full-set refresh (--prune) also retires baselines whose bench
    // no longer emits an artifact - otherwise the gate's union pass
    // reports MISSING CUR forever after a bench rename/removal.
    // Pruning is opt-in so refreshing a subset of artifacts from a
    // scratch directory cannot silently delete the others' baselines.
    for (const std::string &stale : artifactNames(baseDir)) {
        if (std::find(names.begin(), names.end(), stale) !=
            names.end())
            continue;
        if (!prune) {
            std::printf("STALE?        %s (absent from %s; pass "
                        "--prune on a full-set refresh to remove)\n",
                        stale.c_str(), curPath.string().c_str());
            continue;
        }
        std::error_code ec;
        fs::remove(baseDir / stale, ec);
        if (ec) {
            std::fprintf(stderr, "cannot remove %s: %s\n",
                         (baseDir / stale).string().c_str(),
                         ec.message().c_str());
            return uasim::core::exitCode(DiffStatus::SchemaError);
        }
        std::printf("REMOVED       %s\n",
                    (baseDir / stale).string().c_str());
    }
    return uasim::core::exitCode(status);
}

/**
 * `uasim-report merge OUT SHARD...`: combine one campaign's partial
 * shard artifacts into the canonical merged artifact. Directory
 * operands are globbed for BENCH_*.shard*of*.json (sorted), so CI can
 * point it at the downloaded artifact directory. The merged file is
 * written in baseline form (no informational block): its simulated
 * fields are exactly the unsharded run's, its wall-clock story is no
 * single process's.
 *
 * Exit codes: 0 merged, 1 structural conflict (overlap / missing
 * shard / mismatched campaign), 2 usage or unparsable artifact.
 */
int
mergeShards(int argc, char **argv)
{
    std::vector<fs::path> inputs;
    for (int i = 3; i < argc; ++i) {
        const fs::path p = argv[i];
        if (fs::is_directory(p)) {
            std::vector<std::string> names;
            for (const auto &entry : fs::directory_iterator(p)) {
                if (!entry.is_regular_file())
                    continue;
                const std::string name =
                    entry.path().filename().string();
                if (name.starts_with("BENCH_") &&
                    name.find(".shard") != std::string::npos &&
                    name.ends_with(".json"))
                    names.push_back(name);
            }
            std::sort(names.begin(), names.end());
            for (const std::string &name : names)
                inputs.push_back(p / name);
        } else {
            inputs.push_back(p);
        }
    }
    if (inputs.empty()) {
        std::fprintf(stderr, "merge: no shard artifacts found\n");
        return uasim::core::exitCode(DiffStatus::SchemaError);
    }

    std::vector<BenchResult> shards;
    for (const fs::path &p : inputs) {
        try {
            shards.push_back(uasim::core::loadResultFile(p.string()));
            std::printf("SHARD         %s\n", p.string().c_str());
        } catch (const uasim::core::SchemaError &e) {
            std::fprintf(stderr, "SCHEMA ERROR  %s: %s\n",
                         p.string().c_str(), e.what());
            return uasim::core::exitCode(DiffStatus::SchemaError);
        }
    }

    BenchResult merged;
    try {
        merged = uasim::core::mergeShardResults(shards);
    } catch (const uasim::core::CampaignError &e) {
        std::fprintf(stderr, "MERGE CONFLICT  %s\n", e.what());
        return uasim::core::exitCode(DiffStatus::Regression);
    }

    // OUT names the merged file only when it looks like one
    // (*.json); anything else is a directory that receives the
    // canonical BENCH_<campaign>.json.
    fs::path out = argv[2];
    if (fs::is_directory(out) || !out.string().ends_with(".json")) {
        std::error_code ec;
        fs::create_directories(out, ec);
        out /= "BENCH_" + merged.bench + ".json";
    }
    try {
        uasim::core::saveResultFile(merged, out.string(),
                                    /*includeInformational=*/false);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "cannot write %s: %s\n",
                     out.string().c_str(), e.what());
        return uasim::core::exitCode(DiffStatus::SchemaError);
    }
    std::printf("MERGED        %s (%zu shard(s), %zu cells)\n",
                out.string().c_str(), shards.size(),
                merged.cells.size());
    return uasim::core::exitCode(DiffStatus::Match);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && std::strcmp(argv[1], "merge") == 0) {
        if (argc < 4) {
            std::fprintf(stderr,
                         "usage: %s merge OUT SHARD...\n", argv[0]);
            return uasim::core::exitCode(DiffStatus::SchemaError);
        }
        return mergeShards(argc, argv);
    }
    bool update = false;
    bool prune = false;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--update-baselines") == 0)
            update = true;
        else if (std::strcmp(argv[i], "--prune") == 0)
            prune = true;
        else if (std::strcmp(argv[i], "--help") == 0)
            return usage(argv[0], /*requested=*/true);
        else if (std::strcmp(argv[i], "--version") == 0) {
            // Self-report for CI logs and artifact consumers: which
            // schema this differ understands and gates.
            std::printf("uasim-report %s (schema %s v%d)\n",
                        UASIM_REPORT_VERSION, BenchResult::schemaName,
                        BenchResult::schemaVersion);
            return 0;
        }
        else
            positional.push_back(argv[i]);
    }
    if (positional.size() != 2)
        return usage(argv[0], /*requested=*/false);

    const fs::path basePath = positional[0];
    const fs::path curPath = positional[1];

    if (!fs::exists(curPath)) {
        std::fprintf(stderr, "%s: does not exist\n",
                     curPath.string().c_str());
        return uasim::core::exitCode(DiffStatus::SchemaError);
    }
    if (prune && !update) {
        std::fprintf(stderr,
                     "--prune requires --update-baselines\n");
        return uasim::core::exitCode(DiffStatus::SchemaError);
    }
    if (update)
        return updateBaselines(basePath, curPath, prune);
    if (!fs::exists(basePath)) {
        std::fprintf(stderr,
                     "%s: does not exist (generate it with "
                     "--update-baselines)\n",
                     basePath.string().c_str());
        return uasim::core::exitCode(DiffStatus::SchemaError);
    }

    // dir vs dir: the union of artifact names on both sides, one
    // verdict each. A single file on either side restricts the
    // comparison to that one artifact (its namesake in the directory
    // side), whatever its name.
    const bool baseIsDir = fs::is_directory(basePath);
    const bool curIsDir = fs::is_directory(curPath);
    std::vector<std::string> names;
    if (baseIsDir && curIsDir) {
        names = artifactNames(basePath);
        for (const std::string &n : artifactNames(curPath)) {
            if (std::find(names.begin(), names.end(), n) ==
                names.end())
                names.push_back(n);
        }
    } else {
        names.push_back((curIsDir ? basePath : curPath)
                            .filename()
                            .string());
    }
    std::sort(names.begin(), names.end());
    if (names.empty()) {
        std::fprintf(stderr, "no BENCH_*.json artifacts found\n");
        return uasim::core::exitCode(DiffStatus::SchemaError);
    }

    DiffStatus status = DiffStatus::Match;
    int regressions = 0;
    for (const std::string &name : names) {
        const fs::path basFile = resolve(basePath, name);
        const fs::path curFile = resolve(curPath, name);
        if (!fs::exists(basFile)) {
            std::printf("MISSING BASE  %s%s (new bench? refresh with "
                        "--update-baselines)\n",
                        name.c_str(), modelTag(curFile).c_str());
            status = uasim::core::worse(status, DiffStatus::Regression);
            ++regressions;
            continue;
        }
        if (!fs::exists(curFile)) {
            std::printf("MISSING CUR   %s%s (bench no longer emits "
                        "this artifact)\n",
                        name.c_str(), modelTag(basFile).c_str());
            status = uasim::core::worse(status, DiffStatus::Regression);
            ++regressions;
            continue;
        }
        auto base = load(basFile, status);
        auto cur = load(curFile, status);
        if (!base || !cur)
            continue;
        auto report = uasim::core::diffResults(*base, *cur);
        if (report.status == DiffStatus::Match) {
            std::printf("OK            %s\n", name.c_str());
        } else {
            std::printf("REGRESSION    %s%s\n", name.c_str(),
                        modelTag(curFile).c_str());
            ++regressions;
        }
        for (const std::string &line : report.regressions)
            std::printf("    %s\n", line.c_str());
        for (const std::string &line : report.notes)
            std::printf("    note: %s\n", line.c_str());
        status = uasim::core::worse(status, report.status);
    }

    if (status == DiffStatus::Match)
        std::printf("all %zu artifact(s) match\n", names.size());
    else
        std::printf("%d artifact(s) differ\n", regressions);
    return uasim::core::exitCode(status);
}
