/**
 * @file
 * uasim-sweep: the declarative campaign driver.
 *
 *   uasim-sweep run CAMPAIGN.conf [--shard I/N] --json DIR ...
 *   uasim-sweep expand CAMPAIGN.conf [--shard I/N]
 *
 * `run` expands the campaign (core/campaign.hh), executes this
 * invocation's chunks through the SweepRunner/TraceStore stack, and
 * writes the shard artifact (BENCH_<name>.shard<i>of<N>.json) or -
 * without --shard - the canonical BENCH_<name>.json. Chunks already
 * published under DIR/<id>.chunks/ are skipped, not re-run: that is
 * the resume property, and the "executed E chunk(s), skipped S
 * published chunk(s)" summary line is what CI greps to prove it.
 *
 * `expand` is the dry run: identity, grid shape, and the chunk ->
 * shard table, without simulating anything.
 *
 * Exit codes: 0 success, 1 execution failure, 2 usage error or
 * malformed campaign (including an out-of-range --shard).
 *
 * Like the campaign library itself, this tool is inside the
 * sim-determinism lint scope: chunk addressing and shard assignment
 * must stay wall-clock- and randomness-free.
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "core/campaign.hh"

using uasim::core::Campaign;
using uasim::core::CampaignError;
using uasim::core::CampaignRunOptions;
using uasim::core::CampaignRunOutcome;

namespace {

int
usage(const char *argv0, bool requested)
{
    std::fprintf(
        requested ? stdout : stderr,
        "usage: %s run CAMPAIGN.conf --json DIR [options]\n"
        "       %s expand CAMPAIGN.conf [--shard I/N]\n"
        "\n"
        "run options:\n"
        "  --json DIR          artifact directory (required): the shard\n"
        "                      artifact plus resumable chunk artifacts\n"
        "                      under DIR/<campaign-id>.chunks/\n"
        "  --shard I/N         run shard I of N (chunk j belongs to\n"
        "                      shard j%%N); omit for the unsharded\n"
        "                      single-process run\n"
        "  --threads N         sweep worker threads (default: hardware)\n"
        "  --trace-cache DIR   persistent content-addressed trace store\n"
        "  --replay-mode M     batched (default) or percell\n"
        "\n"
        "expand prints the campaign identity, grid shape, and chunk ->\n"
        "shard table without simulating.\n"
        "\n"
        "exit codes: 0 success, 1 run failure, 2 usage/malformed "
        "campaign\n",
        argv0, argv0);
    return requested ? 0 : 2;
}

bool
parseShard(const std::string &spec, int &shard, int &count)
{
    const std::size_t slash = spec.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= spec.size())
        return false;
    for (std::size_t i = 0; i < spec.size(); ++i)
        if (i != slash && !std::isdigit(static_cast<unsigned char>(spec[i])))
            return false;
    shard = std::atoi(spec.substr(0, slash).c_str());
    count = std::atoi(spec.substr(slash + 1).c_str());
    return true;
}

/// Operand of flag argv[i]; exits 2 when missing or another flag.
const char *
operand(int argc, char **argv, int &i)
{
    if (i + 1 >= argc || argv[i + 1][0] == '-') {
        std::fprintf(stderr, "%s: missing operand for %s\n", argv[0],
                     argv[i]);
        std::exit(2);
    }
    return argv[++i];
}

struct Options {
    std::string verb;
    std::string campaignFile;
    bool sharded = false;
    int shard = 0;
    int shardCount = 1;
    std::string jsonDir;
    int threads = 0;
    std::string traceCache;
    uasim::core::ReplayMode replayMode = uasim::core::ReplayMode::Batched;
};

int
runExpand(const Campaign &c, const Options &opt)
{
    std::printf("campaign  %s\n", c.name().c_str());
    std::printf("id        %s\n", c.id().c_str());
    std::printf("hash      %s\n", c.contentHashHex().c_str());
    std::printf("execs     %d\n", c.execs());
    std::printf("seed      %llu\n",
                static_cast<unsigned long long>(c.seed()));
    std::printf("chunks    %d (traces)\n", c.chunkCount());
    std::printf("configs   %d\n", c.configCount());
    std::printf("cells     %d\n", c.chunkCount() * c.configCount());
    for (const auto &cfg : c.configs())
        std::printf("config    %s\n", cfg.label.c_str());
    for (int j = 0; j < c.chunkCount(); ++j) {
        if (opt.sharded)
            std::printf("chunk %-3d shard %d/%d  %s  %s\n", j,
                        j % opt.shardCount, opt.shardCount,
                        c.chunkFileName(j).c_str(),
                        c.chunkTraceKey(j).c_str());
        else
            std::printf("chunk %-3d %s  %s\n", j,
                        c.chunkFileName(j).c_str(),
                        c.chunkTraceKey(j).c_str());
    }
    return 0;
}

int
runRun(const Campaign &c, const Options &opt)
{
    CampaignRunOptions ro;
    ro.sharded = opt.sharded;
    ro.shard = opt.shard;
    ro.shardCount = opt.shardCount;
    ro.jsonDir = opt.jsonDir;
    ro.threads = opt.threads;
    ro.traceCache = opt.traceCache;
    ro.replayMode = opt.replayMode;

    const CampaignRunOutcome out = uasim::core::runCampaignShard(c, ro);
    for (const auto &s : out.chunks)
        std::printf("[%s] chunk %d %s: %s\n", c.name().c_str(), s.chunk,
                    s.file.c_str(),
                    s.skipped ? "skipped (published)" : "executed");
    if (opt.sharded)
        std::printf("[%s] shard %d/%d: executed %d chunk(s), skipped %d "
                    "published chunk(s)\n",
                    c.name().c_str(), opt.shard, opt.shardCount,
                    out.executed, out.skipped);
    else
        std::printf("[%s] run: executed %d chunk(s), skipped %d "
                    "published chunk(s)\n",
                    c.name().c_str(), out.executed, out.skipped);
    std::printf("[%s] wrote %s\n", c.name().c_str(),
                out.artifactPath.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0)
            return usage(argv[0], /*requested=*/true);
        if (std::strcmp(argv[i], "--version") == 0) {
            std::printf("uasim-sweep %s (schema %s v%d)\n",
                        UASIM_SWEEP_VERSION,
                        uasim::core::BenchResult::schemaName,
                        uasim::core::BenchResult::schemaVersion);
            return 0;
        }
        if (std::strcmp(argv[i], "--shard") == 0) {
            if (!parseShard(operand(argc, argv, i), opt.shard,
                            opt.shardCount)) {
                std::fprintf(stderr,
                             "%s: --shard wants I/N (e.g. 0/3)\n",
                             argv[0]);
                return 2;
            }
            opt.sharded = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            opt.jsonDir = operand(argc, argv, i);
        } else if (std::strcmp(argv[i], "--threads") == 0) {
            opt.threads = std::atoi(operand(argc, argv, i));
            if (opt.threads < 0) {
                std::fprintf(stderr, "%s: bad --threads value\n",
                             argv[0]);
                return 2;
            }
        } else if (std::strcmp(argv[i], "--trace-cache") == 0) {
            opt.traceCache = operand(argc, argv, i);
        } else if (std::strcmp(argv[i], "--replay-mode") == 0) {
            const char *mode = operand(argc, argv, i);
            if (!uasim::core::parseReplayMode(mode, opt.replayMode)) {
                std::fprintf(stderr,
                             "%s: unknown replay mode '%s' (want "
                             "batched or percell)\n",
                             argv[0], mode);
                return 2;
            }
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "%s: unknown flag %s\n", argv[0],
                         argv[i]);
            return usage(argv[0], /*requested=*/false);
        } else {
            positional.push_back(argv[i]);
        }
    }
    if (positional.size() != 2)
        return usage(argv[0], /*requested=*/false);
    opt.verb = positional[0];
    opt.campaignFile = positional[1];
    if (opt.verb != "run" && opt.verb != "expand") {
        std::fprintf(stderr, "%s: unknown verb '%s'\n", argv[0],
                     opt.verb.c_str());
        return usage(argv[0], /*requested=*/false);
    }
    if (opt.verb == "run" && opt.jsonDir.empty()) {
        std::fprintf(stderr, "%s: run requires --json DIR\n", argv[0]);
        return 2;
    }

    try {
        const Campaign c = Campaign::load(opt.campaignFile);
        if (opt.sharded) {
            // Validate the shard spec against the expanded grid up
            // front - an out-of-range shard is a usage error (2),
            // not a run failure.
            Campaign::shardChunks(c.chunkCount(), opt.shard,
                                  opt.shardCount);
        }
        return opt.verb == "expand" ? runExpand(c, opt) : runRun(c, opt);
    } catch (const CampaignError &e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        return 1;
    }
}
