/**
 * @file
 * Full-pipeline scenario: encode a synthetic sequence with the mini
 * H.264-style encoder, decode it back, verify bit-exact reconstruction
 * sync, and report quality plus the per-stage work profile that
 * drives the paper's Fig 10.
 */

#include <cstdio>

#include "bench_util.hh"

#include "decoder/codec.hh"

using namespace uasim;

int
main(int argc, char **argv)
{
    const bool quick = bench::quickFlag(argc, argv);

    dec::CodecConfig cfg;
    cfg.seq = video::makeParams(video::Content::BlueSky,
                                bench::quickResolution(quick));
    cfg.qp = 30;
    cfg.frames = bench::sizeFlag(argc, argv, "--frames", 6, 2);

    dec::MiniEncoder enc(cfg);
    dec::MiniDecoder decd(cfg);
    dec::StageCounts counts;

    std::printf("encoding + decoding %d frames of %s at qp %d:\n\n",
                cfg.frames, cfg.seq.label().c_str(), cfg.qp);

    for (int f = 0; f < cfg.frames; ++f) {
        auto coded = enc.encodeFrame(f);
        decd.decodeFrame(coded, counts);
        double psnr = dec::lumaPsnr(enc.source(), decd.picture());
        double sync = dec::lumaPsnr(enc.recon(), decd.picture());
        std::printf("  frame %d: %6zu bytes, %7llu bins, psnr %.2f dB, "
                    "decoder %s\n",
                    f, coded.bits.size(),
                    (unsigned long long)coded.bins, psnr,
                    sync > 90 ? "in sync" : "DESYNCED");
    }

    std::printf("\nper-stage work totals (the Fig 10 drivers):\n");
    std::uint64_t luma_blocks = 0;
    for (int s = 0; s < 3; ++s)
        for (int frac = 0; frac < 16; ++frac)
            luma_blocks += counts.lumaMc[s][frac];
    std::printf("  luma MC blocks:     %llu\n",
                (unsigned long long)luma_blocks);
    std::printf("  chroma MC blocks:   %llu (+%llu copies)\n",
                (unsigned long long)(counts.chromaMc[0] +
                                     counts.chromaMc[1] +
                                     counts.chromaMc[2]),
                (unsigned long long)counts.chromaCopy);
    std::printf("  coded 4x4 blocks:   %llu\n",
                (unsigned long long)counts.idct4x4);
    std::printf("  deblocked MBs:      %llu\n",
                (unsigned long long)counts.deblockMbs);
    std::printf("  CABAC bins:         %llu\n",
                (unsigned long long)counts.cabacBins);
    std::printf("  video-out bytes:    %llu\n",
                (unsigned long long)counts.videoOutBytes);
    return 0;
}
