/**
 * @file
 * Motion-estimation scenario: a diamond search over a synthetic
 * frame pair using the traced SAD kernels, comparing the instruction
 * bill of plain Altivec vs unaligned SIMD for a realistic search.
 *
 * This is the paper's section II-B motivation in executable form:
 * every candidate position the search probes has an arbitrary
 * (address % 16), so realignment code runs on almost every SAD call.
 */

#include <cstdio>

#include "bench_util.hh"

#include "h264/sad_kernels.hh"
#include "trace/emitter.hh"
#include "trace/sink.hh"
#include "video/motion.hh"
#include "video/sequence.hh"

using namespace uasim;

namespace {

/// Small diamond pattern search around (px, py); returns best MV.
std::pair<int, int>
diamondSearch(h264::KernelCtx &ctx, h264::Variant variant,
              const video::Plane &cur, const video::Plane &ref, int bx,
              int by, video::AlignmentHistogram &hist)
{
    const int offs[5][2] = {{0, 0}, {1, 0}, {-1, 0}, {0, 1}, {0, -1}};
    int mx = 0, my = 0;
    int best = 1 << 30;
    for (int round = 0; round < 12; ++round) {
        int step_best = best;
        int sx = mx, sy = my;
        for (const auto &o : offs) {
            int cx = mx + o[0], cy = my + o[1];
            if (std::abs(cx) > 16 || std::abs(cy) > 16)
                continue;
            const std::uint8_t *rp = ref.pixel(bx + cx, by + cy);
            hist.add(reinterpret_cast<std::uint64_t>(rp));
            int sad = h264::sadKernel(ctx, variant, cur.pixel(bx, by),
                                      cur.stride(), rp, ref.stride(),
                                      16);
            if (sad < step_best) {
                step_best = sad;
                sx = cx;
                sy = cy;
            }
        }
        if (step_best >= best)
            break;
        best = step_best;
        mx = sx;
        my = sy;
    }
    return {mx, my};
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = bench::quickFlag(argc, argv);
    const video::Resolution res = bench::quickResolution(quick);
    const int w = res.width;
    const int h = res.height;

    // Blue-sky-like content: a global pan the search must track.
    auto params = video::makeParams(video::Content::BlueSky, res);
    video::SyntheticSequence seq(params);
    video::Frame f0(w, h), f1(w, h);
    seq.render(0, f0);
    seq.render(4, f1);

    std::printf("diamond search, %dx%d, 16x16 blocks:\n\n",
                params.width, params.height);

    for (int v = 1; v < h264::numVariants; ++v) {
        auto variant = static_cast<h264::Variant>(v);
        trace::CountingSink sink;
        trace::Emitter em(sink);
        h264::KernelCtx ctx(em);
        video::AlignmentHistogram hist;

        long total_mv = 0;
        int blocks = 0;
        for (int by = 16; by + 16 <= h - 16; by += 16) {
            for (int bx = 16; bx + 16 <= w - 16; bx += 16) {
                auto [mx, my] = diamondSearch(ctx, variant, f1.luma(),
                                              f0.luma(), bx, by, hist);
                total_mv += std::abs(mx) + std::abs(my);
                ++blocks;
            }
        }

        std::printf("  %-10s: %8lu instructions for %d blocks "
                    "(%lu/block), mean |mv| %.2f\n",
                    std::string(h264::variantName(variant)).c_str(),
                    (unsigned long)sink.mix().total(), blocks,
                    (unsigned long)(sink.mix().total() / blocks),
                    double(total_mv) / blocks);
        if (v == 2) {
            std::printf("\n  probed-candidate alignment offsets "
                        "(%% of SAD calls):\n    ");
            for (int o = 0; o < 16; ++o)
                std::printf("%d:%.0f%% ", o, hist.percent(o));
            std::printf("\n");
        }
    }
    std::printf("\nEvery probe lands at an arbitrary offset, so the "
                "unaligned instructions\nremove the realignment bill "
                "from nearly every SAD in the search.\n");
    return 0;
}
