/**
 * @file
 * Architecture-exploration scenario: sweep the realignment-network
 * latency and the cache-port count on the 4-way core and watch where
 * the unaligned instructions stop paying off - the design-space
 * question the paper's section V-C answers for hardware designers.
 */

#include <cstdio>

#include "bench_util.hh"

#include "core/experiment.hh"

using namespace uasim;

int
main(int argc, char **argv)
{
    const int execs = bench::sizeFlag(argc, argv, "--execs", 200, 20);
    core::KernelSpec spec{h264::KernelId::ChromaMc, 8, false};
    core::KernelBench bench(spec);

    std::printf("design-space sweep on %s (4-way core, %d "
                "executions)\n\n",
                spec.name().c_str(), execs);

    auto base_cfg = timing::CoreConfig::fourWayOoO();
    auto altivec = bench.simulate(h264::Variant::Altivec, base_cfg,
                                  execs);
    std::printf("plain Altivec baseline: %llu cycles\n\n",
                (unsigned long long)altivec.cycles);

    std::printf("1) extra latency of unaligned accesses "
                "(paper Fig 9):\n");
    for (int extra : {0, 1, 2, 4, 6, 8, 10}) {
        auto cfg = base_cfg;
        cfg.lat.unalignedLoadExtra = extra;
        cfg.lat.unalignedStoreExtra = extra;
        auto r = bench.simulate(h264::Variant::Unaligned, cfg, execs);
        double speedup = double(altivec.cycles) / double(r.cycles);
        std::printf("   +%2d cycles: speedup %.3f %s\n", extra, speedup,
                    speedup < 1.0 ? " <- slower than software realign!"
                                  : "");
    }

    std::printf("\n2) D-cache read ports (paper section III: short "
                "bandwidth to the L1\n   hurts both variants, but the "
                "realigned version issues twice the loads):\n");
    for (int ports : {1, 2, 4}) {
        auto cfg = base_cfg;
        cfg.dReadPorts = ports;
        auto a = bench.simulate(h264::Variant::Altivec, cfg, execs);
        auto u = bench.simulate(h264::Variant::Unaligned, cfg, execs);
        std::printf("   %d port(s): altivec %8llu cyc, unaligned %8llu "
                    "cyc, gain %.3fx\n",
                    ports, (unsigned long long)a.cycles,
                    (unsigned long long)u.cycles,
                    double(a.cycles) / double(u.cycles));
    }

    std::printf("\n3) dual-bank alignment network on/off (paper Fig 7; "
                "line-crossing\n   accesses serialize without it):\n");
    for (bool parallel : {true, false}) {
        auto cfg = base_cfg;
        cfg.mem.parallelBanks = parallel;
        cfg.lat.unalignedLoadExtra = 1;
        cfg.lat.unalignedStoreExtra = 2;
        auto r = bench.simulate(h264::Variant::Unaligned, cfg, execs);
        std::printf("   %s banks: %8llu cycles (%llu line "
                    "crossings)\n",
                    parallel ? "parallel" : "  serial",
                    (unsigned long long)r.cycles,
                    (unsigned long long)r.lineCrossings);
    }
    return 0;
}
