/**
 * @file
 * Quickstart: run one H.264 kernel in all three variants, count
 * instructions, and simulate it on the paper's 4-way core.
 *
 * Build tree path: build/examples/quickstart
 */

#include <cstdio>

#include "bench_util.hh"

#include "core/api.hh"

using namespace uasim;

int
main(int argc, char **argv)
{
    const int count_execs =
        bench::sizeFlag(argc, argv, "--execs", 100, 10);
    const int sim_execs = 2 * count_execs;
    // 1. Pick a kernel configuration: SAD over 16x16 blocks, the
    //    motion-estimation metric with unpredictable alignments.
    core::KernelSpec spec{h264::KernelId::Sad, 16, false};
    core::KernelBench bench(spec);

    // 2. Sanity: every variant must be bit-exact vs the reference.
    if (!bench.verifyVariants()) {
        std::printf("variant mismatch!\n");
        return 1;
    }

    // 3. Dynamic instruction counts (the paper's Table III view).
    std::printf("%s, %d executions:\n", spec.name().c_str(),
                count_execs);
    for (int v = 0; v < h264::numVariants; ++v) {
        auto variant = static_cast<h264::Variant>(v);
        auto mix = bench.countInstrs(variant, count_execs);
        std::printf("  %-10s total=%7lu  vec_loads=%5lu  perms=%5lu\n",
                    std::string(h264::variantName(variant)).c_str(),
                    (unsigned long)mix.total(),
                    (unsigned long)mix.vecLoads(),
                    (unsigned long)mix.vecPerm());
    }

    // 4. Cycle-level simulation on the 4-way out-of-order core.
    auto cfg = timing::CoreConfig::fourWayOoO();
    std::printf("\nsimulated on %s:\n", cfg.name.c_str());
    double cycles[3];
    for (int v = 0; v < h264::numVariants; ++v) {
        auto variant = static_cast<h264::Variant>(v);
        auto res = bench.simulate(variant, cfg, sim_execs);
        cycles[v] = double(res.cycles);
        std::printf("  %-10s %9.0f cycles  (ipc %.2f, mispredict "
                    "%.1f%%)\n",
                    std::string(h264::variantName(variant)).c_str(),
                    cycles[v], res.ipc(),
                    100.0 * res.mispredictRate());
    }
    std::printf("\nunaligned vs altivec speedup: %.2fx  "
                "(paper: ~1.16x for SAD)\n",
                cycles[1] / cycles[2]);
    return 0;
}
