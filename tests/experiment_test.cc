/**
 * @file
 * End-to-end experiment-layer tests: the paper's headline properties
 * must hold on the kernel grid - instruction reductions (Table III),
 * speedups (Fig 8), and latency sensitivity (Fig 9).
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/report.hh"

using namespace uasim;
using core::KernelBench;
using core::KernelSpec;
using h264::KernelId;
using h264::Variant;

TEST(KernelSpec, Names)
{
    EXPECT_EQ(KernelSpec({KernelId::LumaMc, 16, false}).name(),
              "luma16x16");
    EXPECT_EQ(KernelSpec({KernelId::Idct, 4, true}).name(),
              "idct4x4_matrix");
    EXPECT_EQ(core::paperKernelGrid().size(), 11u);
    EXPECT_EQ(core::tableThreeSpecs().size(), 5u);
}

/// Every kernel on the paper grid is bit-exact in all variants.
class GridVerify : public ::testing::TestWithParam<int>
{
};

TEST_P(GridVerify, AllVariantsBitExact)
{
    auto spec = core::paperKernelGrid()[GetParam()];
    KernelBench bench(spec);
    EXPECT_TRUE(bench.verifyVariants(5)) << spec.name();
}

INSTANTIATE_TEST_SUITE_P(PaperGrid, GridVerify, ::testing::Range(0, 11));

TEST(InstructionCounts, VectorizationReduces)
{
    for (const auto &spec : core::tableThreeSpecs()) {
        KernelBench bench(spec);
        auto scalar = bench.countInstrs(Variant::Scalar, 50);
        auto altivec = bench.countInstrs(Variant::Altivec, 50);
        auto unaligned = bench.countInstrs(Variant::Unaligned, 50);
        EXPECT_LT(altivec.total(), scalar.total()) << spec.name();
        EXPECT_LT(unaligned.total(), altivec.total()) << spec.name();
    }
}

TEST(InstructionCounts, DeterministicAcrossRuns)
{
    KernelSpec spec{KernelId::Sad, 16, false};
    KernelBench a(spec), b(spec);
    EXPECT_EQ(a.countInstrs(Variant::Altivec, 20).toCsv(),
              b.countInstrs(Variant::Altivec, 20).toCsv());
}

TEST(InstructionCounts, SadPermReduction95Percent)
{
    // The paper reports ~95% of SAD permute instructions eliminated.
    KernelBench bench({KernelId::Sad, 16, false});
    auto altivec = bench.countInstrs(Variant::Altivec, 100);
    auto unaligned = bench.countInstrs(Variant::Unaligned, 100);
    double reduction = 1.0 - double(unaligned.vecPerm()) /
                             double(altivec.vecPerm());
    EXPECT_GT(reduction, 0.90);
    // And vector loads halve (4-instruction realign -> one lvxu).
    EXPECT_NEAR(double(unaligned.vecLoads()) / altivec.vecLoads(), 0.5,
                0.05);
}

TEST(InstructionCounts, UnalignedUsesOnlyUnalignedClasses)
{
    KernelBench bench({KernelId::LumaMc, 16, false});
    auto altivec = bench.countInstrs(Variant::Altivec, 10);
    EXPECT_EQ(altivec.count(trace::InstrClass::VecLoadU), 0u);
    EXPECT_EQ(altivec.count(trace::InstrClass::VecStoreU), 0u);
    auto unaligned = bench.countInstrs(Variant::Unaligned, 10);
    EXPECT_GT(unaligned.count(trace::InstrClass::VecLoadU), 0u);
}

TEST(Speedup, UnalignedBeatsAltivecOnAllKernels)
{
    auto cfg = timing::CoreConfig::fourWayOoO();
    for (const auto &spec : core::paperKernelGrid()) {
        KernelBench bench(spec);
        auto altivec = bench.simulate(Variant::Altivec, cfg, 60);
        auto unaligned = bench.simulate(Variant::Unaligned, cfg, 60);
        EXPECT_LT(unaligned.cycles, altivec.cycles) << spec.name();
    }
}

TEST(Speedup, Luma4x4ScalarCompetitiveWithAltivec)
{
    // The paper's headline pathology: on the 2-way, plain Altivec
    // loses to scalar for 4x4 luma; unaligned support recovers it.
    KernelBench bench({KernelId::LumaMc, 4, false});
    auto cfg = timing::CoreConfig::twoWayInOrder();
    auto scalar = bench.simulate(Variant::Scalar, cfg, 80);
    auto altivec = bench.simulate(Variant::Altivec, cfg, 80);
    auto unaligned = bench.simulate(Variant::Unaligned, cfg, 80);
    EXPECT_LT(double(scalar.cycles), double(altivec.cycles) * 1.10);
    // "Recovers" means back within noise of scalar (the repo's Fig 8
    // shows ~0.97x here) and strictly ahead of plain Altivec; a
    // strict unaligned < scalar would be a knife-edge the paper
    // doesn't claim for 4x4 luma on the 2-way.
    EXPECT_LT(unaligned.cycles, altivec.cycles);
    EXPECT_LT(double(unaligned.cycles), double(scalar.cycles) * 1.02);
}

TEST(Speedup, IdctGainsAreSmall)
{
    // IDCT inputs are aligned; the paper reports only ~1.06-1.09x.
    KernelBench bench({KernelId::Idct, 4, false});
    auto cfg = timing::CoreConfig::fourWayOoO();
    auto altivec = bench.simulate(Variant::Altivec, cfg, 40);
    auto unaligned = bench.simulate(Variant::Unaligned, cfg, 40);
    double speedup = double(altivec.cycles) / double(unaligned.cycles);
    EXPECT_GT(speedup, 1.0);
    EXPECT_LT(speedup, 1.45);
}

TEST(LatencySensitivity, MonotonicDegradation)
{
    // Fig 9: increasing the unaligned extra latency monotonically
    // erodes the unaligned version's advantage.
    KernelBench bench({KernelId::LumaMc, 8, false});
    std::uint64_t prev = 0;
    for (int extra : {0, 1, 2, 4, 6}) {
        auto cfg = timing::CoreConfig::fourWayOoO();
        cfg.lat.unalignedLoadExtra = extra;
        cfg.lat.unalignedStoreExtra = extra;
        auto r = bench.simulate(Variant::Unaligned, cfg, 60);
        EXPECT_GE(r.cycles, prev) << "+";
        prev = r.cycles;
    }
}

TEST(LatencySensitivity, AltivecUnaffectedByUnalignedLatency)
{
    KernelBench bench({KernelId::LumaMc, 8, false});
    auto cfg0 = timing::CoreConfig::fourWayOoO();
    auto cfg6 = cfg0;
    cfg6.lat.unalignedLoadExtra = 6;
    cfg6.lat.unalignedStoreExtra = 6;
    auto a = bench.simulate(Variant::Altivec, cfg0, 40);
    auto b = bench.simulate(Variant::Altivec, cfg6, 40);
    EXPECT_EQ(a.cycles, b.cycles);
}

TEST(Simulation, DeterministicCycles)
{
    KernelSpec spec{KernelId::ChromaMc, 8, false};
    KernelBench a(spec), b(spec);
    auto cfg = timing::CoreConfig::fourWayOoO();
    auto ra = a.simulate(Variant::Unaligned, cfg, 30);
    auto rb = b.simulate(Variant::Unaligned, cfg, 30);
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.instrs, rb.instrs);
    EXPECT_EQ(ra.mispredicts, rb.mispredicts);
}

TEST(Report, TextTableAndCsv)
{
    core::TextTable t;
    t.header({"kernel", "cycles"});
    t.row({"sad16x16", "1234"});
    auto s = t.str();
    EXPECT_NE(s.find("kernel"), std::string::npos);
    EXPECT_NE(s.find("1234"), std::string::npos);
    EXPECT_NE(s.find("---"), std::string::npos);
    EXPECT_EQ(t.csv(), "kernel,cycles\nsad16x16,1234\n");
    EXPECT_EQ(core::fmtCount(1234567), "1,234,567");
    EXPECT_EQ(core::fmt(1.2345, 2), "1.23");
}

TEST(Report, CsvQuotesSpecialCells)
{
    // RFC 4180: separator, quote, and line-break cells must be
    // quoted, embedded quotes doubled; plain cells stay bare.
    core::TextTable t;
    t.header({"name", "value"});
    t.row({"plain", "1,234"});
    t.row({"say \"hi\"", "a\nb"});
    t.row({"cr\rcell", "trailing "});
    EXPECT_EQ(t.csv(),
              "name,value\n"
              "plain,\"1,234\"\n"
              "\"say \"\"hi\"\"\",\"a\nb\"\n"
              "\"cr\rcell\",trailing \n");
}

TEST(Report, CsvFmtCountRoundTrip)
{
    // fmtCount's thousands separators used to collide with the CSV
    // separator unescaped; now they ride inside a quoted cell.
    core::TextTable t;
    t.row({"total", core::fmtCount(9876543210ull)});
    EXPECT_EQ(t.csv(), "total,\"9,876,543,210\"\n");
}
