/**
 * @file
 * uasim-lint conformance: every rule fires on its known-bad fixture
 * with the exact rule id and exit code, stays silent on the matching
 * known-good fixture, and the suppression syntax silences exactly the
 * named rule. Also covers the tool self-reports (`uasim-lint
 * --version`, `uasim-report --version`) the CI lint job relies on.
 *
 * The fixtures live in tests/lint_fixtures/ and are scanned in
 * fixture mode (`--as <vpath> <file>`): the vpath decides which rules
 * are in scope, so one snippet can serve as known-bad under
 * src/core/ and known-good under the designated decode-tier path.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include <sys/wait.h>

namespace {

struct RunResult {
    int exit = -1;
    std::string out;
};

/// Run a shell command, capturing stdout+stderr and the exit code.
RunResult
run(const std::string &cmd)
{
    RunResult r;
    std::FILE *p = ::popen((cmd + " 2>&1").c_str(), "r");
    if (!p)
        return r;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, p)) > 0)
        r.out.append(buf, n);
    const int st = ::pclose(p);
    if (WIFEXITED(st))
        r.exit = WEXITSTATUS(st);
    return r;
}

std::string
fixture(const std::string &name)
{
    return std::string(UASIM_LINT_FIXTURES) + "/" + name;
}

std::string
lint(const std::string &args)
{
    return std::string(UASIM_LINT_BIN) + " " + args;
}

/// Occurrences of `needle` in `hay`.
int
countOf(const std::string &hay, const std::string &needle)
{
    int count = 0;
    for (std::size_t at = hay.find(needle); at != std::string::npos;
         at = hay.find(needle, at + needle.size()))
        ++count;
    return count;
}

} // namespace

TEST(LintTool, VersionAndRuleList)
{
    const RunResult v = run(lint("--version"));
    EXPECT_EQ(v.exit, 0);
    EXPECT_NE(v.out.find("uasim-lint"), std::string::npos);

    const RunResult rules = run(lint("--list-rules"));
    EXPECT_EQ(rules.exit, 0);
    for (const char *r :
         {"checked-io", "field-table", "isa-flags", "sim-determinism"})
        EXPECT_NE(rules.out.find(r), std::string::npos) << r;
}

TEST(LintTool, UsageErrors)
{
    EXPECT_EQ(run(lint("")).exit, 2);
    EXPECT_EQ(run(lint("--check bogus --as src/core/x.cc " +
                       fixture("checked_io_good.cc")))
                  .exit,
              2);
    EXPECT_EQ(run(lint("--compdb /nonexistent.json")).exit, 2);
}

TEST(LintTool, FieldTable)
{
    const RunResult bad = run(lint("--as src/timing/fx_results.hh " +
                                   fixture("field_table_bad.cc")));
    EXPECT_EQ(bad.exit, 1);
    EXPECT_EQ(countOf(bad.out, "[field-table]"), 2);
    EXPECT_NE(bad.out.find("ghostCounter"), std::string::npos);
    EXPECT_NE(bad.out.find("lostStat"), std::string::npos);

    const RunResult good = run(lint("--as src/timing/fx_results.hh " +
                                    fixture("field_table_good.cc")));
    EXPECT_EQ(good.exit, 0);
    EXPECT_NE(good.out.find("clean"), std::string::npos);
}

TEST(LintTool, SimDeterminism)
{
    const RunResult bad =
        run(lint("--as src/timing/fx_determinism.cc " +
                 fixture("sim_determinism_bad.cc")));
    EXPECT_EQ(bad.exit, 1);
    EXPECT_EQ(countOf(bad.out, "[sim-determinism]"), 5);
    // Exact finding lines: the two includes, the steady_clock use,
    // the rand() call, and the unordered_map member.
    for (const char *loc :
         {"fx_determinism.cc:5:", "fx_determinism.cc:7:",
          "fx_determinism.cc:12:", "fx_determinism.cc:14:",
          "fx_determinism.cc:17:"})
        EXPECT_NE(bad.out.find(loc), std::string::npos) << loc;

    const RunResult good =
        run(lint("--as src/timing/fx_determinism.cc " +
                 fixture("sim_determinism_good.cc")));
    EXPECT_EQ(good.exit, 0) << good.out;

    // The same bad bytes outside a simulated path are out of scope.
    const RunResult outside = run(lint(
        "--as bench/fx_timer.cc " + fixture("sim_determinism_bad.cc")));
    EXPECT_EQ(outside.exit, 0) << outside.out;
}

TEST(LintTool, SimDeterminismCampaignScope)
{
    // The campaign layer (library and driver) is inside the
    // determinism scope: an RNG-shuffled chunk order and an unordered
    // published-chunk set must be findings under both vpaths.
    for (const char *vpath :
         {"src/core/campaign.cc", "tools/uasim_sweep.cc"}) {
        const RunResult bad =
            run(lint(std::string("--as ") + vpath + " " +
                     fixture("campaign_determinism_bad.cc")));
        EXPECT_EQ(bad.exit, 1) << vpath;
        EXPECT_GE(countOf(bad.out, "[sim-determinism]"), 3) << bad.out;
        EXPECT_NE(bad.out.find("random_device"), std::string::npos)
            << vpath;
        EXPECT_NE(bad.out.find("unordered"), std::string::npos) << vpath;
    }

    // The same bytes under a non-campaign tools path stay out of
    // scope (the extension covers the sweep driver, not every tool).
    const RunResult outside =
        run(lint("--as tools/uasim_report.cc " +
                 fixture("campaign_determinism_bad.cc")));
    EXPECT_EQ(outside.exit, 0) << outside.out;
}

TEST(LintTool, CheckedIo)
{
    const RunResult bad = run(lint("--as src/trace/fx_io.cc " +
                                   fixture("checked_io_bad.cc")));
    EXPECT_EQ(bad.exit, 1);
    EXPECT_EQ(countOf(bad.out, "[checked-io]"), 3);
    EXPECT_NE(bad.out.find("fwrite()"), std::string::npos);
    EXPECT_NE(bad.out.find("fclose()"), std::string::npos);
    EXPECT_NE(bad.out.find("munmap()"), std::string::npos);

    const RunResult good = run(lint("--as src/trace/fx_io.cc " +
                                    fixture("checked_io_good.cc")));
    EXPECT_EQ(good.exit, 0) << good.out;

    // The discard rule is scoped to src/trace.
    const RunResult outside = run(
        lint("--as src/vmx/fx_io.cc " + fixture("checked_io_bad.cc")));
    EXPECT_EQ(outside.exit, 0) << outside.out;
}

TEST(LintTool, IsaFlags)
{
    const RunResult bad = run(lint("--as src/core/fx_isa.cc " +
                                   fixture("isa_flags_bad.cc")));
    EXPECT_EQ(bad.exit, 1);
    EXPECT_EQ(countOf(bad.out, "[isa-flags]"), 3);
    EXPECT_NE(bad.out.find("intrinsic"), std::string::npos);

    // Identical bytes under a designated decode-tier vpath are fine.
    const RunResult designated =
        run(lint("--as src/trace/simd_decode_fx.cc " +
                 fixture("isa_flags_bad.cc")));
    EXPECT_EQ(designated.exit, 0) << designated.out;

    // -m ISA compile flags outside a designated TU are findings even
    // when the source itself is clean...
    const RunResult flags =
        run(lint("--flags \"-mavx2 -O2\" --as src/core/fx_isa2.cc " +
                 fixture("checked_io_good.cc")));
    EXPECT_EQ(flags.exit, 1);
    EXPECT_EQ(countOf(flags.out, "[isa-flags]"), 1);
    EXPECT_NE(flags.out.find("-mavx2"), std::string::npos);

    // ...and accepted on the designated tier TUs.
    const RunResult tierFlags = run(
        lint("--flags \"-mavx2 -O2\" --as src/trace/simd_decode_fx.cc " +
             fixture("checked_io_good.cc")));
    EXPECT_EQ(tierFlags.exit, 0) << tierFlags.out;
}

TEST(LintTool, SuppressionSyntax)
{
    const RunResult same = run(lint("--as src/timing/fx_s1.cc " +
                                    fixture("suppress_same_line.cc")));
    EXPECT_EQ(same.exit, 0) << same.out;

    const RunResult above = run(lint(
        "--as src/timing/fx_s2.cc " + fixture("suppress_line_above.cc")));
    EXPECT_EQ(above.exit, 0) << above.out;

    // allow(<other-rule>) must not silence a different rule.
    const RunResult wrong = run(lint(
        "--as src/timing/fx_s3.cc " + fixture("suppress_wrong_rule.cc")));
    EXPECT_EQ(wrong.exit, 1);
    EXPECT_EQ(countOf(wrong.out, "[sim-determinism]"), 1);
}

TEST(LintTool, CheckFilterSelectsOneRule)
{
    // The bad determinism fixture is clean under --check checked-io.
    const RunResult filtered =
        run(lint("--check checked-io --as src/timing/fx_determinism.cc " +
                 fixture("sim_determinism_bad.cc")));
    EXPECT_EQ(filtered.exit, 0) << filtered.out;
}

TEST(ReportTool, VersionSelfReport)
{
    const RunResult v =
        run(std::string(UASIM_REPORT_BIN) + " --version");
    EXPECT_EQ(v.exit, 0);
    EXPECT_NE(v.out.find("uasim-report"), std::string::npos);
    // The self-report names the artifact schema it gates.
    EXPECT_NE(v.out.find("uasim-bench-result"), std::string::npos);
    EXPECT_NE(v.out.find("schema"), std::string::npos);
}
