/**
 * @file
 * Unit tests for the trace layer: records, mixes, emitter, sinks, and
 * binary trace I/O.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "trace/emitter.hh"
#include "trace/instr.hh"
#include "trace/mix.hh"
#include "trace/sink.hh"
#include "trace/trace_io.hh"

namespace ut = uasim::trace;

TEST(InstrClass, Predicates)
{
    using IC = ut::InstrClass;
    EXPECT_TRUE(ut::isMemClass(IC::Load));
    EXPECT_TRUE(ut::isMemClass(IC::VecStoreU));
    EXPECT_FALSE(ut::isMemClass(IC::IntAlu));
    EXPECT_FALSE(ut::isMemClass(IC::Branch));

    EXPECT_TRUE(ut::isLoadClass(IC::VecLoadU));
    EXPECT_FALSE(ut::isLoadClass(IC::VecStore));
    EXPECT_TRUE(ut::isStoreClass(IC::VecStoreU));
    EXPECT_FALSE(ut::isStoreClass(IC::Load));

    EXPECT_TRUE(ut::isVectorClass(IC::VecPerm));
    EXPECT_TRUE(ut::isVectorClass(IC::VecLoad));
    EXPECT_FALSE(ut::isVectorClass(IC::FpAlu));

    EXPECT_TRUE(ut::isUnalignedVecMem(IC::VecLoadU));
    EXPECT_FALSE(ut::isUnalignedVecMem(IC::VecLoad));
}

TEST(InstrClass, NamesAreUnique)
{
    for (int i = 0; i < ut::numInstrClasses; ++i) {
        for (int j = i + 1; j < ut::numInstrClasses; ++j) {
            EXPECT_NE(ut::instrClassName(ut::InstrClass(i)),
                      ut::instrClassName(ut::InstrClass(j)));
        }
    }
}

TEST(InstrMix, CountsAndGroups)
{
    ut::InstrMix mix;
    mix.add(ut::InstrClass::IntAlu, 5);
    mix.add(ut::InstrClass::IntMul, 2);
    mix.add(ut::InstrClass::VecLoad, 3);
    mix.add(ut::InstrClass::VecLoadU, 4);
    mix.add(ut::InstrClass::VecStore, 1);
    mix.add(ut::InstrClass::VecStoreU, 1);
    mix.add(ut::InstrClass::VecPerm, 7);

    EXPECT_EQ(mix.total(), 23u);
    EXPECT_EQ(mix.intOps(), 7u);
    EXPECT_EQ(mix.vecLoads(), 7u);
    EXPECT_EQ(mix.vecStores(), 2u);
    EXPECT_EQ(mix.vecPerm(), 7u);
    EXPECT_EQ(mix.vecTotal(), 16u);
}

TEST(InstrMix, Accumulate)
{
    ut::InstrMix a, b;
    a.add(ut::InstrClass::Load, 10);
    b.add(ut::InstrClass::Load, 5);
    b.add(ut::InstrClass::Store, 2);
    a += b;
    EXPECT_EQ(a.count(ut::InstrClass::Load), 15u);
    EXPECT_EQ(a.count(ut::InstrClass::Store), 2u);
}

TEST(Emitter, AssignsSequentialIds)
{
    ut::BufferSink sink;
    ut::Emitter em(sink);
    auto d1 = em.emit(ut::InstrClass::IntAlu,
                      std::source_location::current());
    auto d2 = em.emit(ut::InstrClass::IntAlu,
                      std::source_location::current());
    EXPECT_EQ(d1.id, 1u);
    EXPECT_EQ(d2.id, 2u);
    EXPECT_EQ(em.count(), 2u);
    ASSERT_EQ(sink.records().size(), 2u);
    EXPECT_EQ(sink.records()[0].id, 1u);
}

TEST(Emitter, StablePcPerCallSite)
{
    ut::BufferSink sink;
    ut::Emitter em(sink);
    for (int i = 0; i < 4; ++i) {
        em.emit(ut::InstrClass::IntAlu,
                std::source_location::current());  // one site
    }
    ASSERT_EQ(sink.records().size(), 4u);
    std::uint64_t pc = sink.records()[0].pc;
    EXPECT_GE(pc, ut::Emitter::codeBase);
    for (const auto &r : sink.records())
        EXPECT_EQ(r.pc, pc);
    EXPECT_EQ(em.staticSites(), 1u);
}

TEST(Emitter, DistinctSitesGetDistinctPcs)
{
    ut::BufferSink sink;
    ut::Emitter em(sink);
    em.emit(ut::InstrClass::IntAlu, std::source_location::current());
    em.emit(ut::InstrClass::IntAlu, std::source_location::current());
    ASSERT_EQ(sink.records().size(), 2u);
    EXPECT_NE(sink.records()[0].pc, sink.records()[1].pc);
    EXPECT_EQ(em.staticSites(), 2u);
}

TEST(Emitter, RecordsDepsAndAddresses)
{
    ut::BufferSink sink;
    ut::Emitter em(sink);
    auto p = em.emit(ut::InstrClass::IntAlu,
                     std::source_location::current());
    em.emitMem(ut::InstrClass::Load, 0x1234, 4,
               std::source_location::current(), p);
    em.emitBranch(true, std::source_location::current(), p);
    const auto &load = sink.records()[1];
    EXPECT_EQ(load.addr, 0x1234u);
    EXPECT_EQ(load.size, 4);
    EXPECT_EQ(load.deps[0], p.id);
    const auto &br = sink.records()[2];
    EXPECT_TRUE(br.taken);
    EXPECT_EQ(br.cls, ut::InstrClass::Branch);
}

TEST(Sinks, CountingSink)
{
    ut::CountingSink sink;
    ut::Emitter em(sink);
    em.emit(ut::InstrClass::VecSimple, std::source_location::current());
    em.emitMem(ut::InstrClass::VecLoadU, 0x10, 16,
               std::source_location::current());
    EXPECT_EQ(sink.mix().total(), 2u);
    EXPECT_EQ(sink.mix().vecLoads(), 1u);
}

TEST(Sinks, TeeDuplicates)
{
    ut::CountingSink a;
    ut::BufferSink b;
    ut::TeeSink tee(a, b);
    ut::Emitter em(tee);
    em.emit(ut::InstrClass::IntAlu, std::source_location::current());
    EXPECT_EQ(a.mix().total(), 1u);
    EXPECT_EQ(b.records().size(), 1u);
}

TEST(Sinks, CallbackSink)
{
    int calls = 0;
    ut::CallbackSink sink([&](const ut::InstrRecord &) { ++calls; });
    ut::Emitter em(sink);
    em.emit(ut::InstrClass::IntAlu, std::source_location::current());
    em.emit(ut::InstrClass::IntAlu, std::source_location::current());
    EXPECT_EQ(calls, 2);
}

TEST(TraceIo, RoundTrip)
{
    std::string path = ::testing::TempDir() + "/uasim_trace_test.bin";
    {
        ut::FileSink fs(path);
        ut::Emitter em(fs);
        auto d = em.emit(ut::InstrClass::IntAlu,
                         std::source_location::current());
        em.emitMem(ut::InstrClass::VecLoadU, 0xdeadbeef, 16,
                   std::source_location::current(), d);
        em.emitBranch(true, std::source_location::current());
        fs.close();
        EXPECT_EQ(fs.written(), 3u);
    }
    ut::TraceReader reader(path);
    EXPECT_EQ(reader.count(), 3u);
    ut::InstrRecord rec;
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.cls, ut::InstrClass::IntAlu);
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.cls, ut::InstrClass::VecLoadU);
    EXPECT_EQ(rec.addr, 0xdeadbeefu);
    EXPECT_EQ(rec.deps[0], 1u);
    ASSERT_TRUE(reader.next(rec));
    EXPECT_TRUE(rec.taken);
    EXPECT_FALSE(reader.next(rec));
    std::remove(path.c_str());
}

TEST(TraceIo, DrainToSink)
{
    std::string path = ::testing::TempDir() + "/uasim_trace_drain.bin";
    {
        ut::FileSink fs(path);
        ut::Emitter em(fs);
        for (int i = 0; i < 100; ++i)
            em.emit(ut::InstrClass::VecPerm,
                    std::source_location::current());
    }
    ut::TraceReader reader(path);
    ut::CountingSink sink;
    EXPECT_EQ(reader.drainTo(sink), 100u);
    EXPECT_EQ(sink.mix().vecPerm(), 100u);
    std::remove(path.c_str());
}

TEST(TraceIo, BadMagicThrows)
{
    std::string path = ::testing::TempDir() + "/uasim_bad_magic.bin";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fwrite("NOTATRACE1234567", 1, 16, f);
    std::fclose(f);
    EXPECT_THROW(ut::TraceReader reader(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows)
{
    EXPECT_THROW(ut::TraceReader reader("/nonexistent/trace.bin"),
                 std::runtime_error);
}
