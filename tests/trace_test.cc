/**
 * @file
 * Unit tests for the trace layer: records, mixes, emitter, sinks, and
 * binary trace I/O.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "trace/addrmap.hh"
#include "trace/emitter.hh"
#include "trace/instr.hh"
#include "trace/mix.hh"
#include "trace/sink.hh"
#include "trace/trace_io.hh"

namespace ut = uasim::trace;

TEST(InstrClass, Predicates)
{
    using IC = ut::InstrClass;
    EXPECT_TRUE(ut::isMemClass(IC::Load));
    EXPECT_TRUE(ut::isMemClass(IC::VecStoreU));
    EXPECT_FALSE(ut::isMemClass(IC::IntAlu));
    EXPECT_FALSE(ut::isMemClass(IC::Branch));

    EXPECT_TRUE(ut::isLoadClass(IC::VecLoadU));
    EXPECT_FALSE(ut::isLoadClass(IC::VecStore));
    EXPECT_TRUE(ut::isStoreClass(IC::VecStoreU));
    EXPECT_FALSE(ut::isStoreClass(IC::Load));

    EXPECT_TRUE(ut::isVectorClass(IC::VecPerm));
    EXPECT_TRUE(ut::isVectorClass(IC::VecLoad));
    EXPECT_FALSE(ut::isVectorClass(IC::FpAlu));

    EXPECT_TRUE(ut::isUnalignedVecMem(IC::VecLoadU));
    EXPECT_FALSE(ut::isUnalignedVecMem(IC::VecLoad));
}

TEST(InstrClass, NamesAreUnique)
{
    for (int i = 0; i < ut::numInstrClasses; ++i) {
        for (int j = i + 1; j < ut::numInstrClasses; ++j) {
            EXPECT_NE(ut::instrClassName(ut::InstrClass(i)),
                      ut::instrClassName(ut::InstrClass(j)));
        }
    }
}

TEST(InstrMix, CountsAndGroups)
{
    ut::InstrMix mix;
    mix.add(ut::InstrClass::IntAlu, 5);
    mix.add(ut::InstrClass::IntMul, 2);
    mix.add(ut::InstrClass::VecLoad, 3);
    mix.add(ut::InstrClass::VecLoadU, 4);
    mix.add(ut::InstrClass::VecStore, 1);
    mix.add(ut::InstrClass::VecStoreU, 1);
    mix.add(ut::InstrClass::VecPerm, 7);

    EXPECT_EQ(mix.total(), 23u);
    EXPECT_EQ(mix.intOps(), 7u);
    EXPECT_EQ(mix.vecLoads(), 7u);
    EXPECT_EQ(mix.vecStores(), 2u);
    EXPECT_EQ(mix.vecPerm(), 7u);
    EXPECT_EQ(mix.vecTotal(), 16u);
}

TEST(InstrMix, Accumulate)
{
    ut::InstrMix a, b;
    a.add(ut::InstrClass::Load, 10);
    b.add(ut::InstrClass::Load, 5);
    b.add(ut::InstrClass::Store, 2);
    a += b;
    EXPECT_EQ(a.count(ut::InstrClass::Load), 15u);
    EXPECT_EQ(a.count(ut::InstrClass::Store), 2u);
}

TEST(Emitter, AssignsSequentialIds)
{
    ut::BufferSink sink;
    ut::Emitter em(sink);
    auto d1 = em.emit(ut::InstrClass::IntAlu,
                      std::source_location::current());
    auto d2 = em.emit(ut::InstrClass::IntAlu,
                      std::source_location::current());
    EXPECT_EQ(d1.id, 1u);
    EXPECT_EQ(d2.id, 2u);
    EXPECT_EQ(em.count(), 2u);
    ASSERT_EQ(sink.records().size(), 2u);
    EXPECT_EQ(sink.records()[0].id, 1u);
}

TEST(Emitter, StablePcPerCallSite)
{
    ut::BufferSink sink;
    ut::Emitter em(sink);
    for (int i = 0; i < 4; ++i) {
        em.emit(ut::InstrClass::IntAlu,
                std::source_location::current());  // one site
    }
    ASSERT_EQ(sink.records().size(), 4u);
    std::uint64_t pc = sink.records()[0].pc;
    EXPECT_GE(pc, ut::Emitter::codeBase);
    for (const auto &r : sink.records())
        EXPECT_EQ(r.pc, pc);
    EXPECT_EQ(em.staticSites(), 1u);
}

TEST(Emitter, DistinctSitesGetDistinctPcs)
{
    ut::BufferSink sink;
    ut::Emitter em(sink);
    em.emit(ut::InstrClass::IntAlu, std::source_location::current());
    em.emit(ut::InstrClass::IntAlu, std::source_location::current());
    ASSERT_EQ(sink.records().size(), 2u);
    EXPECT_NE(sink.records()[0].pc, sink.records()[1].pc);
    EXPECT_EQ(em.staticSites(), 2u);
}

TEST(Emitter, RecordsDepsAndAddresses)
{
    ut::BufferSink sink;
    ut::Emitter em(sink);
    auto p = em.emit(ut::InstrClass::IntAlu,
                     std::source_location::current());
    em.emitMem(ut::InstrClass::Load, 0x1234, 4,
               std::source_location::current(), p);
    em.emitBranch(true, std::source_location::current(), p);
    const auto &load = sink.records()[1];
    EXPECT_EQ(load.addr, 0x1234u);
    EXPECT_EQ(load.size, 4);
    EXPECT_EQ(load.deps[0], p.id);
    const auto &br = sink.records()[2];
    EXPECT_TRUE(br.taken);
    EXPECT_EQ(br.cls, ut::InstrClass::Branch);
}

TEST(Sinks, CountingSink)
{
    ut::CountingSink sink;
    ut::Emitter em(sink);
    em.emit(ut::InstrClass::VecSimple, std::source_location::current());
    em.emitMem(ut::InstrClass::VecLoadU, 0x10, 16,
               std::source_location::current());
    EXPECT_EQ(sink.mix().total(), 2u);
    EXPECT_EQ(sink.mix().vecLoads(), 1u);
}

TEST(Sinks, TeeDuplicates)
{
    ut::CountingSink a;
    ut::BufferSink b;
    ut::TeeSink tee(a, b);
    ut::Emitter em(tee);
    em.emit(ut::InstrClass::IntAlu, std::source_location::current());
    EXPECT_EQ(a.mix().total(), 1u);
    EXPECT_EQ(b.records().size(), 1u);
}

TEST(Sinks, CallbackSink)
{
    int calls = 0;
    ut::CallbackSink sink([&](const ut::InstrRecord &) { ++calls; });
    ut::Emitter em(sink);
    em.emit(ut::InstrClass::IntAlu, std::source_location::current());
    em.emit(ut::InstrClass::IntAlu, std::source_location::current());
    EXPECT_EQ(calls, 2);
}

TEST(TraceIo, RoundTrip)
{
    std::string path = ::testing::TempDir() + "/uasim_trace_test.bin";
    {
        ut::FileSink fs(path);
        ut::Emitter em(fs);
        auto d = em.emit(ut::InstrClass::IntAlu,
                         std::source_location::current());
        em.emitMem(ut::InstrClass::VecLoadU, 0xdeadbeef, 16,
                   std::source_location::current(), d);
        em.emitBranch(true, std::source_location::current());
        fs.close();
        EXPECT_EQ(fs.written(), 3u);
    }
    ut::TraceReader reader(path);
    EXPECT_EQ(reader.count(), 3u);
    ut::InstrRecord rec;
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.cls, ut::InstrClass::IntAlu);
    ASSERT_TRUE(reader.next(rec));
    EXPECT_EQ(rec.cls, ut::InstrClass::VecLoadU);
    EXPECT_EQ(rec.addr, 0xdeadbeefu);
    EXPECT_EQ(rec.deps[0], 1u);
    ASSERT_TRUE(reader.next(rec));
    EXPECT_TRUE(rec.taken);
    EXPECT_FALSE(reader.next(rec));
    std::remove(path.c_str());
}

TEST(TraceIo, DrainToSink)
{
    std::string path = ::testing::TempDir() + "/uasim_trace_drain.bin";
    {
        ut::FileSink fs(path);
        ut::Emitter em(fs);
        for (int i = 0; i < 100; ++i)
            em.emit(ut::InstrClass::VecPerm,
                    std::source_location::current());
    }
    ut::TraceReader reader(path);
    ut::CountingSink sink;
    EXPECT_EQ(reader.drainTo(sink), 100u);
    EXPECT_EQ(sink.mix().vecPerm(), 100u);
    std::remove(path.c_str());
}

TEST(TraceIo, BadMagicThrows)
{
    std::string path = ::testing::TempDir() + "/uasim_bad_magic.bin";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fwrite("NOTATRACE1234567", 1, 16, f);
    std::fclose(f);
    EXPECT_THROW(ut::TraceReader reader(path), std::runtime_error);
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileThrows)
{
    EXPECT_THROW(ut::TraceReader reader("/nonexistent/trace.bin"),
                 std::runtime_error);
}

// ---- Address normalization (deterministic simulation input) ----

namespace {

/// Translate one memory load at @p addr through @p norm into @p buf.
std::uint64_t
pushAddr(ut::AddrNormalizer &norm, ut::BufferSink &buf,
         std::uint64_t addr, std::uint8_t size = 16)
{
    ut::InstrRecord rec;
    rec.cls = size == 16 ? ut::InstrClass::VecLoad
                         : ut::InstrClass::Load;
    rec.addr = addr;
    rec.size = size;
    norm.append(rec);
    return buf.records().back().addr;
}

} // namespace

TEST(AddrNormalizer, RegisteredRegionsRebasePreservingLayout)
{
    ut::BufferSink buf;
    ut::AddrNormalizer norm(buf);
    norm.addRegion(reinterpret_cast<const void *>(0x7fff12345000ull),
                   0x1000, 0x10000000);
    EXPECT_EQ(pushAddr(norm, buf, 0x7fff12345000ull), 0x10000000u);
    EXPECT_EQ(pushAddr(norm, buf, 0x7fff12345123ull), 0x10000123u);
}

TEST(AddrNormalizer, NonMemRecordsPassThroughUntouched)
{
    ut::BufferSink buf;
    ut::AddrNormalizer norm(buf);
    ut::InstrRecord rec;
    rec.cls = ut::InstrClass::IntAlu;
    rec.addr = 0xdeadbeef;  // meaningless for non-mem; must not change
    norm.append(rec);
    EXPECT_EQ(buf.records().back().addr, 0xdeadbeefull);
}

TEST(AddrNormalizer, FallbackIsFirstAppearanceDeterministic)
{
    // Two "hosts" place the same objects at different addresses (and
    // even different offsets inside their cache lines and pages); the
    // normalized stream must be identical because fallback 16B
    // granules are assigned in first-appearance order with only the
    // host-independent in-granule offset preserved.
    const std::uint64_t layout_a[] = {0x55501000, 0x7ffe2040,
                                      0x55501008, 0x601badc0};
    const std::uint64_t layout_b[] = {0xa5af3030, 0x10706080,
                                      0xa5af3038, 0x94a11100};

    ut::BufferSink buf_a, buf_b;
    ut::AddrNormalizer norm_a(buf_a), norm_b(buf_b);
    const std::uint8_t sizes[] = {16, 16, 8, 16};
    for (std::size_t i = 0; i < std::size(layout_a); ++i) {
        std::uint64_t got_a =
            pushAddr(norm_a, buf_a, layout_a[i], sizes[i]);
        std::uint64_t got_b =
            pushAddr(norm_b, buf_b, layout_b[i], sizes[i]);
        EXPECT_EQ(got_a, got_b) << "access " << i;
    }
    // Repeat accesses reuse the established mapping.
    EXPECT_EQ(pushAddr(norm_a, buf_a, layout_a[0]),
              pushAddr(norm_b, buf_b, layout_b[0]));
    // Distinct granules never collide.
    EXPECT_NE(pushAddr(norm_a, buf_a, layout_a[0]) & ~0xfull,
              pushAddr(norm_a, buf_a, layout_a[1]) & ~0xfull);
}

TEST(AddrNormalizer, FallbackPreservesInGranuleOffsetVerbatim)
{
    // Cross-host identity of the fallback stream holds only because
    // every unregistered traced object keeps a host-independent
    // (addr & 15): the in-granule offset passes through verbatim and
    // everything above it is replaced by first-appearance order.
    // Side tables reached by traced loads must therefore be
    // alignas(16) (see the clip table in h264/tables.cc).
    ut::BufferSink buf;
    ut::AddrNormalizer norm(buf);
    for (std::uint64_t off = 0; off < 16; ++off) {
        EXPECT_EQ(pushAddr(norm, buf, 0x55aa1230 + off, 1) & 0xf, off);
    }
    // All 16 offsets stayed inside one host granule -> one virtual
    // granule; the next host granule gets the next virtual one.
    EXPECT_EQ(pushAddr(norm, buf, 0x55aa1230, 1) & ~0xfull,
              pushAddr(norm, buf, 0x55aa123f, 1) & ~0xfull);
    EXPECT_EQ((pushAddr(norm, buf, 0x55aa1240) & ~0xfull) -
                  (pushAddr(norm, buf, 0x55aa1230) & ~0xfull),
              16u);
}
