/**
 * @file
 * Differential harness for the batched replay engine
 * (timing/batched_pipeline.hh): for any record stream and any config
 * grid, BatchedPipelineSim must produce per-cell SimResults
 * bit-identical to one standalone PipelineSim per config fed the same
 * stream. Coverage:
 *  - real kernel traces (KernelBench::recordTrace) across the paper
 *    presets and randomized (seeded) config grids that mutate every
 *    CoreConfig knob, including inflight windows spanning the 1024
 *    producer-ready-ring boundary fixed in PR 3;
 *  - degenerate grids: a single cell, duplicate configs;
 *  - synthetic dependence chains long enough to wrap the ready ring;
 *  - append() vs appendBlock() chunk-boundary equivalence and the
 *    empty stream.
 * Every comparison iterates core::simResultFields(), so a counter
 * added to SimResult is automatically diffed here — modeling it in
 * one engine but not the other fails the harness by construction.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "core/experiment.hh"
#include "core/result.hh"
#include "timing/batched_pipeline.hh"
#include "timing/pipeline.hh"
#include "trace/sink.hh"
#include "trace/trace_buffer.hh"

using namespace uasim;
using core::KernelBench;
using core::KernelSpec;
using h264::KernelId;
using h264::Variant;
using timing::BatchedPipelineSim;
using timing::CoreConfig;
using timing::PipelineSim;
using trace::InstrClass;
using trace::InstrRecord;

namespace {

/// Per-cell oracle: one fresh PipelineSim per config over the stream.
std::vector<timing::SimResult>
perCellResults(const std::vector<CoreConfig> &cfgs,
               const std::vector<InstrRecord> &records)
{
    std::vector<timing::SimResult> out;
    out.reserve(cfgs.size());
    for (const auto &cfg : cfgs) {
        PipelineSim sim(cfg);
        for (const auto &rec : records)
            sim.feed(rec);
        out.push_back(sim.finalize());
    }
    return out;
}

/// Batched run over the same stream, fed through appendBlock.
std::vector<timing::SimResult>
batchedResults(const std::vector<CoreConfig> &cfgs,
               const std::vector<InstrRecord> &records)
{
    BatchedPipelineSim batch(cfgs);
    batch.appendBlock(records.data(), records.size());
    return batch.finalizeAll();
}

/// Compare two SimResults counter-by-counter via the shared field
/// table (core/result.hh), so new counters cannot dodge the diff.
void
expectFieldsIdentical(const timing::SimResult &want,
                      const timing::SimResult &got,
                      const std::string &label)
{
    EXPECT_EQ(want.core, got.core) << label;
    for (const auto &f : core::simResultFields())
        EXPECT_EQ(want.*(f.member), got.*(f.member))
            << label << ": counter " << f.name;
}

/// The harness proper: batched vs per-cell over one stream.
void
expectBitIdentical(const std::vector<CoreConfig> &cfgs,
                   const std::vector<InstrRecord> &records,
                   const std::string &label)
{
    auto want = perCellResults(cfgs, records);
    auto got = batchedResults(cfgs, records);
    ASSERT_EQ(want.size(), got.size()) << label;
    for (std::size_t i = 0; i < want.size(); ++i)
        expectFieldsIdentical(want[i], got[i],
                              label + " cell " + std::to_string(i) +
                                  " (" + cfgs[i].name + ")");
}

/// Record @p execs executions of a kernel into a plain record vector.
std::vector<InstrRecord>
kernelRecords(const KernelSpec &spec, Variant variant, int execs)
{
    trace::BufferSink sink;
    KernelBench bench(spec);
    bench.recordTrace(variant, execs, sink);
    return sink.records();
}

/**
 * Seeded random CoreConfig exercising every knob the timing model
 * reads. Values stay in plausible machine ranges (all >= 1 where the
 * model divides or reserves), but deliberately include tiny queues,
 * in-order cores with different lookaheads, single-ported caches, and
 * windows big enough to cross the 1024-entry ready-ring floor.
 */
CoreConfig
randomConfig(std::mt19937_64 &rng, int idx)
{
    auto pick = [&rng](int lo, int hi) {
        return int(lo + std::int64_t(rng() % std::uint64_t(hi - lo + 1)));
    };
    CoreConfig c = CoreConfig::preset(pick(0, 2));
    c.name = "rand" + std::to_string(idx);
    c.outOfOrder = (rng() & 1) != 0;
    c.inorderLookahead = pick(1, 8);
    c.fetchWidth = pick(1, 8);
    c.retireWidth = pick(1, 8);
    // One in four grids gets a window past the 1024 ready-ring floor.
    c.inflight = (rng() % 4 == 0) ? pick(1025, 2048) : pick(4, 256);
    c.issueQ = pick(2, 64);
    c.branchQ = pick(1, 16);
    c.ibuffer = pick(2, 48);
    c.units.fx = pick(1, 3);
    c.units.fp = pick(1, 2);
    c.units.ls = pick(1, 2);
    c.units.br = pick(1, 2);
    c.units.vi = pick(1, 2);
    c.units.vperm = pick(1, 2);
    c.units.vcmplx = pick(1, 2);
    c.gprPhys = pick(40, 4096);
    c.fprPhys = pick(40, 256);
    c.vprPhys = pick(40, 256);
    c.dReadPorts = pick(1, 3);
    c.dWritePorts = pick(1, 2);
    c.missMax = pick(1, 8);
    c.storeQ = pick(4, 32);
    c.lat.intMul = pick(1, 5);
    c.lat.fpAlu = pick(1, 8);
    c.lat.load = pick(1, 6);
    c.lat.unalignedLoadExtra = pick(0, 6);
    c.lat.unalignedStoreExtra = pick(0, 4);
    c.lat.mispredictPenalty = pick(4, 20);
    c.lat.branchResolve = pick(1, 4);
    c.lat.vecSimple = pick(1, 3);
    c.lat.vecPerm = pick(1, 3);
    c.lat.vecComplex = pick(1, 6);
    c.mem.parallelBanks = (rng() & 1) != 0;
    c.mem.l2Latency = pick(6, 20);
    c.mem.memLatency = pick(100, 300);
    return c;
}

/// Serial dependence chain of @p n IntAlu records (each depends on
/// its predecessor), long enough to wrap any ready ring under test.
std::vector<InstrRecord>
chainRecords(int n)
{
    std::vector<InstrRecord> recs;
    recs.reserve(std::size_t(n));
    for (int i = 0; i < n; ++i) {
        InstrRecord rec{};
        rec.id = std::uint64_t(i) + 1;
        rec.pc = 0x1000 + std::uint64_t(i % 64) * 4;
        rec.cls = InstrClass::IntAlu;
        if (i > 0)
            rec.deps[0] = rec.id - 1;
        recs.push_back(rec);
    }
    return recs;
}

} // namespace

TEST(BatchedReplay, PresetGridOnKernelTraces)
{
    const KernelSpec specs[] = {
        {KernelId::Sad, 16, false},
        {KernelId::LumaMc, 8, false},
        {KernelId::Idct, 4, true},
    };
    const Variant variants[] = {Variant::Scalar, Variant::Altivec,
                                Variant::Unaligned};
    const std::vector<CoreConfig> cfgs = {
        CoreConfig::twoWayInOrder(),
        CoreConfig::fourWayOoO(),
        CoreConfig::eightWayOoO(),
    };
    for (const auto &spec : specs) {
        for (auto variant : variants) {
            auto records = kernelRecords(spec, variant, 4);
            ASSERT_FALSE(records.empty());
            expectBitIdentical(cfgs, records,
                               spec.name() + "/" +
                                   std::string(
                                       h264::variantName(variant)));
        }
    }
}

TEST(BatchedReplay, RandomizedConfigGrids)
{
    // Three seeded grids of six random configs each, replaying a real
    // unaligned vector trace (the densest feature mix: vector loads/
    // stores, line crossings, store forwarding, branches).
    auto records =
        kernelRecords({KernelId::ChromaMc, 8, false}, Variant::Unaligned, 4);
    ASSERT_FALSE(records.empty());
    for (std::uint64_t seed : {1u, 20260807u, 0xdecafu}) {
        std::mt19937_64 rng(seed);
        std::vector<CoreConfig> cfgs;
        for (int i = 0; i < 6; ++i)
            cfgs.push_back(randomConfig(rng, i));
        expectBitIdentical(cfgs, records,
                           "seed " + std::to_string(seed));
    }
}

TEST(BatchedReplay, SingleCellGrid)
{
    auto records =
        kernelRecords({KernelId::Sad, 16, false}, Variant::Altivec, 4);
    expectBitIdentical({CoreConfig::fourWayOoO()}, records, "1-cell");
}

TEST(BatchedReplay, DuplicateConfigsProduceIdenticalCells)
{
    auto records =
        kernelRecords({KernelId::Idct, 8, false}, Variant::Scalar, 3);
    auto cfg = CoreConfig::eightWayOoO();
    const std::vector<CoreConfig> cfgs = {cfg, cfg, cfg};
    auto got = batchedResults(cfgs, records);
    ASSERT_EQ(got.size(), 3u);
    // All duplicates identical to each other and to the oracle.
    auto want = perCellResults({cfg}, records);
    for (std::size_t i = 0; i < got.size(); ++i)
        expectFieldsIdentical(want[0], got[i],
                              "dup cell " + std::to_string(i));
}

TEST(BatchedReplay, InflightSpansReadyRingBoundary)
{
    // Regression companion to Pipeline.ReadyRingScalesWithInflight:
    // a 2048-deep window over a 6000-long serial chain wraps the 1024
    // ready-ring floor; the batched engine must size its per-cell
    // ring exactly like PipelineSim and stay bit-identical while a
    // small-window cell shares the same pass.
    CoreConfig big = CoreConfig::fourWayOoO();
    big.name = "big-window";
    big.inflight = 2048;
    big.issueQ = 4096;
    big.gprPhys = 4096;
    CoreConfig small = CoreConfig::twoWayInOrder();
    auto records = chainRecords(6000);
    expectBitIdentical({big, small}, records, "ring-boundary");

    // Sanity on the oracle itself: a serial chain cannot retire in
    // fewer cycles than its length (the PR 3 aliasing symptom).
    auto want = perCellResults({big}, records);
    EXPECT_GE(want[0].cycles, std::uint64_t(records.size()));
}

TEST(BatchedReplay, SingleReadPortSerializedBanksTerminates)
{
    // Regression: a line-crossing load on a serialized-bank machine
    // demanded a second read port even when the config has only one,
    // making the load permanently unissuable - PipelineSim::feed's
    // backpressure loop then spun forever. (Unreachable from the
    // paper presets, which pair parallelBanks with >= 2 ports; the
    // randomized differential grids here flushed it out.) A
    // single-ported core now serializes the second bank access, and
    // both engines must agree on the resulting timing.
    CoreConfig c = CoreConfig::twoWayInOrder();
    c.name = "1-port-serial-banks";
    c.mem.parallelBanks = false;
    ASSERT_EQ(c.dReadPorts, 1);
    auto records = kernelRecords({KernelId::ChromaMc, 8, false},
                                 Variant::Unaligned, 4);
    expectBitIdentical({c, CoreConfig::fourWayOoO()}, records,
                       "serial-banks");
}

TEST(BatchedReplay, AppendMatchesAppendBlockAcrossChunkBoundaries)
{
    auto records =
        kernelRecords({KernelId::LumaMc, 16, false}, Variant::Altivec, 2);
    ASSERT_GT(records.size(), 512u);  // spans multiple 256-rec chunks
    const std::vector<CoreConfig> cfgs = {CoreConfig::twoWayInOrder(),
                                          CoreConfig::fourWayOoO()};

    auto blockWise = batchedResults(cfgs, records);

    // One record at a time through the TraceSink hook.
    BatchedPipelineSim oneByOne(cfgs);
    for (const auto &rec : records)
        oneByOne.append(rec);
    auto single = oneByOne.finalizeAll();

    // Deliberately awkward split sizes straddling the 256 chunk size.
    BatchedPipelineSim ragged(cfgs);
    std::size_t off = 0, step = 1;
    while (off < records.size()) {
        std::size_t n = std::min(step, records.size() - off);
        ragged.appendBlock(records.data() + off, n);
        off += n;
        step = step * 3 + 1;  // 1, 4, 13, 40, 121, 364, ...
    }
    auto raggedRes = ragged.finalizeAll();

    ASSERT_EQ(blockWise.size(), cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        expectFieldsIdentical(blockWise[i], single[i],
                              "append() cell " + std::to_string(i));
        expectFieldsIdentical(blockWise[i], raggedRes[i],
                              "ragged cell " + std::to_string(i));
    }
}

TEST(BatchedReplay, EmptyStreamFinalizes)
{
    const std::vector<CoreConfig> cfgs = {CoreConfig::fourWayOoO(),
                                          CoreConfig::twoWayInOrder()};
    auto got = batchedResults(cfgs, {});
    auto want = perCellResults(cfgs, {});
    ASSERT_EQ(got.size(), 2u);
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].instrs, 0u);
        expectFieldsIdentical(want[i], got[i],
                              "empty cell " + std::to_string(i));
    }
}

TEST(BatchedReplay, FinalizeAllIsIdempotent)
{
    auto records =
        kernelRecords({KernelId::Sad, 8, false}, Variant::Scalar, 2);
    const std::vector<CoreConfig> cfgs = {CoreConfig::fourWayOoO()};
    BatchedPipelineSim batch(cfgs);
    batch.appendBlock(records.data(), records.size());
    auto first = batch.finalizeAll();
    auto second = batch.finalizeAll();
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        expectFieldsIdentical(first[i], second[i], "idempotent");
}
