/**
 * @file
 * Unit tests for the Altivec emulation facade: value types, scalar
 * ops, every vector operation's lane semantics, and dependence
 * tracking.
 */

#include <gtest/gtest.h>

#include "trace/emitter.hh"
#include "trace/sink.hh"
#include "vmx/buffer.hh"
#include "vmx/constpool.hh"
#include "vmx/scalarops.hh"
#include "vmx/vecops.hh"

using namespace uasim;
using vmx::CPtr;
using vmx::Ptr;
using vmx::SInt;
using vmx::Vec;

namespace {

struct VmxFixture : ::testing::Test {
    trace::BufferSink sink;
    trace::Emitter em{sink};
    vmx::ScalarOps so{em};
    vmx::VecOps vo{em};
};

} // namespace

TEST_F(VmxFixture, VecLaneAccessors)
{
    Vec v = vmx::makeVecU8({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                            14, 15, 16});
    EXPECT_EQ(v.u8(0), 1);
    EXPECT_EQ(v.u8(15), 16);
    v.setS16(0, -2);
    EXPECT_EQ(v.s16(0), -2);
    v.setS32(3, -123456);
    EXPECT_EQ(v.s32(3), -123456);
}

TEST_F(VmxFixture, ScalarArithmetic)
{
    SInt a = so.li(10);
    SInt b = so.li(-3);
    EXPECT_EQ(so.add(a, b).v, 7);
    EXPECT_EQ(so.sub(a, b).v, 13);
    EXPECT_EQ(so.mul(a, b).v, -30);
    EXPECT_EQ(so.addi(a, 5).v, 15);
    EXPECT_EQ(so.subfi(8, a).v, -2);
    EXPECT_EQ(so.neg(b).v, 3);
    EXPECT_EQ(so.slli(a, 2).v, 40);
    EXPECT_EQ(so.srai(b, 1).v, -2);
    EXPECT_EQ(so.srli(so.li(16), 2).v, 4);
    EXPECT_EQ(so.sllv(a, so.li(3)).v, 80);
    EXPECT_EQ(so.srlv(so.li(256), so.li(4)).v, 16);
    EXPECT_EQ(so.andi(so.li(0xff), 0x0f).v, 0x0f);
    EXPECT_EQ(so.cmplt(b, a).v, 1);
    EXPECT_EQ(so.cmplti(a, 10).v, 0);
    EXPECT_EQ(so.cmpgti(a, 9).v, 1);
    EXPECT_EQ(so.cmpeq(a, so.li(10)).v, 1);
    EXPECT_EQ(so.isel(so.li(1), a, b).v, 10);
    EXPECT_EQ(so.isel(so.li(0), a, b).v, -3);
}

TEST_F(VmxFixture, ScalarLoadsAndStores)
{
    vmx::AlignedBuffer buf(64);
    buf[0] = 0xff;
    buf[1] = 0x01;
    Ptr p = so.lip(buf.data());
    EXPECT_EQ(so.loadU8(CPtr{p}, 0).v, 0xff);
    EXPECT_EQ(so.loadU16(CPtr{p}, 0).v, 0x01ff);
    so.storeU32(p, 8, so.li(0x11223344));
    EXPECT_EQ(so.loadS32(CPtr{p}, 8).v, 0x11223344);
    so.storeU64(p, 16, so.li(-1));
    EXPECT_EQ(so.loadS64(CPtr{p}, 16).v, -1);
    EXPECT_EQ(so.loadU8x(CPtr{p}, so.li(1)).v, 0x01);
}

TEST_F(VmxFixture, DependenceTracking)
{
    SInt a = so.li(1);
    SInt b = so.li(2);
    SInt c = so.add(a, b);
    const auto &recs = sink.records();
    ASSERT_EQ(recs.size(), 3u);
    EXPECT_EQ(recs[2].deps[0], a.dep.id);
    EXPECT_EQ(recs[2].deps[1], b.dep.id);
    EXPECT_EQ(c.dep.id, recs[2].id);
}

TEST_F(VmxFixture, BranchRecordsDirection)
{
    EXPECT_TRUE(so.branch(so.li(1)));
    EXPECT_FALSE(so.branch(so.li(0)));
    so.loopBranch(true);
    const auto &recs = sink.records();
    EXPECT_TRUE(recs[1].taken);
    EXPECT_FALSE(recs[3].taken);
    EXPECT_TRUE(recs[4].taken);
}

TEST_F(VmxFixture, LvxForcesAlignment)
{
    vmx::AlignedBuffer buf(64, 0);
    for (int i = 0; i < 64; ++i)
        buf[i] = std::uint8_t(i);
    CPtr p = so.lip(buf.data());
    Vec v = vo.lvx(p, 5);  // EA forced down to 0
    EXPECT_EQ(v.u8(0), 0);
    EXPECT_EQ(v.u8(15), 15);
    Vec w = vo.lvxu(p, 5);  // true unaligned
    EXPECT_EQ(w.u8(0), 5);
    EXPECT_EQ(w.u8(15), 20);
}

TEST_F(VmxFixture, StvxForcesAlignmentStvxuDoesNot)
{
    vmx::AlignedBuffer buf(64, 0);
    Vec v = vmx::makeVecU8({9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9,
                            9, 9});
    Ptr p = so.lip(buf.data());
    vo.stvx(v, p, 3);  // still writes at offset 0
    EXPECT_EQ(buf[0], 9);
    EXPECT_EQ(buf[15], 9);
    EXPECT_EQ(buf[16], 0);
    vo.stvxu(v, p, 17);
    EXPECT_EQ(buf[16], 0);
    EXPECT_EQ(buf[17], 9);
    EXPECT_EQ(buf[32], 9);
}

TEST_F(VmxFixture, StvewxStoresSelectedWord)
{
    vmx::AlignedBuffer buf(32, 0);
    Vec v;
    v.setU32(0, 0x11111111);
    v.setU32(1, 0x22222222);
    v.setU32(2, 0x33333333);
    v.setU32(3, 0x44444444);
    Ptr p = so.lip(buf.data());
    vo.stvewx(v, p, 8);  // word element 2
    EXPECT_EQ(so.loadU32(CPtr{p}, 8).v, 0x33333333);
    EXPECT_EQ(so.loadU32(CPtr{p}, 0).v, 0);
}

TEST_F(VmxFixture, LvslLvsrMasks)
{
    vmx::AlignedBuffer buf(32, 3);
    CPtr p = so.lip(buf.data());
    Vec sl = vo.lvsl(p, 0);
    Vec sr = vo.lvsr(p, 0);
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(sl.u8(i), 3 + i);
        EXPECT_EQ(sr.u8(i), 16 - 3 + i);
    }
}

TEST_F(VmxFixture, VpermSelectsBytes)
{
    Vec a, b, m;
    for (int i = 0; i < 16; ++i) {
        a.b[i] = std::uint8_t(i);
        b.b[i] = std::uint8_t(100 + i);
        m.b[i] = std::uint8_t(31 - i);  // reverse of concat tail
    }
    Vec r = vo.vperm(a, b, m);
    EXPECT_EQ(r.u8(0), 115);  // concat[31] = b[15]
    EXPECT_EQ(r.u8(15), 100); // concat[16] = b[0]
}

TEST_F(VmxFixture, SldShiftsConcat)
{
    Vec a, b;
    for (int i = 0; i < 16; ++i) {
        a.b[i] = std::uint8_t(i);
        b.b[i] = std::uint8_t(16 + i);
    }
    Vec r = vo.sld(a, b, 5);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(r.u8(i), 5 + i);
}

TEST_F(VmxFixture, MergeAndUnpack)
{
    Vec a = vmx::makeVecU8({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                            13, 14, 15});
    Vec z = vo.zero();
    Vec h = vo.mergeh8(a, z);
    Vec l = vo.mergel8(a, z);
    // Memory-order zero extension: u16 lane i == a byte i.
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(h.u16(i), i);
        EXPECT_EQ(l.u16(i), 8 + i);
    }
    Vec s = vmx::makeVecU8({0xff, 0x7f, 0, 0, 0, 0, 0, 0, 0x80, 0, 0,
                            0, 0, 0, 0, 0});
    Vec uh = vo.unpackh8(s);
    EXPECT_EQ(uh.s16(0), -1);
    EXPECT_EQ(uh.s16(1), 127);
    Vec ul = vo.unpackl8(s);
    EXPECT_EQ(ul.s16(0), -128);
}

TEST_F(VmxFixture, Merge16And32)
{
    Vec a = vmx::makeVecS16({0, 1, 2, 3, 4, 5, 6, 7});
    Vec b = vmx::makeVecS16({10, 11, 12, 13, 14, 15, 16, 17});
    Vec h = vo.mergeh16(a, b);
    EXPECT_EQ(h.s16(0), 0);
    EXPECT_EQ(h.s16(1), 10);
    EXPECT_EQ(h.s16(6), 3);
    EXPECT_EQ(h.s16(7), 13);
    Vec l = vo.mergel16(a, b);
    EXPECT_EQ(l.s16(0), 4);
    EXPECT_EQ(l.s16(1), 14);
    Vec a32 = vmx::makeVecS32({1, 2, 3, 4});
    Vec b32 = vmx::makeVecS32({5, 6, 7, 8});
    Vec h32 = vo.mergeh32(a32, b32);
    EXPECT_EQ(h32.s32(0), 1);
    EXPECT_EQ(h32.s32(1), 5);
    EXPECT_EQ(h32.s32(2), 2);
    EXPECT_EQ(h32.s32(3), 6);
}

TEST_F(VmxFixture, PackSaturation)
{
    Vec a = vmx::makeVecS16({-5, 0, 100, 255, 256, 300, 32767, -32768});
    Vec r = vo.packsu16(a, a);
    EXPECT_EQ(r.u8(0), 0);    // -5 clips to 0
    EXPECT_EQ(r.u8(2), 100);
    EXPECT_EQ(r.u8(3), 255);
    EXPECT_EQ(r.u8(4), 255);  // 256 clips to 255
    EXPECT_EQ(r.u8(6), 255);
    EXPECT_EQ(r.u8(7), 0);
    Vec m = vo.packum16(a, a);
    EXPECT_EQ(m.u8(4), 0);    // 256 mod 256
    Vec s32 = vmx::makeVecS32({70000, -70000, 5, -5});
    Vec p32 = vo.packs32(s32, s32);
    EXPECT_EQ(p32.s16(0), 32767);
    EXPECT_EQ(p32.s16(1), -32768);
    EXPECT_EQ(p32.s16(2), 5);
}

TEST_F(VmxFixture, SaturatingLaneArithmetic)
{
    Vec a = vmx::makeVecU8({250, 10, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                            0, 0, 0});
    Vec b = vmx::makeVecU8({10, 20, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                            0, 0});
    EXPECT_EQ(vo.addsu8(a, b).u8(0), 255);
    EXPECT_EQ(vo.addu8(a, b).u8(0), 4);  // modulo
    EXPECT_EQ(vo.subsu8(b, a).u8(0), 0);
    EXPECT_EQ(vo.subsu8(a, b).u8(0), 240);
    EXPECT_EQ(vo.avgu8(a, b).u8(0), 130);
    EXPECT_EQ(vo.minu8(a, b).u8(0), 10);
    EXPECT_EQ(vo.maxu8(a, b).u8(0), 250);

    Vec sa = vmx::makeVecS16({32000, -32000, 0, 0, 0, 0, 0, 0});
    Vec sb = vmx::makeVecS16({1000, -1000, 0, 0, 0, 0, 0, 0});
    EXPECT_EQ(vo.adds16(sa, sb).s16(0), 32767);
    EXPECT_EQ(vo.adds16(sa, sb).s16(1), -32768);
    EXPECT_EQ(vo.subs16(sa, sb).s16(0), 31000);
}

TEST_F(VmxFixture, ShiftsAndLogic)
{
    Vec a = vmx::makeVecS16({-16, 32, 4, 1, 0, 0, 0, 0});
    Vec sh = vo.splatis16(2);
    EXPECT_EQ(vo.sra16(a, sh).s16(0), -4);
    EXPECT_EQ(vo.sr16(a, sh).u16(1), 8);
    EXPECT_EQ(vo.sl16(a, sh).s16(2), 16);
    Vec x = vmx::makeVecU8({0xf0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                            0, 0, 0});
    Vec y = vmx::makeVecU8({0x0f, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                            0, 0, 0});
    EXPECT_EQ(vo.and_(x, y).u8(0), 0);
    EXPECT_EQ(vo.or_(x, y).u8(0), 0xff);
    EXPECT_EQ(vo.xor_(x, y).u8(0), 0xff);
    EXPECT_EQ(vo.andc(x, y).u8(0), 0xf0);
    EXPECT_EQ(vo.nor(x, y).u8(0), 0);
    Vec sel = vo.sel(x, y, vo.splatis8(-1));
    EXPECT_EQ(sel.u8(0), 0x0f);
}

TEST_F(VmxFixture, ComplexOps)
{
    Vec a = vmx::makeVecS16({3, -3, 5, 0, 0, 0, 0, 0});
    Vec b = vmx::makeVecS16({2, 2, 2, 2, 2, 2, 2, 2});
    Vec c = vmx::makeVecS16({1, 1, 1, 1, 1, 1, 1, 1});
    Vec ml = vo.mladd16(a, b, c);
    EXPECT_EQ(ml.s16(0), 7);
    EXPECT_EQ(ml.s16(1), -5);
    EXPECT_EQ(ml.s16(2), 11);

    // mradds: ((a*b + 0x4000) >> 15) + c, saturating.
    Vec big = vmx::makeVecS16({16384, 0, 0, 0, 0, 0, 0, 0});
    Vec two = vmx::makeVecS16({2, 0, 0, 0, 0, 0, 0, 0});
    EXPECT_EQ(vo.mradds16(big, two, c).s16(0), 2);

    Vec u = vmx::makeVecU8({1, 2, 3, 4, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                            0, 0});
    Vec acc;
    acc.setS32(0, 10);
    EXPECT_EQ(vo.sum4su8(u, acc).s32(0), 20);
    Vec ones = vo.splatis8(1);
    Vec ms = vo.msumu8(u, ones, vo.zero());
    EXPECT_EQ(ms.u32(0), 10u);

    Vec words = vmx::makeVecS32({1, 2, 3, 4});
    Vec sums = vo.sums32(words, vo.zero());
    EXPECT_EQ(sums.s32(3), 10);

    Vec e = vo.muleu8(u, vo.splatis8(3));
    EXPECT_EQ(e.u16(0), 3u);   // even lane 0 = 1*3
    EXPECT_EQ(e.u16(1), 9u);   // even lane 2 = 3*3
    Vec o = vo.mulou8(u, vo.splatis8(3));
    EXPECT_EQ(o.u16(0), 6u);   // odd lane 1 = 2*3
}

TEST_F(VmxFixture, Splats)
{
    Vec a = vmx::makeVecS16({7, 8, 9, 10, 11, 12, 13, 14});
    Vec s = vo.splat16(a, 2);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(s.s16(i), 9);
    Vec i8 = vo.splatis8(-7);
    EXPECT_EQ(i8.s8(5), -7);
    Vec i32 = vo.splatis32(13);
    EXPECT_EQ(i32.s32(3), 13);
}

TEST_F(VmxFixture, InstrClassAccounting)
{
    vmx::AlignedBuffer buf(64, 4);
    CPtr p = so.lip(buf.data());
    sink.clear();
    vo.lvx(p, 0);
    vo.lvxu(p, 0);
    vo.lvsl(p, 0);
    vo.vperm(Vec{}, Vec{}, Vec{});
    vo.add16(Vec{}, Vec{});
    vo.mladd16(Vec{}, Vec{}, Vec{});
    const auto &recs = sink.records();
    ASSERT_EQ(recs.size(), 6u);
    EXPECT_EQ(recs[0].cls, trace::InstrClass::VecLoad);
    EXPECT_EQ(recs[1].cls, trace::InstrClass::VecLoadU);
    // lvsl is accounted in the permute class (paper Table III).
    EXPECT_EQ(recs[2].cls, trace::InstrClass::VecPerm);
    EXPECT_EQ(recs[3].cls, trace::InstrClass::VecPerm);
    EXPECT_EQ(recs[4].cls, trace::InstrClass::VecSimple);
    EXPECT_EQ(recs[5].cls, trace::InstrClass::VecComplex);
}

TEST_F(VmxFixture, ConstPoolInternsAndLoadsAligned)
{
    Vec c1 = vmx::makeVecS16({20, 20, 20, 20, 20, 20, 20, 20});
    sink.clear();
    Vec a = vmx::loadConst(vo, c1);
    Vec b = vmx::loadConst(vo, c1);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(a.s16(i), 20);
        EXPECT_EQ(b.s16(i), 20);
    }
    ASSERT_EQ(sink.records().size(), 2u);
    EXPECT_EQ(sink.records()[0].cls, trace::InstrClass::VecLoad);
    // Interned: both loads hit the same pooled address.
    EXPECT_EQ(sink.records()[0].addr, sink.records()[1].addr);
    EXPECT_EQ(sink.records()[0].addr & 15, 0u);
}

TEST(AlignedBuffer, HonorsRequestedOffset)
{
    for (unsigned off = 0; off < 16; ++off) {
        vmx::AlignedBuffer buf(128, off);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) & 15, off);
    }
}
