/**
 * @file
 * Differential harness for the runtime-dispatched SIMD block decoder
 * (trace/simd_decode.hh): every tier the host supports must be
 * byte-identical to the scalar reference on adversarial streams -
 * values, decoder state, and every error, with the exact same
 * message. Covers:
 *  - seeded random corpora mixing tiny and huge deltas (1..10-byte
 *    varints), every instruction class, taken/untaken branches, and
 *    near/far/absent deps, decoded at many block sizes so records
 *    straddle block and fast-path/checked boundaries;
 *  - handcrafted max-length (10-byte) varints in every field;
 *  - truncated-mid-record payloads, which must throw in every tier
 *    and never read as a clean end of stream;
 *  - over-long (11+ byte) varints reached on the unchecked fast
 *    path, and invalid tag bytes (bad class, taken on non-branch);
 *  - the dispatch surface: tier name round-trips, forceTier(),
 *    UASIM_DECODE honored (the scalar-forced CI leg asserts through
 *    this), unsupported tiers rejected;
 *  - the mmap'd reader path: TraceCursor independence, UASIM_NO_MMAP
 *    parity with the mapped path, and checksum verification over the
 *    mapping.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/instr.hh"
#include "trace/simd_decode.hh"
#include "trace/trace_io.hh"

namespace ut = uasim::trace;
namespace simd = uasim::trace::simd;
namespace wire = uasim::trace::wire;
using simd::Tier;

namespace {

/// RAII pin of the dispatch tier; never leaks into other tests.
struct ForcedTier {
    explicit ForcedTier(Tier tier)
    {
        EXPECT_TRUE(simd::forceTier(tier))
            << "tier " << simd::tierName(tier) << " not supported";
    }
    ~ForcedTier() { simd::clearForcedTier(); }
};

std::string
encodeAll(const std::vector<ut::InstrRecord> &records)
{
    wire::RecordEncoder enc;
    std::string payload;
    for (const auto &rec : records)
        enc.encode(rec, payload);
    return payload;
}

/// Per-record payload boundaries: offsets[i] is where record i starts,
/// offsets.back() is the payload end.
std::vector<std::size_t>
encodeBoundaries(const std::vector<ut::InstrRecord> &records,
                 std::string &payload)
{
    wire::RecordEncoder enc;
    std::vector<std::size_t> offsets;
    for (const auto &rec : records) {
        offsets.push_back(payload.size());
        enc.encode(rec, payload);
    }
    offsets.push_back(payload.size());
    return offsets;
}

/// Decode a whole payload through RecordDecoder::decodeBlock in
/// @p chunk sized blocks (the integration surface the reader uses).
std::vector<ut::InstrRecord>
decodeBlocks(const std::string &payload, std::size_t chunk)
{
    wire::RecordDecoder dec;
    std::vector<ut::InstrRecord> out;
    std::vector<ut::InstrRecord> block(chunk);
    const auto *p =
        reinterpret_cast<const std::uint8_t *>(payload.data());
    const auto *end = p + payload.size();
    while (p != end) {
        std::size_t got = dec.decodeBlock(p, end, block.data(), chunk);
        if (got == 0)
            break;  // would be a silent-EOF bug; callers assert counts
        out.insert(out.end(), block.begin(),
                   block.begin() + std::ptrdiff_t(got));
    }
    return out;
}

void
expectRecordEqual(const ut::InstrRecord &want,
                  const ut::InstrRecord &got, std::size_t i)
{
    EXPECT_EQ(want.id, got.id) << "record " << i;
    EXPECT_EQ(want.pc, got.pc) << "record " << i;
    EXPECT_EQ(want.addr, got.addr) << "record " << i;
    EXPECT_EQ(want.deps, got.deps) << "record " << i;
    EXPECT_EQ(want.cls, got.cls) << "record " << i;
    EXPECT_EQ(want.size, got.size) << "record " << i;
    EXPECT_EQ(want.taken, got.taken) << "record " << i;
}

void
expectStreamsEqual(const std::vector<ut::InstrRecord> &want,
                   const std::vector<ut::InstrRecord> &got)
{
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        expectRecordEqual(want[i], got[i], i);
}

/**
 * A seeded adversarial record stream: every class, delta magnitudes
 * from 0 to ~2^63 (so id/pc/addr/dep varints span 1..10 bytes),
 * absent/near/far/future deps, taken and untaken branches. Inputs are
 * canonicalized the way the encoder would (no addr/size off the mem
 * classes, no taken off branches) so the scalar decode also
 * round-trips the originals exactly.
 */
std::vector<ut::InstrRecord>
fuzzRecords(std::uint64_t seed, std::size_t n)
{
    std::mt19937_64 rng(seed);
    std::vector<ut::InstrRecord> records;
    records.reserve(n);
    std::uint64_t id = rng() >> 32;
    auto delta = [&rng]() -> std::int64_t {
        // Exercise every varint length: pick a bit width uniformly,
        // then a value of that magnitude, in both directions.
        const int bits = int(rng() % 63) + 1;
        auto mag = std::int64_t(rng() & ((std::uint64_t{1} << bits) - 1));
        return (rng() & 1) ? mag : -mag;
    };
    std::uint64_t pc = rng();
    std::uint64_t addr = rng();
    for (std::size_t i = 0; i < n; ++i) {
        ut::InstrRecord rec;
        id += std::uint64_t(delta());
        pc += std::uint64_t(delta());
        rec.id = id;
        rec.pc = pc;
        rec.cls = static_cast<ut::InstrClass>(rng() %
                                              ut::numInstrClasses);
        if (ut::isMemClass(rec.cls)) {
            addr += std::uint64_t(delta());
            rec.addr = addr;
            rec.size = std::uint8_t(rng());
        }
        if (rec.cls == ut::InstrClass::Branch)
            rec.taken = (rng() & 1) != 0;
        for (auto &dep : rec.deps) {
            switch (rng() % 4) {
            case 0: break;  // no dependence
            case 1: dep = rec.id - (rng() % 64); break;    // near
            case 2: dep = rec.id + std::uint64_t(delta()); break;
            default: dep = rng() | 1; break;               // anywhere
            }
        }
        records.push_back(rec);
    }
    return records;
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "/uasim_" + name;
}

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
writeAll(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), std::streamsize(bytes.size()));
}

const std::size_t kChunks[] = {1, 2, 3, 5, 7, 13, 64, 256, 1000};

// ---------------------------------------------------------------------
// Dispatch surface.

TEST(Dispatch, TierNamesRoundTrip)
{
    for (Tier tier : {Tier::Scalar, Tier::SSE42, Tier::AVX2, Tier::NEON}) {
        Tier parsed;
        ASSERT_TRUE(simd::parseTierName(simd::tierName(tier), parsed))
            << simd::tierName(tier);
        EXPECT_EQ(tier, parsed);
    }
    Tier dummy;
    EXPECT_FALSE(simd::parseTierName("bogus", dummy));
    EXPECT_FALSE(simd::parseTierName("", dummy));
}

TEST(Dispatch, ScalarAlwaysSupported)
{
    EXPECT_TRUE(simd::tierSupported(Tier::Scalar));
    const auto tiers = simd::supportedTiers();
    ASSERT_FALSE(tiers.empty());
    EXPECT_EQ(Tier::Scalar, tiers.front());
    for (Tier tier : tiers)
        EXPECT_TRUE(simd::tierSupported(tier));
    EXPECT_TRUE(simd::tierSupported(simd::activeTier()));
}

TEST(Dispatch, ForceTierWinsAndClears)
{
    {
        ForcedTier pin(Tier::Scalar);
        EXPECT_EQ(Tier::Scalar, simd::activeTier());
    }
    // Unsupported tiers are rejected without changing the dispatch.
    const Tier before = simd::activeTier();
    for (Tier tier : {Tier::SSE42, Tier::AVX2, Tier::NEON}) {
        if (!simd::tierSupported(tier)) {
            EXPECT_FALSE(simd::forceTier(tier));
            EXPECT_EQ(before, simd::activeTier());
        }
    }
}

/// The scalar-forced CI leg runs this whole binary with
/// UASIM_DECODE=scalar; this test is what proves the override is
/// actually honored rather than silently ignored.
TEST(Dispatch, EnvOverrideHonored)
{
    const char *env = std::getenv("UASIM_DECODE");
    if (env == nullptr)
        GTEST_SKIP() << "UASIM_DECODE not set";
    Tier want;
    ASSERT_TRUE(simd::parseTierName(env, want)) << env;
    simd::clearForcedTier();
    EXPECT_EQ(want, simd::activeTier());
}

// ---------------------------------------------------------------------
// Value differentials.

/// Kernel-level diff: decodeRunWith() for every supported tier against
/// scalar must consume the same bytes, produce the same records, and
/// leave the same delta state.
TEST(SimdDecode, KernelDifferentialRandomCorpora)
{
    for (std::uint64_t seed : {1ull, 42ull, 0xabcdefull}) {
        const auto records = fuzzRecords(seed, 4096);
        const std::string payload = encodeAll(records);
        const auto *base =
            reinterpret_cast<const std::uint8_t *>(payload.data());
        const auto *end = base + payload.size();

        const auto *sp = base;
        wire::DecodeState sst;
        std::vector<ut::InstrRecord> sout(records.size());
        const std::size_t sn = simd::decodeRunWith(
            Tier::Scalar, sp, end, sout.data(), sout.size(), sst);
        ASSERT_GT(sn, 0u);

        for (Tier tier : simd::supportedTiers()) {
            if (tier == Tier::Scalar)
                continue;
            const auto *p = base;
            wire::DecodeState st;
            std::vector<ut::InstrRecord> out(records.size());
            const std::size_t n = simd::decodeRunWith(
                tier, p, end, out.data(), out.size(), st);
            ASSERT_EQ(sn, n) << simd::tierName(tier);
            EXPECT_EQ(sp - base, p - base) << simd::tierName(tier);
            EXPECT_EQ(sst.prevId, st.prevId) << simd::tierName(tier);
            EXPECT_EQ(sst.prevPc, st.prevPc) << simd::tierName(tier);
            EXPECT_EQ(sst.prevAddr, st.prevAddr) << simd::tierName(tier);
            for (std::size_t i = 0; i < n; ++i)
                expectRecordEqual(sout[i], out[i], i);
        }
    }
}

/// Integration diff: decodeBlock at many block sizes (records straddle
/// block boundaries and the fast-path/checked-tail boundary) for every
/// tier, plus exact round-trip against the original records.
TEST(SimdDecode, BlockDecodeDifferentialAllChunks)
{
    const auto records = fuzzRecords(7, 3000);
    const std::string payload = encodeAll(records);
    for (Tier tier : simd::supportedTiers()) {
        ForcedTier pin(tier);
        for (std::size_t chunk : kChunks) {
            const auto got = decodeBlocks(payload, chunk);
            expectStreamsEqual(records, got);
        }
    }
}

/// Handcrafted extremes: 10-byte varints in id, pc, addr and dep
/// lanes, including sign flips, with single-byte fields around them.
TEST(SimdDecode, MaxLengthVarints)
{
    std::vector<ut::InstrRecord> records;
    ut::InstrRecord rec;
    rec.id = 0x8000000000000000ull;  // id delta ~ 2^63: 10-byte varint
    rec.pc = 0xffffffffffffffffull;
    rec.cls = ut::InstrClass::IntAlu;
    rec.deps = {1, rec.id - 1, 0};  // dep delta ~ 2^63 - 1
    records.push_back(rec);

    rec = {};
    rec.id = 1;  // delta back down: another 10-byte varint
    rec.pc = 2;
    rec.cls = ut::InstrClass::VecLoadU;
    rec.addr = 0x8000000000000001ull;
    rec.size = 255;
    rec.deps = {0, 0, 0x7fffffffffffffffull};
    records.push_back(rec);

    rec = {};
    rec.id = 2;
    rec.pc = 6;
    rec.cls = ut::InstrClass::Branch;
    rec.taken = true;
    records.push_back(rec);

    // Pad with simple records so the extremes sit inside the
    // unchecked fast region, not in the checked tail.
    for (int i = 0; i < 32; ++i) {
        rec = {};
        rec.id = std::uint64_t(3 + i);
        rec.pc = std::uint64_t(10 + 4 * i);
        rec.cls = ut::InstrClass::IntAlu;
        records.push_back(rec);
    }

    const std::string payload = encodeAll(records);
    for (Tier tier : simd::supportedTiers()) {
        ForcedTier pin(tier);
        for (std::size_t chunk : {std::size_t{1}, std::size_t{256}})
            expectStreamsEqual(records, decodeBlocks(payload, chunk));
    }
}

// ---------------------------------------------------------------------
// Error differentials: every tier must throw exactly where and with
// exactly the message the scalar reference throws.

/// What scalar does with this payload: the decoded prefix on success,
/// or the error message on throw.
struct DecodeOutcome {
    bool threw = false;
    std::string error;
    std::vector<ut::InstrRecord> records;
};

DecodeOutcome
runDecode(const std::string &payload, std::size_t chunk)
{
    DecodeOutcome out;
    try {
        out.records = decodeBlocks(payload, chunk);
    } catch (const std::runtime_error &e) {
        out.threw = true;
        out.error = e.what();
    }
    return out;
}

TEST(SimdDecode, TruncationMidRecordThrowsEveryTier)
{
    const auto records = fuzzRecords(99, 64);
    std::string payload;
    const auto offsets = encodeBoundaries(records, payload);
    ASSERT_GE(offsets.size(), 4u);

    // Cut inside the first record, a middle record, and the last
    // record, at every byte offset within each.
    const std::size_t victims[] = {0, records.size() / 2,
                                   records.size() - 1};
    for (std::size_t v : victims) {
        for (std::size_t cut = offsets[v] + 1; cut < offsets[v + 1];
             ++cut) {
            const std::string truncated = payload.substr(0, cut);
            DecodeOutcome want;
            {
                ForcedTier pin(Tier::Scalar);
                want = runDecode(truncated, 256);
            }
            ASSERT_TRUE(want.threw)
                << "silent EOF at cut " << cut << " in record " << v;
            EXPECT_NE(want.error.find("truncated"), std::string::npos)
                << want.error;
            for (Tier tier : simd::supportedTiers()) {
                if (tier == Tier::Scalar)
                    continue;
                ForcedTier pin(tier);
                const DecodeOutcome got = runDecode(truncated, 256);
                ASSERT_TRUE(got.threw)
                    << simd::tierName(tier) << " silent EOF at cut "
                    << cut;
                EXPECT_EQ(want.error, got.error) << simd::tierName(tier);
            }
        }
    }
}

/// Adversarial payloads that are long enough for the unchecked fast
/// path: the SIMD kernels must reject them with the scalar's message,
/// and the same bytes in a short buffer (checked tail path) must too.
TEST(SimdDecode, AdversarialTagAndVarintEveryTier)
{
    struct Case {
        const char *name;
        std::string bytes;
    };
    std::vector<Case> cases;

    // Over-long varint: valid IntAlu tag, then an 11-byte
    // all-continuation id field. Must throw "truncated", never decode.
    cases.push_back({"overlong-varint",
                     std::string(1, '\0') + std::string(11, '\xff')});

    // Invalid instruction class byte (127, taken bit clear).
    cases.push_back({"invalid-class", std::string(1, '\x7f')});

    // Taken flag (bit 7) on a non-branch class (IntAlu = 0).
    cases.push_back({"taken-non-branch", std::string(1, '\x80')});

    for (const auto &c : cases) {
        // Long form: pad well past maxRecordBytes so the bad record is
        // decoded by the SIMD fast path.
        const std::string longForm =
            c.bytes + std::string(2 * wire::maxRecordBytes, '\0');
        // Short form: the bad bytes alone, below the fast-path
        // threshold, so the checked scalar tail handles them.
        for (const std::string &payload : {longForm, c.bytes}) {
            DecodeOutcome want;
            {
                ForcedTier pin(Tier::Scalar);
                want = runDecode(payload, 256);
            }
            ASSERT_TRUE(want.threw) << c.name;
            for (Tier tier : simd::supportedTiers()) {
                if (tier == Tier::Scalar)
                    continue;
                ForcedTier pin(tier);
                const DecodeOutcome got = runDecode(payload, 256);
                ASSERT_TRUE(got.threw)
                    << c.name << " via " << simd::tierName(tier);
                EXPECT_EQ(want.error, got.error)
                    << c.name << " via " << simd::tierName(tier);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Reader integration: cursors and the mmap path.

TEST(TraceReaderMmap, CursorsAreIndependent)
{
    const auto records = fuzzRecords(123, 2500);
    const std::string path = tempPath("cursors.uatrace");
    {
        ut::FileSink sink(path, "cursor-test");
        for (const auto &rec : records)
            sink.append(rec);
        sink.close();
    }
    ut::TraceReader reader(path, "cursor-test");
    ASSERT_EQ(records.size(), reader.count());

    // Two cursors with different block sizes, interleaved, plus the
    // reader's own stream: three independent passes over one payload.
    ut::TraceCursor a = reader.cursor();
    ut::TraceCursor b = reader.cursor();
    std::vector<ut::InstrRecord> ra, rb, rc;
    ut::InstrRecord one;
    ut::InstrRecord block[97];
    bool more = true;
    while (more) {
        more = false;
        if (std::size_t got = a.nextBlock(block, 97)) {
            ra.insert(ra.end(), block, block + got);
            more = true;
        }
        if (std::size_t got = b.nextBlock(block, 13)) {
            rb.insert(rb.end(), block, block + got);
            more = true;
        }
        if (reader.next(one)) {
            rc.push_back(one);
            more = true;
        }
    }
    expectStreamsEqual(records, ra);
    expectStreamsEqual(records, rb);
    expectStreamsEqual(records, rc);
    EXPECT_EQ(records.size(), a.read());
    EXPECT_EQ(records.size(), b.read());

    // A default-constructed cursor is a clean end of trace.
    ut::TraceCursor empty;
    EXPECT_FALSE(empty.next(one));
    EXPECT_EQ(0u, empty.nextBlock(block, 97));

    std::remove(path.c_str());
}

TEST(TraceReaderMmap, BufferedFallbackIsIdentical)
{
    const auto records = fuzzRecords(321, 1500);
    const std::string path = tempPath("mmap_parity.uatrace");
    {
        ut::FileSink sink(path, "mmap-test");
        for (const auto &rec : records)
            sink.append(rec);
        sink.close();
    }

    auto drain = [](ut::TraceReader &reader) {
        std::vector<ut::InstrRecord> out;
        ut::InstrRecord block[256];
        while (std::size_t got = reader.nextBlock(block, 256))
            out.insert(out.end(), block, block + got);
        return out;
    };

    // Honor (and afterwards restore) an externally forced
    // UASIM_NO_MMAP - e.g. a CI leg running the whole suite with the
    // buffered reader - by pinning each phase's intent explicitly.
    const char *preset = std::getenv("UASIM_NO_MMAP");
    const std::string presetValue = preset ? preset : "";

    ::unsetenv("UASIM_NO_MMAP");
    std::vector<ut::InstrRecord> mappedRecords;
    bool wasMapped = false;
    {
        ut::TraceReader reader(path, "mmap-test");
        wasMapped = reader.mapped();
        mappedRecords = drain(reader);
    }
#if defined(__unix__) || defined(__APPLE__)
    EXPECT_TRUE(wasMapped);
#endif
    expectStreamsEqual(records, mappedRecords);

    ::setenv("UASIM_NO_MMAP", "1", 1);
    {
        ut::TraceReader reader(path, "mmap-test");
        EXPECT_FALSE(reader.mapped());
        expectStreamsEqual(records, drain(reader));
    }
    if (preset)
        ::setenv("UASIM_NO_MMAP", presetValue.c_str(), 1);
    else
        ::unsetenv("UASIM_NO_MMAP");

    std::remove(path.c_str());
}

TEST(TraceReaderMmap, ChecksumVerifiedOverMapping)
{
    const auto records = fuzzRecords(555, 400);
    const std::string path = tempPath("mmap_checksum.uatrace");
    {
        ut::FileSink sink(path, "sum-test");
        for (const auto &rec : records)
            sink.append(rec);
        sink.close();
    }
    std::string bytes = readAll(path);
    // Flip one byte in the middle of the payload (header + key + mix
    // are up front; the payload is everything after).
    const std::size_t payloadAt = wire::headerBytes +
                                  std::string("sum-test").size() +
                                  wire::mixBytes;
    ASSERT_GT(bytes.size(), payloadAt + 10);
    bytes[payloadAt + (bytes.size() - payloadAt) / 2] ^= 0x40;
    writeAll(path, bytes);

    // Both the mmap'd and the buffered open must reject the file at
    // construction - corruption surfaces before any record is served.
    EXPECT_THROW(ut::TraceReader(path, "sum-test"), std::runtime_error);
    ::setenv("UASIM_NO_MMAP", "1", 1);
    EXPECT_THROW(ut::TraceReader(path, "sum-test"), std::runtime_error);
    ::unsetenv("UASIM_NO_MMAP");

    std::remove(path.c_str());
}

} // namespace
