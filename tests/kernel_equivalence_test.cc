/**
 * @file
 * Cross-variant equivalence: for each H.264 kernel family the scalar
 * variant and both vector variants (Altivec software realignment,
 * Altivec+lvxu/stvxu) must produce identical output on randomized
 * frames. Unlike h264_kernel_test.cc this compares the variants
 * against each other over whole random workloads, so a divergence
 * anywhere in the realignment paths shows up even if all three were
 * to drift from the reference together.
 *
 * All randomness comes from video/rng.hh with fixed seeds: no flaky
 * inputs.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "h264/chroma_kernels.hh"
#include "h264/idct_kernels.hh"
#include "h264/kernels.hh"
#include "h264/luma_kernels.hh"
#include "h264/sad_kernels.hh"
#include "trace/emitter.hh"
#include "trace/sink.hh"
#include "video/frame.hh"
#include "video/rng.hh"

using namespace uasim;
using h264::KernelCtx;
using h264::Variant;

namespace {

constexpr int kW = 128;
constexpr int kH = 128;

struct VariantRun {
    VariantRun(std::uint32_t seed)
        : em(sink), ctx(em), src(kW, kH), dst(kW, kH)
    {
        video::Rng rng(seed);
        for (int y = 0; y < kH; ++y) {
            for (int x = 0; x < kW; ++x) {
                src.at(x, y) = std::uint8_t(rng.below(256));
                dst.at(x, y) = std::uint8_t(rng.below(256));
            }
        }
        src.extendEdges();
    }

    trace::NullSink sink;
    trace::Emitter em;
    KernelCtx ctx;
    video::Plane src;
    video::Plane dst;
};

void
expectPlanesEqual(const video::Plane &a, const video::Plane &b,
                  const char *what)
{
    for (int y = 0; y < kH; ++y) {
        ASSERT_EQ(std::memcmp(a.pixel(0, y), b.pixel(0, y), kW), 0)
            << what << " variants diverge at row " << y;
    }
}

} // namespace

class KernelEquivalence : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(KernelEquivalence, LumaMcAllVariantsAgree)
{
    const std::uint32_t seed = GetParam();
    VariantRun scalar(seed), altivec(seed), unaligned(seed);
    VariantRun *runs[3] = {&scalar, &altivec, &unaligned};

    // One Rng drives the op sequence; each variant replays it exactly.
    video::Rng ops(seed ^ 0x1u);
    for (int iter = 0; iter < 48; ++iter) {
        int size = 4 << ops.below(3);              // 4, 8 or 16
        int frac = int(ops.below(16));
        int sx = int(ops.range(8, kW - 24));
        int sy = int(ops.range(8, kH - 24));
        int dx = int(ops.range(8, kW - 24)) & ~3;
        int dy = int(ops.range(8, kH - 24)) & ~3;
        for (int v = 0; v < 3; ++v) {
            auto &r = *runs[v];
            h264::lumaMc(r.ctx, static_cast<Variant>(v),
                         r.src.pixel(sx, sy), r.src.stride(),
                         r.dst.pixel(dx, dy), r.dst.stride(), size,
                         size, frac & 3, frac >> 2);
        }
    }
    expectPlanesEqual(scalar.dst, altivec.dst, "lumaMc scalar/altivec");
    expectPlanesEqual(scalar.dst, unaligned.dst,
                      "lumaMc scalar/unaligned");
}

TEST_P(KernelEquivalence, ChromaMcAllVariantsAgree)
{
    const std::uint32_t seed = GetParam();
    VariantRun scalar(seed), altivec(seed), unaligned(seed);
    VariantRun *runs[3] = {&scalar, &altivec, &unaligned};

    video::Rng ops(seed ^ 0x2u);
    for (int iter = 0; iter < 64; ++iter) {
        int size = ops.below(2) ? 8 : 4;
        int cdx = int(ops.below(8));
        int cdy = int(ops.below(8));
        int sx = int(ops.range(8, kW - 24));
        int sy = int(ops.range(8, kH - 24));
        int dx = int(ops.range(8, kW - 24)) & ~7;
        int dy = int(ops.range(8, kH - 24)) & ~7;
        for (int v = 0; v < 3; ++v) {
            auto &r = *runs[v];
            h264::chromaMcKernel(r.ctx, static_cast<Variant>(v),
                                 r.src.pixel(sx, sy), r.src.stride(),
                                 r.dst.pixel(dx, dy), r.dst.stride(),
                                 size, cdx, cdy);
        }
    }
    expectPlanesEqual(scalar.dst, altivec.dst,
                      "chromaMc scalar/altivec");
    expectPlanesEqual(scalar.dst, unaligned.dst,
                      "chromaMc scalar/unaligned");
}

TEST_P(KernelEquivalence, IdctAllVariantsAgree)
{
    const std::uint32_t seed = GetParam();
    VariantRun scalar(seed), altivec(seed), unaligned(seed);
    VariantRun *runs[3] = {&scalar, &altivec, &unaligned};

    video::Rng ops(seed ^ 0x3u);
    for (int iter = 0; iter < 48; ++iter) {
        alignas(16) std::int16_t block[64] = {};
        bool big = ops.below(2) != 0;
        int n = big ? 64 : 16;
        for (int i = 0; i < n; ++i)
            block[i] = std::int16_t(ops.range(-512, 512));
        int step = big ? 8 : 4;
        int px = step * int(ops.below(unsigned((kW - 16) / step))) + 8;
        int py = step * int(ops.below(unsigned((kH - 16) / step))) + 8;
        for (int v = 0; v < 3; ++v) {
            auto &r = *runs[v];
            alignas(16) std::int16_t copy[64];
            std::memcpy(copy, block, sizeof(block));
            if (big) {
                h264::idct8x8Add(r.ctx, static_cast<Variant>(v),
                                 r.dst.pixel(px, py), r.dst.stride(),
                                 copy);
            } else {
                h264::idct4x4Add(r.ctx, static_cast<Variant>(v),
                                 r.dst.pixel(px, py), r.dst.stride(),
                                 copy);
            }
        }
    }
    expectPlanesEqual(scalar.dst, altivec.dst, "idct scalar/altivec");
    expectPlanesEqual(scalar.dst, unaligned.dst,
                      "idct scalar/unaligned");
}

TEST_P(KernelEquivalence, SadAllVariantsAgree)
{
    const std::uint32_t seed = GetParam();
    VariantRun run(seed);

    video::Rng ops(seed ^ 0x4u);
    for (int iter = 0; iter < 96; ++iter) {
        int size = 4 << ops.below(3);
        int cx = int(ops.range(4, kW - 20));
        int cy = int(ops.range(4, kH - 20));
        int rx = int(ops.range(4, kW - 20));
        int ry = int(ops.range(4, kH - 20));
        int got[3];
        for (int v = 0; v < 3; ++v) {
            got[v] = h264::sadKernel(run.ctx, static_cast<Variant>(v),
                                     run.src.pixel(cx, cy),
                                     run.src.stride(),
                                     run.dst.pixel(rx, ry),
                                     run.dst.stride(), size);
        }
        ASSERT_EQ(got[0], got[1]) << "sad scalar/altivec iter " << iter;
        ASSERT_EQ(got[0], got[2])
            << "sad scalar/unaligned iter " << iter;
    }
}

INSTANTIATE_TEST_SUITE_P(FixedSeeds, KernelEquivalence,
                         ::testing::Values(0xC0DEC101u, 0xC0DEC202u,
                                           0xC0DEC303u));
