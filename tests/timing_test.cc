/**
 * @file
 * Tests for the superscalar pipeline model: basic invariants, width
 * scaling, dependence serialization, load latency, store-to-load
 * forwarding, branch misprediction, unaligned-access latency, and the
 * branch predictor.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "timing/branch_pred.hh"
#include "trace/trace_io.hh"
#include "timing/pipeline.hh"
#include "trace/emitter.hh"
#include "vmx/buffer.hh"
#include "vmx/scalarops.hh"
#include "vmx/vecops.hh"

using namespace uasim;
using timing::CoreConfig;
using timing::PipelineSim;
using trace::InstrClass;
using trace::InstrRecord;

namespace {

/// Feed n independent instructions of one class.
timing::SimResult
runIndependent(const CoreConfig &cfg, InstrClass cls, int n)
{
    PipelineSim sim(cfg);
    trace::Emitter em(sim);
    for (int i = 0; i < n; ++i)
        em.emit(cls, std::source_location::current());
    return sim.finalize();
}

/// Feed a serial dependence chain of n instructions.
timing::SimResult
runChain(const CoreConfig &cfg, InstrClass cls, int n)
{
    PipelineSim sim(cfg);
    trace::Emitter em(sim);
    trace::Dep prev{};
    for (int i = 0; i < n; ++i)
        prev = em.emit(cls, std::source_location::current(), prev);
    return sim.finalize();
}

} // namespace

TEST(Pipeline, RetiresEverythingFed)
{
    for (int p = 0; p < 3; ++p) {
        auto r = runIndependent(CoreConfig::preset(p), InstrClass::IntAlu,
                                1000);
        EXPECT_EQ(r.instrs, 1000u) << r.core;
        EXPECT_GT(r.cycles, 0u);
    }
}

TEST(Pipeline, IpcNeverExceedsWidth)
{
    for (int p = 0; p < 3; ++p) {
        CoreConfig cfg = CoreConfig::preset(p);
        auto r = runIndependent(cfg, InstrClass::IntAlu, 5000);
        EXPECT_LE(r.ipc(), double(cfg.fetchWidth) + 1e-9) << r.core;
    }
}

TEST(Pipeline, WiderCoreIsFasterOnParallelWork)
{
    auto r2 = runIndependent(CoreConfig::twoWayInOrder(),
                             InstrClass::IntAlu, 4000);
    auto r4 = runIndependent(CoreConfig::fourWayOoO(),
                             InstrClass::IntAlu, 4000);
    auto r8 = runIndependent(CoreConfig::eightWayOoO(),
                             InstrClass::IntAlu, 4000);
    EXPECT_LT(r4.cycles, r2.cycles);
    EXPECT_LT(r8.cycles, r4.cycles);
}

TEST(Pipeline, FxUnitThroughputBindsIntAlu)
{
    // 2-way has 2 FX units: 4000 independent adds need >= 2000 cycles.
    auto r = runIndependent(CoreConfig::twoWayInOrder(),
                            InstrClass::IntAlu, 4000);
    EXPECT_GE(r.cycles, 2000u);
    EXPECT_LE(r.cycles, 2300u);  // and not much more
}

TEST(Pipeline, DependenceChainSerializes)
{
    CoreConfig cfg = CoreConfig::eightWayOoO();
    auto par = runIndependent(cfg, InstrClass::VecComplex, 1000);
    auto ser = runChain(cfg, InstrClass::VecComplex, 1000);
    // Chain: one per vecComplex latency (4); parallel: bound by the
    // 2 VCMPLX units.
    EXPECT_GE(ser.cycles, 4000u);
    EXPECT_LT(par.cycles, 1000u);
}

TEST(Pipeline, LoadLatencyAppearsInChains)
{
    CoreConfig cfg = CoreConfig::fourWayOoO();
    vmx::AlignedBuffer buf(256, 0);
    // Pointer-chase-like chain: load feeding the next load's address.
    PipelineSim sim(cfg);
    trace::Emitter em(sim);
    trace::Dep prev{};
    const int n = 500;
    for (int i = 0; i < n; ++i) {
        prev = em.emitMem(InstrClass::Load,
                          reinterpret_cast<std::uint64_t>(buf.data()),
                          4, std::source_location::current(), prev);
    }
    auto r = sim.finalize();
    // Each hit costs the 4-cycle load-to-use latency.
    EXPECT_GE(r.cycles, std::uint64_t(n) * 4);
    EXPECT_LE(r.cycles, std::uint64_t(n) * 4 + 600);
}

TEST(Pipeline, UnalignedExtraLatencySlowsChains)
{
    vmx::AlignedBuffer buf(256, 4);  // unaligned base
    auto run = [&](int extra) {
        CoreConfig cfg = CoreConfig::fourWayOoO();
        cfg.lat.unalignedLoadExtra = extra;
        PipelineSim sim(cfg);
        trace::Emitter em(sim);
        trace::Dep prev{};
        for (int i = 0; i < 400; ++i) {
            prev = em.emitMem(
                InstrClass::VecLoadU,
                reinterpret_cast<std::uint64_t>(buf.data()), 16,
                std::source_location::current(), prev);
        }
        return sim.finalize();
    };
    auto base = run(0);
    auto plus2 = run(2);
    auto plus6 = run(6);
    EXPECT_GT(plus2.cycles, base.cycles + 700u);
    EXPECT_GT(plus6.cycles, plus2.cycles + 1500u);
    EXPECT_EQ(base.unalignedVecOps, 400u);
}

TEST(Pipeline, AlignedLvxuPaysNoPenalty)
{
    vmx::AlignedBuffer buf(256, 0);  // aligned base
    auto run = [&](int extra) {
        CoreConfig cfg = CoreConfig::fourWayOoO();
        cfg.lat.unalignedLoadExtra = extra;
        PipelineSim sim(cfg);
        trace::Emitter em(sim);
        trace::Dep prev{};
        for (int i = 0; i < 400; ++i) {
            prev = em.emitMem(
                InstrClass::VecLoadU,
                reinterpret_cast<std::uint64_t>(buf.data()), 16,
                std::source_location::current(), prev);
        }
        return sim.finalize();
    };
    EXPECT_EQ(run(0).cycles, run(6).cycles);
}

TEST(Pipeline, StoreToLoadForwarding)
{
    vmx::AlignedBuffer buf(256, 0);
    CoreConfig cfg = CoreConfig::fourWayOoO();
    PipelineSim sim(cfg);
    trace::Emitter em(sim);
    auto addr = reinterpret_cast<std::uint64_t>(buf.data());
    for (int i = 0; i < 100; ++i) {
        auto st = em.emitMem(InstrClass::Store, addr, 8,
                             std::source_location::current());
        em.emitMem(InstrClass::Load, addr, 8,
                   std::source_location::current(), st);
    }
    auto r = sim.finalize();
    EXPECT_GE(r.storeForwards, 90u);
}

TEST(Pipeline, MispredictsStallFetch)
{
    CoreConfig cfg = CoreConfig::fourWayOoO();
    auto run = [&](bool random_pattern) {
        PipelineSim sim(cfg);
        trace::Emitter em(sim);
        std::uint64_t lcg = 12345;
        for (int i = 0; i < 2000; ++i) {
            bool taken;
            if (random_pattern) {
                lcg = lcg * 6364136223846793005ull + 13;
                taken = (lcg >> 40) & 1;
            } else {
                taken = true;
            }
            em.emitBranch(taken, std::source_location::current());
            for (int k = 0; k < 3; ++k)
                em.emit(InstrClass::IntAlu,
                        std::source_location::current());
        }
        return sim.finalize();
    };
    auto predictable = run(false);
    auto random = run(true);
    EXPECT_LT(predictable.mispredictRate(), 0.02);
    EXPECT_GT(random.mispredictRate(), 0.3);
    EXPECT_GT(random.cycles, predictable.cycles * 2);
    EXPECT_GT(random.fetchStallCycles, predictable.fetchStallCycles);
}

TEST(Pipeline, InOrderSlowerThanOoOOnMixedChain)
{
    // Alternating long-latency loads and independent ALU work: OoO
    // overlaps them, in-order stalls.
    vmx::AlignedBuffer buf(8192, 0);
    auto run = [&](CoreConfig cfg) {
        cfg.units = {2, 1, 1, 1, 1, 1, 1};
        cfg.fetchWidth = 2;
        PipelineSim sim(cfg);
        trace::Emitter em(sim);
        auto base = reinterpret_cast<std::uint64_t>(buf.data());
        trace::Dep prev{};
        for (int i = 0; i < 500; ++i) {
            auto ld = em.emitMem(InstrClass::Load, base + (i % 64) * 8,
                                 8, std::source_location::current(),
                                 prev);
            prev = em.emit(InstrClass::IntAlu,
                           std::source_location::current(), ld);
            for (int k = 0; k < 4; ++k)
                em.emit(InstrClass::IntAlu,
                        std::source_location::current());
        }
        return sim.finalize();
    };
    CoreConfig in_order = CoreConfig::twoWayInOrder();
    CoreConfig ooo = CoreConfig::fourWayOoO();
    ooo.name = "ooo2";
    auto r_in = run(in_order);
    auto r_ooo = run(ooo);
    EXPECT_LT(r_ooo.cycles, r_in.cycles);
}

TEST(Pipeline, MshrLimitThrottlesMisses)
{
    // Independent loads all missing to memory: more MSHRs -> more
    // memory-level parallelism -> fewer cycles.
    auto run = [&](int mshrs) {
        CoreConfig cfg = CoreConfig::fourWayOoO();
        cfg.missMax = mshrs;
        PipelineSim sim(cfg);
        trace::Emitter em(sim);
        for (int i = 0; i < 200; ++i) {
            em.emitMem(InstrClass::Load,
                       0x40000000ull + std::uint64_t(i) * 4096, 8,
                       std::source_location::current());
        }
        return sim.finalize();
    };
    auto few = run(1);
    auto many = run(8);
    EXPECT_GT(few.cycles, many.cycles * 3);
}

TEST(Pipeline, CacheStatsPlumbedThrough)
{
    CoreConfig cfg = CoreConfig::fourWayOoO();
    PipelineSim sim(cfg);
    trace::Emitter em(sim);
    for (int i = 0; i < 64; ++i) {
        em.emitMem(InstrClass::Load,
                   0x1000ull + std::uint64_t(i % 4) * 131072, 8,
                   std::source_location::current());
    }
    auto r = sim.finalize();
    EXPECT_GT(r.l1dAccesses, 0u);
    EXPECT_GT(r.l1dMisses, 0u);
    EXPECT_LE(r.l1dMisses, r.l1dAccesses);
}

TEST(Pipeline, TableTwoPresets)
{
    auto c2 = CoreConfig::twoWayInOrder();
    EXPECT_FALSE(c2.outOfOrder);
    EXPECT_EQ(c2.fetchWidth, 2);
    EXPECT_EQ(c2.retireWidth, 4);
    EXPECT_EQ(c2.inflight, 80);
    EXPECT_EQ(c2.units.fx, 2);
    EXPECT_EQ(c2.dReadPorts, 1);
    EXPECT_EQ(c2.missMax, 2);

    auto c4 = CoreConfig::fourWayOoO();
    EXPECT_TRUE(c4.outOfOrder);
    EXPECT_EQ(c4.fetchWidth, 4);
    EXPECT_EQ(c4.retireWidth, 6);
    EXPECT_EQ(c4.inflight, 160);
    EXPECT_EQ(c4.units.ls, 2);
    EXPECT_EQ(c4.gprPhys, 80);

    auto c8 = CoreConfig::eightWayOoO();
    EXPECT_EQ(c8.fetchWidth, 8);
    EXPECT_EQ(c8.retireWidth, 12);
    EXPECT_EQ(c8.inflight, 255);
    EXPECT_EQ(c8.units.vperm, 2);
    EXPECT_EQ(c8.dReadPorts, 4);
}

TEST(Pipeline, UnitMapping)
{
    using timing::Unit;
    using timing::unitFor;
    EXPECT_EQ(unitFor(InstrClass::IntAlu), Unit::FX);
    EXPECT_EQ(unitFor(InstrClass::IntMul), Unit::FX);
    EXPECT_EQ(unitFor(InstrClass::Load), Unit::LS);
    EXPECT_EQ(unitFor(InstrClass::VecLoadU), Unit::LS);
    EXPECT_EQ(unitFor(InstrClass::Branch), Unit::BR);
    EXPECT_EQ(unitFor(InstrClass::VecSimple), Unit::VI);
    EXPECT_EQ(unitFor(InstrClass::VecPerm), Unit::VPERM);
    EXPECT_EQ(unitFor(InstrClass::VecComplex), Unit::VCMPLX);
}

TEST(Pipeline, DestRegFiles)
{
    using timing::destRegFile;
    using timing::RegFile;
    EXPECT_EQ(destRegFile(InstrClass::Load), RegFile::GPR);
    EXPECT_EQ(destRegFile(InstrClass::VecLoadU), RegFile::VPR);
    EXPECT_EQ(destRegFile(InstrClass::Store), RegFile::None);
    EXPECT_EQ(destRegFile(InstrClass::Branch), RegFile::None);
    EXPECT_EQ(destRegFile(InstrClass::FpAlu), RegFile::FPR);
}

TEST(Pipeline, OfflineTraceFileEqualsOnline)
{
    // The MET-style flow: record a trace to disk, replay it through a
    // fresh simulator, and get bit-identical results to feeding the
    // records online.
    vmx::AlignedBuffer buf(8192, 7);
    auto gen = [&](trace::TraceSink &sink) {
        trace::Emitter em(sink);
        vmx::ScalarOps so(em);
        vmx::VecOps vo(em);
        vmx::CPtr p = so.lip(buf.data());
        vmx::SInt acc = so.li(0);
        for (int i = 0; i < 400; ++i) {
            vmx::Vec v = vo.lvxu(p, (i * 48) % 4096);
            vmx::Vec w = vo.addu8(v, v);
            vo.stvxu(w, vmx::Ptr{buf.data() + 4096}, (i * 16) % 2048);
            acc = so.addi(acc, 1);
            so.loopBranch(i + 1 < 400);
        }
    };

    CoreConfig cfg = CoreConfig::fourWayOoO();
    cfg.lat.unalignedLoadExtra = 1;

    timing::PipelineSim online(cfg);
    gen(online);
    auto r_online = online.finalize();

    std::string path = ::testing::TempDir() + "/uasim_offline.trace";
    {
        trace::FileSink file(path);
        gen(file);
    }
    timing::PipelineSim offline(cfg);
    {
        trace::TraceReader reader(path);
        reader.drainTo(offline);
    }
    auto r_offline = offline.finalize();
    std::remove(path.c_str());

    EXPECT_EQ(r_online.cycles, r_offline.cycles);
    EXPECT_EQ(r_online.instrs, r_offline.instrs);
    EXPECT_EQ(r_online.mispredicts, r_offline.mispredicts);
    EXPECT_EQ(r_online.l1dMisses, r_offline.l1dMisses);
    EXPECT_EQ(r_online.unalignedVecOps, r_offline.unalignedVecOps);
}

TEST(Pipeline, ReadyRingScalesWithInflight)
{
    // Regression for the fixed 1024-entry producer-ready ring: with a
    // scaled CoreConfig whose in-flight window exceeds it, two live
    // instructions aliased a slot and a waiting producer read as
    // "long retired" (ready), letting dependence chains issue early
    // and corrupting the timing. The ring is now sized from
    // cfg.inflight, so a serial chain can never finish in fewer
    // cycles than its length.
    CoreConfig cfg = CoreConfig::fourWayOoO();
    cfg.inflight = 2048;
    cfg.issueQ = 4096;
    cfg.gprPhys = 4096;
    const int n = 6000;
    auto r = runChain(cfg, InstrClass::IntAlu, n);
    EXPECT_EQ(r.instrs, std::uint64_t(n));
    EXPECT_GE(r.cycles, std::uint64_t(n));

    // Scaling only the window (not the machine width) must not make
    // a dependence-free stream slower.
    auto wide = runIndependent(cfg, InstrClass::IntAlu, n);
    auto base = runIndependent(CoreConfig::fourWayOoO(),
                               InstrClass::IntAlu, n);
    EXPECT_LE(wide.cycles, base.cycles);
}

TEST(Pipeline, PredictorSizeDefaultMatchesTableII)
{
    // The paper's predictor (4K-entry gshare) is shared by all three
    // Table II machines; making the size sweepable must not move the
    // default out from under the published figures.
    EXPECT_EQ(CoreConfig{}.bpredLog2Entries, 12);
    EXPECT_EQ(CoreConfig::twoWayInOrder().bpredLog2Entries, 12);
    EXPECT_EQ(CoreConfig::fourWayOoO().bpredLog2Entries, 12);
    EXPECT_EQ(CoreConfig::eightWayOoO().bpredLog2Entries, 12);
}

TEST(Pipeline, PredictorSizeIsSweepable)
{
    // bpredLog2Entries plumbs through CoreConfig into the model: a
    // 2-entry table cannot hold the history-disambiguated TTTN
    // pattern that the Table II-sized table learns almost perfectly.
    auto run = [](int log2) {
        CoreConfig cfg = CoreConfig::fourWayOoO();
        cfg.bpredLog2Entries = log2;
        PipelineSim sim(cfg);
        trace::Emitter em(sim);
        for (int i = 0; i < 4000; ++i) {
            em.emitBranch((i % 4) != 3,
                          std::source_location::current());
            em.emit(InstrClass::IntAlu,
                    std::source_location::current());
        }
        return sim.finalize();
    };
    auto tiny = run(1);
    auto tableII = run(12);
    EXPECT_EQ(tiny.branches, tableII.branches);
    EXPECT_GT(tiny.mispredicts, tableII.mispredicts + 200);
    EXPECT_GT(tiny.cycles, tableII.cycles);
}

TEST(Pipeline, ValidateRejectsBadConfigs)
{
    EXPECT_NO_THROW(CoreConfig{}.validate());
    EXPECT_NO_THROW(CoreConfig::eightWayOoO().validate());
    auto bad = [](auto &&poke) {
        CoreConfig cfg = CoreConfig::fourWayOoO();
        poke(cfg);
        return cfg;
    };
    EXPECT_THROW(bad([](CoreConfig &c) { c.fetchWidth = 0; })
                     .validate(),
                 std::invalid_argument);
    EXPECT_THROW(bad([](CoreConfig &c) { c.bpredLog2Entries = 0; })
                     .validate(),
                 std::invalid_argument);
    EXPECT_THROW(bad([](CoreConfig &c) { c.bpredLog2Entries = 40; })
                     .validate(),
                 std::invalid_argument);
    EXPECT_THROW(bad([](CoreConfig &c) { c.storeSetLog2 = 0; })
                     .validate(),
                 std::invalid_argument);
    EXPECT_THROW(bad([](CoreConfig &c) { c.model.clear(); })
                     .validate(),
                 std::invalid_argument);
    // The constructor path must throw before sizing anything.
    EXPECT_THROW(PipelineSim(bad([](CoreConfig &c) {
                     c.inflight = 0;
                 })),
                 std::invalid_argument);
}

TEST(BranchPredictor, LearnsBias)
{
    timing::BranchPredictor bp;
    for (int i = 0; i < 100; ++i)
        bp.update(0x1000, true);
    EXPECT_TRUE(bp.predict(0x1000));
    for (int i = 0; i < 100; ++i)
        bp.update(0x1000, false);
    EXPECT_FALSE(bp.predict(0x1000));
}

TEST(BranchPredictor, LearnsShortPeriodicPattern)
{
    timing::BranchPredictor bp;
    // Period-4 pattern TTTN: gshare history disambiguates.
    auto pattern = [](int i) { return (i % 4) != 3; };
    int mispredicts = 0;
    for (int i = 0; i < 4000; ++i) {
        bool taken = pattern(i);
        if (i > 1000 && bp.predict(0x2000) != taken)
            ++mispredicts;
        bp.update(0x2000, taken);
    }
    EXPECT_LT(mispredicts, 150);
}
