/**
 * @file
 * Locks the UATRACE2 serialization layer and the persistent trace
 * store (trace/trace_io.hh, trace/trace_store.hh):
 *  - record -> file -> replay round trips are bit-identical to the
 *    in-memory stream, for synthetic and real kernel traces;
 *  - the store hits/misses correctly, self-heals corrupt entries,
 *    and never publishes an uncommitted recording;
 *  - every corruption mode in the table (truncation, bad magic, bad
 *    version, wrong checksum, lying header counts, invalid class
 *    bytes) is rejected with a clear error instead of being read as
 *    data;
 *  - FileSink surfaces write failures (throw from close(), report
 *    from the destructor) instead of leaving a truncated trace with
 *    a valid-looking header - the PR 4 bug class.
 *  - the block decoder (RecordDecoder::decodeBlock, TraceReader::
 *    nextBlock) is byte-for-byte equivalent to the scalar path on
 *    seeded random streams for every block size, including blocks
 *    straddling the checked/unchecked boundary, final partial
 *    blocks, truncation mid-block, and over-long varints reached on
 *    the unchecked fast path.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <source_location>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "trace/emitter.hh"
#include "trace/sink.hh"
#include "trace/trace_io.hh"
#include "trace/trace_store.hh"

namespace fs = std::filesystem;
namespace ut = uasim::trace;
using uasim::core::KernelBench;
using uasim::core::KernelSpec;
using uasim::h264::KernelId;
using uasim::h264::Variant;

namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "/uasim_" + name;
}

/// A varied record stream: every class, unaligned/decreasing
/// addresses, taken and untaken branches, near and far deps.
std::vector<ut::InstrRecord>
syntheticRecords()
{
    ut::BufferSink buf;
    ut::Emitter em(buf);
    auto loc = std::source_location::current();
    ut::Dep d0 = em.emit(ut::InstrClass::IntAlu, loc);
    ut::Dep d1 = em.emit(ut::InstrClass::IntMul, loc, d0);
    em.emit(ut::InstrClass::FpAlu, loc, d0, d1);
    ut::Dep ld = em.emitMem(ut::InstrClass::Load, 0x1000, 8, loc, d1);
    em.emitMem(ut::InstrClass::Store, 0x0fff, 4, loc, ld);  // addr down
    em.emitMem(ut::InstrClass::VecLoad, 0xdeadbef0, 16, loc);
    em.emitMem(ut::InstrClass::VecLoadU, 0xdeadbeef, 16, loc);
    em.emitMem(ut::InstrClass::VecStore, 0x10, 16, loc, d0);
    em.emitMem(ut::InstrClass::VecStoreU, 0xffffffffffff0ull, 16, loc);
    em.emit(ut::InstrClass::VecSimple, loc, ld);
    em.emit(ut::InstrClass::VecComplex, loc);
    em.emit(ut::InstrClass::VecPerm, loc);
    em.emitBranch(true, loc, d0);
    em.emitBranch(false, loc);
    em.emit(ut::InstrClass::IntAlu, loc, d0);  // far dep
    return buf.records();
}

void
expectRecordEqual(const ut::InstrRecord &want,
                  const ut::InstrRecord &got)
{
    EXPECT_EQ(want.id, got.id);
    EXPECT_EQ(want.pc, got.pc);
    EXPECT_EQ(want.addr, got.addr);
    EXPECT_EQ(want.deps, got.deps);
    EXPECT_EQ(want.cls, got.cls);
    EXPECT_EQ(want.size, got.size);
    EXPECT_EQ(want.taken, got.taken);
}

void
writeTrace(const std::string &path, const std::string &key,
           const std::vector<ut::InstrRecord> &records)
{
    ut::FileSink sink(path, key);
    for (const auto &rec : records)
        sink.append(rec);
    sink.close();
}

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
writeAll(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), std::streamsize(bytes.size()));
}

/// Assemble raw file bytes with self-consistent hashes; corruption
/// tests then tamper with individual sections.
std::string
buildRaw(const std::string &key, std::uint64_t count,
         const ut::InstrMix &mix, const std::string &payload)
{
    ut::wire::Header h;
    h.keyBytes = std::uint32_t(key.size());
    h.recordCount = count;
    h.payloadBytes = payload.size();
    h.payloadHash = ut::wire::fnv1a(payload.data(), payload.size());
    h.keyHash = ut::wire::fnv1a(key.data(), key.size());
    std::string mix_section = ut::wire::serializeMix(mix);
    h.mixHash =
        ut::wire::fnv1a(mix_section.data(), mix_section.size());
    return h.serialize() + key + mix_section + payload;
}

/// Encode @p records and build a fully consistent raw file, with the
/// header record count overridable to simulate a lying writer.
std::string
buildRawFromRecords(const std::string &key,
                    const std::vector<ut::InstrRecord> &records,
                    std::uint64_t claimCount)
{
    std::string payload;
    ut::InstrMix mix;
    ut::wire::RecordEncoder enc;
    for (const auto &rec : records) {
        enc.encode(rec, payload);
        mix.add(rec);
    }
    // Keep mix.total() == claimCount so the count-vs-mix check does
    // not fire before the condition under test.
    ut::InstrMix claim_mix;
    claim_mix.add(ut::InstrClass::IntAlu, claimCount);
    return buildRaw(key, claimCount, claim_mix, payload);
}

} // namespace

// ---- round trips ----

TEST(TraceIoV2, SyntheticRoundTripBitIdentity)
{
    const std::string path = tempPath("rt_synth.uatrace");
    const auto want = syntheticRecords();
    writeTrace(path, "synth/key", want);

    ut::TraceReader reader(path, "synth/key");
    EXPECT_EQ(reader.count(), want.size());
    EXPECT_EQ(reader.key(), "synth/key");
    ut::InstrRecord rec;
    for (const auto &w : want) {
        ASSERT_TRUE(reader.next(rec));
        expectRecordEqual(w, rec);
    }
    EXPECT_FALSE(reader.next(rec));
    std::remove(path.c_str());
}

TEST(TraceIoV2, KernelTraceRoundTripBitIdentity)
{
    const std::string path = tempPath("rt_kernel.uatrace");
    const KernelSpec spec{KernelId::Sad, 16, false};

    ut::BufferSink want;
    KernelBench direct(spec);
    direct.recordTrace(Variant::Unaligned, 3, want);

    {
        ut::FileSink sink(path, "sad16");
        KernelBench recorder(spec);
        recorder.recordTrace(Variant::Unaligned, 3, sink);
        sink.close();
        EXPECT_TRUE(sink.ok());
        EXPECT_EQ(sink.written(), want.records().size());
    }

    ut::TraceReader reader(path);
    ASSERT_EQ(reader.count(), want.records().size());
    ut::InstrRecord rec;
    for (const auto &w : want.records()) {
        ASSERT_TRUE(reader.next(rec));
        expectRecordEqual(w, rec);
    }
    EXPECT_FALSE(reader.next(rec));

    // The stored mix section matches the stream.
    ut::CountingSink counted;
    for (const auto &w : want.records())
        counted.append(w);
    ut::TraceReader reader2(path);
    for (int c = 0; c < ut::numInstrClasses; ++c) {
        auto cls = static_cast<ut::InstrClass>(c);
        EXPECT_EQ(reader2.mix().count(cls), counted.mix().count(cls));
    }
    std::remove(path.c_str());
}

TEST(TraceIoV2, EmptyTraceRoundTrips)
{
    const std::string path = tempPath("rt_empty.uatrace");
    writeTrace(path, "empty", {});
    ut::TraceReader reader(path, "empty");
    EXPECT_EQ(reader.count(), 0u);
    ut::InstrRecord rec;
    EXPECT_FALSE(reader.next(rec));
    std::remove(path.c_str());
}

TEST(TraceIoV2, SummaryReadsCountAndMixWithoutPayloadDecode)
{
    const std::string path = tempPath("summary.uatrace");
    const auto want = syntheticRecords();
    writeTrace(path, "summary/key", want);

    auto sum = ut::readTraceSummary(path, "summary/key");
    EXPECT_EQ(sum.key, "summary/key");
    EXPECT_EQ(sum.count, want.size());
    EXPECT_EQ(sum.mix.total(), want.size());
    EXPECT_EQ(sum.mix.count(ut::InstrClass::Branch), 2u);

    // The summary path deliberately skips the payload checksum (the
    // mix has its own hash); the full reader still rejects the file.
    std::string bytes = readAll(path);
    bytes.back() = char(bytes.back() ^ 0x5a);
    writeAll(path, bytes);
    EXPECT_NO_THROW(ut::readTraceSummary(path));
    EXPECT_THROW(ut::TraceReader reader(path), std::runtime_error);
    std::remove(path.c_str());
}

// ---- corruption table ----

class TraceIoCorruption : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = tempPath("corrupt.uatrace");
        writeTrace(path_, "corrupt/key", syntheticRecords());
        bytes_ = readAll(path_);
        ASSERT_GT(bytes_.size(), ut::wire::headerBytes);
    }

    void TearDown() override { std::remove(path_.c_str()); }

    /// Rewrite the file with @p bytes and expect open to fail with
    /// @p needle somewhere in the error text.
    void
    expectRejected(const std::string &bytes, const std::string &needle)
    {
        writeAll(path_, bytes);
        try {
            ut::TraceReader reader(path_);
            FAIL() << "expected open to reject (" << needle << ")";
        } catch (const std::runtime_error &e) {
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << "actual error: " << e.what();
        }
    }

    std::string path_;
    std::string bytes_;
};

TEST_F(TraceIoCorruption, TruncatedPayloadRejected)
{
    expectRejected(bytes_.substr(0, bytes_.size() - 1),
                   "header claims");
}

TEST_F(TraceIoCorruption, TruncatedHeaderRejected)
{
    expectRejected(bytes_.substr(0, 20), "truncated header");
}

TEST_F(TraceIoCorruption, TrailingGarbageRejected)
{
    expectRejected(bytes_ + "junk", "header claims");
}

TEST_F(TraceIoCorruption, BadMagicRejected)
{
    std::string b = bytes_;
    b[0] = 'X';
    expectRejected(b, "bad magic");
}

TEST_F(TraceIoCorruption, OldFormatRevisionRejected)
{
    std::string b = bytes_;
    b[7] = '1';  // the UATRACE1 magic
    expectRejected(b, "unsupported trace format revision");
}

TEST_F(TraceIoCorruption, BadVersionFieldRejected)
{
    std::string b = bytes_;
    b[8] = 99;
    expectRejected(b, "unsupported format version");
}

TEST_F(TraceIoCorruption, PayloadChecksumMismatchRejected)
{
    std::string b = bytes_;
    b.back() = char(b.back() ^ 0xff);
    expectRejected(b, "checksum mismatch");
}

TEST_F(TraceIoCorruption, MixSectionTamperRejected)
{
    // First mix byte lives right after the header and the key.
    std::string b = bytes_;
    std::size_t at =
        ut::wire::headerBytes + std::string("corrupt/key").size();
    b[at] = char(b[at] ^ 0x01);
    expectRejected(b, "mix-section hash mismatch");
}

TEST_F(TraceIoCorruption, LyingRecordCountRejected)
{
    // Bump the count field only: the mix total no longer agrees.
    std::string b = bytes_;
    b[16] = char(b[16] + 1);
    expectRejected(b, "disagrees with record count");
}

TEST_F(TraceIoCorruption, KeyHashMismatchRejected)
{
    std::string b = bytes_;
    b[40] = char(b[40] ^ 0x01);
    expectRejected(b, "key hash mismatch");
}

TEST_F(TraceIoCorruption, WrongKeyRejected)
{
    writeAll(path_, bytes_);
    EXPECT_THROW(ut::TraceReader reader(path_, "some/other/key"),
                 std::runtime_error);
}

TEST_F(TraceIoCorruption, ImplausibleCountVsPayloadRejected)
{
    // A consistent-looking header whose count cannot fit in the
    // payload (each record needs >= minRecordBytes).
    ut::InstrMix mix;
    mix.add(ut::InstrClass::IntAlu, 100);
    expectRejected(buildRaw("k", 100, mix, "short"), "inconsistent");
}

TEST_F(TraceIoCorruption, InvalidClassByteRejected)
{
    // Valid checksums over a payload whose tag byte is out of range:
    // caught by next(), not the checksum.
    std::string payload;
    payload += char(0x3f);  // cls 63
    for (int i = 0; i < 5; ++i)
        ut::wire::putVarint(payload, 0);
    ut::InstrMix mix;
    mix.add(ut::InstrClass::IntAlu, 1);
    writeAll(path_, buildRaw("k", 1, mix, payload));
    ut::TraceReader reader(path_);
    ut::InstrRecord rec;
    EXPECT_THROW(reader.next(rec), std::runtime_error);
}

TEST_F(TraceIoCorruption, TakenFlagOnNonBranchRejected)
{
    std::string payload;
    payload += char(std::uint8_t(ut::InstrClass::IntAlu) | 0x80);
    for (int i = 0; i < 5; ++i)
        ut::wire::putVarint(payload, 0);
    ut::InstrMix mix;
    mix.add(ut::InstrClass::IntAlu, 1);
    writeAll(path_, buildRaw("k", 1, mix, payload));
    ut::TraceReader reader(path_);
    ut::InstrRecord rec;
    EXPECT_THROW(reader.next(rec), std::runtime_error);
}

TEST_F(TraceIoCorruption, PayloadShorterThanCountRejectedAtNext)
{
    // Header promises 4 records, payload encodes 2 (hashes all
    // valid): the reader must throw at the missing third record, not
    // return a silent end-of-trace. Wide address/pc deltas make the
    // two records exceed 4 * minRecordBytes, so the open-time length
    // heuristic cannot catch this case - only the decoder can.
    ut::BufferSink fat;
    ut::Emitter em(fat);
    auto loc = std::source_location::current();
    em.emitMem(ut::InstrClass::VecLoadU, 0x123456789abcdefull, 16,
               loc);
    em.emitMem(ut::InstrClass::VecStoreU, 0xfedcba987654321ull, 16,
               loc);
    writeAll(path_, buildRawFromRecords("k", fat.records(), 4));
    ut::TraceReader reader(path_);
    ut::InstrRecord rec;
    EXPECT_TRUE(reader.next(rec));
    EXPECT_TRUE(reader.next(rec));
    EXPECT_THROW(reader.next(rec), std::runtime_error);
}

TEST_F(TraceIoCorruption, PayloadLongerThanCountRejectedAtEnd)
{
    // Header promises 2 records, payload encodes 4: the tail must be
    // flagged instead of silently dropped.
    auto recs = syntheticRecords();
    recs.resize(4);
    writeAll(path_, buildRawFromRecords("k", recs, 2));
    ut::TraceReader reader(path_);
    ut::InstrRecord rec;
    EXPECT_TRUE(reader.next(rec));
    EXPECT_TRUE(reader.next(rec));
    EXPECT_THROW(reader.next(rec), std::runtime_error);
}

TEST(TraceIoV2, MissingFileThrows)
{
    EXPECT_THROW(ut::TraceReader reader("/nonexistent/trace.bin"),
                 std::runtime_error);
}

// ---- FileSink error paths ----

TEST(FileSinkErrors, CloseThrowsOnFullDisk)
{
    if (!fs::exists("/dev/full"))
        GTEST_SKIP() << "/dev/full not available";
    ut::FileSink sink("/dev/full", "k");
    for (const auto &rec : syntheticRecords())
        sink.append(rec);
    EXPECT_THROW(sink.close(), std::runtime_error);
    EXPECT_FALSE(sink.ok());
    // Idempotent after failure: the file is already closed.
    EXPECT_NO_THROW(sink.close());
}

TEST(FileSinkErrors, DestructorReportsInsteadOfThrowing)
{
    if (!fs::exists("/dev/full"))
        GTEST_SKIP() << "/dev/full not available";
    EXPECT_NO_THROW({
        ut::FileSink sink("/dev/full", "k");
        for (const auto &rec : syntheticRecords())
            sink.append(rec);
        // Destructor runs here with pending buffered data.
    });
}

TEST(FileSinkErrors, UnwritablePathThrowsAtConstruction)
{
    EXPECT_THROW(ut::FileSink sink("/nonexistent-dir/trace.bin"),
                 std::runtime_error);
}

TEST(FileSinkErrors, AppendAfterCloseThrowsInsteadOfCorrupting)
{
    const std::string path = tempPath("closed.uatrace");
    ut::FileSink sink(path, "k");
    sink.close();
    EXPECT_THROW(sink.append(syntheticRecords().front()),
                 std::runtime_error);
    std::remove(path.c_str());
}

TEST(FileSinkErrors, RecorderLatchesWriteFailureInsteadOfThrowing)
{
    if (!fs::exists("/dev/full"))
        GTEST_SKIP() << "/dev/full not available";
    // A recording pass must complete even when the write-through
    // target fills up: append() latches the failure, commit() throws
    // instead of publishing, and no entry appears.
    const std::string final_path = tempPath("never_published.uatrace");
    std::remove(final_path.c_str());
    ut::TraceStore::Recorder recorder("/dev/full", final_path, "k");
    const auto recs = syntheticRecords();
    // Enough records to overflow the 1 MiB write buffer and force a
    // flush (and its ENOSPC) mid-recording.
    EXPECT_NO_THROW({
        for (int i = 0; i < 40000; ++i) {
            for (const auto &rec : recs)
                recorder.append(rec);
        }
    });
    EXPECT_THROW(recorder.commit(), std::runtime_error);
    EXPECT_FALSE(fs::exists(final_path));
}

// ---- TraceStore ----

class TraceStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = tempPath("store_") +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name();
        fs::remove_all(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string dir_;
};

TEST_F(TraceStoreTest, MissThenRecordThenHitRoundTrip)
{
    ut::TraceStore store(dir_);
    const std::string key = "job/key/1";
    ut::NullSink null;
    EXPECT_FALSE(store.load(key, null).has_value());
    EXPECT_FALSE(store.loadSummary(key).has_value());

    const auto want = syntheticRecords();
    auto recorder = store.startRecord(key);
    ASSERT_NE(recorder, nullptr);
    for (const auto &rec : want)
        recorder->append(rec);
    recorder->commit();
    EXPECT_TRUE(fs::exists(store.entryPath(key)));

    ut::BufferSink got;
    auto count = store.load(key, got);
    ASSERT_TRUE(count.has_value());
    EXPECT_EQ(*count, want.size());
    ASSERT_EQ(got.records().size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        expectRecordEqual(want[i], got.records()[i]);

    auto sum = store.loadSummary(key);
    ASSERT_TRUE(sum.has_value());
    EXPECT_EQ(sum->count, want.size());
    EXPECT_EQ(sum->key, key);
}

TEST_F(TraceStoreTest, EntryPathEncodesFormatVersion)
{
    ut::TraceStore store(dir_);
    auto path = store.entryPath("k");
    EXPECT_NE(path.find("-v" +
                        std::to_string(ut::wire::formatVersion) +
                        ".uatrace"),
              std::string::npos);
    // Distinct keys address distinct entries.
    EXPECT_NE(store.entryPath("a"), store.entryPath("b"));
}

TEST_F(TraceStoreTest, CorruptEntryIsReportedRemovedAndMissed)
{
    ut::TraceStore store(dir_);
    const std::string key = "job/key/corrupt";
    auto recorder = store.startRecord(key);
    ASSERT_NE(recorder, nullptr);
    for (const auto &rec : syntheticRecords())
        recorder->append(rec);
    recorder->commit();

    // Truncate the published entry.
    const auto path = store.entryPath(key);
    fs::resize_file(path, fs::file_size(path) - 3);

    ut::BufferSink got;
    EXPECT_FALSE(store.load(key, got).has_value());
    EXPECT_FALSE(fs::exists(path)) << "corrupt entry must be removed";
    EXPECT_FALSE(store.loadSummary(key).has_value());
}

TEST_F(TraceStoreTest, KeyCollisionIsAMissAndNeverEvictsTheVictim)
{
    // Simulate a 64-bit content-address collision by planting a
    // valid entry for one key at another key's path: the load must
    // miss (the stored key is verified byte-for-byte) but the
    // victim's valid file must survive.
    ut::TraceStore store(dir_);
    auto recorder = store.startRecord("victim/key");
    ASSERT_NE(recorder, nullptr);
    for (const auto &rec : syntheticRecords())
        recorder->append(rec);
    recorder->commit();
    fs::copy_file(store.entryPath("victim/key"),
                  store.entryPath("other/key"));

    ut::NullSink null;
    EXPECT_FALSE(store.load("other/key", null).has_value());
    EXPECT_FALSE(store.loadSummary("other/key").has_value());
    EXPECT_TRUE(fs::exists(store.entryPath("other/key")))
        << "a colliding load must not delete the victim's entry";
}

TEST_F(TraceStoreTest, AbandonedRecorderPublishesNothing)
{
    ut::TraceStore store(dir_);
    const std::string key = "job/key/abandoned";
    {
        auto recorder = store.startRecord(key);
        ASSERT_NE(recorder, nullptr);
        for (const auto &rec : syntheticRecords())
            recorder->append(rec);
        // No commit(): destructor must clean up the temp file.
    }
    EXPECT_FALSE(fs::exists(store.entryPath(key)));
    EXPECT_TRUE(fs::is_empty(dir_));
}

TEST_F(TraceStoreTest, StaleTempFilesAreSweptFreshOnesSurvive)
{
    fs::create_directories(dir_);
    const auto stale = fs::path(dir_) / "tr-0.uatrace.tmp-dead-0";
    const auto fresh = fs::path(dir_) / "tr-1.uatrace.tmp-live-0";
    const auto entry = fs::path(dir_) / "tr-2-v2.uatrace";
    writeAll(stale.string(), "x");
    writeAll(fresh.string(), "x");
    writeAll(entry.string(), "x");
    // Age the stale temp past the GC cutoff; the fresh one keeps its
    // current mtime (a live writer in another process).
    fs::last_write_time(stale, fs::file_time_type::clock::now() -
                                   std::chrono::hours(2));

    ut::TraceStore store(dir_);
    EXPECT_FALSE(fs::exists(stale)) << "orphaned temp must be swept";
    EXPECT_TRUE(fs::exists(fresh)) << "recent temp must survive";
    EXPECT_TRUE(fs::exists(entry)) << "entries must never be swept";
}

TEST_F(TraceStoreTest, UncreatableDirectoryThrows)
{
    EXPECT_THROW(ut::TraceStore store("/proc/uasim-no-such-store"),
                 std::runtime_error);
    EXPECT_THROW(ut::TraceStore store(""), std::runtime_error);
}

// ---- block decoder (RecordDecoder::decodeBlock / nextBlock) ----

namespace {

/// Canonical random record stream: every class, deps always < id (or
/// absent), meaningless fields zeroed exactly as the Emitter would,
/// ids/pcs/addrs with occasional huge jumps so varints of every width
/// (1..10 bytes) appear in the payload.
std::vector<ut::InstrRecord>
randomRecords(std::uint64_t seed, std::size_t n)
{
    std::mt19937_64 rng(seed);
    std::vector<ut::InstrRecord> recs;
    recs.reserve(n);
    std::uint64_t id = 0, pc = 0x10000;
    for (std::size_t i = 0; i < n; ++i) {
        ut::InstrRecord rec{};
        id += (rng() % 16 == 0) ? (rng() >> 16) + 1 : 1 + rng() % 3;
        rec.id = id;
        pc += (rng() % 8 == 0) ? std::uint64_t(rng()) : 4;
        rec.pc = pc;
        rec.cls = static_cast<ut::InstrClass>(
            rng() % std::uint64_t(ut::numInstrClasses));
        if (rec.cls == ut::InstrClass::Branch)
            rec.taken = (rng() & 1) != 0;
        if (rec.isMem()) {
            // Mask to varying widths so addr deltas span the whole
            // varint range, including sign flips (zigzag exercise).
            rec.addr = rng() & ((std::uint64_t(1) << (1 + rng() % 63)) - 1);
            rec.size = std::uint8_t(1 + rng() % 255);
        }
        for (auto &dep : rec.deps)
            if (rec.id > 1 && rng() % 3 == 0)
                dep = rec.id - 1 - rng() % std::min<std::uint64_t>(
                                             rec.id - 1, 4096);
        recs.push_back(rec);
    }
    return recs;
}

/// Encode @p recs into one contiguous payload.
std::string
encodeAll(const std::vector<ut::InstrRecord> &recs)
{
    std::string payload;
    ut::wire::RecordEncoder enc;
    for (const auto &rec : recs)
        enc.encode(rec, payload);
    return payload;
}

} // namespace

TEST(TraceBlockDecode, MatchesScalarForEveryBlockSize)
{
    const auto want = randomRecords(0xb10cdec0de, 3000);
    const std::string payload = encodeAll(want);
    const auto *base =
        reinterpret_cast<const std::uint8_t *>(payload.data());
    const auto *end = base + payload.size();

    // Scalar reference decode.
    {
        ut::wire::RecordDecoder dec;
        const std::uint8_t *p = base;
        for (const auto &w : want) {
            ut::InstrRecord got;
            dec.decode(p, end, got);
            expectRecordEqual(w, got);
        }
        ASSERT_EQ(p, end);
    }

    // Block decode at sizes below, straddling, and above the payload,
    // verifying the stream position after every call (the checked/
    // unchecked boundary must consume exactly the same bytes).
    for (std::size_t blockSize : {std::size_t(1), std::size_t(2),
                                  std::size_t(7), std::size_t(64),
                                  std::size_t(256), std::size_t(999),
                                  want.size(), want.size() + 17}) {
        ut::wire::RecordDecoder scalar;
        ut::wire::RecordDecoder block;
        const std::uint8_t *ps = base;
        const std::uint8_t *pb = base;
        std::vector<ut::InstrRecord> out(blockSize);
        std::size_t total = 0;
        while (pb != end) {
            std::size_t got =
                block.decodeBlock(pb, end, out.data(), blockSize);
            ASSERT_GT(got, 0u);
            for (std::size_t i = 0; i < got; ++i) {
                ut::InstrRecord ref;
                scalar.decode(ps, end, ref);
                expectRecordEqual(ref, out[i]);
            }
            ASSERT_EQ(pb, ps) << "block size " << blockSize
                              << " diverged after " << total;
            total += got;
        }
        EXPECT_EQ(total, want.size()) << "block size " << blockSize;
        EXPECT_EQ(block.decodeBlock(pb, end, out.data(), blockSize),
                  0u);
    }
}

TEST(TraceBlockDecode, CleanPrefixReturnsShortMidRecordCutThrows)
{
    const auto want = randomRecords(77, 400);
    const std::string payload = encodeAll(want);
    const auto *base =
        reinterpret_cast<const std::uint8_t *>(payload.data());

    // Record boundaries, from a scalar decode of the full payload.
    std::vector<std::size_t> bounds;  // offset after record i
    {
        ut::wire::RecordDecoder dec;
        const std::uint8_t *p = base;
        const std::uint8_t *end = base + payload.size();
        ut::InstrRecord rec;
        for (std::size_t i = 0; i < want.size(); ++i) {
            dec.decode(p, end, rec);
            bounds.push_back(std::size_t(p - base));
        }
    }

    // A buffer ending exactly on a record boundary decodes clean and
    // returns short; the same buffer one byte shorter throws exactly
    // the scalar decoder's truncation error. Probe boundaries on
    // both sides of the 62-byte checked/unchecked switchover.
    for (std::size_t cut : {std::size_t(0), std::size_t(1),
                            std::size_t(5), bounds.size() / 2,
                            bounds.size() - 2}) {
        const std::size_t k = cut + 1;  // records before the cut
        const std::uint8_t *end = base + bounds[cut];
        {
            ut::wire::RecordDecoder dec;
            const std::uint8_t *p = base;
            std::vector<ut::InstrRecord> out(want.size());
            std::size_t got =
                dec.decodeBlock(p, end, out.data(), out.size());
            EXPECT_EQ(got, k);
            EXPECT_EQ(p, end);
        }
        {
            ut::wire::RecordDecoder dec;
            const std::uint8_t *p = base;
            std::vector<ut::InstrRecord> out(want.size());
            EXPECT_THROW(
                dec.decodeBlock(p, end - 1, out.data(), out.size()),
                std::runtime_error);
        }
    }
}

TEST(TraceBlockDecode, FastPathErrorsMatchScalarErrors)
{
    // Malformed payloads padded far past maxRecordBytes so the block
    // decoder takes the unchecked fast path; the thrown message must
    // be identical to scalar decode() on the same bytes.
    const std::string pad(4 * ut::wire::maxRecordBytes, '\0');
    struct Case {
        const char *name;
        std::string payload;
    };
    std::vector<Case> cases;
    {
        // Over-long varint: 11 continuation bytes in the id field.
        std::string p(1, '\0');  // IntAlu tag
        p.append(11, char(0x80));
        p += '\0';
        cases.push_back({"overlong varint", p + pad});
    }
    cases.push_back(
        {"invalid class", std::string(1, char(0x7f)) + pad});
    {
        // Taken flag on a non-branch (IntAlu tag with bit 7).
        cases.push_back(
            {"taken on non-branch", std::string(1, char(0x80)) + pad});
    }
    for (const auto &c : cases) {
        const auto *base =
            reinterpret_cast<const std::uint8_t *>(c.payload.data());
        const auto *end = base + c.payload.size();
        std::string scalarErr, blockErr;
        {
            ut::wire::RecordDecoder dec;
            const std::uint8_t *p = base;
            ut::InstrRecord rec;
            try {
                dec.decode(p, end, rec);
            } catch (const std::runtime_error &e) {
                scalarErr = e.what();
            }
        }
        {
            ut::wire::RecordDecoder dec;
            const std::uint8_t *p = base;
            ut::InstrRecord out[4];
            try {
                dec.decodeBlock(p, end, out, 4);
            } catch (const std::runtime_error &e) {
                blockErr = e.what();
            }
        }
        EXPECT_FALSE(scalarErr.empty()) << c.name;
        EXPECT_EQ(scalarErr, blockErr) << c.name;
    }
}

TEST(TraceBlockDecode, NextBlockMatchesNextAndInterleaves)
{
    const std::string path = tempPath("block_reader.uatrace");
    const auto want = randomRecords(0xfeed, 2500);
    writeTrace(path, "block-key", want);

    ut::TraceReader scalar(path, "block-key");
    ut::TraceReader blocked(path, "block-key");
    std::vector<ut::InstrRecord> got;
    ut::InstrRecord buf[97];
    // Interleave nextBlock with scalar next() on one reader: they
    // share a decode stream.
    int turn = 0;
    while (true) {
        if (++turn % 3 == 0) {
            ut::InstrRecord rec;
            if (!blocked.next(rec))
                break;
            got.push_back(rec);
        } else {
            std::size_t n = blocked.nextBlock(buf, 97);
            if (n == 0)
                break;
            got.insert(got.end(), buf, buf + n);
        }
    }
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        ut::InstrRecord ref;
        ASSERT_TRUE(scalar.next(ref));
        expectRecordEqual(ref, got[i]);
    }
    EXPECT_EQ(blocked.nextBlock(buf, 97), 0u);
    std::remove(path.c_str());
}

TEST(TraceBlockDecode, DrainToEqualsPerRecordReplay)
{
    const std::string path = tempPath("block_drain.uatrace");
    const auto want = randomRecords(0xd1a1, 1200);
    writeTrace(path, "", want);

    ut::BufferSink drained;
    {
        ut::TraceReader reader(path);
        EXPECT_EQ(reader.drainTo(drained), want.size());
    }
    ASSERT_EQ(drained.records().size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        expectRecordEqual(want[i], drained.records()[i]);
    std::remove(path.c_str());
}

TEST(TraceBlockDecode, NextBlockRejectsPayloadShorterThanCount)
{
    // Mirror of PayloadShorterThanCountRejectedAtNext for the block
    // path: the header claims more records than the payload encodes,
    // so the final (partial) block must throw, never report a clean
    // end-of-trace.
    const std::string path = tempPath("block_short.uatrace");
    const auto recs = syntheticRecords();
    writeAll(path,
             buildRawFromRecords("", recs, recs.size() + 3));
    ut::TraceReader reader(path);
    ut::InstrRecord buf[64];
    std::size_t drained = 0;
    EXPECT_THROW(
        {
            while (std::size_t n = reader.nextBlock(buf, 64))
                drained += n;
        },
        std::runtime_error);
    EXPECT_LE(drained, recs.size());
    std::remove(path.c_str());
}
