/**
 * @file
 * Locks the UATRACE2 serialization layer and the persistent trace
 * store (trace/trace_io.hh, trace/trace_store.hh):
 *  - record -> file -> replay round trips are bit-identical to the
 *    in-memory stream, for synthetic and real kernel traces;
 *  - the store hits/misses correctly, self-heals corrupt entries,
 *    and never publishes an uncommitted recording;
 *  - every corruption mode in the table (truncation, bad magic, bad
 *    version, wrong checksum, lying header counts, invalid class
 *    bytes) is rejected with a clear error instead of being read as
 *    data;
 *  - FileSink surfaces write failures (throw from close(), report
 *    from the destructor) instead of leaving a truncated trace with
 *    a valid-looking header - the PR 4 bug class.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <source_location>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "trace/emitter.hh"
#include "trace/sink.hh"
#include "trace/trace_io.hh"
#include "trace/trace_store.hh"

namespace fs = std::filesystem;
namespace ut = uasim::trace;
using uasim::core::KernelBench;
using uasim::core::KernelSpec;
using uasim::h264::KernelId;
using uasim::h264::Variant;

namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "/uasim_" + name;
}

/// A varied record stream: every class, unaligned/decreasing
/// addresses, taken and untaken branches, near and far deps.
std::vector<ut::InstrRecord>
syntheticRecords()
{
    ut::BufferSink buf;
    ut::Emitter em(buf);
    auto loc = std::source_location::current();
    ut::Dep d0 = em.emit(ut::InstrClass::IntAlu, loc);
    ut::Dep d1 = em.emit(ut::InstrClass::IntMul, loc, d0);
    em.emit(ut::InstrClass::FpAlu, loc, d0, d1);
    ut::Dep ld = em.emitMem(ut::InstrClass::Load, 0x1000, 8, loc, d1);
    em.emitMem(ut::InstrClass::Store, 0x0fff, 4, loc, ld);  // addr down
    em.emitMem(ut::InstrClass::VecLoad, 0xdeadbef0, 16, loc);
    em.emitMem(ut::InstrClass::VecLoadU, 0xdeadbeef, 16, loc);
    em.emitMem(ut::InstrClass::VecStore, 0x10, 16, loc, d0);
    em.emitMem(ut::InstrClass::VecStoreU, 0xffffffffffff0ull, 16, loc);
    em.emit(ut::InstrClass::VecSimple, loc, ld);
    em.emit(ut::InstrClass::VecComplex, loc);
    em.emit(ut::InstrClass::VecPerm, loc);
    em.emitBranch(true, loc, d0);
    em.emitBranch(false, loc);
    em.emit(ut::InstrClass::IntAlu, loc, d0);  // far dep
    return buf.records();
}

void
expectRecordEqual(const ut::InstrRecord &want,
                  const ut::InstrRecord &got)
{
    EXPECT_EQ(want.id, got.id);
    EXPECT_EQ(want.pc, got.pc);
    EXPECT_EQ(want.addr, got.addr);
    EXPECT_EQ(want.deps, got.deps);
    EXPECT_EQ(want.cls, got.cls);
    EXPECT_EQ(want.size, got.size);
    EXPECT_EQ(want.taken, got.taken);
}

void
writeTrace(const std::string &path, const std::string &key,
           const std::vector<ut::InstrRecord> &records)
{
    ut::FileSink sink(path, key);
    for (const auto &rec : records)
        sink.append(rec);
    sink.close();
}

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
writeAll(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), std::streamsize(bytes.size()));
}

/// Assemble raw file bytes with self-consistent hashes; corruption
/// tests then tamper with individual sections.
std::string
buildRaw(const std::string &key, std::uint64_t count,
         const ut::InstrMix &mix, const std::string &payload)
{
    ut::wire::Header h;
    h.keyBytes = std::uint32_t(key.size());
    h.recordCount = count;
    h.payloadBytes = payload.size();
    h.payloadHash = ut::wire::fnv1a(payload.data(), payload.size());
    h.keyHash = ut::wire::fnv1a(key.data(), key.size());
    std::string mix_section = ut::wire::serializeMix(mix);
    h.mixHash =
        ut::wire::fnv1a(mix_section.data(), mix_section.size());
    return h.serialize() + key + mix_section + payload;
}

/// Encode @p records and build a fully consistent raw file, with the
/// header record count overridable to simulate a lying writer.
std::string
buildRawFromRecords(const std::string &key,
                    const std::vector<ut::InstrRecord> &records,
                    std::uint64_t claimCount)
{
    std::string payload;
    ut::InstrMix mix;
    ut::wire::RecordEncoder enc;
    for (const auto &rec : records) {
        enc.encode(rec, payload);
        mix.add(rec);
    }
    // Keep mix.total() == claimCount so the count-vs-mix check does
    // not fire before the condition under test.
    ut::InstrMix claim_mix;
    claim_mix.add(ut::InstrClass::IntAlu, claimCount);
    return buildRaw(key, claimCount, claim_mix, payload);
}

} // namespace

// ---- round trips ----

TEST(TraceIoV2, SyntheticRoundTripBitIdentity)
{
    const std::string path = tempPath("rt_synth.uatrace");
    const auto want = syntheticRecords();
    writeTrace(path, "synth/key", want);

    ut::TraceReader reader(path, "synth/key");
    EXPECT_EQ(reader.count(), want.size());
    EXPECT_EQ(reader.key(), "synth/key");
    ut::InstrRecord rec;
    for (const auto &w : want) {
        ASSERT_TRUE(reader.next(rec));
        expectRecordEqual(w, rec);
    }
    EXPECT_FALSE(reader.next(rec));
    std::remove(path.c_str());
}

TEST(TraceIoV2, KernelTraceRoundTripBitIdentity)
{
    const std::string path = tempPath("rt_kernel.uatrace");
    const KernelSpec spec{KernelId::Sad, 16, false};

    ut::BufferSink want;
    KernelBench direct(spec);
    direct.recordTrace(Variant::Unaligned, 3, want);

    {
        ut::FileSink sink(path, "sad16");
        KernelBench recorder(spec);
        recorder.recordTrace(Variant::Unaligned, 3, sink);
        sink.close();
        EXPECT_TRUE(sink.ok());
        EXPECT_EQ(sink.written(), want.records().size());
    }

    ut::TraceReader reader(path);
    ASSERT_EQ(reader.count(), want.records().size());
    ut::InstrRecord rec;
    for (const auto &w : want.records()) {
        ASSERT_TRUE(reader.next(rec));
        expectRecordEqual(w, rec);
    }
    EXPECT_FALSE(reader.next(rec));

    // The stored mix section matches the stream.
    ut::CountingSink counted;
    for (const auto &w : want.records())
        counted.append(w);
    ut::TraceReader reader2(path);
    for (int c = 0; c < ut::numInstrClasses; ++c) {
        auto cls = static_cast<ut::InstrClass>(c);
        EXPECT_EQ(reader2.mix().count(cls), counted.mix().count(cls));
    }
    std::remove(path.c_str());
}

TEST(TraceIoV2, EmptyTraceRoundTrips)
{
    const std::string path = tempPath("rt_empty.uatrace");
    writeTrace(path, "empty", {});
    ut::TraceReader reader(path, "empty");
    EXPECT_EQ(reader.count(), 0u);
    ut::InstrRecord rec;
    EXPECT_FALSE(reader.next(rec));
    std::remove(path.c_str());
}

TEST(TraceIoV2, SummaryReadsCountAndMixWithoutPayloadDecode)
{
    const std::string path = tempPath("summary.uatrace");
    const auto want = syntheticRecords();
    writeTrace(path, "summary/key", want);

    auto sum = ut::readTraceSummary(path, "summary/key");
    EXPECT_EQ(sum.key, "summary/key");
    EXPECT_EQ(sum.count, want.size());
    EXPECT_EQ(sum.mix.total(), want.size());
    EXPECT_EQ(sum.mix.count(ut::InstrClass::Branch), 2u);

    // The summary path deliberately skips the payload checksum (the
    // mix has its own hash); the full reader still rejects the file.
    std::string bytes = readAll(path);
    bytes.back() = char(bytes.back() ^ 0x5a);
    writeAll(path, bytes);
    EXPECT_NO_THROW(ut::readTraceSummary(path));
    EXPECT_THROW(ut::TraceReader reader(path), std::runtime_error);
    std::remove(path.c_str());
}

// ---- corruption table ----

class TraceIoCorruption : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = tempPath("corrupt.uatrace");
        writeTrace(path_, "corrupt/key", syntheticRecords());
        bytes_ = readAll(path_);
        ASSERT_GT(bytes_.size(), ut::wire::headerBytes);
    }

    void TearDown() override { std::remove(path_.c_str()); }

    /// Rewrite the file with @p bytes and expect open to fail with
    /// @p needle somewhere in the error text.
    void
    expectRejected(const std::string &bytes, const std::string &needle)
    {
        writeAll(path_, bytes);
        try {
            ut::TraceReader reader(path_);
            FAIL() << "expected open to reject (" << needle << ")";
        } catch (const std::runtime_error &e) {
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << "actual error: " << e.what();
        }
    }

    std::string path_;
    std::string bytes_;
};

TEST_F(TraceIoCorruption, TruncatedPayloadRejected)
{
    expectRejected(bytes_.substr(0, bytes_.size() - 1),
                   "header claims");
}

TEST_F(TraceIoCorruption, TruncatedHeaderRejected)
{
    expectRejected(bytes_.substr(0, 20), "truncated header");
}

TEST_F(TraceIoCorruption, TrailingGarbageRejected)
{
    expectRejected(bytes_ + "junk", "header claims");
}

TEST_F(TraceIoCorruption, BadMagicRejected)
{
    std::string b = bytes_;
    b[0] = 'X';
    expectRejected(b, "bad magic");
}

TEST_F(TraceIoCorruption, OldFormatRevisionRejected)
{
    std::string b = bytes_;
    b[7] = '1';  // the UATRACE1 magic
    expectRejected(b, "unsupported trace format revision");
}

TEST_F(TraceIoCorruption, BadVersionFieldRejected)
{
    std::string b = bytes_;
    b[8] = 99;
    expectRejected(b, "unsupported format version");
}

TEST_F(TraceIoCorruption, PayloadChecksumMismatchRejected)
{
    std::string b = bytes_;
    b.back() = char(b.back() ^ 0xff);
    expectRejected(b, "checksum mismatch");
}

TEST_F(TraceIoCorruption, MixSectionTamperRejected)
{
    // First mix byte lives right after the header and the key.
    std::string b = bytes_;
    std::size_t at =
        ut::wire::headerBytes + std::string("corrupt/key").size();
    b[at] = char(b[at] ^ 0x01);
    expectRejected(b, "mix-section hash mismatch");
}

TEST_F(TraceIoCorruption, LyingRecordCountRejected)
{
    // Bump the count field only: the mix total no longer agrees.
    std::string b = bytes_;
    b[16] = char(b[16] + 1);
    expectRejected(b, "disagrees with record count");
}

TEST_F(TraceIoCorruption, KeyHashMismatchRejected)
{
    std::string b = bytes_;
    b[40] = char(b[40] ^ 0x01);
    expectRejected(b, "key hash mismatch");
}

TEST_F(TraceIoCorruption, WrongKeyRejected)
{
    writeAll(path_, bytes_);
    EXPECT_THROW(ut::TraceReader reader(path_, "some/other/key"),
                 std::runtime_error);
}

TEST_F(TraceIoCorruption, ImplausibleCountVsPayloadRejected)
{
    // A consistent-looking header whose count cannot fit in the
    // payload (each record needs >= minRecordBytes).
    ut::InstrMix mix;
    mix.add(ut::InstrClass::IntAlu, 100);
    expectRejected(buildRaw("k", 100, mix, "short"), "inconsistent");
}

TEST_F(TraceIoCorruption, InvalidClassByteRejected)
{
    // Valid checksums over a payload whose tag byte is out of range:
    // caught by next(), not the checksum.
    std::string payload;
    payload += char(0x3f);  // cls 63
    for (int i = 0; i < 5; ++i)
        ut::wire::putVarint(payload, 0);
    ut::InstrMix mix;
    mix.add(ut::InstrClass::IntAlu, 1);
    writeAll(path_, buildRaw("k", 1, mix, payload));
    ut::TraceReader reader(path_);
    ut::InstrRecord rec;
    EXPECT_THROW(reader.next(rec), std::runtime_error);
}

TEST_F(TraceIoCorruption, TakenFlagOnNonBranchRejected)
{
    std::string payload;
    payload += char(std::uint8_t(ut::InstrClass::IntAlu) | 0x80);
    for (int i = 0; i < 5; ++i)
        ut::wire::putVarint(payload, 0);
    ut::InstrMix mix;
    mix.add(ut::InstrClass::IntAlu, 1);
    writeAll(path_, buildRaw("k", 1, mix, payload));
    ut::TraceReader reader(path_);
    ut::InstrRecord rec;
    EXPECT_THROW(reader.next(rec), std::runtime_error);
}

TEST_F(TraceIoCorruption, PayloadShorterThanCountRejectedAtNext)
{
    // Header promises 4 records, payload encodes 2 (hashes all
    // valid): the reader must throw at the missing third record, not
    // return a silent end-of-trace. Wide address/pc deltas make the
    // two records exceed 4 * minRecordBytes, so the open-time length
    // heuristic cannot catch this case - only the decoder can.
    ut::BufferSink fat;
    ut::Emitter em(fat);
    auto loc = std::source_location::current();
    em.emitMem(ut::InstrClass::VecLoadU, 0x123456789abcdefull, 16,
               loc);
    em.emitMem(ut::InstrClass::VecStoreU, 0xfedcba987654321ull, 16,
               loc);
    writeAll(path_, buildRawFromRecords("k", fat.records(), 4));
    ut::TraceReader reader(path_);
    ut::InstrRecord rec;
    EXPECT_TRUE(reader.next(rec));
    EXPECT_TRUE(reader.next(rec));
    EXPECT_THROW(reader.next(rec), std::runtime_error);
}

TEST_F(TraceIoCorruption, PayloadLongerThanCountRejectedAtEnd)
{
    // Header promises 2 records, payload encodes 4: the tail must be
    // flagged instead of silently dropped.
    auto recs = syntheticRecords();
    recs.resize(4);
    writeAll(path_, buildRawFromRecords("k", recs, 2));
    ut::TraceReader reader(path_);
    ut::InstrRecord rec;
    EXPECT_TRUE(reader.next(rec));
    EXPECT_TRUE(reader.next(rec));
    EXPECT_THROW(reader.next(rec), std::runtime_error);
}

TEST(TraceIoV2, MissingFileThrows)
{
    EXPECT_THROW(ut::TraceReader reader("/nonexistent/trace.bin"),
                 std::runtime_error);
}

// ---- FileSink error paths ----

TEST(FileSinkErrors, CloseThrowsOnFullDisk)
{
    if (!fs::exists("/dev/full"))
        GTEST_SKIP() << "/dev/full not available";
    ut::FileSink sink("/dev/full", "k");
    for (const auto &rec : syntheticRecords())
        sink.append(rec);
    EXPECT_THROW(sink.close(), std::runtime_error);
    EXPECT_FALSE(sink.ok());
    // Idempotent after failure: the file is already closed.
    EXPECT_NO_THROW(sink.close());
}

TEST(FileSinkErrors, DestructorReportsInsteadOfThrowing)
{
    if (!fs::exists("/dev/full"))
        GTEST_SKIP() << "/dev/full not available";
    EXPECT_NO_THROW({
        ut::FileSink sink("/dev/full", "k");
        for (const auto &rec : syntheticRecords())
            sink.append(rec);
        // Destructor runs here with pending buffered data.
    });
}

TEST(FileSinkErrors, UnwritablePathThrowsAtConstruction)
{
    EXPECT_THROW(ut::FileSink sink("/nonexistent-dir/trace.bin"),
                 std::runtime_error);
}

TEST(FileSinkErrors, AppendAfterCloseThrowsInsteadOfCorrupting)
{
    const std::string path = tempPath("closed.uatrace");
    ut::FileSink sink(path, "k");
    sink.close();
    EXPECT_THROW(sink.append(syntheticRecords().front()),
                 std::runtime_error);
    std::remove(path.c_str());
}

TEST(FileSinkErrors, RecorderLatchesWriteFailureInsteadOfThrowing)
{
    if (!fs::exists("/dev/full"))
        GTEST_SKIP() << "/dev/full not available";
    // A recording pass must complete even when the write-through
    // target fills up: append() latches the failure, commit() throws
    // instead of publishing, and no entry appears.
    const std::string final_path = tempPath("never_published.uatrace");
    std::remove(final_path.c_str());
    ut::TraceStore::Recorder recorder("/dev/full", final_path, "k");
    const auto recs = syntheticRecords();
    // Enough records to overflow the 1 MiB write buffer and force a
    // flush (and its ENOSPC) mid-recording.
    EXPECT_NO_THROW({
        for (int i = 0; i < 40000; ++i) {
            for (const auto &rec : recs)
                recorder.append(rec);
        }
    });
    EXPECT_THROW(recorder.commit(), std::runtime_error);
    EXPECT_FALSE(fs::exists(final_path));
}

// ---- TraceStore ----

class TraceStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = tempPath("store_") +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name();
        fs::remove_all(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string dir_;
};

TEST_F(TraceStoreTest, MissThenRecordThenHitRoundTrip)
{
    ut::TraceStore store(dir_);
    const std::string key = "job/key/1";
    ut::NullSink null;
    EXPECT_FALSE(store.load(key, null).has_value());
    EXPECT_FALSE(store.loadSummary(key).has_value());

    const auto want = syntheticRecords();
    auto recorder = store.startRecord(key);
    ASSERT_NE(recorder, nullptr);
    for (const auto &rec : want)
        recorder->append(rec);
    recorder->commit();
    EXPECT_TRUE(fs::exists(store.entryPath(key)));

    ut::BufferSink got;
    auto count = store.load(key, got);
    ASSERT_TRUE(count.has_value());
    EXPECT_EQ(*count, want.size());
    ASSERT_EQ(got.records().size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        expectRecordEqual(want[i], got.records()[i]);

    auto sum = store.loadSummary(key);
    ASSERT_TRUE(sum.has_value());
    EXPECT_EQ(sum->count, want.size());
    EXPECT_EQ(sum->key, key);
}

TEST_F(TraceStoreTest, EntryPathEncodesFormatVersion)
{
    ut::TraceStore store(dir_);
    auto path = store.entryPath("k");
    EXPECT_NE(path.find("-v" +
                        std::to_string(ut::wire::formatVersion) +
                        ".uatrace"),
              std::string::npos);
    // Distinct keys address distinct entries.
    EXPECT_NE(store.entryPath("a"), store.entryPath("b"));
}

TEST_F(TraceStoreTest, CorruptEntryIsReportedRemovedAndMissed)
{
    ut::TraceStore store(dir_);
    const std::string key = "job/key/corrupt";
    auto recorder = store.startRecord(key);
    ASSERT_NE(recorder, nullptr);
    for (const auto &rec : syntheticRecords())
        recorder->append(rec);
    recorder->commit();

    // Truncate the published entry.
    const auto path = store.entryPath(key);
    fs::resize_file(path, fs::file_size(path) - 3);

    ut::BufferSink got;
    EXPECT_FALSE(store.load(key, got).has_value());
    EXPECT_FALSE(fs::exists(path)) << "corrupt entry must be removed";
    EXPECT_FALSE(store.loadSummary(key).has_value());
}

TEST_F(TraceStoreTest, KeyCollisionIsAMissAndNeverEvictsTheVictim)
{
    // Simulate a 64-bit content-address collision by planting a
    // valid entry for one key at another key's path: the load must
    // miss (the stored key is verified byte-for-byte) but the
    // victim's valid file must survive.
    ut::TraceStore store(dir_);
    auto recorder = store.startRecord("victim/key");
    ASSERT_NE(recorder, nullptr);
    for (const auto &rec : syntheticRecords())
        recorder->append(rec);
    recorder->commit();
    fs::copy_file(store.entryPath("victim/key"),
                  store.entryPath("other/key"));

    ut::NullSink null;
    EXPECT_FALSE(store.load("other/key", null).has_value());
    EXPECT_FALSE(store.loadSummary("other/key").has_value());
    EXPECT_TRUE(fs::exists(store.entryPath("other/key")))
        << "a colliding load must not delete the victim's entry";
}

TEST_F(TraceStoreTest, AbandonedRecorderPublishesNothing)
{
    ut::TraceStore store(dir_);
    const std::string key = "job/key/abandoned";
    {
        auto recorder = store.startRecord(key);
        ASSERT_NE(recorder, nullptr);
        for (const auto &rec : syntheticRecords())
            recorder->append(rec);
        // No commit(): destructor must clean up the temp file.
    }
    EXPECT_FALSE(fs::exists(store.entryPath(key)));
    EXPECT_TRUE(fs::is_empty(dir_));
}

TEST_F(TraceStoreTest, StaleTempFilesAreSweptFreshOnesSurvive)
{
    fs::create_directories(dir_);
    const auto stale = fs::path(dir_) / "tr-0.uatrace.tmp-dead-0";
    const auto fresh = fs::path(dir_) / "tr-1.uatrace.tmp-live-0";
    const auto entry = fs::path(dir_) / "tr-2-v2.uatrace";
    writeAll(stale.string(), "x");
    writeAll(fresh.string(), "x");
    writeAll(entry.string(), "x");
    // Age the stale temp past the GC cutoff; the fresh one keeps its
    // current mtime (a live writer in another process).
    fs::last_write_time(stale, fs::file_time_type::clock::now() -
                                   std::chrono::hours(2));

    ut::TraceStore store(dir_);
    EXPECT_FALSE(fs::exists(stale)) << "orphaned temp must be swept";
    EXPECT_TRUE(fs::exists(fresh)) << "recent temp must survive";
    EXPECT_TRUE(fs::exists(entry)) << "entries must never be swept";
}

TEST_F(TraceStoreTest, UncreatableDirectoryThrows)
{
    EXPECT_THROW(ut::TraceStore store("/proc/uasim-no-such-store"),
                 std::runtime_error);
    EXPECT_THROW(ut::TraceStore store(""), std::runtime_error);
}
