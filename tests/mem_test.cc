/**
 * @file
 * Unit tests for the cache and memory-hierarchy models.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/hierarchy.hh"

using namespace uasim::mem;

TEST(Cache, GeometryDerivation)
{
    Cache c({"L1", 32 * 1024, 128, 2});
    EXPECT_EQ(c.numSets(), 128u);
    EXPECT_EQ(c.lineAddr(0x12345), 0x12345ull & ~127ull);
}

TEST(Cache, HitAfterMiss)
{
    Cache c({"L1", 32 * 1024, 128, 2});
    EXPECT_FALSE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x107f, false));  // same line
    EXPECT_FALSE(c.access(0x1080, false)); // next line
    EXPECT_EQ(c.stats().accesses, 4u);
    EXPECT_EQ(c.stats().hits, 2u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruEviction)
{
    // 2-way set: three conflicting lines evict the least recent.
    Cache c({"tiny", 1024, 128, 2});  // 4 sets
    std::uint64_t set_stride = 128 * 4;
    std::uint64_t a = 0, b = set_stride, d = 2 * set_stride;
    c.access(a, false);
    c.access(b, false);
    c.access(a, false);   // a most recent
    c.access(d, false);   // evicts b
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, WritebackOnDirtyEviction)
{
    Cache c({"tiny", 1024, 128, 2});
    std::uint64_t set_stride = 128 * 4;
    c.access(0, true);                 // dirty
    c.access(set_stride, false);
    c.access(2 * set_stride, false);   // evicts dirty line 0
    EXPECT_EQ(c.stats().writebacks, 1u);
    c.access(3 * set_stride, false);   // evicts clean line
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, ProbeDoesNotMutate)
{
    Cache c({"L1", 32 * 1024, 128, 2});
    EXPECT_FALSE(c.probe(0x4000));
    EXPECT_EQ(c.stats().accesses, 0u);
    c.access(0x4000, false);
    EXPECT_TRUE(c.probe(0x4000));
}

TEST(Cache, FlushInvalidates)
{
    Cache c({"L1", 32 * 1024, 128, 2});
    c.access(0x2000, false);
    c.flush();
    EXPECT_FALSE(c.probe(0x2000));
}

TEST(Hierarchy, LatencyLevels)
{
    MemoryHierarchy mh{HierarchyConfig{}};
    // Cold: L1 miss + L2 miss -> l2 + memory latency.
    auto r1 = mh.dataAccess(0x100000, 16, false);
    EXPECT_TRUE(r1.l1Miss);
    EXPECT_TRUE(r1.l2Miss);
    EXPECT_EQ(r1.extraLatency, 12 + 250);
    // Warm in L1: no extra latency.
    auto r2 = mh.dataAccess(0x100000, 16, false);
    EXPECT_FALSE(r2.l1Miss);
    EXPECT_EQ(r2.extraLatency, 0);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    MemoryHierarchy mh{HierarchyConfig{}};
    mh.dataAccess(0x0, 16, false);
    // Walk enough conflicting lines to evict line 0 from the 2-way L1
    // (way stride = 16KB) but keep it in the 8-way 1MB L2.
    for (int i = 1; i <= 4; ++i)
        mh.dataAccess(std::uint64_t(i) * 16 * 1024, 16, false);
    auto r = mh.dataAccess(0x0, 16, false);
    EXPECT_TRUE(r.l1Miss);
    EXPECT_FALSE(r.l2Miss);
    EXPECT_EQ(r.extraLatency, 12);
}

TEST(Hierarchy, LineCrossingParallelBanks)
{
    HierarchyConfig cfg;
    cfg.parallelBanks = true;
    MemoryHierarchy mh{cfg};
    // Warm both lines.
    mh.dataAccess(0x1000, 16, false);
    mh.dataAccess(0x1080, 16, false);
    // 16B access straddling the 128B boundary: both lines hit, and
    // with the Fig 7 interleaved banks the latency stays zero extra.
    auto r = mh.dataAccess(0x1078, 16, false);
    EXPECT_TRUE(r.crossedLine);
    EXPECT_EQ(r.extraLatency, 0);
}

TEST(Hierarchy, LineCrossingColdParallelVsSerial)
{
    // Both lines cold in L1 (L2 resident): parallel banks pay max(12,
    // 12) = 12; a serial design pays 24.
    for (bool parallel : {true, false}) {
        HierarchyConfig cfg;
        cfg.parallelBanks = parallel;
        MemoryHierarchy mh{cfg};
        // Install in L2 by touching once, then evicting from L1.
        mh.dataAccess(0x1000, 16, false);
        mh.dataAccess(0x1080, 16, false);
        for (int i = 1; i <= 4; ++i) {
            mh.dataAccess(0x1000 + std::uint64_t(i) * 16 * 1024, 16,
                          false);
            mh.dataAccess(0x1080 + std::uint64_t(i) * 16 * 1024, 16,
                          false);
        }
        auto r = mh.dataAccess(0x1078, 16, false);
        EXPECT_TRUE(r.crossedLine);
        EXPECT_TRUE(r.l1Miss);
        EXPECT_EQ(r.extraLatency, parallel ? 12 : 24);
    }
}

TEST(Hierarchy, FetchPath)
{
    MemoryHierarchy mh{HierarchyConfig{}};
    auto r1 = mh.fetchAccess(0x10000000);
    EXPECT_TRUE(r1.l1Miss);
    auto r2 = mh.fetchAccess(0x10000004);  // same line
    EXPECT_FALSE(r2.l1Miss);
    EXPECT_EQ(r2.extraLatency, 0);
}

TEST(Hierarchy, TableTwoGeometry)
{
    HierarchyConfig cfg;
    EXPECT_EQ(cfg.l1d.size, 32u * 1024);
    EXPECT_EQ(cfg.l1d.assoc, 2u);
    EXPECT_EQ(cfg.l1d.lineSize, 128u);
    EXPECT_EQ(cfg.l1i.assoc, 1u);
    EXPECT_EQ(cfg.l2.size, 1024u * 1024);
    EXPECT_EQ(cfg.l2.assoc, 8u);
    EXPECT_EQ(cfg.l2Latency, 12);
    EXPECT_EQ(cfg.memLatency, 250);
}
