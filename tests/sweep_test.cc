/**
 * @file
 * Locks the sweep engine's guarantees (core/sweep.hh):
 *  - replaying a recorded trace into PipelineSim is bit-identical to
 *    streaming the emulation into the model directly;
 *  - results and SweepStats cell/instruction counts are identical for
 *    1 and N worker threads;
 *  - duplicate addTrace keys dedupe to one recording;
 *  - a group whose single timing cell takes the streamed fast path
 *    still populates every mix-only cell and accounts its
 *    instructions as both recorded and replayed;
 *  - kernelTraceJob's warmupCalls reproduces shared-bench history;
 *  - with a persistent store attached, a warm run replays every
 *    cacheable trace from disk with zero re-emulation and results
 *    bit-identical to the in-memory path, corrupt entries fall back
 *    to re-recording, and non-cacheable jobs bypass the store.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/experiment.hh"
#include "core/sweep.hh"
#include "timing/pipeline.hh"
#include "trace/trace_buffer.hh"

using namespace uasim;
using core::KernelBench;
using core::KernelSpec;
using core::SweepCell;
using core::SweepPlan;
using core::SweepRunner;
using h264::KernelId;
using h264::Variant;

namespace {

void
expectSimEqual(const timing::SimResult &a, const timing::SimResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instrs, b.instrs);
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.l1dAccesses, b.l1dAccesses);
    EXPECT_EQ(a.l1dMisses, b.l1dMisses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.l1iMisses, b.l1iMisses);
    EXPECT_EQ(a.storeForwards, b.storeForwards);
    EXPECT_EQ(a.unalignedVecOps, b.unalignedVecOps);
    EXPECT_EQ(a.lineCrossings, b.lineCrossings);
    EXPECT_EQ(a.fetchStallCycles, b.fetchStallCycles);
}

void
expectMixEqual(const trace::InstrMix &a, const trace::InstrMix &b)
{
    for (int c = 0; c < trace::numInstrClasses; ++c) {
        auto cls = static_cast<trace::InstrClass>(c);
        EXPECT_EQ(a.count(cls), b.count(cls));
    }
}

} // namespace

TEST(SweepReplay, BitIdenticalToDirectStreaming)
{
    const KernelSpec specs[] = {
        {KernelId::Sad, 16, false},
        {KernelId::Idct, 4, false},  // state-sensitive scalar path
    };
    const Variant variants[] = {Variant::Scalar, Variant::Unaligned};
    const int execs = 6;
    auto cfg = timing::CoreConfig::fourWayOoO();

    for (const auto &spec : specs) {
        for (auto variant : variants) {
            KernelBench direct(spec);
            auto want = direct.simulate(variant, cfg, execs);

            trace::TraceBuffer buf;
            KernelBench recorder(spec);
            recorder.recordTrace(variant, execs, buf);
            EXPECT_EQ(buf.size(), buf.mix().total());

            timing::PipelineSim sim(cfg);
            buf.replayInto(sim);
            expectSimEqual(want, sim.finalize());
        }
    }
}

TEST(SweepPlan, AddTraceDedupesKeys)
{
    SweepPlan plan;
    int recorded = 0;
    auto job = [&recorded](trace::TraceSink &) { ++recorded; };
    int a = plan.addTrace({"dup", job});
    int b = plan.addTrace({"dup", job});
    int c = plan.addTrace({"other", job});
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    ASSERT_EQ(plan.traces().size(), 2u);

    // Both cells reference the single deduped recording.
    plan.addCell(a, SweepCell::mixOnly);
    plan.addCell(b, SweepCell::mixOnly);
    SweepRunner runner(1);
    auto results = runner.run(plan);
    EXPECT_EQ(recorded, 1);
    EXPECT_EQ(runner.stats().tracesRecorded, 1u);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].traceKey, "dup");
    EXPECT_EQ(results[1].traceKey, "dup");
}

TEST(SweepRunner, ResultsAndStatsThreadCountInvariant)
{
    const KernelSpec specs[] = {
        {KernelId::Sad, 16, false},
        {KernelId::LumaMc, 8, false},
        {KernelId::Idct, 4, false},
    };
    const int execs = 4;

    auto makePlan = [&]() {
        SweepPlan plan;
        plan.addConfig("2w", timing::CoreConfig::twoWayInOrder());
        plan.addConfig("4w", timing::CoreConfig::fourWayOoO());
        for (const auto &spec : specs) {
            for (auto variant : {Variant::Altivec, Variant::Unaligned}) {
                int t = plan.addTrace(
                    core::kernelTraceJob(spec, variant, execs));
                plan.addCell(t, 0);
                plan.addCell(t, 1);
                plan.addCell(t, SweepCell::mixOnly);
            }
        }
        return plan;
    };

    auto planA = makePlan();
    auto planB = makePlan();
    SweepRunner one(1);
    SweepRunner four(4);
    auto a = one.run(planA);
    auto b = four.run(planB);
    EXPECT_EQ(one.threads(), 1);
    EXPECT_EQ(four.threads(), 4);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].traceKey, b[i].traceKey);
        EXPECT_EQ(a[i].configLabel, b[i].configLabel);
        EXPECT_EQ(a[i].traceInstrs, b[i].traceInstrs);
        expectSimEqual(a[i].sim, b[i].sim);
        expectMixEqual(a[i].mix, b[i].mix);
    }

    const auto &sa = one.stats();
    const auto &sb = four.stats();
    EXPECT_EQ(sa.threads, 1);
    EXPECT_GT(sb.threads, 1);
    EXPECT_EQ(sa.tracesRecorded, sb.tracesRecorded);
    EXPECT_EQ(sa.cellsRun, sb.cellsRun);
    EXPECT_EQ(sa.instrsRecorded, sb.instrsRecorded);
    EXPECT_EQ(sa.instrsReplayed, sb.instrsReplayed);
    EXPECT_EQ(sa.cellsRun, std::uint64_t(planA.cells().size()));
    EXPECT_EQ(sa.tracesRecorded,
              std::uint64_t(planA.traces().size()));
}

TEST(SweepRunner, SingleTimingCellGroupPopulatesAllCells)
{
    // One trace whose group mixes a streamed timing cell with
    // mix-only cells: the fast path must fill every cell and count
    // its instructions as both recorded and replayed.
    SweepPlan plan;
    int cfg = plan.addConfig("4w", timing::CoreConfig::fourWayOoO());
    KernelBench bench({KernelId::Sad, 8, false});
    int t = plan.addTrace(bench.traceJob(Variant::Unaligned, 4));
    plan.addCell(t, SweepCell::mixOnly);
    plan.addCell(t, cfg);
    plan.addCell(t, SweepCell::mixOnly);

    SweepRunner runner(1);
    auto results = runner.run(plan);
    ASSERT_EQ(results.size(), 3u);

    EXPECT_GT(results[1].sim.cycles, 0u);
    EXPECT_EQ(results[1].configLabel, "4w");
    for (const auto &cell : results) {
        EXPECT_FALSE(cell.traceKey.empty());
        EXPECT_GT(cell.mix.total(), 0u);
        EXPECT_EQ(cell.traceInstrs, results[1].traceInstrs);
        expectMixEqual(cell.mix, results[1].mix);
    }
    // Mix-only cells carry no simulation.
    EXPECT_EQ(results[0].sim.cycles, 0u);
    EXPECT_EQ(results[0].configLabel, "");
    EXPECT_EQ(results[2].sim.cycles, 0u);

    const auto &stats = runner.stats();
    EXPECT_EQ(stats.tracesRecorded, 1u);
    EXPECT_EQ(stats.cellsRun, 3u);
    EXPECT_EQ(stats.instrsRecorded, results[1].traceInstrs);
    EXPECT_EQ(stats.instrsReplayed, results[1].traceInstrs);

    // The streamed result is the same one the buffered path produces.
    SweepPlan buffered;
    int c2 = buffered.addConfig("4w",
                                timing::CoreConfig::fourWayOoO());
    KernelBench bench2({KernelId::Sad, 8, false});
    int t2 = buffered.addTrace(bench2.traceJob(Variant::Unaligned, 4));
    buffered.addCell(t2, c2);
    buffered.addCell(t2, c2);  // two timing cells force the buffer
    SweepRunner bufRunner(1);
    auto bufResults = bufRunner.run(buffered);
    ASSERT_EQ(bufResults.size(), 2u);
    expectSimEqual(results[1].sim, bufResults[0].sim);
    expectSimEqual(bufResults[0].sim, bufResults[1].sim);
    EXPECT_EQ(bufRunner.stats().instrsReplayed,
              2 * bufResults[0].traceInstrs);
}

namespace {

/// Mixed plan exercising every store path: multi-config replay
/// groups, a single-timing-cell (fused/stream) group, mix-only
/// groups, and a warmed-up state-sensitive scalar IDCT trace.
SweepPlan
makeStorePlan()
{
    SweepPlan plan;
    int c2 = plan.addConfig("2w", timing::CoreConfig::twoWayInOrder());
    int c4 = plan.addConfig("4w", timing::CoreConfig::fourWayOoO());
    const KernelSpec sad{KernelId::Sad, 16, false};
    const KernelSpec idct{KernelId::Idct, 4, false};
    const int execs = 4;

    int multi = plan.addTrace(
        core::kernelTraceJob(sad, Variant::Unaligned, execs));
    plan.addCell(multi, c2);
    plan.addCell(multi, c4);
    plan.addCell(multi, SweepCell::mixOnly);

    int fused = plan.addTrace(
        core::kernelTraceJob(sad, Variant::Altivec, execs));
    plan.addCell(fused, c4);

    int mix_only = plan.addTrace(
        core::kernelTraceJob(idct, Variant::Unaligned, execs));
    plan.addCell(mix_only, SweepCell::mixOnly);

    int warmed = plan.addTrace(
        core::kernelTraceJob(idct, Variant::Scalar, execs, 12345, 2));
    plan.addCell(warmed, c2);
    plan.addCell(warmed, c4);
    return plan;
}

void
expectResultsEqual(const std::vector<core::SweepCellResult> &a,
                   const std::vector<core::SweepCellResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].traceKey, b[i].traceKey);
        EXPECT_EQ(a[i].configLabel, b[i].configLabel);
        EXPECT_EQ(a[i].traceInstrs, b[i].traceInstrs);
        expectSimEqual(a[i].sim, b[i].sim);
        expectMixEqual(a[i].mix, b[i].mix);
    }
}

/// Fresh per-test store directory (removed on destruction).
struct StoreDir {
    explicit StoreDir(const char *name)
        : path(::testing::TempDir() + "/uasim_sweep_" + name)
    {
        std::filesystem::remove_all(path);
    }
    ~StoreDir() { std::filesystem::remove_all(path); }
    std::string path;
};

} // namespace

TEST(SweepStore, WarmRunReplaysFromDiskBitIdentical)
{
    StoreDir dir("warm");
    auto baseline = SweepRunner(1).run(makeStorePlan());

    SweepRunner cold(1);
    cold.attachStore(dir.path);
    auto coldResults = cold.run(makeStorePlan());
    expectResultsEqual(baseline, coldResults);
    const auto &cs = cold.stats();
    EXPECT_EQ(cs.tracesRecorded, 4u);
    EXPECT_EQ(cs.tracesStored, 4u);
    EXPECT_EQ(cs.tracesLoaded, 0u);

    SweepRunner warm(1);
    warm.attachStore(dir.path);
    auto warmResults = warm.run(makeStorePlan());
    expectResultsEqual(baseline, warmResults);
    const auto &ws = warm.stats();
    EXPECT_EQ(ws.tracesRecorded, 0u) << "warm run must re-record "
                                        "zero traces";
    EXPECT_EQ(ws.tracesLoaded, 4u);
    EXPECT_EQ(ws.tracesStored, 0u);
    EXPECT_EQ(ws.instrsRecorded, 0u);
    EXPECT_EQ(ws.instrsLoaded, cs.instrsRecorded);
    EXPECT_EQ(ws.instrsReplayed, cs.instrsReplayed);

    // Warm with a thread pool: still bit-identical, still zero
    // re-recording.
    SweepRunner warm4(4);
    warm4.attachStore(dir.path);
    expectResultsEqual(baseline, warm4.run(makeStorePlan()));
    EXPECT_EQ(warm4.stats().tracesRecorded, 0u);
}

TEST(SweepStore, CorruptEntryFallsBackToRecordingAndHeals)
{
    StoreDir dir("heal");
    SweepRunner cold(1);
    cold.attachStore(dir.path);
    auto baseline = cold.run(makeStorePlan());

    // Truncate one published entry (the multi-cell SAD trace).
    const auto plan = makeStorePlan();
    const std::string victim = plan.traces()[0].key;
    const auto path = cold.store()->entryPath(victim);
    ASSERT_TRUE(std::filesystem::exists(path));
    std::filesystem::resize_file(
        path, std::filesystem::file_size(path) / 2);

    SweepRunner heal(1);
    heal.attachStore(dir.path);
    auto healed = heal.run(makeStorePlan());
    expectResultsEqual(baseline, healed);
    EXPECT_EQ(heal.stats().tracesRecorded, 1u);
    EXPECT_EQ(heal.stats().tracesLoaded, 3u);
    EXPECT_EQ(heal.stats().tracesStored, 1u);

    // The re-recorded entry is valid again.
    SweepRunner warm(1);
    warm.attachStore(dir.path);
    expectResultsEqual(baseline, warm.run(makeStorePlan()));
    EXPECT_EQ(warm.stats().tracesLoaded, 4u);
}

TEST(SweepStore, NonCacheableJobsBypassTheStore)
{
    StoreDir dir("nocache");
    int runs = 0;
    auto makePlan = [&runs]() {
        SweepPlan plan;
        plan.addTrace({"side-effect", [&runs](trace::TraceSink &) {
                           ++runs;
                       },
                       /*cacheable=*/false});
        plan.addCell(0, SweepCell::mixOnly);
        return plan;
    };

    SweepRunner first(1);
    first.attachStore(dir.path);
    first.run(makePlan());
    SweepRunner second(1);
    second.attachStore(dir.path);
    second.run(makePlan());

    EXPECT_EQ(runs, 2) << "non-cacheable jobs must run every time";
    EXPECT_EQ(first.stats().tracesStored, 0u);
    EXPECT_EQ(second.stats().tracesLoaded, 0u);
    EXPECT_TRUE(std::filesystem::is_empty(dir.path));
}

TEST(SweepTraceJob, WarmupReproducesSharedBenchHistory)
{
    // Scalar IDCT traces depend on the bench's accumulated plane
    // state; a warmed-up trace job must reproduce the hand-rolled
    // shared-bench call sequence exactly.
    const KernelSpec spec{KernelId::Idct, 4, false};
    EXPECT_FALSE(spec.traceStateInvariant(Variant::Scalar));
    EXPECT_TRUE(spec.traceStateInvariant(Variant::Altivec));

    const int execs = 4;
    auto cfg = timing::CoreConfig::twoWayInOrder();

    KernelBench shared(spec);
    shared.advanceState(Variant::Scalar, execs);
    shared.advanceState(Variant::Scalar, execs);
    auto want = shared.simulate(Variant::Scalar, cfg, execs);

    auto job = core::kernelTraceJob(spec, Variant::Scalar, execs,
                                    12345, 2);
    timing::PipelineSim sim(cfg);
    job.record(sim);
    expectSimEqual(want, sim.finalize());
}

// ---- replay modes (batched vs per-cell) ----

TEST(SweepReplayMode, ParseAndName)
{
    core::ReplayMode mode;
    ASSERT_TRUE(core::parseReplayMode("batched", mode));
    EXPECT_EQ(mode, core::ReplayMode::Batched);
    ASSERT_TRUE(core::parseReplayMode("percell", mode));
    EXPECT_EQ(mode, core::ReplayMode::PerCell);
    EXPECT_FALSE(core::parseReplayMode("", mode));
    EXPECT_FALSE(core::parseReplayMode("Batched", mode));
    EXPECT_FALSE(core::parseReplayMode("per-cell", mode));
    EXPECT_STREQ(core::replayModeName(core::ReplayMode::Batched),
                 "batched");
    EXPECT_STREQ(core::replayModeName(core::ReplayMode::PerCell),
                 "percell");
}

TEST(SweepReplayMode, BatchedIsTheDefaultAndBitIdenticalToPerCell)
{
    SweepRunner batched(1);
    EXPECT_EQ(batched.replayMode(), core::ReplayMode::Batched);
    auto a = batched.run(makeStorePlan());

    SweepRunner percell(1);
    percell.setReplayMode(core::ReplayMode::PerCell);
    auto b = percell.run(makeStorePlan());
    expectResultsEqual(a, b);

    // makeStorePlan groups: two multi-cell (2 timing cells each), one
    // fused single-cell, one mix-only. Batched replays each multi-
    // cell group in ONE pass; percell re-walks the buffer per cell.
    // Mix-only groups replay nothing in either mode.
    EXPECT_EQ(batched.stats().replayPasses, 3u);
    EXPECT_EQ(percell.stats().replayPasses, 5u);

    // The simulated instrsReplayed accounting (instructions times
    // timing cells) must NOT depend on the pass count - it gates
    // bit-exactly in uasim-report.
    EXPECT_EQ(batched.stats().instrsReplayed,
              percell.stats().instrsReplayed);
    EXPECT_EQ(batched.stats().cellsRun, percell.stats().cellsRun);
    EXPECT_EQ(batched.stats().instrsRecorded,
              percell.stats().instrsRecorded);
}

TEST(SweepReplayMode, ThreadCountInvariantInBothModes)
{
    auto runWith = [](core::ReplayMode mode, int threads) {
        SweepRunner runner(threads);
        runner.setReplayMode(mode);
        auto results = runner.run(makeStorePlan());
        return std::pair(std::move(results), runner.stats());
    };
    auto [b1, sb1] = runWith(core::ReplayMode::Batched, 1);
    auto [b4, sb4] = runWith(core::ReplayMode::Batched, 4);
    auto [p1, sp1] = runWith(core::ReplayMode::PerCell, 1);
    auto [p4, sp4] = runWith(core::ReplayMode::PerCell, 4);

    expectResultsEqual(b1, b4);
    expectResultsEqual(b1, p1);
    expectResultsEqual(b1, p4);

    EXPECT_EQ(sb1.replayPasses, sb4.replayPasses);
    EXPECT_EQ(sp1.replayPasses, sp4.replayPasses);
    EXPECT_EQ(sb1.instrsReplayed, sp4.instrsReplayed);
}

TEST(SweepReplayMode, ColdWarmStoreBitIdenticalUnderBatched)
{
    StoreDir dir("batched_warm");
    auto baseline = SweepRunner(1).run(makeStorePlan());

    SweepRunner cold(1);
    cold.attachStore(dir.path);
    auto coldResults = cold.run(makeStorePlan());
    expectResultsEqual(baseline, coldResults);
    const auto &cs = cold.stats();
    EXPECT_EQ(cs.tracesRecorded, 4u);
    EXPECT_EQ(cs.tracesLoaded, 0u);

    SweepRunner warm(1);
    warm.attachStore(dir.path);
    auto warmResults = warm.run(makeStorePlan());
    expectResultsEqual(baseline, warmResults);
    const auto &ws = warm.stats();
    EXPECT_EQ(ws.tracesRecorded, 0u);
    EXPECT_EQ(ws.tracesLoaded, 4u);

    // A store hit changes where the records come from, never how
    // many times the group replays them or what gets simulated.
    EXPECT_EQ(ws.replayPasses, cs.replayPasses);
    EXPECT_EQ(ws.instrsReplayed, cs.instrsReplayed);

    // Warm per-cell replay agrees too (store-hit percell path).
    SweepRunner warmPercell(1);
    warmPercell.setReplayMode(core::ReplayMode::PerCell);
    warmPercell.attachStore(dir.path);
    expectResultsEqual(baseline, warmPercell.run(makeStorePlan()));
    EXPECT_EQ(warmPercell.stats().tracesLoaded, 4u);
    EXPECT_GT(warmPercell.stats().replayPasses, ws.replayPasses);
}

TEST(SweepReplayMode, SingleCellAndMixOnlyPassAccounting)
{
    // Fused single-timing-cell group: one streamed pass.
    SweepPlan fused;
    int cfg = fused.addConfig("4w", timing::CoreConfig::fourWayOoO());
    KernelBench bench({KernelId::Sad, 8, false});
    fused.addTrace(bench.traceJob(Variant::Unaligned, 4));
    fused.addCell(0, cfg);
    SweepRunner runner(1);
    runner.run(fused);
    EXPECT_EQ(runner.stats().replayPasses, 1u);

    // Mix-only group: no replay at all.
    SweepPlan mixOnly;
    KernelBench bench2({KernelId::Sad, 8, false});
    mixOnly.addTrace(bench2.traceJob(Variant::Unaligned, 4));
    mixOnly.addCell(0, SweepCell::mixOnly);
    SweepRunner mixRunner(1);
    mixRunner.run(mixOnly);
    EXPECT_EQ(mixRunner.stats().replayPasses, 0u);
}

// ---- intra-group cell sharding (single big group) ----

namespace {

/// One trace group, 16 timing cells: the worst case for group-level
/// parallelism (pool collapses to one worker) and the best case for
/// intra-group cell sharding.
SweepPlan
makeSingleBigGroupPlan()
{
    const KernelSpec spec{KernelId::Sad, 16, false};
    SweepPlan plan;
    int t = plan.addTrace(core::kernelTraceJob(spec, Variant::Unaligned, 4));
    for (int i = 0; i < 16; ++i) {
        auto cfg = (i % 2) ? timing::CoreConfig::fourWayOoO()
                           : timing::CoreConfig::twoWayInOrder();
        plan.addCell(t, plan.addConfig("c" + std::to_string(i), cfg));
    }
    return plan;
}

} // namespace

TEST(SweepSharding, SingleBigGroupUsesFullThreadBudget)
{
    // Before sharding, a 1-group sweep at --threads 8 ran on one
    // thread (the pool is sized by group count). Now the group's 16
    // cells split across min(threads, cells) replay shards - more
    // than one worker must participate, bit-identically.
    SweepRunner one(1);
    SweepRunner eight(8);
    auto a = one.run(makeSingleBigGroupPlan());
    auto b = eight.run(makeSingleBigGroupPlan());
    expectResultsEqual(a, b);

    // 1 thread: one batched pass over the group. 8 threads: 8 shards,
    // each running its own pass - honest pass accounting - and
    // stats().threads reports the fan-out actually used.
    EXPECT_EQ(one.stats().replayPasses, 1u);
    EXPECT_EQ(one.stats().threads, 1);
    EXPECT_EQ(eight.stats().replayPasses, 8u);
    EXPECT_EQ(eight.stats().threads, 8);

    // The simulated accounting is shard-invariant (it gates).
    EXPECT_EQ(one.stats().instrsReplayed, eight.stats().instrsReplayed);
    EXPECT_EQ(one.stats().cellsRun, eight.stats().cellsRun);
    EXPECT_EQ(one.stats().instrsRecorded, eight.stats().instrsRecorded);

    // PerCell mode shards too and stays bit-identical: 8 shards of 2
    // cells, each cell still its own pass.
    SweepRunner percell(8);
    percell.setReplayMode(core::ReplayMode::PerCell);
    expectResultsEqual(a, percell.run(makeSingleBigGroupPlan()));
    EXPECT_EQ(percell.stats().replayPasses, 16u);
    EXPECT_EQ(percell.stats().threads, 8);
}

TEST(SweepSharding, WarmStoreShardedReplayBitIdenticalAndAccounted)
{
    StoreDir dir("sharded_warm");
    auto baseline = SweepRunner(1).run(makeSingleBigGroupPlan());

    SweepRunner cold(8);
    cold.attachStore(dir.path);
    expectResultsEqual(baseline, cold.run(makeSingleBigGroupPlan()));
    EXPECT_EQ(cold.stats().tracesRecorded, 1u);
    EXPECT_EQ(cold.stats().tracesLoaded, 0u);
    // Cold replay feeds already-decoded records from the in-memory
    // buffer; no payload bytes go through the block decoder.
    EXPECT_EQ(cold.stats().decodeBytes, 0u);
    EXPECT_EQ(cold.stats().bytesMapped, 0u);

    SweepRunner warm(8);
    warm.attachStore(dir.path);
    expectResultsEqual(baseline, warm.run(makeSingleBigGroupPlan()));
    const auto &ws = warm.stats();
    EXPECT_EQ(ws.tracesRecorded, 0u);
    EXPECT_EQ(ws.tracesLoaded, 1u);
    EXPECT_EQ(ws.replayPasses, 8u);
    EXPECT_EQ(ws.instrsReplayed, cold.stats().instrsReplayed);

    // Each shard decodes the whole payload (decode work counts per
    // pass); mapped bytes count once per opened trace.
    EXPECT_GT(ws.decodeBytes, 0u);
#if defined(__unix__) || defined(__APPLE__)
    EXPECT_GT(ws.bytesMapped, 0u);
    EXPECT_EQ(ws.decodeBytes, ws.replayPasses * ws.bytesMapped);
#endif
}
