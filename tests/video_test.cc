/**
 * @file
 * Tests for the video substrate: frames, synthetic sequences, motion
 * model, and the Fig 4 alignment statistics.
 */

#include <gtest/gtest.h>

#include "video/frame.hh"
#include "video/motion.hh"
#include "video/rng.hh"
#include "video/sequence.hh"

using namespace uasim::video;

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, RangeBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.range(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, TwoSidedGeometricRoughlySymmetric)
{
    Rng r(11);
    std::int64_t sum = 0, absum = 0;
    for (int i = 0; i < 20000; ++i) {
        auto v = r.twoSidedGeometric(6.0);
        sum += v;
        absum += std::abs(v);
    }
    EXPECT_LT(std::abs(sum), absum / 10 + 200);
    EXPECT_GT(absum / 20000.0, 2.0);  // mean magnitude near scale
}

TEST(Plane, GeometryAndAlignment)
{
    Plane p(720, 576);
    EXPECT_EQ(p.width(), 720);
    EXPECT_EQ(p.height(), 576);
    EXPECT_EQ(p.stride() % 16, 0);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p.pixel(0, 0)) & 15, 0u);
    // Row bases keep the same (x % 16) residue as x varies.
    auto a0 = reinterpret_cast<std::uintptr_t>(p.pixel(4, 0));
    auto a1 = reinterpret_cast<std::uintptr_t>(p.pixel(4, 37));
    EXPECT_EQ(a0 & 15, a1 & 15);
}

TEST(Plane, EdgeExtension)
{
    Plane p(64, 48);
    p.fill(0);
    p.at(0, 0) = 7;
    p.at(63, 0) = 9;
    p.at(0, 47) = 3;
    p.extendEdges();
    EXPECT_EQ(*p.pixel(-1, 0), 7);
    EXPECT_EQ(*p.pixel(-Plane::border, 0), 7);
    EXPECT_EQ(*p.pixel(64, 0), 9);
    EXPECT_EQ(*p.pixel(-5, -5), 7);   // corner
    EXPECT_EQ(*p.pixel(0, -1), 7);
    EXPECT_EQ(*p.pixel(-3, 47), 3);
}

TEST(Frame, ChromaIsHalfResolution)
{
    Frame f(720, 576);
    EXPECT_EQ(f.cb().width(), 360);
    EXPECT_EQ(f.cb().height(), 288);
    EXPECT_EQ(f.cr().width(), 360);
}

TEST(Sequence, TwelveProfiles)
{
    auto all = allSequenceParams();
    EXPECT_EQ(all.size(), 12u);
    // Names match the paper's Fig 4 legend style.
    EXPECT_EQ(all[0].label(), "576_rush_hour");
    EXPECT_EQ(all[11].label(), "1088_riverbed");
}

TEST(Sequence, ContentStatisticsDiffer)
{
    Resolution res{720, 576, "576"};
    auto rush = makeParams(Content::RushHour, res);
    auto river = makeParams(Content::Riverbed, res);
    EXPECT_GT(rush.interRatio, river.interRatio);
    EXPECT_GT(rush.zeroMvRatio, river.zeroMvRatio);
    EXPECT_LT(rush.mvScaleQpel, river.mvScaleQpel);
}

TEST(Sequence, RenderDeterministicAndCoherent)
{
    auto params = makeParams(Content::Pedestrian, {176, 144, "qcif"});
    SyntheticSequence seq(params);
    Frame a(176, 144), b(176, 144);
    seq.render(3, a);
    seq.render(3, b);
    for (int y = 0; y < 144; ++y) {
        for (int x = 0; x < 176; ++x)
            ASSERT_EQ(a.luma().at(x, y), b.luma().at(x, y));
    }
    // Frames are not blank.
    int distinct = 0;
    for (int x = 1; x < 176; ++x)
        distinct += a.luma().at(x, 10) != a.luma().at(x - 1, 10);
    EXPECT_GT(distinct, 20);
}

TEST(MotionModel, TilesEveryMacroblock)
{
    auto params = makeParams(Content::Pedestrian, {176, 144, "qcif"});
    MotionModel model(params);
    auto parts = model.framePartitions(1);
    // Area must tile the frame exactly.
    std::uint64_t area = 0;
    for (const auto &p : parts) {
        area += std::uint64_t(p.w) * p.h;
        EXPECT_EQ(p.x % p.w, 0);
        EXPECT_EQ(p.y % p.h, 0);
    }
    EXPECT_EQ(area, 176u * 144u);
}

TEST(MotionModel, Deterministic)
{
    auto params = makeParams(Content::BlueSky, {176, 144, "qcif"});
    MotionModel m1(params), m2(params);
    auto a = m1.framePartitions(2);
    auto b = m2.framePartitions(2);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].x, b[i].x);
        EXPECT_EQ(a[i].mvxQ, b[i].mvxQ);
        EXPECT_EQ(a[i].inter, b[i].inter);
    }
}

TEST(MotionModel, InterRatioTracksContent)
{
    for (auto content : {Content::RushHour, Content::Riverbed}) {
        auto params = makeParams(content, {720, 576, "576"});
        MotionModel model(params);
        int inter_mbs = 0, total_mbs = 0;
        for (const auto &p : model.framePartitions(0)) {
            if (p.w == 16 || (p.x % 16 == 0 && p.y % 16 == 0)) {
                ++total_mbs;
                inter_mbs += p.inter;
            }
        }
        double ratio = double(inter_mbs) / total_mbs;
        EXPECT_NEAR(ratio, params.interRatio, 0.08)
            << contentName(content);
    }
}

TEST(AlignmentHistogram, SumsToHundredPercent)
{
    AlignmentHistogram h;
    for (int i = 0; i < 160; ++i)
        h.add(i);
    double sum = 0;
    for (int o = 0; o < 16; ++o)
        sum += h.percent(o);
    EXPECT_NEAR(sum, 100.0, 1e-9);
    EXPECT_NEAR(h.percent(3), 100.0 / 16, 1e-9);
}

TEST(McAlignment, Fig4Shapes)
{
    auto params = makeParams(Content::Pedestrian, {720, 576, "576"});
    auto stats = collectMcAlignment(params, 4);

    ASSERT_GT(stats.lumaLoad.total, 100u);
    ASSERT_GT(stats.lumaStore.total, 100u);

    // Loads: offsets spread over the full 0..15 range (unpredictable).
    int nonzero = 0;
    for (int o = 0; o < 16; ++o)
        nonzero += stats.lumaLoad.counts[o] > 0;
    EXPECT_GE(nonzero, 14);

    // Stores: destination offsets depend only on block position, so
    // only multiples of 4 occur, dominated by 0 (paper Fig 4(c)).
    for (int o = 0; o < 16; ++o) {
        if (o % 4 != 0) {
            EXPECT_EQ(stats.lumaStore.counts[o], 0u) << o;
        }
    }
    EXPECT_GT(stats.lumaStore.percent(0), 40.0);

    // Chroma stores: only even offsets (half-resolution positions).
    for (int o = 1; o < 16; o += 2)
        EXPECT_EQ(stats.chromaStore.counts[o], 0u) << o;
}

TEST(McAlignment, SlowContentHasBiggerZeroSpike)
{
    auto rush =
        collectMcAlignment(makeParams(Content::RushHour,
                                      {720, 576, "576"}), 4);
    auto river =
        collectMcAlignment(makeParams(Content::Riverbed,
                                      {720, 576, "576"}), 4);
    // Zero-MV traffic piles onto offset 0 for slow content.
    EXPECT_GT(rush.lumaLoad.percent(0), river.lumaLoad.percent(0));
}
