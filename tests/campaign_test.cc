/**
 * @file
 * Declarative sweep campaigns (core/campaign.hh): format and
 * derived-expression parsing (the esesc-style `$(a)` references and
 * `mw = $(iw)/4` division), the malformed-file table, content-hash
 * identity, deterministic expansion order, shard-partition
 * completeness/disjointness, resumable chunk execution, merge-vs-
 * unsharded bit-identity over the full simResultFields() table, and
 * the uasim-sweep / `uasim-report merge` CLI contracts.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <sys/wait.h>

#include "core/campaign.hh"
#include "core/result.hh"

namespace fs = std::filesystem;
using uasim::core::BenchResult;
using uasim::core::Campaign;
using uasim::core::CampaignError;
using uasim::core::CampaignRunOptions;
using uasim::core::CampaignRunOutcome;
using uasim::core::evalCampaignExpr;
using uasim::core::mergeShardResults;
using uasim::core::runCampaignShard;

namespace {

/// A fast 2-trace x 2-config campaign for the execution tests, with
/// the derived-expression machinery in the loop (axis value 2*$(mw)
/// where mw = $(iw)/4).
constexpr const char *kSmall = R"(# unit campaign
[campaign]
name = unit_small
execs = 2

[values]
iw = 4
mw = $(iw)/4   # esesc-style derived width

[workload]
kernels = sad4x4, chroma4x4
variants = unaligned

[core]
base = 4w

[axes]
lat.unalignedLoadExtra = 0, 2*$(mw)
)";

fs::path
freshDir(const std::string &name)
{
    const fs::path p =
        fs::path(::testing::TempDir()) / ("campaign_" + name);
    fs::remove_all(p);
    fs::create_directories(p);
    return p;
}

CampaignRunOutcome
runShard(const Campaign &c, const fs::path &dir, int shard, int count,
         bool sharded = true)
{
    CampaignRunOptions opt;
    opt.sharded = sharded;
    opt.shard = shard;
    opt.shardCount = count;
    opt.jsonDir = dir.string();
    opt.threads = 2;
    return runCampaignShard(c, opt);
}

struct RunResult {
    int exit = -1;
    std::string out;
};

/// Run a shell command, capturing stdout+stderr and the exit code.
RunResult
run(const std::string &cmd)
{
    RunResult r;
    std::FILE *p = ::popen((cmd + " 2>&1").c_str(), "r");
    if (!p)
        return r;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, p)) > 0)
        r.out.append(buf, n);
    const int st = ::pclose(p);
    if (WIFEXITED(st))
        r.exit = WEXITSTATUS(st);
    return r;
}

} // namespace

// ---------------------------------------------------------------------------
// expression evaluator
// ---------------------------------------------------------------------------

TEST(CampaignExpr, ArithmeticAndPrecedence)
{
    const std::map<std::string, long long> none;
    EXPECT_EQ(evalCampaignExpr("42", none), 42);
    EXPECT_EQ(evalCampaignExpr("2+3*4", none), 14);
    EXPECT_EQ(evalCampaignExpr("(2+3)*4", none), 20);
    EXPECT_EQ(evalCampaignExpr("7/2", none), 3);
    EXPECT_EQ(evalCampaignExpr("10-4-3", none), 3);
    EXPECT_EQ(evalCampaignExpr("-3+5", none), 2);
    EXPECT_EQ(evalCampaignExpr(" 1 + 2 ", none), 3);
}

TEST(CampaignExpr, ReferencesAndDivision)
{
    // The esesc simu.conf idiom: mw = $(iw)/4, fw = 2*$(iw).
    const std::map<std::string, long long> vals{{"iw", 32}, {"mw", 8}};
    EXPECT_EQ(evalCampaignExpr("$(iw)/4", vals), 8);
    EXPECT_EQ(evalCampaignExpr("2*$(iw)", vals), 64);
    EXPECT_EQ(evalCampaignExpr("160*$(mw)", vals), 1280);
    EXPECT_EQ(evalCampaignExpr("$(iw)-$(mw)", vals), 24);
    EXPECT_EQ(evalCampaignExpr("($(iw)+$(mw))/5", vals), 8);
}

TEST(CampaignExpr, Errors)
{
    const std::map<std::string, long long> vals{{"iw", 32}};
    EXPECT_THROW(evalCampaignExpr("", vals), CampaignError);
    EXPECT_THROW(evalCampaignExpr("$(nope)", vals), CampaignError);
    EXPECT_THROW(evalCampaignExpr("1/0", vals), CampaignError);
    EXPECT_THROW(evalCampaignExpr("$(iw)/($(iw)-32)", vals),
                 CampaignError);
    EXPECT_THROW(evalCampaignExpr("1 2", vals), CampaignError);
    EXPECT_THROW(evalCampaignExpr("(1+2", vals), CampaignError);
    EXPECT_THROW(evalCampaignExpr("$(iw", vals), CampaignError);
    EXPECT_THROW(evalCampaignExpr("2 + x", vals), CampaignError);
}

// ---------------------------------------------------------------------------
// parsing + deterministic expansion
// ---------------------------------------------------------------------------

TEST(CampaignParse, SmallCampaignExpands)
{
    const Campaign c = Campaign::parse(kSmall);
    EXPECT_EQ(c.name(), "unit_small");
    EXPECT_EQ(c.execs(), 2);
    EXPECT_EQ(c.seed(), 12345u);  // default
    EXPECT_EQ(c.chunkCount(), 2);
    ASSERT_EQ(c.configCount(), 2);
    // Declaration-order expansion: axis values in listed order, the
    // derived 2*$(mw) resolved to 2.
    EXPECT_EQ(c.configs()[0].label, "lat.unalignedLoadExtra=0");
    EXPECT_EQ(c.configs()[1].label, "lat.unalignedLoadExtra=2");
    EXPECT_EQ(c.configs()[0].cfg.lat.unalignedLoadExtra, 0);
    EXPECT_EQ(c.configs()[1].cfg.lat.unalignedLoadExtra, 2);
    // Kernel-major trace order, kernelTraceJob key format.
    EXPECT_EQ(c.chunkTraceKey(0), "sad4x4/unaligned/2/12345");
    EXPECT_EQ(c.chunkTraceKey(1), "chroma4x4/unaligned/2/12345");
}

TEST(CampaignParse, ModelAxisAndOverrides)
{
    const Campaign c = Campaign::parse(R"(
[campaign]
name = modelgrid
execs = 2
seed = 7

[workload]
kernels = sad4x4
variants = scalar, altivec

[core]
base = 2w
storeQ = 32

[axes]
model = pipeline, ooo
fetchWidth = 2, 4
)");
    EXPECT_EQ(c.chunkCount(), 2);
    ASSERT_EQ(c.configCount(), 4);
    // First axis slowest: model-major.
    EXPECT_EQ(c.configs()[0].label, "model=pipeline,fetchWidth=2");
    EXPECT_EQ(c.configs()[1].label, "model=pipeline,fetchWidth=4");
    EXPECT_EQ(c.configs()[2].label, "model=ooo,fetchWidth=2");
    EXPECT_EQ(c.configs()[3].label, "model=ooo,fetchWidth=4");
    EXPECT_EQ(c.configs()[2].cfg.model, "ooo");
    EXPECT_EQ(c.configs()[3].cfg.fetchWidth, 4);
    // The fixed [core] override lands in every cell.
    for (const auto &cfg : c.configs())
        EXPECT_EQ(cfg.cfg.storeQ, 32);
    EXPECT_EQ(c.chunkTraceKey(0), "sad4x4/scalar/2/7");
    EXPECT_EQ(c.chunkTraceKey(1), "sad4x4/altivec/2/7");
}

TEST(CampaignParse, CanonicalIdentity)
{
    const Campaign a = Campaign::parse(kSmall);
    // Same grid, different spelling: reordered sections, extra
    // comments/whitespace, literals instead of derived values.
    const Campaign b = Campaign::parse(R"(
[workload]
kernels   =   sad4x4 ,  chroma4x4
variants = unaligned

[axes]    # the sweep
lat.unalignedLoadExtra = 0, 2

[campaign]
name = unit_small
execs = 2
seed = 12345
)");
    EXPECT_EQ(a.canonical(), b.canonical());
    EXPECT_EQ(a.contentHash(), b.contentHash());
    EXPECT_EQ(a.id(), b.id());

    // parse(canonical()) round-trips bit-identically.
    EXPECT_EQ(Campaign::parse(a.canonical()).canonical(), a.canonical());

    // Any semantic change retires the identity (and with it every
    // published chunk artifact).
    std::string bumped(kSmall);
    const auto at = bumped.find("execs = 2");
    bumped.replace(at, 9, "execs = 3");
    EXPECT_NE(Campaign::parse(bumped).contentHash(), a.contentHash());
    for (int j = 0; j < a.chunkCount(); ++j)
        EXPECT_NE(Campaign::parse(bumped).chunkHash(j), a.chunkHash(j));
}

TEST(CampaignParse, MalformedFileTable)
{
    const char *bad[] = {
        // junk before any section
        "name = x\n",
        // unknown section
        "[campaign]\nname = x\nexecs = 1\n[bogus]\na = 1\n",
        // missing name / execs / workload
        "[campaign]\nexecs = 1\n",
        "[campaign]\nname = x\n",
        "[campaign]\nname = x\nexecs = 1\n",
        // duplicate key and duplicate section
        "[campaign]\nname = x\nname = y\nexecs = 1\n",
        "[campaign]\nname = x\nexecs = 1\n[campaign]\nseed = 1\n",
        // workload errors
        "[campaign]\nname = x\nexecs = 1\n[workload]\nkernels = bogus\n"
        "variants = scalar\n",
        "[campaign]\nname = x\nexecs = 1\n[workload]\nkernels = sad4x4\n"
        "variants = mmx\n",
        "[campaign]\nname = x\nexecs = 1\n[workload]\n"
        "kernels = sad4x4, sad4x4\nvariants = scalar\n",
        // core / axes errors
        "[campaign]\nname = x\nexecs = 1\n[workload]\nkernels = sad4x4\n"
        "variants = scalar\n[core]\nbase = 16w\n",
        "[campaign]\nname = x\nexecs = 1\n[workload]\nkernels = sad4x4\n"
        "variants = scalar\n[core]\nnoSuchField = 1\n",
        "[campaign]\nname = x\nexecs = 1\n[workload]\nkernels = sad4x4\n"
        "variants = scalar\n[core]\nmodel = turandot\n",
        "[campaign]\nname = x\nexecs = 1\n[workload]\nkernels = sad4x4\n"
        "variants = scalar\n[axes]\nmodel = pipeline, vax\n",
        "[campaign]\nname = x\nexecs = 1\n[workload]\nkernels = sad4x4\n"
        "variants = scalar\n[axes]\nfetchWidth = 2, 2\n",
        "[campaign]\nname = x\nexecs = 1\n[workload]\nkernels = sad4x4\n"
        "variants = scalar\n[core]\nfetchWidth = 2\n[axes]\n"
        "fetchWidth = 2, 4\n",
        // undefined reference and division by zero in [values]
        "[campaign]\nname = x\nexecs = 1\n[values]\na = $(zz)\n"
        "[workload]\nkernels = sad4x4\nvariants = scalar\n",
        "[campaign]\nname = x\nexecs = 1\n[values]\na = 1/0\n"
        "[workload]\nkernels = sad4x4\nvariants = scalar\n",
        // expansion-time CoreConfig::validate() rejection
        "[campaign]\nname = x\nexecs = 1\n[workload]\nkernels = sad4x4\n"
        "variants = scalar\n[axes]\nfetchWidth = 0, 2\n",
        // execs out of range
        "[campaign]\nname = x\nexecs = 0\n[workload]\nkernels = sad4x4\n"
        "variants = scalar\n",
        // malformed lines
        "[campaign\nname = x\nexecs = 1\n",
        "[campaign]\nname = x\nexecs = 1\njust words\n",
    };
    for (const char *text : bad)
        EXPECT_THROW(Campaign::parse(text), CampaignError) << text;
}

// ---------------------------------------------------------------------------
// shard partitioning
// ---------------------------------------------------------------------------

TEST(CampaignShard, CompleteAndDisjoint)
{
    for (int chunks : {1, 5, 8, 23}) {
        for (int n : {1, 2, 3, 8}) {
            std::vector<int> seen(std::size_t(chunks), 0);
            for (int s = 0; s < n; ++s) {
                int prev = -1;
                for (int j : Campaign::shardChunks(chunks, s, n)) {
                    ASSERT_GE(j, 0);
                    ASSERT_LT(j, chunks);
                    EXPECT_GT(j, prev) << "ascending within a shard";
                    EXPECT_EQ(j % n, s) << "round-robin ownership";
                    prev = j;
                    ++seen[std::size_t(j)];
                }
            }
            for (int j = 0; j < chunks; ++j)
                EXPECT_EQ(seen[std::size_t(j)], 1)
                    << "chunk " << j << " covered exactly once";
        }
    }
    EXPECT_THROW(Campaign::shardChunks(4, 3, 3), CampaignError);
    EXPECT_THROW(Campaign::shardChunks(4, -1, 3), CampaignError);
    EXPECT_THROW(Campaign::shardChunks(4, 0, 0), CampaignError);
}

// ---------------------------------------------------------------------------
// execution: merge-vs-unsharded bit-identity and resume
// ---------------------------------------------------------------------------

TEST(CampaignRun, MergeBitIdenticalToUnsharded)
{
    const Campaign c = Campaign::parse(kSmall);
    const fs::path fullDir = freshDir("full");
    const fs::path shardDir = freshDir("shards");

    const CampaignRunOutcome full =
        runShard(c, fullDir, 0, 1, /*sharded=*/false);
    EXPECT_EQ(full.executed, 2);
    EXPECT_EQ(fs::path(full.artifactPath).filename().string(),
              "BENCH_unit_small.json");

    std::vector<BenchResult> shards;
    for (int s = 0; s < 2; ++s) {
        const CampaignRunOutcome o = runShard(c, shardDir, s, 2);
        EXPECT_EQ(fs::path(o.artifactPath).filename().string(),
                  "BENCH_unit_small.shard" + std::to_string(s) +
                      "of2.json");
        shards.push_back(uasim::core::loadResultFile(o.artifactPath));
    }

    const BenchResult merged = mergeShardResults(shards);
    const BenchResult &ref = full.artifact;
    EXPECT_EQ(merged.bench, ref.bench);
    ASSERT_EQ(merged.cells.size(), ref.cells.size());
    ASSERT_EQ(merged.cells.size(), 4u);
    for (std::size_t i = 0; i < merged.cells.size(); ++i) {
        const auto &m = merged.cells[i];
        const auto &r = ref.cells[i];
        EXPECT_EQ(m.trace, r.trace) << i;
        EXPECT_EQ(m.config, r.config) << i;
        EXPECT_EQ(m.traceInstrs, r.traceInstrs) << i;
        // Bit-identity over the full simulated counter table.
        for (const auto &f : uasim::core::simResultFields())
            EXPECT_EQ(m.sim.*(f.member), r.sim.*(f.member))
                << f.name << " cell " << i;
    }
    EXPECT_EQ(merged.stats.cellsRun, ref.stats.cellsRun);
    EXPECT_EQ(merged.stats.instrsReplayed, ref.stats.instrsReplayed);

    // And the differ agrees end to end (params, metrics, mixes too).
    const auto diff = uasim::core::diffResults(ref, merged);
    EXPECT_EQ(diff.status, uasim::core::DiffStatus::Match)
        << (diff.regressions.empty() ? "" : diff.regressions[0]);
}

TEST(CampaignRun, ResumeSkipsPublishedChunks)
{
    const Campaign c = Campaign::parse(kSmall);
    const fs::path dir = freshDir("resume");

    const CampaignRunOutcome first = runShard(c, dir, 0, 1, false);
    EXPECT_EQ(first.executed, 2);
    EXPECT_EQ(first.skipped, 0);

    // Everything published: the re-invocation executes nothing, and
    // the artifact's simulated content is unchanged.
    const CampaignRunOutcome again = runShard(c, dir, 0, 1, false);
    EXPECT_EQ(again.executed, 0);
    EXPECT_EQ(again.skipped, 2);
    EXPECT_EQ(
        uasim::core::diffResults(first.artifact, again.artifact).status,
        uasim::core::DiffStatus::Match);

    // Delete one chunk artifact: exactly that chunk re-executes.
    ASSERT_EQ(again.chunks.size(), 2u);
    fs::remove(fs::path(again.chunkDir) / again.chunks[1].file);
    const CampaignRunOutcome redo = runShard(c, dir, 0, 1, false);
    EXPECT_EQ(redo.executed, 1);
    EXPECT_EQ(redo.skipped, 1);
    EXPECT_TRUE(redo.chunks[0].skipped);
    EXPECT_FALSE(redo.chunks[1].skipped);
    EXPECT_EQ(
        uasim::core::diffResults(first.artifact, redo.artifact).status,
        uasim::core::DiffStatus::Match);

    // A corrupt chunk artifact re-executes instead of failing.
    {
        std::ofstream bad(fs::path(redo.chunkDir) /
                          redo.chunks[0].file);
        bad << "not json";
    }
    const CampaignRunOutcome healed = runShard(c, dir, 0, 1, false);
    EXPECT_EQ(healed.executed, 1);
    EXPECT_EQ(
        uasim::core::diffResults(first.artifact, healed.artifact).status,
        uasim::core::DiffStatus::Match);
}

TEST(CampaignRun, MergeRejections)
{
    const Campaign c = Campaign::parse(kSmall);
    const fs::path dir = freshDir("reject");
    std::vector<BenchResult> shards;
    for (int s = 0; s < 2; ++s)
        shards.push_back(uasim::core::loadResultFile(
            runShard(c, dir, s, 2).artifactPath));

    // Overlap: the same shard twice.
    EXPECT_THROW(mergeShardResults({shards[0], shards[0]}),
                 CampaignError);
    // Missing shard 1.
    EXPECT_THROW(mergeShardResults({shards[0]}), CampaignError);
    // Not a shard artifact (the unsharded final form).
    const CampaignRunOutcome full =
        runShard(c, freshDir("reject_full"), 0, 1, false);
    EXPECT_THROW(mergeShardResults({full.artifact, shards[1]}),
                 CampaignError);
    // Mismatched campaign identity: a different-execs sibling.
    std::string bumped(kSmall);
    bumped.replace(bumped.find("execs = 2"), 9, "execs = 3");
    std::string renamed(bumped);  // same name, different hash
    const Campaign c2 = Campaign::parse(renamed);
    const BenchResult other = uasim::core::loadResultFile(
        runShard(c2, freshDir("reject_other"), 0, 2).artifactPath);
    EXPECT_THROW(mergeShardResults({other, shards[1]}), CampaignError);
    // Wrong per-shard cell count.
    BenchResult truncated = shards[0];
    truncated.cells.pop_back();
    EXPECT_THROW(mergeShardResults({truncated, shards[1]}),
                 CampaignError);
    // The intact pair still merges.
    EXPECT_NO_THROW(mergeShardResults({shards[1], shards[0]}));
}

// ---------------------------------------------------------------------------
// CLI contracts
// ---------------------------------------------------------------------------

TEST(CampaignCli, SweepDriver)
{
    const std::string sweep = UASIM_SWEEP_BIN;
    const std::string conf =
        std::string(UASIM_CAMPAIGN_EXAMPLES) + "/fig9_ci.conf";

    EXPECT_EQ(run(sweep + " --help").exit, 0);
    EXPECT_EQ(run(sweep + " --version").exit, 0);
    EXPECT_EQ(run(sweep).exit, 2);
    EXPECT_EQ(run(sweep + " frobnicate " + conf).exit, 2);
    EXPECT_EQ(run(sweep + " run " + conf).exit, 2)
        << "run without --json must be a usage error";
    EXPECT_EQ(run(sweep + " run /nonexistent.conf --json /tmp/x").exit,
              2);
    EXPECT_EQ(run(sweep + " run " + conf + " --shard 9 --json /tmp/x")
                  .exit,
              2)
        << "--shard wants I/N";

    const RunResult expand = run(sweep + " expand " + conf);
    EXPECT_EQ(expand.exit, 0);
    EXPECT_NE(expand.out.find("fig9_ci"), std::string::npos);
    EXPECT_NE(expand.out.find("chunk 0"), std::string::npos);
    // The committed CI campaign keeps its advertised shape.
    EXPECT_NE(expand.out.find("chunks    3"), std::string::npos);
    EXPECT_NE(expand.out.find("configs   6"), std::string::npos);

    // A malformed campaign is a usage-class failure (2).
    const fs::path badConf = freshDir("cli") / "bad.conf";
    {
        std::ofstream f(badConf);
        f << "[campaign]\nname = x\n";
    }
    EXPECT_EQ(
        run(sweep + " expand " + badConf.string()).exit, 2);
}

TEST(CampaignCli, ReportMerge)
{
    const std::string report = UASIM_REPORT_BIN;
    EXPECT_EQ(run(report + " merge").exit, 2);
    EXPECT_EQ(run(report + " merge /tmp/out.json").exit, 2);
    // A directory with no shard artifacts is a schema-class error.
    const fs::path empty = freshDir("merge_empty");
    EXPECT_EQ(run(report + " merge " + empty.string() + "/out.json " +
                  empty.string())
                  .exit,
              2);
    // merge is documented in --help.
    const RunResult help = run(report + " --help");
    EXPECT_EQ(help.exit, 0);
    EXPECT_NE(help.out.find("merge"), std::string::npos);
}
