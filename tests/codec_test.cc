/**
 * @file
 * Mini-codec integration tests: encoder/decoder synchronization,
 * quality, stage counting, and the profile model.
 */

#include <gtest/gtest.h>

#include "decoder/codec.hh"
#include "decoder/profile.hh"
#include "decoder/transform.hh"
#include "h264/idct_ref.hh"
#include "video/rng.hh"

using namespace uasim;
using dec::CodecConfig;
using dec::MiniDecoder;
using dec::MiniEncoder;
using dec::StageCounts;

namespace {

CodecConfig
smallConfig(video::Content content, int qp = 28, int frames = 3)
{
    CodecConfig cfg;
    cfg.seq = video::makeParams(content, {176, 144, "qcif"});
    cfg.qp = qp;
    cfg.frames = frames;
    return cfg;
}

} // namespace

TEST(Transform, FullChainReconstructsAtLowQp)
{
    // The raw forward/inverse pair is not unit-scale: the standard's
    // normalization lives in the quant/dequant multipliers. At the
    // lowest QPs the full chain forward -> quant -> dequant -> idct
    // reconstructs the residual within a couple of LSBs.
    video::Rng rng(8);
    for (int iter = 0; iter < 200; ++iter) {
        std::int16_t res[16], coeff[16], lev[16], deq[16];
        std::uint8_t base[16], out[16];
        for (int i = 0; i < 16; ++i) {
            base[i] = std::uint8_t(60 + rng.below(100));
            res[i] = std::int16_t(rng.range(-50, 50));
            out[i] = base[i];
        }
        dec::forward4x4(res, coeff);
        dec::quant4x4(coeff, lev, 0);
        dec::dequant4x4(lev, deq, 0);
        h264::idct4x4AddRef(out, 4, deq);
        for (int i = 0; i < 16; ++i) {
            int want = std::clamp(base[i] + res[i], 0, 255);
            ASSERT_LE(std::abs(out[i] - want), 2)
                << "iter " << iter << " i " << i;
        }
    }
}

TEST(Transform, QuantDequantProperties)
{
    std::int16_t res[16], coeff[16], lev[16], deq[16];
    for (int i = 0; i < 16; ++i)
        res[i] = std::int16_t(10 * i - 70);
    dec::forward4x4(res, coeff);
    dec::quant4x4(coeff, lev, 30);
    dec::dequant4x4(lev, deq, 30);
    for (int i = 0; i < 16; ++i) {
        // Sign preserved, zeros stay zero.
        if (lev[i] == 0) {
            EXPECT_EQ(deq[i], 0) << i;
        } else {
            EXPECT_EQ(deq[i] > 0, coeff[i] > 0) << i;
            // Dequant rescales into the IDCT input domain: bounded by
            // a small constant times the coefficient magnitude.
            EXPECT_LE(std::abs(deq[i]), 6 * std::abs(coeff[i]) + 64)
                << i;
        }
    }
    // Higher QP quantizes harder.
    std::int16_t lev_hi[16];
    dec::quant4x4(coeff, lev_hi, 44);
    long sum_lo = 0, sum_hi = 0;
    for (int i = 0; i < 16; ++i) {
        sum_lo += std::abs(lev[i]);
        sum_hi += std::abs(lev_hi[i]);
    }
    EXPECT_LT(sum_hi, sum_lo);
}

TEST(Codec, EncoderDecoderStayBitExactInSync)
{
    for (auto content : {video::Content::RushHour,
                         video::Content::Riverbed}) {
        CodecConfig cfg = smallConfig(content);
        MiniEncoder enc(cfg);
        MiniDecoder dec(cfg);
        StageCounts counts;
        for (int f = 0; f < cfg.frames; ++f) {
            auto ef = enc.encodeFrame(f);
            dec.decodeFrame(ef, counts);
            const auto &a = enc.recon().luma();
            const auto &b = dec.picture().luma();
            for (int y = 0; y < a.height(); ++y) {
                for (int x = 0; x < a.width(); ++x) {
                    ASSERT_EQ(a.at(x, y), b.at(x, y))
                        << "frame " << f << " (" << x << "," << y << ")";
                }
            }
        }
    }
}

TEST(Codec, ReasonableQuality)
{
    CodecConfig cfg = smallConfig(video::Content::Pedestrian, 26);
    MiniEncoder enc(cfg);
    MiniDecoder dec(cfg);
    StageCounts counts;
    for (int f = 0; f < cfg.frames; ++f) {
        auto ef = enc.encodeFrame(f);
        dec.decodeFrame(ef, counts);
        EXPECT_GT(dec::lumaPsnr(enc.source(), dec.picture()), 28.0)
            << "frame " << f;
        EXPECT_GT(ef.bits.size(), 100u);
    }
}

TEST(Codec, HigherQpMeansFewerBits)
{
    auto bits_at = [&](int qp) {
        CodecConfig cfg = smallConfig(video::Content::Pedestrian, qp, 2);
        MiniEncoder enc(cfg);
        std::size_t total = 0;
        for (int f = 0; f < cfg.frames; ++f)
            total += enc.encodeFrame(f).bits.size();
        return total;
    };
    EXPECT_GT(bits_at(22), bits_at(38));
}

TEST(Codec, StageCountsConsistent)
{
    CodecConfig cfg = smallConfig(video::Content::BlueSky, 30, 3);
    MiniEncoder enc(cfg);
    MiniDecoder dec(cfg);
    StageCounts counts;
    for (int f = 0; f < cfg.frames; ++f) {
        auto ef = enc.encodeFrame(f);
        dec.decodeFrame(ef, counts);
    }
    const std::uint64_t mbs_per_frame = (176 / 16) * (144 / 16);
    EXPECT_EQ(counts.mbs, mbs_per_frame * 3);
    EXPECT_EQ(counts.deblockMbs, mbs_per_frame * 3);
    EXPECT_EQ(counts.frames, 3u);
    EXPECT_GT(counts.cabacBins, 1000u);
    EXPECT_GT(counts.idct4x4, 100u);
    EXPECT_EQ(counts.videoOutBytes, std::uint64_t(176) * 144 * 3 / 2 * 3);
    // Some MC happened (frames 1, 2 are predicted).
    std::uint64_t mc_total = 0;
    for (int s = 0; s < 3; ++s)
        for (int f = 0; f < 16; ++f)
            mc_total += counts.lumaMc[s][f];
    EXPECT_GT(mc_total, 50u);
}

TEST(Codec, IntraOnlyFirstFrameHasNoMc)
{
    CodecConfig cfg = smallConfig(video::Content::RushHour, 30, 1);
    MiniEncoder enc(cfg);
    MiniDecoder dec(cfg);
    StageCounts counts;
    dec.decodeFrame(enc.encodeFrame(0), counts);
    std::uint64_t mc_total = 0;
    for (int s = 0; s < 3; ++s)
        for (int f = 0; f < 16; ++f)
            mc_total += counts.lumaMc[s][f];
    EXPECT_EQ(mc_total, 0u);
}

TEST(Profile, CostsAndEstimateShape)
{
    CodecConfig cfg = smallConfig(video::Content::Pedestrian, 30, 2);
    MiniEncoder enc(cfg);
    MiniDecoder dec(cfg);
    StageCounts counts;
    for (int f = 0; f < cfg.frames; ++f)
        dec.decodeFrame(enc.encodeFrame(f), counts);

    auto cfg4 = timing::CoreConfig::fourWayOoO();
    auto scalar = dec::measureStageCosts(h264::Variant::Scalar, cfg4);
    auto altivec = dec::measureStageCosts(h264::Variant::Altivec, cfg4);
    auto unaligned =
        dec::measureStageCosts(h264::Variant::Unaligned, cfg4);

    // Vectorization helps the MC kernels; CABAC/deblock identical.
    EXPECT_LT(altivec.lumaMc[0][10], scalar.lumaMc[0][10]);
    EXPECT_LT(unaligned.lumaMc[0][10], altivec.lumaMc[0][10]);
    EXPECT_NEAR(altivec.cabacBin, scalar.cabacBin,
                scalar.cabacBin * 0.02);
    EXPECT_NEAR(altivec.deblockMb, scalar.deblockMb,
                scalar.deblockMb * 0.02);

    auto es = dec::estimateProfile(counts, scalar, 0.0);
    auto ea = dec::estimateProfile(counts, altivec, 0.0);
    auto eu = dec::estimateProfile(counts, unaligned, 0.0);
    EXPECT_GT(es.totalCycles(), ea.totalCycles());
    EXPECT_GT(ea.totalCycles(), eu.totalCycles());
    EXPECT_DOUBLE_EQ(ea.deblock, es.deblock);
    EXPECT_DOUBLE_EQ(ea.cabac, es.cabac);
    EXPECT_GT(es.seconds(2.0e9), 0.0);
}
