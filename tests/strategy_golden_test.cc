/**
 * @file
 * Golden-vector tests for the Table I strategy layer: every
 * RealignStrategy idiom, at every alignment offset 0..15, must load
 * and store byte-exactly what memcpy would, at exactly the
 * instruction budget strategyLoadInstrs/strategyStoreInstrs
 * tabulates. Inputs are randomized but fixed-seed (video/rng.hh).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "trace/emitter.hh"
#include "trace/sink.hh"
#include "vmx/buffer.hh"
#include "vmx/realign.hh"
#include "vmx/strategies.hh"
#include "video/rng.hh"

using namespace uasim;
using vmx::CPtr;
using vmx::Ptr;
using vmx::RealignStrategy;
using vmx::Vec;

namespace {

constexpr int numStrategies = int(RealignStrategy::NumStrategies);

struct Env {
    trace::CountingSink sink;
    trace::Emitter em{sink};
    vmx::VecOps vo{em};
};

void
fillRandom(vmx::AlignedBuffer &buf, std::uint32_t seed)
{
    video::Rng rng(seed);
    for (std::size_t i = 0; i < buf.size(); ++i)
        buf[i] = std::uint8_t(rng.below(256));
}

} // namespace

/// (strategy, offset) grid, the whole Table I cross product.
class StrategyGolden
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    RealignStrategy strat() const
    {
        return static_cast<RealignStrategy>(std::get<0>(GetParam()));
    }
    int offset() const { return std::get<1>(GetParam()); }
};

TEST_P(StrategyGolden, LoadIsByteExactVsMemcpy)
{
    Env env;
    vmx::AlignedBuffer buf(128, unsigned(offset()));
    fillRandom(buf, 0xA11CE000u + unsigned(offset()));

    for (std::int64_t off : {std::int64_t{0}, std::int64_t{16},
                             std::int64_t{37}}) {
        std::uint8_t want[16];
        std::memcpy(want, buf.data() + off, 16);
        Vec got = vmx::strategyLoadU(env.vo, strat(), CPtr{buf.data()},
                                     off);
        for (int i = 0; i < 16; ++i) {
            ASSERT_EQ(got.u8(i), want[i])
                << vmx::strategyName(strat()) << " offset " << offset()
                << " off " << off << " byte " << i;
        }
    }
}

TEST_P(StrategyGolden, LoadCostMatchesTableI)
{
    Env env;
    vmx::AlignedBuffer buf(64, unsigned(offset()));
    fillRandom(buf, 0xBEEF);
    (void)vmx::strategyLoadU(env.vo, strat(), CPtr{buf.data()});
    EXPECT_EQ(env.sink.mix().total(),
              std::uint64_t(vmx::strategyLoadInstrs(strat())))
        << vmx::strategyName(strat()) << " offset " << offset();
}

TEST_P(StrategyGolden, StoreIsByteExactVsMemcpy)
{
    Env env;
    vmx::AlignedBuffer buf(128, unsigned(offset()));
    vmx::AlignedBuffer want(128, unsigned(offset()));
    fillRandom(buf, 0x57123u + unsigned(offset()));
    for (std::size_t i = 0; i < buf.size(); ++i)
        want[i] = buf[i];

    video::Rng rng(0xDA7A + unsigned(offset()));
    Vec data;
    for (int i = 0; i < 16; ++i)
        data.b[i] = std::uint8_t(rng.below(256));

    auto ctx = vmx::swStoreUPrologue(env.vo);
    const std::int64_t off = 21;
    std::memcpy(want.data() + off, data.b.data(), 16);
    vmx::strategyStoreU(env.vo, strat(), ctx, data, Ptr{buf.data()},
                        off);
    for (std::size_t i = 0; i < buf.size(); ++i) {
        ASSERT_EQ(buf[i], want[i])
            << vmx::strategyName(strat()) << " offset " << offset()
            << " byte " << i;
    }
}

TEST_P(StrategyGolden, StoreCostMatchesTableI)
{
    Env env;
    vmx::AlignedBuffer buf(96, unsigned(offset()));
    buf.fill(0);
    Vec data;
    for (int i = 0; i < 16; ++i)
        data.b[i] = std::uint8_t(i);
    auto ctx = vmx::swStoreUPrologue(env.vo);
    auto before = env.sink.mix().total();
    vmx::strategyStoreU(env.vo, strat(), ctx, data, Ptr{buf.data()}, 5);
    EXPECT_EQ(env.sink.mix().total() - before,
              std::uint64_t(vmx::strategyStoreInstrs(strat())))
        << vmx::strategyName(strat()) << " offset " << offset();
}

INSTANTIATE_TEST_SUITE_P(
    TableI, StrategyGolden,
    ::testing::Combine(::testing::Range(0, numStrategies),
                       ::testing::Range(0, 16)));

TEST(StrategyGoldenMeta, EveryStrategyHasMetadata)
{
    for (int i = 0; i < numStrategies; ++i) {
        auto s = static_cast<RealignStrategy>(i);
        EXPECT_FALSE(vmx::strategyName(s).empty());
        EXPECT_FALSE(vmx::strategyIsa(s).empty());
        EXPECT_GE(vmx::strategyLoadInstrs(s), 1);
        EXPECT_GE(vmx::strategyStoreInstrs(s), 1);
    }
}
