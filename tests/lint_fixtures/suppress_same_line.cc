// Suppression syntax, same-line form: the allow() comment on the
// offending line silences exactly that rule there.

#include <chrono>  // uasim-lint: allow(sim-determinism)

inline double
tick()
{
    return 1.0;
}
