// Suppression is per-rule: allowing checked-io does not silence the
// sim-determinism finding on this line.

#include <chrono>  // uasim-lint: allow(checked-io)

inline double
tick()
{
    return 3.0;
}
