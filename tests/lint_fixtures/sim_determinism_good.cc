// Known-good [sim-determinism]: deterministic code in a simulated
// path, including near-miss identifiers the rule must not trip on
// (a `time_` prefix member, "rand" inside a word and a comment, an
// ordered map).

#include <cstdint>
#include <map>
#include <string>

struct ReplayState {
    std::uint64_t time_budget_cycles = 0;  // not a time() call
    std::map<std::string, int> index;      // ordered: iteration is stable
};

// The Turandot workload name contains "rand"; comments never match.
inline std::uint64_t
advance(ReplayState &st, std::uint64_t cycles)
{
    const std::string strand = "operand";  // identifiers neither
    st.time_budget_cycles += cycles + strand.size();
    return st.time_budget_cycles;
}
