// Known-bad [field-table]: `ghostCounter` is a SimResult counter
// missing from the pointer-to-member field table, and `lostStat` is a
// SweepStats counter that never appears as a serialized field name.
// Scanned standalone (fixture mode), so these local struct
// definitions are the whole world the rule sees.

#include <cstdint>

struct SimResult {
    std::uint64_t cycles = 0;
    std::uint64_t ghostCounter = 0;

    double ipc() const { return cycles ? 1.0 : 0.0; }
};

struct SimResultField {
    const char *name;
    std::uint64_t SimResult::*member;
};

inline constexpr SimResultField simFields[] = {
    {"cycles", &SimResult::cycles},
};

struct SweepStats {
    std::uint64_t cellsRun = 0;
    std::uint64_t lostStat = 0;
};

inline const char *
serializedName()
{
    return "cellsRun";
}
