// Known-bad [sim-determinism] for the campaign layer: a chunk
// scheduler that shuffles execution order with an RNG engine and
// iterates published chunks from an unordered container - exactly the
// nondeterminism the campaign scope extension exists to reject
// (scanned --as src/core/campaign.cc and --as tools/uasim_sweep.cc by
// lint_test).

#include <random>
#include <string>
#include <unordered_set>
#include <vector>

inline std::unordered_set<std::string> publishedChunks;

inline void
shuffleChunks(std::vector<int> &chunks)
{
    std::mt19937 gen(std::random_device{}());
    for (std::size_t i = chunks.size(); i > 1; --i) {
        std::uniform_int_distribution<std::size_t> pick(0, i - 1);
        std::swap(chunks[i - 1], chunks[pick(gen)]);
    }
}
