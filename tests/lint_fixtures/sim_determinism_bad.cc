// Known-bad [sim-determinism]: wall-clock, libc randomness, and an
// unordered container, all in what fixture mode presents as a
// simulated path (scanned --as src/timing/fixture_determinism.cc).

#include <chrono>
#include <cstdlib>
#include <unordered_map>

inline double
sampleWall()
{
    const auto t0 = std::chrono::steady_clock::now();
    (void)t0;
    return static_cast<double>(std::rand());
}

inline std::unordered_map<int, int> hotTable;
