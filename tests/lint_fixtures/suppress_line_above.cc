// Suppression syntax, line-above form: an allow() comment directly
// above the offending line also suppresses it.

// Wall-clock feeds an informational field only.
// uasim-lint: allow(sim-determinism)
#include <chrono>

inline double
tick()
{
    return 2.0;
}
