// Known-bad [checked-io]: discarded fwrite/fclose returns, plus an
// unbraced if-body munmap (a statement-position discard the rule must
// still see).

#include <cstdio>
#include <sys/mman.h>

inline void
teardown(std::FILE *f, void *base, unsigned long len)
{
    std::fwrite("x", 1, 1, f);
    std::fclose(f);
    if (base)
        munmap(base, len);
}
