// Known-good [checked-io]: every return value is checked, returned,
// or explicitly discarded with (void).

#include <cstdio>
#include <sys/mman.h>

inline bool
teardown(std::FILE *f, void *base, unsigned long len)
{
    if (std::fwrite("x", 1, 1, f) != 1)
        return false;
    (void)std::fflush(f);
    const int rc = std::fclose(f);
    if (base && munmap(base, len) != 0)
        return false;
    return rc == 0;
}
