// Known-bad [isa-flags]: an intrinsics header and vector intrinsics
// outside the designated src/trace/simd_decode_* tier TUs (scanned
// --as src/core/fixture_isa.cc). The identical bytes scanned --as a
// designated TU path are the matching known-good case.

#include <immintrin.h>

inline int
sum16(const unsigned char *p)
{
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
    return _mm_extract_epi16(v, 0);
}
