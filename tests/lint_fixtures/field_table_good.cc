// Known-good [field-table]: every SimResult counter is tabled and
// every SweepStats counter appears as a serialized field name.

#include <cstdint>

struct SimResult {
    std::uint64_t cycles = 0;
    std::uint64_t instrs = 0;

    double ipc() const { return cycles ? 1.0 : 0.0; }
};

struct SimResultField {
    const char *name;
    std::uint64_t SimResult::*member;
};

inline constexpr SimResultField simFields[] = {
    {"cycles", &SimResult::cycles},
    {"instrs", &SimResult::instrs},
};

struct SweepStats {
    std::uint64_t cellsRun = 0;
    double wallSeconds = 0.0;
};

inline const char *serializedNames[] = {"cellsRun", "wallSeconds"};
