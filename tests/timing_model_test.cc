/**
 * @file
 * TimingModel interface tests: the factory/registry contract, the
 * cross-model stream-pure differential harness, the shared
 * line-crossing-load gate, and the ooo backend's own mechanisms
 * (store-set prediction, decoupled issue width, memBW throttle).
 *
 * The cross-model harness is the model-vs-model analogue of
 * batched_replay_test: backends may (must, eventually) disagree on
 * cycles, but every stream-pure counter - instruction counts, branch
 * counts, mispredict bits, unaligned-op counts - is a pure function
 * of the record stream and must be identical across "pipeline" and
 * "ooo" on the same seeded kernel traces, from 1 thread to N, cold
 * store and warm.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/result.hh"
#include "core/sweep.hh"
#include "timing/model.hh"
#include "timing/ooo_pipeline.hh"
#include "trace/emitter.hh"
#include "trace/sink.hh"
#include "vmx/buffer.hh"

using namespace uasim;
using core::KernelBench;
using core::KernelSpec;
using core::SweepPlan;
using core::SweepRunner;
using h264::KernelId;
using h264::Variant;
using timing::CoreConfig;
using trace::InstrClass;
using trace::InstrRecord;

namespace {

/// Record @p execs executions of a kernel into a plain record vector.
std::vector<InstrRecord>
kernelRecords(const KernelSpec &spec, Variant variant, int execs)
{
    trace::BufferSink sink;
    KernelBench bench(spec);
    bench.recordTrace(variant, execs, sink);
    return sink.records();
}

/// Feed @p records into a fresh backend selected by @p model.
timing::SimResult
runModel(const std::string &model, CoreConfig cfg,
         const std::vector<InstrRecord> &records)
{
    cfg.model = model;
    auto sim = timing::makeTimingModel(cfg);
    sim->appendBlock(records.data(), records.size());
    return sim->finalize();
}

/// Counters that are pure functions of the record stream: identical
/// across backends by the TimingModel contract. (lineCrossings is
/// stream-pure only on storeless streams - store-to-load forwarding
/// elides cache accesses differently per backend - so it is asserted
/// separately where the stream allows it.)
void
expectStreamInvariantsEqual(const timing::SimResult &a,
                            const timing::SimResult &b,
                            const std::string &label)
{
    EXPECT_EQ(a.instrs, b.instrs) << label;
    EXPECT_EQ(a.branches, b.branches) << label;
    EXPECT_EQ(a.mispredicts, b.mispredicts) << label;
    EXPECT_EQ(a.unalignedVecOps, b.unalignedVecOps) << label;
}

} // namespace

TEST(TimingModelFactory, RegistryListsBothBackends)
{
    const auto &names = timing::timingModelNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "pipeline");
    EXPECT_EQ(names[1], "ooo");
    EXPECT_TRUE(timing::isTimingModel("pipeline"));
    EXPECT_TRUE(timing::isTimingModel("ooo"));
    EXPECT_FALSE(timing::isTimingModel(""));
    EXPECT_FALSE(timing::isTimingModel("turandot"));
}

TEST(TimingModelFactory, SelectsBackendByConfigModel)
{
    CoreConfig cfg = CoreConfig::fourWayOoO();
    for (const auto &name : timing::timingModelNames()) {
        cfg.model = name;
        auto sim = timing::makeTimingModel(cfg);
        ASSERT_NE(sim, nullptr) << name;
        EXPECT_EQ(sim->config().model, name);
        EXPECT_EQ(sim->config().name, cfg.name);
    }
    cfg.model = "no-such-model";
    EXPECT_THROW((void)timing::makeTimingModel(cfg),
                 std::invalid_argument);
    EXPECT_THROW(
        (void)timing::makeBatchedTimingModel({cfg}),
        std::invalid_argument);
}

TEST(TimingModelFactory, EmptyStreamFinalizes)
{
    for (const auto &name : timing::timingModelNames()) {
        CoreConfig cfg = CoreConfig::twoWayInOrder();
        cfg.model = name;
        auto sim = timing::makeTimingModel(cfg);
        auto r = sim->finalize();
        EXPECT_EQ(r.instrs, 0u) << name;
        EXPECT_EQ(r.cycles, 0u) << name;
    }
}

TEST(TimingModelCrossDiff, StreamInvariantsOnSeededKernelTraces)
{
    const KernelSpec specs[] = {
        {KernelId::Sad, 16, false},
        {KernelId::Idct, 4, false},
        {KernelId::LumaMc, 8, false},
    };
    const Variant variants[] = {Variant::Scalar, Variant::Altivec,
                                Variant::Unaligned};
    for (const auto &spec : specs) {
        for (Variant v : variants) {
            auto records = kernelRecords(spec, v, 3);
            ASSERT_FALSE(records.empty());
            for (int p = 0; p < 3; ++p) {
                CoreConfig cfg = CoreConfig::preset(p);
                auto base = runModel("pipeline", cfg, records);
                auto ooo = runModel("ooo", cfg, records);
                const std::string label = spec.name() + "/" +
                    std::string(h264::variantName(v)) + "/" +
                    cfg.name;
                expectStreamInvariantsEqual(base, ooo, label);
                EXPECT_EQ(ooo.instrs, records.size()) << label;
                EXPECT_GT(ooo.cycles, 0u) << label;
            }
        }
    }
}

TEST(TimingModelCrossDiff, BatchedMixedGroupMatchesPerCell)
{
    // A mixed-model group routes through the generic multiplexer;
    // per-cell results must be bit-identical to standalone models.
    auto records =
        kernelRecords({KernelId::Sad, 16, false}, Variant::Unaligned, 2);
    std::vector<CoreConfig> cfgs;
    for (int p = 0; p < 3; ++p) {
        CoreConfig cfg = CoreConfig::preset(p);
        cfg.model = (p % 2 == 0) ? "ooo" : "pipeline";
        cfgs.push_back(cfg);
    }
    auto batch = timing::makeBatchedTimingModel(cfgs);
    EXPECT_EQ(batch->cellCount(), 3);
    batch->appendBlock(records.data(), records.size());
    auto got = batch->finalizeAll();
    ASSERT_EQ(got.size(), cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        auto sim = timing::makeTimingModel(cfgs[i]);
        sim->appendBlock(records.data(), records.size());
        auto want = sim->finalize();
        EXPECT_EQ(want.core, got[i].core);
        for (const auto &f : core::simResultFields())
            EXPECT_EQ(want.*(f.member), got[i].*(f.member))
                << cfgs[i].model << " cell " << i << ": counter "
                << f.name;
    }
}

TEST(TimingModelCrossDiff, SweepRunnerThreadsAndStore)
{
    // The acceptance harness: the same plan, per backend, at 1 and 4
    // threads, cold store and warm. Within one backend every run is
    // bit-identical; across backends the stream invariants agree.
    const std::string dir = ::testing::TempDir() + "/tm_store";
    std::filesystem::remove_all(dir);

    auto makePlan = [] {
        SweepPlan plan;
        plan.addTrace(core::kernelTraceJob({KernelId::Sad, 16, false},
                                           Variant::Unaligned, 2));
        plan.addTrace(core::kernelTraceJob({KernelId::Idct, 4, false},
                                           Variant::Altivec, 2));
        plan.addConfig("2w", CoreConfig::twoWayInOrder());
        plan.addConfig("8w", CoreConfig::eightWayOoO());
        plan.crossProduct();
        return plan;
    };

    struct Run {
        std::string model;
        int threads;
        bool store;
    };
    const Run runs[] = {
        {"pipeline", 1, false}, {"pipeline", 4, false},
        {"pipeline", 1, true},  {"pipeline", 4, true},
        {"ooo", 1, false},      {"ooo", 4, false},
        {"ooo", 1, true},       {"ooo", 4, true},
    };
    std::vector<std::vector<core::SweepCellResult>> all;
    for (const Run &run : runs) {
        SweepPlan plan = makePlan();
        SweepRunner runner(run.threads);
        runner.setTimingModel(run.model);
        if (run.store)
            runner.attachStore(dir);
        all.push_back(runner.run(plan));
    }
    // The first pipeline run is the reference; 4-thread, cold-store
    // (first store runs record through; the second pair replays warm)
    // and warm-store runs must match it bit-exactly.
    for (std::size_t r = 1; r < 4; ++r) {
        ASSERT_EQ(all[0].size(), all[r].size());
        for (std::size_t i = 0; i < all[0].size(); ++i) {
            for (const auto &f : core::simResultFields())
                EXPECT_EQ(all[0][i].sim.*(f.member),
                          all[r][i].sim.*(f.member))
                    << "pipeline run " << r << " cell " << i << ": "
                    << f.name;
        }
    }
    // Same within the ooo runs.
    for (std::size_t r = 5; r < 8; ++r) {
        ASSERT_EQ(all[4].size(), all[r].size());
        for (std::size_t i = 0; i < all[4].size(); ++i) {
            for (const auto &f : core::simResultFields())
                EXPECT_EQ(all[4][i].sim.*(f.member),
                          all[r][i].sim.*(f.member))
                    << "ooo run " << r << " cell " << i << ": "
                    << f.name;
        }
    }
    // Across backends: stream invariants and replayed totals agree.
    ASSERT_EQ(all[0].size(), all[4].size());
    for (std::size_t i = 0; i < all[0].size(); ++i) {
        expectStreamInvariantsEqual(
            all[0][i].sim, all[4][i].sim,
            "cell " + std::to_string(i));
        EXPECT_EQ(all[0][i].traceInstrs, all[4][i].traceInstrs);
        EXPECT_NE(all[0][i].sim.cycles, 0u);
    }
    std::filesystem::remove_all(dir);
}

TEST(CrossingGate, SharedHelperEncodesThePortRule)
{
    CoreConfig cfg = CoreConfig::twoWayInOrder();
    cfg.mem.parallelBanks = false;
    cfg.dReadPorts = 1;
    EXPECT_FALSE(cfg.crossingLoadNeedsSecondPort());
    cfg.dReadPorts = 2;
    EXPECT_TRUE(cfg.crossingLoadNeedsSecondPort());
    cfg.mem.parallelBanks = true;
    EXPECT_FALSE(cfg.crossingLoadNeedsSecondPort());
}

TEST(CrossingGate, OnePortConfigHandledIdenticallyInAllBackends)
{
    // Regression for the PR 5 deadlock: under serialized banks a
    // line-crossing load wants a second read port, but a 1-port core
    // has none to give - the shared CoreConfig helper makes every
    // backend serialize such loads in the load pipe instead of
    // retrying forever. A storeless stream keeps lineCrossings
    // stream-pure, so both backends must also count every crossing.
    // Synthetic line-aligned addresses (the sim never dereferences
    // them): every access straddles a 128-byte line boundary.
    const std::uint64_t base = 0x40000000ull;
    const int n = 300;
    std::vector<timing::SimResult> results;
    for (const auto &name : timing::timingModelNames()) {
        CoreConfig cfg = CoreConfig::twoWayInOrder();
        cfg.model = name;
        cfg.mem.parallelBanks = false;
        cfg.dReadPorts = 1;
        auto sim = timing::makeTimingModel(cfg);
        trace::Emitter em(*sim);
        for (int i = 0; i < n; ++i) {
            em.emitMem(InstrClass::VecLoadU,
                       base + 128 * std::uint64_t(i % 64) + 120, 16,
                       std::source_location::current());
        }
        results.push_back(sim->finalize());
    }
    ASSERT_EQ(results.size(), 2u);
    for (const auto &r : results) {
        EXPECT_EQ(r.instrs, std::uint64_t(n));      // no deadlock
        EXPECT_EQ(r.lineCrossings, std::uint64_t(n));
    }
    expectStreamInvariantsEqual(results[0], results[1], "1-port");
    EXPECT_EQ(results[0].lineCrossings, results[1].lineCrossings);
}

TEST(OoOBackend, StoreSetPredictorTrainsOnFirstViolation)
{
    // A load that aliases the store in front of it, same PCs every
    // iteration: the first encounter speculates (one ordering
    // violation), training merges the pair into a store set, and
    // every later instance waits instead of replaying.
    vmx::AlignedBuffer buf(4096, 0);
    const auto addr = reinterpret_cast<std::uint64_t>(buf.data());
    CoreConfig cfg = CoreConfig::eightWayOoO();
    cfg.model = "ooo";
    timing::OoOPipelineSim sim(cfg);
    trace::Emitter em(sim);
    const int iters = 200;
    for (int i = 0; i < iters; ++i) {
        // Partial overlap (store 8 bytes, load 16 across it) so the
        // load can never forward - only wait or speculate.
        em.emitMem(InstrClass::Store, addr + 4, 8,
                   std::source_location::current());
        em.emitMem(InstrClass::VecLoadU, addr, 16,
                   std::source_location::current());
        em.emit(InstrClass::IntAlu, std::source_location::current());
    }
    auto r = sim.finalize();
    EXPECT_EQ(r.instrs, std::uint64_t(3 * iters));
    EXPECT_GE(sim.memOrderReplays(), 1u);
    EXPECT_LT(sim.memOrderReplays(), std::uint64_t(iters) / 4);
}

TEST(OoOBackend, IssueWidthDecouplesFromFetchWidth)
{
    auto run = [](int issueWidth) {
        CoreConfig cfg = CoreConfig::eightWayOoO();
        cfg.model = "ooo";
        cfg.issueWidth = issueWidth;
        auto sim = timing::makeTimingModel(cfg);
        trace::Emitter em(*sim);
        for (int i = 0; i < 4000; ++i)
            em.emit(InstrClass::IntAlu,
                    std::source_location::current());
        return sim->finalize();
    };
    auto narrow = run(1);
    auto wide = run(0);  // 0 = couple to fetchWidth (8)
    EXPECT_EQ(narrow.instrs, wide.instrs);
    EXPECT_GE(narrow.cycles, 4000u);  // 1 instruction per cycle max
    EXPECT_LT(wide.cycles, narrow.cycles / 2);
}

TEST(OoOBackend, OverlapsLoadsBeyondInOrderPipeline)
{
    // The mixed load/ALU chain of timing_test's in-order-vs-OoO case:
    // the ooo backend on an in-order config still schedules fully out
    // of order (it ignores outOfOrder/inorderLookahead), so it beats
    // the pipeline backend on the same 2-way machine.
    vmx::AlignedBuffer buf(8192, 0);
    const auto base = reinterpret_cast<std::uint64_t>(buf.data());
    trace::BufferSink sink;
    {
        trace::Emitter em(sink);
        trace::Dep prev{};
        for (int i = 0; i < 500; ++i) {
            auto ld = em.emitMem(InstrClass::Load,
                                 base + (i % 64) * 8, 8,
                                 std::source_location::current(),
                                 prev);
            prev = em.emit(InstrClass::IntAlu,
                           std::source_location::current(), ld);
            for (int k = 0; k < 4; ++k)
                em.emit(InstrClass::IntAlu,
                        std::source_location::current());
        }
    }
    CoreConfig cfg = CoreConfig::twoWayInOrder();
    // Strict in-order issue: the preset's lookahead of 2 already lets
    // the pipeline backend slip past a stalled load, which on this
    // narrow machine reaches the same bound as full reordering.
    cfg.inorderLookahead = 1;
    auto in_order = runModel("pipeline", cfg, sink.records());
    auto ooo = runModel("ooo", cfg, sink.records());
    expectStreamInvariantsEqual(in_order, ooo, "2w chain");
    EXPECT_LT(ooo.cycles, in_order.cycles);
}

TEST(MemBandwidth, ThrottleSlowsMissStreamsInBothBackends)
{
    // memBWBytesPerCycle serializes line fills on the memory bus; a
    // stream of independent far-apart misses gets slower as bandwidth
    // shrinks, in either backend, without touching stream counters.
    auto run = [](const std::string &model, int bw) {
        CoreConfig cfg = CoreConfig::eightWayOoO();
        cfg.model = model;
        cfg.mem.memBWBytesPerCycle = bw;
        auto sim = timing::makeTimingModel(cfg);
        trace::Emitter em(*sim);
        for (int i = 0; i < 200; ++i) {
            em.emitMem(InstrClass::Load,
                       0x40000000ull + std::uint64_t(i) * 4096, 8,
                       std::source_location::current());
        }
        return sim->finalize();
    };
    for (const auto &model : timing::timingModelNames()) {
        auto unlimited = run(model, 0);
        auto esesc = run(model, 11);  // the esesc reference value
        auto trickle = run(model, 2);
        expectStreamInvariantsEqual(unlimited, trickle, model);
        EXPECT_GT(esesc.cycles, unlimited.cycles) << model;
        EXPECT_GT(trickle.cycles, esesc.cycles) << model;
    }
}

TEST(MemBandwidth, ZeroBandwidthIsBitIdenticalToPreThrottleModel)
{
    // The default (0 = unlimited) must not perturb any existing
    // result: the throttle only engages when configured.
    auto records =
        kernelRecords({KernelId::LumaMc, 16, false},
                      Variant::Altivec, 2);
    CoreConfig cfg = CoreConfig::fourWayOoO();
    cfg.mem.memBWBytesPerCycle = 0;
    auto a = runModel("pipeline", cfg, records);
    CoreConfig plain = CoreConfig::fourWayOoO();
    auto b = runModel("pipeline", plain, records);
    for (const auto &f : core::simResultFields())
        EXPECT_EQ(a.*(f.member), b.*(f.member)) << f.name;
}
