/**
 * @file
 * core/result.hh differ semantics (the uasim-report contract):
 * match / regression / schema-error verdicts and their exit codes,
 * bit-exact gating on simulated fields, and wall-time fields being
 * reported but never gating.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/result.hh"
#include "trace/instr.hh"

using namespace uasim;
using core::BenchResult;
using core::DiffStatus;

namespace {

/// A plausible two-cell artifact.
BenchResult
makeResult()
{
    BenchResult r;
    r.bench = "fig_test";
    r.addParam("quick", json::Value(true));
    r.addParam("execs", json::Value(8));
    r.addMetric("luma16x16/speedup", 1.5);
    r.addMetric("chroma8x8/speedup", 1.0876640419947508);

    core::ResultCell a;
    a.trace = "luma16x16/unaligned/8/12345";
    a.config = "2-way";
    a.traceInstrs = 100000;
    a.sim.core = "2-way";
    a.sim.cycles = 35300;
    a.sim.instrs = 100000;
    a.sim.branches = 5000;
    a.mix.add(trace::InstrClass::VecLoadU, 4000);
    a.mix.add(trace::InstrClass::IntAlu, 96000);
    r.cells.push_back(a);

    core::ResultCell b = a;
    b.config = "4-way";
    b.sim.core = "4-way";
    b.sim.cycles = 18211;
    r.cells.push_back(b);

    core::SweepStats s;
    s.threads = 1;
    s.cellsRun = 2;
    s.instrsReplayed = 200000;
    s.tracesRecorded = 1;
    s.instrsRecorded = 100000;
    s.recordSeconds = 0.25;
    s.wallSeconds = 0.5;
    r.setStats(s);
    return r;
}

} // namespace

TEST(ReportTool, ExitCodes)
{
    EXPECT_EQ(core::exitCode(DiffStatus::Match), 0);
    EXPECT_EQ(core::exitCode(DiffStatus::Regression), 1);
    EXPECT_EQ(core::exitCode(DiffStatus::SchemaError), 2);
    EXPECT_EQ(core::worse(DiffStatus::Match, DiffStatus::Regression),
              DiffStatus::Regression);
    EXPECT_EQ(
        core::worse(DiffStatus::SchemaError, DiffStatus::Regression),
        DiffStatus::SchemaError);
    EXPECT_EQ(core::worse(DiffStatus::Match, DiffStatus::Match),
              DiffStatus::Match);
}

TEST(ReportTool, IdenticalResultsMatch)
{
    const auto diff = core::diffResults(makeResult(), makeResult());
    EXPECT_EQ(diff.status, DiffStatus::Match);
    EXPECT_TRUE(diff.regressions.empty());
}

TEST(ReportTool, SingleCycleDriftIsRegression)
{
    BenchResult cur = makeResult();
    cur.cells[1].sim.cycles += 1;
    const auto diff = core::diffResults(makeResult(), cur);
    EXPECT_EQ(diff.status, DiffStatus::Regression);
    ASSERT_FALSE(diff.regressions.empty());
    EXPECT_NE(diff.regressions[0].find("cycles"), std::string::npos);
}

TEST(ReportTool, MixDriftIsRegression)
{
    BenchResult cur = makeResult();
    cur.cells[0].mix.add(trace::InstrClass::VecPerm, 1);
    EXPECT_EQ(core::diffResults(makeResult(), cur).status,
              DiffStatus::Regression);
}

TEST(ReportTool, MetricBitChangeIsRegression)
{
    BenchResult cur = makeResult();
    // One ulp on a derived metric must gate.
    cur.metrics[1].second =
        std::nextafter(cur.metrics[1].second, 2.0);
    const auto diff = core::diffResults(makeResult(), cur);
    EXPECT_EQ(diff.status, DiffStatus::Regression);
}

TEST(ReportTool, ParamChangeIsRegression)
{
    BenchResult cur = makeResult();
    cur.params[1].second = json::Value(16);
    EXPECT_EQ(core::diffResults(makeResult(), cur).status,
              DiffStatus::Regression);
}

TEST(ReportTool, CellShapeChangeIsRegression)
{
    BenchResult cur = makeResult();
    cur.cells.pop_back();
    EXPECT_EQ(core::diffResults(makeResult(), cur).status,
              DiffStatus::Regression);

    BenchResult relabeled = makeResult();
    relabeled.cells[0].trace = "luma16x16/unaligned/16/12345";
    EXPECT_EQ(core::diffResults(makeResult(), relabeled).status,
              DiffStatus::Regression);
}

TEST(ReportTool, WallTimeFieldsNeverGate)
{
    BenchResult cur = makeResult();
    // A warm 4-thread rerun: all informational fields shift.
    cur.stats.threads = 4;
    cur.stats.tracesRecorded = 0;
    cur.stats.tracesLoaded = 1;
    cur.stats.instrsRecorded = 0;
    cur.stats.instrsLoaded = 100000;
    cur.stats.recordSeconds = 0;
    cur.stats.loadSeconds = 0.01;
    cur.stats.wallSeconds = 0.02;
    const auto diff = core::diffResults(makeResult(), cur);
    EXPECT_EQ(diff.status, DiffStatus::Match);
    // ... but they are surfaced as notes.
    EXPECT_FALSE(diff.notes.empty());
}

TEST(ReportTool, DeterministicSweepFieldsGate)
{
    BenchResult cur = makeResult();
    cur.stats.instrsReplayed += 1;
    EXPECT_EQ(core::diffResults(makeResult(), cur).status,
              DiffStatus::Regression);
}

TEST(ReportTool, BaselineFormComparesAgainstFullForm)
{
    // Committed baselines are stripped of the informational block;
    // a fresh full-form run must still compare clean against them.
    const BenchResult baseline =
        BenchResult::parse(makeResult().serialize(false));
    EXPECT_FALSE(baseline.hasInformational);
    const auto diff = core::diffResults(baseline, makeResult());
    EXPECT_EQ(diff.status, DiffStatus::Match);
}

TEST(ReportTool, SchemaErrors)
{
    EXPECT_THROW(BenchResult::parse("{\"schema\": nope"),
                 core::SchemaError);
    EXPECT_THROW(core::loadResultFile("/nonexistent/BENCH_x.json"),
                 core::SchemaError);
}

TEST(ReportTool, SaveLoadRoundTrip)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "uasim_report_tool_test";
    fs::create_directories(dir);
    const std::string path = (dir / "BENCH_fig_test.json").string();

    const BenchResult original = makeResult();
    core::saveResultFile(original, path);
    const BenchResult loaded = core::loadResultFile(path);
    EXPECT_EQ(core::diffResults(original, loaded).status,
              DiffStatus::Match);
    EXPECT_EQ(loaded.serialize(), original.serialize());

    fs::remove_all(dir);
}

TEST(ReportTool, DuplicateMetricOrParamNameThrows)
{
    BenchResult r = makeResult();
    r.addMetric("luma16x16/speedup", 2.0);
    EXPECT_THROW(r.serialize(), std::logic_error);

    BenchResult p = makeResult();
    p.addParam("quick", json::Value(false));
    EXPECT_THROW(p.serialize(), std::logic_error);
}
