/**
 * @file
 * Property tests for the realignment idioms and the Table I strategy
 * layer: every strategy must produce the same 16 bytes for every
 * alignment offset, at the instruction cost the paper tabulates.
 */

#include <gtest/gtest.h>

#include "trace/emitter.hh"
#include "trace/sink.hh"
#include "vmx/buffer.hh"
#include "vmx/realign.hh"
#include "vmx/scalarops.hh"
#include "vmx/strategies.hh"

using namespace uasim;
using vmx::CPtr;
using vmx::Ptr;
using vmx::RealignStrategy;
using vmx::Vec;

namespace {

struct Env {
    trace::CountingSink sink;
    trace::Emitter em{sink};
    vmx::ScalarOps so{em};
    vmx::VecOps vo{em};
};

} // namespace

/// Parameterized over the 16 alignment offsets.
class RealignOffset : public ::testing::TestWithParam<int>
{
};

TEST_P(RealignOffset, SwLoadUMatchesMemcpy)
{
    int off = GetParam();
    Env env;
    vmx::AlignedBuffer buf(64, off);
    for (int i = 0; i < 64; ++i)
        buf[i] = std::uint8_t(7 * i + 3);
    Vec v = vmx::swLoadU(env.vo, CPtr{buf.data()});
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(v.u8(i), buf[i]) << "offset " << off << " byte " << i;
}

TEST_P(RealignOffset, SwLoadUCostsFourInstructions)
{
    int off = GetParam();
    Env env;
    vmx::AlignedBuffer buf(64, off);
    vmx::swLoadU(env.vo, CPtr{buf.data()});
    EXPECT_EQ(env.sink.mix().total(), 4u);
    EXPECT_EQ(env.sink.mix().vecLoads(), 2u);
    EXPECT_EQ(env.sink.mix().vecPerm(), 2u);  // lvsl + vperm
}

TEST_P(RealignOffset, SwStoreUWritesExactly16Bytes)
{
    int off = GetParam();
    Env env;
    vmx::AlignedBuffer buf(96, off);
    buf.fill(0xaa);
    Vec data;
    for (int i = 0; i < 16; ++i)
        data.b[i] = std::uint8_t(i + 1);
    auto ctx = vmx::swStoreUPrologue(env.vo);
    vmx::swStoreU(env.vo, ctx, data, Ptr{buf.data() + 16});
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(buf[i], 0xaa) << i;
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(buf[16 + i], i + 1) << i;
    for (int i = 32; i < 48; ++i)
        EXPECT_EQ(buf[i], 0xaa) << i;
}

TEST_P(RealignOffset, SwStorePartialWidths)
{
    int off = GetParam();
    for (int width : {4, 8, 12}) {
        Env env;
        vmx::AlignedBuffer buf(96, off);
        buf.fill(0x55);
        Vec data;
        for (int i = 0; i < 16; ++i)
            data.b[i] = std::uint8_t(0xc0 + i);
        auto ctx = vmx::swStoreUPrologue(env.vo);
        Vec mask = vmx::makeWidthMask(env.vo, width);
        vmx::swStorePartial(env.vo, ctx, mask, data,
                            Ptr{buf.data() + 24});
        for (int i = 0; i < 24; ++i)
            EXPECT_EQ(buf[i], 0x55) << "w" << width << " pre " << i;
        for (int i = 0; i < width; ++i)
            EXPECT_EQ(buf[24 + i], 0xc0 + i) << "w" << width;
        for (int i = 24 + width; i < 64; ++i)
            EXPECT_EQ(buf[i], 0x55) << "w" << width << " post " << i;
    }
}

TEST_P(RealignOffset, HwStorePartialWidths)
{
    int off = GetParam();
    for (int width : {4, 8}) {
        Env env;
        vmx::AlignedBuffer buf(96, off);
        buf.fill(0x33);
        Vec data;
        for (int i = 0; i < 16; ++i)
            data.b[i] = std::uint8_t(0xe0 + i);
        Vec mask = vmx::makeWidthMask(env.vo, width);
        vmx::hwStorePartial(env.vo, mask, data, Ptr{buf.data() + 8});
        for (int i = 0; i < 8; ++i)
            EXPECT_EQ(buf[i], 0x33);
        for (int i = 0; i < width; ++i)
            EXPECT_EQ(buf[8 + i], 0xe0 + i);
        for (int i = 8 + width; i < 48; ++i)
            EXPECT_EQ(buf[i], 0x33);
    }
}

TEST_P(RealignOffset, StreamLoaderWalksStrideOne)
{
    int off = GetParam();
    Env env;
    vmx::AlignedBuffer buf(256, off);
    for (int i = 0; i < 256; ++i)
        buf[i] = std::uint8_t(i);
    vmx::SwStreamLoader stream(env.vo, CPtr{buf.data()});
    for (int block = 0; block < 8; ++block) {
        Vec v = stream.next();
        for (int i = 0; i < 16; ++i)
            EXPECT_EQ(v.u8(i), std::uint8_t(16 * block + i));
    }
    // Steady state: 2 instructions per 16B (paper Fig 2(b)/Fig 3).
    auto total = env.sink.mix().total();
    EXPECT_EQ(total, 2u + 8u * 2u);
}

INSTANTIATE_TEST_SUITE_P(AllOffsets, RealignOffset,
                         ::testing::Range(0, 16));

/// Strategies x offsets: functional equivalence + exact instruction
/// budgets from Table I.
class StrategyTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(StrategyTest, LoadMatchesMemcpyAtTabulatedCost)
{
    auto [si, off] = GetParam();
    auto strat = static_cast<RealignStrategy>(si);
    Env env;
    vmx::AlignedBuffer buf(64, off);
    for (int i = 0; i < 64; ++i)
        buf[i] = std::uint8_t(31 * i + 11);
    Vec v = vmx::strategyLoadU(env.vo, strat, CPtr{buf.data()});
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(v.u8(i), buf[i])
            << vmx::strategyName(strat) << " offset " << off;
    }
    EXPECT_EQ(env.sink.mix().total(),
              std::uint64_t(vmx::strategyLoadInstrs(strat)))
        << vmx::strategyName(strat);
}

TEST_P(StrategyTest, StoreMatchesAtTabulatedCost)
{
    auto [si, off] = GetParam();
    auto strat = static_cast<RealignStrategy>(si);
    Env env;
    vmx::AlignedBuffer buf(96, off);
    buf.fill(0x11);
    Vec data;
    for (int i = 0; i < 16; ++i)
        data.b[i] = std::uint8_t(0x40 + i);
    auto ctx = vmx::swStoreUPrologue(env.vo);
    auto before = env.sink.mix().total();
    vmx::strategyStoreU(env.vo, strat, ctx, data, Ptr{buf.data() + 8});
    auto cost = env.sink.mix().total() - before;
    EXPECT_EQ(cost, std::uint64_t(vmx::strategyStoreInstrs(strat)))
        << vmx::strategyName(strat);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(buf[8 + i], 0x40 + i);
    EXPECT_EQ(buf[7], 0x11);
    EXPECT_EQ(buf[24], 0x11);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesAllOffsets, StrategyTest,
    ::testing::Combine(
        ::testing::Range(0,
                         int(RealignStrategy::NumStrategies)),
        ::testing::Range(0, 16)));

TEST(StrategyMeta, NamesAndCosts)
{
    for (int i = 0; i < int(RealignStrategy::NumStrategies); ++i) {
        auto s = static_cast<RealignStrategy>(i);
        EXPECT_FALSE(vmx::strategyName(s).empty());
        EXPECT_FALSE(vmx::strategyIsa(s).empty());
        EXPECT_GE(vmx::strategyLoadInstrs(s), 1);
        EXPECT_LE(vmx::strategyLoadInstrs(s), 4);
    }
    // The paper's proposal is the only 1-instruction load and store.
    EXPECT_EQ(vmx::strategyLoadInstrs(RealignStrategy::HwUnaligned), 1);
    EXPECT_EQ(vmx::strategyStoreInstrs(RealignStrategy::HwUnaligned), 1);
    EXPECT_EQ(vmx::strategyLoadInstrs(RealignStrategy::AltivecSw), 4);
}
