/**
 * @file
 * CABAC substrate tests: encode/decode roundtrips, adaptation,
 * compression behaviour, and the traced decoder's equivalence.
 */

#include <gtest/gtest.h>

#include "decoder/cabac_traced.hh"
#include "h264/cabac.hh"
#include "trace/emitter.hh"
#include "trace/sink.hh"
#include "video/rng.hh"

using namespace uasim;
using h264::CabacContext;
using h264::CabacDecoder;
using h264::CabacEncoder;

TEST(CabacTables, WellFormed)
{
    const auto &t = h264::CabacTables::get();
    for (int s = 0; s < 64; ++s) {
        for (int q = 0; q < 4; ++q) {
            EXPECT_GE(t.lpsRange[s][q], 2);
            EXPECT_LT(t.lpsRange[s][q], 256);
            if (q) {
                EXPECT_GE(t.lpsRange[s][q], t.lpsRange[s][q - 1]);
            }
        }
        if (s) {
            // Higher state = more skewed = smaller LPS range.
            EXPECT_LE(t.lpsRange[s][0], t.lpsRange[s - 1][0]);
        }
        EXPECT_LE(t.transMps[s], 62);
        EXPECT_LE(t.transLps[s], 63);
        EXPECT_GE(t.transMps[s], s == 62 || s == 63 ? 62 : s);
        EXPECT_LE(t.transLps[s], std::uint8_t(s));
    }
}

TEST(Cabac, RoundTripSingleContext)
{
    CabacEncoder enc;
    CabacContext ectx;
    video::Rng rng(1);
    std::vector<int> bins;
    for (int i = 0; i < 5000; ++i) {
        int b = rng.chance(0.2) ? 1 : 0;
        bins.push_back(b);
        enc.encodeBin(ectx, b);
    }
    auto bits = enc.finish();

    CabacDecoder dec(bits.data(), bits.size());
    CabacContext dctx;
    for (std::size_t i = 0; i < bins.size(); ++i)
        ASSERT_EQ(dec.decodeBin(dctx), bins[i]) << "bin " << i;
}

TEST(Cabac, RoundTripManyContextsAndBypass)
{
    CabacEncoder enc;
    CabacContext ectx[16];
    video::Rng rng(2);
    std::vector<std::pair<int, int>> ops;  // (ctx or -1 bypass, bin)
    for (int i = 0; i < 20000; ++i) {
        if (rng.chance(0.25)) {
            int b = int(rng.below(2));
            ops.emplace_back(-1, b);
            enc.encodeBypass(b);
        } else {
            int c = int(rng.below(16));
            int b = rng.chance(0.1 + 0.05 * c) ? 1 : 0;
            ops.emplace_back(c, b);
            enc.encodeBin(ectx[c], b);
        }
    }
    auto bits = enc.finish();

    CabacDecoder dec(bits.data(), bits.size());
    CabacContext dctx[16];
    for (std::size_t i = 0; i < ops.size(); ++i) {
        auto [c, b] = ops[i];
        int got = c < 0 ? dec.decodeBypass() : dec.decodeBin(dctx[c]);
        ASSERT_EQ(got, b) << "op " << i;
    }
    EXPECT_EQ(dec.binsDecoded(), enc.binsEncoded());
}

TEST(Cabac, RoundTripUEG)
{
    CabacEncoder enc;
    CabacContext ectx[6];
    std::vector<unsigned> values;
    video::Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        unsigned v = unsigned(rng.below(3))
            ? unsigned(rng.below(8))
            : unsigned(rng.below(5000));
        values.push_back(v);
        enc.encodeUEG(ectx, 6, v);
    }
    // Boundary values.
    for (unsigned v : {0u, 1u, 5u, 6u, 7u, 63u, 64u, 1u << 16}) {
        values.push_back(v);
        enc.encodeUEG(ectx, 6, v);
    }
    auto bits = enc.finish();

    CabacDecoder dec(bits.data(), bits.size());
    CabacContext dctx[6];
    for (std::size_t i = 0; i < values.size(); ++i)
        ASSERT_EQ(dec.decodeUEG(dctx, 6), values[i]) << "value " << i;
}

TEST(Cabac, SkewedSourceCompresses)
{
    // 5% ones: an adaptive coder must get well under 1 bit/bin.
    CabacEncoder enc;
    CabacContext ctx;
    video::Rng rng(4);
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        enc.encodeBin(ctx, rng.chance(0.05) ? 1 : 0);
    auto bits = enc.finish();
    double bits_per_bin = 8.0 * double(bits.size()) / n;
    EXPECT_LT(bits_per_bin, 0.55);
    EXPECT_GT(bits_per_bin, 0.15);  // entropy of 5% source ~ 0.29
}

TEST(Cabac, RandomBypassDoesNotCompress)
{
    CabacEncoder enc;
    video::Rng rng(5);
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        enc.encodeBypass(int(rng.below(2)));
    auto bits = enc.finish();
    double bits_per_bin = 8.0 * double(bits.size()) / n;
    EXPECT_NEAR(bits_per_bin, 1.0, 0.05);
}

TEST(TracedCabac, MatchesNativeDecoder)
{
    CabacEncoder enc;
    CabacContext ectx[8];
    video::Rng rng(6);
    std::vector<std::pair<int, int>> ops;
    for (int i = 0; i < 3000; ++i) {
        int c = int(rng.below(8));
        int b = rng.chance(0.15 + 0.07 * c) ? 1 : 0;
        ops.emplace_back(c, b);
        enc.encodeBin(ectx[c], b);
    }
    auto bits = enc.finish();

    trace::CountingSink sink;
    trace::Emitter em(sink);
    h264::KernelCtx kctx(em);
    dec::TracedCabacDecoder traced(kctx, bits.data(), bits.size(), 8);
    for (std::size_t i = 0; i < ops.size(); ++i)
        ASSERT_EQ(traced.decodeBin(ops[i].first), ops[i].second)
            << "bin " << i;

    // Serial scalar shape: a realistic per-bin instruction budget with
    // data-dependent branches, no vector work.
    double per_bin = double(sink.mix().total()) / double(ops.size());
    EXPECT_GT(per_bin, 12.0);
    EXPECT_LT(per_bin, 60.0);
    EXPECT_EQ(sink.mix().vecTotal(), 0u);
    EXPECT_GT(sink.mix().branches(), ops.size());
}
