/**
 * @file
 * core/json.hh: writer escaping, parser strictness, number identity
 * (u64/i64/double), and BenchResult artifact round-trip bit-identity.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "core/json.hh"
#include "core/result.hh"
#include "timing/results.hh"
#include "trace/instr.hh"

using namespace uasim;
using json::Value;

namespace {

std::string
dumped(Value v)
{
    return v.dump(0);
}

} // namespace

TEST(Json, EscapingTable)
{
    // Quote, backslash, the short escapes, other control characters
    // as \u00XX, and UTF-8 passthrough.
    struct Case {
        const char *in;
        const char *out;
    };
    const Case cases[] = {
        {"plain", "\"plain\""},
        {"say \"hi\"", "\"say \\\"hi\\\"\""},
        {"back\\slash", "\"back\\\\slash\""},
        {"a\tb\nc\rd", "\"a\\tb\\nc\\rd\""},
        {"\b\f", "\"\\b\\f\""},
        {"\x01\x1f", "\"\\u0001\\u001f\""},
        {"caf\xc3\xa9 \xe2\x82\xac", "\"caf\xc3\xa9 \xe2\x82\xac\""},
        {"", "\"\""},
    };
    for (const auto &c : cases) {
        EXPECT_EQ(dumped(Value(c.in)), c.out) << c.in;
        // And the parser inverts the escape exactly.
        EXPECT_EQ(json::parse(c.out).asString(), c.in) << c.out;
    }
}

TEST(Json, ParserUnicodeEscapes)
{
    EXPECT_EQ(json::parse("\"\\u0041\"").asString(), "A");
    EXPECT_EQ(json::parse("\"\\u00e9\"").asString(), "\xc3\xa9");
    EXPECT_EQ(json::parse("\"\\u20ac\"").asString(), "\xe2\x82\xac");
    // Surrogate pair: U+1F600.
    EXPECT_EQ(json::parse("\"\\ud83d\\ude00\"").asString(),
              "\xf0\x9f\x98\x80");
    EXPECT_THROW(json::parse("\"\\ud83d\""), json::ParseError);
    EXPECT_THROW(json::parse("\"\\ude00\""), json::ParseError);
    EXPECT_THROW(json::parse("\"\\u12g4\""), json::ParseError);
}

TEST(Json, ParserStrictness)
{
    EXPECT_THROW(json::parse("{} trailing"), json::ParseError);
    EXPECT_THROW(json::parse("{\"a\":1,}"), json::ParseError);
    EXPECT_THROW(json::parse("[1 2]"), json::ParseError);
    EXPECT_THROW(json::parse("\"raw\ncontrol\""), json::ParseError);
    EXPECT_THROW(json::parse("01"), json::ParseError);
    EXPECT_THROW(json::parse("1."), json::ParseError);
    EXPECT_THROW(json::parse(".5"), json::ParseError);
    EXPECT_THROW(json::parse("1e"), json::ParseError);
    EXPECT_THROW(json::parse("nul"), json::ParseError);
    EXPECT_THROW(json::parse("{\"a\" 1}"), json::ParseError);
    EXPECT_THROW(json::parse("{a:1}"), json::ParseError);
    // Duplicate keys would silently collapse to the last value.
    EXPECT_THROW(json::parse("{\"a\":1,\"a\":2}"), json::ParseError);
    EXPECT_THROW(json::parse(""), json::ParseError);
    EXPECT_THROW(json::parse("\"open"), json::ParseError);
    // NaN / Infinity are not JSON.
    EXPECT_THROW(json::parse("NaN"), json::ParseError);
    EXPECT_THROW(json::parse("-Infinity"), json::ParseError);
}

TEST(Json, IntegerIdentity)
{
    // 64-bit counters survive exactly (no double detour).
    const std::uint64_t big = 0xffffffffffffffffull;
    EXPECT_EQ(dumped(Value(big)), "18446744073709551615");
    EXPECT_EQ(json::parse("18446744073709551615").asUint(), big);
    EXPECT_EQ(json::parse("-9223372036854775808").asInt(),
              std::numeric_limits<std::int64_t>::min());
    // The simulator's cycle counts exceed 2^53 in principle; verify
    // the parser does not round them through a double.
    const std::uint64_t odd = (1ull << 60) + 1;
    EXPECT_EQ(json::parse(dumped(Value(odd))).asUint(), odd);
}

TEST(Json, DoubleRoundTripBitIdentity)
{
    const double cases[] = {
        0.0,
        1.0 / 3.0,
        0.1,
        -2.5e-10,
        3.141592653589793,
        123456789.12345679,
        std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::min(),
        std::numeric_limits<double>::max(),
        5404319552844595.0 / 4503599627370496.0,  // random mantissa
    };
    for (double d : cases) {
        const std::string text = json::formatDouble(d);
        const double back = json::parse(text).asDouble();
        EXPECT_EQ(std::bit_cast<std::uint64_t>(back),
                  std::bit_cast<std::uint64_t>(d))
            << text;
        // And the re-serialization is textually identical.
        EXPECT_EQ(json::formatDouble(back), text);
    }
    // Negative zero keeps its sign bit through the writer+parser.
    const double negZero = -0.0;
    EXPECT_EQ(json::formatDouble(negZero), "-0");
    EXPECT_EQ(std::bit_cast<std::uint64_t>(
                  json::parse("-0").asDouble()),
              std::bit_cast<std::uint64_t>(negZero));
}

TEST(Json, NonFiniteDoublesRejectedBothWays)
{
    // JSON has no NaN/Infinity: the writer must refuse (not emit
    // printf's "nan"/"inf", which our own parser rejects), and the
    // parser must reject overflow-to-infinity numbers.
    EXPECT_THROW(json::formatDouble(std::nan("")),
                 std::invalid_argument);
    EXPECT_THROW(
        Value(std::numeric_limits<double>::infinity()).dump(0),
        std::invalid_argument);
    EXPECT_THROW(json::parse("1e999"), json::ParseError);
    EXPECT_THROW(json::parse("-1e999"), json::ParseError);
    // Underflow is not an error: the nearest value is finite.
    EXPECT_EQ(json::parse("1e-999").asDouble(), 0.0);
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    json::Object o;
    o.set("zulu", Value(1));
    o.set("alpha", Value(2));
    o.set("mike", Value(3));
    o.set("zulu", Value(9));  // replace keeps the slot
    EXPECT_EQ(dumped(Value(std::move(o))),
              "{\"zulu\":9,\"alpha\":2,\"mike\":3}");
}

TEST(Json, TypeErrors)
{
    EXPECT_THROW(Value(1.5).asUint(), json::TypeError);
    EXPECT_THROW(Value("x").asDouble(), json::TypeError);
    EXPECT_THROW(Value(-1).asUint(), json::TypeError);
    EXPECT_THROW(Value(std::uint64_t(1) << 63).asInt(),
                  json::TypeError);
    EXPECT_THROW(Value(true).asString(), json::TypeError);
    EXPECT_NO_THROW(Value(std::uint64_t(7)).asInt());
    EXPECT_NO_THROW(Value(7).asUint());
}

namespace {

/// A BenchResult exercising every field with awkward content.
core::BenchResult
syntheticResult()
{
    core::BenchResult r;
    r.bench = "synthetic_bench";
    r.addParam("quick", Value(true));
    r.addParam("name with, comma \"quote\"", Value("value\nnewline"));
    r.addParam("execs", Value(-3));
    r.addParam("scale", Value(1.0 / 3.0));
    r.addMetric("kernel/metric one", 2.0);
    r.addMetric("kernel/metric two", 0.30000000000000004);
    core::ResultCell c;
    c.trace = "luma16x16/unaligned/8/12345";
    c.config = "4w+net";
    c.traceInstrs = (1ull << 60) + 12345;
    c.sim.core = "4-way";
    c.sim.cycles = 0xfedcba9876543210ull;
    c.sim.instrs = 42;
    c.sim.mispredicts = 7;
    c.mix.add(trace::InstrClass::VecLoadU, 1234567890123ull);
    c.mix.add(trace::InstrClass::IntAlu, 5);
    r.cells.push_back(c);
    core::SweepStats s;
    s.threads = 4;
    s.cellsRun = 1;
    s.instrsReplayed = 99;
    s.tracesRecorded = 1;
    s.wallSeconds = 0.12345678901234567;
    s.recordSeconds = 1e-9;
    r.setStats(s);
    return r;
}

} // namespace

TEST(Json, BenchResultSerializeParseSerializeBitIdentity)
{
    const core::BenchResult original = syntheticResult();
    const std::string once = original.serialize();
    const core::BenchResult parsed = core::BenchResult::parse(once);
    EXPECT_EQ(parsed.serialize(), once);

    // The baseline form (informational stripped) round-trips too and
    // is genuinely smaller.
    const std::string baseline = original.serialize(false);
    EXPECT_LT(baseline.size(), once.size());
    const core::BenchResult reparsed =
        core::BenchResult::parse(baseline);
    EXPECT_FALSE(reparsed.hasInformational);
    EXPECT_TRUE(reparsed.hasStats);
    EXPECT_EQ(reparsed.serialize(), baseline);

    // And the parsed copy is diff-identical to the original.
    const auto diff = core::diffResults(original, parsed);
    EXPECT_EQ(diff.status, core::DiffStatus::Match);
}

TEST(Json, BenchResultSchemaValidation)
{
    EXPECT_THROW(core::BenchResult::parse("not json"),
                 core::SchemaError);
    EXPECT_THROW(core::BenchResult::parse("{}"), core::SchemaError);
    EXPECT_THROW(
        core::BenchResult::parse(
            "{\"schema\":\"other\",\"schemaVersion\":1,"
            "\"bench\":\"x\",\"params\":{},\"metrics\":{},"
            "\"cells\":[]}"),
        core::SchemaError);
    // A future schema version must be rejected, not misread.
    EXPECT_THROW(
        core::BenchResult::parse(
            "{\"schema\":\"uasim-bench-result\",\"schemaVersion\":2,"
            "\"bench\":\"x\",\"params\":{},\"metrics\":{},"
            "\"cells\":[]}"),
        core::SchemaError);
    // Minimal valid artifact.
    EXPECT_NO_THROW(core::BenchResult::parse(
        "{\"schema\":\"uasim-bench-result\",\"schemaVersion\":1,"
        "\"bench\":\"x\",\"params\":{},\"metrics\":{},"
        "\"cells\":[]}"));
}
