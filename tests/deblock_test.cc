/**
 * @file
 * Deblocking-filter tests: threshold tables, reference behaviour, and
 * traced-vs-reference bit-exactness.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "h264/deblock.hh"
#include "trace/emitter.hh"
#include "trace/sink.hh"
#include "video/frame.hh"
#include "video/rng.hh"

using namespace uasim;
using h264::DeblockTables;

TEST(DeblockTables, MonotonicInQp)
{
    const auto &t = DeblockTables::get();
    for (int qp = 1; qp < 52; ++qp) {
        EXPECT_GE(t.alpha[qp], t.alpha[qp - 1]);
        EXPECT_GE(t.beta[qp], t.beta[qp - 1]);
        for (int s = 0; s < 3; ++s)
            EXPECT_GE(t.tc0[qp][s], t.tc0[qp - 1][s]);
    }
    // Inactive at low QP, active at high QP.
    EXPECT_EQ(t.alpha[10], 0);
    EXPECT_GT(t.alpha[30], 0);
    EXPECT_GT(t.tc0[30][2], t.tc0[30][0]);
}

TEST(DeblockRef, SmoothsBlockEdge)
{
    // Step edge within threshold: filtering must shrink the step.
    video::Plane p(32, 32);
    for (int y = 0; y < 32; ++y) {
        for (int x = 0; x < 32; ++x)
            p.at(x, y) = x < 16 ? 100 : 110;
    }
    int before = std::abs(p.at(16, 4) - p.at(15, 4));
    h264::deblockEdgeRef(p.pixel(16, 4), 1, p.stride(), 1, 32);
    int after = std::abs(p.at(16, 4) - p.at(15, 4));
    EXPECT_LT(after, before);
}

TEST(DeblockRef, PreservesRealEdges)
{
    // A large step (over alpha) is a real picture edge: untouched.
    video::Plane p(32, 32);
    for (int y = 0; y < 32; ++y) {
        for (int x = 0; x < 32; ++x)
            p.at(x, y) = x < 16 ? 20 : 220;
    }
    h264::deblockEdgeRef(p.pixel(16, 4), 1, p.stride(), 1, 32);
    EXPECT_EQ(p.at(15, 4), 20);
    EXPECT_EQ(p.at(16, 4), 220);
}

TEST(DeblockRef, FlatRegionUnchanged)
{
    video::Plane p(32, 32);
    p.fill(128);
    h264::deblockEdgeRef(p.pixel(16, 4), 1, p.stride(), 2, 36);
    for (int y = 4; y < 8; ++y)
        for (int x = 12; x < 20; ++x)
            EXPECT_EQ(p.at(x, y), 128);
}

class DeblockTraced
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(DeblockTraced, EdgeBitExactWithReference)
{
    auto [qp, bs] = GetParam();
    video::Rng rng(qp * 10 + bs);
    for (int iter = 0; iter < 16; ++iter) {
        video::Plane ref(48, 48), traced(48, 48);
        for (int y = 0; y < 48; ++y) {
            for (int x = 0; x < 48; ++x) {
                // Blocky content with moderate steps so some edges
                // filter and others don't.
                std::uint8_t v = std::uint8_t(
                    80 + 8 * ((x / 4 + y / 4 + iter) % 6) +
                    rng.below(5));
                ref.at(x, y) = v;
                traced.at(x, y) = v;
            }
        }
        trace::NullSink sink;
        trace::Emitter em(sink);
        h264::KernelCtx ctx(em);

        // Vertical and horizontal edge at an interior position.
        h264::deblockEdgeRef(ref.pixel(16, 8), 1, ref.stride(), bs, qp);
        h264::deblockEdgeScalar(ctx, traced.pixel(16, 8), 1,
                                traced.stride(), bs, qp);
        h264::deblockEdgeRef(ref.pixel(8, 16), ref.stride(), 1, bs, qp);
        h264::deblockEdgeScalar(ctx, traced.pixel(8, 16),
                                traced.stride(), 1, bs, qp);
        for (int y = 0; y < 48; ++y) {
            ASSERT_EQ(std::memcmp(ref.pixel(0, y), traced.pixel(0, y),
                                  48),
                      0)
                << "qp " << qp << " bs " << bs << " row " << y;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(QpAndStrength, DeblockTraced,
                         ::testing::Combine(::testing::Values(18, 26,
                                                              32, 40,
                                                              48),
                                            ::testing::Values(1, 2,
                                                              3)));

TEST(DeblockMacroblock, TracedMatchesRef)
{
    video::Rng rng(515);
    video::Plane ref(64, 64), traced(64, 64);
    for (int y = 0; y < 64; ++y) {
        for (int x = 0; x < 64; ++x) {
            std::uint8_t v =
                std::uint8_t(90 + 10 * ((x / 4) % 4) + rng.below(6));
            ref.at(x, y) = v;
            traced.at(x, y) = v;
        }
    }
    trace::CountingSink sink;
    trace::Emitter em(sink);
    h264::KernelCtx ctx(em);

    int e1 = h264::deblockMacroblockRef(ref.pixel(16, 16), ref.stride(),
                                        30, false);
    int e2 = h264::deblockMacroblockScalar(ctx, traced.pixel(16, 16),
                                           traced.stride(), 30, false);
    EXPECT_EQ(e1, e2);
    EXPECT_EQ(e1, 32);  // 16 vertical + 16 horizontal segments
    for (int y = 0; y < 64; ++y) {
        ASSERT_EQ(std::memcmp(ref.pixel(0, y), traced.pixel(0, y), 64),
                  0)
            << "row " << y;
    }
    // Scalar work only.
    EXPECT_EQ(sink.mix().vecTotal(), 0u);
    EXPECT_GT(sink.mix().total(), 500u);
}
