/**
 * @file
 * Bit-exactness tests for every traced kernel variant against the
 * reference implementations, across block sizes, alignments and all
 * fractional positions.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "h264/chroma_kernels.hh"
#include "h264/chroma_ref.hh"
#include "h264/idct_kernels.hh"
#include "h264/idct_ref.hh"
#include "h264/luma_kernels.hh"
#include "h264/luma_ref.hh"
#include "h264/sad_kernels.hh"
#include "h264/sad_ref.hh"
#include "trace/emitter.hh"
#include "trace/sink.hh"
#include "video/frame.hh"
#include "video/rng.hh"

using namespace uasim;
using h264::KernelCtx;
using h264::Variant;

namespace {

struct KernelEnv {
    KernelEnv() : em(sink), ctx(em), src(96, 96), dst(96, 96),
                  want(96, 96)
    {
        video::Rng rng(2024);
        for (int y = 0; y < 96; ++y) {
            for (int x = 0; x < 96; ++x) {
                src.at(x, y) = std::uint8_t(rng.below(256));
                std::uint8_t d = std::uint8_t(rng.below(256));
                dst.at(x, y) = d;
                want.at(x, y) = d;
            }
        }
        src.extendEdges();
    }

    void
    expectDstMatches(const char *what)
    {
        for (int y = 0; y < 96; ++y) {
            ASSERT_EQ(std::memcmp(dst.pixel(0, y), want.pixel(0, y), 96),
                      0)
                << what << " row " << y;
        }
    }

    trace::NullSink sink;
    trace::Emitter em;
    KernelCtx ctx;
    video::Plane src;
    video::Plane dst;
    video::Plane want;
};

} // namespace

// ---- Luma: all 16 quarter-pel positions x 3 variants x 3 sizes ----

class LumaQpel
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(LumaQpel, BitExactAgainstReference)
{
    auto [variant_i, size, frac] = GetParam();
    auto variant = static_cast<Variant>(variant_i);
    int fx = frac & 3, fy = frac >> 2;
    KernelEnv env;
    video::Rng rng(77 * frac + size);

    for (int iter = 0; iter < 4; ++iter) {
        int sx = int(rng.range(8, 60));
        int sy = int(rng.range(8, 60));
        int dx = size * int(rng.below(unsigned((96 - 32) / size))) + 16;
        int dy = size * int(rng.below(unsigned((96 - 32) / size))) + 16;

        h264::lumaMcRef(env.src.pixel(sx, sy), env.src.stride(),
                        env.want.pixel(dx, dy), env.want.stride(), size,
                        size, fx, fy);
        h264::lumaMc(env.ctx, variant, env.src.pixel(sx, sy),
                     env.src.stride(), env.dst.pixel(dx, dy),
                     env.dst.stride(), size, size, fx, fy);
    }
    env.expectDstMatches("lumaMc");
}

INSTANTIATE_TEST_SUITE_P(
    AllPositions, LumaQpel,
    ::testing::Combine(::testing::Range(0, 3),
                       ::testing::Values(16, 8, 4),
                       ::testing::Range(0, 16)));

// ---- Chroma: all fractions x variants x sizes ----

class ChromaFrac
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(ChromaFrac, BitExactAgainstReference)
{
    auto [variant_i, size] = GetParam();
    auto variant = static_cast<Variant>(variant_i);
    KernelEnv env;
    video::Rng rng(5 + size);

    for (int dxy = 0; dxy < 64; ++dxy) {
        int cdx = dxy & 7, cdy = dxy >> 3;
        int sx = int(rng.range(8, 60));
        int sy = int(rng.range(8, 60));
        int px = size * int(rng.below(unsigned((96 - 32) / size))) + 16;
        int py = size * int(rng.below(unsigned((96 - 32) / size))) + 16;
        h264::chromaMcRef(env.src.pixel(sx, sy), env.src.stride(),
                          env.want.pixel(px, py), env.want.stride(),
                          size, size, cdx, cdy);
        h264::chromaMcKernel(env.ctx, variant, env.src.pixel(sx, sy),
                             env.src.stride(), env.dst.pixel(px, py),
                             env.dst.stride(), size, cdx, cdy);
    }
    env.expectDstMatches("chromaMc");
}

INSTANTIATE_TEST_SUITE_P(AllFracs, ChromaFrac,
                         ::testing::Combine(::testing::Range(0, 3),
                                            ::testing::Values(8, 4)));

// ---- SAD ----

class SadSize : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(SadSize, MatchesReference)
{
    auto [variant_i, size] = GetParam();
    auto variant = static_cast<Variant>(variant_i);
    KernelEnv env;
    video::Rng rng(99);
    for (int iter = 0; iter < 32; ++iter) {
        int cx = int(rng.range(4, 70));
        int cy = int(rng.range(4, 70));
        int rx = int(rng.range(4, 70));
        int ry = int(rng.range(4, 70));
        int want = h264::sadRef(env.src.pixel(cx, cy), env.src.stride(),
                                env.dst.pixel(rx, ry), env.dst.stride(),
                                size, size);
        int got = h264::sadKernel(env.ctx, variant,
                                  env.src.pixel(cx, cy),
                                  env.src.stride(),
                                  env.dst.pixel(rx, ry),
                                  env.dst.stride(), size);
        ASSERT_EQ(got, want) << "iter " << iter;
    }
}

TEST_P(SadSize, ZeroForIdenticalBlocks)
{
    auto [variant_i, size] = GetParam();
    auto variant = static_cast<Variant>(variant_i);
    KernelEnv env;
    int got = h264::sadKernel(env.ctx, variant, env.src.pixel(20, 20),
                              env.src.stride(), env.src.pixel(20, 20),
                              env.src.stride(), size);
    EXPECT_EQ(got, 0);
}

TEST_P(SadSize, MaximalDifference)
{
    auto [variant_i, size] = GetParam();
    auto variant = static_cast<Variant>(variant_i);
    KernelEnv env;
    for (int y = 0; y < size; ++y) {
        for (int x = 0; x < size; ++x) {
            env.src.at(10 + x, 10 + y) = 255;
            env.dst.at(50 + x, 50 + y) = 0;
        }
    }
    int got = h264::sadKernel(env.ctx, variant, env.src.pixel(10, 10),
                              env.src.stride(), env.dst.pixel(50, 50),
                              env.dst.stride(), size);
    EXPECT_EQ(got, 255 * size * size);
}

INSTANTIATE_TEST_SUITE_P(AllSizes, SadSize,
                         ::testing::Combine(::testing::Range(0, 3),
                                            ::testing::Values(16, 8,
                                                              4)));

// ---- IDCT ----

class IdctVariant : public ::testing::TestWithParam<int>
{
};

TEST_P(IdctVariant, Idct4x4MatchesReference)
{
    auto variant = static_cast<Variant>(GetParam());
    KernelEnv env;
    video::Rng rng(4711);
    for (int iter = 0; iter < 64; ++iter) {
        alignas(16) std::int16_t block[16], copy[16];
        for (auto &c : block)
            c = std::int16_t(rng.range(-512, 512));
        std::memcpy(copy, block, sizeof(copy));
        int px = 4 * int(rng.below(16)) + 8;
        int py = 4 * int(rng.below(16)) + 8;
        h264::idct4x4AddRef(env.want.pixel(px, py), env.want.stride(),
                            copy);
        h264::idct4x4Add(env.ctx, variant, env.dst.pixel(px, py),
                         env.dst.stride(), block);
    }
    env.expectDstMatches("idct4x4");
}

TEST_P(IdctVariant, Idct4x4MatrixMatchesReference)
{
    auto variant = static_cast<Variant>(GetParam());
    KernelEnv env;
    video::Rng rng(999);
    for (int iter = 0; iter < 64; ++iter) {
        alignas(16) std::int16_t block[16], copy[16];
        for (auto &c : block)
            c = std::int16_t(rng.range(-512, 512));
        std::memcpy(copy, block, sizeof(copy));
        int px = 4 * int(rng.below(16)) + 8;
        int py = 4 * int(rng.below(16)) + 8;
        h264::idct4x4AddRef(env.want.pixel(px, py), env.want.stride(),
                            copy);
        h264::idct4x4AddMatrix(env.ctx, variant, env.dst.pixel(px, py),
                               env.dst.stride(), block);
    }
    env.expectDstMatches("idct4x4_matrix");
}

TEST_P(IdctVariant, Idct8x8MatchesReference)
{
    auto variant = static_cast<Variant>(GetParam());
    KernelEnv env;
    video::Rng rng(31337);
    for (int iter = 0; iter < 32; ++iter) {
        alignas(16) std::int16_t block[64], copy[64];
        for (auto &c : block)
            c = std::int16_t(rng.range(-512, 512));
        std::memcpy(copy, block, sizeof(copy));
        int px = 8 * int(rng.below(8)) + 8;
        int py = 8 * int(rng.below(8)) + 8;
        h264::idct8x8AddRef(env.want.pixel(px, py), env.want.stride(),
                            copy);
        h264::idct8x8Add(env.ctx, variant, env.dst.pixel(px, py),
                         env.dst.stride(), block);
    }
    env.expectDstMatches("idct8x8");
}

TEST_P(IdctVariant, ZeroBlockIsIdentityWithRounding)
{
    auto variant = static_cast<Variant>(GetParam());
    KernelEnv env;
    alignas(16) std::int16_t block[16] = {};
    h264::idct4x4Add(env.ctx, variant, env.dst.pixel(16, 16),
                     env.dst.stride(), block);
    env.expectDstMatches("idct zero block");
}

TEST_P(IdctVariant, DcOnlyBlockAddsConstant)
{
    auto variant = static_cast<Variant>(GetParam());
    KernelEnv env;
    // DC=64: idct yields 64*16/... -> (64*4 + 32) >> 6 = 4 per pixel
    // after the two butterfly passes (each pass multiplies DC by 4).
    alignas(16) std::int16_t block[16] = {};
    block[0] = 64;
    alignas(16) std::int16_t copy[16];
    std::memcpy(copy, block, sizeof(copy));
    h264::idct4x4AddRef(env.want.pixel(32, 32), env.want.stride(), copy);
    h264::idct4x4Add(env.ctx, variant, env.dst.pixel(32, 32),
                     env.dst.stride(), block);
    env.expectDstMatches("idct dc only");
    // And the reference itself behaves as the standard requires.
    int delta = env.want.at(32, 32) - env.src.at(32, 32);
    (void)delta;
}

INSTANTIATE_TEST_SUITE_P(AllVariants, IdctVariant,
                         ::testing::Range(0, 3));

// ---- Saturation edge cases through the vector pack paths ----

TEST(LumaSaturation, ExtremePixelsClipIdentically)
{
    KernelEnv env;
    // Flat 255 and flat 0 regions stress the packsu16 clip path.
    for (int y = 0; y < 40; ++y) {
        for (int x = 0; x < 40; ++x)
            env.src.at(x, y) = (x < 20) ? 255 : 0;
    }
    env.src.extendEdges();
    for (int v = 0; v < 3; ++v) {
        h264::lumaMcRef(env.src.pixel(18, 10), env.src.stride(),
                        env.want.pixel(16, 16), env.want.stride(), 16,
                        16, 2, 2);
        h264::lumaMc(env.ctx, static_cast<Variant>(v),
                     env.src.pixel(18, 10), env.src.stride(),
                     env.dst.pixel(16, 16), env.dst.stride(), 16, 16, 2,
                     2);
        env.expectDstMatches("luma saturation");
    }
}
