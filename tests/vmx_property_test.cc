/**
 * @file
 * Randomized differential tests of the vector facade: every lane-wise
 * operation is checked against an independently written scalar model
 * over thousands of random inputs, and memory-access ops are checked
 * against memcpy semantics at random alignments. This complements the
 * example-based tests in vmx_test.cc with breadth.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "trace/emitter.hh"
#include "trace/sink.hh"
#include "vmx/buffer.hh"
#include "vmx/scalarops.hh"
#include "vmx/vecops.hh"
#include "video/rng.hh"

using namespace uasim;
using vmx::Vec;

namespace {

struct PropEnv : ::testing::Test {
    trace::NullSink sink;
    trace::Emitter em{sink};
    vmx::VecOps vo{em};
    vmx::ScalarOps so{em};
    video::Rng rng{0xabcdef};

    Vec
    randomVec()
    {
        Vec v;
        for (int i = 0; i < 16; ++i)
            v.b[i] = std::uint8_t(rng.below(256));
        return v;
    }
};

int
clampi(int lo, int hi, int x)
{
    return std::clamp(x, lo, hi);
}

} // namespace

TEST_F(PropEnv, ByteLaneOps)
{
    for (int iter = 0; iter < 2000; ++iter) {
        Vec a = randomVec(), b = randomVec();
        Vec sum = vo.addu8(a, b);
        Vec ssum = vo.addsu8(a, b);
        Vec sub = vo.subu8(a, b);
        Vec ssub = vo.subsu8(a, b);
        Vec avg = vo.avgu8(a, b);
        Vec mn = vo.minu8(a, b);
        Vec mx = vo.maxu8(a, b);
        Vec gt = vo.cmpgtu8(a, b);
        Vec eq = vo.cmpeq8(a, b);
        for (int i = 0; i < 16; ++i) {
            int x = a.u8(i), y = b.u8(i);
            ASSERT_EQ(sum.u8(i), std::uint8_t(x + y));
            ASSERT_EQ(ssum.u8(i), std::min(x + y, 255));
            ASSERT_EQ(sub.u8(i), std::uint8_t(x - y));
            ASSERT_EQ(ssub.u8(i), std::max(x - y, 0));
            ASSERT_EQ(avg.u8(i), (x + y + 1) >> 1);
            ASSERT_EQ(mn.u8(i), std::min(x, y));
            ASSERT_EQ(mx.u8(i), std::max(x, y));
            ASSERT_EQ(gt.u8(i), x > y ? 0xff : 0);
            ASSERT_EQ(eq.u8(i), x == y ? 0xff : 0);
        }
    }
}

TEST_F(PropEnv, HalfwordLaneOps)
{
    for (int iter = 0; iter < 2000; ++iter) {
        Vec a = randomVec(), b = randomVec();
        Vec sum = vo.add16(a, b);
        Vec ssum = vo.adds16(a, b);
        Vec diff = vo.sub16(a, b);
        Vec sdiff = vo.subs16(a, b);
        Vec mn = vo.mins16(a, b);
        Vec mx = vo.maxs16(a, b);
        for (int i = 0; i < 8; ++i) {
            int x = a.s16(i), y = b.s16(i);
            ASSERT_EQ(sum.s16(i), std::int16_t(x + y));
            ASSERT_EQ(ssum.s16(i), clampi(-32768, 32767, x + y));
            ASSERT_EQ(diff.s16(i), std::int16_t(x - y));
            ASSERT_EQ(sdiff.s16(i), clampi(-32768, 32767, x - y));
            ASSERT_EQ(mn.s16(i), std::min(x, y));
            ASSERT_EQ(mx.s16(i), std::max(x, y));
        }
    }
}

TEST_F(PropEnv, MultiplyAccumulateOps)
{
    for (int iter = 0; iter < 2000; ++iter) {
        Vec a = randomVec(), b = randomVec(), c = randomVec();
        Vec ml = vo.mladd16(a, b, c);
        Vec ms = vo.msums16(a, b, c);
        Vec s4 = vo.sum4su8(a, c);
        for (int i = 0; i < 8; ++i) {
            ASSERT_EQ(ml.u16(i),
                      std::uint16_t(a.u16(i) * b.u16(i) + c.u16(i)));
        }
        for (int i = 0; i < 4; ++i) {
            std::int64_t want = c.s32(i);
            want += std::int32_t{a.s16(2 * i)} * b.s16(2 * i);
            want += std::int32_t{a.s16(2 * i + 1)} * b.s16(2 * i + 1);
            ASSERT_EQ(ms.s32(i), std::int32_t(want));
            std::int64_t s = c.s32(i);
            for (int j = 0; j < 4; ++j)
                s += a.u8(4 * i + j);
            ASSERT_EQ(s4.s32(i),
                      std::int32_t(clampi(INT32_MIN, INT32_MAX,
                                          int(std::min<std::int64_t>(
                                              s, INT32_MAX)))));
        }
    }
}

TEST_F(PropEnv, PermuteIsAConcatIndex)
{
    for (int iter = 0; iter < 2000; ++iter) {
        Vec a = randomVec(), b = randomVec(), m = randomVec();
        Vec r = vo.vperm(a, b, m);
        for (int i = 0; i < 16; ++i) {
            unsigned sel = m.u8(i) & 0x1f;
            std::uint8_t want = sel < 16 ? a.u8(sel) : b.u8(sel - 16);
            ASSERT_EQ(r.u8(i), want);
        }
    }
}

TEST_F(PropEnv, SelIsBitwiseSelect)
{
    for (int iter = 0; iter < 2000; ++iter) {
        Vec a = randomVec(), b = randomVec(), m = randomVec();
        Vec r = vo.sel(a, b, m);
        for (int i = 0; i < 16; ++i) {
            ASSERT_EQ(r.u8(i), std::uint8_t((a.u8(i) & ~m.u8(i)) |
                                            (b.u8(i) & m.u8(i))));
        }
    }
}

TEST_F(PropEnv, PackUnpackRoundTrips)
{
    for (int iter = 0; iter < 2000; ++iter) {
        Vec a = randomVec();
        // unpack (sign-extend) then pack-saturate restores s8 lanes.
        Vec h = vo.unpackh8(a), l = vo.unpackl8(a);
        Vec back = vo.packs16(h, l);
        for (int i = 0; i < 16; ++i)
            ASSERT_EQ(back.s8(i), a.s8(i));
        // merge then even/odd extraction through permute restores.
        Vec z = vo.zero();
        Vec mh = vo.mergeh8(a, z);
        for (int i = 0; i < 8; ++i)
            ASSERT_EQ(mh.u16(i), a.u8(i));
    }
}

TEST_F(PropEnv, UnalignedMemoryRoundTrip)
{
    vmx::AlignedBuffer buf(512, 0);
    for (int iter = 0; iter < 2000; ++iter) {
        Vec v = randomVec();
        std::int64_t off = std::int64_t(rng.below(512 - 16));
        vmx::Ptr p = so.lip(buf.data());
        vo.stvxu(v, p, off);
        Vec r = vo.lvxu(vmx::CPtr{p}, off);
        ASSERT_EQ(std::memcmp(r.b.data(), v.b.data(), 16), 0)
            << "off " << off;
        // lvx at the same EA returns the enclosing aligned word.
        Vec al = vo.lvx(vmx::CPtr{p}, off);
        std::int64_t base = off & ~15;
        for (int i = 0; i < 16; ++i)
            ASSERT_EQ(al.u8(i), buf[base + i]);
    }
}

TEST_F(PropEnv, ShiftLaneOps)
{
    for (int iter = 0; iter < 2000; ++iter) {
        Vec a = randomVec();
        unsigned sh = unsigned(rng.below(15)) + 1;
        Vec shv = vo.splatis16(int(sh) & 15);
        Vec sra = vo.sra16(a, shv);
        Vec srl = vo.sr16(a, shv);
        Vec sll = vo.sl16(a, shv);
        for (int i = 0; i < 8; ++i) {
            ASSERT_EQ(sra.s16(i), std::int16_t(a.s16(i) >> (sh & 15)));
            ASSERT_EQ(srl.u16(i), std::uint16_t(a.u16(i) >> (sh & 15)));
            ASSERT_EQ(sll.u16(i), std::uint16_t(a.u16(i) << (sh & 15)));
        }
    }
}

TEST_F(PropEnv, ScalarOpsRandomizedAgainstHost)
{
    for (int iter = 0; iter < 4000; ++iter) {
        std::int64_t x = std::int64_t(rng.next() >> 16) - (1ll << 46);
        std::int64_t y = std::int64_t(rng.next() >> 16) - (1ll << 46);
        auto a = so.li(x);
        auto b = so.li(y);
        ASSERT_EQ(so.add(a, b).v, x + y);
        ASSERT_EQ(so.sub(a, b).v, x - y);
        // Wrapping reference product: x * y overflows int64 for
        // these operand ranges (UB the facade explicitly avoids).
        ASSERT_EQ(so.mul(a, b).v,
                  std::int64_t(std::uint64_t(x) * std::uint64_t(y)));
        ASSERT_EQ(so.and_(a, b).v, x & y);
        ASSERT_EQ(so.or_(a, b).v, x | y);
        ASSERT_EQ(so.xor_(a, b).v, x ^ y);
        ASSERT_EQ(so.cmplt(a, b).v, x < y ? 1 : 0);
        ASSERT_EQ(so.cmpeq(a, b).v, x == y ? 1 : 0);
        ASSERT_EQ(so.isel(so.li(x < y), a, b).v, x < y ? x : y);
        unsigned sh = unsigned(rng.below(31));
        ASSERT_EQ(so.slli(a, sh).v, x << sh);
        ASSERT_EQ(so.srai(a, sh).v, x >> sh);
    }
}
