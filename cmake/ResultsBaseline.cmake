# Machine-readable result gate: regenerate every bench's --quick
# BENCH_*.json artifact and require bit-identical simulated fields
# against the committed baselines/ - at --threads 1, at --threads 4,
# and (for the trace-cache benches) cold vs warm persistent store.
# Wall-time fields are informational and never gate (uasim-report
# enforces the split).
#
# Usage (the results_baseline ctest entry):
#   cmake -DBENCH_DIR=<bench bin dir> -DREPORT=<uasim-report>
#         -DBASELINES=<repo baselines dir> -DWORK=<scratch dir>
#         -DBENCHES=a,b,c -DCACHE_BENCHES=x,y -DOOO_BENCHES=x
#         -DVARIANTS=bench/artifact/--flag
#         -DSWEEP=<uasim-sweep> -DCAMPAIGNS=a.conf,b.conf
#         [-DUPDATE=1] -P ResultsBaseline.cmake
#
# OOO_BENCHES additionally run under "--timing-model ooo"; their
# model-suffixed BENCH_<bench>.ooo.json artifacts gate against their
# own committed baselines.
#
# VARIANTS are flag-selected alternate experiments of an existing
# bench ("bench/artifact/--flag" runs ${bench} --flag, which names its
# own artifact BENCH_${artifact}.json). Each variant gates under BOTH
# timing models, like an OOO_BENCHES entry.
#
# With -DUPDATE=1 the script regenerates the --threads 1 artifacts and
# rewrites the baselines (uasim-report --update-baselines) instead of
# diffing - the refresh path behind the update_baselines target.

foreach(var BENCH_DIR REPORT BASELINES WORK BENCHES)
    if(NOT ${var})
        message(FATAL_ERROR "ResultsBaseline.cmake: pass -D${var}=...")
    endif()
endforeach()

string(REPLACE "," ";" BENCHES "${BENCHES}")
string(REPLACE "," ";" CACHE_BENCHES "${CACHE_BENCHES}")
string(REPLACE "," ";" OOO_BENCHES "${OOO_BENCHES}")
string(REPLACE "," ";" VARIANTS "${VARIANTS}")
string(REPLACE "," ";" CAMPAIGNS "${CAMPAIGNS}")

file(REMOVE_RECURSE ${WORK})

# Run one bench, writing its artifact into ${WORK}/${outdir}/.
function(run_bench bench outdir)
    file(MAKE_DIRECTORY ${WORK}/${outdir})
    execute_process(
        COMMAND ${BENCH_DIR}/${bench} --quick ${ARGN}
                --json ${WORK}/${outdir}/BENCH_${bench}.json
        OUTPUT_QUIET
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "${bench} --quick ${ARGN} exited ${rc}\n${err}")
    endif()
endfunction()

# Same, on a non-default timing model (-DOOO_BENCHES): the artifact
# takes the model-suffixed canonical name, so it pairs with its own
# committed baseline instead of the pipeline one.
function(run_bench_model bench model outdir)
    file(MAKE_DIRECTORY ${WORK}/${outdir})
    execute_process(
        COMMAND ${BENCH_DIR}/${bench} --quick ${ARGN}
                --timing-model ${model}
                --json ${WORK}/${outdir}/BENCH_${bench}.${model}.json
        OUTPUT_QUIET
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "${bench} --quick --timing-model ${model} ${ARGN} "
            "exited ${rc}\n${err}")
    endif()
endfunction()

# Run one "bench/artifact/--flag" variant on the given model (empty
# model = default pipeline, unsuffixed artifact name).
function(run_variant variant model outdir)
    string(REPLACE "/" ";" parts "${variant}")
    list(GET parts 0 bench)
    list(GET parts 1 artifact)
    list(GET parts 2 flag)
    set(name BENCH_${artifact})
    set(margs "")
    if(model)
        set(name ${name}.${model})
        set(margs --timing-model ${model})
    endif()
    file(MAKE_DIRECTORY ${WORK}/${outdir})
    execute_process(
        COMMAND ${BENCH_DIR}/${bench} --quick ${flag} ${margs} ${ARGN}
                --json ${WORK}/${outdir}/${name}.json
        OUTPUT_QUIET
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "${bench} --quick ${flag} ${margs} ${ARGN} exited ${rc}\n${err}")
    endif()
endfunction()

# Run one committed campaign file (-DCAMPAIGNS, -DSWEEP) through
# uasim-sweep; its BENCH_<campaign>.json lands in the same artifact
# set and gates against baselines/ with the bench artifacts.
function(run_campaign conf outdir)
    file(MAKE_DIRECTORY ${WORK}/${outdir})
    execute_process(
        COMMAND ${SWEEP} run ${conf} ${ARGN}
                --json ${WORK}/${outdir}
        OUTPUT_QUIET
        ERROR_VARIABLE err
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "uasim-sweep run ${conf} ${ARGN} exited ${rc}\n${err}")
    endif()
endfunction()

# Diff two artifact sets with uasim-report; FATAL on any drift.
function(check_report what base current)
    execute_process(
        COMMAND ${REPORT} ${base} ${current}
        OUTPUT_VARIABLE out
        ERROR_VARIABLE out
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "uasim-report: ${what}: exit ${rc}\n${out}")
    endif()
    message(STATUS "uasim-report: ${what}: match")
endfunction()

if(UPDATE)
    foreach(bench IN LISTS BENCHES)
        run_bench(${bench} t1 --threads 1)
    endforeach()
    # Model-suffixed artifacts land in the same set so the --prune
    # refresh below keeps (rather than retires) their baselines.
    foreach(bench IN LISTS OOO_BENCHES)
        run_bench_model(${bench} ooo t1 --threads 1)
    endforeach()
    foreach(variant IN LISTS VARIANTS)
        run_variant(${variant} "" t1 --threads 1)
        run_variant(${variant} ooo t1 --threads 1)
    endforeach()
    foreach(conf IN LISTS CAMPAIGNS)
        run_campaign(${conf} t1 --threads 1)
    endforeach()
    execute_process(
        COMMAND ${REPORT} --update-baselines --prune ${BASELINES}
                ${WORK}/t1
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "uasim-report --update-baselines exited ${rc}")
    endif()
    file(REMOVE_RECURSE ${WORK})
    return()
endif()

foreach(bench IN LISTS BENCHES)
    run_bench(${bench} t1 --threads 1)
    run_bench(${bench} t4 --threads 4)
endforeach()
foreach(bench IN LISTS OOO_BENCHES)
    run_bench_model(${bench} ooo t1 --threads 1)
    run_bench_model(${bench} ooo t4 --threads 4)
endforeach()
foreach(variant IN LISTS VARIANTS)
    run_variant(${variant} "" t1 --threads 1)
    run_variant(${variant} "" t4 --threads 4)
    run_variant(${variant} ooo t1 --threads 1)
    run_variant(${variant} ooo t4 --threads 4)
endforeach()
foreach(conf IN LISTS CAMPAIGNS)
    run_campaign(${conf} t1 --threads 1)
    run_campaign(${conf} t4 --threads 4)
endforeach()

check_report("baselines vs --threads 1" ${BASELINES} ${WORK}/t1)
check_report("baselines vs --threads 4" ${BASELINES} ${WORK}/t4)

foreach(bench IN LISTS CACHE_BENCHES)
    run_bench(${bench} cachecold --threads 1 --trace-cache ${WORK}/store)
    run_bench(${bench} cachewarm --threads 1 --trace-cache ${WORK}/store)
    # Each cache bench against its committed baseline (file pair), so
    # the store path is gated against the same truth as the plain runs.
    check_report("baseline vs cold-store ${bench}"
        ${BASELINES}/BENCH_${bench}.json
        ${WORK}/cachecold/BENCH_${bench}.json)
endforeach()
if(CACHE_BENCHES)
    check_report("cold store vs warm store"
        ${WORK}/cachecold ${WORK}/cachewarm)
endif()

file(REMOVE_RECURSE ${WORK})
