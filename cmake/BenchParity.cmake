# Thread-count parity check for a sweep-ported bench: run the binary's
# --quick path at --threads 1 and --threads 4 and require byte-for-byte
# identical stdout (the SweepRunner's cell-ordered results make any
# scheduling dependence a hard failure).
#
# Usage: cmake -DBENCH=<path-to-binary> -P BenchParity.cmake

if(NOT BENCH)
    message(FATAL_ERROR "BenchParity.cmake: pass -DBENCH=<binary>")
endif()

execute_process(
    COMMAND ${BENCH} --quick --threads 1
    OUTPUT_VARIABLE out_one
    RESULT_VARIABLE rc_one)
execute_process(
    COMMAND ${BENCH} --quick --threads 4
    OUTPUT_VARIABLE out_four
    RESULT_VARIABLE rc_four)

if(NOT rc_one EQUAL 0)
    message(FATAL_ERROR "${BENCH} --quick --threads 1 exited ${rc_one}")
endif()
if(NOT rc_four EQUAL 0)
    message(FATAL_ERROR "${BENCH} --quick --threads 4 exited ${rc_four}")
endif()

if(NOT out_one STREQUAL out_four)
    message(FATAL_ERROR
        "${BENCH}: stdout differs between --threads 1 and --threads 4\n"
        "--- threads 1 ---\n${out_one}\n"
        "--- threads 4 ---\n${out_four}")
endif()

message(STATUS "${BENCH}: --threads 1 and --threads 4 output identical")
