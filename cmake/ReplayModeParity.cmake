# Replay-mode parity check for a sweep-ported bench: the batched
# engine (one decode pass advances every timing cell of a trace
# group) must be observationally identical to the per-cell reference
# oracle. Four runs of the binary's --quick path:
#
#   1. --replay-mode batched --threads 1   (the default mode)
#   2. --replay-mode percell --threads 1   (the oracle)
#   3. --replay-mode batched --threads 4
#   4. --replay-mode garbage               (must be rejected)
#
# Stdout must be byte-for-byte identical across 1-3 (the printed
# tables carry every headline number), and the BENCH_*.json artifacts
# must compare as Match under uasim-report (simulated fields gate
# bit-exactly; only the informational pass/wall-time block may
# differ between modes and thread counts).
#
# Usage: cmake -DBENCH=<binary> -DREPORT=<uasim-report> -DWORK=<dir>
#              -P ReplayModeParity.cmake

foreach(var BENCH REPORT WORK)
    if(NOT ${var})
        message(FATAL_ERROR "ReplayModeParity.cmake: pass -D${var}=...")
    endif()
endforeach()

file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})

function(run_bench label out_var)
    execute_process(
        COMMAND ${BENCH} --quick ${ARGN}
                --json ${WORK}/${label}.json
        OUTPUT_VARIABLE out
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "${BENCH} ${ARGN} exited ${rc}")
    endif()
    if(NOT EXISTS ${WORK}/${label}.json)
        message(FATAL_ERROR "${BENCH} ${ARGN}: no ${label}.json artifact")
    endif()
    set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

run_bench(batched_t1 out_batched
          --replay-mode batched --threads 1)
run_bench(percell_t1 out_percell
          --replay-mode percell --threads 1)
run_bench(batched_t4 out_batched4
          --replay-mode batched --threads 4)

if(NOT out_batched STREQUAL out_percell)
    message(FATAL_ERROR
        "${BENCH}: stdout differs between replay modes\n"
        "--- batched ---\n${out_batched}\n"
        "--- percell ---\n${out_percell}")
endif()
if(NOT out_batched STREQUAL out_batched4)
    message(FATAL_ERROR
        "${BENCH}: batched stdout differs between --threads 1 and 4\n"
        "--- threads 1 ---\n${out_batched}\n"
        "--- threads 4 ---\n${out_batched4}")
endif()

foreach(pair "percell_t1" "batched_t4")
    execute_process(
        COMMAND ${REPORT} ${WORK}/batched_t1.json ${WORK}/${pair}.json
        OUTPUT_VARIABLE report_out
        RESULT_VARIABLE report_rc)
    if(NOT report_rc EQUAL 0)
        message(FATAL_ERROR
            "${BENCH}: uasim-report found simulated drift between "
            "batched_t1 and ${pair} (exit ${report_rc})\n${report_out}")
    endif()
endforeach()

# An unknown mode name must be fatal, like every malformed bench flag.
execute_process(
    COMMAND ${BENCH} --quick --replay-mode garbage
    OUTPUT_VARIABLE ignored
    ERROR_VARIABLE ignored_err
    RESULT_VARIABLE rc_bad)
if(rc_bad EQUAL 0)
    message(FATAL_ERROR
        "${BENCH}: --replay-mode garbage must be rejected, exited 0")
endif()

file(REMOVE_RECURSE ${WORK})
message(STATUS "${BENCH}: batched and percell replay observationally identical")
