# Persistent trace-store parity check for a sweep-ported bench: run
# the binary's --quick path cold (fresh cache directory) and then warm
# (same directory) and require byte-for-byte identical stdout - a warm
# run replays every cacheable trace from disk, so any divergence means
# the serialized stream is not bit-identical to in-memory recording.
# A warm run at --threads 4 must also match, and the cache directory
# must actually have been populated.
#
# Usage: cmake -DBENCH=<binary> -DCACHE_DIR=<dir> -P TraceCacheParity.cmake

if(NOT BENCH)
    message(FATAL_ERROR "TraceCacheParity.cmake: pass -DBENCH=<binary>")
endif()
if(NOT CACHE_DIR)
    message(FATAL_ERROR "TraceCacheParity.cmake: pass -DCACHE_DIR=<dir>")
endif()

file(REMOVE_RECURSE ${CACHE_DIR})

execute_process(
    COMMAND ${BENCH} --quick --threads 1 --trace-cache ${CACHE_DIR}
    OUTPUT_VARIABLE out_cold
    RESULT_VARIABLE rc_cold)
if(NOT rc_cold EQUAL 0)
    message(FATAL_ERROR "${BENCH} cold run exited ${rc_cold}")
endif()

file(GLOB cache_entries ${CACHE_DIR}/*.uatrace)
if(NOT cache_entries)
    message(FATAL_ERROR "${BENCH}: cold run left no entries in ${CACHE_DIR}")
endif()

execute_process(
    COMMAND ${BENCH} --quick --threads 1 --trace-cache ${CACHE_DIR}
    OUTPUT_VARIABLE out_warm
    RESULT_VARIABLE rc_warm)
if(NOT rc_warm EQUAL 0)
    message(FATAL_ERROR "${BENCH} warm run exited ${rc_warm}")
endif()
if(NOT out_cold STREQUAL out_warm)
    message(FATAL_ERROR
        "${BENCH}: stdout differs between cold and warm --trace-cache runs\n"
        "--- cold ---\n${out_cold}\n"
        "--- warm ---\n${out_warm}")
endif()

execute_process(
    COMMAND ${BENCH} --quick --threads 4 --trace-cache ${CACHE_DIR}
    OUTPUT_VARIABLE out_warm4
    RESULT_VARIABLE rc_warm4)
if(NOT rc_warm4 EQUAL 0)
    message(FATAL_ERROR "${BENCH} warm --threads 4 run exited ${rc_warm4}")
endif()
if(NOT out_cold STREQUAL out_warm4)
    message(FATAL_ERROR
        "${BENCH}: stdout differs between cold and warm --threads 4 runs\n"
        "--- cold ---\n${out_cold}\n"
        "--- warm 4 ---\n${out_warm4}")
endif()

file(REMOVE_RECURSE ${CACHE_DIR})
message(STATUS "${BENCH}: cold and warm --trace-cache output identical")
