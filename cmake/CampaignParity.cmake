# Campaign shard/merge parity: the acceptance gate for the campaign
# layer (see ISSUE 10 / ROADMAP item 2).
#
#   1. Unsharded run -> WORK/full/BENCH_<name>.json
#   2. Shards 0..2 of 3 -> WORK/shards/BENCH_<name>.shard<i>of3.json
#   3. `uasim-report merge` -> WORK/merged/BENCH_<name>.json, which
#      must be a uasim-report Match against both the unsharded
#      artifact (shard/merge bit-identity) and the committed baseline.
#   4. Resume: re-invoking shard 0 executes nothing; deleting one
#      published chunk artifact re-executes exactly that chunk.
#   5. An out-of-range --shard must be rejected (exit 2).
#
# Usage: cmake -DSWEEP=<uasim-sweep> -DREPORT=<uasim-report>
#              -DCAMPAIGN=<file.conf> -DBASELINE=<BENCH_*.json>
#              -DNAME=<campaign-name> -DWORK=<dir>
#              -P CampaignParity.cmake

foreach(var SWEEP REPORT CAMPAIGN BASELINE NAME WORK)
    if(NOT ${var})
        message(FATAL_ERROR "CampaignParity.cmake: pass -D${var}=...")
    endif()
endforeach()

file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})

function(run_sweep out_var dir)
    execute_process(
        COMMAND ${SWEEP} run ${CAMPAIGN} --threads 2 --json ${dir} ${ARGN}
        OUTPUT_VARIABLE out
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "${SWEEP} run ${ARGN} exited ${rc}\n${out}")
    endif()
    set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# 1. The unsharded single-process reference run.
run_sweep(out_full ${WORK}/full)
if(NOT EXISTS ${WORK}/full/BENCH_${NAME}.json)
    message(FATAL_ERROR "unsharded run wrote no BENCH_${NAME}.json")
endif()

# 2. The 3-shard run (fresh chunk state: separate directory).
foreach(i RANGE 2)
    run_sweep(out_shard${i} ${WORK}/shards --shard ${i}/3)
    if(NOT EXISTS ${WORK}/shards/BENCH_${NAME}.shard${i}of3.json)
        message(FATAL_ERROR
            "shard ${i}/3 wrote no BENCH_${NAME}.shard${i}of3.json")
    endif()
endforeach()

# 3. Merge and gate: vs the unsharded run, then vs the committed
# baseline.
execute_process(
    COMMAND ${REPORT} merge ${WORK}/merged ${WORK}/shards
    OUTPUT_VARIABLE out_merge
    RESULT_VARIABLE rc_merge)
if(NOT rc_merge EQUAL 0)
    message(FATAL_ERROR
        "uasim-report merge exited ${rc_merge}\n${out_merge}")
endif()
foreach(base ${WORK}/full/BENCH_${NAME}.json ${BASELINE})
    execute_process(
        COMMAND ${REPORT} ${base} ${WORK}/merged/BENCH_${NAME}.json
        OUTPUT_VARIABLE out_diff
        RESULT_VARIABLE rc_diff)
    if(NOT rc_diff EQUAL 0)
        message(FATAL_ERROR
            "merged artifact differs from ${base} "
            "(exit ${rc_diff})\n${out_diff}")
    endif()
endforeach()

# 4a. Resume: everything already published, nothing may re-execute.
run_sweep(out_resume ${WORK}/shards --shard 0/3)
if(NOT out_resume MATCHES "executed 0 chunk")
    message(FATAL_ERROR
        "re-invoked shard 0 re-executed published chunks:\n${out_resume}")
endif()

# 4b. Delete one published chunk artifact; exactly it must re-execute.
string(REGEX MATCH "chunk-[0-9a-f]+\\.json" chunk_file "${out_resume}")
if(NOT chunk_file)
    message(FATAL_ERROR
        "no chunk artifact name in sweep output:\n${out_resume}")
endif()
file(GLOB chunk_dirs ${WORK}/shards/${NAME}-*.chunks)
list(LENGTH chunk_dirs n_chunk_dirs)
if(NOT n_chunk_dirs EQUAL 1)
    message(FATAL_ERROR
        "expected one ${NAME}-<hash>.chunks dir, found: ${chunk_dirs}")
endif()
list(GET chunk_dirs 0 chunk_dir)
file(REMOVE ${chunk_dir}/${chunk_file})
run_sweep(out_redo ${WORK}/shards --shard 0/3)
if(NOT out_redo MATCHES "executed 1 chunk")
    message(FATAL_ERROR
        "after deleting one chunk artifact, shard 0 did not re-execute "
        "exactly one chunk:\n${out_redo}")
endif()

# The re-run must republish the shard artifact bit-identically.
execute_process(
    COMMAND ${REPORT} ${WORK}/shards/BENCH_${NAME}.shard0of3.json
            ${WORK}/shards/BENCH_${NAME}.shard0of3.json
    RESULT_VARIABLE rc_self)
if(NOT rc_self EQUAL 0)
    message(FATAL_ERROR "republished shard artifact does not parse")
endif()

# 5. Out-of-range shard spec is a usage error.
execute_process(
    COMMAND ${SWEEP} run ${CAMPAIGN} --shard 3/3 --json ${WORK}/bad
    OUTPUT_VARIABLE ignored
    ERROR_VARIABLE ignored_err
    RESULT_VARIABLE rc_bad)
if(NOT rc_bad EQUAL 2)
    message(FATAL_ERROR
        "--shard 3/3 must exit 2 (usage error), exited ${rc_bad}")
endif()

file(REMOVE_RECURSE ${WORK})
message(STATUS
    "${NAME}: 3-shard merge bit-identical to unsharded run; resume "
    "skips published chunks")
