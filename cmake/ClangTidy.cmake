# Run the curated .clang-tidy profile over every repo TU in the
# compile db and diff the (deduplicated) findings count against the
# committed baseline: new findings block, a lower count asks for a
# ratchet. Invoked as a script:
#
#   cmake -DBUILD_DIR=build -DSOURCE_DIR=. [-DREQUIRE=1] [-DUPDATE=1] \
#         -P cmake/ClangTidy.cmake
#
# With no clang-tidy on PATH the run is a skip (exit 0) so gcc-only
# hosts keep working; CI passes REQUIRE=1 to make absence fatal.
# UPDATE=1 rewrites baselines/clang-tidy-baseline.txt with the
# current count (the burn-down ratchet).

if(NOT BUILD_DIR OR NOT SOURCE_DIR)
    message(FATAL_ERROR "usage: cmake -DBUILD_DIR=<build> -DSOURCE_DIR=<repo> -P ClangTidy.cmake")
endif()
get_filename_component(BUILD_DIR "${BUILD_DIR}" ABSOLUTE)
get_filename_component(SOURCE_DIR "${SOURCE_DIR}" ABSOLUTE)
set(BASELINE_FILE "${SOURCE_DIR}/baselines/clang-tidy-baseline.txt")

find_program(CLANG_TIDY NAMES
    clang-tidy
    clang-tidy-20 clang-tidy-19 clang-tidy-18 clang-tidy-17
    clang-tidy-16 clang-tidy-15 clang-tidy-14)
if(NOT CLANG_TIDY)
    if(REQUIRE)
        message(FATAL_ERROR "clang-tidy not found and REQUIRE=1 (install clang-tidy)")
    endif()
    message(STATUS "clang-tidy not found; skipping the tidy gate (CI runs it with REQUIRE=1)")
    return()
endif()

set(COMPDB "${BUILD_DIR}/compile_commands.json")
if(NOT EXISTS "${COMPDB}")
    message(FATAL_ERROR "${COMPDB} not found (configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON)")
endif()

# Shipped-code TUs only (src/, tools/, bench/): _deps and build/ are
# not ours, and tests/ is gtest-macro territory where check false
# positives vary by clang-tidy version - the uasim-lint fixture suite
# gates tests/ behavior instead.
file(READ "${COMPDB}" _db)
string(JSON _n LENGTH "${_db}")
math(EXPR _last "${_n} - 1")
set(_files "")
foreach(_i RANGE ${_last})
    string(JSON _f GET "${_db}" ${_i} file)
    file(RELATIVE_PATH _rel "${SOURCE_DIR}" "${_f}")
    if(NOT _rel MATCHES "^(src|tools|bench)/")
        continue()
    endif()
    list(APPEND _files "${_f}")
endforeach()
list(REMOVE_DUPLICATES _files)
list(SORT _files)
list(LENGTH _files _ntus)
if(_ntus EQUAL 0)
    message(FATAL_ERROR "no repo TUs found in ${COMPDB}")
endif()
message(STATUS "clang-tidy (${CLANG_TIDY}) over ${_ntus} TUs...")

# run-clang-tidy (same package) fans the TUs out across cores; the
# serial clang-tidy invocation is the fallback. Either way the
# finding lines have the same shape, so the counting below is shared.
find_program(RUN_CLANG_TIDY NAMES
    run-clang-tidy
    run-clang-tidy-20 run-clang-tidy-19 run-clang-tidy-18
    run-clang-tidy-17 run-clang-tidy-16 run-clang-tidy-15
    run-clang-tidy-14)
if(RUN_CLANG_TIDY)
    execute_process(
        COMMAND "${RUN_CLANG_TIDY}" -quiet -p "${BUILD_DIR}"
                -clang-tidy-binary "${CLANG_TIDY}" ${_files}
        OUTPUT_VARIABLE _out
        ERROR_VARIABLE _err
        RESULT_VARIABLE _rc)
else()
    execute_process(
        COMMAND "${CLANG_TIDY}" --quiet -p "${BUILD_DIR}" ${_files}
        OUTPUT_VARIABLE _out
        ERROR_VARIABLE _err
        RESULT_VARIABLE _rc)
endif()

# A hard clang-tidy error (bad config, TU that does not parse) is a
# tooling failure, not a finding.
if(_err MATCHES "error: |Error while processing|Error reading configuration")
    message(FATAL_ERROR "clang-tidy failed:\n${_err}")
endif()

# Deduplicate findings: the same header warning surfaces once per
# including TU, which would make the count depend on TU ordering.
string(REGEX MATCHALL "[^\n]*warning:[^\n]*\\[[a-z0-9.,-]+\\]" _lines "${_out}")
list(REMOVE_DUPLICATES _lines)
list(LENGTH _lines _count)

if(UPDATE)
    file(WRITE "${BASELINE_FILE}"
        "# clang-tidy findings baseline (deduplicated count over the\n"
        "# curated .clang-tidy profile). New findings block CI; fixes\n"
        "# ratchet this down via UPDATE=1 of cmake/ClangTidy.cmake.\n"
        "${_count}\n")
    message(STATUS "clang-tidy baseline updated: ${_count} finding(s)")
    return()
endif()

if(NOT EXISTS "${BASELINE_FILE}")
    message(FATAL_ERROR "missing ${BASELINE_FILE} (generate with UPDATE=1)")
endif()
file(STRINGS "${BASELINE_FILE}" _baseline_lines REGEX "^[0-9]+$")
list(GET _baseline_lines 0 _baseline)

if(_count GREATER _baseline)
    foreach(_l IN LISTS _lines)
        message(STATUS "${_l}")
    endforeach()
    message(FATAL_ERROR "clang-tidy: ${_count} finding(s) > baseline ${_baseline} - fix the new findings (or, for a deliberate burn-down step, regenerate the baseline with UPDATE=1)")
elseif(_count LESS _baseline)
    message(WARNING "clang-tidy: ${_count} finding(s) < baseline ${_baseline} - ratchet the baseline down (UPDATE=1)")
else()
    message(STATUS "clang-tidy: ${_count} finding(s), matching the baseline")
endif()
