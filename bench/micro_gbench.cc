/**
 * @file
 * google-benchmark microbenchmarks of the library itself: emulation
 * facade throughput, cache model, pipeline simulator speed, and
 * end-to-end traced kernels. These gate simulator performance, not
 * the paper's results.
 */

#include <benchmark/benchmark.h>

#include "core/experiment.hh"
#include "h264/cabac.hh"
#include "mem/hierarchy.hh"
#include "timing/model.hh"
#include "trace/emitter.hh"
#include "vmx/buffer.hh"
#include "vmx/realign.hh"
#include "vmx/vecops.hh"
#include "video/rng.hh"

using namespace uasim;

namespace {

void
BM_EmitterThroughput(benchmark::State &state)
{
    trace::CountingSink sink;
    trace::Emitter em(sink);
    for (auto _ : state) {
        auto d = em.emit(trace::InstrClass::IntAlu,
                         std::source_location::current());
        benchmark::DoNotOptimize(d);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmitterThroughput);

void
BM_VecOpsPerm(benchmark::State &state)
{
    trace::NullSink sink;
    trace::Emitter em(sink);
    vmx::VecOps vo(em);
    vmx::Vec a, b, m;
    for (int i = 0; i < 16; ++i)
        m.b[i] = std::uint8_t(31 - i);
    for (auto _ : state) {
        a = vo.vperm(a, b, m);
        benchmark::DoNotOptimize(a);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VecOpsPerm);

void
BM_SwLoadU(benchmark::State &state)
{
    trace::NullSink sink;
    trace::Emitter em(sink);
    vmx::VecOps vo(em);
    vmx::AlignedBuffer buf(4096, 5);
    for (auto _ : state) {
        auto v = vmx::swLoadU(vo, vmx::CPtr{buf.data()}, 16);
        benchmark::DoNotOptimize(v);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwLoadU);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::Cache cache({"L1", 32 * 1024, 128, 2});
    video::Rng rng(1);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        addr = rng.below(1 << 22);
        benchmark::DoNotOptimize(cache.access(addr, false));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_TimingModelInstrRate(benchmark::State &state)
{
    // How many instructions per second can the timing model consume?
    // Axis 0 is the Table II preset, axis 1 the backend index into
    // timing::timingModelNames() ("pipeline", "ooo", ...).
    timing::CoreConfig cfg = timing::CoreConfig::preset(
        int(state.range(0)));
    cfg.model = timing::timingModelNames()[
        std::size_t(state.range(1))];
    vmx::AlignedBuffer buf(65536, 0);
    std::uint64_t n = 0;
    for (auto _ : state) {
        state.PauseTiming();
        auto sim = timing::makeTimingModel(cfg);
        trace::Emitter em(*sim);
        vmx::ScalarOps so(em);
        state.ResumeTiming();
        vmx::CPtr p = so.lip(buf.data());
        vmx::SInt acc = so.li(0);
        for (int i = 0; i < 2000; ++i) {
            vmx::SInt x = so.loadU8(p, i % 4096);
            acc = so.add(acc, x);
            if ((i & 15) == 15)
                so.loopBranch(i + 1 < 2000);
        }
        sim->finalize();
        n += em.count();
    }
    state.SetItemsProcessed(int64_t(n));
}
BENCHMARK(BM_TimingModelInstrRate)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({1, 1})
    ->Args({2, 1});

void
BM_TracedKernel(benchmark::State &state)
{
    core::KernelSpec spec{h264::KernelId::Sad, 16, false};
    core::KernelBench bench(spec);
    trace::CountingSink sink;
    trace::Emitter em(sink);
    h264::KernelCtx ctx(em);
    int iter = 0;
    for (auto _ : state)
        bench.runOnce(ctx, h264::Variant::Unaligned, iter++);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracedKernel);

void
BM_CabacEncodeDecode(benchmark::State &state)
{
    video::Rng rng(3);
    for (auto _ : state) {
        h264::CabacEncoder enc;
        h264::CabacContext ctx;
        for (int i = 0; i < 1000; ++i)
            enc.encodeBin(ctx, rng.chance(0.3) ? 1 : 0);
        auto bits = enc.finish();
        h264::CabacDecoder dec(bits.data(), bits.size());
        h264::CabacContext dctx;
        int sum = 0;
        for (int i = 0; i < 1000; ++i)
            sum += dec.decodeBin(dctx);
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_CabacEncodeDecode);

} // namespace

BENCHMARK_MAIN();
